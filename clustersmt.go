// Package clustersmt is a from-scratch reproduction of Krishnan &
// Torrellas, "A Clustered Approach to Multithreaded Processors"
// (IPPS/SPDP 1998): a cycle-level, execution-driven simulator for
// fixed-assignment (FA), clustered-SMT and centralized-SMT chip
// multiprocessors, together with the paper's six parallel workloads,
// its analytical model of parallelism, and a harness that regenerates
// every figure of its evaluation.
//
// The package is a thin facade over the internal implementation:
//
//   - Architectures: the seven Table 2 chip organizations (FA8 … SMT1).
//   - Machines: LowEnd (one chip) and HighEnd (four chips under
//     DASH-like directory coherence).
//   - Workloads: swim, tomcatv, mgrid, vpenta, fmm, ocean — kernels in
//     the bundled RISC ISA calibrated to the paper's Figure 6 points.
//   - Simulate: run one (workload × machine) simulation and get the
//     cycle count plus the §4.1 issue-slot breakdown.
//   - Suite: run and cache experiment matrices; regenerate Figures
//     4, 5, 7 and 8 and the Figure 6 placements.
//   - Model: the §2 analytical model relating thread-level and
//     instruction-level parallelism.
//
// Quickstart:
//
//	res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.SMT2), "ocean", clustersmt.SizeRef)
//	if err != nil { ... }
//	fmt.Println(res.Cycles, res.IPC)
package clustersmt

import (
	"fmt"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/harness"
	"clustersmt/internal/model"
	"clustersmt/internal/obs"
	"clustersmt/internal/parallel"
	"clustersmt/internal/prog"
	"clustersmt/internal/stats"
	"clustersmt/internal/workloads"
)

// Arch is a chip organization (Table 2 of the paper).
type Arch = config.Arch

// Machine is a full system: chips × architecture × memory hierarchy.
type Machine = config.Machine

// MemConfig is the Table 3 memory-hierarchy configuration.
type MemConfig = config.MemConfig

// Result is the outcome of one simulation: cycles, committed
// instructions, IPC, the issue-slot breakdown and memory statistics.
type Result = core.Result

// Simulator is one configured simulation instance. Most callers should
// use Simulate / SimulateProgram; the explicit form exposes pre-run
// knobs (EventDriven, MaxCycles, SetICountFetch) and post-run
// inspection (Mem, MemSystem, FastForwarded).
type Simulator = core.Simulator

// NewSimulator builds a simulator for machine m running program p, one
// software thread per hardware context, without running it.
func NewSimulator(m Machine, p *Program) (*Simulator, error) {
	return core.New(m, p)
}

// Restore rebuilds a runnable simulator from a Simulator.Snapshot
// payload, validating it against the machine and program before any
// state is constructed (see DESIGN.md §9 for the format). Typed
// failures are the re-exported ErrSnapshot* sentinels.
func Restore(m Machine, p *Program, data []byte) (*Simulator, error) {
	return core.Restore(m, p, data)
}

// Snapshot/Restore error sentinels, re-exported from the core.
var (
	ErrSnapshotVersion     = core.ErrSnapshotVersion
	ErrSnapshotTruncated   = core.ErrSnapshotTruncated
	ErrSnapshotCorrupt     = core.ErrSnapshotCorrupt
	ErrSnapshotMismatch    = core.ErrSnapshotMismatch
	ErrSnapshotUnsupported = core.ErrSnapshotUnsupported
)

// Workload is one of the paper's six applications.
type Workload = workloads.Workload

// Size selects workload input scale.
type Size = workloads.Size

// Input scales: SizeTest for fast runs, SizeRef for the paper figures.
const (
	SizeTest = workloads.SizeTest
	SizeRef  = workloads.SizeRef
)

// The seven architectures of Table 2. SMT8 is the clustered-SMT alias
// of FA8 (§5.2).
var (
	FA8  = config.FA8
	FA4  = config.FA4
	FA2  = config.FA2
	FA1  = config.FA1
	SMT8 = config.SMT8
	SMT4 = config.SMT4
	SMT2 = config.SMT2
	SMT1 = config.SMT1
)

// Architectures returns every distinct Table 2 organization.
func Architectures() []Arch { return config.AllArchs }

// ArchByName resolves a Table 2 name ("FA8" … "SMT1", "SMT8").
func ArchByName(name string) (Arch, error) { return config.ArchByName(name) }

// LowEnd returns the single-chip workstation machine of §5.
func LowEnd(a Arch) Machine { return config.LowEnd(a) }

// HighEnd returns the 4-chip DASH-like multiprocessor of §5.
func HighEnd(a Arch) Machine { return config.HighEnd(a) }

// DefaultMem returns the Table 3 memory configuration.
func DefaultMem() MemConfig { return config.DefaultMem() }

// Workloads returns the six applications in the paper's order.
func Workloads() []Workload { return workloads.All() }

// WorkloadExtras returns the bonus workloads beyond the paper's six
// (radix, lu) — usable everywhere a paper workload is, but not part of
// the figure reproductions.
func WorkloadExtras() []Workload { return workloads.Extras() }

// SyntheticSpec parameterizes a generated workload on the §2
// (threads × ILP) plane; see Synthetic.
type SyntheticSpec = workloads.SyntheticSpec

// Synthetic builds a parameterized workload — the generator behind
// sweep experiments beyond the paper's six applications.
func Synthetic(spec SyntheticSpec) Workload { return workloads.Synthetic(spec) }

// WorkloadByName resolves an application by name.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// Simulate runs workload app on machine m at the given input size and
// returns the result. app may be a name ("swim") or a Workload.
func Simulate[A string | Workload](m Machine, app A, size Size) (*Result, error) {
	var w Workload
	switch v := any(app).(type) {
	case string:
		var err error
		w, err = workloads.ByName(v)
		if err != nil {
			return nil, err
		}
	case Workload:
		w = v
	}
	p := w.Build(m.Threads(), m.Chips, size)
	sim, err := core.New(m, p)
	if err != nil {
		return nil, fmt.Errorf("clustersmt: %w", err)
	}
	return sim.Run()
}

// Program is an assembled program in the bundled RISC ISA.
type Program = prog.Program

// ProgramBuilder authors programs in the bundled ISA: an assembler
// with labels, loop helpers, global data and synchronization ops. See
// examples/customkernel for a complete kernel written against it.
type ProgramBuilder = prog.Builder

// NewProgram returns an empty ProgramBuilder for a program with the
// given name.
func NewProgram(name string) *ProgramBuilder { return prog.NewBuilder(name) }

// SimulateProgram runs an assembled program on machine m with one
// software thread per hardware context.
func SimulateProgram(m Machine, p *Program) (*Result, error) {
	sim, err := core.New(m, p)
	if err != nil {
		return nil, fmt.Errorf("clustersmt: %w", err)
	}
	return sim.Run()
}

// SimulateMultiprogram runs independent sequential jobs, one per
// hardware context, each in a private address space — the
// multiprogrammed configuration of the SMT studies the paper builds on.
// Programs should be built for a single thread.
func SimulateMultiprogram(m Machine, jobs []*Program) (*Result, error) {
	sim, err := core.NewMulti(m, jobs)
	if err != nil {
		return nil, fmt.Errorf("clustersmt: %w", err)
	}
	return sim.Run()
}

// RunFunctional executes p on the functional reference machine (no
// timing) with the given thread count — the fastest way to check that a
// custom kernel computes what it should before simulating it.
func RunFunctional(p *Program, threads int) (*parallel.FunctionalResult, error) {
	return parallel.RunFunctional(p, threads, 0)
}

// SlotCategory is one §4.1 issue-slot class (useful, fetch, sync,
// control, data, memory, structural, other).
type SlotCategory = stats.Category

// Slot categories in the paper's legend order.
const (
	SlotUseful     = stats.Useful
	SlotFetch      = stats.Fetch
	SlotSync       = stats.Sync
	SlotControl    = stats.Control
	SlotData       = stats.Data
	SlotMemory     = stats.Memory
	SlotStructural = stats.Structural
	SlotOther      = stats.Other
)

// MetricsFrame is one interval-metrics sample: the deltas and gauges
// covering [Start, End) cycles of a run. Produced by
// Simulator.EnableMetrics / OnInterval and the Suite metrics fields;
// sampling is read-only and leaves results bit-identical.
type MetricsFrame = obs.Frame

// MetricsRing retains the most recent MetricsFrames of a run and
// exports them as CSV or JSON.
type MetricsRing = obs.Ring

// DefaultMetricsInterval is the sampling interval (cycles per frame)
// used when none is specified.
const DefaultMetricsInterval = core.DefaultMetricsInterval

// Suite runs and caches experiment matrices (Figures 4–8).
type Suite = harness.Suite

// Figure is a rendered experiment table (one of Figures 4/5/7/8).
type Figure = harness.Figure

// NewSuite returns an experiment suite at the given input size.
func NewSuite(size Size) *Suite { return harness.NewSuite(size) }

// Model re-exports the §2 analytical model of parallelism.
type (
	// ModelPoint is an application's (threads × ILP) operating point.
	ModelPoint = model.Point
	// ModelProc is an architecture's exploitable region.
	ModelProc = model.Proc
	// ModelRegion classifies app-vs-architecture fit (Figure 1).
	ModelRegion = model.Region
)

// ModelOf converts an architecture to its analytical-model description.
func ModelOf(a Arch) ModelProc { return model.FromArch(a) }

// ModelChart renders a Figure 1/6-style ASCII chart of proc with the
// given application points.
func ModelChart(proc ModelProc, apps map[string]ModelPoint) string {
	return model.Chart(proc, apps)
}

// RenderPlacement renders measured Figure 6 placements against proc.
func RenderPlacement(points map[string]ModelPoint, proc ModelProc) string {
	return harness.RenderPlacement(points, proc)
}
