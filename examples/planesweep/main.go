// Planesweep walks the paper's §2 (threads × ILP) plane with the
// synthetic workload generator and shows, for each point, which
// architecture the analytical model predicts and which one actually
// wins in simulation — Figure 1 brought to life.
package main

import (
	"fmt"
	"log"

	"clustersmt"
)

func main() {
	archs := []clustersmt.Arch{clustersmt.FA8, clustersmt.FA2, clustersmt.FA1, clustersmt.SMT2}

	// Points across the plane: (ParCap ~ threads, ChainLen/IndepOps ~ ILP).
	points := []struct {
		label string
		spec  clustersmt.SyntheticSpec
		model clustersmt.ModelPoint
	}{
		{"1 thread, high ILP", clustersmt.SyntheticSpec{ParCap: 1, IndepOps: 10, Iters: 2048}, clustersmt.ModelPoint{Threads: 1, ILP: 6}},
		{"2 threads, mid ILP", clustersmt.SyntheticSpec{ParCap: 2, IndepOps: 4, ChainLen: 2, Iters: 2048}, clustersmt.ModelPoint{Threads: 2, ILP: 4}},
		{"4 threads, mid ILP", clustersmt.SyntheticSpec{ParCap: 4, ChainLen: 3, IndepOps: 2, Iters: 2048}, clustersmt.ModelPoint{Threads: 4, ILP: 2.5}},
		{"8 threads, low ILP", clustersmt.SyntheticSpec{ChainLen: 8, Iters: 2048}, clustersmt.ModelPoint{Threads: 8, ILP: 1.2}},
	}

	fmt.Printf("%-22s %10s %10s", "point", "model-best", "sim-best")
	for _, a := range archs {
		fmt.Printf("%8s", a.Name)
	}
	fmt.Println()

	procs := make([]clustersmt.ModelProc, 0, len(archs))
	for _, a := range archs {
		procs = append(procs, clustersmt.ModelOf(a))
	}

	for _, pt := range points {
		w := clustersmt.Synthetic(pt.spec)
		best, bestCycles := "", int64(0)
		cycles := make([]int64, len(archs))
		for i, a := range archs {
			res, err := clustersmt.Simulate(clustersmt.LowEnd(a), w, clustersmt.SizeRef)
			if err != nil {
				log.Fatal(err)
			}
			cycles[i] = res.Cycles
			if best == "" || res.Cycles < bestCycles {
				best, bestCycles = a.Name, res.Cycles
			}
		}
		// The model's pick among the same architecture set.
		modelBest, bestD := "", 0.0
		for i, p := range procs {
			if d := p.Delivered(pt.model); d > bestD {
				modelBest, bestD = archs[i].Name, d
			}
		}
		fmt.Printf("%-22s %10s %10s", pt.label, modelBest, best)
		for _, c := range cycles {
			fmt.Printf("%8d", c)
		}
		fmt.Println()
	}
	fmt.Println("\n(cycles per architecture; low-end machine, synthetic workloads)")
}
