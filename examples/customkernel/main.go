// Customkernel authors a new parallel kernel with the program-builder
// DSL — a parallel dot product with a lock-protected global reduction —
// checks it functionally, and then compares its execution across three
// architectures. This is the workflow for studying workloads beyond the
// paper's six.
package main

import (
	"fmt"
	"log"
	"math"

	"clustersmt"
)

const (
	nElems = 512
	lockID = 1
)

// buildDotProduct assembles: each of threads workers computes the dot
// product of its slice of x and y, then adds its partial sum into a
// global under a lock.
func buildDotProduct(threads int) *clustersmt.Program {
	b := clustersmt.NewProgram("dotprod")
	b.GlobalWords("nthreads", []uint64{uint64(threads)})
	b.GlobalWords("nchips", []uint64{1})
	xs := make([]float64, nElems)
	ys := make([]float64, nElems)
	for i := range xs {
		xs[i] = float64(i%7) * 0.5
		ys[i] = float64(i%11) * 0.25
	}
	x := b.GlobalFloats("x", xs)
	y := b.GlobalFloats("y", ys)
	b.GlobalFloats("sum", []float64{0})

	// r30 = tid (set by the runtime); registers 1..9 are ours.
	b.Ld(1, 0, b.MustAddr("nthreads"))
	// lo = tid*n/nthreads, hi = (tid+1)*n/nthreads
	b.Li(2, nElems)
	b.Mul(3, 30, 2)
	b.Div(3, 3, 1) // lo
	b.Addi(4, 30, 1)
	b.Mul(4, 4, 2)
	b.Div(4, 4, 1) // hi
	// Walk [lo*8, hi*8) with a pointer.
	b.Shli(3, 3, 3)
	b.Shli(4, 4, 3)
	b.Fli(1, 0.0) // f1 = partial sum
	b.SteppedLoop(3, 4, 8, func() {
		b.Ldf(2, 3, x)
		b.Ldf(3, 3, y)
		b.Fmul(2, 2, 3)
		b.Fadd(1, 1, 2)
	})
	// Global reduction under the lock.
	b.Lock(lockID)
	b.Ldf(4, 0, b.MustAddr("sum"))
	b.Fadd(4, 4, 1)
	b.Stf(4, 0, b.MustAddr("sum"))
	b.Unlock(lockID)
	b.Halt()
	return b.MustBuild()
}

func main() {
	// 1. Functional check against a Go-computed reference.
	const checkThreads = 8
	p := buildDotProduct(checkThreads)
	ref, err := clustersmt.RunFunctional(p, checkThreads)
	if err != nil {
		log.Fatal(err)
	}
	got := ref.ReadFloat(p, "sum", 0)
	want := 0.0
	for i := 0; i < nElems; i++ {
		want += float64(i%7) * 0.5 * float64(i%11) * 0.25
	}
	if math.Abs(got-want) > 1e-9 {
		log.Fatalf("kernel is wrong: got %g, want %g", got, want)
	}
	fmt.Printf("functional check ok: dot product = %g (%d instructions)\n\n", got, ref.Steps)

	// 2. Timing comparison across architectures.
	fmt.Printf("%-5s %8s %7s %8s %8s\n", "arch", "cycles", "IPC", "useful%", "sync%")
	for _, arch := range []clustersmt.Arch{clustersmt.FA8, clustersmt.FA1, clustersmt.SMT2} {
		m := clustersmt.LowEnd(arch)
		res, err := clustersmt.SimulateProgram(m, buildDotProduct(m.Threads()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %8d %7.2f %7.1f%% %7.1f%%\n",
			arch.Name, res.Cycles, res.IPC,
			100*res.Slots.Fraction(clustersmt.SlotUseful),
			100*res.Slots.Fraction(clustersmt.SlotSync))
	}
}
