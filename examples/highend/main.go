// Highend simulates an application on the paper's 4-chip DASH-like
// multiprocessor and reports the coherence behavior: access-class mix,
// directory activity and network traffic — the machinery behind the
// Figure 5/8 experiments.
package main

import (
	"flag"
	"fmt"
	"log"

	"clustersmt"
)

func main() {
	app := flag.String("app", "ocean", "application to run")
	flag.Parse()

	low := clustersmt.LowEnd(clustersmt.SMT2)
	high := clustersmt.HighEnd(clustersmt.SMT2)

	resLow, err := clustersmt.Simulate(low, *app, clustersmt.SizeRef)
	if err != nil {
		log.Fatal(err)
	}
	resHigh, err := clustersmt.Simulate(high, *app, clustersmt.SizeRef)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on SMT2:\n", *app)
	fmt.Printf("  low-end  (1 chip,  %2d threads): %8d cycles, IPC %5.2f\n",
		low.Threads(), resLow.Cycles, resLow.IPC)
	fmt.Printf("  high-end (4 chips, %2d threads): %8d cycles, IPC %5.2f  (speedup %.2fx)\n",
		high.Threads(), resHigh.Cycles, resHigh.IPC,
		float64(resLow.Cycles)/float64(resHigh.Cycles))

	fmt.Println("\nhigh-end load classes (Table 3 rows):")
	names := []string{"L1 hit", "MSHR merge", "L2 hit", "local memory", "remote memory", "remote L2"}
	for cls, n := range resHigh.MemStats.ByClass {
		if n == 0 {
			continue
		}
		avg := float64(resHigh.MemStats.LatencyByClass[cls]) / float64(n)
		fmt.Printf("  %-14s %8d accesses  avg %6.1f cycles\n", names[cls], n, avg)
	}
	fmt.Println("\ndirectory & network:")
	fmt.Printf("  invalidations=%d downgrades=%d writebacks=%d 3-hop-interventions=%d\n",
		resHigh.Invalidations, resHigh.Downgrades, resHigh.Writebacks, resHigh.ThreeHops)
	fmt.Printf("  network messages=%d\n", resHigh.NetMessages)
	fmt.Println("\nsynchronization:")
	fmt.Printf("  lock acquires=%d conflicts=%d barrier episodes=%d\n",
		resHigh.LockAcquires, resHigh.LockConflicts, resHigh.BarrierWaits)
}
