// Archsweep reproduces one column of the paper's Figure 4: it runs a
// single application across every Table 2 architecture on the low-end
// machine and prints the normalized execution times, showing the
// U-shape across the FA family and the clustered SMT2 beating its best
// point.
package main

import (
	"flag"
	"fmt"
	"log"

	"clustersmt"
)

func main() {
	app := flag.String("app", "swim", "application to sweep")
	flag.Parse()

	archs := []clustersmt.Arch{
		clustersmt.FA8, clustersmt.FA4, clustersmt.FA2, clustersmt.FA1,
		clustersmt.SMT4, clustersmt.SMT2, clustersmt.SMT1,
	}

	var base int64
	fmt.Printf("%-5s %10s %8s %7s %8s\n", "arch", "cycles", "norm", "IPC", "useful%")
	for _, arch := range archs {
		res, err := clustersmt.Simulate(clustersmt.LowEnd(arch), *app, clustersmt.SizeRef)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Cycles
		}
		fmt.Printf("%-5s %10d %7.0f%% %7.2f %7.1f%%\n",
			arch.Name, res.Cycles, 100*float64(res.Cycles)/float64(base),
			res.IPC, 100*res.Slots.Fraction(clustersmt.SlotUseful))
	}
	fmt.Printf("\n(%s, low-end machine, normalized to FA8; the paper's Figure 4 column)\n", *app)
}
