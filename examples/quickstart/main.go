// Quickstart: simulate one application on the paper's recommended
// design point (the SMT2 clustered multithreaded processor) and print
// the cycle count, IPC and issue-slot breakdown.
package main

import (
	"fmt"
	"log"

	"clustersmt"
)

func main() {
	machine := clustersmt.LowEnd(clustersmt.SMT2)

	res, err := clustersmt.Simulate(machine, "ocean", clustersmt.SizeTest)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ocean on %s: %d cycles, %d instructions, IPC %.2f\n",
		machine.Name, res.Cycles, res.Committed, res.IPC)
	fmt.Println("where the issue slots went:")
	fractions := res.Slots.Fractions()
	for c := clustersmt.SlotUseful; c <= clustersmt.SlotOther; c++ {
		fmt.Printf("  %-11s %5.1f%%\n", c, 100*fractions[c])
	}
}
