// Multiprogram runs a mix of eight independent sequential jobs — one
// per hardware context, each in its own address space — across the FA
// and SMT organizations: the multiprogrammed-throughput experiment of
// the SMT literature the paper builds on. FA8 pins one job per 1-issue
// core; the SMTs share issue slots across jobs, so mixed-ILP job sets
// finish sooner.
package main

import (
	"fmt"
	"log"

	"clustersmt"
)

func main() {
	// The job mix: each of the six applications as a single-thread
	// sequential job, plus two synthetic fillers.
	var jobs []*clustersmt.Program
	for _, w := range clustersmt.Workloads() {
		jobs = append(jobs, w.Build(1, 1, clustersmt.SizeTest))
	}
	jobs = append(jobs,
		clustersmt.Synthetic(clustersmt.SyntheticSpec{IndepOps: 6, Iters: 1024}).Build(1, 1, clustersmt.SizeTest),
		clustersmt.Synthetic(clustersmt.SyntheticSpec{ChainLen: 6, Iters: 1024}).Build(1, 1, clustersmt.SizeTest),
	)

	fmt.Printf("%-5s %10s %8s %9s\n", "arch", "cycles", "IPC", "useful%")
	var base int64
	// Only the 8-context organizations run the same 8-job mix (FA4/FA2/
	// FA1 would have to drop jobs, which is not a throughput comparison).
	for _, arch := range []clustersmt.Arch{clustersmt.FA8, clustersmt.SMT4, clustersmt.SMT2, clustersmt.SMT1} {
		// Rebuild the jobs per run (a program image is consumed by its
		// simulator).
		var js []*clustersmt.Program
		for _, w := range clustersmt.Workloads() {
			js = append(js, w.Build(1, 1, clustersmt.SizeTest))
		}
		js = append(js,
			clustersmt.Synthetic(clustersmt.SyntheticSpec{IndepOps: 6, Iters: 1024}).Build(1, 1, clustersmt.SizeTest),
			clustersmt.Synthetic(clustersmt.SyntheticSpec{ChainLen: 6, Iters: 1024}).Build(1, 1, clustersmt.SizeTest),
		)
		res, err := clustersmt.SimulateMultiprogram(clustersmt.LowEnd(arch), js)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.Cycles
		}
		fmt.Printf("%-5s %10d %8.2f %8.1f%%  (%.0f%% of FA8)\n",
			arch.Name, res.Cycles, res.IPC,
			100*res.Slots.Fraction(clustersmt.SlotUseful),
			100*float64(res.Cycles)/float64(base))
	}
	_ = jobs
}
