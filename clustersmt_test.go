package clustersmt_test

import (
	"math"
	"testing"

	"clustersmt"
)

func TestFacadeArchitectures(t *testing.T) {
	if len(clustersmt.Architectures()) != 7 {
		t.Fatalf("architectures = %d", len(clustersmt.Architectures()))
	}
	a, err := clustersmt.ArchByName("SMT2")
	if err != nil || a.Clusters != 2 {
		t.Fatalf("SMT2 lookup: %+v, %v", a, err)
	}
	if clustersmt.LowEnd(a).Threads() != 8 || clustersmt.HighEnd(a).Threads() != 32 {
		t.Fatal("machine thread counts wrong")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	ws := clustersmt.Workloads()
	if len(ws) != 6 {
		t.Fatalf("workloads = %d", len(ws))
	}
	if _, err := clustersmt.WorkloadByName("swim"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSimulateByNameAndValue(t *testing.T) {
	m := clustersmt.LowEnd(clustersmt.FA8)
	r1, err := clustersmt.Simulate(m, "vpenta", clustersmt.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := clustersmt.WorkloadByName("vpenta")
	r2, err := clustersmt.Simulate(m, w, clustersmt.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatalf("name vs value runs differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
	if _, err := clustersmt.Simulate(m, "nope", clustersmt.SizeTest); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFacadeCustomProgram(t *testing.T) {
	b := clustersmt.NewProgram("t")
	b.GlobalWords("nthreads", []uint64{1})
	out := b.Global("out", 1)
	b.Li(1, 6)
	b.Li(2, 7)
	b.Mul(3, 1, 2)
	b.St(3, 0, out)
	b.Halt()
	p := b.MustBuild()

	ref, err := clustersmt.RunFunctional(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ref.ReadWord(p, "out", 0); got != 42 {
		t.Fatalf("functional out = %d", got)
	}

	res, err := clustersmt.SimulateProgram(clustersmt.LowEnd(clustersmt.FA1), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 5 {
		t.Fatalf("committed = %d, want 5", res.Committed)
	}
}

func TestFacadeModel(t *testing.T) {
	p := clustersmt.ModelOf(clustersmt.SMT2)
	app := clustersmt.ModelPoint{Threads: 8, ILP: 1}
	if d := p.Delivered(app); math.Abs(d-8) > 1e-9 {
		t.Fatalf("delivered = %v", d)
	}
	if s := clustersmt.ModelChart(p, map[string]clustersmt.ModelPoint{"X": app}); s == "" {
		t.Fatal("empty chart")
	}
}

func TestFacadeSlotBreakdownSums(t *testing.T) {
	res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.SMT4), "fmm", clustersmt.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for c := clustersmt.SlotUseful; c <= clustersmt.SlotOther; c++ {
		sum += res.Slots.Fraction(c)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("slot fractions sum to %v", sum)
	}
}

func TestFacadeSuite(t *testing.T) {
	s := clustersmt.NewSuite(clustersmt.SizeTest)
	fig, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 24 {
		t.Fatalf("figure 7 rows = %d", len(fig.Rows))
	}
}
