package clustersmt_test

import (
	"fmt"
	"log"

	"clustersmt"
)

// ExampleSimulate runs one of the paper's applications on the
// recommended clustered-SMT design point.
func ExampleSimulate() {
	res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.SMT2), "vpenta", clustersmt.SizeTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Committed, "instructions in", res.Cycles, "cycles")
	// Output: 6741 instructions in 1284 cycles
}

// ExampleModelOf evaluates the §2 analytical model for an application
// point.
func ExampleModelOf() {
	proc := clustersmt.ModelOf(clustersmt.SMT2)
	app := clustersmt.ModelPoint{Threads: 5, ILP: 1.6}
	fmt.Printf("delivered %.1f slots/cycle, region %v\n", proc.Delivered(app), proc.Classify(app))
	// Output: delivered 8.0 slots/cycle, region optimal
}

// ExampleNewProgram authors and runs a tiny custom program.
func ExampleNewProgram() {
	b := clustersmt.NewProgram("triple")
	b.GlobalWords("nthreads", []uint64{1})
	out := b.Global("out", 1)
	b.Li(1, 14)
	b.Li(2, 3)
	b.Mul(3, 1, 2)
	b.St(3, 0, out)
	b.Halt()
	p := b.MustBuild()

	ref, err := clustersmt.RunFunctional(p, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("out =", ref.ReadWord(p, "out", 0))
	// Output: out = 42
}

// ExampleSynthetic places a generated workload on the (threads × ILP)
// plane and simulates it.
func ExampleSynthetic() {
	w := clustersmt.Synthetic(clustersmt.SyntheticSpec{ParCap: 2, ChainLen: 4, Iters: 256})
	res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.FA8), w, clustersmt.SizeTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Committed > 0)
	// Output: true
}
