# Tier-1 gate: everything CI requires green.
check: diff race
	go build ./...
	go vet ./...
	go test ./...

# Differential matrix only: scan × wakeup issue crossed with stepped ×
# fast-forward cycle loops, plus sequential × parallel execution, plus
# reference × fast memory paths, plus observability on × off, must
# agree bit-for-bit on the full Result (reflect.DeepEqual) across every
# preset. Fast feedback when touching the issue stage, the quiescence
# skip, the parallel loop, the memory hierarchy, or the metrics/tracing
# hooks.
diff:
	go test ./internal/core -run 'TestEventDriven|TestWakeup|TestStoreForwardingMap|TestMemPath|TestObs|TestParallel|TestMetricsRingDrops'

# Race-check the concurrent layers: the core parallel execution mode
# (differential + mid-fast-forward cancellation), harness (suite cache
# + singleflight + cancellation) and service (queue, two-tier cache,
# backpressure, e2e HTTP).
race:
	go test -race ./internal/core -run 'TestParallel|TestInterrupt|TestObsFrameConservationParallel|TestMetricsRingDropsParallel'
	go test -race ./internal/harness/... ./internal/service/...

# Regenerate BENCH_core.json (fast-forward, wakeup and memory-path
# speedups).
bench:
	WRITE_BENCH=1 go test -run TestWriteBenchCoreJSON -v .

.PHONY: check diff race bench
