# Tier-1 gate: everything CI requires green.
check:
	go build ./...
	go vet ./...
	go test ./...

# Race-check the concurrent harness (suite cache + singleflight).
race:
	go test -race ./internal/harness/...

# Regenerate BENCH_core.json (event-driven fast-forward speedup).
bench:
	WRITE_BENCH=1 go test -run TestWriteBenchCoreJSON -v .

.PHONY: check race bench
