# Tier-1 gate: everything CI requires green.
check: diff race
	go build ./...
	go vet ./...
	go test ./...

# Differential matrix only: scan × wakeup issue crossed with stepped ×
# fast-forward cycle loops, plus sequential × parallel execution, plus
# reference × fast memory paths, plus observability on × off, plus
# run-from-checkpoint × run-from-scratch (and the golden on-disk
# snapshot fixture), plus service telemetry on × off, plus allocation
# policy static × none (and dynamic-policy determinism under every
# loop), must agree bit-for-bit on the full Result (reflect.DeepEqual)
# across every preset. Fast feedback when touching the issue stage, the
# quiescence skip, the parallel loop, the memory hierarchy, the
# metrics/tracing hooks, the snapshot codec, or the alloc subsystem.
diff:
	go test ./internal/core -run 'TestEventDriven|TestWakeup|TestStoreForwardingMap|TestMemPath|TestObs|TestParallel|TestMetricsRingDrops|TestCheckpointDifferential|TestSnapshotGolden|TestAlloc'
	go test ./internal/service -run TestTelemetryDifferential

# Race-check the concurrent layers: the core parallel execution mode
# (differential + mid-fast-forward cancellation), COW snapshot forking
# (children racing each other and the continuing parent), harness
# (suite cache + singleflight + warm-up sharing + cancellation),
# service (queue, two-tier cache, backpressure, snapshot persistence,
# e2e HTTP, cross-node tracing) and telemetry (concurrent scrapes
# against concurrent observers, span-ring races).
race:
	go test -race ./internal/core -run 'TestParallel|TestInterrupt|TestObsFrameConservationParallel|TestMetricsRingDropsParallel|TestSnapshotRoundTripRace|TestAllocParallel'
	go test -race ./internal/harness/... ./internal/service/... ./internal/telemetry/...

# Regenerate BENCH_core.json (fast-forward, wakeup, memory-path,
# observability, parallel-execution, checkpoint-forking and fabric
# scale-out measurements).
bench:
	WRITE_BENCH=1 go test -run TestWriteBenchCoreJSON -v .

.PHONY: check diff race bench
