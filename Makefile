# Tier-1 gate: everything CI requires green.
check: diff
	go build ./...
	go vet ./...
	go test ./...

# Differential matrix only: scan × wakeup issue crossed with stepped ×
# fast-forward cycle loops must agree bit-for-bit on the full Result
# (reflect.DeepEqual) across every preset. Fast feedback when touching
# the issue stage or the quiescence skip.
diff:
	go test ./internal/core -run 'TestEventDriven|TestWakeup|TestStoreForwardingMap'

# Race-check the concurrent harness (suite cache + singleflight).
race:
	go test -race ./internal/harness/...

# Regenerate BENCH_core.json (event-driven fast-forward speedup).
bench:
	WRITE_BENCH=1 go test -run TestWriteBenchCoreJSON -v .

.PHONY: check diff race bench
