// Ablation benchmarks for the design choices DESIGN.md calls out: each
// sub-benchmark varies one parameter of the base design and reports the
// resulting cycle count, quantifying how much that mechanism matters.
package clustersmt_test

import (
	"fmt"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/workloads"
)

func runWith(b *testing.B, m config.Machine, app string, tweak func(*core.Simulator)) int64 {
	b.Helper()
	w, err := workloads.ByName(app)
	if err != nil {
		b.Fatal(err)
	}
	p := w.Build(m.Threads(), m.Chips, workloads.SizeRef)
	sim, err := core.New(m, p)
	if err != nil {
		b.Fatal(err)
	}
	if tweak != nil {
		tweak(sim)
	}
	res, err := sim.Run()
	if err != nil {
		b.Fatal(err)
	}
	return res.Cycles
}

// BenchmarkAblationFetchPolicy compares round-robin fetch against the
// ICOUNT policy on the centralized SMT1, where the paper predicts the
// fetch/queue-clogging bottleneck (§5.2 cites ICOUNT as the remedy).
func BenchmarkAblationFetchPolicy(b *testing.B) {
	for _, app := range []string{"vpenta", "ocean"} {
		for _, icount := range []bool{false, true} {
			name := fmt.Sprintf("%s/roundrobin", app)
			if icount {
				name = fmt.Sprintf("%s/icount", app)
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cycles := runWith(b, config.LowEnd(config.SMT1), app, func(s *core.Simulator) {
						s.SetICountFetch(icount)
					})
					b.ReportMetric(float64(cycles), "cycles")
				}
			})
		}
	}
}

// BenchmarkAblationMSHRs sweeps the outstanding-load budget on the
// memory-bound workload: the paper's 32 MSHRs vs starved and doubled
// configurations.
func BenchmarkAblationMSHRs(b *testing.B) {
	for _, mshrs := range []int{2, 8, 32, 64} {
		b.Run(fmt.Sprintf("mshrs=%d", mshrs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := config.LowEnd(config.SMT2)
				m.Mem.MSHRs = mshrs
				cycles := runWith(b, m, "ocean", nil)
				b.ReportMetric(float64(cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationBanks sweeps L1 banking (Table 3 uses 7 banks).
func BenchmarkAblationBanks(b *testing.B) {
	for _, banks := range []int{1, 2, 7, 16} {
		b.Run(fmt.Sprintf("banks=%d", banks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := config.LowEnd(config.SMT1)
				m.Mem.L1Banks = banks
				m.Mem.L2Banks = banks
				cycles := runWith(b, m, "ocean", nil)
				b.ReportMetric(float64(cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationPredictor sweeps the branch-prediction table from
// trivially small to the paper's 2K entries on the branchiest workload.
func BenchmarkAblationPredictor(b *testing.B) {
	for _, entries := range []int{16, 128, 2048} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := config.LowEnd(config.FA1)
				m.Arch.PredictorEntries = entries
				m.Arch.BTBEntries = entries
				cycles := runWith(b, m, "fmm", nil)
				b.ReportMetric(float64(cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationWindow sweeps the per-cluster window/rename capacity
// of a 4-issue cluster pair (FA2's shape) to show where the Table 2
// sizing sits on the curve.
func BenchmarkAblationWindow(b *testing.B) {
	for _, window := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := config.LowEnd(config.FA2)
				m.Arch.Name = fmt.Sprintf("FA2w%d", window)
				m.Arch.WindowEntries = window
				m.Arch.RenameInt = window
				m.Arch.RenameFP = window
				cycles := runWith(b, m, "tomcatv", nil)
				b.ReportMetric(float64(cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationRemoteLatency scales the Table 3 remote latencies on
// the high-end machine (the paper notes its 4-node latencies are low;
// this shows the clustered SMT's sensitivity to slower networks).
func BenchmarkAblationRemoteLatency(b *testing.B) {
	for _, scale := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("remote-x%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := config.HighEnd(config.SMT2)
				m.Mem.RemoteMemLat *= scale
				m.Mem.RemoteL2Lat *= scale
				cycles := runWith(b, m, "ocean", nil)
				b.ReportMetric(float64(cycles), "cycles")
			}
		})
	}
}
