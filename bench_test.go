// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus microbenchmarks of the simulator's building blocks.
// Each BenchmarkFigN op regenerates the complete experiment at the
// reference input size; the printed metrics carry the headline numbers
// (normalized execution times) so `go test -bench .` doubles as the
// reproduction run.
package clustersmt_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"clustersmt"
	"clustersmt/internal/config"
	"clustersmt/internal/harness"
	"clustersmt/internal/model"
	"clustersmt/internal/workloads"
)

// BenchmarkTable1FunctionalUnits exercises every opcode class through a
// single-thread timing run (the Table 1 latencies in action).
func BenchmarkTable1FunctionalUnits(b *testing.B) {
	p := buildALUKernel()
	for i := 0; i < b.N; i++ {
		res, err := clustersmt.SimulateProgram(clustersmt.LowEnd(clustersmt.FA1), p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "cycles")
	}
}

func buildALUKernel() *clustersmt.Program {
	bld := clustersmt.NewProgram("alu")
	bld.GlobalWords("nthreads", []uint64{1})
	bld.Li(1, 0)
	bld.Li(2, 2000)
	bld.Fli(1, 1.5)
	bld.Fli(2, 0.75)
	bld.CountedLoop(1, 2, func() {
		bld.Add(3, 1, 2)
		bld.Mul(4, 3, 1)
		bld.Div(5, 4, 2)
		bld.Fadd(3, 1, 2)
		bld.Fmul(4, 1, 2)
		bld.Fdiv(5, 1, 2)
	})
	bld.Halt()
	return bld.MustBuild()
}

// BenchmarkTable2Architectures runs one small workload across all seven
// Table 2 presets.
func BenchmarkTable2Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, arch := range clustersmt.Architectures() {
			if _, err := clustersmt.Simulate(clustersmt.LowEnd(arch), "vpenta", clustersmt.SizeTest); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable3MemoryHierarchy stresses the Table 3 hierarchy with
// the memory-bound workload.
func BenchmarkTable3MemoryHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.FA1), "ocean", clustersmt.SizeTest)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Slots.Fraction(clustersmt.SlotMemory), "memory-slot-%")
	}
}

// BenchmarkFig1Model evaluates the §2 analytical model over a dense
// sweep of application points and all architectures.
func BenchmarkFig1Model(b *testing.B) {
	procs := make([]model.Proc, 0, 7)
	for _, a := range config.AllArchs {
		procs = append(procs, model.FromArch(a))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0.0
		for t := 0.25; t <= 8; t += 0.25 {
			for ilp := 0.25; ilp <= 8; ilp += 0.25 {
				p := model.Point{Threads: t, ILP: ilp}
				for _, pr := range procs {
					total += pr.Delivered(p)
					_ = pr.Classify(p)
				}
			}
		}
		if total <= 0 {
			b.Fatal("model produced nothing")
		}
	}
}

func benchFigure(b *testing.B, run func(*harness.Suite) (*harness.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		suite := harness.NewSuite(workloads.SizeRef)
		fig, err := run(suite)
		if err != nil {
			b.Fatal(err)
		}
		// Surface the headline metric: SMT2's average normalized
		// execution time across applications.
		sum := 0.0
		for _, app := range fig.Apps {
			sum += fig.Get(app, "SMT2").Normalized
		}
		b.ReportMetric(sum/float64(len(fig.Apps)), "SMT2-norm")
		if !testing.Short() && b.N == 1 {
			fmt.Print(fig.Render())
		}
	}
}

// BenchmarkFig4LowEndFAvsSMT2 regenerates Figure 4 (FA8/FA4/FA2/FA1 vs
// SMT2, low-end machine, six applications).
func BenchmarkFig4LowEndFAvsSMT2(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure4)
}

// BenchmarkFig5HighEndFAvsSMT2 regenerates Figure 5 (the same
// comparison on the 4-chip machine).
func BenchmarkFig5HighEndFAvsSMT2(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure5)
}

// BenchmarkFig6Placement regenerates the Figure 6 measurements (average
// threads on FA8 × per-thread ILP on FA1, both machines).
func BenchmarkFig6Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := harness.NewSuite(workloads.SizeRef)
		for _, highEnd := range []bool{false, true} {
			pts, err := suite.Placement(highEnd)
			if err != nil {
				b.Fatal(err)
			}
			if len(pts) != 6 {
				b.Fatal("missing placements")
			}
		}
	}
}

// BenchmarkFig7LowEndSMTs regenerates Figure 7 (SMT8/SMT4/SMT2/SMT1,
// low-end machine).
func BenchmarkFig7LowEndSMTs(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure7)
}

// BenchmarkFig8HighEndSMTs regenerates Figure 8 (the same on the 4-chip
// machine).
func BenchmarkFig8HighEndSMTs(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure8)
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (simulated instructions per host second) on the densest workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.SMT2), "swim", clustersmt.SizeRef)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Committed
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkPerApplication runs each workload once on SMT2 (low-end,
// reference input) as individual sub-benchmarks.
func BenchmarkPerApplication(b *testing.B) {
	for _, w := range clustersmt.Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.SMT2), w, clustersmt.SizeRef)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.IPC, "IPC")
			}
		})
	}
}

// buildStallHeavy is the event-driven fast-forward's motivating
// workload: one thread chases a pointer chain through remote L2 (a
// serial section) while the other 31 contexts wait at a barrier. On the
// high-end machine almost every cycle is globally quiescent — all
// clusters are blocked on the barrier or on a long-latency load — so
// the cycle loop can jump from event to event.
func buildStallHeavy(links int64) *clustersmt.Program {
	b := clustersmt.NewProgram("pchase")
	b.GlobalWords("nthreads", []uint64{32})
	const n = 4096
	data := b.Global("chain", n)
	b.Global("out", 1)
	b.IfThread0(func() {
		b.Li(2, 0)
		b.Li(3, 0)
		b.Li(4, links)
		b.CountedLoop(3, 4, func() {
			b.Shli(5, 2, 3)
			b.Ld(2, 5, data)
		})
		b.St(2, 0, b.MustAddr("out"))
	})
	b.Barrier(0)
	b.Halt()
	p := b.MustBuild()
	base := p.SymbolAddr("chain")
	for i := int64(0); i < n; i++ {
		p.Init[base+i*8] = uint64((i*577 + 1) % n)
	}
	return p
}

func runStallHeavy(eventDriven bool) (*clustersmt.Result, error) {
	sim, err := clustersmt.NewSimulator(clustersmt.HighEnd(clustersmt.SMT2), buildStallHeavy(2000))
	if err != nil {
		return nil, err
	}
	sim.EventDriven = eventDriven
	return sim.Run()
}

// BenchmarkCoreFastForward compares plain cycle-by-cycle stepping
// against the event-driven fast-forward on the stall-heavy workload
// (results are bit-identical; see internal/core/fastforward_test.go).
// The sim-cycles/s metric is the one recorded in BENCH_core.json.
func BenchmarkCoreFastForward(b *testing.B) {
	for _, mode := range []struct {
		name        string
		eventDriven bool
	}{
		{"cycle-stepped", false},
		{"event-driven", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := runStallHeavy(mode.eventDriven)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}

// TestWriteBenchCoreJSON records the fast-forward speedup in
// BENCH_core.json (run via `make bench`; gated so ordinary test runs
// stay hermetic and fast).
func TestWriteBenchCoreJSON(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 (make bench) to write BENCH_core.json")
	}
	const reps = 5
	best := func(eventDriven bool) (time.Duration, int64) {
		min := time.Duration(1<<63 - 1)
		var cycles int64
		for i := 0; i < reps; i++ {
			start := time.Now()
			res, err := runStallHeavy(eventDriven)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < min {
				min = d
			}
			cycles = res.Cycles
		}
		return min, cycles
	}
	stepped, cycles := best(false)
	event, _ := best(true)
	report := struct {
		Benchmark        string  `json:"benchmark"`
		Machine          string  `json:"machine"`
		Workload         string  `json:"workload"`
		SimCycles        int64   `json:"sim_cycles"`
		SteppedCyclesSec float64 `json:"cycle_stepped_sim_cycles_per_sec"`
		EventCyclesSec   float64 `json:"event_driven_sim_cycles_per_sec"`
		Speedup          float64 `json:"speedup"`
	}{
		Benchmark: "BenchmarkCoreFastForward",
		Machine:   clustersmt.HighEnd(clustersmt.SMT2).Name,
		Workload:  "pchase (serial remote-L2 pointer chase, 31 threads at a barrier)",
		SimCycles: cycles,
		SteppedCyclesSec: float64(cycles) / stepped.Seconds(),
		EventCyclesSec:   float64(cycles) / event.Seconds(),
		Speedup:          stepped.Seconds() / event.Seconds(),
	}
	if report.Speedup < 1.5 {
		t.Fatalf("event-driven speedup %.2fx below the 1.5x floor", report.Speedup)
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("speedup %.2fx (%s stepped, %s event-driven over %d cycles)",
		report.Speedup, stepped, event, cycles)
}

// BenchmarkMultiprogram measures multiprogrammed throughput: eight
// independent sequential jobs (the six applications plus two synthetic
// fillers) on each 8-context organization — the workload class of the
// SMT studies the paper builds on.
func BenchmarkMultiprogram(b *testing.B) {
	mix := func() []*clustersmt.Program {
		var js []*clustersmt.Program
		for _, w := range clustersmt.Workloads() {
			js = append(js, w.Build(1, 1, clustersmt.SizeTest))
		}
		js = append(js,
			clustersmt.Synthetic(clustersmt.SyntheticSpec{IndepOps: 6, Iters: 1024}).Build(1, 1, clustersmt.SizeTest),
			clustersmt.Synthetic(clustersmt.SyntheticSpec{ChainLen: 6, Iters: 1024}).Build(1, 1, clustersmt.SizeTest),
		)
		return js
	}
	for _, arch := range []clustersmt.Arch{clustersmt.FA8, clustersmt.SMT4, clustersmt.SMT2, clustersmt.SMT1} {
		b.Run(arch.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := clustersmt.SimulateMultiprogram(clustersmt.LowEnd(arch), mix())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "cycles")
			}
		})
	}
}
