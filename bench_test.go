// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus microbenchmarks of the simulator's building blocks.
// Each BenchmarkFigN op regenerates the complete experiment at the
// reference input size; the printed metrics carry the headline numbers
// (normalized execution times) so `go test -bench .` doubles as the
// reproduction run.
package clustersmt_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"clustersmt"
	"clustersmt/internal/config"
	"clustersmt/internal/harness"
	"clustersmt/internal/isa"
	"clustersmt/internal/model"
	"clustersmt/internal/service"
	"clustersmt/internal/workloads"
)

// BenchmarkTable1FunctionalUnits exercises every opcode class through a
// single-thread timing run (the Table 1 latencies in action).
func BenchmarkTable1FunctionalUnits(b *testing.B) {
	p := buildALUKernel()
	for i := 0; i < b.N; i++ {
		res, err := clustersmt.SimulateProgram(clustersmt.LowEnd(clustersmt.FA1), p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "cycles")
	}
}

func buildALUKernel() *clustersmt.Program {
	bld := clustersmt.NewProgram("alu")
	bld.GlobalWords("nthreads", []uint64{1})
	bld.Li(1, 0)
	bld.Li(2, 2000)
	bld.Fli(1, 1.5)
	bld.Fli(2, 0.75)
	bld.CountedLoop(1, 2, func() {
		bld.Add(3, 1, 2)
		bld.Mul(4, 3, 1)
		bld.Div(5, 4, 2)
		bld.Fadd(3, 1, 2)
		bld.Fmul(4, 1, 2)
		bld.Fdiv(5, 1, 2)
	})
	bld.Halt()
	return bld.MustBuild()
}

// BenchmarkTable2Architectures runs one small workload across all seven
// Table 2 presets.
func BenchmarkTable2Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, arch := range clustersmt.Architectures() {
			if _, err := clustersmt.Simulate(clustersmt.LowEnd(arch), "vpenta", clustersmt.SizeTest); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable3MemoryHierarchy stresses the Table 3 hierarchy with
// the memory-bound workload.
func BenchmarkTable3MemoryHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.FA1), "ocean", clustersmt.SizeTest)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Slots.Fraction(clustersmt.SlotMemory), "memory-slot-%")
	}
}

// BenchmarkFig1Model evaluates the §2 analytical model over a dense
// sweep of application points and all architectures.
func BenchmarkFig1Model(b *testing.B) {
	procs := make([]model.Proc, 0, 7)
	for _, a := range config.AllArchs {
		procs = append(procs, model.FromArch(a))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0.0
		for t := 0.25; t <= 8; t += 0.25 {
			for ilp := 0.25; ilp <= 8; ilp += 0.25 {
				p := model.Point{Threads: t, ILP: ilp}
				for _, pr := range procs {
					total += pr.Delivered(p)
					_ = pr.Classify(p)
				}
			}
		}
		if total <= 0 {
			b.Fatal("model produced nothing")
		}
	}
}

func benchFigure(b *testing.B, run func(*harness.Suite) (*harness.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		suite := harness.NewSuite(workloads.SizeRef)
		fig, err := run(suite)
		if err != nil {
			b.Fatal(err)
		}
		// Surface the headline metric: SMT2's average normalized
		// execution time across applications.
		sum := 0.0
		for _, app := range fig.Apps {
			sum += fig.Get(app, "SMT2").Normalized
		}
		b.ReportMetric(sum/float64(len(fig.Apps)), "SMT2-norm")
		if !testing.Short() && b.N == 1 {
			fmt.Print(fig.Render())
		}
	}
}

// BenchmarkFig4LowEndFAvsSMT2 regenerates Figure 4 (FA8/FA4/FA2/FA1 vs
// SMT2, low-end machine, six applications).
func BenchmarkFig4LowEndFAvsSMT2(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure4)
}

// BenchmarkFig5HighEndFAvsSMT2 regenerates Figure 5 (the same
// comparison on the 4-chip machine).
func BenchmarkFig5HighEndFAvsSMT2(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure5)
}

// BenchmarkFig6Placement regenerates the Figure 6 measurements (average
// threads on FA8 × per-thread ILP on FA1, both machines).
func BenchmarkFig6Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := harness.NewSuite(workloads.SizeRef)
		for _, highEnd := range []bool{false, true} {
			pts, err := suite.Placement(highEnd)
			if err != nil {
				b.Fatal(err)
			}
			if len(pts) != 6 {
				b.Fatal("missing placements")
			}
		}
	}
}

// BenchmarkFig7LowEndSMTs regenerates Figure 7 (SMT8/SMT4/SMT2/SMT1,
// low-end machine).
func BenchmarkFig7LowEndSMTs(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure7)
}

// BenchmarkFig8HighEndSMTs regenerates Figure 8 (the same on the 4-chip
// machine).
func BenchmarkFig8HighEndSMTs(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure8)
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (simulated instructions per host second) on the densest workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.SMT2), "swim", clustersmt.SizeRef)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Committed
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkPerApplication runs each workload once on SMT2 (low-end,
// reference input) as individual sub-benchmarks.
func BenchmarkPerApplication(b *testing.B) {
	for _, w := range clustersmt.Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.SMT2), w, clustersmt.SizeRef)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.IPC, "IPC")
			}
		})
	}
}

// buildStallHeavy is the event-driven fast-forward's motivating
// workload: one thread chases a pointer chain through remote L2 (a
// serial section) while the other 31 contexts wait at a barrier. On the
// high-end machine almost every cycle is globally quiescent — all
// clusters are blocked on the barrier or on a long-latency load — so
// the cycle loop can jump from event to event.
func buildStallHeavy(links int64) *clustersmt.Program {
	b := clustersmt.NewProgram("pchase")
	b.GlobalWords("nthreads", []uint64{32})
	const n = 4096
	data := b.Global("chain", n)
	b.Global("out", 1)
	b.IfThread0(func() {
		b.Li(2, 0)
		b.Li(3, 0)
		b.Li(4, links)
		b.CountedLoop(3, 4, func() {
			b.Shli(5, 2, 3)
			b.Ld(2, 5, data)
		})
		b.St(2, 0, b.MustAddr("out"))
	})
	b.Barrier(0)
	b.Halt()
	p := b.MustBuild()
	base := p.SymbolAddr("chain")
	for i := int64(0); i < n; i++ {
		p.Init[base+i*8] = uint64((i*577 + 1) % n)
	}
	return p
}

func runStallHeavy(eventDriven bool) (*clustersmt.Result, error) {
	sim, err := clustersmt.NewSimulator(clustersmt.HighEnd(clustersmt.SMT2), buildStallHeavy(2000))
	if err != nil {
		return nil, err
	}
	sim.EventDriven = eventDriven
	return sim.Run()
}

// BenchmarkCoreFastForward compares plain cycle-by-cycle stepping
// against the event-driven fast-forward on the stall-heavy workload
// (results are bit-identical; see internal/core/fastforward_test.go).
// The sim-cycles/s metric is the one recorded in BENCH_core.json.
func BenchmarkCoreFastForward(b *testing.B) {
	for _, mode := range []struct {
		name        string
		eventDriven bool
	}{
		{"cycle-stepped", false},
		{"event-driven", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := runStallHeavy(mode.eventDriven)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}

// buildComputeBound is the wakeup issue stage's motivating workload:
// the inverse of pchase. Two contexts per SMT1 chip each grind a
// serial unpipelined-Fdiv dependence chain — at 7 cycles per link that
// is well under one instruction per cycle per chip, yet the chains'
// in-flight tails pack all four 128-entry windows with waiting
// entries. Thread 0 is a ticker: a serial one-cycle integer Add chain
// that issues and commits every single cycle, which pins the
// quiescence fast-forward off for the whole machine (quiescence is
// global) for the whole run — it is sized to outlast the Fdiv
// threads. The remaining contexts halt immediately so the per-cycle
// bookkeeping outside the issue stage stays small. All the host time
// therefore goes to the issue stage itself: the full-window scan
// re-polls ~500 waiting Fdivs every cycle, while the wakeup path
// touches only the ticker plus the rare Fdiv completion events.
func buildComputeBound(fdivIters, tickIters int64) *clustersmt.Program {
	b := clustersmt.NewProgram("fdivchain")
	b.GlobalWords("nthreads", []uint64{32})
	b.Li(9, 0)
	b.Li(11, 1)
	b.Blt(isa.RegTID, 11, "ticker") // thread 0
	b.Li(11, 9)
	b.Blt(isa.RegTID, 11, "fdiv") // threads 1..8: two per chip
	b.Halt()                      // the rest retire immediately

	b.Label("ticker")
	b.Li(1, 1)
	b.Li(2, 0)
	b.Li(10, tickIters)
	b.CountedLoop(9, 10, func() {
		for k := 0; k < 24; k++ {
			b.Add(2, 2, 1)
		}
	})
	b.Halt()

	b.Label("fdiv")
	b.Fli(1, 1.0)
	b.Fli(2, 1.0001)
	b.Li(10, fdivIters)
	b.CountedLoop(9, 10, func() {
		for k := 0; k < 4; k++ {
			b.Fdiv(1, 1, 2)
		}
	})
	b.Halt()
	return b.MustBuild()
}

// newComputeBound builds the benchmark simulator: ICOUNT fetch keeps
// the ticker thread — always the fewest in-flight instructions, since
// its entries commit the cycle after they issue — fed with the window
// slots the Fdiv hoarders release, so its one-instruction-per-cycle
// stream never starves.
func newComputeBound(eventIssue bool) (*clustersmt.Simulator, error) {
	sim, err := clustersmt.NewSimulator(clustersmt.HighEnd(clustersmt.SMT1), buildComputeBound(1600, 2100))
	if err != nil {
		return nil, err
	}
	sim.SetICountFetch(true)
	sim.EventIssue = eventIssue
	return sim, nil
}

func runComputeBound(eventIssue bool) (*clustersmt.Result, error) {
	sim, err := newComputeBound(eventIssue)
	if err != nil {
		return nil, err
	}
	return sim.Run()
}

// BenchmarkCoreWakeup compares the reference full-window issue scan
// against the dependence-driven wakeup path on the compute-bound
// workload (results are bit-identical; see
// internal/core/fastforward_test.go and wakeup_test.go). The
// sim-cycles/s metric is the one recorded in BENCH_core.json.
func BenchmarkCoreWakeup(b *testing.B) {
	for _, mode := range []struct {
		name       string
		eventIssue bool
	}{
		{"scan", false},
		{"wakeup", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := runComputeBound(mode.eventIssue)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}

// buildMemBound is the memory-path fast paths' motivating workload:
// thread 0 chases a pointer chain whose 32KB footprint spills L1 (a
// serial stream of L2/remote misses through the directory), while the
// other 31 threads stride through a shared 512KB region one line per
// load — every load opens a new line, so each chip's in-flight misses
// pin its MSHR file at capacity and rejected loads retry every cycle.
// On the reference implementations each of those retries pays an
// O(pending) MSHR map sweep and every directory touch chases a
// per-line pointer; the fast paths make retirement amortized O(1) and
// the directory an inline open-addressed table.
func buildMemBound(iters int64) *clustersmt.Program {
	b := clustersmt.NewProgram("memstride")
	b.GlobalWords("nthreads", []uint64{32})
	const (
		chainLen    = 4096
		streamWords = 64 * 1024 // 512KB: past the shrunken 64KB L2
		regionBytes = streamWords * 8
	)
	stream := b.Global("stream", streamWords)
	chain := b.Global("chain", chainLen)
	b.Global("out", 1)

	b.Li(1, 1)
	b.Blt(isa.RegTID, 1, "chase") // thread 0

	// Threads 1..31: strided remote-line streaming, phase-shifted so
	// each walks its own window of the region. Eight independent loads
	// per iteration keep many misses in flight.
	b.Shli(2, isa.RegTID, 14) // phase = tid * 16KB
	b.Li(3, 0)                // running byte offset
	b.Li(4, 0)
	b.Li(5, iters)
	b.CountedLoop(4, 5, func() {
		for k := 0; k < 8; k++ {
			b.Add(6, 3, 2)
			b.Andi(6, 6, regionBytes-1)
			b.Ld(7, 6, stream)
			b.Addi(3, 3, 64)
		}
	})
	b.Jump("join")

	b.Label("chase")
	b.Li(2, 0)
	b.Li(3, 0)
	b.Li(4, 2*iters)
	b.CountedLoop(3, 4, func() {
		b.Shli(5, 2, 3)
		b.Ld(2, 5, chain)
	})
	b.St(2, 0, b.MustAddr("out"))

	b.Label("join")
	b.Barrier(0)
	b.Halt()
	p := b.MustBuild()
	base := p.SymbolAddr("chain")
	for i := int64(0); i < chainLen; i++ {
		p.Init[base+i*8] = uint64((i*577 + 1) % chainLen)
	}
	return p
}

// memBoundMachine is the high-end machine with L1/L2 shrunk so the
// benchmark's footprint is memory-resident (the regime of Figs. 4-8's
// memory slots) without needing a multi-megabyte image.
func memBoundMachine() clustersmt.Machine {
	m := clustersmt.HighEnd(clustersmt.SMT2)
	m.Mem.L1SizeKB = 8
	m.Mem.L2SizeKB = 64
	return m
}

func runMemBound(reference bool) (*clustersmt.Result, error) {
	sim, err := clustersmt.NewSimulator(memBoundMachine(), buildMemBound(900))
	if err != nil {
		return nil, err
	}
	sim.SetReferenceMemPaths(reference)
	return sim.Run()
}

// BenchmarkCoreMemory compares the reference memory-path structures
// (MSHR map sweep, directory pointer map, double-walk L1 probe)
// against the fast paths on the memory-bound workload (results are
// bit-identical; see internal/core/memref_test.go). The sim-cycles/s
// metric is the one recorded in BENCH_core.json.
func BenchmarkCoreMemory(b *testing.B) {
	for _, mode := range []struct {
		name      string
		reference bool
	}{
		{"reference", true},
		{"fastpath", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := runMemBound(mode.reference)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}

// buildFPStream is the parallel execution mode's motivating workload:
// every one of the 32 contexts grinds twelve independent FP multiply
// chains with no memory traffic at all, so each chip's clusters issue
// at full width every cycle and no load can ever reach the directory —
// the per-cycle chip phases run concurrently for essentially the whole
// run, and the per-cycle work dwarfs the two rendezvous the coordinator
// pays per cycle.
func buildFPStream(iters int64) *clustersmt.Program {
	b := clustersmt.NewProgram("fpstream")
	b.GlobalWords("nthreads", []uint64{32})
	for k := 1; k <= 12; k++ {
		b.Fli(isa.Reg(k), 1.0+float64(k)/16)
	}
	b.Fli(15, 1.0001)
	b.Li(9, 0)
	b.Li(10, iters)
	b.CountedLoop(9, 10, func() {
		for k := 1; k <= 12; k++ {
			b.Fmul(isa.Reg(k), isa.Reg(k), 15)
		}
	})
	b.Halt()
	return b.MustBuild()
}

func runFPStream(parallel bool) (*clustersmt.Result, error) {
	sim, err := clustersmt.NewSimulator(clustersmt.HighEnd(clustersmt.SMT2), buildFPStream(3000))
	if err != nil {
		return nil, err
	}
	sim.Parallel = parallel
	return sim.Run()
}

// BenchmarkCoreParallel compares the sequential cycle loop against the
// per-chip parallel execution mode on the FP-streaming workload
// (results are bit-identical; see internal/core/parallel_test.go). The
// sim-cycles/s metric is the one recorded in BENCH_core.json. Only
// meaningful with GOMAXPROCS >= 4 (one host core per simulated chip).
func BenchmarkCoreParallel(b *testing.B) {
	for _, mode := range []struct {
		name     string
		parallel bool
	}{
		{"sequential", false},
		{"parallel", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := runFPStream(mode.parallel)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}

// runObsOverhead runs the memory-bound paper workload with the
// observability subsystem either fully off (the default: one nil check
// per cycle) or sampling a frame every DefaultMetricsInterval cycles
// into a ring. Results are bit-identical either way (see
// internal/core/obs_test.go); only host time may differ.
func runObsOverhead(sampled bool) (*clustersmt.Result, error) {
	m := clustersmt.LowEnd(clustersmt.SMT2)
	w, err := clustersmt.WorkloadByName("ocean")
	if err != nil {
		return nil, err
	}
	sim, err := clustersmt.NewSimulator(m, w.Build(m.Threads(), m.Chips, clustersmt.SizeRef))
	if err != nil {
		return nil, err
	}
	if sampled {
		sim.EnableMetrics(clustersmt.DefaultMetricsInterval, 0)
	}
	return sim.Run()
}

// BenchmarkObsOverhead measures the cost of interval metrics: the
// disabled leg is the plain simulator (sampling off), the sampled leg
// snapshots a frame every 10k cycles. The sim-cycles/s metric is the
// one recorded in BENCH_core.json.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		sampled bool
	}{
		{"disabled", false},
		{"sampled", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := runObsOverhead(mode.sampled)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
		})
	}
}

// sweepForkWarmupIters sizes the shared warm-up prefix of the sweep-
// fork benchmark so warm-up dominates each point's run time: ~36k+
// cycles of serial chained FP against a few-hundred-cycle parallel
// body. That ratio is what checkpoint forking amortizes.
const sweepForkWarmupIters = 12000

// sweepForkSpecs is the 16-point (ChainLen x IndepOps) sweep grid of
// the checkpoint-forking benchmark. Every variant differs only in
// post-prefix knobs, so all sixteen share one prefix key and fork from
// a single warmed parent.
func sweepForkSpecs() []clustersmt.SyntheticSpec {
	var specs []clustersmt.SyntheticSpec
	for _, chain := range []int{0, 2, 4, 8} {
		for _, indep := range []int{0, 2, 4, 6} {
			specs = append(specs, clustersmt.SyntheticSpec{
				ChainLen: chain, IndepOps: indep,
				Iters: 192, WarmupIters: sweepForkWarmupIters,
			})
		}
	}
	return specs
}

// sweepForkWarmTarget probes how many cycles the shared warm-up prefix
// lasts and returns a checkpoint cycle proven to still be inside it
// (the probe observed PrefixValid at that exact pause point, and runs
// are deterministic). Probing instead of hardcoding keeps the
// benchmark honest if instruction latencies ever change.
func sweepForkWarmTarget(spec clustersmt.SyntheticSpec) (int64, error) {
	m := clustersmt.LowEnd(clustersmt.SMT2)
	sim, err := clustersmt.NewSimulator(m, clustersmt.Synthetic(spec).Build(m.Threads(), m.Chips, clustersmt.SizeTest))
	if err != nil {
		return 0, err
	}
	const step = 4096
	last := int64(0)
	for target := int64(step); ; target += step {
		if err := sim.RunTo(target); err != nil {
			return 0, err
		}
		if sim.Done() || !sim.PrefixValid() {
			break
		}
		last = target
	}
	if last == 0 {
		return 0, fmt.Errorf("warm-up prefix over before cycle %d; enlarge sweepForkWarmupIters", step)
	}
	return last, nil
}

// runForkSweep runs the sweep grid through one fresh Suite on the
// low-end SMT2, warm-started at warmCycles (0 = every point from
// scratch), returning the per-point results and the fork count.
func runForkSweep(specs []clustersmt.SyntheticSpec, warmCycles int64) ([]*clustersmt.Result, int64, error) {
	suite := harness.NewSuite(workloads.SizeTest)
	suite.WarmupCycles = warmCycles
	out := make([]*clustersmt.Result, len(specs))
	for i, spec := range specs {
		r, err := suite.Run(clustersmt.Synthetic(spec), config.SMT2, false)
		if err != nil {
			return nil, 0, err
		}
		out[i] = r
	}
	forks, _ := suite.WarmForks()
	return out, forks, nil
}

// BenchmarkSweepFork compares running a 16-point warm-up-dominated
// sweep with every point simulated from scratch against forking all
// sixteen points from one checkpoint taken inside the shared warm-up
// prefix (results are bit-identical; see internal/harness/warmup_test.go).
// The wall-clock ratio is the one recorded in BENCH_core.json — it is
// pure warm-up amortization, so it holds on a single-CPU host too.
func BenchmarkSweepFork(b *testing.B) {
	specs := sweepForkSpecs()
	warmAt, err := sweepForkWarmTarget(specs[0])
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		warm int64
	}{
		{"scratch", 0},
		{"fork", warmAt},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := runForkSweep(specs, mode.warm); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(specs)*b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// fabricSweepSpecs is the 16-point cache-cold sweep grid of the fabric
// scale-out benchmark. Unlike sweepForkSpecs there is no shared warm-up
// prefix: every point is an independent simulation, so the only lever
// is how many of them the fleet runs concurrently.
func fabricSweepSpecs() []clustersmt.SyntheticSpec {
	var specs []clustersmt.SyntheticSpec
	for _, chain := range []int{1, 2, 3, 4} {
		for _, indep := range []int{1, 2, 3, 4} {
			specs = append(specs, clustersmt.SyntheticSpec{
				ChainLen: chain, IndepOps: indep, Iters: 2048,
			})
		}
	}
	return specs
}

// startFabricFleet boots an in-process fabric — one coordinator plus n
// single-slot workers over loopback HTTP — waits until every worker is
// on the ring, and returns the coordinator's base URL plus a shutdown
// function. Caches start empty, so a sweep through the returned fleet
// is cache-cold.
func startFabricFleet(tb testing.TB, n int) (string, func()) {
	tb.Helper()
	shutdown := func(srv *service.Server, ts *httptest.Server) func() {
		return func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			_ = srv.Close(ctx)
			ts.Close()
		}
	}
	coordSrv, err := service.New(service.Options{
		DefaultSize:       workloads.SizeTest,
		QueueCap:          64,
		Coordinator:       true,
		HeartbeatInterval: 50 * time.Millisecond,
		// Only dispatch failures evict: a busy single-CPU host can
		// starve heartbeat goroutines long enough to flap the ring,
		// and rebalancing mid-measurement would distort the timing.
		HeartbeatTimeout: time.Hour,
	})
	if err != nil {
		tb.Fatal(err)
	}
	coordTS := httptest.NewServer(coordSrv.Handler())
	closers := []func(){shutdown(coordSrv, coordTS)}
	for i := 0; i < n; i++ {
		wSrv, err := service.New(service.Options{
			DefaultSize:       workloads.SizeTest,
			Workers:           1,
			QueueCap:          64,
			HeartbeatInterval: 50 * time.Millisecond,
		})
		if err != nil {
			tb.Fatal(err)
		}
		wTS := httptest.NewServer(wSrv.Handler())
		closers = append(closers, shutdown(wSrv, wTS))
		if err := wSrv.JoinFabric(coordTS.URL, wTS.URL); err != nil {
			tb.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var health struct {
			Fabric struct {
				Peers []struct {
					URL string `json:"url"`
				} `json:"peers"`
			} `json:"fabric"`
		}
		resp, err := http.Get(coordTS.URL + "/healthz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&health)
			resp.Body.Close()
		}
		if err == nil && len(health.Fabric.Peers) == n {
			break
		}
		if time.Now().After(deadline) {
			tb.Fatalf("fleet of %d never fully registered", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return coordTS.URL, func() {
		for i := len(closers) - 1; i >= 0; i-- { // workers first, coordinator last
			closers[i]()
		}
	}
}

// runFabricSweep boots a fresh n-worker fleet, submits the sweep to
// the coordinator, and long-polls every job to completion, returning
// the submit-to-drain wall time and each point's result document as
// the coordinator serialized it (the cross-fleet bit-identity witness).
func runFabricSweep(tb testing.TB, n int, specs []clustersmt.SyntheticSpec) (time.Duration, map[string]json.RawMessage) {
	tb.Helper()
	base, stop := startFabricFleet(tb, n)
	defer stop()

	type submitted struct{ app, id string }
	jobs := make([]submitted, 0, len(specs))
	start := time.Now()
	for _, spec := range specs {
		app := clustersmt.Synthetic(spec).Name
		body, _ := json.Marshal(service.JobSpec{App: app, Arch: clustersmt.SMT2.Name, Size: "test"})
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			tb.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			tb.Fatalf("submit %s: status %d", app, resp.StatusCode)
		}
		var view struct {
			ID string `json:"id"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			tb.Fatal(err)
		}
		jobs = append(jobs, submitted{app, view.ID})
	}
	results := make(map[string]json.RawMessage, len(jobs))
	for _, j := range jobs {
		results[j.app] = fabricAwaitJob(tb, base, j.id)
	}
	return time.Since(start), results
}

// fabricAwaitJob long-polls one job to a terminal state and returns its
// result document.
func fabricAwaitJob(tb testing.TB, base, id string) json.RawMessage {
	tb.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?wait=5s")
		if err != nil {
			tb.Fatal(err)
		}
		var view struct {
			Status string          `json:"status"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			tb.Fatal(err)
		}
		switch view.Status {
		case service.StateDone:
			return view.Result
		case service.StateFailed:
			tb.Fatalf("job %s failed: %s", id, view.Error)
		}
	}
	tb.Fatalf("job %s never finished", id)
	return nil
}

// BenchmarkFabricScaleOut runs the 16-point cache-cold sweep through a
// coordinator fronting 1 vs 3 single-slot workers (an in-process fleet
// over loopback HTTP; both legs dispatch every job through the ring, so
// the comparison isolates fleet width from protocol overhead). Every op
// boots a fresh fleet, so no result is ever served from a cache. The
// ratio is pure scale-out and needs real host parallelism to show up —
// see the recorder entry's host_cpus/gomaxprocs fields.
func BenchmarkFabricScaleOut(b *testing.B) {
	specs := fabricSweepSpecs()
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runFabricSweep(b, n, specs)
			}
			b.ReportMetric(float64(len(specs)*b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// benchEntry is one BENCH_core.json record. The base/fast rate fields
// carry entry-specific JSON names (cycle-stepped vs event-driven for
// the fast-forward entry, scan vs wakeup for the issue-stage entry),
// so the file is written as raw messages assembled per entry.
type benchEntry struct {
	Benchmark string  `json:"benchmark"`
	Machine   string  `json:"machine"`
	Workload  string  `json:"workload"`
	SimCycles int64   `json:"sim_cycles"`
	Speedup   float64 `json:"speedup"`
}

// bestOf times fn reps times and returns the fastest wall time plus the
// run's simulated cycle count (deterministic across reps).
func bestOf(t *testing.T, reps int, fn func() (*clustersmt.Result, error)) (time.Duration, int64) {
	t.Helper()
	min := time.Duration(1<<63 - 1)
	var cycles int64
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < min {
			min = d
		}
		cycles = res.Cycles
	}
	return min, cycles
}

// readBenchRecords parses an existing BENCH_core.json into raw records
// keyed by benchmark name, so the recorder can merge instead of blindly
// overwriting. A missing or unparseable file yields nil (fresh start).
func readBenchRecords(path string) map[string]json.RawMessage {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var arr []json.RawMessage
	if json.Unmarshal(data, &arr) != nil {
		return nil
	}
	out := map[string]json.RawMessage{}
	for _, raw := range arr {
		var e struct {
			Benchmark string `json:"benchmark"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Benchmark != "" {
			out[e.Benchmark] = raw
		}
	}
	return out
}

// parallelHostShape is the subset of a BenchmarkCoreParallel record the
// recorder guard reads: how much host parallelism the measurement had.
type parallelHostShape struct {
	HostCPUs   int `json:"host_cpus"`
	GoMaxProcs int `json:"gomaxprocs"`
}

// subFloorParallel reports whether a parallel measurement lacked the
// host parallelism its 2x floor assumes (>= 4 CPUs and >= 4 procs, one
// per simulated chip).
func subFloorParallel(s parallelHostShape) bool {
	return s.HostCPUs < 4 || s.GoMaxProcs < 4
}

// keepExistingParallel decides whether the recorder must keep an
// existing BenchmarkCoreParallel record instead of replacing it: a
// number measured with real host parallelism must never be clobbered by
// a sub-floor re-run (a 1-CPU CI container would otherwise silently
// replace the honest multi-core speedup with host-starvation noise).
func keepExistingParallel(existing, fresh parallelHostShape) bool {
	return !subFloorParallel(existing) && subFloorParallel(fresh)
}

// TestBenchParallelRecorderGuard pins the recorder's merge policy for
// the host-parallelism-sensitive entry.
func TestBenchParallelRecorderGuard(t *testing.T) {
	big := parallelHostShape{HostCPUs: 8, GoMaxProcs: 8}
	floor := parallelHostShape{HostCPUs: 4, GoMaxProcs: 4}
	oneCPU := parallelHostShape{HostCPUs: 1, GoMaxProcs: 1}
	starved := parallelHostShape{HostCPUs: 8, GoMaxProcs: 3}
	for _, tc := range []struct {
		name            string
		existing, fresh parallelHostShape
		keep            bool
	}{
		{"sub-floor must not clobber a real measurement", big, oneCPU, true},
		{"the floor shape itself counts as real", floor, oneCPU, true},
		{"GOMAXPROCS-starved counts as sub-floor", big, starved, true},
		{"a real re-run replaces a real measurement", big, floor, false},
		{"a real re-run upgrades a sub-floor record", oneCPU, big, false},
		{"sub-floor may refresh sub-floor", oneCPU, oneCPU, false},
	} {
		if got := keepExistingParallel(tc.existing, tc.fresh); got != tc.keep {
			t.Errorf("%s: keepExistingParallel(%+v, %+v) = %v, want %v",
				tc.name, tc.existing, tc.fresh, got, tc.keep)
		}
	}

	dir := t.TempDir() + "/bench.json"
	if got := readBenchRecords(dir); got != nil {
		t.Errorf("missing file: got %v, want nil", got)
	}
	if err := os.WriteFile(dir, []byte(`[{"benchmark":"A","speedup":2},{"benchmark":"B"},{"speedup":1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	recs := readBenchRecords(dir)
	if len(recs) != 2 || recs["A"] == nil || recs["B"] == nil {
		t.Errorf("parsed records %v, want exactly A and B", recs)
	}
	if err := os.WriteFile(dir, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := readBenchRecords(dir); got != nil {
		t.Errorf("garbage file: got %v, want nil", got)
	}
}

// TestWriteBenchCoreJSON records the fast-forward, wakeup, memory-path,
// observability, parallel-execution, checkpoint-forking and fabric
// scale-out measurements in BENCH_core.json (run via `make bench`;
// gated so ordinary test runs stay hermetic and fast). The recorder
// merges with the existing file for the host-parallelism-sensitive
// entries: see keepExistingParallel.
func TestWriteBenchCoreJSON(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 (make bench) to write BENCH_core.json")
	}
	const reps = 5

	// Entry 1: quiescence fast-forward on the stall-heavy workload.
	ffStepped, ffCycles := bestOf(t, reps, func() (*clustersmt.Result, error) { return runStallHeavy(false) })
	ffEvent, _ := bestOf(t, reps, func() (*clustersmt.Result, error) { return runStallHeavy(true) })
	ffReport := struct {
		benchEntry
		SteppedCyclesSec float64 `json:"cycle_stepped_sim_cycles_per_sec"`
		EventCyclesSec   float64 `json:"event_driven_sim_cycles_per_sec"`
	}{
		benchEntry: benchEntry{
			Benchmark: "BenchmarkCoreFastForward",
			Machine:   clustersmt.HighEnd(clustersmt.SMT2).Name,
			Workload:  "pchase (serial remote-L2 pointer chase, 31 threads at a barrier)",
			SimCycles: ffCycles,
			Speedup:   ffStepped.Seconds() / ffEvent.Seconds(),
		},
		SteppedCyclesSec: float64(ffCycles) / ffStepped.Seconds(),
		EventCyclesSec:   float64(ffCycles) / ffEvent.Seconds(),
	}
	if ffReport.Speedup < 1.5 {
		t.Fatalf("event-driven speedup %.2fx below the 1.5x floor", ffReport.Speedup)
	}

	// Entry 2: wakeup issue stage on the compute-bound workload. The
	// fast-forward must stay disengaged — the ticker thread leaves no
	// quiescent cycles to skip, so the issue stage is the whole story.
	if sim, err := newComputeBound(true); err != nil {
		t.Fatal(err)
	} else if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	} else if sim.FastForwarded() != 0 {
		t.Fatalf("fast-forward skipped %d cycles on the compute-bound workload; wakeup measurement would be confounded", sim.FastForwarded())
	}
	wkScan, wkCycles := bestOf(t, reps, func() (*clustersmt.Result, error) { return runComputeBound(false) })
	wkWakeup, _ := bestOf(t, reps, func() (*clustersmt.Result, error) { return runComputeBound(true) })
	wkReport := struct {
		benchEntry
		ScanCyclesSec   float64 `json:"scan_sim_cycles_per_sec"`
		WakeupCyclesSec float64 `json:"wakeup_sim_cycles_per_sec"`
	}{
		benchEntry: benchEntry{
			Benchmark: "BenchmarkCoreWakeup",
			Machine:   clustersmt.HighEnd(clustersmt.SMT1).Name,
			Workload:  "fdivchain (8 serial unpipelined-Fdiv chains filling four 128-entry windows + 1 every-cycle ticker thread, no quiescent cycles)",
			SimCycles: wkCycles,
			Speedup:   wkScan.Seconds() / wkWakeup.Seconds(),
		},
		ScanCyclesSec:   float64(wkCycles) / wkScan.Seconds(),
		WakeupCyclesSec: float64(wkCycles) / wkWakeup.Seconds(),
	}
	if wkReport.Speedup < 1.5 {
		t.Fatalf("wakeup speedup %.2fx below the 1.5x floor", wkReport.Speedup)
	}

	// Entry 3: memory-path fast paths on the memory-bound workload.
	memRef, memCycles := bestOf(t, reps, func() (*clustersmt.Result, error) { return runMemBound(true) })
	memFast, _ := bestOf(t, reps, func() (*clustersmt.Result, error) { return runMemBound(false) })
	memReport := struct {
		benchEntry
		ReferenceCyclesSec float64 `json:"reference_sim_cycles_per_sec"`
		FastpathCyclesSec  float64 `json:"fastpath_sim_cycles_per_sec"`
	}{
		benchEntry: benchEntry{
			Benchmark: "BenchmarkCoreMemory",
			Machine:   memBoundMachine().Name,
			Workload:  "memstride (31 threads streaming remote lines through saturated MSHRs + 1 L1-spilling pointer chase, shrunken 8KB L1 / 64KB L2)",
			SimCycles: memCycles,
			Speedup:   memRef.Seconds() / memFast.Seconds(),
		},
		ReferenceCyclesSec: float64(memCycles) / memRef.Seconds(),
		FastpathCyclesSec:  float64(memCycles) / memFast.Seconds(),
	}
	if memReport.Speedup < 1.5 {
		t.Fatalf("memory fast-path speedup %.2fx below the 1.5x floor", memReport.Speedup)
	}

	// Entry 4: observability overhead. Unlike the other entries this one
	// bounds a cost rather than proving a speedup: sampling every 10k
	// cycles must stay cheap, and the disabled leg differs from a
	// pre-observability build by one nil check per cycle.
	obsOff, obsCycles := bestOf(t, reps, func() (*clustersmt.Result, error) { return runObsOverhead(false) })
	obsOn, _ := bestOf(t, reps, func() (*clustersmt.Result, error) { return runObsOverhead(true) })
	obsReport := struct {
		benchEntry
		DisabledCyclesSec float64 `json:"disabled_sim_cycles_per_sec"`
		SampledCyclesSec  float64 `json:"sampled_sim_cycles_per_sec"`
		OverheadPct       float64 `json:"sampling_overhead_pct"`
	}{
		benchEntry: benchEntry{
			Benchmark: "BenchmarkObsOverhead",
			Machine:   clustersmt.LowEnd(clustersmt.SMT2).Name,
			Workload:  "ocean (reference input; one metrics frame per 10k cycles vs observability disabled)",
			SimCycles: obsCycles,
			Speedup:   obsOff.Seconds() / obsOn.Seconds(),
		},
		DisabledCyclesSec: float64(obsCycles) / obsOff.Seconds(),
		SampledCyclesSec:  float64(obsCycles) / obsOn.Seconds(),
		OverheadPct:       100 * (obsOn.Seconds() - obsOff.Seconds()) / obsOff.Seconds(),
	}
	if obsReport.Speedup < 0.5 {
		t.Fatalf("sampling costs %.2fx throughput; observability must stay cheap", 1/obsReport.Speedup)
	}

	// Entry 5: per-chip parallel execution on the FP-streaming workload.
	// The speedup is host-parallelism: one goroutine per simulated chip,
	// so the >= 2x floor only holds when the Go scheduler has at least
	// four procs to spread the high-end machine's four chips over. On
	// smaller hosts the entry still records the honest measurement
	// (host_cpus/gomaxprocs say how to read it) — there the win shrinks
	// to the parallel path's cheaper no-directory accounting, and an
	// oversubscribed GOMAXPROCS > NumCPU host can even lose to spin-
	// rendezvous thrash.
	parSeq, parCycles := bestOf(t, reps, func() (*clustersmt.Result, error) { return runFPStream(false) })
	parPar, _ := bestOf(t, reps, func() (*clustersmt.Result, error) { return runFPStream(true) })
	parReport := struct {
		benchEntry
		SequentialCyclesSec float64 `json:"sequential_sim_cycles_per_sec"`
		ParallelCyclesSec   float64 `json:"parallel_sim_cycles_per_sec"`
		HostCPUs            int     `json:"host_cpus"`
		GoMaxProcs          int     `json:"gomaxprocs"`
		Note                string  `json:"note,omitempty"`
	}{
		benchEntry: benchEntry{
			Benchmark: "BenchmarkCoreParallel",
			Machine:   clustersmt.HighEnd(clustersmt.SMT2).Name,
			Workload:  "fpstream (32 contexts x 12 independent FP multiply chains, zero memory traffic; sequential cycle loop vs one goroutine per chip)",
			SimCycles: parCycles,
			Speedup:   parSeq.Seconds() / parPar.Seconds(),
		},
		SequentialCyclesSec: float64(parCycles) / parSeq.Seconds(),
		ParallelCyclesSec:   float64(parCycles) / parPar.Seconds(),
		HostCPUs:            runtime.NumCPU(),
		GoMaxProcs:          runtime.GOMAXPROCS(0),
	}
	freshShape := parallelHostShape{HostCPUs: parReport.HostCPUs, GoMaxProcs: parReport.GoMaxProcs}
	if parReport.GoMaxProcs >= 4 && parReport.HostCPUs >= 4 {
		if parReport.Speedup < 2.0 {
			t.Fatalf("parallel speedup %.2fx below the 2x floor with %d procs on %d CPUs", parReport.Speedup, parReport.GoMaxProcs, parReport.HostCPUs)
		}
	} else {
		parReport.Note = fmt.Sprintf("sub-floor host (%d CPUs, GOMAXPROCS=%d): the 2x parallel floor needs >= 4 of each; speedup recorded unenforced", parReport.HostCPUs, parReport.GoMaxProcs)
		t.Logf("host has %d CPUs / GOMAXPROCS=%d; the 2x parallel floor needs >= 4 of each, recording %.2fx unenforced", parReport.HostCPUs, parReport.GoMaxProcs, parReport.Speedup)
	}

	// Merge guard: never let this run clobber an existing parallel
	// record that was measured with real host parallelism if this host
	// lacks it — keep the old raw record verbatim instead.
	parRecord := any(parReport)
	if raw, ok := readBenchRecords("BENCH_core.json")["BenchmarkCoreParallel"]; ok {
		var old parallelHostShape
		if json.Unmarshal(raw, &old) == nil && keepExistingParallel(old, freshShape) {
			t.Logf("keeping the existing BenchmarkCoreParallel record (measured with %d CPUs / GOMAXPROCS=%d); this sub-floor host must not overwrite it", old.HostCPUs, old.GoMaxProcs)
			parRecord = raw
		}
	}

	// Entry 6: checkpoint/COW forking on a warm-up-dominated sweep. The
	// scratch leg re-simulates the shared warm-up sixteen times; the
	// fork leg warms one parent to the probed checkpoint and forks every
	// grid point from it. Unlike the parallel entry this speedup is pure
	// warm-up amortization — no host parallelism involved — so the 2x
	// floor is enforced unconditionally, and so is bit-identity between
	// the two legs.
	const sweepReps = 3
	sweepSpecs := sweepForkSpecs()
	warmAt, err := sweepForkWarmTarget(sweepSpecs[0])
	if err != nil {
		t.Fatal(err)
	}
	timeSweep := func(warm int64) (time.Duration, []*clustersmt.Result, int64) {
		best := time.Duration(1<<63 - 1)
		var results []*clustersmt.Result
		var forks int64
		for i := 0; i < sweepReps; i++ {
			start := time.Now()
			res, f, err := runForkSweep(sweepSpecs, warm)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			results, forks = res, f
		}
		return best, results, forks
	}
	swScratch, scratchRes, _ := timeSweep(0)
	swFork, forkRes, forks := timeSweep(warmAt)
	if !reflect.DeepEqual(scratchRes, forkRes) {
		t.Fatal("forked sweep results differ from scratch; checkpoint forking is unsound")
	}
	if forks != int64(len(sweepSpecs)) {
		t.Fatalf("%d of %d sweep points forked from the checkpoint", forks, len(sweepSpecs))
	}
	var sweepCycles int64
	for _, r := range scratchRes {
		sweepCycles += r.Cycles
	}
	sweepReport := struct {
		benchEntry
		ScratchSecs     float64 `json:"scratch_secs"`
		ForkSecs        float64 `json:"fork_secs"`
		SweepPoints     int     `json:"sweep_points"`
		CheckpointCycle int64   `json:"checkpoint_cycle"`
	}{
		benchEntry: benchEntry{
			Benchmark: "BenchmarkSweepFork",
			Machine:   clustersmt.LowEnd(clustersmt.SMT2).Name,
			Workload:  fmt.Sprintf("16-point synth sweep (ChainLen x IndepOps grid sharing a %d-iteration warm-up prefix; every point from scratch vs COW-forked from one checkpoint)", int64(sweepForkWarmupIters)),
			SimCycles: sweepCycles,
			Speedup:   swScratch.Seconds() / swFork.Seconds(),
		},
		ScratchSecs:     swScratch.Seconds(),
		ForkSecs:        swFork.Seconds(),
		SweepPoints:     len(sweepSpecs),
		CheckpointCycle: warmAt,
	}
	if sweepReport.Speedup < 2.0 {
		t.Fatalf("sweep-fork speedup %.2fx below the 2x floor (%s scratch vs %s forked)", sweepReport.Speedup, swScratch, swFork)
	}

	// Entry 7: fabric scale-out on the cache-cold sweep. Like the
	// parallel entry this speedup is host parallelism (3 single-slot
	// workers vs 1, all in this process), so the 2x floor is enforced
	// only on hosts with >= 4 CPUs and procs — three concurrent
	// simulations plus coordinator dispatch need somewhere to run.
	// Bit-identity between fleet sizes is enforced everywhere: the
	// result documents must match byte for byte.
	const fabricReps = 2
	fabricSpecs := fabricSweepSpecs()
	timeFleet := func(n int) (time.Duration, map[string]json.RawMessage) {
		best := time.Duration(1<<63 - 1)
		var results map[string]json.RawMessage
		for i := 0; i < fabricReps; i++ {
			d, res := runFabricSweep(t, n, fabricSpecs)
			if d < best {
				best = d
			}
			results = res
		}
		return best, results
	}
	fabSingle, singleRes := timeFleet(1)
	fabFleet, fleetRes := timeFleet(3)
	if len(singleRes) != len(fabricSpecs) || len(fleetRes) != len(fabricSpecs) {
		t.Fatalf("fabric sweep returned %d/%d of %d results", len(singleRes), len(fleetRes), len(fabricSpecs))
	}
	var fabCycles int64
	for app, raw := range singleRes {
		if !bytes.Equal(raw, fleetRes[app]) {
			t.Fatalf("fabric result for %s differs between the 1-worker and 3-worker fleets", app)
		}
		var res struct {
			Cycles int64 `json:"cycles"`
		}
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatal(err)
		}
		fabCycles += res.Cycles
	}
	fabReport := struct {
		benchEntry
		SingleWorkerSecs float64 `json:"single_worker_secs"`
		ThreeWorkerSecs  float64 `json:"three_worker_secs"`
		SweepPoints      int     `json:"sweep_points"`
		HostCPUs         int     `json:"host_cpus"`
		GoMaxProcs       int     `json:"gomaxprocs"`
		Note             string  `json:"note,omitempty"`
	}{
		benchEntry: benchEntry{
			Benchmark: "BenchmarkFabricScaleOut",
			Machine:   clustersmt.LowEnd(clustersmt.SMT2).Name,
			Workload:  "16-point cache-cold synth sweep dispatched by a fabric coordinator to single-slot clusterd workers over loopback HTTP (3 workers vs 1)",
			SimCycles: fabCycles,
			Speedup:   fabSingle.Seconds() / fabFleet.Seconds(),
		},
		SingleWorkerSecs: fabSingle.Seconds(),
		ThreeWorkerSecs:  fabFleet.Seconds(),
		SweepPoints:      len(fabricSpecs),
		HostCPUs:         runtime.NumCPU(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
	}
	if fabReport.GoMaxProcs >= 4 && fabReport.HostCPUs >= 4 {
		if fabReport.Speedup < 2.0 {
			t.Fatalf("fabric scale-out %.2fx below the 2x floor with %d procs on %d CPUs (%s single vs %s fleet)",
				fabReport.Speedup, fabReport.GoMaxProcs, fabReport.HostCPUs, fabSingle, fabFleet)
		}
	} else {
		fabReport.Note = fmt.Sprintf("sub-floor host (%d CPUs, GOMAXPROCS=%d): the 2x scale-out floor needs >= 4 of each; speedup recorded unenforced", fabReport.HostCPUs, fabReport.GoMaxProcs)
		t.Logf("host has %d CPUs / GOMAXPROCS=%d; the 2x scale-out floor needs >= 4 of each, recording %.2fx unenforced", fabReport.HostCPUs, fabReport.GoMaxProcs, fabReport.Speedup)
	}
	fabRecord := any(fabReport)
	if raw, ok := readBenchRecords("BENCH_core.json")["BenchmarkFabricScaleOut"]; ok {
		var old parallelHostShape
		if json.Unmarshal(raw, &old) == nil && keepExistingParallel(old, freshShape) {
			t.Logf("keeping the existing BenchmarkFabricScaleOut record (measured with %d CPUs / GOMAXPROCS=%d); this sub-floor host must not overwrite it", old.HostCPUs, old.GoMaxProcs)
			fabRecord = raw
		}
	}

	out, err := json.MarshalIndent([]any{ffReport, wkReport, memReport, obsReport, parRecord, sweepReport, fabRecord}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_core.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("fast-forward %.2fx (%s stepped, %s event-driven over %d cycles); wakeup %.2fx (%s scan, %s wakeup over %d cycles); memory %.2fx (%s reference, %s fastpath over %d cycles); obs sampling %+.1f%% (%s disabled, %s sampled over %d cycles); parallel %.2fx (%s sequential, %s parallel over %d cycles, %d procs); sweep-fork %.2fx (%s scratch, %s forked, checkpoint at cycle %d); fabric scale-out %.2fx (%s with 1 worker, %s with 3)",
		ffReport.Speedup, ffStepped, ffEvent, ffCycles,
		wkReport.Speedup, wkScan, wkWakeup, wkCycles,
		memReport.Speedup, memRef, memFast, memCycles,
		obsReport.OverheadPct, obsOff, obsOn, obsCycles,
		parReport.Speedup, parSeq, parPar, parCycles, parReport.GoMaxProcs,
		sweepReport.Speedup, swScratch, swFork, warmAt,
		fabReport.Speedup, fabSingle, fabFleet)
}

// BenchmarkMultiprogram measures multiprogrammed throughput: eight
// independent sequential jobs (the six applications plus two synthetic
// fillers) on each 8-context organization — the workload class of the
// SMT studies the paper builds on.
func BenchmarkMultiprogram(b *testing.B) {
	mix := func() []*clustersmt.Program {
		var js []*clustersmt.Program
		for _, w := range clustersmt.Workloads() {
			js = append(js, w.Build(1, 1, clustersmt.SizeTest))
		}
		js = append(js,
			clustersmt.Synthetic(clustersmt.SyntheticSpec{IndepOps: 6, Iters: 1024}).Build(1, 1, clustersmt.SizeTest),
			clustersmt.Synthetic(clustersmt.SyntheticSpec{ChainLen: 6, Iters: 1024}).Build(1, 1, clustersmt.SizeTest),
		)
		return js
	}
	for _, arch := range []clustersmt.Arch{clustersmt.FA8, clustersmt.SMT4, clustersmt.SMT2, clustersmt.SMT1} {
		b.Run(arch.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := clustersmt.SimulateMultiprogram(clustersmt.LowEnd(arch), mix())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "cycles")
			}
		})
	}
}
