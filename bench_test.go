// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus microbenchmarks of the simulator's building blocks.
// Each BenchmarkFigN op regenerates the complete experiment at the
// reference input size; the printed metrics carry the headline numbers
// (normalized execution times) so `go test -bench .` doubles as the
// reproduction run.
package clustersmt_test

import (
	"fmt"
	"testing"

	"clustersmt"
	"clustersmt/internal/config"
	"clustersmt/internal/harness"
	"clustersmt/internal/model"
	"clustersmt/internal/workloads"
)

// BenchmarkTable1FunctionalUnits exercises every opcode class through a
// single-thread timing run (the Table 1 latencies in action).
func BenchmarkTable1FunctionalUnits(b *testing.B) {
	p := buildALUKernel()
	for i := 0; i < b.N; i++ {
		res, err := clustersmt.SimulateProgram(clustersmt.LowEnd(clustersmt.FA1), p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "cycles")
	}
}

func buildALUKernel() *clustersmt.Program {
	bld := clustersmt.NewProgram("alu")
	bld.GlobalWords("nthreads", []uint64{1})
	bld.Li(1, 0)
	bld.Li(2, 2000)
	bld.Fli(1, 1.5)
	bld.Fli(2, 0.75)
	bld.CountedLoop(1, 2, func() {
		bld.Add(3, 1, 2)
		bld.Mul(4, 3, 1)
		bld.Div(5, 4, 2)
		bld.Fadd(3, 1, 2)
		bld.Fmul(4, 1, 2)
		bld.Fdiv(5, 1, 2)
	})
	bld.Halt()
	return bld.MustBuild()
}

// BenchmarkTable2Architectures runs one small workload across all seven
// Table 2 presets.
func BenchmarkTable2Architectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, arch := range clustersmt.Architectures() {
			if _, err := clustersmt.Simulate(clustersmt.LowEnd(arch), "vpenta", clustersmt.SizeTest); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable3MemoryHierarchy stresses the Table 3 hierarchy with
// the memory-bound workload.
func BenchmarkTable3MemoryHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.FA1), "ocean", clustersmt.SizeTest)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Slots.Fraction(clustersmt.SlotMemory), "memory-slot-%")
	}
}

// BenchmarkFig1Model evaluates the §2 analytical model over a dense
// sweep of application points and all architectures.
func BenchmarkFig1Model(b *testing.B) {
	procs := make([]model.Proc, 0, 7)
	for _, a := range config.AllArchs {
		procs = append(procs, model.FromArch(a))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0.0
		for t := 0.25; t <= 8; t += 0.25 {
			for ilp := 0.25; ilp <= 8; ilp += 0.25 {
				p := model.Point{Threads: t, ILP: ilp}
				for _, pr := range procs {
					total += pr.Delivered(p)
					_ = pr.Classify(p)
				}
			}
		}
		if total <= 0 {
			b.Fatal("model produced nothing")
		}
	}
}

func benchFigure(b *testing.B, run func(*harness.Suite) (*harness.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		suite := harness.NewSuite(workloads.SizeRef)
		fig, err := run(suite)
		if err != nil {
			b.Fatal(err)
		}
		// Surface the headline metric: SMT2's average normalized
		// execution time across applications.
		sum := 0.0
		for _, app := range fig.Apps {
			sum += fig.Get(app, "SMT2").Normalized
		}
		b.ReportMetric(sum/float64(len(fig.Apps)), "SMT2-norm")
		if !testing.Short() && b.N == 1 {
			fmt.Print(fig.Render())
		}
	}
}

// BenchmarkFig4LowEndFAvsSMT2 regenerates Figure 4 (FA8/FA4/FA2/FA1 vs
// SMT2, low-end machine, six applications).
func BenchmarkFig4LowEndFAvsSMT2(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure4)
}

// BenchmarkFig5HighEndFAvsSMT2 regenerates Figure 5 (the same
// comparison on the 4-chip machine).
func BenchmarkFig5HighEndFAvsSMT2(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure5)
}

// BenchmarkFig6Placement regenerates the Figure 6 measurements (average
// threads on FA8 × per-thread ILP on FA1, both machines).
func BenchmarkFig6Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := harness.NewSuite(workloads.SizeRef)
		for _, highEnd := range []bool{false, true} {
			pts, err := suite.Placement(highEnd)
			if err != nil {
				b.Fatal(err)
			}
			if len(pts) != 6 {
				b.Fatal("missing placements")
			}
		}
	}
}

// BenchmarkFig7LowEndSMTs regenerates Figure 7 (SMT8/SMT4/SMT2/SMT1,
// low-end machine).
func BenchmarkFig7LowEndSMTs(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure7)
}

// BenchmarkFig8HighEndSMTs regenerates Figure 8 (the same on the 4-chip
// machine).
func BenchmarkFig8HighEndSMTs(b *testing.B) {
	benchFigure(b, (*harness.Suite).Figure8)
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (simulated instructions per host second) on the densest workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var instrs uint64
	for i := 0; i < b.N; i++ {
		res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.SMT2), "swim", clustersmt.SizeRef)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Committed
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkPerApplication runs each workload once on SMT2 (low-end,
// reference input) as individual sub-benchmarks.
func BenchmarkPerApplication(b *testing.B) {
	for _, w := range clustersmt.Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := clustersmt.Simulate(clustersmt.LowEnd(clustersmt.SMT2), w, clustersmt.SizeRef)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.IPC, "IPC")
			}
		})
	}
}

// BenchmarkMultiprogram measures multiprogrammed throughput: eight
// independent sequential jobs (the six applications plus two synthetic
// fillers) on each 8-context organization — the workload class of the
// SMT studies the paper builds on.
func BenchmarkMultiprogram(b *testing.B) {
	mix := func() []*clustersmt.Program {
		var js []*clustersmt.Program
		for _, w := range clustersmt.Workloads() {
			js = append(js, w.Build(1, 1, clustersmt.SizeTest))
		}
		js = append(js,
			clustersmt.Synthetic(clustersmt.SyntheticSpec{IndepOps: 6, Iters: 1024}).Build(1, 1, clustersmt.SizeTest),
			clustersmt.Synthetic(clustersmt.SyntheticSpec{ChainLen: 6, Iters: 1024}).Build(1, 1, clustersmt.SizeTest),
		)
		return js
	}
	for _, arch := range []clustersmt.Arch{clustersmt.FA8, clustersmt.SMT4, clustersmt.SMT2, clustersmt.SMT1} {
		b.Run(arch.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := clustersmt.SimulateMultiprogram(clustersmt.LowEnd(arch), mix())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "cycles")
			}
		})
	}
}
