module clustersmt

go 1.22
