// Command clustersim runs one simulation — an application on an
// architecture and machine — and prints the paper-style result: cycle
// count, IPC, the §4.1 issue-slot breakdown, and memory/synchronization
// statistics.
//
// Usage:
//
//	clustersim [-arch SMT2] [-app ocean] [-highend] [-size ref] [-v]
//	           [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"clustersmt"
	"clustersmt/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clustersim: ")

	archName := flag.String("arch", "SMT2", "architecture: FA8, FA4, FA2, FA1, SMT8, SMT4, SMT2, SMT1")
	appName := flag.String("app", "ocean", "application: swim, tomcatv, mgrid, vpenta, fmm, ocean (paper) or radix, lu (extras)")
	highEnd := flag.Bool("highend", false, "simulate the 4-chip high-end machine instead of the 1-chip low-end")
	sizeName := flag.String("size", "ref", "input size: test or ref")
	verbose := flag.Bool("v", false, "print extended statistics")
	tracePath := flag.String("trace", "", "write a pipeline trace to this file")
	traceFrom := flag.Int64("trace-from", 0, "first cycle to trace")
	traceTo := flag.Int64("trace-to", 0, "last cycle to trace (0 = to the end)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	arch, err := clustersmt.ArchByName(*archName)
	if err != nil {
		log.Fatal(err)
	}
	size := clustersmt.SizeRef
	switch strings.ToLower(*sizeName) {
	case "ref":
	case "test":
		size = clustersmt.SizeTest
	default:
		log.Fatalf("unknown size %q (want test or ref)", *sizeName)
	}
	m := clustersmt.LowEnd(arch)
	if *highEnd {
		m = clustersmt.HighEnd(arch)
	}

	w, err := clustersmt.WorkloadByName(*appName)
	if err != nil {
		log.Fatal(err)
	}
	prg := w.Build(m.Threads(), m.Chips, size)
	sim, err := core.New(m, prg)
	if err != nil {
		log.Fatal(err)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		sim.TraceTo(bw, *traceFrom, *traceTo)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine   %s (%d chip(s), %d hardware contexts)\n", m.Name, m.Chips, m.Threads())
	fmt.Printf("app       %s (%s input)\n", *appName, size)
	fmt.Printf("cycles    %d\n", res.Cycles)
	fmt.Printf("instrs    %d (IPC %.2f)\n", res.Committed, res.IPC)
	fmt.Printf("threads   %.2f average running\n", res.AvgRunningThreads)
	fmt.Println("issue-slot breakdown:")
	for c := clustersmt.SlotUseful; c <= clustersmt.SlotOther; c++ {
		fmt.Printf("  %-11s %6.2f%%\n", c, 100*res.Slots.Fraction(c))
	}
	if !*verbose {
		return
	}
	fmt.Println("memory:")
	fmt.Printf("  loads=%d stores=%d retries=%d tlb-misses=%d\n",
		res.MemStats.Loads, res.MemStats.Stores, res.MemStats.LoadRetries, res.MemStats.TLBMisses)
	for cls, n := range res.MemStats.ByClass {
		if n == 0 {
			continue
		}
		avg := float64(res.MemStats.LatencyByClass[cls]) / float64(n)
		fmt.Printf("  class %d: %d accesses, avg latency %.1f cycles\n", cls, n, avg)
	}
	fmt.Println("coherence:")
	fmt.Printf("  invalidations=%d downgrades=%d writebacks=%d 3-hops=%d net-messages=%d\n",
		res.Invalidations, res.Downgrades, res.Writebacks, res.ThreeHops, res.NetMessages)
	fmt.Println("synchronization:")
	fmt.Printf("  lock-acquires=%d lock-conflicts=%d barrier-episodes=%d\n",
		res.LockAcquires, res.LockConflicts, res.BarrierWaits)
	fmt.Println("front end:")
	fmt.Printf("  branch-mispredict=%.2f%% (%d/%d) btb-mispredict=%d/%d rename-stalls=%d window-stalls=%d forwarded-loads=%d\n",
		100*res.MispredictRate(), res.BranchMispredicts, res.BranchLookups,
		res.BTBMispredicts, res.BTBLookups, res.RenameStalls, res.WindowFullStalls, res.ForwardedLoads)
	if len(res.PerThreadCommitted) <= 32 {
		fmt.Printf("per-thread instructions: %v\n", res.PerThreadCommitted)
	}
	_ = os.Stdout
}
