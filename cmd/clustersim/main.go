// Command clustersim runs one simulation — an application on an
// architecture and machine — and prints the paper-style result: cycle
// count, IPC, the §4.1 issue-slot breakdown, and memory/synchronization
// statistics.
//
// Usage:
//
//	clustersim [-arch SMT2] [-app ocean] [-highend] [-size ref] [-v]
//	           [-alloc icount] [-alloc-epoch 10000] [-list-policies]
//	           [-parallel] [-json] [-metrics out.csv] [-metrics-interval 10000]
//	           [-trace t.json] [-trace-format chrome]
//	           [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"clustersmt"
	"clustersmt/internal/alloc"
	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/obs"
	"clustersmt/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clustersim: ")

	archName := flag.String("arch", "SMT2", "architecture: FA8, FA4, FA2, FA1, SMT8, SMT4, SMT2, SMT1")
	appName := flag.String("app", "ocean", "application: swim, tomcatv, mgrid, vpenta, fmm, ocean (paper) or radix, lu (extras)")
	highEnd := flag.Bool("highend", false, "simulate the 4-chip high-end machine instead of the 1-chip low-end")
	allocPolicy := flag.String("alloc", "", "thread-to-cluster allocation policy (default static; see -list-policies)")
	allocEpoch := flag.Int64("alloc-epoch", 0, "rebalance interval in cycles for dynamic allocation policies (0 = default)")
	listPolicies := flag.Bool("list-policies", false, "list the registered allocation policies and exit")
	parallel := flag.Bool("parallel", false, "run the simulation's chips on separate goroutines (bit-identical results; incompatible with -trace)")
	sizeName := flag.String("size", "ref", "input size: test or ref")
	verbose := flag.Bool("v", false, "print extended statistics")
	jsonOut := flag.Bool("json", false, "print the full result as JSON instead of the text report (same encoding clusterd serves)")
	tracePath := flag.String("trace", "", "write a pipeline trace to this file")
	traceFormat := flag.String("trace-format", "text", "trace format: text or chrome (trace_event JSON for chrome://tracing)")
	traceFrom := flag.Int64("trace-from", 0, "first cycle to trace")
	traceTo := flag.Int64("trace-to", 0, "last cycle to trace (0 = to the end)")
	metricsPath := flag.String("metrics", "", "write interval metrics to this file")
	metricsInterval := flag.Int64("metrics-interval", core.DefaultMetricsInterval, "cycles per metrics frame")
	metricsFormat := flag.String("metrics-format", "", "metrics format: csv or json (default: by file extension, csv otherwise)")
	metricsRing := flag.Int("metrics-ring", 0, "retain at most this many frames (0 = default ring size; oldest dropped)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	if *listPolicies {
		for _, p := range alloc.List() {
			fmt.Printf("%-10s %s\n", p.Name, p.Desc)
		}
		return
	}
	// Fail a typoed -alloc before any simulation work; the error lists
	// every registered policy.
	if _, err := alloc.New(*allocPolicy); err != nil {
		log.Fatal(err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	arch, err := clustersmt.ArchByName(*archName)
	if err != nil {
		log.Fatal(err)
	}
	size := clustersmt.SizeRef
	switch strings.ToLower(*sizeName) {
	case "ref":
	case "test":
		size = clustersmt.SizeTest
	default:
		log.Fatalf("unknown size %q (want test or ref)", *sizeName)
	}
	m := clustersmt.LowEnd(arch)
	if *highEnd {
		m = clustersmt.HighEnd(arch)
	}
	m.Alloc = config.AllocConfig{Policy: *allocPolicy, Epoch: *allocEpoch}

	w, err := clustersmt.WorkloadByName(*appName)
	if err != nil {
		log.Fatal(err)
	}
	prg := w.Build(m.Threads(), m.Chips, size)
	sim, err := core.New(m, prg)
	if err != nil {
		log.Fatal(err)
	}
	if *allocPolicy == "oracle" {
		// The oracle is an offline search, not a runtime policy: profile
		// every canonical static assignment over a short prefix and
		// install the winner before the measured run (same budget as the
		// harness).
		sm := m
		sm.Alloc = config.AllocConfig{}
		mk := func() (*core.Simulator, error) {
			return core.New(sm, w.Build(sm.Threads(), sm.Chips, size))
		}
		best, _, err := core.SearchStatic(mk, 20_000, 64)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.SetAssignment(best); err != nil {
			log.Fatal(err)
		}
	}
	sim.Parallel = *parallel
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		// The simulator buffers and flushes the trace writer itself.
		switch *traceFormat {
		case "text":
			sim.TraceTo(f, *traceFrom, *traceTo)
		case "chrome":
			sim.TraceChromeTo(f, *traceFrom, *traceTo)
		default:
			log.Fatalf("unknown trace format %q (want text or chrome)", *traceFormat)
		}
	}
	var ring *obs.Ring
	if *metricsPath != "" {
		ring = sim.EnableMetrics(*metricsInterval, *metricsRing)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	if ring != nil {
		if err := writeMetrics(*metricsPath, *metricsFormat, ring); err != nil {
			log.Fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("machine   %s (%d chip(s), %d hardware contexts)\n", m.Name, m.Chips, m.Threads())
	fmt.Printf("app       %s (%s input)\n", *appName, size)
	fmt.Printf("cycles    %d\n", res.Cycles)
	fmt.Printf("instrs    %d (IPC %.2f)\n", res.Committed, res.IPC)
	fmt.Printf("threads   %.2f average running\n", res.AvgRunningThreads)
	fmt.Println("issue-slot breakdown:")
	fractions := res.Slots.Fractions()
	for c := clustersmt.SlotUseful; c <= clustersmt.SlotOther; c++ {
		fmt.Printf("  %-11s %6.2f%%\n", c, 100*fractions[c])
	}
	if !*verbose {
		return
	}
	fmt.Println("memory:")
	fmt.Printf("  loads=%d stores=%d retries=%d tlb-misses=%d\n",
		res.MemStats.Loads, res.MemStats.Stores, res.MemStats.LoadRetries, res.MemStats.TLBMisses)
	for cls, n := range res.MemStats.ByClass {
		if n == 0 {
			continue
		}
		avg := float64(res.MemStats.LatencyByClass[cls]) / float64(n)
		fmt.Printf("  class %d: %d accesses, avg latency %.1f cycles\n", cls, n, avg)
	}
	fmt.Println("coherence:")
	fmt.Printf("  invalidations=%d downgrades=%d writebacks=%d 3-hops=%d net-messages=%d\n",
		res.Invalidations, res.Downgrades, res.Writebacks, res.ThreeHops, res.NetMessages)
	fmt.Println("synchronization:")
	fmt.Printf("  lock-acquires=%d lock-conflicts=%d barrier-episodes=%d\n",
		res.LockAcquires, res.LockConflicts, res.BarrierWaits)
	if res.AllocEpochs > 0 {
		fmt.Println("allocation:")
		fmt.Printf("  policy=%s epochs=%d migrations=%d\n", *allocPolicy, res.AllocEpochs, res.AllocMigrations)
	}
	fmt.Println("front end:")
	fmt.Printf("  branch-mispredict=%.2f%% (%d/%d) btb-mispredict=%d/%d rename-stalls=%d window-stalls=%d forwarded-loads=%d\n",
		100*res.MispredictRate(), res.BranchMispredicts, res.BranchLookups,
		res.BTBMispredicts, res.BTBLookups, res.RenameStalls, res.WindowFullStalls, res.ForwardedLoads)
	if len(res.PerThreadCommitted) <= 32 {
		fmt.Printf("per-thread instructions: %v\n", res.PerThreadCommitted)
	}
	_ = os.Stdout
}

// writeMetrics exports the frame ring to path. The format is csv or
// json, defaulting by file extension (csv unless the path ends in
// .json).
func writeMetrics(path, format string, ring *obs.Ring) error {
	if format == "" {
		format = "csv"
		if strings.HasSuffix(strings.ToLower(path), ".json") {
			format = "json"
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "csv":
		return ring.WriteCSV(f)
	case "json":
		return ring.WriteJSON(f)
	default:
		return fmt.Errorf("unknown metrics format %q (want csv or json)", format)
	}
}
