// Command parmodel explores the paper's §2 analytical model of
// parallelism from the command line: place an application at a
// (threads × ILP) point and see what every architecture delivers, which
// region it lands in, and the Figure 1 chart.
//
// Usage:
//
//	parmodel [-threads 5] [-ilp 1.6] [-arch SMT2]
package main

import (
	"flag"
	"fmt"
	"log"

	"clustersmt"
	"clustersmt/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parmodel: ")

	threads := flag.Float64("threads", 5, "application thread-level parallelism")
	ilp := flag.Float64("ilp", 1.6, "application ILP per thread")
	archName := flag.String("arch", "SMT2", "architecture to chart")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}

	if *threads <= 0 || *ilp <= 0 {
		log.Fatal("threads and ilp must be positive")
	}
	app := clustersmt.ModelPoint{Threads: *threads, ILP: *ilp}

	arch, err := clustersmt.ArchByName(*archName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(clustersmt.ModelChart(clustersmt.ModelOf(arch), map[string]clustersmt.ModelPoint{"A": app}))
	fmt.Println()

	fmt.Printf("application: %.1f threads x %.1f ILP (demand %.1f slots/cycle)\n\n",
		app.Threads, app.ILP, app.Demand())
	fmt.Printf("%-5s %10s %12s %s\n", "arch", "delivered", "utilization", "region")
	best := ""
	bestD := 0.0
	for _, a := range clustersmt.Architectures() {
		p := clustersmt.ModelOf(a)
		d := p.Delivered(app)
		fmt.Printf("%-5s %10.2f %11.0f%% %s\n", a.Name, d, 100*p.Utilization(app), p.Classify(app))
		if d > bestD {
			best, bestD = a.Name, d
		}
	}
	fmt.Printf("\nmodel prediction: %s extracts the most from this application (%.2f slots/cycle)\n", best, bestD)
}
