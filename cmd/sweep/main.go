// Command sweep maps the §2 (threads × ILP) plane empirically: it runs
// a grid of synthetic workloads across the architectures and prints
// which one wins at each point — the measured counterpart of the
// paper's Figure 1 regions.
//
// All grid cells route through one shared harness.Suite, so every
// (workload, physical configuration) pair simulates at most once even
// when the -archs list aliases silicon (FA8 and SMT8) or a grid row
// repeats a spec, and the whole grid runs concurrently (-parallel
// bounds the simultaneous simulations).
//
// With -warmup-iters the synthetic specs prepend a shared warm-up
// prefix and -warmup-cycles checkpoints it: the suite warms one parent
// per (machine, prefix), then forks every grid cell from it instead of
// re-simulating the warm-up 16 times per architecture (results stay
// bit-identical; see internal/core/snapshot.go).
//
// Usage:
//
//	sweep [-archs FA8,FA4,FA2,FA1,SMT2] [-size test] [-parallel N]
//	      [-warmup-iters N] [-warmup-cycles N]
//	      [-alloc icount] [-alloc-epoch N]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"sync"

	"clustersmt"
	"clustersmt/internal/alloc"
	"clustersmt/internal/harness"
	"clustersmt/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	archList := flag.String("archs", "FA8,FA4,FA2,FA1,SMT2", "comma-separated architectures to race")
	sizeName := flag.String("size", "test", "input size: test or ref")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max simultaneous simulations")
	warmupIters := flag.Int64("warmup-iters", 0, "prepend a shared warm-up prefix of N serial iterations to every grid cell")
	warmupCycles := flag.Int64("warmup-cycles", 0, "checkpoint the warm-up at this cycle and fork grid cells from it (0 = off)")
	allocPolicy := flag.String("alloc", "", "thread-to-cluster allocation policy for every grid cell (default static)")
	allocEpoch := flag.Int64("alloc-epoch", 0, "rebalance interval in cycles for dynamic allocation policies (0 = default)")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}

	var archs []clustersmt.Arch
	for _, name := range strings.Split(*archList, ",") {
		a, err := clustersmt.ArchByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		archs = append(archs, a)
	}
	size := clustersmt.SizeTest
	if strings.ToLower(*sizeName) == "ref" {
		size = clustersmt.SizeRef
	}

	if _, err := alloc.New(*allocPolicy); err != nil {
		log.Fatal(err)
	}
	suite := harness.NewSuite(size)
	suite.SetParallelism(*parallel)
	suite.WarmupCycles = *warmupCycles
	suite.AllocPolicy = *allocPolicy
	suite.AllocEpoch = *allocEpoch

	// Plane axes: ParCap (threads) × ChainLen (inverse ILP).
	caps := []int{1, 2, 4, 0} // 0 = all 8 contexts
	chains := []int{0, 2, 4, 8}

	// Launch the whole grid up front; the suite's semaphore bounds the
	// real concurrency and its singleflight deduplicates any cell/arch
	// pairs that resolve to the same physical run (e.g. FA8 and SMT8
	// both in -archs).
	type point struct {
		chain, parCap int
		arch          string
	}
	cycles := make(map[point]int64)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, ch := range chains {
		for _, cp := range caps {
			spec := clustersmt.SyntheticSpec{
				ParCap:      cp,
				ChainLen:    ch,
				IndepOps:    6 - min(6, ch),
				Iters:       2048,
				WarmupIters: *warmupIters,
			}
			w := clustersmt.Synthetic(spec)
			for _, a := range archs {
				wg.Add(1)
				go func(ch, cp int, a clustersmt.Arch) {
					defer wg.Done()
					res, err := suite.Run(w, a, false)
					if err != nil {
						log.Fatal(err)
					}
					mu.Lock()
					cycles[point{ch, cp, a.Name}] = res.Cycles
					mu.Unlock()
				}(ch, cp, a)
			}
		}
	}
	wg.Wait()

	// Winners resolve deterministically after the fact: fewest cycles,
	// -archs order breaking ties (the old sequential behavior).
	type cell struct{ chain, parCap int }
	winners := make(map[cell]string)
	for _, ch := range chains {
		for _, cp := range caps {
			best, bestCycles := "", int64(0)
			for _, a := range archs {
				c := cycles[point{ch, cp, a.Name}]
				if best == "" || c < bestCycles {
					best, bestCycles = a.Name, c
				}
			}
			winners[cell{ch, cp}] = best
		}
	}

	fmt.Println("winner at each (threads x ILP) point (rows: dependence chain, columns: parallel width)")
	fmt.Printf("%-18s", "")
	for _, c := range caps {
		label := fmt.Sprintf("par=%d", c)
		if c == 0 {
			label = "par=all"
		}
		fmt.Printf("%10s", label)
	}
	fmt.Println()
	for _, ch := range chains {
		label := fmt.Sprintf("chain=%d (ILP~%s)", ch, ilpLabel(ch))
		fmt.Printf("%-18s", label)
		for _, cp := range caps {
			fmt.Printf("%10s", winners[cell{ch, cp}])
		}
		fmt.Println()
	}
	fmt.Println("\n(the diagonal structure is the paper's Figure 1: narrow points go to wide")
	fmt.Println(" clusters, thready points to many clusters, and the clustered SMT covers both)")
	if *warmupCycles > 0 {
		forks, _ := suite.WarmForks()
		fmt.Printf("(warm-up sharing: %d runs forked from warmed checkpoints)\n", forks)
	}
}

func ilpLabel(chain int) string {
	switch {
	case chain == 0:
		return "high"
	case chain <= 3:
		return "mid"
	default:
		return "low"
	}
}
