// Command sweep maps the §2 (threads × ILP) plane empirically: it runs
// a grid of synthetic workloads across the architectures and prints
// which one wins at each point — the measured counterpart of the
// paper's Figure 1 regions.
//
// Usage:
//
//	sweep [-archs FA8,FA4,FA2,FA1,SMT2] [-size test]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"clustersmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	archList := flag.String("archs", "FA8,FA4,FA2,FA1,SMT2", "comma-separated architectures to race")
	sizeName := flag.String("size", "test", "input size: test or ref")
	flag.Parse()

	var archs []clustersmt.Arch
	for _, name := range strings.Split(*archList, ",") {
		a, err := clustersmt.ArchByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		archs = append(archs, a)
	}
	size := clustersmt.SizeTest
	if strings.ToLower(*sizeName) == "ref" {
		size = clustersmt.SizeRef
	}

	// Plane axes: ParCap (threads) × ChainLen (inverse ILP).
	caps := []int{1, 2, 4, 0} // 0 = all 8 contexts
	chains := []int{0, 2, 4, 8}

	fmt.Println("winner at each (threads x ILP) point (rows: dependence chain, columns: parallel width)")
	fmt.Printf("%-18s", "")
	for _, c := range caps {
		label := fmt.Sprintf("par=%d", c)
		if c == 0 {
			label = "par=all"
		}
		fmt.Printf("%10s", label)
	}
	fmt.Println()

	for _, ch := range chains {
		label := fmt.Sprintf("chain=%d (ILP~%s)", ch, ilpLabel(ch))
		fmt.Printf("%-18s", label)
		for _, cp := range caps {
			spec := clustersmt.SyntheticSpec{
				ParCap:   cp,
				ChainLen: ch,
				IndepOps: 6 - min(6, ch),
				Iters:    2048,
			}
			w := clustersmt.Synthetic(spec)
			best, bestCycles := "", int64(0)
			for _, a := range archs {
				res, err := clustersmt.Simulate(clustersmt.LowEnd(a), w, size)
				if err != nil {
					log.Fatal(err)
				}
				if best == "" || res.Cycles < bestCycles {
					best, bestCycles = a.Name, res.Cycles
				}
			}
			fmt.Printf("%10s", best)
		}
		fmt.Println()
	}
	fmt.Println("\n(the diagonal structure is the paper's Figure 1: narrow points go to wide")
	fmt.Println(" clusters, thready points to many clusters, and the clustered SMT covers both)")
}

func ilpLabel(chain int) string {
	switch {
	case chain == 0:
		return "high"
	case chain <= 3:
		return "mid"
	default:
		return "low"
	}
}
