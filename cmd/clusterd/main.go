// Command clusterd is the simulation-as-a-service daemon: a long-lived
// HTTP front end over the simulator with a bounded job queue, a
// two-tier content-addressed result cache, and backpressure.
//
//	POST /v1/jobs            submit {"app","arch","high_end","size"} → 202 (429 when full)
//	GET  /v1/jobs/{id}       status/result (?wait=10s long-polls)
//	GET  /v1/figures/{4578}  paper-figure matrices (?size=, ?format=text)
//	GET  /v1/metrics/{run}   interval metrics for a simulated run (CSV/JSON)
//	GET  /v1/trace/{id}      one job's fleet-wide span timeline (Chrome trace JSON)
//	GET  /metrics            OpenMetrics scrape (latencies, queue, cache, fleet)
//	GET  /healthz            liveness + queue/cache statistics
//	GET  /debug/pprof/...    profiling endpoints (with -pprof)
//	GET  /debug/vars         expvar JSON (with -pprof)
//
// Identical submissions are content-addressed (SHA-256 of the resolved
// machine + workload spec) and served from cache in microseconds; with
// -cache-dir the cache survives restarts. Graceful shutdown (SIGINT/
// SIGTERM) stops admission, drains running jobs, and persists the
// cache index.
//
// Several daemons form a fabric: one runs with -coordinator and the
// rest join it with -join. The coordinator routes each job to the
// worker owning its content hash on a consistent-hash ring, workers
// answer each other's cache probes and ship warmed checkpoints, and a
// worker that stops heartbeating is evicted — its jobs requeue and its
// keys rebalance. Every fabric failure degrades to local simulation;
// results are bit-identical with or without the fleet.
//
// Usage:
//
//	clusterd [-addr :8421] [-size ref] [-workers N] [-parallel] [-queue N]
//	         [-alloc icount] [-alloc-epoch N] [-list-policies]
//	         [-cache-dir DIR] [-cache-entries N] [-max-cycles N]
//	         [-warmup-cycles N] [-metrics-interval N] [-port-file PATH]
//	         [-drain-timeout 30s] [-telemetry=false] [-span-ring N]
//	         [-node-name NAME] [-pprof]
//	         [-coordinator | -join URL [-advertise URL]]
//	         [-heartbeat 5s] [-heartbeat-timeout 15s]
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"clustersmt/internal/alloc"
	"clustersmt/internal/service"
	"clustersmt/internal/version"
	"clustersmt/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clusterd: ")
	// Service-internal logging is structured (log/slog with trace IDs
	// where available); plain log calls in this file keep the prefix.
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))

	addr := flag.String("addr", ":8421", "listen address (host:port; port 0 picks a free port)")
	sizeName := flag.String("size", "ref", "default input size for jobs and figures: test or ref")
	workers := flag.Int("workers", 0, "concurrent simulation workers (0 = GOMAXPROCS)")
	parallel := flag.Bool("parallel", false, "run each simulation's chips on separate goroutines (bit-identical results)")
	queueCap := flag.Int("queue", service.DefaultQueueCap, "job queue capacity (full queue returns 429)")
	allocPolicy := flag.String("alloc", "", "thread-to-cluster allocation policy for every simulation (default static; see -list-policies)")
	allocEpoch := flag.Int64("alloc-epoch", 0, "rebalance interval in cycles for dynamic allocation policies (0 = default)")
	listPolicies := flag.Bool("list-policies", false, "list the registered allocation policies and exit")
	cacheDir := flag.String("cache-dir", "", "persist results under this directory (survives restarts)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory result cache entries (0 = default)")
	maxCycles := flag.Int64("max-cycles", 0, "per-simulation cycle bound (0 = core default)")
	warmupCycles := flag.Int64("warmup-cycles", 0, "fork prefix-declaring workloads from a checkpoint warmed to this cycle (0 = off; persisted under -cache-dir)")
	metricsInterval := flag.Int64("metrics-interval", 0, "sample interval metrics every N cycles (0 = off)")
	metricsRing := flag.Int("metrics-ring", 0, "retained metrics frames per run (0 = default)")
	portFile := flag.String("port-file", "", "write the bound port to this file once listening")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain running jobs at shutdown")
	telemetry := flag.Bool("telemetry", true, "serve OpenMetrics at /metrics and job traces at /v1/trace/{id}")
	spanRing := flag.Int("span-ring", 0, "retained trace spans (0 = default)")
	nodeName := flag.String("node-name", "", "node identity on trace timelines (default: by fabric role)")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof and expvar at /debug/vars")
	coordinator := flag.Bool("coordinator", false, "run as the fabric coordinator: accept worker registrations and route jobs by content hash")
	joinURL := flag.String("join", "", "join the fabric coordinated at this URL (worker mode)")
	advertiseURL := flag.String("advertise", "", "base URL peers reach this worker at (default: http://127.0.0.1:<bound port>)")
	heartbeat := flag.Duration("heartbeat", service.DefaultHeartbeatInterval, "worker heartbeat interval")
	heartbeatTimeout := flag.Duration("heartbeat-timeout", 0, "evict workers whose last heartbeat is older than this (0 = 3 intervals)")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	if *listPolicies {
		for _, p := range alloc.List() {
			fmt.Printf("%-10s %s\n", p.Name, p.Desc)
		}
		return
	}
	// A typoed -alloc fails at startup with the registered list, not on
	// the first job.
	if _, err := alloc.New(*allocPolicy); err != nil {
		log.Fatal(err)
	}
	if *coordinator && *joinURL != "" {
		log.Fatal("-coordinator and -join are mutually exclusive")
	}

	size := workloads.SizeRef
	switch strings.ToLower(*sizeName) {
	case "ref":
	case "test":
		size = workloads.SizeTest
	default:
		log.Fatalf("unknown size %q (want test or ref)", *sizeName)
	}

	svc, err := service.New(service.Options{
		DefaultSize:     size,
		Workers:         *workers,
		Parallel:        *parallel,
		QueueCap:        *queueCap,
		CacheEntries:    *cacheEntries,
		CacheDir:        *cacheDir,
		MaxCycles:       *maxCycles,
		WarmupCycles:    *warmupCycles,
		AllocPolicy:     *allocPolicy,
		AllocEpoch:      *allocEpoch,
		MetricsInterval: *metricsInterval,
		MetricsRingCap:  *metricsRing,

		DisableTelemetry: !*telemetry,
		SpanRingCap:      *spanRing,
		NodeName:         *nodeName,

		Coordinator:       *coordinator,
		HeartbeatInterval: *heartbeat,
		HeartbeatTimeout:  *heartbeatTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	role := "single"
	if *coordinator {
		role = "coordinator"
	} else if *joinURL != "" {
		role = "worker"
	}
	log.Printf("listening on %s (default size %s, queue %d, role %s)", ln.Addr(), size, *queueCap, role)

	handler := svc.Handler()
	if *pprofFlag {
		// Debug endpoints ride an outer mux so the service API stays
		// unaware of them; gated behind the flag because profiling
		// handlers on an exposed daemon are an operational decision.
		outer := http.NewServeMux()
		outer.Handle("/", handler)
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/debug/vars", expvar.Handler())
		handler = outer
		log.Printf("pprof enabled at /debug/pprof (expvar at /debug/vars)")
	}
	httpSrv := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	if *joinURL != "" {
		adv := *advertiseURL
		if adv == "" {
			adv = fmt.Sprintf("http://127.0.0.1:%d", port)
		}
		if err := svc.JoinFabric(*joinURL, adv); err != nil {
			log.Fatal(err)
		}
		log.Printf("joining fabric at %s as %s", *joinURL, adv)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("shutting down: draining jobs (up to %s) and persisting cache index", *drainTimeout)
	case err := <-serveErr:
		log.Fatal(err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Close(shutdownCtx); err != nil {
		log.Printf("close: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("bye")
}
