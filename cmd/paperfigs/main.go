// Command paperfigs regenerates the paper's evaluation artifacts:
// Tables 1–3 (configuration), Figure 1 (the analytical model), Figures
// 4/5 (FA vs clustered SMT on the low- and high-end machines), Figure 6
// (application placements) and Figures 7/8 (clustered vs centralized
// SMTs). With no flags it regenerates everything.
//
// Usage:
//
//	paperfigs [-size ref] [-only fig4,fig7] [-o report.md]
//	          [-progress] [-metrics metricsdir] [-warmup-cycles N]
//	          [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"clustersmt"
	"clustersmt/internal/config"
	"clustersmt/internal/harness"
	"clustersmt/internal/isa"
	"clustersmt/internal/model"
	"clustersmt/internal/version"
	"clustersmt/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")

	sizeName := flag.String("size", "ref", "input size: test or ref")
	only := flag.String("only", "", "comma-separated subset: table1,table2,table3,fig1,fig4,fig5,fig6,fig7,fig8,alloc,conclusion,model,mix")
	outPath := flag.String("o", "", "also write the report to this file")
	bars := flag.Bool("bars", false, "also draw paper-style stacked bars")
	progress := flag.Bool("progress", false, "print a per-run heartbeat to stderr every metrics interval")
	metricsDir := flag.String("metrics", "", "export each run's interval metrics as CSV into this directory")
	metricsInterval := flag.Int64("metrics-interval", clustersmt.DefaultMetricsInterval, "cycles per metrics frame")
	warmupCycles := flag.Int64("warmup-cycles", 0, "fork prefix-declaring workloads from a checkpoint warmed to this cycle (0 = off)")
	allocEpoch := flag.Int64("alloc-epoch", 0, "rebalance interval for the alloc figure's dynamic policies (0 = figure default)")
	parallelSims := flag.Bool("parallel", false, "run each alloc-figure simulation's chips on separate goroutines (bit-identical results)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	showVersion := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile reflects live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	size := clustersmt.SizeRef
	if strings.ToLower(*sizeName) == "test" {
		size = clustersmt.SizeTest
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	// Ctrl-C / SIGTERM cancels in-flight simulations promptly (the
	// suite aborts them via core.Simulator.Interrupt) instead of
	// waiting out whole ref-size runs; a second signal kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One suite serves every figure: the run cache shares results across
	// matrices (FA8/SMT8 alias, Figure 6 reuses Figure 4/5 cells), and
	// with -warmup-cycles any prefix-declaring workloads also share one
	// warmed checkpoint per machine across all the figures that include
	// them.
	suite := clustersmt.NewSuite(size)
	suite.WarmupCycles = *warmupCycles
	if *metricsDir != "" || *progress {
		suite.MetricsInterval = *metricsInterval
	}
	if *progress {
		suite.OnFrame = func(app, machine string, f clustersmt.MetricsFrame) {
			fmt.Fprintf(os.Stderr, "%-8s %-22s %s\n", app, machine, f.String())
		}
	}
	defer func() {
		if *metricsDir == "" {
			return
		}
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, run := range suite.MetricsRuns() {
			// Run keys look like "fmm@low-end/FA1"; flatten both
			// separators so each run is one file in the directory.
			name := strings.NewReplacer("@", "_", "/", "_").Replace(run)
			path := filepath.Join(*metricsDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := suite.WriteMetricsCSV(f, run); err != nil {
				f.Close()
				log.Fatal(err)
			}
			f.Close()
		}
	}()
	if sel("table1") {
		fmt.Fprintln(out, table1())
	}
	if sel("table2") {
		fmt.Fprintln(out, table2())
	}
	if sel("table3") {
		fmt.Fprintln(out, table3())
	}
	if sel("fig1") {
		fmt.Fprintln(out, fig1())
	}
	for _, f := range []struct {
		key string
		fn  func(context.Context) (*harness.Figure, error)
	}{
		{"fig4", suite.Figure4Context},
		{"fig5", suite.Figure5Context},
		{"fig7", suite.Figure7Context},
		{"fig8", suite.Figure8Context},
	} {
		if !sel(f.key) {
			continue
		}
		fig, err := f.fn(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprint(out, fig.Render())
		if *bars {
			fmt.Fprint(out, fig.RenderBars())
		}
		for _, app := range fig.Apps {
			fmt.Fprintf(out, "%-8s best=%-5s", app, fig.Best(app))
			if bf := fig.BestFA(app); bf != "" {
				fmt.Fprintf(out, " bestFA=%s", bf)
			}
			fmt.Fprintln(out)
		}
		fmt.Fprintln(out)
	}
	if sel("alloc") {
		fig, err := harness.AllocationFigure(ctx, size, *allocEpoch, *parallelSims)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(out, fig.Render())
	}
	if sel("conclusion") {
		for _, highEnd := range []bool{false, true} {
			c, err := suite.ConclusionContext(ctx, highEnd)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintln(out, c.Render())
		}
	}
	if sel("mix") {
		mixOut, err := workloads.MixTable(append(workloads.All(), workloads.Extras()...), 8, size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "Workload characterization (dynamic instruction mix, 8 threads):\n%s\n", mixOut)
	}
	if sel("model") {
		for _, highEnd := range []bool{false, true} {
			v, err := suite.ValidateModelContext(ctx, highEnd)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintln(out, v.Render())
		}
	}
	if sel("fig6") {
		for _, highEnd := range []bool{false, true} {
			pts, err := suite.PlacementContext(ctx, highEnd)
			if err != nil {
				log.Fatal(err)
			}
			name := "Figure 6a (low-end)"
			if highEnd {
				name = "Figure 6b (high-end, per-chip threads)"
			}
			fmt.Fprintf(out, "%s:\n%s\n", name, clustersmt.RenderPlacement(pts, model.FromArch(config.SMT2)))
		}
	}
}

func table1() string {
	var b strings.Builder
	b.WriteString("Table 1: functional-unit latencies (cycles)\n")
	rows := []struct {
		unit string
		ops  []isa.Op
	}{
		{"integer", []isa.Op{isa.OpAdd, isa.OpAnd, isa.OpShl, isa.OpMul, isa.OpDiv, isa.OpBeq}},
		{"load/store", []isa.Op{isa.OpLd, isa.OpSt}},
		{"floating point", []isa.Op{isa.OpFadd, isa.OpFmul, isa.OpFdiv}},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-15s", r.unit)
		for _, op := range r.ops {
			inf := isa.InfoFor(op)
			pipe := ""
			if !inf.Pipel {
				pipe = "*"
			}
			fmt.Fprintf(&b, " %s=%d%s", inf.Name, inf.Latency, pipe)
		}
		b.WriteString("\n")
	}
	b.WriteString("  (* = unpipelined)\n")
	return b.String()
}

func table2() string {
	var b strings.Builder
	b.WriteString("Table 2: architectures (per cluster [per chip])\n")
	fmt.Fprintf(&b, "  %-5s %9s %8s %12s %10s %10s\n",
		"arch", "clusters", "issue", "threads", "window", "rename")
	for _, a := range clustersmt.Architectures() {
		fmt.Fprintf(&b, "  %-5s %9d %8d %5d [%2d] %5d [%3d] %4d [%3d]\n",
			a.Name, a.Clusters, a.IssueWidth,
			a.ThreadsPerCluster, a.ThreadsPerChip(),
			a.WindowEntries, a.Clusters*a.WindowEntries,
			a.RenameInt, a.Clusters*a.RenameInt)
	}
	return b.String()
}

func table3() string {
	m := clustersmt.DefaultMem()
	var b strings.Builder
	b.WriteString("Table 3: memory hierarchy (contention-free round trips)\n")
	fmt.Fprintf(&b, "  L1 %dKB %d-way, L2 %dKB %d-way, %dB lines, %d banks, fill %d\n",
		m.L1SizeKB, m.L1Assoc, m.L2SizeKB, m.L2Assoc, m.LineBytes, m.L1Banks, m.FillTime)
	fmt.Fprintf(&b, "  latencies: L1=%d L2=%d local-mem=%d remote-mem=%d remote-L2=%d\n",
		m.L1Latency, m.L2Latency, m.LocalMemLatency, m.RemoteMemLat, m.RemoteL2Lat)
	fmt.Fprintf(&b, "  MSHRs=%d, TLB=%d entries (miss penalty %d)\n",
		m.MSHRs, m.TLBEntries, m.TLBMissPenalty)
	return b.String()
}

func fig1() string {
	var b strings.Builder
	b.WriteString("Figure 1: the model of parallelism\n\n")
	apps := map[string]clustersmt.ModelPoint{"A": {Threads: 5, ILP: 5}}
	for _, a := range []clustersmt.Arch{clustersmt.FA2, clustersmt.SMT2, clustersmt.SMT1} {
		proc := clustersmt.ModelOf(a)
		b.WriteString(clustersmt.ModelChart(proc, apps))
		fmt.Fprintf(&b, "  application A delivered=%.1f region=%s\n\n",
			proc.Delivered(apps["A"]), proc.Classify(apps["A"]))
	}
	b.WriteString("delivered performance for a sweep of application points:\n")
	procs := []clustersmt.ModelProc{
		clustersmt.ModelOf(clustersmt.FA8), clustersmt.ModelOf(clustersmt.FA4),
		clustersmt.ModelOf(clustersmt.FA2), clustersmt.ModelOf(clustersmt.FA1),
		clustersmt.ModelOf(clustersmt.SMT2), clustersmt.ModelOf(clustersmt.SMT1),
	}
	fmt.Fprintf(&b, "  %-12s", "app (T,I)")
	for _, p := range procs {
		fmt.Fprintf(&b, "%7s", p.Name)
	}
	b.WriteString("\n")
	pts := []clustersmt.ModelPoint{
		{Threads: 1, ILP: 6}, {Threads: 2, ILP: 4}, {Threads: 4, ILP: 2.5},
		{Threads: 6, ILP: 1.5}, {Threads: 8, ILP: 1},
	}
	for _, pt := range pts {
		fmt.Fprintf(&b, "  (%3.0f,%4.1f)  ", pt.Threads, pt.ILP)
		for _, p := range procs {
			fmt.Fprintf(&b, "%7.1f", p.Delivered(pt))
		}
		b.WriteString("\n")
	}
	return b.String()
}
