// Package workloads provides the six parallel applications of §4 as
// kernels in the clustersmt ISA: swim, tomcatv and mgrid (SPEC95),
// vpenta (NASA7), and fmm and ocean (SPLASH-2).
//
// The originals are unreproducible here (MIPS2 binaries under MINT,
// Polaris-parallelized Fortran), so each kernel is a real computation
// of the same family — stencils, mesh sweeps, multigrid cycles,
// pentadiagonal solves, N-body force sums, red-black relaxation —
// engineered to occupy the same point in the (thread parallelism ×
// ILP-per-thread) plane that the paper measures in Figure 6. The knobs
// that place them there (parallel width, serial-section size,
// dependence-chain length, working-set size) are documented per kernel
// and pinned by tests. See DESIGN.md for the substitution rationale.
package workloads

import (
	"fmt"
	"math"
	"strings"

	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// floatBits is math.Float64bits, shortened for the init tables.
func floatBits(v float64) uint64 { return math.Float64bits(v) }

// Size selects the input scale.
type Size int

// Input scales: SizeTest keeps unit tests fast; SizeRef is used for the
// paper-figure reproductions (bigger grids, more time steps).
const (
	SizeTest Size = iota
	SizeRef
)

func (s Size) String() string {
	if s == SizeTest {
		return "test"
	}
	return "ref"
}

// Workload is one application.
type Workload struct {
	Name        string
	Description string
	// Build assembles the kernel for the given machine shape (total
	// hardware contexts and chips; the runtime uses the chip count for
	// affinity-aware loop scheduling).
	Build func(threads, chips int, size Size) *prog.Program
	// ParCap is the number of contexts the dominant parallel loops can
	// occupy per 8 hardware contexts (0 = all of them). It scales with
	// the machine — the runtime partitions outer loops per chip-sized
	// context group — and is the calibrated stand-in for each original
	// application's measured thread-level parallelism (Figure 6).
	ParCap int
}

// WorkersAt returns how many of the given hardware contexts the
// workload's dominant parallel loops occupy: min(threads,
// ParCap × max(1, threads/8)).
func (w Workload) WorkersAt(threads int) int {
	if w.ParCap == 0 {
		return threads
	}
	groups := threads / 8
	if groups < 1 {
		groups = 1
	}
	n := w.ParCap * groups
	if n > threads {
		n = threads
	}
	return n
}

// All returns the six applications in the paper's presentation order.
func All() []Workload {
	return []Workload{
		Swim(), Tomcatv(), Mgrid(), Vpenta(), Fmm(), Ocean(),
	}
}

// Extras returns the bonus workloads beyond the paper's six: radix (an
// integer-only sort) and lu (dense factorization with tapering
// parallelism). They are not part of the figure reproductions.
func Extras() []Workload {
	return []Workload{Radix(), LU()}
}

// ByName returns the named workload, searching the paper's six, the
// extras, and — for canonical "synth(...)" names — the synthetic
// generator (ParseSynthetic), so sweep-grid points are addressable
// wherever the applications are (the serving subsystem in particular).
func ByName(name string) (Workload, error) {
	for _, w := range append(All(), Extras()...) {
		if w.Name == name {
			return w, nil
		}
	}
	if strings.HasPrefix(name, "synth(") {
		return ParseSynthetic(name)
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Register conventions shared by all kernels. Each kernel is a single
// straight-line function (no calls), so registers are allocated
// statically per kernel; these common ones keep the builders readable.
const (
	rTID isa.Reg = 30 // thread id (isa.RegTID)
	rNTH isa.Reg = 28 // total threads (loaded from the nthreads global)
	rEFF isa.Reg = 27 // effective parallel width for the current loop
	rLO  isa.Reg = 26 // chunk lower bound
	rHI  isa.Reg = 25 // chunk upper bound
	rT0  isa.Reg = 24 // scratch
	rT1  isa.Reg = 23 // scratch
	rT2  isa.Reg = 22 // scratch
)

// declareRuntime reserves the machine-shape globals and emits the
// standard prologue loading the thread count; every kernel calls this
// first.
func declareRuntime(b *prog.Builder, threads, chips int) {
	b.GlobalWords("nthreads", []uint64{uint64(threads)})
	b.GlobalWords("nchips", []uint64{uint64(chips)})
	b.Mov(rTID, isa.RegTID)
	b.Ld(rNTH, 0, b.MustAddr("nthreads"))
}

// emitChunkTo computes this thread's [lo, hi) slice of total iterations
// distributed block-wise over an effective width of
// min(nthreads, cap × max(1, nthreads/8)) threads (cap 0 uses every
// thread), leaving the bounds in the given registers. Threads beyond
// the effective width receive an empty chunk — they proceed straight to
// the next barrier, which is exactly how limited loop parallelism
// starves wide FA machines in the paper; on multi-chip machines the cap
// scales with the context count (the runtime partitions outer loops per
// chip-sized context group).
//
// Kernels hoist these computations ahead of their time-step loops (the
// bounds are loop-invariant), as any real compiler would.
func emitChunkTo(b *prog.Builder, total int64, cap int, lo, hi isa.Reg) {
	seq := b.Seq()
	grpOK := fmt.Sprintf(".ck%d_grpok", seq)
	capOK := fmt.Sprintf(".ck%d_capok", seq)
	empty := fmt.Sprintf(".ck%d_empty", seq)
	done := fmt.Sprintf(".ck%d_done", seq)

	if cap > 0 {
		// groups = max(1, nth/8); eff = min(nth, cap*groups).
		b.Shri(rEFF, rNTH, 3)
		b.Li(rT0, 1)
		b.Bge(rEFF, rT0, grpOK)
		b.Li(rEFF, 1)
		b.Label(grpOK)
		b.Li(rT0, int64(cap))
		b.Mul(rEFF, rEFF, rT0)
		b.Bge(rNTH, rEFF, capOK)
		b.Mov(rEFF, rNTH)
		b.Label(capOK)
	} else {
		b.Mov(rEFF, rNTH)
	}
	b.Bge(rTID, rEFF, empty)

	// Affinity remap: thread ids interleave across chips (SPMD
	// placement), but adjacent data chunks should live on the same
	// chip to keep halo traffic on-chip. When the worker count divides
	// evenly over the chips, worker w on chip c = w % nchips takes
	// chunk c*(eff/nchips) + w/nchips; otherwise chunks follow worker
	// rank directly. lo is used as the chunk-index scratch.
	plain := fmt.Sprintf(".ck%d_plain", seq)
	remapped := fmt.Sprintf(".ck%d_remap", seq)
	b.Ld(rT1, 0, b.MustAddr("nchips"))
	b.Rem(rT2, rEFF, rT1)
	b.Bne(rT2, isa.RegZero, plain)
	b.Div(rT2, rEFF, rT1) // per-chip worker count
	b.Beq(rT2, isa.RegZero, plain)
	b.Rem(lo, rTID, rT1) // chip index
	b.Mul(lo, lo, rT2)
	b.Div(rT2, rTID, rT1) // within-chip worker index
	b.Add(lo, lo, rT2)
	b.Jump(remapped)
	b.Label(plain)
	b.Mov(lo, rTID)
	b.Label(remapped)

	b.Li(rT0, total)
	b.Addi(hi, lo, 1)
	b.Mul(lo, lo, rT0)
	b.Div(lo, lo, rEFF)
	b.Mul(hi, hi, rT0)
	b.Div(hi, hi, rEFF)
	b.Jump(done)
	b.Label(empty)
	b.Li(lo, 0)
	b.Li(hi, 0)
	b.Label(done)
}

// emitChunk is emitChunkTo targeting the conventional rLO/rHI pair.
func emitChunk(b *prog.Builder, total int64, cap int) {
	emitChunkTo(b, total, cap, rLO, rHI)
}
