package workloads

import (
	"strings"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/parallel"
)

func TestAllHasSixApps(t *testing.T) {
	ws := All()
	if len(ws) != 6 {
		t.Fatalf("apps = %d, want 6", len(ws))
	}
	want := []string{"swim", "tomcatv", "mgrid", "vpenta", "fmm", "ocean"}
	for i, w := range ws {
		if w.Name != want[i] {
			t.Errorf("app %d = %s, want %s", i, w.Name, want[i])
		}
		if w.Description == "" || w.Build == nil {
			t.Errorf("%s: incomplete workload", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("ocean")
	if err != nil || w.Name != "ocean" {
		t.Fatalf("ByName: %v %v", w.Name, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

// TestFunctionalCompletion: every kernel must run to completion
// functionally at every paper-relevant thread count, with no deadlock
// and no leaked locks.
func TestFunctionalCompletion(t *testing.T) {
	for _, w := range All() {
		for _, threads := range []int{1, 2, 4, 8} {
			p := w.Build(threads, 1, SizeTest)
			res, err := parallel.RunFunctional(p, threads, 50_000_000)
			if err != nil {
				t.Fatalf("%s/%d threads: %v", w.Name, threads, err)
			}
			if res.Steps == 0 {
				t.Fatalf("%s/%d threads: no instructions executed", w.Name, threads)
			}
		}
	}
}

// TestWorkDistribution: with 8 threads, at least min(8, MaxParallel)
// threads must execute a nontrivial share of instructions.
func TestWorkDistribution(t *testing.T) {
	for _, w := range All() {
		p := w.Build(8, 1, SizeTest)
		res, err := parallel.RunFunctional(p, 8, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		wantWorkers := w.WorkersAt(8)
		busy := 0
		for _, th := range res.Threads {
			if th.Retired > res.Steps/uint64(8*4) {
				busy++
			}
		}
		if busy < wantWorkers {
			t.Errorf("%s: only %d busy threads, want >= %d", w.Name, busy, wantWorkers)
		}
	}
}

// TestThreadCountInvariance: the computed results (the diagnostic
// globals each kernel writes) must not depend on how many threads ran
// the kernel, for the deterministic (lock-free-output) kernels.
func TestThreadCountInvariance(t *testing.T) {
	outputs := map[string]string{
		"swim":    "checksum",
		"tomcatv": "resid",
		"mgrid":   "resid",
		"vpenta":  "sum",
		"ocean":   "resid",
	}
	for _, w := range All() {
		sym, ok := outputs[w.Name]
		if !ok {
			continue // fmm's lock order legitimately varies rounding
		}
		if w.Name == "ocean" {
			// Gauss-Seidel sweeps read neighbors updated in the same
			// pass; with different chunkings the update order inside a
			// color differs only across chunk boundaries — red/black
			// ordering makes the result chunking-independent.
			_ = sym
		}
		p1 := w.Build(1, 1, SizeTest)
		r1, err := parallel.RunFunctional(p1, 1, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		p8 := w.Build(8, 1, SizeTest)
		r8, err := parallel.RunFunctional(p8, 8, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		v1 := r1.ReadWord(p1, sym, 0)
		v8 := r8.ReadWord(p8, sym, 0)
		if v1 != v8 {
			t.Errorf("%s: %s differs across thread counts: %x vs %x", w.Name, sym, v1, v8)
		}
	}
}

// TestFmmLocksUsed: fmm must actually contend on cell locks.
func TestFmmLocksUsed(t *testing.T) {
	p := Fmm().Build(8, 1, SizeTest)
	res, err := parallel.RunFunctional(p, 8, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sync.LockAcquires == 0 {
		t.Fatal("fmm acquired no locks")
	}
}

// TestTimingSmoke: each kernel must complete on the timing simulator
// (SMT2 low-end) and agree with the functional reference memory state
// for its diagnostic output.
func TestTimingSmoke(t *testing.T) {
	m := config.LowEnd(config.SMT2)
	for _, w := range All() {
		p := w.Build(m.Threads(), m.Chips, SizeTest)
		sim, err := core.New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		sim.MaxCycles = 100_000_000
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if res.Committed == 0 {
			t.Fatalf("%s: nothing committed", w.Name)
		}

		pRef := w.Build(m.Threads(), m.Chips, SizeTest)
		ref, err := parallel.RunFunctional(pRef, m.Threads(), 100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(0) != ref.Steps-res.Committed && ref.Steps != res.Committed {
			t.Errorf("%s: committed %d != functional steps %d", w.Name, res.Committed, ref.Steps)
		}
	}
}

func TestSizesDiffer(t *testing.T) {
	for _, w := range All() {
		small := w.Build(4, 1, SizeTest)
		big := w.Build(4, 1, SizeRef)
		if big.DataEnd <= small.DataEnd {
			t.Errorf("%s: ref size not larger than test size", w.Name)
		}
	}
	if SizeTest.String() == SizeRef.String() {
		t.Error("size strings collide")
	}
}

// TestTimingMatchesFunctionalMemory: for every kernel and a
// representative architecture set, the timing simulator must leave the
// entire data segment bit-identical to the pure-functional reference —
// both drive the same functional engine, so any divergence is a
// simulator bug. fmm's cellacc is excluded (its lock-ordered float
// reduction is timing-dependent by construction).
func TestTimingMatchesFunctionalMemory(t *testing.T) {
	skip := map[string]map[string]bool{
		"fmm": {"cellacc": true},
	}
	archs := []config.Arch{config.FA8, config.FA2, config.SMT2, config.SMT1}
	for _, w := range All() {
		for _, arch := range archs {
			m := config.LowEnd(arch)
			pRef := w.Build(m.Threads(), m.Chips, SizeTest)
			ref, err := parallel.RunFunctional(pRef, m.Threads(), 100_000_000)
			if err != nil {
				t.Fatalf("%s/%s functional: %v", w.Name, arch.Name, err)
			}
			pSim := w.Build(m.Threads(), m.Chips, SizeTest)
			sim, err := core.New(m, pSim)
			if err != nil {
				t.Fatal(err)
			}
			sim.MaxCycles = 100_000_000
			if _, err := sim.Run(); err != nil {
				t.Fatalf("%s/%s: %v", w.Name, arch.Name, err)
			}
			for _, s := range pSim.SymbolsSorted() {
				if skip[w.Name][s.Name] {
					continue
				}
				for off := int64(0); off < s.Size; off += 8 {
					got := sim.Mem().Load(s.Addr + off)
					want := ref.Mem.Load(s.Addr + off)
					if got != want {
						t.Fatalf("%s/%s: %s+%d: timing %x != functional %x",
							w.Name, arch.Name, s.Name, off, got, want)
					}
				}
			}
		}
	}
}

func TestMeasureMix(t *testing.T) {
	p := Vpenta().Build(4, 1, SizeTest)
	m, err := MeasureMix(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Mix must cover everything and match the functional step count.
	sum := m.IntOps + m.FPOps + m.Loads + m.Stores + m.Branches + m.Syncs + m.Other
	if sum != m.Total {
		t.Fatalf("mix categories sum %d != total %d", sum, m.Total)
	}
	ref, err := parallel.RunFunctional(Vpenta().Build(4, 1, SizeTest), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != ref.Steps {
		t.Fatalf("mix total %d != functional steps %d", m.Total, ref.Steps)
	}
	if m.FPOps == 0 || m.Loads == 0 || m.Branches == 0 {
		t.Fatalf("implausible vpenta mix: %s", m)
	}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}

func TestMixTable(t *testing.T) {
	out, err := MixTable(append(All(), Extras()...), 4, SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range append(All(), Extras()...) {
		if !strings.Contains(out, w.Name) {
			t.Errorf("mix table missing %s", w.Name)
		}
	}
	// Radix is the integer workload: its fp share must be ~0.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "radix") && !strings.Contains(line, "  0.0%") {
			t.Errorf("radix line has FP content: %q", line)
		}
	}
}

func TestWorkersAtScaling(t *testing.T) {
	cases := []struct {
		cap     int
		threads int
		want    int
	}{
		{0, 8, 8}, // unbounded
		{0, 32, 32},
		{4, 8, 4},   // swim low-end
		{4, 32, 16}, // swim high-end: cap x 4 groups
		{2, 8, 2},   // tomcatv low-end
		{2, 32, 8},  // tomcatv high-end
		{6, 8, 6},   // fmm
		{6, 32, 24},
		{4, 2, 2}, // small machines clamp to the thread count
		{2, 1, 1},
		{4, 16, 8}, // FA4 high-end: 2 groups
	}
	for _, c := range cases {
		w := Workload{ParCap: c.cap}
		if got := w.WorkersAt(c.threads); got != c.want {
			t.Errorf("cap=%d threads=%d: workers = %d, want %d", c.cap, c.threads, got, c.want)
		}
	}
}

// TestChunkMatchesWorkersAt: the emitted chunk code's effective width
// must agree with WorkersAt for the paper-relevant machine shapes.
func TestChunkMatchesWorkersAt(t *testing.T) {
	for _, w := range All() {
		for _, threads := range []int{1, 2, 4, 8} {
			p := w.Build(threads, 1, SizeTest)
			res, err := parallel.RunFunctional(p, threads, 100_000_000)
			if err != nil {
				t.Fatal(err)
			}
			want := w.WorkersAt(threads)
			busy := 0
			for _, th := range res.Threads {
				if th.Retired > res.Steps/uint64(threads*4+1) {
					busy++
				}
			}
			if busy < want {
				t.Errorf("%s threads=%d: busy=%d < workers=%d", w.Name, threads, busy, want)
			}
		}
	}
}
