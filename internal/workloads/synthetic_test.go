package workloads

import (
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/parallel"
)

func runSynth(t *testing.T, spec SyntheticSpec, arch config.Arch) *core.Result {
	t.Helper()
	w := Synthetic(spec)
	m := config.LowEnd(arch)
	p := w.Build(m.Threads(), m.Chips, SizeTest)
	sim, err := core.New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	sim.MaxCycles = 200_000_000
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSyntheticRunsFunctionally(t *testing.T) {
	specs := []SyntheticSpec{
		{},
		{ParCap: 2, ChainLen: 4},
		{IndepOps: 8, MemOps: 3, SerialIters: 200},
		{FootprintKB: 128, MemOps: 4},
	}
	for _, spec := range specs {
		w := Synthetic(spec)
		for _, threads := range []int{1, 8} {
			p := w.Build(threads, 1, SizeTest)
			if _, err := parallel.RunFunctional(p, threads, 50_000_000); err != nil {
				t.Fatalf("%s threads=%d: %v", w.Name, threads, err)
			}
		}
	}
}

// TestSyntheticChainLowersILP: a long carried chain must lower measured
// IPC on a wide core compared to an independent-ops body.
func TestSyntheticChainLowersILP(t *testing.T) {
	indep := runSynth(t, SyntheticSpec{IndepOps: 8, Iters: 1024}, config.FA1)
	chain := runSynth(t, SyntheticSpec{ChainLen: 8, Iters: 1024}, config.FA1)
	if chain.IPC >= indep.IPC {
		t.Errorf("chain IPC %.2f >= independent IPC %.2f", chain.IPC, indep.IPC)
	}
}

// TestSyntheticParCapLimitsThreads: a ParCap of 2 must keep average
// running threads near 2 on the 8-context FA8 (the rest park at the
// barrier).
func TestSyntheticParCapLimitsThreads(t *testing.T) {
	res := runSynth(t, SyntheticSpec{ParCap: 2, Iters: 2048, ChainLen: 2}, config.FA8)
	if res.AvgRunningThreads > 3.5 {
		t.Errorf("avg running threads = %.2f, want ~2", res.AvgRunningThreads)
	}
}

// TestSyntheticPlaneResponse: the architectures must respond to the
// synthetic plane the way the §2 model predicts — a thready low-ILP
// point favors FA8 over FA1; a narrow high-ILP point favors FA1 over
// FA8.
func TestSyntheticPlaneResponse(t *testing.T) {
	thready := SyntheticSpec{ChainLen: 8, Iters: 2048} // all threads, ILP ~1-2
	fa8 := runSynth(t, thready, config.FA8)
	fa1 := runSynth(t, thready, config.FA1)
	if fa8.Cycles >= fa1.Cycles {
		t.Errorf("thready point: FA8 %d cycles >= FA1 %d", fa8.Cycles, fa1.Cycles)
	}

	narrow := SyntheticSpec{ParCap: 1, IndepOps: 10, Iters: 2048}
	fa8n := runSynth(t, narrow, config.FA8)
	fa1n := runSynth(t, narrow, config.FA1)
	if fa1n.Cycles >= fa8n.Cycles {
		t.Errorf("narrow point: FA1 %d cycles >= FA8 %d", fa1n.Cycles, fa8n.Cycles)
	}
}

// TestSyntheticSerialAmdahl: adding serial iterations must slow the
// many-thread machine disproportionately.
func TestSyntheticSerialAmdahl(t *testing.T) {
	base := runSynth(t, SyntheticSpec{ChainLen: 2, Iters: 2048}, config.FA8)
	serial := runSynth(t, SyntheticSpec{ChainLen: 2, Iters: 2048, SerialIters: 3000}, config.FA8)
	if serial.Cycles <= base.Cycles {
		t.Errorf("serial section did not cost cycles: %d vs %d", serial.Cycles, base.Cycles)
	}
	if serial.Slots.Counts[2] <= base.Slots.Counts[2] { // sync slots
		t.Error("serial section did not raise sync slots")
	}
}

// TestSyntheticFootprintRaisesMemory: spilling the working set past the
// L1 must raise the memory-hazard share.
func TestSyntheticFootprintRaisesMemory(t *testing.T) {
	small := runSynth(t, SyntheticSpec{MemOps: 4, FootprintKB: 16, Iters: 2048}, config.SMT2)
	big := runSynth(t, SyntheticSpec{MemOps: 4, FootprintKB: 512, Iters: 2048}, config.SMT2)
	if big.Slots.Fraction(5) <= small.Slots.Fraction(5) { // stats.Memory
		t.Errorf("memory fraction did not rise: %.3f vs %.3f",
			big.Slots.Fraction(5), small.Slots.Fraction(5))
	}
}

// TestParseSynthetic pins the name grammar: every canonical name (with
// and without the warm-up suffix) round-trips through ParseSynthetic
// and ByName, and anything non-canonical — wrong key, extra field,
// defaulted-field mismatch — is rejected, keeping one name per spec.
func TestParseSynthetic(t *testing.T) {
	for _, spec := range []SyntheticSpec{
		{},
		{ParCap: 2, ChainLen: 4, IndepOps: 1, MemOps: 3, FootprintKB: 64, Iters: 1024, SerialIters: 32, Steps: 3},
		{ChainLen: 2, IndepOps: 2, Iters: 256, WarmupIters: 1500},
	} {
		name := Synthetic(spec).Name
		w, err := ParseSynthetic(name)
		if err != nil {
			t.Errorf("ParseSynthetic(%q): %v", name, err)
			continue
		}
		if w.Name != name {
			t.Errorf("ParseSynthetic(%q) returned %q", name, w.Name)
		}
		if bn, err := ByName(name); err != nil || bn.Name != name {
			t.Errorf("ByName(%q) = %q, %v", name, bn.Name, err)
		}
	}

	for _, bad := range []string{
		"",
		"swim",
		"synth()",
		"synth(p0,c0,i0)",
		"synth(p0,c0,i0,m1,f16,n4096,s0,t2,w0)", // w0 is elided in canonical names
		"synth(p0,c0,i0,m0,f16,n4096,s0,t2)",    // MemOps defaults to 1, so m0 never renders
		"synth(p0,c0,i0,m1,f16,n4096,s0,t2,x5)", // wrong key
		"synth(p0,c0,i0,m1,f16,n4096,s0,t2,w1,w2)", // too many fields
		"synth(p0,c0,i0,m1,f16,nABC,s0,t2)",
	} {
		if _, err := ParseSynthetic(bad); err == nil {
			t.Errorf("ParseSynthetic(%q) accepted a non-canonical name", bad)
		}
	}
}
