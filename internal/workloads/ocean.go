package workloads

import (
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// Ocean is the SPLASH-2 ocean analog: red-black Gauss-Seidel relaxation
// over a grid deliberately larger than the L1 cache, fully parallel
// over rows with only a tiny serial residual check. High thread
// parallelism plus memory-bound per-thread execution puts it in the
// lower-right corner of Figure 6a (~7 threads, ILP ~1.5).
func Ocean() Workload {
	return Workload{
		Name:        "ocean",
		Description: "red-black relaxation on an L1-exceeding grid (SPLASH-2 ocean analog)",
		ParCap:      0,
		Build:       buildOcean,
	}
}

func oceanParams(size Size) (n, steps int64) {
	if size == SizeTest {
		return 32, 1
	}
	// 72x72 x 8B x 2 arrays = 81 KiB: larger than the 64 KiB L1, so
	// steady-state relaxation carries miss latency without drowning
	// the narrow-cluster configurations in bandwidth contention.
	return 72, 2
}

func buildOcean(threads, chips int, size Size) *prog.Program {
	n, steps := oceanParams(size)
	b := prog.NewBuilder("ocean")
	declareRuntime(b, threads, chips)

	q := b.Global("q", n*n)
	rhs := b.Global("rhs", n*n)
	b.Global("resid", 1)

	const (
		rStep  isa.Reg = 1
		rI     isa.Reg = 2
		rJ     isa.Reg = 3
		rRow   isa.Reg = 4
		rA     isa.Reg = 5
		rJB    isa.Reg = 6
		rColor isa.Reg = 7
		rSB    isa.Reg = 8
		rPar   isa.Reg = 9
	)
	const (
		fW   isa.Reg = 0
		fE   isa.Reg = 1
		fN   isa.Reg = 2
		fS   isa.Reg = 3
		fR   isa.Reg = 4
		fK   isa.Reg = 5
		fT0  isa.Reg = 6
		fAc  isa.Reg = 7
		fK2  isa.Reg = 8
		fT1  isa.Reg = 9
		fTwo isa.Reg = 10
	)
	rowBytes := n * prog.WordSize

	// sweep emits one red/black half-sweep (color = 0 or 1) over this
	// thread's rows. Within a row, each cell reads the same-color cell
	// two columns back — written on the previous iteration — and
	// divides by a rho factor derived from it (SOR with a varying
	// coefficient). The store-to-load dependence plus the unpipelined
	// divide put ~13 cycles of strictly serial work on every cell, so
	// per-thread throughput is chain-bound on wide clusters and issue-
	// bound on narrow ones: exactly the regime where thread count is
	// everything, ocean's corner of Figure 6. Same-thread, same-row:
	// deterministic under any partitioning.
	sweep := func(color int64) {
		b.Mov(rI, rLO)
		b.CountedLoop(rI, rHI, func() {
			b.Li(rT0, rowBytes)
			b.Mul(rRow, rI, rT0)
			// First column of this color in row i: 1 + (i+color)%2;
			// rA walks (i*n + j)*8 with stride 16 (every other cell).
			b.Addi(rT1, rI, color)
			b.Andi(rT1, rT1, 1)
			b.Addi(rT1, rT1, 1)
			b.Shli(rT1, rT1, 3)
			b.Add(rA, rRow, rT1)
			b.Addi(rJB, rRow, (n-1)*prog.WordSize)
			b.SteppedLoop(rA, rJB, 2*prog.WordSize, func() {
				b.Ldf(fW, rA, q-prog.WordSize)
				b.Ldf(fE, rA, q+prog.WordSize)
				b.Ldf(fN, rA, q-rowBytes)
				b.Ldf(fS, rA, q+rowBytes)
				b.Ldf(fR, rA, rhs)
				b.Ldf(fT0, rA, q-2*prog.WordSize) // GS: just written
				b.Fadd(fW, fW, fE)
				b.Fadd(fN, fN, fS)
				b.Fadd(fW, fW, fN)
				b.Fsub(fW, fW, fR)
				b.Fmul(fT1, fT0, fK2)
				b.Fadd(fW, fW, fT1)
				b.Fadd(fT0, fT0, fTwo) // rho = gs-cell + 2 (chained)
				b.Fdiv(fW, fW, fT0)
				b.Stf(fW, rA, q)
			})
		})
	}

	b.Fli(fK, 0.25)
	b.Fli(fK2, 0.125)
	b.Fli(fTwo, 2.0)
	// Hoisted loop-invariant column distribution.
	emitChunk(b, n-2, 0)
	b.Addi(rLO, rLO, 1)
	b.Addi(rHI, rHI, 1)
	b.Li(rStep, 0)
	b.Li(rSB, steps)
	b.CountedLoop(rStep, rSB, func() {
		b.Li(rColor, 0)
		sweep(0)
		b.Barrier(0)
		sweep(1)
		b.Barrier(1)

		// Tiny serial residual sample by thread 0.
		b.IfThread0(func() {
			b.Fli(fAc, 0.0)
			b.Li(rJ, 1)
			b.Li(rJB, n-1)
			b.CountedLoop(rJ, rJB, func() {
				b.Shli(rA, rJ, 3)
				b.Ldf(fT0, rA, q+rowBytes)
				b.Fadd(fAc, fAc, fT0)
			})
			b.Stf(fAc, isa.RegZero, b.MustAddr("resid"))
		})
		b.Barrier(2)
		_ = rPar
	})
	b.Halt()

	pr := b.MustBuild()
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			off := (i*n + j) * prog.WordSize
			pr.Init[q+off] = floatBits(0.5 + 0.001*float64((i*31+j*7)%101))
			pr.Init[rhs+off] = floatBits(0.1 * float64((i+j)%5))
		}
	}
	return pr
}
