package workloads

import (
	"fmt"
	"strings"

	"clustersmt/internal/interp"
	"clustersmt/internal/isa"
	"clustersmt/internal/parallel"
	"clustersmt/internal/prog"
)

// Mix is a workload's dynamic instruction mix, measured by functional
// execution — the workload-characterization table every simulation
// paper carries alongside its figures.
type Mix struct {
	Total    uint64
	IntOps   uint64
	FPOps    uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
	Syncs    uint64
	Other    uint64
}

func (m Mix) pct(n uint64) float64 {
	if m.Total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(m.Total)
}

// String renders the mix as percentages.
func (m Mix) String() string {
	return fmt.Sprintf("total=%d int=%.1f%% fp=%.1f%% load=%.1f%% store=%.1f%% branch=%.1f%% sync=%.1f%%",
		m.Total, m.pct(m.IntOps), m.pct(m.FPOps), m.pct(m.Loads),
		m.pct(m.Stores), m.pct(m.Branches), m.pct(m.Syncs))
}

// MeasureMix functionally executes p with the given thread count and
// tallies the dynamic instruction mix (a counting variant of
// parallel.RunFunctional's round-robin scheduler).
func MeasureMix(p *prog.Program, threads int) (Mix, error) {
	var m Mix
	mem := interp.NewMemory()
	mem.LoadImage(p)
	sync := parallel.NewSync(threads)
	threadsCtx := make([]*interp.Thread, threads)
	for i := range threadsCtx {
		threadsCtx[i] = interp.NewThread(i, p, mem)
	}
	blocked := make([]int, threads) // 0 none, 1 lock, 2 barrier
	barTarget := make([]uint64, threads)
	for {
		progress, alive := false, false
		for tid, t := range threadsCtx {
			if t.Halted {
				continue
			}
			alive = true
			in := t.Peek()
			switch blocked[tid] {
			case 1:
				if !sync.TryLock(in.Imm, tid) {
					continue
				}
				blocked[tid] = 0
			case 2:
				if !sync.Released(in.Imm, barTarget[tid]) {
					continue
				}
				blocked[tid] = 0
			default:
				switch in.Op {
				case isa.OpLock:
					if !sync.TryLock(in.Imm, tid) {
						blocked[tid] = 1
						continue
					}
				case isa.OpUnlock:
					sync.Unlock(in.Imm, tid)
				case isa.OpBarrier:
					barTarget[tid] = sync.Arrive(in.Imm)
					if !sync.Released(in.Imm, barTarget[tid]) {
						blocked[tid] = 2
						continue
					}
				}
			}
			inf := in.Info()
			m.Total++
			switch {
			case inf.Sync:
				m.Syncs++
			case inf.Branch:
				m.Branches++
			case inf.Class == isa.ClassLoad:
				m.Loads++
			case inf.Class == isa.ClassStore:
				m.Stores++
			case inf.Class == isa.ClassFP:
				m.FPOps++
			case inf.Class == isa.ClassInt:
				m.IntOps++
			default:
				m.Other++
			}
			t.Step()
			progress = true
		}
		if !alive {
			break
		}
		if !progress {
			return Mix{}, fmt.Errorf("workloads: mix measurement deadlocked")
		}
	}
	return m, nil
}

// MixTable renders the dynamic mixes of the given workloads at the
// given thread count and size.
func MixTable(ws []Workload, threads int, size Size) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %6s %6s %6s %6s %7s %6s\n",
		"app", "instrs", "int%", "fp%", "load%", "store%", "branch%", "sync%")
	for _, w := range ws {
		p := w.Build(threads, 1, size)
		m, err := MeasureMix(p, threads)
		if err != nil {
			return "", fmt.Errorf("%s: %w", w.Name, err)
		}
		fmt.Fprintf(&b, "%-10s %10d %5.1f%% %5.1f%% %5.1f%% %5.1f%% %6.1f%% %5.1f%%\n",
			w.Name, m.Total, m.pct(m.IntOps), m.pct(m.FPOps), m.pct(m.Loads),
			m.pct(m.Stores), m.pct(m.Branches), m.pct(m.Syncs))
	}
	return b.String(), nil
}
