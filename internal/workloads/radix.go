package workloads

import (
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// Radix is a bonus workload beyond the paper's six: the SPLASH-2 radix
// sort, a parallel counting sort processed one digit per phase. Unlike
// the six FP kernels it is integer-only — shifts, masks, histogram
// updates and scatters — and it alternates highly parallel histogram/
// scatter phases with a serial prefix-sum phase, all barrier-
// delimited. Keys are 8-bit, sorted in two 4-bit passes.
func Radix() Workload {
	return Workload{
		Name:        "radix",
		Description: "parallel radix sort, 4-bit digits (SPLASH-2 radix analog; extension)",
		ParCap:      0,
		Build:       buildRadix,
	}
}

const (
	radixDigits = 16 // 4-bit digit
	radixPasses = 2  // 8-bit keys
)

func radixParams(size Size) (n int64) {
	if size == SizeTest {
		return 512
	}
	return 2048
}

func buildRadix(threads, chips int, size Size) *prog.Program {
	n := radixParams(size)
	maxThreads := int64(64)

	b := prog.NewBuilder("radix")
	declareRuntime(b, threads, chips)
	src := b.Global("keys", n)
	dst := b.Global("dst", n)
	// hist[tid][digit] and rank[tid][digit].
	hist := b.Global("hist", maxThreads*radixDigits)
	rank := b.Global("rank", maxThreads*radixDigits)
	b.Global("checks", 1)

	const (
		rI    isa.Reg = 1 // element index
		rKey  isa.Reg = 2
		rDig  isa.Reg = 3
		rAddr isa.Reg = 4
		rCnt  isa.Reg = 5
		rRow  isa.Reg = 6 // this thread's hist/rank row byte offset
		rT    isa.Reg = 7 // tid loop (serial phase)
		rD    isa.Reg = 8 // digit loop (serial phase)
		rOff  isa.Reg = 9 // running offset (serial phase)
		rTB   isa.Reg = 10
		rDB   isa.Reg = 11
		rSh   isa.Reg = 12 // current pass shift amount
	)

	// Hoisted: element chunk and this thread's histogram row base.
	emitChunk(b, n, 0)
	b.Li(rT0, radixDigits*prog.WordSize)
	b.Mul(rRow, rTID, rT0)

	var barrier int64
	pass := func(shift int64, from, to int64) {
		b.Li(rSh, shift)
		// --- zero this thread's histogram row ---
		b.Li(rD, 0)
		b.Li(rDB, radixDigits)
		b.CountedLoop(rD, rDB, func() {
			b.Shli(rAddr, rD, 3)
			b.Add(rAddr, rAddr, rRow)
			b.St(0, rAddr, hist)
		})
		// --- local histogram over the thread's chunk ---
		b.Mov(rI, rLO)
		b.CountedLoop(rI, rHI, func() {
			b.Shli(rAddr, rI, 3)
			b.Ld(rKey, rAddr, from)
			b.Shr(rDig, rKey, rSh)
			b.Andi(rDig, rDig, radixDigits-1)
			b.Shli(rAddr, rDig, 3)
			b.Add(rAddr, rAddr, rRow)
			b.Ld(rCnt, rAddr, hist)
			b.Addi(rCnt, rCnt, 1)
			b.St(rCnt, rAddr, hist)
		})
		b.Barrier(barrier)
		barrier++
		// --- serial prefix: rank[t][d] = running offset in digit-major,
		// tid-minor order (stable sort) ---
		b.IfThread0(func() {
			b.Li(rOff, 0)
			b.Li(rD, 0)
			b.Li(rDB, radixDigits)
			b.CountedLoop(rD, rDB, func() {
				b.Li(rT, 0)
				b.Mov(rTB, rNTH)
				b.CountedLoop(rT, rTB, func() {
					// addr = (t*digits + d) * 8
					b.Li(rT0, radixDigits)
					b.Mul(rAddr, rT, rT0)
					b.Add(rAddr, rAddr, rD)
					b.Shli(rAddr, rAddr, 3)
					b.Ld(rCnt, rAddr, hist)
					b.St(rOff, rAddr, rank)
					b.Add(rOff, rOff, rCnt)
				})
			})
		})
		b.Barrier(barrier)
		barrier++
		// --- scatter: stable within the thread's chunk ---
		b.Mov(rI, rLO)
		b.CountedLoop(rI, rHI, func() {
			b.Shli(rAddr, rI, 3)
			b.Ld(rKey, rAddr, from)
			b.Shr(rDig, rKey, rSh)
			b.Andi(rDig, rDig, radixDigits-1)
			b.Shli(rAddr, rDig, 3)
			b.Add(rAddr, rAddr, rRow)
			b.Ld(rCnt, rAddr, rank) // destination slot
			b.Addi(rT0, rCnt, 1)
			b.St(rT0, rAddr, rank)
			b.Shli(rCnt, rCnt, 3)
			b.Shli(rT0, rI, 3)
			b.Ld(rT1, rT0, from)
			b.St(rT1, rCnt, to)
		})
		b.Barrier(barrier)
		barrier++
	}

	pass(0, src, dst)
	pass(4, dst, src) // result lands back in keys

	// Serial check: count adjacent inversions (must end up zero).
	b.IfThread0(func() {
		b.Li(rI, 1)
		b.Li(rTB, n)
		b.Li(rOff, 0)
		b.CountedLoop(rI, rTB, func() {
			b.Shli(rAddr, rI, 3)
			b.Ld(rKey, rAddr, src)
			b.Ld(rCnt, rAddr, src-prog.WordSize)
			b.Slt(rT0, rKey, rCnt)
			b.Add(rOff, rOff, rT0)
		})
		b.St(rOff, isa.RegZero, b.MustAddr("checks"))
	})
	b.Halt()

	p := b.MustBuild()
	// Deterministic pseudo-random 8-bit keys.
	state := uint64(0x12345678)
	for i := int64(0); i < n; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		p.Init[src+i*prog.WordSize] = (state >> 33) & 0xFF
	}
	return p
}
