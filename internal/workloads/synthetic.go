package workloads

import (
	"fmt"

	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// SyntheticSpec places a parameterized workload at an arbitrary point
// of the paper's (threads × ILP) plane — the §2 chart. It is the
// workload generator behind sweep experiments: instead of the six
// calibrated applications, generate a grid of points and observe how
// each architecture responds.
type SyntheticSpec struct {
	// ParCap is the number of contexts the parallel loop occupies per
	// 8 hardware contexts (0 = all): the thread-axis knob.
	ParCap int
	// ChainLen is the number of chained FP operations per loop
	// iteration (each ~1-2 cycles of serial latency): the ILP-axis
	// knob. 0 gives a fully independent (high-ILP) loop body.
	ChainLen int
	// IndepOps is the number of independent FP operations per
	// iteration (work that can issue in parallel with the chain).
	IndepOps int
	// MemOps is the number of array loads per iteration (memory
	// pressure; the array is sized by Footprint).
	MemOps int
	// FootprintKB is the array working set in KiB (0 = 16 KiB,
	// L1-resident; larger values spill to L2/memory).
	FootprintKB int
	// Iters is the number of loop iterations distributed across the
	// participating threads (0 = 4096).
	Iters int64
	// SerialIters is a serial (thread 0) chained section per step,
	// in iterations: the Amdahl knob.
	SerialIters int64
	// Steps is the number of barrier-delimited repetitions (0 = 2).
	Steps int64
}

func (s SyntheticSpec) withDefaults() SyntheticSpec {
	if s.FootprintKB <= 0 {
		s.FootprintKB = 16
	}
	if s.Iters <= 0 {
		s.Iters = 4096
	}
	if s.Steps <= 0 {
		s.Steps = 2
	}
	if s.MemOps < 1 {
		s.MemOps = 1
	}
	return s
}

// Synthetic builds a Workload from the spec. The kernel is a barrier-
// delimited parallel loop: each iteration performs MemOps strided
// loads, IndepOps independent FP multiplies and a ChainLen-long carried
// FP chain; thread 0 additionally runs SerialIters of a carried chain
// per step.
func Synthetic(spec SyntheticSpec) Workload {
	spec = spec.withDefaults()
	return Workload{
		// The name encodes the full defaulted spec: harness.Suite keys
		// its run cache by workload name, so two distinct specs must
		// never share one (and two equal specs always do).
		Name: fmt.Sprintf("synth(p%d,c%d,i%d,m%d,f%d,n%d,s%d,t%d)",
			spec.ParCap, spec.ChainLen, spec.IndepOps, spec.MemOps,
			spec.FootprintKB, spec.Iters, spec.SerialIters, spec.Steps),
		Description: "parameterized synthetic workload (threads x ILP plane generator)",
		ParCap:      spec.ParCap,
		Build: func(threads, chips int, size Size) *prog.Program {
			return buildSynthetic(spec, threads, chips, size)
		},
	}
}

func buildSynthetic(spec SyntheticSpec, threads, chips int, size Size) *prog.Program {
	iters := spec.Iters
	if size == SizeTest {
		iters = min(iters, 512)
	}
	words := int64(spec.FootprintKB) * 1024 / prog.WordSize

	b := prog.NewBuilder("synthetic")
	declareRuntime(b, threads, chips)
	data := b.Global("data", words)
	b.Global("out", 64)

	const (
		rI   isa.Reg = 1
		rB   isa.Reg = 2 // iteration bound
		rA   isa.Reg = 3 // array cursor (bytes)
		rS   isa.Reg = 8 // step counter
		rSB  isa.Reg = 9
		rSer isa.Reg = 10
		rSeB isa.Reg = 11
	)
	const (
		fAcc  isa.Reg = 0 // carried chain value
		fK    isa.Reg = 1
		fT    isa.Reg = 2
		fIndB isa.Reg = 3 // first of the independent destinations
	)

	b.Fli(fK, 0.501)
	emitChunk(b, iters, spec.ParCap)
	b.Li(rS, 0)
	b.Li(rSB, spec.Steps)
	b.CountedLoop(rS, rSB, func() {
		b.Mov(rI, rLO)
		b.Mov(rB, rHI)
		b.Fli(fAcc, 1.0)
		// Per-thread array cursor: start at (tid * 64) % footprint.
		b.Shli(rA, rTID, 6)
		b.Li(rT0, words*prog.WordSize)
		b.Rem(rA, rA, rT0)
		b.CountedLoop(rI, rB, func() {
			for m := 0; m < spec.MemOps; m++ {
				b.Ldf(fT, rA, data)
				// Stride by 72 bytes (one line + one word) so the
				// footprint is actually touched.
				b.Addi(rA, rA, 72)
				b.Li(rT0, words*prog.WordSize)
				b.Rem(rA, rA, rT0)
				if m == 0 {
					b.Fadd(fAcc, fAcc, fT) // chain through the load
				}
			}
			for c := 0; c < spec.ChainLen; c++ {
				b.Fmul(fAcc, fAcc, fK)
				b.Fadd(fAcc, fAcc, fK)
			}
			for ind := 0; ind < spec.IndepOps; ind++ {
				dst := fIndB + isa.Reg(ind%8)
				b.Fmul(dst, fK, fK)
			}
		})
		// Publish the thread's chain value (per-thread slot).
		b.Shli(rT0, rTID, 3)
		b.Li(rT1, 64*prog.WordSize)
		b.Rem(rT0, rT0, rT1)
		b.Stf(fAcc, rT0, b.MustAddr("out"))
		b.Barrier(0)
		if spec.SerialIters > 0 {
			b.IfThread0(func() {
				b.Li(rSer, 0)
				b.Li(rSeB, spec.SerialIters)
				b.Fli(fT, 0.75)
				b.CountedLoop(rSer, rSeB, func() {
					b.Fmul(fT, fT, fK)
					b.Fadd(fT, fT, fK)
				})
				b.Stf(fT, isa.RegZero, b.MustAddr("out"))
			})
			b.Barrier(1)
		}
	})
	b.Halt()

	p := b.MustBuild()
	for i := int64(0); i < words; i++ {
		p.Init[data+i*prog.WordSize] = floatBits(0.25 + 0.001*float64(i%97))
	}
	return p
}
