package workloads

import (
	"fmt"
	"strconv"
	"strings"

	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// SyntheticSpec places a parameterized workload at an arbitrary point
// of the paper's (threads × ILP) plane — the §2 chart. It is the
// workload generator behind sweep experiments: instead of the six
// calibrated applications, generate a grid of points and observe how
// each architecture responds.
type SyntheticSpec struct {
	// ParCap is the number of contexts the parallel loop occupies per
	// 8 hardware contexts (0 = all): the thread-axis knob.
	ParCap int
	// ChainLen is the number of chained FP operations per loop
	// iteration (each ~1-2 cycles of serial latency): the ILP-axis
	// knob. 0 gives a fully independent (high-ILP) loop body.
	ChainLen int
	// IndepOps is the number of independent FP operations per
	// iteration (work that can issue in parallel with the chain).
	IndepOps int
	// MemOps is the number of array loads per iteration (memory
	// pressure; the array is sized by Footprint).
	MemOps int
	// FootprintKB is the array working set in KiB (0 = 16 KiB,
	// L1-resident; larger values spill to L2/memory).
	FootprintKB int
	// Iters is the number of loop iterations distributed across the
	// participating threads (0 = 4096).
	Iters int64
	// SerialIters is a serial (thread 0) chained section per step,
	// in iterations: the Amdahl knob.
	SerialIters int64
	// Steps is the number of barrier-delimited repetitions (0 = 2).
	Steps int64
	// WarmupIters, when positive, prepends a warm-up phase — thread 0
	// runs that many iterations of a serial chained loop that also
	// walks the data array (warming caches, TLB and predictors) while
	// the other threads park at a barrier — and marks everything up to
	// and including that barrier as the program's shared prefix
	// (prog.Builder.MarkPrefix). Specs that differ only in the
	// post-prefix knobs (ParCap, ChainLen, IndepOps, MemOps, Iters,
	// SerialIters, Steps) then share a prefix key, so one warmed
	// checkpoint forks into every variant (core.ForkProgram). Specs
	// must agree on WarmupIters and FootprintKB (and machine shape) to
	// share — the prefix key hashes the data image too.
	WarmupIters int64
}

func (s SyntheticSpec) withDefaults() SyntheticSpec {
	if s.FootprintKB <= 0 {
		s.FootprintKB = 16
	}
	if s.Iters <= 0 {
		s.Iters = 4096
	}
	if s.Steps <= 0 {
		s.Steps = 2
	}
	if s.MemOps < 1 {
		s.MemOps = 1
	}
	return s
}

// Synthetic builds a Workload from the spec. The kernel is a barrier-
// delimited parallel loop: each iteration performs MemOps strided
// loads, IndepOps independent FP multiplies and a ChainLen-long carried
// FP chain; thread 0 additionally runs SerialIters of a carried chain
// per step.
func Synthetic(spec SyntheticSpec) Workload {
	spec = spec.withDefaults()
	return Workload{
		// The name encodes the full defaulted spec: harness.Suite keys
		// its run cache by workload name, so two distinct specs must
		// never share one (and two equal specs always do).
		Name: syntheticName(spec),
		Description: "parameterized synthetic workload (threads x ILP plane generator)",
		ParCap:      spec.ParCap,
		Build: func(threads, chips int, size Size) *prog.Program {
			return buildSynthetic(spec, threads, chips, size)
		},
	}
}

// syntheticName encodes the full defaulted spec injectively. The
// warm-up suffix appears only when set, so pre-existing spec names (and
// the run-cache keys derived from them) are unchanged.
func syntheticName(spec SyntheticSpec) string {
	name := fmt.Sprintf("synth(p%d,c%d,i%d,m%d,f%d,n%d,s%d,t%d",
		spec.ParCap, spec.ChainLen, spec.IndepOps, spec.MemOps,
		spec.FootprintKB, spec.Iters, spec.SerialIters, spec.Steps)
	if spec.WarmupIters > 0 {
		name += fmt.Sprintf(",w%d", spec.WarmupIters)
	}
	return name + ")"
}

// ParseSynthetic inverts syntheticName: it resolves a canonical
// "synth(p…,c…,i…,m…,f…,n…,s…,t…[,w…])" name back to its workload, so
// the serving subsystem can accept sweep-grid jobs by name. Only
// canonical names round-trip (the parsed spec must render back to
// exactly the input), which keeps one name per spec and the service's
// content-addressed hashes unambiguous.
func ParseSynthetic(name string) (Workload, error) {
	body, ok := strings.CutPrefix(name, "synth(")
	if ok {
		body, ok = strings.CutSuffix(body, ")")
	}
	if !ok {
		return Workload{}, fmt.Errorf("workloads: %q is not a synth(...) name", name)
	}
	fields := strings.Split(body, ",")
	keys := []string{"p", "c", "i", "m", "f", "n", "s", "t"}
	if len(fields) < len(keys) || len(fields) > len(keys)+1 {
		return Workload{}, fmt.Errorf("workloads: %q: want %d or %d spec fields", name, len(keys), len(keys)+1)
	}
	var v [9]int64
	for i, f := range fields {
		key := "w" // the optional ninth field
		if i < len(keys) {
			key = keys[i]
		}
		rest, ok := strings.CutPrefix(f, key)
		if !ok {
			return Workload{}, fmt.Errorf("workloads: %q: field %d is %q, want %q prefix", name, i, f, key)
		}
		n, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return Workload{}, fmt.Errorf("workloads: %q: field %q: %v", name, f, err)
		}
		v[i] = n
	}
	spec := SyntheticSpec{
		ParCap: int(v[0]), ChainLen: int(v[1]), IndepOps: int(v[2]),
		MemOps: int(v[3]), FootprintKB: int(v[4]), Iters: v[5],
		SerialIters: v[6], Steps: v[7], WarmupIters: v[8],
	}
	w := Synthetic(spec)
	if w.Name != name {
		return Workload{}, fmt.Errorf("workloads: %q is not canonical (want %q)", name, w.Name)
	}
	return w, nil
}

func buildSynthetic(spec SyntheticSpec, threads, chips int, size Size) *prog.Program {
	iters := spec.Iters
	if size == SizeTest {
		iters = min(iters, 512)
	}
	words := int64(spec.FootprintKB) * 1024 / prog.WordSize

	b := prog.NewBuilder("synthetic")
	declareRuntime(b, threads, chips)
	data := b.Global("data", words)
	b.Global("out", 64)

	const (
		rI   isa.Reg = 1
		rB   isa.Reg = 2 // iteration bound
		rA   isa.Reg = 3 // array cursor (bytes)
		rS   isa.Reg = 8 // step counter
		rSB  isa.Reg = 9
		rSer isa.Reg = 10
		rSeB isa.Reg = 11
	)
	const (
		fAcc  isa.Reg = 0 // carried chain value
		fK    isa.Reg = 1
		fT    isa.Reg = 2
		fIndB isa.Reg = 3 // first of the independent destinations
	)

	b.Fli(fK, 0.501)
	if spec.WarmupIters > 0 {
		// Warm-up: thread 0 runs a serial carried chain that also walks
		// the data array; everyone else parks at the barrier. Everything
		// through the barrier is variant-independent, so it is marked as
		// the shared prefix — a checkpoint taken while still inside it
		// forks into any same-prefix variant.
		b.IfThread0(func() {
			b.Li(rSer, 0)
			b.Li(rSeB, spec.WarmupIters)
			b.Fli(fT, 0.75)
			b.Li(rA, 0)
			b.Li(rT1, words*prog.WordSize)
			b.CountedLoop(rSer, rSeB, func() {
				b.Ldf(fIndB, rA, data)
				b.Addi(rA, rA, 72)
				b.Rem(rA, rA, rT1)
				b.Fmul(fT, fT, fK)
				b.Fadd(fT, fT, fK)
			})
			b.Stf(fT, isa.RegZero, b.MustAddr("out"))
		})
		b.Barrier(2)
		b.MarkPrefix()
	}
	emitChunk(b, iters, spec.ParCap)
	b.Li(rS, 0)
	b.Li(rSB, spec.Steps)
	b.CountedLoop(rS, rSB, func() {
		b.Mov(rI, rLO)
		b.Mov(rB, rHI)
		b.Fli(fAcc, 1.0)
		// Per-thread array cursor: start at (tid * 64) % footprint.
		b.Shli(rA, rTID, 6)
		b.Li(rT0, words*prog.WordSize)
		b.Rem(rA, rA, rT0)
		b.CountedLoop(rI, rB, func() {
			for m := 0; m < spec.MemOps; m++ {
				b.Ldf(fT, rA, data)
				// Stride by 72 bytes (one line + one word) so the
				// footprint is actually touched.
				b.Addi(rA, rA, 72)
				b.Li(rT0, words*prog.WordSize)
				b.Rem(rA, rA, rT0)
				if m == 0 {
					b.Fadd(fAcc, fAcc, fT) // chain through the load
				}
			}
			for c := 0; c < spec.ChainLen; c++ {
				b.Fmul(fAcc, fAcc, fK)
				b.Fadd(fAcc, fAcc, fK)
			}
			for ind := 0; ind < spec.IndepOps; ind++ {
				dst := fIndB + isa.Reg(ind%8)
				b.Fmul(dst, fK, fK)
			}
		})
		// Publish the thread's chain value (per-thread slot).
		b.Shli(rT0, rTID, 3)
		b.Li(rT1, 64*prog.WordSize)
		b.Rem(rT0, rT0, rT1)
		b.Stf(fAcc, rT0, b.MustAddr("out"))
		b.Barrier(0)
		if spec.SerialIters > 0 {
			b.IfThread0(func() {
				b.Li(rSer, 0)
				b.Li(rSeB, spec.SerialIters)
				b.Fli(fT, 0.75)
				b.CountedLoop(rSer, rSeB, func() {
					b.Fmul(fT, fT, fK)
					b.Fadd(fT, fT, fK)
				})
				b.Stf(fT, isa.RegZero, b.MustAddr("out"))
			})
			b.Barrier(1)
		}
	})
	b.Halt()

	p := b.MustBuild()
	for i := int64(0); i < words; i++ {
		p.Init[data+i*prog.WordSize] = floatBits(0.25 + 0.001*float64(i%97))
	}
	return p
}
