package workloads

import (
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// LU is a bonus workload beyond the paper's six: dense LU factorization
// without pivoting (the SPLASH-2 lu analog). Each elimination step k
// scales column k below the diagonal (parallel over rows), then updates
// the trailing submatrix (parallel over rows), with a barrier per
// phase. Parallelism tapers naturally as the active submatrix shrinks —
// a thread-parallelism profile that *changes over time*, unlike the six
// calibrated kernels.
func LU() Workload {
	return Workload{
		Name:        "lu",
		Description: "dense LU factorization without pivoting (SPLASH-2 lu analog; extension)",
		ParCap:      0,
		Build:       buildLU,
	}
}

func luParams(size Size) (n int64) {
	if size == SizeTest {
		return 24
	}
	return 48
}

func buildLU(threads, chips int, size Size) *prog.Program {
	n := luParams(size)
	b := prog.NewBuilder("lu")
	declareRuntime(b, threads, chips)
	a := b.Global("a", n*n)
	b.Global("det", 1)

	const (
		rK    isa.Reg = 1 // elimination step
		rI    isa.Reg = 2 // row
		rJ    isa.Reg = 3 // column
		rAddr isa.Reg = 4
		rKB   isa.Reg = 5
		rRowI isa.Reg = 6 // row i byte offset
		rRowK isa.Reg = 7 // row k byte offset
		rJB   isa.Reg = 8
		rKN   isa.Reg = 9  // k as byte offset (column)
		rLo   isa.Reg = 10 // per-step row chunk lo
		rHi   isa.Reg = 11 // per-step row chunk hi
		rCnt  isa.Reg = 12 // active row count
	)
	const (
		fPiv  isa.Reg = 0 // 1/a[k][k]
		fMult isa.Reg = 1
		fAkj  isa.Reg = 2
		fAij  isa.Reg = 3
		fOne  isa.Reg = 4
		fDet  isa.Reg = 5
	)
	rowBytes := n * prog.WordSize

	b.Fli(fOne, 1.0)
	b.Fli(fDet, 1.0)
	b.Li(rK, 0)
	b.Li(rKB, n-1)
	b.CountedLoop(rK, rKB, func() {
		// Row-k and column-k offsets, and the per-step chunk of the
		// active rows k+1..n-1, recomputed each step (the bounds change
		// with k, so they cannot be hoisted).
		b.Li(rT0, rowBytes)
		b.Mul(rRowK, rK, rT0)
		b.Shli(rKN, rK, 3)
		// Active rows: cnt = n-1-k, distributed over all threads:
		// lo = k+1 + tid*cnt/nth, hi = k+1 + (tid+1)*cnt/nth.
		b.Li(rCnt, n-1)
		b.Sub(rCnt, rCnt, rK)
		b.Mul(rLo, rTID, rCnt)
		b.Div(rLo, rLo, rNTH)
		b.Addi(rT0, rTID, 1)
		b.Mul(rHi, rT0, rCnt)
		b.Div(rHi, rHi, rNTH)
		b.Addi(rT0, rK, 1)
		b.Add(rLo, rLo, rT0)
		b.Add(rHi, rHi, rT0)

		// The pivot reciprocal is read by every thread (the value was
		// finalized before the previous barrier).
		b.Add(rAddr, rRowK, rKN)
		b.Ldf(fPiv, rAddr, a)
		b.Fdiv(fPiv, fOne, fPiv)

		// Scale the thread's share of column k and update its rows.
		b.Mov(rI, rLo)
		b.CountedLoop(rI, rHi, func() {
			b.Li(rT0, rowBytes)
			b.Mul(rRowI, rI, rT0)
			b.Add(rAddr, rRowI, rKN)
			b.Ldf(fMult, rAddr, a)
			b.Fmul(fMult, fMult, fPiv)
			b.Stf(fMult, rAddr, a) // a[i][k] = multiplier
			// Trailing update: a[i][j] -= mult * a[k][j], j > k.
			b.Addi(rJ, rKN, prog.WordSize)
			b.Li(rJB, rowBytes)
			b.SteppedLoop(rJ, rJB, prog.WordSize, func() {
				b.Add(rAddr, rRowK, rJ)
				b.Ldf(fAkj, rAddr, a)
				b.Add(rAddr, rRowI, rJ)
				b.Ldf(fAij, rAddr, a)
				b.Fmul(fAkj, fAkj, fMult)
				b.Fsub(fAij, fAij, fAkj)
				b.Stf(fAij, rAddr, a)
			})
		})
		b.Barrier(0)
	})

	// Serial: det = product of the diagonal (a U-matrix reduction).
	b.IfThread0(func() {
		b.Li(rK, 0)
		b.Li(rKB, n)
		b.CountedLoop(rK, rKB, func() {
			b.Li(rT0, rowBytes)
			b.Mul(rRowK, rK, rT0)
			b.Shli(rKN, rK, 3)
			b.Add(rAddr, rRowK, rKN)
			b.Ldf(fAij, rAddr, a)
			b.Fmul(fDet, fDet, fAij)
		})
		b.Stf(fDet, isa.RegZero, b.MustAddr("det"))
	})
	b.Barrier(1)
	b.Halt()

	p := b.MustBuild()
	// Diagonally dominant matrix: stable without pivoting.
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			v := 0.01 * float64((i*7+j*3)%13)
			if i == j {
				v = float64(n) + 1.5
			}
			p.Init[a+(i*n+j)*prog.WordSize] = floatBits(v)
		}
	}
	return p
}
