package workloads

import (
	"fmt"

	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// Fmm is the SPLASH-2 fast-multipole analog: an N-body force
// computation with an irregular interaction structure. Bodies are
// distributed across threads, but each body's interaction list has a
// deterministic pseudo-random length (load imbalance), every force
// evaluation contains an unpipelined divide (softened inverse-square),
// and each body's contribution is accumulated into its home cell under
// a per-cell lock. A serial "tree build" pass runs on thread 0 each
// step.
//
// Placement knobs (Figure 6a target: ~4.5 threads, ILP ~2.5): the
// imbalanced lists and serial pass pull average threads below 8; the
// divide chain holds ILP down without flattening it.
func Fmm() Workload {
	return Workload{
		Name:        "fmm",
		Description: "irregular N-body force sums with cell locks (SPLASH-2 fmm analog)",
		ParCap:      6,
		Build:       buildFmm,
	}
}

const (
	fmmCells = 4 // lock ids 10..10+fmmCells-1
)

func fmmParams(size Size) (bodies, steps int64) {
	if size == SizeTest {
		return 96, 1
	}
	return 256, 2
}

func buildFmm(threads, chips int, size Size) *prog.Program {
	bodies, steps := fmmParams(size)
	b := prog.NewBuilder("fmm")
	declareRuntime(b, threads, chips)

	posx := b.Global("posx", bodies)
	posy := b.Global("posy", bodies)
	frcx := b.Global("frcx", bodies)
	frcy := b.Global("frcy", bodies)
	nint := b.Global("nint", bodies) // interaction-list length per body
	cellAcc := b.Global("cellacc", fmmCells)
	b.Global("treework", 1)

	const (
		rStep isa.Reg = 1
		rB    isa.Reg = 2 // body index
		rN    isa.Reg = 3 // neighbor counter
		rNB   isa.Reg = 4 // neighbor bound (list length)
		rAB   isa.Reg = 5 // body byte offset
		rAN   isa.Reg = 6 // neighbor byte offset
		rCell isa.Reg = 7
		rSB   isa.Reg = 8
		rT3   isa.Reg = 9
	)
	const (
		fPX  isa.Reg = 0
		fPY  isa.Reg = 1
		fQX  isa.Reg = 2
		fQY  isa.Reg = 3
		fDX  isa.Reg = 4
		fDY  isa.Reg = 5
		fR2  isa.Reg = 6
		fInv isa.Reg = 7
		fFX  isa.Reg = 8
		fFY  isa.Reg = 9
		fEps isa.Reg = 10
		fT0  isa.Reg = 11
		fAcc isa.Reg = 12
	)

	b.Fli(fEps, 0.05)
	// Hoisted loop-invariant body distribution.
	emitChunk(b, bodies, 6)
	b.Li(rStep, 0)
	b.Li(rSB, steps)
	b.CountedLoop(rStep, rSB, func() {
		// --- serial tree build by thread 0 ---
		// Center-of-mass accumulation: several independent FP ops per
		// body plus a short carried chain, so a wide cluster speeds
		// this serial section up (the paper's Amdahl argument for
		// wide-issue serial execution).
		b.IfThread0(func() {
			b.Fli(fAcc, 1.0)
			b.Li(rB, 0)
			b.Li(rT3, bodies)
			b.CountedLoop(rB, rT3, func() {
				b.Shli(rAB, rB, 3)
				b.Ldf(fT0, rAB, posx)
				b.Ldf(fQX, rAB, posy)
				b.Fmul(fT0, fT0, fT0)
				b.Fmul(fQX, fQX, fQX)
				b.Fadd(fT0, fT0, fQX)
				b.Fmul(fT0, fT0, fEps)
				b.Fadd(fAcc, fAcc, fT0) // carried add (1 cycle)
			})
			b.Stf(fAcc, isa.RegZero, b.MustAddr("treework"))
		})
		b.Barrier(0)

		// --- parallel force phase over bodies ---
		b.Mov(rB, rLO)
		b.CountedLoop(rB, rHI, func() {
			b.Shli(rAB, rB, 3)
			b.Ldf(fPX, rAB, posx)
			b.Ldf(fPY, rAB, posy)
			b.Fli(fFX, 0.0)
			b.Fli(fFY, 0.0)
			// Interaction list length is data-driven: loaded per body.
			b.Ld(rNB, rAB, nint)
			b.Li(rN, 0)
			b.Fli(fInv, 0.3)
			b.CountedLoop(rN, rNB, func() {
				// Neighbor index = (body*7 + n*13) mod bodies.
				b.Li(rT0, 7)
				b.Mul(rT1, rB, rT0)
				b.Li(rT0, 13)
				b.Mul(rT2, rN, rT0)
				b.Add(rT1, rT1, rT2)
				b.Li(rT0, bodies)
				b.Rem(rT1, rT1, rT0)
				b.Shli(rAN, rT1, 3)
				b.Ldf(fQX, rAN, posx)
				b.Ldf(fQY, rAN, posy)
				b.Fsub(fDX, fQX, fPX)
				b.Fsub(fDY, fQY, fPY)
				b.Fmul(fR2, fDX, fDX)
				b.Fmul(fT0, fDY, fDY)
				b.Fadd(fR2, fR2, fT0)
				// Adaptive softening: the softening term carries the
				// previous interaction's kernel value, a loop-carried
				// chain through the unpipelined divide (~10 cycles)
				// that pins per-thread ILP near the paper's fmm point.
				b.Fmul(fT0, fInv, fEps)
				b.Fadd(fR2, fR2, fT0)
				b.Fdiv(fInv, fEps, fR2)
				b.Fmul(fDX, fDX, fInv)
				b.Fmul(fDY, fDY, fInv)
				b.Fadd(fFX, fFX, fDX)
				b.Fadd(fFY, fFY, fDY)
			})
			b.Stf(fFX, rAB, frcx)
			b.Stf(fFY, rAB, frcy)

			// Accumulate into the body's home cell under its lock.
			b.Li(rT0, fmmCells)
			b.Rem(rCell, rB, rT0)
			// Lock id = 10 + cell. Lock ids are immediates, so branch
			// over a small dispatch table.
			emitCellLocked(b, rCell, func() {
				b.Shli(rT1, rCell, 3)
				b.Ldf(fT0, rT1, cellAcc)
				b.Fadd(fT0, fT0, fFX)
				b.Stf(fT0, rT1, cellAcc)
			})
		})
		b.Barrier(1)
	})
	b.Halt()

	pr := b.MustBuild()
	for i := int64(0); i < bodies; i++ {
		pr.Init[posx+i*prog.WordSize] = floatBits(float64(i%17) * 0.3)
		pr.Init[posy+i*prog.WordSize] = floatBits(float64(i%23) * 0.2)
		// Imbalanced interaction lists: quadratic ramp 4..28-ish.
		ln := 4 + (i*i)%25
		pr.Init[nint+i*prog.WordSize] = uint64(ln)
	}
	return pr
}

var cellSeq int

// emitCellLocked wraps body in lock/unlock of lock id 10+cell, where
// cell (0..fmmCells-1) is a runtime value in reg. Lock ids are
// instruction immediates, so this emits a small dispatch over the
// possible cells — the shape a real runtime's lock-array indexing
// would compile to on this ISA.
func emitCellLocked(b *prog.Builder, cellReg isa.Reg, body func()) {
	cellSeq++
	done := labelf(".cell%d_done", cellSeq)
	for c := int64(0); c < fmmCells; c++ {
		next := labelf(".cell%d_n%d", cellSeq, c)
		b.Li(rT0, c)
		b.Bne(cellReg, rT0, next)
		b.Lock(10 + c)
		body()
		b.Unlock(10 + c)
		b.Jump(done)
		b.Label(next)
	}
	b.Label(done)
}

func labelf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
