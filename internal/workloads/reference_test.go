package workloads

// Reference implementations: each kernel's computation re-written in
// plain Go, following the ISA code's floating-point operation order
// exactly, so the functional run's final memory must match bit for bit.
// This validates that the kernels compute the algorithm their doc
// comments claim — independent of the ISA, builder and interpreter.

import (
	"math"
	"testing"

	"clustersmt/internal/parallel"
	"clustersmt/internal/prog"
)

// readGrid extracts a float64 array of n words from the named symbol.
func readGrid(t *testing.T, res *parallel.FunctionalResult, p *prog.Program, sym string, n int64) []float64 {
	t.Helper()
	out := make([]float64, n)
	base := p.SymbolAddr(sym)
	for i := int64(0); i < n; i++ {
		out[i] = math.Float64frombits(res.Mem.Load(base + i*prog.WordSize))
	}
	return out
}

func compareGrids(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	bad := 0
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			if bad < 5 {
				t.Errorf("%s[%d]: got %v, want %v", name, i, got[i], want[i])
			}
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d/%d elements differ", name, bad, len(got))
	}
}

func TestSwimReference(t *testing.T) {
	n, steps, serialReps := swimParams(SizeTest)
	p := Swim().Build(1, 1, SizeTest)
	res, err := parallel.RunFunctional(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Go reference, mirroring the ISA code's FP order.
	const c1, c2, c3 = 0.12, 0.07, 0.31
	u := make([]float64, n*n)
	v := make([]float64, n*n)
	pp := make([]float64, n*n)
	un := make([]float64, n*n)
	vn := make([]float64, n*n)
	pn := make([]float64, n*n)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			pp[i*n+j] = 1.0 + 0.01*float64(i) - 0.02*float64(j)
			u[i*n+j] = 0.5 + 0.005*float64(i*j%17)
			v[i*n+j] = -0.25 + 0.004*float64((i+j)%13)
		}
	}
	var checksum float64
	stencil := func(su, sv, sp, du, dv, dp []float64) {
		for i := int64(1); i < n-1; i++ {
			fCar := 0.1
			fPW := sp[i*n+0]
			fPC := sp[i*n+1]
			for j := int64(1); j < n-1; j++ {
				fPE := sp[i*n+j+1]
				fPN := sp[(i-1)*n+j]
				fPS := sp[(i+1)*n+j]
				fU := su[i*n+j]
				fV := sv[i*n+j]
				fT0 := (fPE - fPW) * c1
				fT0 = fT0 + fU
				fCar = fCar * c3
				fCar = fCar + fT0
				fCar = fCar * c1
				fCar = fCar + fPC
				fCar = fCar * c3
				fCar = fCar + fT0
				fCar = fCar * c1
				fT2 := fCar * c2
				fT2 = fT2 + fT0
				du[i*n+j] = fT2
				fT1 := (fPS - fPN) * c1
				fT1 = fT1 + fV
				dv[i*n+j] = fT1
				fT3 := (fT0 - fT1) * c2
				fT3 = fT3 + fPC
				dp[i*n+j] = fT3
				fPW, fPC = fPC, fPE
			}
		}
	}
	boundary := func(du, dv, dp []float64) {
		for r := int64(0); r < serialReps; r++ {
			fAc := 0.0
			for j := int64(0); j < n; j++ {
				du[0*n+j] = du[(n-2)*n+j]
				dv[0*n+j] = dv[(n-2)*n+j]
				fT2 := dp[1*n+j]
				dp[(n-1)*n+j] = fT2
				fAc = fAc + fT2
			}
			checksum = fAc
		}
	}
	for s := int64(0); s < steps/2; s++ {
		stencil(u, v, pp, un, vn, pn)
		boundary(un, vn, pn)
		stencil(un, vn, pn, u, v, pp)
		boundary(u, v, pp)
	}

	compareGrids(t, "u", readGrid(t, res, p, "u", n*n), u)
	compareGrids(t, "v", readGrid(t, res, p, "v", n*n), v)
	compareGrids(t, "p", readGrid(t, res, p, "p", n*n), pp)
	compareGrids(t, "checksum", readGrid(t, res, p, "checksum", 1), []float64{checksum})
}

func TestVpentaReference(t *testing.T) {
	systems, length, steps := vpentaParams(SizeTest)
	p := Vpenta().Build(1, 1, SizeTest)
	res, err := parallel.RunFunctional(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	a := make([]float64, systems*length)
	c := make([]float64, systems*length)
	f := make([]float64, systems*length)
	for s := int64(0); s < systems; s++ {
		for k := int64(0); k < length; k++ {
			a[s*length+k] = 2.5 + 0.01*float64(k)
			c[s*length+k] = 0.3 + 0.002*float64(s)
			f[s*length+k] = 1.0 + 0.05*float64((s+k)%11)
		}
	}
	var sum float64
	for st := int64(0); st < steps; st++ {
		for s := int64(0); s < systems; s++ {
			prev := 0.5
			for k := int64(1); k < length; k++ {
				fa := a[s*length+k]
				fc := c[s*length+k]
				ff := f[s*length+k]
				fa = fa - fc*prev
				prev = ff / fa
				f[s*length+k] = prev
			}
			for k := length - 2; k >= 0; k-- {
				ff := f[s*length+k]
				fc := c[s*length+k]
				prev = ff - fc*prev
				f[s*length+k] = prev
			}
		}
		acc := 0.0
		for s := int64(0); s < systems; s += 4 {
			acc = acc + f[s*length+1]
		}
		sum = acc
	}

	compareGrids(t, "f", readGrid(t, res, p, "f", systems*length), f)
	compareGrids(t, "sum", readGrid(t, res, p, "sum", 1), []float64{sum})
}

func TestOceanReference(t *testing.T) {
	n, steps := oceanParams(SizeTest)
	p := Ocean().Build(1, 1, SizeTest)
	res, err := parallel.RunFunctional(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	const k, k2, two = 0.25, 0.125, 2.0
	q := make([]float64, n*n)
	rhs := make([]float64, n*n)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			q[i*n+j] = 0.5 + 0.001*float64((i*31+j*7)%101)
			rhs[i*n+j] = 0.1 * float64((i+j)%5)
		}
	}
	var resid float64
	sweep := func(color int64) {
		for i := int64(1); i < n-1; i++ {
			j0 := 1 + (i+color)&1
			for j := j0; j < n-1; j += 2 {
				fW := q[i*n+j-1]
				fE := q[i*n+j+1]
				fN := q[(i-1)*n+j]
				fS := q[(i+1)*n+j]
				fR := rhs[i*n+j]
				fT0 := q[i*n+j-2]
				fW = fW + fE
				fN = fN + fS
				fW = fW + fN
				fW = fW - fR
				fT1 := fT0 * k2
				fW = fW + fT1
				fT0 = fT0 + two
				fW = fW / fT0
				q[i*n+j] = fW
			}
		}
	}
	for s := int64(0); s < steps; s++ {
		sweep(0)
		sweep(1)
		fAc := 0.0
		for j := int64(1); j < n-1; j++ {
			fAc = fAc + q[1*n+j]
		}
		resid = fAc
	}

	compareGrids(t, "q", readGrid(t, res, p, "q", n*n), q)
	compareGrids(t, "resid", readGrid(t, res, p, "resid", 1), []float64{resid})
}

func TestTomcatvReference(t *testing.T) {
	n, steps := tomcatvParams(SizeTest)
	p := Tomcatv().Build(1, 1, SizeTest)
	res, err := parallel.RunFunctional(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	const k1, k2 = 0.25, 0.5
	x := make([]float64, n*n)
	y := make([]float64, n*n)
	xn := make([]float64, n*n)
	yn := make([]float64, n*n)
	rx := make([]float64, n*n)
	ry := make([]float64, n*n)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			x[i*n+j] = float64(j) + 0.03*float64(i)
			y[i*n+j] = float64(i) - 0.02*float64(j)
		}
	}
	var resid float64
	for s := int64(0); s < steps; s++ {
		for i := int64(1); i < n-1; i++ {
			for j := int64(1); j < n-1; j++ {
				fXW := x[i*n+j-1]
				fXE := x[i*n+j+1]
				fXN := x[(i-1)*n+j]
				fXS := x[(i+1)*n+j]
				fYW := y[i*n+j-1]
				fYE := y[i*n+j+1]
				fYN := y[(i-1)*n+j]
				fYS := y[(i+1)*n+j]
				fA := fXE - fXW
				fB := fXS - fXN
				fC := fYE - fYW
				fD := fYS - fYN
				fA = fA * fA
				fB = fB * fB
				fC = fC * fC
				fD = fD * fD
				fT0 := fA + fC
				fT1 := fB + fD
				fT0 = fT0 * k1
				fT1 = fT1 * k1
				fX2 := fXE + fXW
				fY2 := fYE + fYW
				fX2 = fX2 * k2
				fY2 = fY2 * k2
				fX3 := fXN + fXS
				fY3 := fYN + fYS
				fX3 = fX3 * k1
				fY3 = fY3 * k1
				fX2 = fX2 - fX3
				fY2 = fY2 - fY3
				fX2 = fX2 * fX2
				fY2 = fY2 * fY2
				fT0 = fT0 + fX2
				fT1 = fT1 + fY2
				rx[i*n+j] = fT0
				ry[i*n+j] = fT1
				fA = fXE + fXW
				fB = fXN + fXS
				fA = fA + fB
				fA = fA * k1
				xn[i*n+j] = fA
				fC = fYE + fYW
				fD = fYN + fYS
				fC = fC + fD
				fC = fC * k1
				yn[i*n+j] = fC
			}
		}
		// Serial residual recurrence (master).
		fRe := 1.0
		for i := int64(0); i < n/2; i++ {
			j := i % (n - 2)
			fT0 := rx[1*n+j]
			fT1 := fRe * k1
			fT1 = fT1 + k2
			fT0 = fT0 + fT1
			fRe = fT1 / fT0
		}
		resid = fRe
		// Copy-back (slaves; single-thread run copies everything).
		for i := int64(1); i < n-1; i++ {
			for j := int64(1); j < n-1; j++ {
				x[i*n+j] = xn[i*n+j]
				y[i*n+j] = yn[i*n+j]
			}
		}
	}

	compareGrids(t, "x", readGrid(t, res, p, "x", n*n), x)
	compareGrids(t, "y", readGrid(t, res, p, "y", n*n), y)
	compareGrids(t, "rx", readGrid(t, res, p, "rx", n*n), rx)
	compareGrids(t, "resid", readGrid(t, res, p, "resid", 1), []float64{resid})
}

func TestMgridReference(t *testing.T) {
	n, cycles := mgridParams(SizeTest)
	n1, n2 := n/2, n/4
	p := Mgrid().Build(1, 1, SizeTest)
	res, err := parallel.RunFunctional(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	const k = 0.24
	g0 := make([]float64, n*n)
	g1 := make([]float64, n1*n1)
	g2 := make([]float64, n2*n2)
	g0n := make([]float64, n*n)
	g1n := make([]float64, n1*n1)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			g0[i*n+j] = 0.8 + 0.01*float64((i*j)%23)
		}
	}
	smooth := func(g, gn []float64, dim int64) {
		for i := int64(1); i < dim-1; i++ {
			for j := int64(1); j < dim-1; j++ {
				fW := g[i*dim+j-1]
				fE := g[i*dim+j+1]
				fN := g[(i-1)*dim+j]
				fS := g[(i+1)*dim+j]
				fC := g[i*dim+j]
				fW = fW + fE
				fN = fN + fS
				fW = fW + fN
				fW = fW * k
				fW = fW + fC
				fW = fW * k
				gn[i*dim+j] = fW
			}
		}
		for i := int64(1); i < dim-1; i++ {
			for j := int64(1); j < dim-1; j++ {
				g[i*dim+j] = gn[i*dim+j]
			}
		}
	}
	restrict := func(src []float64, srcDim int64, dst []float64, dstDim int64) {
		for i := int64(0); i < dstDim; i++ {
			for j := int64(0); j < dstDim; j++ {
				dst[i*dstDim+j] = src[2*i*srcDim+2*j] * k
			}
		}
	}
	prolong := func(src []float64, srcDim int64, dst []float64, dstDim int64) {
		for i := int64(0); i < srcDim; i++ {
			for j := int64(0); j < srcDim; j++ {
				dst[2*i*dstDim+2*j] = src[i*srcDim+j] * k
			}
		}
	}
	var resid float64
	for c := int64(0); c < cycles; c++ {
		smooth(g0, g0n, n)
		restrict(g0, n, g1, n1)
		smooth(g1, g1n, n1)
		smooth(g1, g1n, n1)
		restrict(g1, n1, g2, n2)
		fAc := 0.0
		for i := int64(1); i < n2-1; i++ {
			for j := int64(1); j < n2-1; j++ {
				fC := g2[i*n2+j]
				fAc = fAc * k
				fAc = fAc + fC
				g2[i*n2+j] = fAc
			}
		}
		resid = fAc
		prolong(g2, n2, g1, n1)
		smooth(g1, g1n, n1)
		smooth(g1, g1n, n1)
		prolong(g1, n1, g0, n)
		smooth(g0, g0n, n)
	}

	compareGrids(t, "g0", readGrid(t, res, p, "g0", n*n), g0)
	compareGrids(t, "g1", readGrid(t, res, p, "g1", n1*n1), g1)
	compareGrids(t, "g2", readGrid(t, res, p, "g2", n2*n2), g2)
	compareGrids(t, "resid", readGrid(t, res, p, "resid", 1), []float64{resid})
}

func TestFmmReference(t *testing.T) {
	bodies, steps := fmmParams(SizeTest)
	p := Fmm().Build(1, 1, SizeTest)
	res, err := parallel.RunFunctional(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	const eps = 0.05
	posx := make([]float64, bodies)
	posy := make([]float64, bodies)
	frcx := make([]float64, bodies)
	frcy := make([]float64, bodies)
	nint := make([]int64, bodies)
	for i := int64(0); i < bodies; i++ {
		posx[i] = float64(i%17) * 0.3
		posy[i] = float64(i%23) * 0.2
		nint[i] = 4 + (i*i)%25
	}
	var treework float64
	for s := int64(0); s < steps; s++ {
		fAcc := 1.0
		for b := int64(0); b < bodies; b++ {
			fT0 := posx[b] * posx[b]
			fQX := posy[b] * posy[b]
			fT0 = fT0 + fQX
			fT0 = fT0 * eps
			fAcc = fAcc + fT0
		}
		treework = fAcc
		for b := int64(0); b < bodies; b++ {
			fPX, fPY := posx[b], posy[b]
			fFX, fFY := 0.0, 0.0
			fInv := 0.3
			for nn := int64(0); nn < nint[b]; nn++ {
				tgt := (b*7 + nn*13) % bodies
				fQX := posx[tgt]
				fQY := posy[tgt]
				fDX := fQX - fPX
				fDY := fQY - fPY
				fR2 := fDX * fDX
				fT0 := fDY * fDY
				fR2 = fR2 + fT0
				fT0 = fInv * eps
				fR2 = fR2 + fT0
				fInv = eps / fR2
				fDX = fDX * fInv
				fDY = fDY * fInv
				fFX = fFX + fDX
				fFY = fFY + fDY
			}
			frcx[b] = fFX
			frcy[b] = fFY
		}
	}

	// Note: the cellacc reduction order depends on lock-grant timing,
	// so it is checked only for thread-count invariance elsewhere, not
	// bit-exactness here.
	compareGrids(t, "frcx", readGrid(t, res, p, "frcx", bodies), frcx)
	compareGrids(t, "frcy", readGrid(t, res, p, "frcy", bodies), frcy)
	compareGrids(t, "treework", readGrid(t, res, p, "treework", 1), []float64{treework})
}
