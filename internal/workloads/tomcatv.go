package workloads

import (
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// Tomcatv is the SPEC95 mesh-generation analog: row-by-row sweeps over
// two coordinate arrays where each row depends on the previous one, so
// the only loop parallelism is across two independent column panels;
// within a row, column updates are independent and FP-rich (high ILP).
// A serial recurrence sweep (the tridiagonal solve stand-in) runs on
// thread 0 each step.
//
// Placement knobs (Figure 6a target: ~2 threads, ILP ~4.5): panel
// count 2 caps thread parallelism; ~14 independent FP ops per point
// raise per-thread ILP; the serial solve is a long low-ILP chain.
func Tomcatv() Workload {
	return Workload{
		Name:        "tomcatv",
		Description: "vectorized mesh generation, 2 panels (SPEC95 tomcatv analog)",
		ParCap:      2,
		Build:       buildTomcatv,
	}
}

func tomcatvParams(size Size) (n, steps int64) {
	if size == SizeTest {
		return 16, 2
	}
	return 32, 3
}

func buildTomcatv(threads, chips int, size Size) *prog.Program {
	n, steps := tomcatvParams(size)
	b := prog.NewBuilder("tomcatv")
	declareRuntime(b, threads, chips)

	x := b.Global("x", n*n)
	y := b.Global("y", n*n)
	xn := b.Global("xn", n*n)
	yn := b.Global("yn", n*n)
	rx := b.Global("rx", n*n)
	ry := b.Global("ry", n*n)
	b.Global("resid", 1)

	const (
		rStep isa.Reg = 1
		rI    isa.Reg = 2
		rJ    isa.Reg = 3
		rRow  isa.Reg = 4
		rA    isa.Reg = 5
		rJB   isa.Reg = 6
		rIB   isa.Reg = 7
		rSB   isa.Reg = 8
	)
	const (
		fXW isa.Reg = 0
		fXE isa.Reg = 1
		fXN isa.Reg = 2
		fXS isa.Reg = 3
		fYW isa.Reg = 4
		fYE isa.Reg = 5
		fYN isa.Reg = 6
		fYS isa.Reg = 7
		fA  isa.Reg = 8
		fB2 isa.Reg = 9
		fC  isa.Reg = 10
		fD  isa.Reg = 11
		fT0 isa.Reg = 12
		fT1 isa.Reg = 13
		fK1 isa.Reg = 14
		fK2 isa.Reg = 15
		fRe isa.Reg = 16
		fX2 isa.Reg = 17
		fY2 isa.Reg = 18
		fX3 isa.Reg = 19
		fY3 isa.Reg = 20
	)
	rowBytes := n * prog.WordSize

	// Hoisted loop-invariant bounds: the 2-panel column split for the
	// mesh sweep and a fully parallel row split for the copy-back (the
	// copy loop has no dependences, so the parallelizer uses every
	// thread there).
	const (
		rRLO isa.Reg = 11
		rRHI isa.Reg = 12
	)
	emitChunk(b, n-2, 2)
	b.Addi(rLO, rLO, 1)
	b.Addi(rHI, rHI, 1)
	// Copy-back rows are shared by the slave threads only (ANL-style
	// master/slave schedule): the master overlaps the serial residual
	// recurrence with the copy loop. A single-thread run keeps the
	// whole range.
	b.Li(rT0, 1)
	b.Bne(rNTH, rT0, ".tc_multi")
	b.Li(rRLO, 1)
	b.Li(rRHI, n-1)
	b.Jump(".tc_ckdone")
	b.Label(".tc_multi")
	b.Beq(rTID, isa.RegZero, ".tc_master")
	b.Addi(rT1, rNTH, -1) // slave count
	b.Addi(rT2, rTID, -1) // slave index
	b.Li(rT0, n-2)
	b.Mul(rRLO, rT2, rT0)
	b.Div(rRLO, rRLO, rT1)
	b.Addi(rRLO, rRLO, 1)
	b.Addi(rT2, rT2, 1)
	b.Mul(rRHI, rT2, rT0)
	b.Div(rRHI, rRHI, rT1)
	b.Addi(rRHI, rRHI, 1)
	b.Jump(".tc_ckdone")
	b.Label(".tc_master")
	b.Li(rRLO, 0)
	b.Li(rRHI, 0)
	b.Label(".tc_ckdone")

	b.Fli(fK1, 0.25)
	b.Fli(fK2, 0.5)
	b.Li(rStep, 0)
	b.Li(rSB, steps)
	b.CountedLoop(rStep, rSB, func() {
		// --- parallel over 2 column panels; rows sweep serially ---
		b.Li(rI, 1)
		b.Li(rIB, n-1)
		b.CountedLoop(rI, rIB, func() {
			b.Li(rT0, rowBytes)
			b.Mul(rRow, rI, rT0)
			b.Mov(rJ, rLO)
			b.Mov(rJB, rHI)
			b.CountedLoop(rJ, rJB, func() {
				b.Shli(rA, rJ, 3)
				b.Add(rA, rA, rRow)
				// Eight neighbor loads (x and y, 4 directions).
				b.Ldf(fXW, rA, x-prog.WordSize)
				b.Ldf(fXE, rA, x+prog.WordSize)
				b.Ldf(fXN, rA, x-rowBytes)
				b.Ldf(fXS, rA, x+rowBytes)
				b.Ldf(fYW, rA, y-prog.WordSize)
				b.Ldf(fYE, rA, y+prog.WordSize)
				b.Ldf(fYN, rA, y-rowBytes)
				b.Ldf(fYS, rA, y+rowBytes)
				// Independent metric terms: wide, flat dataflow. The
				// two quadratic forms plus the cross terms give ~20
				// independent FP ops per point, so a pair of 4-issue
				// clusters extracts more than one 8-issue core can
				// (fetch and window limits bite first on FA1).
				b.Fsub(fA, fXE, fXW)
				b.Fsub(fB2, fXS, fXN)
				b.Fsub(fC, fYE, fYW)
				b.Fsub(fD, fYS, fYN)
				b.Fmul(fA, fA, fA)
				b.Fmul(fB2, fB2, fB2)
				b.Fmul(fC, fC, fC)
				b.Fmul(fD, fD, fD)
				b.Fadd(fT0, fA, fC)
				b.Fadd(fT1, fB2, fD)
				b.Fmul(fT0, fT0, fK1)
				b.Fmul(fT1, fT1, fK1)
				// Cross-derivative terms (independent of the above).
				b.Fadd(fX2, fXE, fXW)
				b.Fadd(fY2, fYE, fYW)
				b.Fmul(fX2, fX2, fK2)
				b.Fmul(fY2, fY2, fK2)
				b.Fadd(fX3, fXN, fXS)
				b.Fadd(fY3, fYN, fYS)
				b.Fmul(fX3, fX3, fK1)
				b.Fmul(fY3, fY3, fK1)
				b.Fsub(fX2, fX2, fX3)
				b.Fsub(fY2, fY2, fY3)
				b.Fmul(fX2, fX2, fX2)
				b.Fmul(fY2, fY2, fY2)
				b.Fadd(fT0, fT0, fX2)
				b.Fadd(fT1, fT1, fY2)
				b.Stf(fT0, rA, rx)
				b.Stf(fT1, rA, ry)
				// Relax the coordinates toward neighbor means
				// (Jacobi: written to the shadow arrays so the result
				// is independent of the panel partitioning).
				b.Fadd(fA, fXE, fXW)
				b.Fadd(fB2, fXN, fXS)
				b.Fadd(fA, fA, fB2)
				b.Fmul(fA, fA, fK1)
				b.Stf(fA, rA, xn)
				b.Fadd(fC, fYE, fYW)
				b.Fadd(fD, fYN, fYS)
				b.Fadd(fC, fC, fD)
				b.Fmul(fC, fC, fK1)
				b.Stf(fC, rA, yn)
			})
		})
		b.Barrier(0)

		// --- overlapped tail: the master runs the serial residual
		// recurrence while the slaves share the copy-back loop (the
		// two touch disjoint data, so one barrier closes both) ---
		b.IfThread0(func() {
			b.Fli(fRe, 1.0)
			b.Li(rI, 0)
			b.Li(rIB, n/2)
			b.CountedLoop(rI, rIB, func() {
				// Chain: re = k2 + k1*re - rx-sample/(re+2): serial FP
				// dependence with a divide, ILP ~1.
				b.Li(rT2, n-2)
				b.Rem(rA, rI, rT2)
				b.Shli(rA, rA, 3)
				b.Ldf(fT0, rA, rx+rowBytes)
				b.Fmul(fT1, fRe, fK1)
				b.Fadd(fT1, fT1, fK2)
				b.Fadd(fT0, fT0, fT1)
				b.Fdiv(fRe, fT1, fT0)
			})
			b.Stf(fRe, isa.RegZero, b.MustAddr("resid"))
		})
		b.Mov(rI, rRLO)
		b.CountedLoop(rI, rRHI, func() {
			b.Li(rT0, rowBytes)
			b.Mul(rRow, rI, rT0)
			b.Li(rJ, 1)
			b.Li(rJB, n-1)
			b.CountedLoop(rJ, rJB, func() {
				b.Shli(rA, rJ, 3)
				b.Add(rA, rA, rRow)
				b.Ldf(fT0, rA, xn)
				b.Stf(fT0, rA, x)
				b.Ldf(fT1, rA, yn)
				b.Stf(fT1, rA, y)
			})
		})
		b.Barrier(1)
	})
	b.Halt()

	pr := b.MustBuild()
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			off := (i*n + j) * prog.WordSize
			pr.Init[x+off] = floatBits(float64(j) + 0.03*float64(i))
			pr.Init[y+off] = floatBits(float64(i) - 0.02*float64(j))
		}
	}
	return pr
}
