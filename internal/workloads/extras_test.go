package workloads

import (
	"math"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/parallel"
	"clustersmt/internal/prog"
)

func TestExtrasRegistered(t *testing.T) {
	if len(Extras()) != 2 {
		t.Fatalf("extras = %d", len(Extras()))
	}
	for _, name := range []string{"radix", "lu"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("%s not resolvable: %v", name, err)
		}
	}
}

func TestRadixSortsCorrectly(t *testing.T) {
	for _, threads := range []int{1, 3, 8} {
		p := Radix().Build(threads, 1, SizeTest)
		res, err := parallel.RunFunctional(p, threads, 100_000_000)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		// The kernel's own inversion counter must be zero.
		if inv := res.ReadWord(p, "checks", 0); inv != 0 {
			t.Fatalf("threads=%d: %d inversions after sort", threads, inv)
		}
		// Independently verify: the keys are the sorted multiset of the
		// initial image.
		n := radixParams(SizeTest)
		var want []uint64
		state := uint64(0x12345678)
		for i := int64(0); i < n; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			want = append(want, (state>>33)&0xFF)
		}
		counts := map[uint64]int{}
		for _, k := range want {
			counts[k]++
		}
		prev := uint64(0)
		for i := int64(0); i < n; i++ {
			k := res.ReadWord(p, "keys", i)
			if k < prev {
				t.Fatalf("threads=%d: keys[%d]=%d < keys[%d]=%d", threads, i, k, i-1, prev)
			}
			counts[k]--
			prev = k
		}
		for k, c := range counts {
			if c != 0 {
				t.Fatalf("threads=%d: key %d count off by %d (not a permutation)", threads, k, c)
			}
		}
	}
}

func TestRadixThreadInvariance(t *testing.T) {
	p1 := Radix().Build(1, 1, SizeTest)
	r1, err := parallel.RunFunctional(p1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p8 := Radix().Build(8, 1, SizeTest)
	r8, err := parallel.RunFunctional(p8, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := radixParams(SizeTest)
	for i := int64(0); i < n; i++ {
		if r1.ReadWord(p1, "keys", i) != r8.ReadWord(p8, "keys", i) {
			t.Fatalf("keys[%d] differs across thread counts", i)
		}
	}
}

func TestLUFactorsCorrectly(t *testing.T) {
	n := luParams(SizeTest)
	p := LU().Build(8, 1, SizeTest)
	res, err := parallel.RunFunctional(p, 8, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the original matrix and verify L*U element-wise.
	orig := make([]float64, n*n)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			v := 0.01 * float64((i*7+j*3)%13)
			if i == j {
				v = float64(n) + 1.5
			}
			orig[i*n+j] = v
		}
	}
	lu := make([]float64, n*n)
	for i := int64(0); i < n*n; i++ {
		lu[i] = res.ReadFloat(p, "a", i)
	}
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			// (L*U)[i][j] with L unit-lower, U upper (both packed in lu).
			sum := 0.0
			kmax := i
			if j < i {
				kmax = j
			}
			for k := int64(0); k < kmax; k++ {
				sum += lu[i*n+k] * lu[k*n+j]
			}
			if i <= j {
				sum += lu[i*n+j] // L[i][i] = 1
			} else {
				sum += lu[i*n+kmax] * lu[kmax*n+j]
			}
			if math.Abs(sum-orig[i*n+j]) > 1e-9 {
				t.Fatalf("(LU)[%d][%d] = %g, want %g", i, j, sum, orig[i*n+j])
			}
		}
	}
	// The determinant global must equal the diagonal product.
	det := 1.0
	for k := int64(0); k < n; k++ {
		det *= lu[k*n+k]
	}
	if got := res.ReadFloat(p, "det", 0); math.Abs(got-det) > math.Abs(det)*1e-12 {
		t.Fatalf("det = %g, want %g", got, det)
	}
}

func TestLUThreadInvariance(t *testing.T) {
	n := luParams(SizeTest)
	p1 := LU().Build(1, 1, SizeTest)
	r1, err := parallel.RunFunctional(p1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p8 := LU().Build(8, 1, SizeTest)
	r8, err := parallel.RunFunctional(p8, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n*n; i++ {
		a := r1.ReadWord(p1, "a", i)
		bb := r8.ReadWord(p8, "a", i)
		if a != bb {
			t.Fatalf("a[%d] differs across thread counts: %x vs %x", i, a, bb)
		}
	}
}

func TestExtrasOnTimingSimulator(t *testing.T) {
	for _, w := range Extras() {
		for _, arch := range []config.Arch{config.FA8, config.SMT2} {
			m := config.LowEnd(arch)
			p := w.Build(m.Threads(), m.Chips, SizeTest)
			sim, err := core.New(m, p)
			if err != nil {
				t.Fatal(err)
			}
			sim.MaxCycles = 200_000_000
			res, err := sim.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", w.Name, arch.Name, err)
			}
			if res.Committed == 0 {
				t.Fatalf("%s/%s: nothing committed", w.Name, arch.Name)
			}
		}
	}
	_ = prog.WordSize
}
