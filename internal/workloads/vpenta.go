package workloads

import (
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// Vpenta is the NASA7 pentadiagonal-inversion analog: many independent
// banded systems solved simultaneously. Parallelism across systems is
// abundant (every thread gets whole systems), but each solve is a
// forward-elimination / back-substitution recurrence whose FP divides
// serialize execution, so per-thread ILP is low — the lower-right
// corner of Figure 6a (~6.5 threads, ILP ~1.5).
func Vpenta() Workload {
	return Workload{
		Name:        "vpenta",
		Description: "simultaneous pentadiagonal solves (NASA7 vpenta analog)",
		ParCap:      0,
		Build:       buildVpenta,
	}
}

func vpentaParams(size Size) (systems, length, steps int64) {
	if size == SizeTest {
		return 16, 24, 1
	}
	return 32, 48, 2
}

func buildVpenta(threads, chips int, size Size) *prog.Program {
	systems, length, steps := vpentaParams(size)
	b := prog.NewBuilder("vpenta")
	declareRuntime(b, threads, chips)

	// Band arrays laid out system-major: a[s][k].
	a := b.Global("a", systems*length)
	c := b.Global("c", systems*length)
	f := b.Global("f", systems*length)
	b.Global("sum", 1)

	const (
		rStep isa.Reg = 1
		rS    isa.Reg = 2 // system index
		rK    isa.Reg = 3 // element index
		rBase isa.Reg = 4 // byte offset of system s
		rA    isa.Reg = 5
		rKB   isa.Reg = 6
		rSB   isa.Reg = 8
	)
	const (
		fPrev isa.Reg = 0 // recurrence carrier
		fA    isa.Reg = 1
		fC    isa.Reg = 2
		fF    isa.Reg = 3
		fT0   isa.Reg = 4
		fOne  isa.Reg = 5
	)
	sysBytes := length * prog.WordSize

	b.Fli(fOne, 1.0)
	// Systems are distributed across all threads (hoisted, loop
	// invariant).
	emitChunk(b, systems, 0)
	b.Li(rStep, 0)
	b.Li(rSB, steps)
	b.CountedLoop(rStep, rSB, func() {
		b.Mov(rS, rLO)
		b.CountedLoop(rS, rHI, func() {
			b.Li(rT0, sysBytes)
			b.Mul(rBase, rS, rT0)

			// Forward elimination: pivot = 1/(a[k] - c[k]*prev);
			// f[k] = f[k] / pivot. Strict chain with an unpipelined
			// divide every element; addresses are strength-reduced
			// (pointer increment) so almost every issued instruction
			// sits on the recurrence — per-thread ILP ~1.
			b.Fli(fPrev, 0.5)
			b.Addi(rA, rBase, prog.WordSize)
			b.Addi(rKB, rBase, sysBytes)
			b.SteppedLoop(rA, rKB, prog.WordSize, func() {
				b.Ldf(fA, rA, a)
				b.Ldf(fC, rA, c)
				b.Ldf(fF, rA, f)
				b.Fmul(fT0, fC, fPrev)
				b.Fsub(fA, fA, fT0)
				b.Fdiv(fPrev, fF, fA) // chain through fPrev
				b.Stf(fPrev, rA, f)
			})

			// Back substitution: another strict chain, walked backward
			// with a decremented pointer.
			b.Addi(rA, rBase, (length-2)*prog.WordSize)
			b.Li(rK, 0)
			b.Li(rKB, length-1)
			b.CountedLoop(rK, rKB, func() {
				b.Ldf(fF, rA, f)
				b.Ldf(fC, rA, c)
				b.Fmul(fT0, fC, fPrev)
				b.Fsub(fPrev, fF, fT0) // chain
				b.Stf(fPrev, rA, f)
				b.Addi(rA, rA, -prog.WordSize)
			})
		})
		b.Barrier(0)

		// Tiny serial reduction by thread 0 (diagnostics only): samples
		// every 4th system so the serial section stays small even when
		// the sampled lines are dirty in remote chips.
		b.IfThread0(func() {
			b.Fli(fT0, 0.0)
			b.Li(rS, 0)
			b.Li(rSB2, systems)
			b.SteppedLoop(rS, rSB2, 4, func() {
				b.Li(rT0, sysBytes)
				b.Mul(rBase, rS, rT0)
				b.Ldf(fF, rBase, f+prog.WordSize)
				b.Fadd(fT0, fT0, fF)
			})
			b.Stf(fT0, isa.RegZero, b.MustAddr("sum"))
		})
		b.Barrier(1)
	})
	b.Halt()

	pr := b.MustBuild()
	for s := int64(0); s < systems; s++ {
		for k := int64(0); k < length; k++ {
			off := (s*length + k) * prog.WordSize
			pr.Init[a+off] = floatBits(2.5 + 0.01*float64(k))
			pr.Init[c+off] = floatBits(0.3 + 0.002*float64(s))
			pr.Init[f+off] = floatBits(1.0 + 0.05*float64((s+k)%11))
		}
	}
	return pr
}

// rSB2 is a second bound register for the serial tail (r9).
const rSB2 isa.Reg = 9
