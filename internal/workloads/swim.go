package workloads

import (
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// Swim is the SPEC95 shallow-water analog: a 5-point stencil over three
// fields (u, v, p) ping-ponged between two array sets each time step,
// with a serial boundary/diagnostics pass by thread 0 per step.
//
// Placement knobs (Figure 6a target: ~4 threads, ILP ~3):
//   - swimMaxPar caps loop parallelism at 4 (Polaris extracts limited
//     outer-loop parallelism from the Fortran source);
//   - a loop-carried time-smoothing recurrence (the fCar chain, the
//     analog of swim's Robert-Asselin time filter) pins the per-thread
//     ILP so that 2-issue clusters nearly saturate and wider clusters
//     gain little;
//   - the serial pass sets the Amdahl fraction.
func Swim() Workload {
	return Workload{
		Name:        "swim",
		Description: "shallow-water 5-point stencil (SPEC95 swim analog)",
		ParCap:      4,
		Build:       buildSwim,
	}
}

func swimParams(size Size) (n, steps, serialReps int64) {
	if size == SizeTest {
		return 16, 2, 1
	}
	return 32, 4, 2
}

func buildSwim(threads, chips int, size Size) *prog.Program {
	n, steps, serialReps := swimParams(size)
	b := prog.NewBuilder("swim")
	declareRuntime(b, threads, chips)

	u := b.Global("u", n*n)
	v := b.Global("v", n*n)
	p := b.Global("p", n*n)
	un := b.Global("un", n*n)
	vn := b.Global("vn", n*n)
	pn := b.Global("pn", n*n)
	b.Global("checksum", 1)

	const (
		rStep isa.Reg = 1
		rI    isa.Reg = 2
		rRow  isa.Reg = 4
		rA    isa.Reg = 5
		rAB   isa.Reg = 6 // inner address bound
		rSB   isa.Reg = 7
		rRep  isa.Reg = 8
		rJ    isa.Reg = 9
		rJB   isa.Reg = 10
	)
	const (
		fC1  isa.Reg = 0
		fC2  isa.Reg = 1
		fC3  isa.Reg = 2
		fPW  isa.Reg = 3
		fPC  isa.Reg = 4
		fPE  isa.Reg = 5
		fPN  isa.Reg = 6
		fPS  isa.Reg = 7
		fU   isa.Reg = 8
		fV   isa.Reg = 9
		fT0  isa.Reg = 10
		fT1  isa.Reg = 11
		fT2  isa.Reg = 12
		fT3  isa.Reg = 13
		fCar isa.Reg = 14
		fAc  isa.Reg = 15
	)
	rowBytes := n * prog.WordSize

	// stencil emits one time step reading (su, sv, sp) and writing
	// (du, dv, dp) over this thread's rows. The fCar chain is the
	// loop-carried time filter: ~8 cycles of dependent FP work per
	// point, which caps per-thread ILP near 3.
	stencil := func(su, sv, sp, du, dv, dp int64) {
		b.Mov(rI, rLO)
		b.CountedLoop(rI, rHI, func() {
			b.Li(rT0, rowBytes)
			b.Mul(rRow, rI, rT0)
			b.Addi(rA, rRow, prog.WordSize)
			b.Addi(rAB, rRow, (n-1)*prog.WordSize)
			b.Fli(fCar, 0.1)
			b.Ldf(fPW, rA, sp-prog.WordSize)
			b.Ldf(fPC, rA, sp)
			b.SteppedLoop(rA, rAB, prog.WordSize, func() {
				b.Ldf(fPE, rA, sp+prog.WordSize)
				b.Ldf(fPN, rA, sp-rowBytes)
				b.Ldf(fPS, rA, sp+rowBytes)
				b.Ldf(fU, rA, su)
				b.Ldf(fV, rA, sv)
				// Zonal update feeding the time filter.
				b.Fsub(fT0, fPE, fPW)
				b.Fmul(fT0, fT0, fC1)
				b.Fadd(fT0, fT0, fU)
				// Time filter (loop-carried chain, ~11 cycles): caps
				// per-thread ILP near 2.5 so that four 2-issue
				// clusters beat two 4-issue ones on the stencil.
				b.Fmul(fCar, fCar, fC3)
				b.Fadd(fCar, fCar, fT0)
				b.Fmul(fCar, fCar, fC1)
				b.Fadd(fCar, fCar, fPC)
				b.Fmul(fCar, fCar, fC3)
				b.Fadd(fCar, fCar, fT0)
				b.Fmul(fCar, fCar, fC1)
				// du = filtered zonal velocity.
				b.Fmul(fT2, fCar, fC2)
				b.Fadd(fT2, fT2, fT0)
				b.Stf(fT2, rA, du)
				// dv = v + c1*(pS - pN)
				b.Fsub(fT1, fPS, fPN)
				b.Fmul(fT1, fT1, fC1)
				b.Fadd(fT1, fT1, fV)
				b.Stf(fT1, rA, dv)
				// dp = pC + c2*(zonal - meridional)
				b.Fsub(fT3, fT0, fT1)
				b.Fmul(fT3, fT3, fC2)
				b.Fadd(fT3, fT3, fPC)
				b.Stf(fT3, rA, dp)
				// Slide the p window.
				b.Fmov(fPW, fPC)
				b.Fmov(fPC, fPE)
			})
		})
	}

	// boundary emits the serial thread-0 wrap + diagnostics pass over
	// the arrays just written.
	boundary := func(du, dv, dp int64) {
		b.IfThread0(func() {
			b.Li(rRep, 0)
			b.Li(rT1, serialReps)
			b.CountedLoop(rRep, rT1, func() {
				b.Li(rJ, 0)
				b.Li(rJB, n)
				b.Fli(fAc, 0.0)
				b.CountedLoop(rJ, rJB, func() {
					b.Shli(rA, rJ, 3)
					b.Ldf(fT0, rA, du+(n-2)*rowBytes)
					b.Stf(fT0, rA, du)
					b.Ldf(fT1, rA, dv+(n-2)*rowBytes)
					b.Stf(fT1, rA, dv)
					b.Ldf(fT2, rA, dp+rowBytes)
					b.Stf(fT2, rA, dp+(n-1)*rowBytes)
					b.Fadd(fAc, fAc, fT2)
				})
				b.Stf(fAc, isa.RegZero, b.MustAddr("checksum"))
			})
		})
	}

	b.Fli(fC1, 0.12)
	b.Fli(fC2, 0.07)
	b.Fli(fC3, 0.31)
	// Loop-invariant chunk bounds, hoisted ahead of the time loop.
	emitChunk(b, n-2, 4)
	b.Addi(rLO, rLO, 1)
	b.Addi(rHI, rHI, 1)
	b.Li(rStep, 0)
	b.Li(rSB, steps/2) // each iteration does two ping-pong half steps
	b.CountedLoop(rStep, rSB, func() {
		stencil(u, v, p, un, vn, pn)
		b.Barrier(0)
		boundary(un, vn, pn)
		b.Barrier(1)
		stencil(un, vn, pn, u, v, p)
		b.Barrier(2)
		boundary(u, v, p)
		b.Barrier(3)
	})
	b.Halt()

	pr := b.MustBuild()
	initSwim(pr, n, u, v, p)
	return pr
}

// initSwim seeds the fields with a smooth deterministic pattern.
func initSwim(pr *prog.Program, n, u, v, p int64) {
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			off := (i*n + j) * prog.WordSize
			pr.Init[p+off] = floatBits(1.0 + 0.01*float64(i) - 0.02*float64(j))
			pr.Init[u+off] = floatBits(0.5 + 0.005*float64(i*j%17))
			pr.Init[v+off] = floatBits(-0.25 + 0.004*float64((i+j)%13))
		}
	}
}
