package workloads

import (
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// Mgrid is the SPEC95 multigrid analog: V-cycles over a three-level
// grid hierarchy. Smoothing at each level is parallel over rows, but
// the coarser levels have fewer rows than threads and the coarsest
// level plus the restrict/prolong transfers run serially on thread 0,
// so average thread parallelism sits between tomcatv's and swim's.
//
// Placement knobs (Figure 6a target: ~3.5 threads, ILP ~3.5):
// mgridMaxPar caps the fine-level parallelism; levels shrink it
// further; the 5-point smoother has a handful of independent FP ops.
func Mgrid() Workload {
	return Workload{
		Name:        "mgrid",
		Description: "3-level multigrid V-cycle (SPEC95 mgrid analog)",
		ParCap:      4,
		Build:       buildMgrid,
	}
}

func mgridParams(size Size) (n, cycles int64) {
	if size == SizeTest {
		return 16, 2
	}
	// 48x48 fine grid: the multigrid working set mostly fits the L1,
	// so the smoother is ILP-bound rather than memory-bound (the
	// paper's mgrid sits at mid ILP, where FA2 wins among the FAs).
	return 48, 2
}

func buildMgrid(threads, chips int, size Size) *prog.Program {
	n, cycles := mgridParams(size)
	b := prog.NewBuilder("mgrid")
	declareRuntime(b, threads, chips)

	n1, n2 := n/2, n/4
	g0 := b.Global("g0", n*n)
	g1 := b.Global("g1", n1*n1)
	g2 := b.Global("g2", n2*n2)
	g0n := b.Global("g0n", n*n)
	g1n := b.Global("g1n", n1*n1)
	b.Global("resid", 1)

	const (
		rCyc isa.Reg = 1
		rI   isa.Reg = 2
		rJ   isa.Reg = 3
		rRow isa.Reg = 4
		rA   isa.Reg = 5
		rJB  isa.Reg = 6
		rCB  isa.Reg = 8
	)
	const (
		fW  isa.Reg = 0
		fE  isa.Reg = 1
		fN  isa.Reg = 2
		fS  isa.Reg = 3
		fC  isa.Reg = 4
		fK  isa.Reg = 5
		fT0 isa.Reg = 6
		fAc isa.Reg = 7
	)

	// smooth emits a parallel 5-point Jacobi smoothing pass over the
	// interior of a level-g grid of dimension dim, with the given
	// parallelism cap. Results go to the shadow array gn and are copied
	// back after a barrier, so the outcome is independent of the row
	// partitioning (verified by tests).
	var barrierID int64
	smooth := func(g, gn, dim int64, lo, hi isa.Reg) {
		rowBytes := dim * prog.WordSize
		b.Mov(rI, lo)
		b.CountedLoop(rI, hi, func() {
			b.Li(rT0, rowBytes)
			b.Mul(rRow, rI, rT0)
			b.Li(rJ, 1)
			b.Li(rJB, dim-1)
			b.CountedLoop(rJ, rJB, func() {
				b.Shli(rA, rJ, 3)
				b.Add(rA, rA, rRow)
				b.Ldf(fW, rA, g-prog.WordSize)
				b.Ldf(fE, rA, g+prog.WordSize)
				b.Ldf(fN, rA, g-rowBytes)
				b.Ldf(fS, rA, g+rowBytes)
				b.Ldf(fC, rA, g)
				b.Fadd(fW, fW, fE)
				b.Fadd(fN, fN, fS)
				b.Fadd(fW, fW, fN)
				b.Fmul(fW, fW, fK)
				b.Fadd(fW, fW, fC)
				b.Fmul(fW, fW, fK)
				b.Stf(fW, rA, gn)
			})
		})
		b.Barrier(barrierID)
		barrierID++
		b.Mov(rI, lo)
		b.CountedLoop(rI, hi, func() {
			b.Li(rT0, rowBytes)
			b.Mul(rRow, rI, rT0)
			b.Li(rJ, 1)
			b.Li(rJB, dim-1)
			b.CountedLoop(rJ, rJB, func() {
				b.Shli(rA, rJ, 3)
				b.Add(rA, rA, rRow)
				b.Ldf(fT0, rA, gn)
				b.Stf(fT0, rA, g)
			})
		})
		b.Barrier(barrierID)
		barrierID++
	}

	// transfer emits a grid transfer: dst[i][j] = k * src[2i][2j]
	// (restriction) or the reverse injection (prolongation), parallel
	// over coarse rows up to the workload's parallelism cap.
	transfer := func(src, srcDim, dst, dstDim int64, down bool, lo, hi isa.Reg) {
		coarse := dstDim
		if !down {
			coarse = srcDim
		}
		{
			b.Mov(rI, lo)
			b.CountedLoop(rI, hi, func() {
				b.Li(rJ, 0)
				b.Li(rJB, coarse)
				b.CountedLoop(rJ, rJB, func() {
					// Coarse element offset.
					b.Li(rT0, coarse*prog.WordSize)
					b.Mul(rRow, rI, rT0)
					b.Shli(rA, rJ, 3)
					b.Add(rA, rA, rRow)
					// Fine element offset (2i, 2j).
					b.Shli(rT0, rI, 1)
					fineDim := srcDim
					if !down {
						fineDim = dstDim
					}
					b.Li(rT2, fineDim*prog.WordSize)
					b.Mul(rT0, rT0, rT2)
					b.Shli(rT2, rJ, 4) // 2j * 8
					b.Add(rT0, rT0, rT2)
					if down {
						b.Ldf(fT0, rT0, src)
						b.Fmul(fT0, fT0, fK)
						b.Stf(fT0, rA, dst)
					} else {
						b.Ldf(fT0, rA, src)
						b.Fmul(fT0, fT0, fK)
						b.Stf(fT0, rT0, dst)
					}
				})
			})
		}
		b.Barrier(barrierID)
		barrierID++
	}

	// Hoisted loop-invariant chunk bounds: fine rows, mid rows (half
	// the parallel width, mirroring the shrinking grids), and the two
	// transfer row sets.
	const (
		rFL  isa.Reg = 10
		rFH  isa.Reg = 11
		rML  isa.Reg = 12
		rMH  isa.Reg = 13
		rT1L isa.Reg = 14
		rT1H isa.Reg = 15
		rT2L isa.Reg = 16
		rT2H isa.Reg = 17
	)
	emitChunkTo(b, n-2, 4, rFL, rFH)
	b.Addi(rFL, rFL, 1)
	b.Addi(rFH, rFH, 1)
	emitChunkTo(b, n1-2, 2, rML, rMH)
	b.Addi(rML, rML, 1)
	b.Addi(rMH, rMH, 1)
	emitChunkTo(b, n1, 4, rT1L, rT1H)
	emitChunkTo(b, n2, 4, rT2L, rT2H)

	b.Fli(fK, 0.24)
	b.Li(rCyc, 0)
	b.Li(rCB, cycles)
	b.CountedLoop(rCyc, rCB, func() {
		start := barrierID
		smooth(g0, g0n, n, rFL, rFH)               // fine smooth, parallel
		transfer(g0, n, g1, n1, true, rT1L, rT1H)  // restrict
		smooth(g1, g1n, n1, rML, rMH)              // mid smooth, narrower
		smooth(g1, g1n, n1, rML, rMH)              // second mid pass
		transfer(g1, n1, g2, n2, true, rT2L, rT2H) // restrict
		// Coarsest solve: serial relaxation sweeps by thread 0.
		b.IfThread0(func() {
			b.Fli(fAc, 0.0)
			b.Li(rI, 1)
			b.Li(rT1, n2-1)
			b.CountedLoop(rI, rT1, func() {
				b.Li(rT0, n2*prog.WordSize)
				b.Mul(rRow, rI, rT0)
				b.Li(rJ, 1)
				b.Li(rJB, n2-1)
				b.CountedLoop(rJ, rJB, func() {
					b.Shli(rA, rJ, 3)
					b.Add(rA, rA, rRow)
					b.Ldf(fC, rA, g2)
					b.Fmul(fAc, fAc, fK) // serial chain
					b.Fadd(fAc, fAc, fC)
					b.Stf(fAc, rA, g2)
				})
			})
			b.Stf(fAc, isa.RegZero, b.MustAddr("resid"))
		})
		b.Barrier(barrierID)
		barrierID++
		transfer(g2, n2, g1, n1, false, rT2L, rT2H) // prolong
		smooth(g1, g1n, n1, rML, rMH)
		smooth(g1, g1n, n1, rML, rMH)              // second mid pass
		transfer(g1, n1, g0, n, false, rT1L, rT1H) // prolong
		smooth(g0, g0n, n, rFL, rFH)
		// Reset barrier ids so every cycle reuses the same set (the
		// generation counter in the sync controller disambiguates).
		barrierID = start
		_ = start
	})
	b.Halt()

	pr := b.MustBuild()
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			pr.Init[g0+(i*n+j)*prog.WordSize] = floatBits(0.8 + 0.01*float64((i*j)%23))
		}
	}
	return pr
}
