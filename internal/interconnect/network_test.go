package interconnect

import (
	"testing"
	"testing/quick"
)

func TestSameNodeIsFree(t *testing.T) {
	n := New(4, 4)
	if s := n.Transact(100, 2, 2); s != 100 {
		t.Fatalf("same-node start = %d", s)
	}
	if n.Messages != 0 {
		t.Fatal("same-node transaction counted as a message")
	}
}

func TestPortSerialization(t *testing.T) {
	n := New(2, 4)
	// Port occupancy models contention only; the Table 3 round-trip
	// latencies carry the wire delay, so an uncontended exchange
	// starts immediately.
	s1 := n.Transact(0, 0, 1)
	if s1 != 0 {
		t.Fatalf("first transact start = %d, want 0", s1)
	}
	// A second message between the same pair queues behind both ports.
	s2 := n.Transact(0, 0, 1)
	if s2 != 4 {
		t.Fatalf("second transact start = %d, want 4", s2)
	}
	if n.Conflicts == 0 {
		t.Fatal("no conflicts recorded")
	}
}

func TestDistinctPairsDontConflict(t *testing.T) {
	n := New(4, 4)
	s1 := n.Transact(0, 0, 1)
	s2 := n.Transact(0, 2, 3)
	if s1 != s2 {
		t.Fatalf("independent pairs serialized: %d vs %d", s1, s2)
	}
}

func TestNodesAccessor(t *testing.T) {
	if New(3, 1).Nodes() != 3 {
		t.Fatal("nodes accessor wrong")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(0, 1)
}

// Property: the returned start (the destination port's service start)
// is monotone non-decreasing per destination port and never precedes
// the request.
func TestTransactMonotone(t *testing.T) {
	f := func(ops []uint8) bool {
		n := New(4, 2)
		now := int64(0)
		last := make([]int64, 4)
		for _, op := range ops {
			from := int(op) % 4
			to := int(op>>2) % 4
			now += int64(op % 3)
			s := n.Transact(now, from, to)
			if s < now {
				return false
			}
			if from != to {
				if s < last[to] {
					return false
				}
				last[to] = s
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
