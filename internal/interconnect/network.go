// Package interconnect models the scalable network of Fig. 3 as
// per-node network-interface ports with fixed per-message occupancy.
// The Table 3 remote latencies are contention-free round trips; this
// package adds the queueing delay on top when ports are busy.
package interconnect

// Network is the chip-to-chip interconnect. Node i's port serializes
// the messages it sources or sinks.
type Network struct {
	ports     []int64
	occupancy int64

	Messages   uint64
	Conflicts  uint64
	BusyCycles uint64
}

// New returns a network for n nodes with the given per-message port
// occupancy in cycles.
func New(n, occupancy int) *Network {
	if n <= 0 || occupancy <= 0 {
		panic("interconnect: need positive nodes and occupancy")
	}
	return &Network{ports: make([]int64, n), occupancy: int64(occupancy)}
}

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return len(n.ports) }

func (n *Network) acquire(now int64, node int) int64 {
	start := now
	if n.ports[node] > start {
		n.Conflicts++
		n.BusyCycles += uint64(n.ports[node] - start)
		start = n.ports[node]
	}
	n.ports[node] = start + n.occupancy
	return start
}

// Transact serializes one request/response exchange between nodes from
// and to beginning no earlier than now, returning the cycle at which
// the exchange effectively starts (the Table 3 round-trip latency is
// then added by the caller). Same-node "transactions" are free.
func (n *Network) Transact(now int64, from, to int) int64 {
	if from == to {
		return now
	}
	n.Messages++
	start := n.acquire(now, from)
	return n.acquire(start, to)
}
