package interconnect

import (
	"fmt"

	"clustersmt/internal/snap"
)

// Clone returns an independent deep copy of the network.
func (n *Network) Clone() *Network {
	cp := *n
	cp.ports = append([]int64(nil), n.ports...)
	return &cp
}

// EncodeSnap writes the per-port next-free cycles and counters; the
// geometry (node count, occupancy) is config-derived and validated on
// decode rather than trusted from the stream.
func (n *Network) EncodeSnap(w *snap.Writer) {
	w.Int(len(n.ports))
	for _, p := range n.ports {
		w.I64(p)
	}
	w.U64(n.Messages)
	w.U64(n.Conflicts)
	w.U64(n.BusyCycles)
}

// DecodeSnap overlays state produced by EncodeSnap onto a fresh network
// of the same size.
func (n *Network) DecodeSnap(r *snap.Reader) {
	if c := r.Int(); c != len(n.ports) {
		r.Fail(fmt.Errorf("interconnect: snapshot has %d ports, network has %d", c, len(n.ports)))
		return
	}
	for i := range n.ports {
		n.ports[i] = r.I64()
	}
	n.Messages = r.U64()
	n.Conflicts = r.U64()
	n.BusyCycles = r.U64()
}
