package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCategoryStrings(t *testing.T) {
	want := []string{"useful", "fetch", "sync", "control", "data", "memory", "structural", "other"}
	for i, w := range want {
		if Category(i).String() != w {
			t.Errorf("category %d = %q, want %q", i, Category(i), w)
		}
	}
	if len(AllCategories()) != int(NumCategories) {
		t.Fatal("AllCategories size mismatch")
	}
}

func TestRecordCycleFullyUseful(t *testing.T) {
	var s Slots
	var v Votes
	s.RecordCycle(4, 4, &v)
	if s.Counts[Useful] != 4 || s.TotalSlots() != 4 {
		t.Fatalf("counts = %+v", s.Counts)
	}
}

func TestRecordCycleNoVotesFallsToFetch(t *testing.T) {
	var s Slots
	var v Votes
	s.RecordCycle(4, 1, &v)
	if s.Counts[Fetch] != 3 {
		t.Fatalf("fetch = %v, want 3", s.Counts[Fetch])
	}
}

func TestRecordCycleProportionalSplit(t *testing.T) {
	var s Slots
	var v Votes
	v[Data] = 3
	v[Memory] = 1
	s.RecordCycle(8, 4, &v) // 4 wasted: 3 data, 1 memory
	if math.Abs(s.Counts[Data]-3) > 1e-9 || math.Abs(s.Counts[Memory]-1) > 1e-9 {
		t.Fatalf("split = data %v memory %v", s.Counts[Data], s.Counts[Memory])
	}
}

// Property: total slots always equals width*cycles regardless of votes.
func TestSlotConservation(t *testing.T) {
	f := func(cycles []uint8, votesRaw []uint8) bool {
		var s Slots
		width := 8
		for i, c := range cycles {
			issued := int(c) % (width + 1)
			var v Votes
			for j := 0; j < int(NumCategories); j++ {
				if i+j < len(votesRaw) {
					v[j] = float64(votesRaw[i+j] % 5)
				}
			}
			v[Useful] = 0
			s.RecordCycle(width, issued, &v)
			s.AdvanceCycle()
		}
		want := float64(width) * float64(len(cycles))
		return math.Abs(s.TotalSlots()-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	var a, b Slots
	var v Votes
	a.RecordCycle(4, 4, &v)
	a.Cycles = 10
	b.RecordCycle(4, 2, &v)
	b.Cycles = 20
	a.Merge(&b)
	if a.Counts[Useful] != 6 {
		t.Fatalf("merged useful = %v", a.Counts[Useful])
	}
	if a.Cycles != 20 {
		t.Fatalf("merged cycles = %d", a.Cycles)
	}
}

func TestFractionAndString(t *testing.T) {
	var s Slots
	var v Votes
	s.RecordCycle(4, 2, &v)
	if f := s.Fraction(Useful); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("useful fraction = %v", f)
	}
	if !strings.Contains(s.String(), "useful=50.0%") {
		t.Fatalf("string = %q", s.String())
	}
	var empty Slots
	if empty.Fraction(Useful) != 0 {
		t.Fatal("empty fraction should be 0")
	}
}

func TestVotesTotalExcludesUseful(t *testing.T) {
	var v Votes
	v[Useful] = 100
	v[Data] = 2
	if v.Total() != 2 {
		t.Fatalf("total = %v", v.Total())
	}
	v.Reset()
	if v.Total() != 0 {
		t.Fatal("reset failed")
	}
}

// Property: Merge is additive on counts and conservative on totals.
func TestMergeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		var sa, sb Slots
		fill := func(s *Slots, xs []uint8) float64 {
			total := 0.0
			for i, x := range xs {
				var v Votes
				v[Fetch+Category(i%int(NumCategories-1))] = float64(x%7) + 1
				s.RecordCycle(8, int(x)%9, &v)
				s.AdvanceCycle()
				total += 8
			}
			return total
		}
		ta := fill(&sa, a)
		tb := fill(&sb, b)
		merged := sa
		merged.Merge(&sb)
		if mathAbs(merged.TotalSlots()-(ta+tb)) > 1e-6*(ta+tb+1) {
			return false
		}
		wantCycles := sa.Cycles
		if sb.Cycles > wantCycles {
			wantCycles = sb.Cycles
		}
		return merged.Cycles == wantCycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestFractionsMatchFraction: the single-pass Fractions and the
// cached-total FractionOf must agree exactly with per-call Fraction.
func TestFractionsMatchFraction(t *testing.T) {
	var s Slots
	v := Votes{0, 3, 1, 0, 2, 5, 0, 1}
	s.RecordCycle(8, 3, &v)
	s.RecordCycle(8, 0, &v)
	s.RecordCycle(8, 8, &v)
	fr := s.Fractions()
	total := s.TotalSlots()
	for c := Category(0); c < NumCategories; c++ {
		if fr[c] != s.Fraction(c) {
			t.Errorf("%v: Fractions=%v Fraction=%v", c, fr[c], s.Fraction(c))
		}
		if got := s.FractionOf(c, total); got != s.Fraction(c) {
			t.Errorf("%v: FractionOf=%v Fraction=%v", c, got, s.Fraction(c))
		}
	}
	var empty Slots
	if empty.Fractions() != [NumCategories]float64{} {
		t.Error("empty Fractions should be all zero")
	}
	if empty.FractionOf(Useful, 0) != 0 {
		t.Error("FractionOf with zero total should be 0")
	}
}
