// Package stats implements the paper's issue-slot accounting (§4.1):
// every cycle, each cluster's issue slots are either useful (an
// instruction issued) or wasted; wasted slots are divided proportionally
// among the hazards observed that cycle — the categories of Figures
// 4/5/7/8.
package stats

import (
	"fmt"
	"strings"
)

// Category is one slot class from §4.1.
type Category uint8

// Slot categories, in the paper's legend order (bottom of the stacked
// bar first).
const (
	Useful     Category = iota
	Fetch               // no instructions for a thread in the window
	Sync                // spinning on barriers or locks
	Control             // branch mispredictions
	Data                // data dependences (non-memory producer)
	Memory              // waiting on memory access / cache resources
	Structural          // lack of functional units
	Other               // squash & rename-register stalls
	NumCategories
)

var catNames = [NumCategories]string{
	"useful", "fetch", "sync", "control", "data", "memory", "structural", "other",
}

func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// AllCategories lists every category in declaration order.
func AllCategories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Votes tallies hazard observations for one cluster-cycle. Index by
// Category; Useful is ignored by Distribute.
type Votes [NumCategories]float64

// Reset zeroes the tally.
func (v *Votes) Reset() { *v = Votes{} }

// Total returns the sum of all hazard votes (excluding Useful).
func (v *Votes) Total() float64 {
	t := 0.0
	for c := Fetch; c < NumCategories; c++ {
		t += v[c]
	}
	return t
}

// Slots accumulates slot counts over a run.
type Slots struct {
	Counts [NumCategories]float64
	Cycles int64
}

// RecordCycle accounts one cluster-cycle: width issue slots, of which
// issued were useful; the remainder is split proportionally among the
// hazard votes. With no votes (idle machine tail), wasted slots fall to
// Fetch, the paper's "nothing available" class. Issuing more than width
// would silently violate the categories-sum-to-width×cycles invariant
// (the §4.1 property test), so it panics instead.
func (s *Slots) RecordCycle(width, issued int, votes *Votes) {
	if issued > width {
		panic(fmt.Sprintf("stats: issued %d exceeds issue width %d", issued, width))
	}
	s.Counts[Useful] += float64(issued)
	wasted := float64(width - issued)
	if wasted <= 0 {
		return
	}
	total := votes.Total()
	if total == 0 {
		s.Counts[Fetch] += wasted
		return
	}
	for c := Fetch; c < NumCategories; c++ {
		s.Counts[c] += wasted * votes[c] / total
	}
}

// IdleRow precomputes the per-category additions one zero-issue cycle
// with these votes contributes — exactly the values RecordCycle(width,
// 0, votes) would add, so folding the row with AddRow is bit-identical
// to calling RecordCycle (including the zero entries: adding +0.0 to a
// non-negative accumulator is an exact no-op in IEEE 754).
func IdleRow(width int, votes *Votes) (row [NumCategories]float64) {
	wasted := float64(width)
	total := votes.Total()
	if total == 0 {
		row[Fetch] = wasted
		return row
	}
	for c := Fetch; c < NumCategories; c++ {
		row[c] = wasted * votes[c] / total
	}
	return row
}

// AddRow folds one precomputed cycle row into the tally. Hot path of
// the event-driven fast-forward: the machine-wide tally must receive
// each skipped cycle's per-cluster contributions in the original
// interleaved order (float addition is not associative), but the
// divides behind each row only need computing once per skip.
func (s *Slots) AddRow(row *[NumCategories]float64) {
	for c := Fetch; c < NumCategories; c++ {
		s.Counts[c] += row[c]
	}
}

// RecordIdleCycles accounts n consecutive cluster-cycles in which no
// instruction issued and the hazard votes were identical — the bulk
// path behind the event-driven fast-forward (internal/core).
//
// It deliberately performs the same repeated floating-point additions
// that n individual RecordCycle(width, 0, votes) calls would: float
// addition is not associative, and the fast-forward's contract is that
// skipped cycles leave counts bit-identical to cycle-by-cycle stepping.
func (s *Slots) RecordIdleCycles(width int, n int64, votes *Votes) {
	if n <= 0 {
		return
	}
	row := IdleRow(width, votes)
	for i := int64(0); i < n; i++ {
		s.AddRow(&row)
	}
}

// AdvanceCycle notes that one machine cycle elapsed (call once per
// cycle, not per cluster).
func (s *Slots) AdvanceCycle() { s.Cycles++ }

// AdvanceCycles notes that n machine cycles elapsed at once (the
// event-driven fast-forward path).
func (s *Slots) AdvanceCycles(n int64) { s.Cycles += n }

// Merge folds other into s (for aggregating parallel sub-runs; cycles
// take the max since sub-machines run in lockstep).
func (s *Slots) Merge(other *Slots) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	if other.Cycles > s.Cycles {
		s.Cycles = other.Cycles
	}
}

// TotalSlots returns the sum over all categories; it equals
// width_total × cycles by construction (asserted in tests).
func (s *Slots) TotalSlots() float64 {
	t := 0.0
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Fraction returns category c's share of all slots, in [0,1]. It
// recomputes the total on every call; loops over all categories should
// use Fractions or FractionOf with a hoisted TotalSlots instead.
func (s *Slots) Fraction(c Category) float64 {
	return s.FractionOf(c, s.TotalSlots())
}

// FractionOf returns category c's share of the given total — the
// cached-total variant of Fraction for render loops that already hold
// TotalSlots.
func (s *Slots) FractionOf(c Category, total float64) float64 {
	if total == 0 {
		return 0
	}
	return s.Counts[c] / total
}

// Fractions returns every category's share of all slots in one pass,
// summing the total once instead of once per category.
func (s *Slots) Fractions() (f [NumCategories]float64) {
	t := s.TotalSlots()
	if t == 0 {
		return f
	}
	for c := range f {
		f[c] = s.Counts[c] / t
	}
	return f
}

// String renders a one-line percentage breakdown.
func (s *Slots) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d", s.Cycles)
	fr := s.Fractions()
	for c := Category(0); c < NumCategories; c++ {
		fmt.Fprintf(&b, " %s=%.1f%%", c, 100*fr[c])
	}
	return b.String()
}
