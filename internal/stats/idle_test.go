package stats

import (
	"testing"
	"testing/quick"
)

func TestRecordCycleOverIssuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("issued > width did not panic")
		}
	}()
	var s Slots
	var v Votes
	s.RecordCycle(4, 5, &v)
}

// TestRecordIdleCyclesBitIdentical is the contract RecordIdleCycles
// exists for: starting from an arbitrary accumulated state, the bulk
// call must leave Counts bit-identical (==, not approximately equal) to
// n individual zero-issue RecordCycle calls, because float addition is
// not associative and the event-driven fast-forward promises exact
// replay.
func TestRecordIdleCyclesBitIdentical(t *testing.T) {
	check := func(seedUseful, seedFetch float64, v3, v5, v7 uint8, width8, n16 uint16) bool {
		width := int(width8%8) + 1
		n := int64(n16%2048) + 1
		votes := Votes{}
		votes[Sync] = float64(v3 % 4)
		votes[Data] = float64(v5 % 4)
		votes[Memory] = float64(v7 % 4)

		a := Slots{}
		a.Counts[Useful] = seedUseful
		a.Counts[Fetch] = seedFetch
		b := a

		for i := int64(0); i < n; i++ {
			a.RecordCycle(width, 0, &votes)
			a.AdvanceCycle()
		}
		b.RecordIdleCycles(width, n, &votes)
		b.AdvanceCycles(n)

		return a == b
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordIdleCyclesNoVotesFallsToFetch(t *testing.T) {
	var v Votes
	var s Slots
	s.RecordIdleCycles(4, 3, &v)
	if s.Counts[Fetch] != 12 {
		t.Fatalf("Fetch = %v, want 12", s.Counts[Fetch])
	}
}

func TestRecordIdleCyclesZeroOrNegativeIsNoop(t *testing.T) {
	v := Votes{}
	v[Sync] = 1
	var s Slots
	s.RecordIdleCycles(4, 0, &v)
	s.RecordIdleCycles(4, -3, &v)
	if s != (Slots{}) {
		t.Fatalf("n<=0 mutated the tally: %+v", s)
	}
}

func TestAdvanceCycles(t *testing.T) {
	var s Slots
	s.AdvanceCycle()
	s.AdvanceCycles(41)
	if s.Cycles != 42 {
		t.Fatalf("Cycles = %d, want 42", s.Cycles)
	}
}
