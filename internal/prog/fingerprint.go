package prog

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// fingerprintVersion is folded into every program hash so the hash
// changes if the encoding below ever does.
const fingerprintVersion = "clustersmt.Program/v1"

// Fingerprint returns a hash over everything about the program that can
// influence execution: the full code image, the entry PC, the data
// segment bound (which places thread stacks) and the initial memory
// image. The name and symbol table are deliberately excluded — two
// programs that differ only in labels behave identically.
func (p *Program) Fingerprint() [32]byte {
	return p.hashCode(len(p.Code))
}

// PrefixKey returns a hash identifying the program's warm-up prefix:
// the first PrefixLen code slots plus the entry PC, data bound and full
// initial memory image. Two programs with equal PrefixKeys execute
// identically for as long as no PC at or beyond the prefix has been
// fetched or peeked (the simulator tracks that bound as its PC high
// water mark). ok is false when no prefix was declared.
func (p *Program) PrefixKey() (key [32]byte, ok bool) {
	if p.PrefixLen <= 0 || p.PrefixLen > len(p.Code) {
		return key, false
	}
	return p.hashCode(p.PrefixLen), true
}

func (p *Program) hashCode(n int) [32]byte {
	h := sha256.New()
	var scratch [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	h.Write([]byte(fingerprintVersion))
	w64(uint64(n))
	for _, in := range p.Code[:n] {
		h.Write([]byte{byte(in.Op), byte(in.RD), byte(in.RS1), byte(in.RS2),
			byte(in.FD), byte(in.FS1), byte(in.FS2)})
		w64(uint64(in.Imm))
	}
	w64(uint64(p.Entry))
	w64(uint64(p.DataEnd))
	addrs := make([]int64, 0, len(p.Init))
	for a := range p.Init {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w64(uint64(len(addrs)))
	for _, a := range addrs {
		w64(uint64(a))
		w64(p.Init[a])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// hashCode covers every isa.Instr field; adding a field to isa.Instr
// must extend the loop above and bump fingerprintVersion.
