// Package prog provides the static program representation consumed by
// the functional front end, plus an assembler-style Builder used by the
// workload kernels to author programs in the clustersmt ISA.
//
// Memory model: a single flat byte-addressed shared address space with
// 8-byte words. The builder lays out global arrays from DataBase upward;
// per-thread stacks are carved by the parallel runtime above the data
// segment. Absolute addressing of globals uses r0 (hard-wired zero) as
// the base register with the symbol's address as the displacement.
package prog

import (
	"fmt"
	"math"
	"sort"

	"clustersmt/internal/isa"
)

// WordSize is the size in bytes of the machine word (and of every memory
// access in the ISA).
const WordSize = 8

// DataBase is the first address of the global data segment. The zero
// page is kept unmapped so that stray null-base accesses are easy to
// spot in tests; the builder's constant pool also lives above this base.
const DataBase = 0x1_0000

// Symbol describes one named object in the data segment.
type Symbol struct {
	Name string
	Addr int64 // byte address of the first word
	Size int64 // size in bytes
}

// Program is an assembled, validated program image.
type Program struct {
	Name    string
	Code    []isa.Instr
	Entry   int64             // PC of the first instruction each thread executes
	DataEnd int64             // first byte past the data segment
	Symbols map[string]Symbol // global objects by name
	Init    map[int64]uint64  // initial memory image (word addr -> bits)

	// PrefixLen, when non-zero, marks the first PrefixLen code slots as a
	// warm-up prefix: a region the workload promises is identical across a
	// family of config variants (see Builder.MarkPrefix). Checkpoints taken
	// while execution has only consumed prefix code may be restored under
	// any program with an equal PrefixKey. Zero means no prefix declared.
	PrefixLen int
}

// SymbolAddr returns the address of a named global. It panics if the
// symbol does not exist: workloads reference symbols they declared, so a
// miss is always a programming error.
func (p *Program) SymbolAddr(name string) int64 {
	s, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("prog: unknown symbol %q", name))
	}
	return s.Addr
}

// Len returns the number of static instructions.
func (p *Program) Len() int { return len(p.Code) }

// Disassemble renders the whole program, one instruction per line, with
// PCs; intended for debugging and golden tests.
func (p *Program) Disassemble() string {
	out := ""
	for pc, in := range p.Code {
		out += fmt.Sprintf("%5d: %s\n", pc, in.String())
	}
	return out
}

type fixup struct {
	pc    int // instruction index needing patching
	label string
}

// Builder assembles a Program. All emit methods append one instruction;
// control flow uses string labels resolved at Build time. Builder
// methods panic on misuse (unknown label at Build, register out of
// range) because kernels are authored statically in this repository.
type Builder struct {
	name    string
	code    []isa.Instr
	labels  map[string]int
	fixups  []fixup
	symbols map[string]Symbol
	next    int64 // next free data address
	init    map[int64]uint64
	pool    map[uint64]int64 // constant pool: bits -> address
	prefix  int              // PrefixLen of the built program (0 = none)
	seq     int              // unique-label counter (see Seq)
	errs    []error
}

// Seq returns a fresh per-builder sequence number for generated label
// names. Per-builder (not package-global) so concurrent builds — e.g.
// two daemons in one test process simulating different apps at once —
// never share state: label names depend only on this program's own
// emission order.
func (b *Builder) Seq() int {
	b.seq++
	return b.seq
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		symbols: make(map[string]Symbol),
		next:    DataBase,
		init:    make(map[int64]uint64),
		pool:    make(map[uint64]int64),
	}
}

// PC returns the index of the next instruction to be emitted.
func (b *Builder) PC() int { return len(b.code) }

// MarkPrefix records the current PC as the end of the program's warm-up
// prefix: every instruction emitted so far becomes part of the prefix
// hashed by Program.PrefixKey. Call it once, after emitting the code
// that is shared verbatim across config variants (typically ending in a
// barrier) and before any variant-specific code.
func (b *Builder) MarkPrefix() {
	if b.prefix != 0 {
		b.errs = append(b.errs, fmt.Errorf("prog: %s: MarkPrefix called twice", b.name))
		return
	}
	if len(b.code) == 0 {
		b.errs = append(b.errs, fmt.Errorf("prog: %s: MarkPrefix on empty prefix", b.name))
		return
	}
	b.prefix = len(b.code)
}

// Global reserves words 8-byte words of zero-initialized global storage
// and returns its base address.
func (b *Builder) Global(name string, words int64) int64 {
	if _, dup := b.symbols[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("prog: duplicate symbol %q", name))
	}
	addr := b.next
	b.symbols[name] = Symbol{Name: name, Addr: addr, Size: words * WordSize}
	b.next += words * WordSize
	return addr
}

// MustAddr returns the address of an already-declared global, panicking
// on unknown names (kernel-authoring convenience).
func (b *Builder) MustAddr(name string) int64 {
	s, ok := b.symbols[name]
	if !ok {
		panic(fmt.Sprintf("prog: %s: unknown symbol %q", b.name, name))
	}
	return s.Addr
}

// GlobalFloats reserves a global array and fills it with the given
// float64 values.
func (b *Builder) GlobalFloats(name string, vals []float64) int64 {
	addr := b.Global(name, int64(len(vals)))
	for i, v := range vals {
		b.init[addr+int64(i)*WordSize] = math.Float64bits(v)
	}
	return addr
}

// GlobalWords reserves a global array initialized with the given words.
func (b *Builder) GlobalWords(name string, vals []uint64) int64 {
	addr := b.Global(name, int64(len(vals)))
	for i, v := range vals {
		b.init[addr+int64(i)*WordSize] = v
	}
	return addr
}

// floatConst interns a float64 in the constant pool and returns its
// address.
func (b *Builder) floatConst(v float64) int64 {
	bits := math.Float64bits(v)
	if a, ok := b.pool[bits]; ok {
		return a
	}
	a := b.next
	b.next += WordSize
	b.init[a] = bits
	b.pool[bits] = a
	return a
}

// Label binds name to the next emitted instruction.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("prog: duplicate label %q", name))
	}
	b.labels[name] = len(b.code)
}

func (b *Builder) emit(in isa.Instr) {
	b.code = append(b.code, in)
}

func (b *Builder) emitBranch(in isa.Instr, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	b.code = append(b.code, in)
}

// --- three-register ALU ops ---

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpAdd, RD: rd, RS1: rs1, RS2: rs2})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpSub, RD: rd, RS1: rs1, RS2: rs2})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpAnd, RD: rd, RS1: rs1, RS2: rs2})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpOr, RD: rd, RS1: rs1, RS2: rs2})
}

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpXor, RD: rd, RS1: rs1, RS2: rs2})
}

// Slt emits rd = (rs1 < rs2), signed.
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpSlt, RD: rd, RS1: rs1, RS2: rs2})
}

// Shl emits rd = rs1 << rs2.
func (b *Builder) Shl(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpShl, RD: rd, RS1: rs1, RS2: rs2})
}

// Shr emits rd = rs1 >> rs2 (logical).
func (b *Builder) Shr(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpShr, RD: rd, RS1: rs1, RS2: rs2})
}

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpMul, RD: rd, RS1: rs1, RS2: rs2})
}

// Div emits rd = rs1 / rs2 (0 if rs2 == 0).
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpDiv, RD: rd, RS1: rs1, RS2: rs2})
}

// Rem emits rd = rs1 % rs2 (0 if rs2 == 0).
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpRem, RD: rd, RS1: rs1, RS2: rs2})
}

// --- immediate ALU ops ---

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpAddi, RD: rd, RS1: rs1, Imm: imm})
}

// Slti emits rd = (rs1 < imm), signed.
func (b *Builder) Slti(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpSlti, RD: rd, RS1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpAndi, RD: rd, RS1: rs1, Imm: imm})
}

// Shli emits rd = rs1 << imm.
func (b *Builder) Shli(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpShli, RD: rd, RS1: rs1, Imm: imm})
}

// Shri emits rd = rs1 >> imm (logical).
func (b *Builder) Shri(rd, rs1 isa.Reg, imm int64) {
	b.emit(isa.Instr{Op: isa.OpShri, RD: rd, RS1: rs1, Imm: imm})
}

// Li loads the 64-bit constant v into rd (assembled as addi rd, r0, v;
// the ISA carries full-width immediates, standing in for the lui/ori
// pair a narrow-immediate machine would use).
func (b *Builder) Li(rd isa.Reg, v int64) { b.Addi(rd, isa.RegZero, v) }

// Mov copies rs into rd.
func (b *Builder) Mov(rd, rs isa.Reg) { b.Addi(rd, rs, 0) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(isa.Instr{Op: isa.OpNop}) }

// --- memory ---

// Ld emits rd = mem[rs1 + disp].
func (b *Builder) Ld(rd, rs1 isa.Reg, disp int64) {
	b.emit(isa.Instr{Op: isa.OpLd, RD: rd, RS1: rs1, Imm: disp})
}

// St emits mem[rs1 + disp] = rs2.
func (b *Builder) St(rs2, rs1 isa.Reg, disp int64) {
	b.emit(isa.Instr{Op: isa.OpSt, RS2: rs2, RS1: rs1, Imm: disp})
}

// Ldf emits fd = mem[rs1 + disp].
func (b *Builder) Ldf(fd, rs1 isa.Reg, disp int64) {
	b.emit(isa.Instr{Op: isa.OpLdf, FD: fd, RS1: rs1, Imm: disp})
}

// Stf emits mem[rs1 + disp] = fs2.
func (b *Builder) Stf(fs2, rs1 isa.Reg, disp int64) {
	b.emit(isa.Instr{Op: isa.OpStf, FS2: fs2, RS1: rs1, Imm: disp})
}

// Swap emits the atomic exchange rd = mem[rs1+disp]; mem[rs1+disp] = rs2.
func (b *Builder) Swap(rd, rs1, rs2 isa.Reg, disp int64) {
	b.emit(isa.Instr{Op: isa.OpSwap, RD: rd, RS1: rs1, RS2: rs2, Imm: disp})
}

// --- floating point ---

// Fadd emits fd = fs1 + fs2.
func (b *Builder) Fadd(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpFadd, FD: fd, FS1: fs1, FS2: fs2})
}

// Fsub emits fd = fs1 - fs2.
func (b *Builder) Fsub(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpFsub, FD: fd, FS1: fs1, FS2: fs2})
}

// Fmul emits fd = fs1 * fs2.
func (b *Builder) Fmul(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpFmul, FD: fd, FS1: fs1, FS2: fs2})
}

// Fdiv emits fd = fs1 / fs2.
func (b *Builder) Fdiv(fd, fs1, fs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpFdiv, FD: fd, FS1: fs1, FS2: fs2})
}

// Fneg emits fd = -fs1.
func (b *Builder) Fneg(fd, fs1 isa.Reg) { b.emit(isa.Instr{Op: isa.OpFneg, FD: fd, FS1: fs1}) }

// Fmov emits fd = fs1.
func (b *Builder) Fmov(fd, fs1 isa.Reg) { b.emit(isa.Instr{Op: isa.OpFmov, FD: fd, FS1: fs1}) }

// Fcvt emits fd = float64(rs1).
func (b *Builder) Fcvt(fd, rs1 isa.Reg) { b.emit(isa.Instr{Op: isa.OpFcvt, FD: fd, RS1: rs1}) }

// Fcmp emits rd = (fs1 < fs2).
func (b *Builder) Fcmp(rd, fs1, fs2 isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpFcmp, RD: rd, FS1: fs1, FS2: fs2})
}

// Fli loads the float64 constant v into fd by interning it in the
// constant pool and emitting an absolute-addressed ldf.
func (b *Builder) Fli(fd isa.Reg, v float64) {
	b.Ldf(fd, isa.RegZero, b.floatConst(v))
}

// --- control flow ---

// Beq emits a branch to label when rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) {
	b.emitBranch(isa.Instr{Op: isa.OpBeq, RS1: rs1, RS2: rs2}, label)
}

// Bne emits a branch to label when rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) {
	b.emitBranch(isa.Instr{Op: isa.OpBne, RS1: rs1, RS2: rs2}, label)
}

// Blt emits a branch to label when rs1 < rs2 (signed).
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) {
	b.emitBranch(isa.Instr{Op: isa.OpBlt, RS1: rs1, RS2: rs2}, label)
}

// Bge emits a branch to label when rs1 >= rs2 (signed).
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) {
	b.emitBranch(isa.Instr{Op: isa.OpBge, RS1: rs1, RS2: rs2}, label)
}

// Jump emits an unconditional jump to label.
func (b *Builder) Jump(label string) {
	b.emitBranch(isa.Instr{Op: isa.OpJump}, label)
}

// Jal emits a call: rd = return PC, jump to label.
func (b *Builder) Jal(rd isa.Reg, label string) {
	b.emitBranch(isa.Instr{Op: isa.OpJal, RD: rd}, label)
}

// Jr emits an indirect jump to the address in rs1.
func (b *Builder) Jr(rs1 isa.Reg) { b.emit(isa.Instr{Op: isa.OpJr, RS1: rs1}) }

// --- synchronization & termination ---

// Lock emits an acquire of lock id.
func (b *Builder) Lock(id int64) { b.emit(isa.Instr{Op: isa.OpLock, Imm: id}) }

// Unlock emits a release of lock id.
func (b *Builder) Unlock(id int64) { b.emit(isa.Instr{Op: isa.OpUnlock, Imm: id}) }

// Barrier emits a wait on barrier id.
func (b *Builder) Barrier(id int64) { b.emit(isa.Instr{Op: isa.OpBarrier, Imm: id}) }

// Halt terminates the thread.
func (b *Builder) Halt() { b.emit(isa.Instr{Op: isa.OpHalt}) }

// --- structured helpers ---

// CountedLoop emits `for ; idx < bound; idx++ { body }`, with idx and
// bound live registers. The loop test is at the bottom (one conditional
// branch per iteration); a top guard skips empty loops.
func (b *Builder) CountedLoop(idx, bound isa.Reg, body func()) {
	n := b.Seq()
	top := fmt.Sprintf(".L%d_top", n)
	done := fmt.Sprintf(".L%d_done", n)
	b.Bge(idx, bound, done)
	b.Label(top)
	body()
	b.Addi(idx, idx, 1)
	b.Blt(idx, bound, top)
	b.Label(done)
}

// SteppedLoop is CountedLoop with a stride other than 1.
func (b *Builder) SteppedLoop(idx, bound isa.Reg, step int64, body func()) {
	n := b.Seq()
	top := fmt.Sprintf(".L%d_top", n)
	done := fmt.Sprintf(".L%d_done", n)
	b.Bge(idx, bound, done)
	b.Label(top)
	body()
	b.Addi(idx, idx, step)
	b.Blt(idx, bound, top)
	b.Label(done)
}

// IfThread0 emits body only for thread 0 (all other threads branch
// around it). Used for serial sections.
func (b *Builder) IfThread0(body func()) {
	skip := fmt.Sprintf(".L%d_skip", b.Seq())
	b.Bne(isa.RegTID, isa.RegZero, skip)
	body()
	b.Label(skip)
}

// Build resolves labels, patches branch displacements, validates every
// instruction and returns the immutable Program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	code := make([]isa.Instr, len(b.code))
	copy(code, b.code)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("prog: %s: undefined label %q", b.name, f.label)
		}
		// Branch displacement semantics: target PC = branch PC + Imm.
		code[f.pc].Imm = int64(target - f.pc)
	}
	for pc, in := range code {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("prog: %s: pc %d: %w", b.name, pc, err)
		}
	}
	if len(code) == 0 || code[len(code)-1].Op != isa.OpHalt {
		return nil, fmt.Errorf("prog: %s: program must end with halt", b.name)
	}
	init := make(map[int64]uint64, len(b.init))
	for k, v := range b.init {
		init[k] = v
	}
	syms := make(map[string]Symbol, len(b.symbols))
	for k, v := range b.symbols {
		syms[k] = v
	}
	return &Program{
		Name:      b.name,
		Code:      code,
		Entry:     0,
		DataEnd:   b.next,
		Symbols:   syms,
		Init:      init,
		PrefixLen: b.prefix,
	}, nil
}

// MustBuild is Build but panics on error; for statically authored
// kernels whose correctness is covered by tests.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// SymbolsSorted returns the program's symbols ordered by address, for
// stable diagnostics output.
func (p *Program) SymbolsSorted() []Symbol {
	out := make([]Symbol, 0, len(p.Symbols))
	for _, s := range p.Symbols {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
