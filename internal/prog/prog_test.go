package prog

import (
	"strings"
	"testing"

	"clustersmt/internal/isa"
)

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t")
	b.Li(1, 3)         // pc 0
	b.Label("top")     // pc 1
	b.Addi(1, 1, -1)   // pc 1
	b.Bne(1, 0, "top") // pc 2: branch back to 1
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	br := p.Code[2]
	if br.Op != isa.OpBne {
		t.Fatalf("pc 2 op = %v", br.Op)
	}
	if got := int64(2) + br.Imm; got != 1 {
		t.Fatalf("branch target = %d, want 1", got)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := NewBuilder("t")
	b.Jump("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("want undefined-label error, got %v", err)
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Nop()
	b.Label("x")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("want duplicate-label error")
	}
}

func TestMissingHaltFails(t *testing.T) {
	b := NewBuilder("t")
	b.Nop()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "halt") {
		t.Fatalf("want missing-halt error, got %v", err)
	}
}

func TestGlobalLayout(t *testing.T) {
	b := NewBuilder("t")
	a1 := b.Global("a", 4)
	a2 := b.Global("b", 2)
	if a1 != DataBase {
		t.Errorf("first global at %#x, want %#x", a1, DataBase)
	}
	if a2 != DataBase+4*WordSize {
		t.Errorf("second global at %#x, want %#x", a2, DataBase+4*WordSize)
	}
	b.Halt()
	p := b.MustBuild()
	if p.SymbolAddr("a") != a1 || p.SymbolAddr("b") != a2 {
		t.Error("symbol addresses do not round-trip")
	}
	if p.DataEnd != a2+2*WordSize {
		t.Errorf("DataEnd = %#x, want %#x", p.DataEnd, a2+2*WordSize)
	}
}

func TestDuplicateGlobalFails(t *testing.T) {
	b := NewBuilder("t")
	b.Global("a", 1)
	b.Global("a", 1)
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("want duplicate-symbol error")
	}
}

func TestGlobalFloatsInit(t *testing.T) {
	b := NewBuilder("t")
	addr := b.GlobalFloats("v", []float64{1.5, -2.25})
	b.Halt()
	p := b.MustBuild()
	if len(p.Init) != 2 {
		t.Fatalf("init words = %d, want 2", len(p.Init))
	}
	if _, ok := p.Init[addr]; !ok {
		t.Error("first element not initialized")
	}
}

func TestFliInternsConstants(t *testing.T) {
	b := NewBuilder("t")
	b.Fli(1, 3.25)
	b.Fli(2, 3.25)
	b.Fli(3, 4.5)
	b.Halt()
	p := b.MustBuild()
	// Two distinct constants -> two pool words.
	if len(p.Init) != 2 {
		t.Fatalf("pool words = %d, want 2", len(p.Init))
	}
	if p.Code[0].Imm != p.Code[1].Imm {
		t.Error("same constant not interned to same address")
	}
	if p.Code[0].Imm == p.Code[2].Imm {
		t.Error("distinct constants share an address")
	}
}

func TestCountedLoopShape(t *testing.T) {
	b := NewBuilder("t")
	b.Li(1, 0)
	b.Li(2, 5)
	body := 0
	b.CountedLoop(1, 2, func() {
		body = b.PC()
		b.Nop()
	})
	b.Halt()
	p := b.MustBuild()
	if body == 0 {
		t.Fatal("body never emitted")
	}
	// Structure: guard bge, body, addi, blt.
	if p.Code[2].Op != isa.OpBge {
		t.Errorf("guard op = %v, want bge", p.Code[2].Op)
	}
	last := p.Code[len(p.Code)-2]
	if last.Op != isa.OpBlt {
		t.Errorf("backedge op = %v, want blt", last.Op)
	}
}

func TestIfThread0Shape(t *testing.T) {
	b := NewBuilder("t")
	b.IfThread0(func() { b.Nop() })
	b.Halt()
	p := b.MustBuild()
	if p.Code[0].Op != isa.OpBne || p.Code[0].RS1 != isa.RegTID {
		t.Fatalf("guard = %v", p.Code[0])
	}
	if got := int64(0) + p.Code[0].Imm; got != 2 {
		t.Fatalf("skip target = %d, want 2", got)
	}
}

func TestDisassembleContainsEveryPC(t *testing.T) {
	b := NewBuilder("t")
	b.Li(1, 1)
	b.Add(2, 1, 1)
	b.Halt()
	p := b.MustBuild()
	dis := p.Disassemble()
	if strings.Count(dis, "\n") != 3 {
		t.Fatalf("disassembly lines = %d, want 3:\n%s", strings.Count(dis, "\n"), dis)
	}
}

func TestSymbolsSorted(t *testing.T) {
	b := NewBuilder("t")
	b.Global("z", 1)
	b.Global("a", 1)
	b.Halt()
	p := b.MustBuild()
	ss := p.SymbolsSorted()
	if len(ss) != 2 || ss[0].Name != "z" || ss[1].Name != "a" {
		t.Fatalf("sorted order wrong: %+v", ss)
	}
}

// TestGoldenDisassembly pins the disassembler's exact rendering for a
// program touching every syntax class.
func TestGoldenDisassembly(t *testing.T) {
	b := NewBuilder("golden")
	a := b.Global("arr", 2)
	b.Li(1, 5)         // addi
	b.Add(2, 1, 1)     // three-reg
	b.Ld(3, 1, a)      // load
	b.St(3, 1, a)      // store
	b.Fli(1, 2.5)      // ldf from pool
	b.Stf(1, 0, a)     // fp store
	b.Fadd(2, 1, 1)    // fp three-reg
	b.Fcmp(4, 1, 2)    // fp compare
	b.Beq(1, 2, "end") // cond branch
	b.Jal(31, "end")   // call
	b.Jr(31)           // indirect
	b.Lock(3)          // sync
	b.Unlock(3)
	b.Barrier(1)
	b.Label("end")
	b.Halt()
	p := b.MustBuild()

	want := `    0: addi r1, r0, 5
    1: add r2, r1, r1
    2: ld r3, 65536(r1)
    3: st r3, 65536(r1)
    4: ldf f1, 65552(r0)
    5: stf f1, 65536(r0)
    6: fadd f2, f1, f1
    7: fcmp r4, f1, f2
    8: beq r1, r2, +6
    9: jal r31, +5
   10: jr r31
   11: lock #3
   12: unlock #3
   13: barrier #1
   14: halt
`
	if got := p.Disassemble(); got != want {
		t.Errorf("disassembly mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
