package model

import (
	"strings"
	"testing"
	"testing/quick"

	"clustersmt/internal/config"
)

func TestFromArchShapes(t *testing.T) {
	fa2 := FromArch(config.FA2)
	if !fa2.FixedThreads || fa2.MaxThreads != 2 || fa2.ILPCap != 4 || fa2.TotalIssue != 8 {
		t.Fatalf("FA2 model = %+v", fa2)
	}
	smt2 := FromArch(config.SMT2)
	if smt2.FixedThreads || smt2.MaxThreads != 8 || smt2.ILPCap != 4 {
		t.Fatalf("SMT2 model = %+v", smt2)
	}
	fa1 := FromArch(config.FA1)
	if !fa1.FixedThreads || fa1.MaxThreads != 1 || fa1.ILPCap != 8 {
		t.Fatalf("FA1 model = %+v", fa1)
	}
	smt1 := FromArch(config.SMT1)
	if smt1.FixedThreads || smt1.ILPCap != 8 || smt1.MaxThreads != 8 {
		t.Fatalf("SMT1 model = %+v", smt1)
	}
}

func TestDeliveredFAvsSMT(t *testing.T) {
	// Figure 1-(c)/(f): the clustered SMT extracts more from the same
	// app than the FA with the same cluster shape.
	app := Point{Threads: 5, ILP: 1.6}
	fa2 := FromArch(config.FA2)
	smt2 := FromArch(config.SMT2)
	dFA := fa2.Delivered(app)   // min(5,2)*min(1.6,4) = 3.2
	dSMT := smt2.Delivered(app) // min(5*1.6, 8) = 8
	if dFA != 2*1.6 {
		t.Fatalf("FA2 delivered = %v", dFA)
	}
	if dSMT != 8 {
		t.Fatalf("SMT2 delivered = %v", dSMT)
	}
	if dSMT <= dFA {
		t.Fatal("SMT must beat FA here")
	}
}

func TestSMTILPCapBites(t *testing.T) {
	// One thread with ILP 6: SMT2 caps at 4, SMT1 exploits 6.
	app := Point{Threads: 1, ILP: 6}
	if d := FromArch(config.SMT2).Delivered(app); d != 4 {
		t.Fatalf("SMT2 delivered = %v, want 4", d)
	}
	if d := FromArch(config.SMT1).Delivered(app); d != 6 {
		t.Fatalf("SMT1 delivered = %v, want 6", d)
	}
}

func TestClassifyRegions(t *testing.T) {
	fa2 := FromArch(config.FA2)
	if r := fa2.Classify(Point{Threads: 1, ILP: 2}); r != RegionAppLimited {
		t.Errorf("small app region = %v", r)
	}
	if r := fa2.Classify(Point{Threads: 4, ILP: 8}); r != RegionOptimal {
		t.Errorf("big app region = %v", r)
	}
	if r := fa2.Classify(Point{Threads: 8, ILP: 1}); r != RegionBothLimited {
		t.Errorf("thready app region = %v", r)
	}
	// SMT2's optimal region is a superset of FA2's (§2 conclusion).
	smt2 := FromArch(config.SMT2)
	if r := smt2.Classify(Point{Threads: 8, ILP: 1}); r != RegionOptimal {
		t.Errorf("SMT2 should fully use 8 ILP-1 threads: %v", r)
	}
}

// Property: §2's conclusion — an SMT's optimal region contains the
// optimal region of the FA with the same cluster shape, so its
// delivered performance is never lower.
func TestSMTOptimalSupersetProperty(t *testing.T) {
	pairs := [][2]config.Arch{
		{config.SMT2, config.FA2},
		{config.SMT4, config.FA4},
		{config.SMT1, config.FA1},
	}
	f := func(tRaw, iRaw uint8) bool {
		p := Point{Threads: float64(tRaw%96) / 8, ILP: float64(iRaw%96) / 8}
		for _, pair := range pairs {
			smt, fa := FromArch(pair[0]), FromArch(pair[1])
			if smt.Delivered(p) < fa.Delivered(p)-1e-9 {
				return false
			}
			if fa.Classify(p) == RegionOptimal && smt.Classify(p) != RegionOptimal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: delivered performance is monotone in both coordinates and
// never exceeds total issue or app demand.
func TestDeliveredBoundsProperty(t *testing.T) {
	procs := make([]Proc, 0, len(config.AllArchs))
	for _, a := range config.AllArchs {
		procs = append(procs, FromArch(a))
	}
	f := func(tRaw, iRaw uint8) bool {
		p := Point{Threads: float64(tRaw % 12), ILP: float64(iRaw % 12)}
		for _, pr := range procs {
			d := pr.Delivered(p)
			if d < 0 || d > pr.TotalIssue+1e-9 || d > p.Demand()+1e-9 {
				return false
			}
			bigger := Point{Threads: p.Threads + 1, ILP: p.ILP + 1}
			if pr.Delivered(bigger) < d-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestOfPredictsSweetSpots(t *testing.T) {
	fas := []Proc{FromArch(config.FA8), FromArch(config.FA4), FromArch(config.FA2), FromArch(config.FA1)}
	// Thready, low-ILP app -> FA8; narrow, high-ILP app -> FA1.
	if best := BestOf(fas, Point{Threads: 7, ILP: 1.3}); best.Name != "FA8" {
		t.Errorf("thready app best = %s", best.Name)
	}
	if best := BestOf(fas, Point{Threads: 1, ILP: 6}); best.Name != "FA1" {
		t.Errorf("serial app best = %s", best.Name)
	}
	if best := BestOf(fas, Point{Threads: 4, ILP: 2.5}); best.Name != "FA4" {
		t.Errorf("middle app best = %s", best.Name)
	}
}

func TestChartRenders(t *testing.T) {
	c := Chart(FromArch(config.SMT2), map[string]Point{"ocean": {Threads: 7, ILP: 1.5}})
	if !strings.Contains(c, "SMT2") || !strings.Contains(c, "O") {
		t.Fatalf("chart missing content:\n%s", c)
	}
	if !strings.Contains(c, "*") {
		t.Fatal("hyperbola missing")
	}
}

func TestRegionStrings(t *testing.T) {
	for _, r := range []Region{RegionAppLimited, RegionOptimal, RegionBothLimited} {
		if r.String() == "" {
			t.Error("empty region string")
		}
	}
}
