// Package model implements the paper's §2 model of parallelism: an
// application is a point (threads, ILP-per-thread); an architecture is
// a region of that plane; delivered performance is the overlap between
// the application's rectangle and what the architecture can exploit.
// The model reproduces Figure 1 and predicts the Figure 4/5 orderings
// qualitatively; Figure 6 places measured applications on the chart.
package model

import (
	"fmt"
	"strings"

	"clustersmt/internal/config"
)

// Point is an application's average operating point: Threads parallel
// flows, each with ILP instructions per cycle of exploitable
// instruction-level parallelism.
type Point struct {
	Threads float64
	ILP     float64
}

// Demand is the application's total performance demand (the area of its
// rectangle).
func (p Point) Demand() float64 { return p.Threads * p.ILP }

// Region classifies the relative position of application and
// architecture (Figure 1-(d) and 1-(g)).
type Region int

// Regions from Figure 1.
const (
	// RegionAppLimited (1): application fully exploited, processor
	// under-utilized — maximum performance for that application.
	RegionAppLimited Region = 1
	// RegionOptimal (2): processor fully utilized; the paper's target
	// operating region.
	RegionOptimal Region = 2
	// RegionBothLimited (3): application under-exploited and processor
	// under-utilized.
	RegionBothLimited Region = 3
)

func (r Region) String() string {
	switch r {
	case RegionAppLimited:
		return "app-limited"
	case RegionOptimal:
		return "optimal"
	case RegionBothLimited:
		return "both-limited"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// Proc is the model's view of a chip organization: TotalIssue is the
// chip issue bandwidth (the area under the hyperbola), MaxThreads how
// many flows it can host, and ILPCap the per-thread ILP ceiling (the
// cluster issue width — the horizontal line of Figure 1-(e)).
//
// An FA organization is the degenerate case where MaxThreads equals the
// cluster count and the rectangle cannot slide: FixedThreads is true.
type Proc struct {
	Name         string
	TotalIssue   float64
	MaxThreads   float64
	ILPCap       float64
	FixedThreads bool
}

// FromArch converts a Table 2 architecture to its model description.
// FA variants pin one thread per cluster; SMT variants slide along the
// hyperbola up to the cluster issue width.
func FromArch(a config.Arch) Proc {
	total := float64(a.Clusters * a.IssueWidth)
	if a.ThreadsPerCluster == 1 && a.Clusters > 1 || a.Name == "FA1" {
		return Proc{
			Name:         a.Name,
			TotalIssue:   total,
			MaxThreads:   float64(a.Clusters),
			ILPCap:       float64(a.IssueWidth),
			FixedThreads: true,
		}
	}
	return Proc{
		Name:       a.Name,
		TotalIssue: total,
		MaxThreads: float64(a.Clusters * a.ThreadsPerCluster),
		ILPCap:     float64(a.IssueWidth),
	}
}

// Delivered returns the performance (in useful issue slots per cycle)
// the model predicts for application p on this processor.
//
// FA(k clusters × w issue): min(T,k) × min(I,w).
// SMT with per-thread cap c and total issue B: min(B, min(T,Tmax) × min(I,c)).
func (pr Proc) Delivered(p Point) float64 {
	t := min(p.Threads, pr.MaxThreads)
	i := min(p.ILP, pr.ILPCap)
	d := t * i
	return min(d, pr.TotalIssue)
}

// Utilization is delivered performance over the chip's issue bandwidth.
func (pr Proc) Utilization(p Point) float64 {
	return pr.Delivered(p) / pr.TotalIssue
}

// Exploited reports whether the application is fully exploited (the
// processor extracts the app's entire demand).
func (pr Proc) Exploited(p Point) bool {
	return pr.Delivered(p) >= p.Demand()-1e-9
}

// Classify returns the Figure 1 region for application p.
func (pr Proc) Classify(p Point) Region {
	full := pr.Delivered(p) >= pr.TotalIssue-1e-9
	switch {
	case full:
		return RegionOptimal
	case pr.Exploited(p):
		return RegionAppLimited
	default:
		return RegionBothLimited
	}
}

// BestOf returns the processor in procs with the highest delivered
// performance for p (first wins ties).
func BestOf(procs []Proc, p Point) Proc {
	best := procs[0]
	bestD := best.Delivered(p)
	for _, pr := range procs[1:] {
		if d := pr.Delivered(p); d > bestD {
			best, bestD = pr, d
		}
	}
	return best
}

// Chart renders an ASCII threads×ILP chart (Figure 1 / Figure 6 style):
// the hyperbola T×I = issue, the ILP cap line of proc, and the given
// labeled application points.
func Chart(pr Proc, apps map[string]Point) string {
	const w, h = 33, 17 // 0..8 threads, 0..8 ILP at 4 cols & 2 rows per unit
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", w))
	}
	plot := func(t, i float64, ch byte) {
		x := int(t * 4)
		y := h - 1 - int(i*2)
		if x >= 0 && x < w && y >= 0 && y < h {
			grid[y][x] = ch
		}
	}
	// Hyperbola t*i = TotalIssue.
	for x := 1; x < w; x++ {
		t := float64(x) / 4
		i := pr.TotalIssue / t
		plot(t, i, '*')
	}
	// ILP cap line.
	for x := 0; x < w; x++ {
		plot(float64(x)/4, pr.ILPCap, '-')
	}
	for name, p := range apps {
		plot(p.Threads, p.ILP, name[0]&^0x20) // first letter, upper case
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: issue=%g, threads<=%g, ILP cap=%g\n", pr.Name, pr.TotalIssue, pr.MaxThreads, pr.ILPCap)
	b.WriteString("ILP\n")
	for y := 0; y < h; y++ {
		if (h-1-y)%2 == 0 {
			fmt.Fprintf(&b, "%2d |%s\n", (h-1-y)/2, string(grid[y]))
		} else {
			fmt.Fprintf(&b, "   |%s\n", string(grid[y]))
		}
	}
	b.WriteString("   +" + strings.Repeat("-", w) + "\n")
	b.WriteString("    0   1   2   3   4   5   6   7   8  threads\n")
	return b.String()
}
