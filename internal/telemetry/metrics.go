// Package telemetry is the service-side observability layer: a
// dependency-free metrics registry (counters, gauges, log-bucketed
// latency histograms with quantile estimation) rendered as
// OpenMetrics/Prometheus text, plus trace-ID propagation helpers and a
// bounded span ring exported as Chrome trace_event JSON (trace.go).
//
// It complements internal/obs, which observes the *simulated* machine
// (cycle-domain interval frames); this package observes the *serving*
// system around it (wall-clock latencies, queue depths, fleet health).
// Like obs, it is strictly read-only with respect to results: nothing
// here reaches the simulator, and the service differential test pins
// that simulation output is bit-identical with telemetry on or off.
//
// Concurrency: every metric is safe for concurrent use (atomics), and
// WriteOpenMetrics may run concurrently with any number of writers —
// a scrape sees each sample at some point-in-time value, monotonically
// consistent for counters.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the OpenMetrics family type.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "unknown"
}

// CollectorFunc emits samples at scrape time — the hook func-backed
// families use to read live state (pool depths, fleet membership)
// without double bookkeeping. labelValues must match the family's
// label names in length and order.
type CollectorFunc func(emit func(labelValues []string, value float64))

// family is one metric family: a name, help text, a type, and either
// materialized children (one per label-value combination) or a
// collector consulted at scrape time.
type family struct {
	name       string
	help       string
	typ        MetricType
	labelNames []string
	buckets    []float64 // histogram families only

	mu       sync.Mutex
	children map[string]any // label-values key -> *Counter | *Gauge | *Histogram
	collect  CollectorFunc  // non-nil for func-backed families
}

// Registry holds metric families and renders them as OpenMetrics text.
// The zero value is not usable — construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName is the Prometheus metric/label name grammar (':' excluded:
// it is reserved for recording rules, which this registry never emits).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// register creates a family, panicking on duplicate or invalid names —
// both are programming errors caught by the first scrape test.
func (r *Registry) register(name, help string, typ MetricType, labelNames []string, buckets []float64, collect CollectorFunc) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if typ == TypeCounter && strings.HasSuffix(name, "_total") {
		// The exposition appends _total to counter samples; a family
		// registered with the suffix would render name_total_total.
		panic(fmt.Sprintf("telemetry: counter %q must not end in _total", name))
	}
	for _, l := range labelNames {
		if !validName(l) || l == "le" {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %q", l, name))
		}
	}
	if typ == TypeHistogram {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("telemetry: histogram %q needs buckets", name))
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not sorted", name))
		}
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelNames: labelNames, buckets: buckets,
		children: make(map[string]any), collect: collect,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.families[name] = f
	return f
}

// child returns (creating on first use) the metric for one label-value
// combination.
func (f *family) child(labelValues []string, make func() any) any {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = make()
		f.children[key] = c
	}
	return c
}

// ---- counter ----

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, TypeCounter, nil, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, labelNames, nil, nil)}
}

// With returns the counter for one label-value combination.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() any { return &Counter{} }).(*Counter)
}

// ---- gauge ----

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, TypeGauge, nil, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, TypeGauge, labelNames, nil, nil)}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() any { return &Gauge{} }).(*Gauge)
}

// ---- func-backed families ----

// CounterFunc registers a counter whose value is read at scrape time —
// for mirroring counters the service already maintains (pool accepted/
// rejected totals) without double bookkeeping. fn must be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeCounter, nil, nil,
		func(emit func([]string, float64)) { emit(nil, fn()) })
}

// GaugeFunc registers a gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, nil, nil,
		func(emit func([]string, float64)) { emit(nil, fn()) })
}

// CollectFunc registers a family whose full sample set (including its
// label values) is produced at scrape time — the shape dynamic label
// sets need: per-member fleet gauges, per-peer probe counters. typ must
// be TypeCounter or TypeGauge.
func (r *Registry) CollectFunc(name, help string, typ MetricType, labelNames []string, fn CollectorFunc) {
	if typ == TypeHistogram {
		panic("telemetry: CollectFunc does not support histograms")
	}
	r.register(name, help, typ, labelNames, nil, fn)
}

// ---- histogram ----

// Histogram counts observations into cumulative le-buckets — the
// latency-distribution primitive behind every *_seconds metric. Bucket
// upper bounds are fixed at registration (use ExpBuckets for the
// log-spaced layout); observations beyond the last bound land in the
// implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64   // float64 bits, CAS-accumulated
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: its le-bucket
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot copies the per-bucket counts (non-cumulative).
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts: the bucket holding the target rank bounds the true value, and
// the estimate interpolates linearly within it. The error is therefore
// bounded by the bucket width — with ExpBuckets' factor-2 layout, at
// most 2x — which the property test pins. Returns NaN when empty; the
// +Inf bucket reports its lower bound (the last finite bound).
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		if cum+c < rank {
			cum += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i == len(h.bounds) { // +Inf bucket: no upper bound to interpolate to
			return lo
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*(float64(rank-cum)/float64(c))
	}
	return h.bounds[len(h.bounds)-1] // unreachable: rank <= total
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start: start, start*factor, ... — the log-bucketed layout latency
// histograms use.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets spans 100µs to ~52s in factor-2 steps — wide
// enough for cache hits (microseconds) and ref-size simulations
// (minutes land in +Inf) on one scale.
var DefaultLatencyBuckets = ExpBuckets(100e-6, 2, 20)

// Histogram registers an unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, TypeHistogram, nil, buckets, nil)
	return f.child(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family with the given label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, TypeHistogram, labelNames, buckets, nil)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// ---- exposition ----

// fmtFloat renders a sample value: shortest round-trip form, +Inf as
// OpenMetrics spells it.
func fmtFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// labelString renders {k="v",...} for the given names/values, with an
// optional extra le pair appended (histogram buckets). Empty when there
// are no labels at all.
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, labelEscaper.Replace(values[i]))
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `le="%s"`, le)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteOpenMetrics renders every family in name order: # HELP and
// # TYPE metadata, the samples (counters with the _total suffix,
// histograms as cumulative _bucket/_sum/_count), and the terminating
// # EOF line the OpenMetrics format requires.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, helpEscaper.Replace(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		if f.collect != nil {
			f.writeCollected(&b)
			continue
		}
		f.writeChildren(&b)
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeCollected renders a func-backed family's scrape-time samples.
func (f *family) writeCollected(b *strings.Builder) {
	type sample struct {
		labels string
		value  float64
	}
	var samples []sample
	f.collect(func(labelValues []string, v float64) {
		if len(labelValues) != len(f.labelNames) {
			panic(fmt.Sprintf("telemetry: %q collector emitted %d label values, want %d",
				f.name, len(labelValues), len(f.labelNames)))
		}
		samples = append(samples, sample{labelString(f.labelNames, labelValues, ""), v})
	})
	sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
	suffix := ""
	if f.typ == TypeCounter {
		suffix = "_total"
	}
	for _, s := range samples {
		fmt.Fprintf(b, "%s%s%s %s\n", f.name, suffix, s.labels, fmtFloat(s.value))
	}
}

// writeChildren renders a materialized family's children in sorted
// label order.
func (f *family) writeChildren(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]any, len(keys))
	for i, k := range keys {
		kids[i] = f.children[k]
	}
	f.mu.Unlock()

	for i, k := range keys {
		var values []string
		if k != "" || len(f.labelNames) > 0 {
			values = strings.Split(k, "\xff")
		}
		labels := labelString(f.labelNames, values, "")
		switch c := kids[i].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s_total%s %d\n", f.name, labels, c.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labels, fmtFloat(c.Value()))
		case *Histogram:
			counts := c.snapshot()
			var cum uint64
			for bi, bound := range c.bounds {
				cum += counts[bi]
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, values, fmtFloat(bound)), cum)
			}
			cum += counts[len(c.bounds)]
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labelNames, values, "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labels, fmtFloat(c.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labels, cum)
		}
	}
}

// ContentType is the exposition Content-Type served by Handler.
const ContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler serves the registry as an OpenMetrics scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WriteOpenMetrics(w)
	})
}
