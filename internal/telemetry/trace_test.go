package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if !ValidTraceID(id) {
		t.Fatalf("NewTraceID returned invalid id %q", id)
	}
	if id2 := NewTraceID(); id2 == id {
		t.Fatal("two trace IDs collided")
	}
	ctx := WithTraceID(context.Background(), id)
	if got := TraceIDFrom(ctx); got != id {
		t.Fatalf("TraceIDFrom = %q, want %q", got, id)
	}
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Fatalf("empty context: got %q", got)
	}
	if ctx2 := WithTraceID(context.Background(), ""); TraceIDFrom(ctx2) != "" {
		t.Fatal("empty id should not be stored")
	}
}

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"a", "Abc-123_xyz", strings.Repeat("f", 64)} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", strings.Repeat("f", 65), "has space", "dot.dot", "semi;colon", "née"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
}

func TestSpanRing(t *testing.T) {
	r := NewSpanRing(4)
	r.Record(Span{Name: "anon"}) // no trace ID: dropped
	if r.Len() != 0 {
		t.Fatal("span without trace ID retained")
	}
	for i := 0; i < 6; i++ {
		id := "t1"
		if i%2 == 1 {
			id = "t2"
		}
		r.Record(Span{TraceID: id, Name: fmt.Sprintf("s%d", i), StartUS: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", r.Dropped())
	}
	// s0, s1 were overwritten; t1 retains s2, s4 in order.
	got := r.ByTrace("t1")
	if len(got) != 2 || got[0].Name != "s2" || got[1].Name != "s4" {
		t.Fatalf("ByTrace(t1) = %+v", got)
	}
	if r.ByTrace("missing") != nil {
		t.Fatal("ByTrace on unknown id should be empty")
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("t%d", w)
			for i := 0; i < 200; i++ {
				r.Record(Span{TraceID: id, Name: "s", StartUS: int64(i)})
				r.ByTrace(id)
				r.Dropped()
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
}

// TestWriteChromeTrace checks the export is valid JSON in Chrome
// trace_event array form: one process_name metadata record per node,
// ph "X" complete events in start order, and trace_id in args.
func TestWriteChromeTrace(t *testing.T) {
	spans := []Span{
		{TraceID: "t1", Name: "simulate", Node: "worker-1", StartUS: 200, DurUS: 50},
		{TraceID: "t1", Name: "submit", Node: "coordinator", StartUS: 100, DurUS: 0,
			Attrs: map[string]string{"job": "j-1"}},
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, b.String())
	}
	var meta, complete []map[string]any
	for _, e := range events {
		switch e["ph"] {
		case "M":
			meta = append(meta, e)
		case "X":
			complete = append(complete, e)
		default:
			t.Errorf("unexpected ph %v", e["ph"])
		}
	}
	if len(meta) != 2 {
		t.Fatalf("got %d process_name records, want 2", len(meta))
	}
	names := map[string]bool{}
	for _, m := range meta {
		names[m["args"].(map[string]any)["name"].(string)] = true
	}
	if !names["coordinator"] || !names["worker-1"] {
		t.Fatalf("process names = %v", names)
	}
	if len(complete) != 2 {
		t.Fatalf("got %d complete events, want 2", len(complete))
	}
	// Events sorted by start time: submit first despite input order.
	if complete[0]["name"] != "submit" || complete[1]["name"] != "simulate" {
		t.Fatalf("event order: %v, %v", complete[0]["name"], complete[1]["name"])
	}
	if complete[0]["dur"].(float64) < 1 {
		t.Error("zero-duration span should be widened to 1µs")
	}
	args := complete[0]["args"].(map[string]any)
	if args["trace_id"] != "t1" || args["job"] != "j-1" {
		t.Fatalf("args = %v", args)
	}
	// Distinct nodes map to distinct pids.
	if complete[0]["pid"] == complete[1]["pid"] {
		t.Error("spans on different nodes share a pid")
	}
}
