package telemetry

import (
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
)

// goldenRegistry builds one registry exercising every family kind:
// plain and labeled counters, plain and func-backed gauges, a
// collector-backed labeled family, and a histogram spanning its finite
// buckets plus +Inf.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("jobs_done", "Jobs completed.").Add(3)
	cv := r.CounterVec("cache_hits", "Cache hits by tier.", "tier")
	cv.With("memory").Add(5)
	cv.With("disk").Inc()
	r.Gauge("queue_depth", "Jobs waiting.").Set(2)
	r.GaugeFunc("uptime_seconds", "Seconds since start.", func() float64 { return 1.5 })
	r.CollectFunc("member_up", "Fleet member liveness.", TypeGauge, []string{"member"},
		func(emit func([]string, float64)) {
			emit([]string{"w2"}, 0)
			emit([]string{"w1"}, 1)
		})
	h := r.Histogram("latency_seconds", "Job latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 20} {
		h.Observe(v)
	}
	return r
}

// TestOpenMetricsGolden pins the full exposition byte-for-byte against
// testdata/metrics.golden: family ordering, HELP/TYPE metadata, _total
// suffixes, label rendering, cumulative buckets, and the # EOF
// terminator.
func TestOpenMetricsGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/metrics.golden")
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("exposition mismatch\n-- got --\n%s\n-- want --\n%s", b.String(), want)
	}
}

// TestOpenMetricsShape checks the structural invariants a scraper
// relies on without pinning bytes: exactly one HELP and TYPE line per
// family, samples only after their metadata, and # EOF last.
func TestOpenMetricsShape(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if lines[len(lines)-1] != "# EOF" {
		t.Fatalf("last line = %q, want # EOF", lines[len(lines)-1])
	}
	help, typ := 0, 0
	for _, l := range lines {
		switch {
		case strings.HasPrefix(l, "# HELP "):
			help++
		case strings.HasPrefix(l, "# TYPE "):
			typ++
		}
	}
	if help != 6 || typ != 6 {
		t.Errorf("got %d HELP / %d TYPE lines, want 6 / 6", help, typ)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok", "fine")
	mustPanic("duplicate", func() { r.Counter("ok", "again") })
	mustPanic("invalid name", func() { r.Counter("bad-name", "hyphen") })
	mustPanic("counter _total suffix", func() { r.Counter("c_total", "suffix") })
	mustPanic("digit first", func() { r.Counter("9lives", "digit") })
	mustPanic("le label", func() { r.CounterVec("c2", "h", "le") })
	mustPanic("empty buckets", func() { r.Histogram("h1", "h", nil) })
	mustPanic("unsorted buckets", func() { r.Histogram("h2", "h", []float64{2, 1}) })
	mustPanic("collect histogram", func() {
		r.CollectFunc("h3", "h", TypeHistogram, nil, func(func([]string, float64)) {})
	})
	mustPanic("label arity", func() {
		r.CounterVec("c3", "h", "a", "b").With("only-one")
	})
}

// TestHistogramQuantilePinned pins exact interpolation results on a
// hand-checkable histogram: one observation per bucket, so every
// quantile lands on a bucket boundary.
func TestHistogramQuantilePinned(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 6} {
		h.Observe(v)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.25, 1}, {0.5, 2}, {0.75, 4}, {1, 8},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := h.Sum(); got != 11 {
		t.Errorf("Sum = %v, want 11", got)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("Count = %v, want 4", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", []float64{1, 2})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram: want NaN")
	}
	h.Observe(100) // +Inf bucket
	if got := h.Quantile(1); got != 2 {
		t.Errorf("+Inf bucket quantile = %v, want last finite bound 2", got)
	}
	if !math.IsNaN(h.Quantile(0)) || !math.IsNaN(h.Quantile(1.5)) {
		t.Error("out-of-range q: want NaN")
	}
}

// TestHistogramProperty drives random observations through the default
// latency buckets and checks (a) every bucket count matches a
// recomputation from the raw values, and (b) each estimated quantile
// falls inside the bucket that contains the true sample quantile — the
// bucket-width error bound the package documents.
func TestHistogramProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := NewRegistry()
	h := r.Histogram("h", "test", DefaultLatencyBuckets)
	const n = 5000
	values := make([]float64, n)
	for i := range values {
		// Log-uniform across the bucket range, plus outliers past +Inf.
		e := rng.Float64()*22 - 1 // 2^-1 .. 2^21 times start
		values[i] = 100e-6 * math.Pow(2, e)
		h.Observe(values[i])
	}

	// (a) bucket counts match a recount from raw values.
	want := make([]uint64, len(DefaultLatencyBuckets)+1)
	for _, v := range values {
		want[sort.SearchFloat64s(DefaultLatencyBuckets, v)]++
	}
	got := h.snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: got %d, want %d", i, got[i], want[i])
		}
	}

	// (b) quantile estimates land in the true quantile's bucket.
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		truth := sorted[int(math.Ceil(q*n))-1]
		bi := sort.SearchFloat64s(DefaultLatencyBuckets, truth)
		lo, hi := 0.0, math.Inf(1)
		if bi > 0 {
			lo = DefaultLatencyBuckets[bi-1]
		}
		if bi < len(DefaultLatencyBuckets) {
			hi = DefaultLatencyBuckets[bi]
		}
		est := h.Quantile(q)
		if est < lo || est > hi {
			t.Errorf("p%v = %v outside true bucket [%v, %v] (true %v)",
				q*100, est, lo, hi, truth)
		}
		// Factor-2 buckets bound relative error by 2x above the first bucket.
		if bi > 0 && bi < len(DefaultLatencyBuckets) && (est > 2*truth || truth > 2*est) {
			t.Errorf("p%v = %v more than 2x from true %v", q*100, est, truth)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(100e-6, 2, 20)
	if len(b) != 20 || b[0] != 100e-6 {
		t.Fatalf("unexpected buckets: %v", b)
	}
	for i := 1; i < len(b); i++ {
		if math.Abs(b[i]/b[i-1]-2) > 1e-9 {
			t.Fatalf("bucket %d not factor-2: %v / %v", i, b[i], b[i-1])
		}
	}
	if !sort.Float64sAreSorted(b) {
		t.Fatal("buckets not sorted")
	}
}

// TestConcurrentScrape hammers every metric kind from many goroutines
// while scraping in parallel — the race detector (make race) is the
// assertion; the final scrape sanity-checks totals.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops", "ops")
	cv := r.CounterVec("ops_by", "ops by kind", "kind")
	g := r.Gauge("depth", "depth")
	h := r.Histogram("lat", "latency", DefaultLatencyBuckets)
	hv := r.HistogramVec("lat_by", "latency by kind", []float64{1, 2}, "kind")
	r.GaugeFunc("f", "func gauge", func() float64 { return g.Value() })

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := string(rune('a' + w%3))
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.With(kind).Inc()
				g.Set(float64(i))
				h.Observe(float64(i) * 1e-4)
				hv.With(kind).Observe(float64(i % 3))
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				if err := r.WriteOpenMetrics(&b); err != nil {
					t.Error(err)
					return
				}
				if !strings.HasSuffix(b.String(), "# EOF\n") {
					t.Error("scrape missing # EOF terminator")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Errorf("ops = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("lat count = %d, want %d", got, workers*iters)
	}
}
