package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Trace IDs follow one job across nodes: generated at submission (or
// accepted from an X-Trace-Id header), carried in the request context,
// propagated on every fabric HTTP hop, and stamped on every span. They
// are opaque tokens — no structure, no ordering.

// TraceIDHeader is the HTTP header trace IDs ride in.
const TraceIDHeader = "X-Trace-Id"

// NewTraceID returns a fresh 32-hex-char trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a trace ID
		// only needs uniqueness, so degrade to the wall clock.
		return fmt.Sprintf("t%032x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID bounds accepted IDs: 1–64 chars of [A-Za-z0-9_-], so a
// client-supplied header can never smuggle structure into logs, file
// names, or label values.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for _, r := range s {
		ok := (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') ||
			(r >= 'A' && r <= 'Z') || r == '_' || r == '-'
		if !ok {
			return false
		}
	}
	return true
}

type traceIDKey struct{}

// WithTraceID returns ctx carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the context's trace ID, or "".
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// Span is one completed, named interval of a traced job on one node.
// Times are wall-clock unix microseconds — the unit Chrome trace_event
// uses natively — so spans recorded on different nodes merge onto one
// timeline without conversion (fleet nodes share a clock domain in the
// deployments this targets; skew shows up as offset, never as error).
type Span struct {
	TraceID string            `json:"trace_id"`
	Name    string            `json:"name"`
	Node    string            `json:"node"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// DefaultSpanRingCap bounds retained spans when callers pass 0: at the
// ~7 spans a traced job records, it covers the last ~580 jobs.
const DefaultSpanRingCap = 4096

// SpanRing retains the most recent spans in a fixed-capacity circular
// buffer, queryable by trace ID. It is the per-node span store behind
// GET /v1/trace/{id} — bounded by construction, so tracing every job is
// safe at any request rate.
type SpanRing struct {
	mu     sync.Mutex
	spans  []Span
	start  int
	count  int
	pushed int
}

// NewSpanRing returns a ring retaining up to capacity spans
// (DefaultSpanRingCap when capacity <= 0).
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanRingCap
	}
	return &SpanRing{spans: make([]Span, capacity)}
}

// Record appends one completed span, overwriting the oldest once full.
// Spans without a trace ID are dropped — they could never be queried.
func (r *SpanRing) Record(s Span) {
	if s.TraceID == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count < len(r.spans) {
		r.spans[(r.start+r.count)%len(r.spans)] = s
		r.count++
	} else {
		r.spans[r.start] = s
		r.start = (r.start + 1) % len(r.spans)
	}
	r.pushed++
}

// ByTrace returns the retained spans for one trace ID, oldest first.
func (r *SpanRing) ByTrace(id string) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	for i := 0; i < r.count; i++ {
		s := r.spans[(r.start+i)%len(r.spans)]
		if s.TraceID == id {
			out = append(out, s)
		}
	}
	return out
}

// Len returns the number of retained spans.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Dropped returns how many spans were overwritten by later records.
func (r *SpanRing) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pushed - r.count
}

// WriteChromeTrace renders spans as a Chrome trace_event JSON array —
// the same format the simulator's -trace-format chrome sink emits
// (internal/core/trace.go), so service-level job timelines and
// simulator-internal pipeline traces open in the same viewer
// (chrome://tracing, Perfetto). One node is one process (with a
// process_name metadata record); spans are complete events (ph "X")
// with ts/dur in microseconds.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	nodes := make(map[string]int)
	var order []string
	for _, s := range spans {
		if _, ok := nodes[s.Node]; !ok {
			nodes[s.Node] = 0
			order = append(order, s.Node)
		}
	}
	sort.Strings(order)
	for i, n := range order {
		nodes[n] = i + 1
	}
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].StartUS != sorted[j].StartUS {
			return sorted[i].StartUS < sorted[j].StartUS
		}
		return sorted[i].Name < sorted[j].Name
	})

	var b strings.Builder
	b.WriteString("[")
	first := true
	sep := func() {
		if first {
			b.WriteString("\n")
			first = false
		} else {
			b.WriteString(",\n")
		}
	}
	for _, n := range order {
		sep()
		fmt.Fprintf(&b, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
			nodes[n], strconv.Quote(n))
	}
	for _, s := range sorted {
		args := map[string]string{"trace_id": s.TraceID}
		for k, v := range s.Attrs {
			args[k] = v
		}
		rawArgs, err := json.Marshal(args)
		if err != nil {
			return err
		}
		dur := s.DurUS
		if dur < 1 {
			dur = 1 // zero-width spans vanish in the viewer
		}
		sep()
		fmt.Fprintf(&b, `{"name":%s,"cat":"service","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":1,"args":%s}`,
			strconv.Quote(s.Name), s.StartUS, dur, nodes[s.Node], rawArgs)
	}
	b.WriteString("\n]\n")
	_, err := io.WriteString(w, b.String())
	return err
}
