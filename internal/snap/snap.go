// Package snap provides the little-endian binary codec used by the
// simulator checkpoint format (core.Snapshot / core.Restore).
//
// The encoding is deliberately primitive: fixed-width little-endian
// integers, IEEE-754 bit patterns for floats, and length-prefixed byte
// strings. There is no per-field tagging — the decoder must read fields
// in exactly the order the encoder wrote them, which keeps the format
// compact and makes layout changes impossible to miss (the versioned
// envelope in internal/core is bumped instead).
//
// Reader is sticky-error: the first short read latches ErrTruncated and
// every subsequent accessor returns the zero value, so decode routines
// can be written as straight-line field reads with a single Err() check
// at the end. Explicit validation failures latch through Fail and take
// precedence over later truncation.
package snap

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated is latched by a Reader when the payload ends before a
// requested field.
var ErrTruncated = errors.New("snap: truncated payload")

// Writer accumulates an append-only little-endian byte stream.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded stream. The slice aliases the Writer's
// internal buffer; the caller must not write to the Writer afterwards.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends the IEEE-754 bit pattern of v, preserving it exactly
// (including NaN payloads and signed zeros).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends 1 or 0.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes8 appends a length-prefixed (uint32) byte string.
func (w *Writer) Bytes8(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes a stream produced by Writer. The zero value is not
// usable; construct with NewReader.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps data for decoding. The Reader does not copy data.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the latched error, if any.
func (r *Reader) Err() error { return r.err }

// Fail latches err (unless an error is already latched) and causes all
// subsequent reads to return zero values. Decoders use it to report
// validation failures mid-stream.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining returns the number of unread bytes. Decoders use it to
// sanity-bound element counts before allocating (each encoded element
// occupies at least one byte, so count > Remaining() is always corrupt).
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.data) - r.off
}

// take returns the next n bytes, or nil after latching ErrTruncated.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data)-r.off < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 and narrows it to int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads an IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a byte and reports whether it is non-zero.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes8 reads a length-prefixed byte string. The returned slice
// aliases the underlying payload.
func (r *Reader) Bytes8() []byte {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.err = ErrTruncated
		return nil
	}
	return r.take(n)
}

// String reads a length-prefixed UTF-8 string.
func (r *Reader) String() string { return string(r.Bytes8()) }
