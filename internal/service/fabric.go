// Fabric: the scale-out layer turning independent clusterd daemons
// into one fleet. A coordinator (coordinator.go) owns membership and
// routes jobs by consistent hash over the content-addressed spec hash
// (config.Ring); workers (worker.go) register over HTTP and heartbeat
// periodically. This file holds what both roles share: the wire
// types, the peer cache-probe and snapshot-ship endpoints every node
// serves, and the federated snapshot store.
//
// The design rule throughout is "degraded, never wrong": every fabric
// failure — an unreachable peer, a lost coordinator, a torn transfer —
// falls back to computing locally from scratch. The fabric only ever
// saves work; results are bit-identical with or without it.
package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"clustersmt/internal/telemetry"
)

// DefaultHeartbeatInterval paces worker heartbeats when Options leaves
// HeartbeatInterval zero; a worker missing heartbeats for the timeout
// (default 3 intervals) is evicted and its keys rebalance.
const DefaultHeartbeatInterval = 5 * time.Second

// registerRequest is a worker's announcement to the coordinator, sent
// on registration and repeated (with fresh load figures) on every
// heartbeat.
type registerRequest struct {
	// URL is the worker's advertise address — its identity on the hash
	// ring and the base every peer uses to reach it.
	URL string `json:"url"`
	// Version is the worker's build version; a mismatch with the
	// coordinator is logged on both ends but never rejected (results
	// are content-addressed, so mixed fleets stay correct).
	Version string `json:"version"`
	// Workers and QueueCap describe capacity; Depth and Running report
	// current load. The coordinator folds capacity into Retry-After.
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_cap"`
	Depth    int `json:"depth"`
	Running  int `json:"running"`
}

// registerResponse acknowledges a registration or heartbeat.
type registerResponse struct {
	Version string `json:"version"`
	// Peers lists the other registered workers' advertise URLs — the
	// probe/ship targets. Refreshed on every heartbeat, so membership
	// changes propagate within one interval.
	Peers []string `json:"peers"`
}

// fabricHTTP issues all intra-fleet requests. No client-level timeout:
// job dispatches long-poll for minutes; probes and snapshot fetches
// bound themselves with per-request contexts.
var fabricHTTP = &http.Client{}

// handleFabricProbe answers a peer's cache probe: does this node hold
// the result for the given spec hash? The lookup is the ordinary
// two-tier Get — memory LRU first, then the disk envelope — so a probe
// hit is exactly as trustworthy as a local cache hit, and it promotes
// the entry the same way. A miss is 404; the prober moves on.
func (s *Server) handleFabricProbe(w http.ResponseWriter, r *http.Request) {
	hexHash := r.PathValue("hash")
	if !isHexHash(hexHash) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad probe hash %q", hexHash))
		return
	}
	raw, _ := hex.DecodeString(hexHash)
	var key [32]byte
	copy(key[:], raw)
	res, tier, ok := s.cache.Get(key)
	if !ok {
		s.probeServedMisses.Add(1)
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no cached result for %s", hexHash))
		return
	}
	s.probeServedHits.Add(1)
	w.Header().Set("X-Cache-Tier", tier)
	writeJSON(w, http.StatusOK, envelope{Hash: hexHash, Result: res})
}

// handleFabricSnap ships a warmed checkpoint (snap-<hex64>.bin) to a
// peer, so one node's warm-up pays for the whole fleet's forks.
func (s *Server) handleFabricSnap(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad snapshot key %q", key))
		return
	}
	if s.opts.CacheDir == "" {
		s.snapServedMisses.Add(1)
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no snapshot store"))
		return
	}
	data, ok := snapshotStore{dir: s.opts.CacheDir}.LoadSnapshot(key)
	if !ok {
		s.snapServedMisses.Add(1)
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no snapshot %s", key))
		return
	}
	s.snapServedHits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) handleFabricRegister(w http.ResponseWriter, r *http.Request) {
	s.fabricMembership(w, r, true)
}

func (s *Server) handleFabricHeartbeat(w http.ResponseWriter, r *http.Request) {
	s.fabricMembership(w, r, false)
}

// fabricMembership is the shared body of register and heartbeat: both
// carry the same announcement, but only register may introduce a new
// member. A heartbeat from an evicted (or never-seen) worker gets 404,
// telling it to re-register — that round trip is what re-admits a
// worker after a coordinator restart or an eviction it didn't notice.
func (s *Server) fabricMembership(w http.ResponseWriter, r *http.Request, admit bool) {
	c := s.coordinator()
	if c == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: not a coordinator"))
		return
	}
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad fabric announcement"))
		return
	}
	peers, known := c.upsert(req, admit)
	if !known {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown worker %s (re-register)", req.URL))
		return
	}
	writeJSON(w, http.StatusOK, registerResponse{Version: s.version, Peers: peers})
}

// fedSnapshots is the fleet-wide harness.SnapshotStore: loads try the
// local directory first, then (on a worker) each known peer over
// /fabric/snap; a shipped checkpoint is re-persisted locally so it is
// fetched at most once per node. Saves are local-only — the checkpoint
// becomes visible to the fleet through the owner answering ship
// requests, not by pushing. All paths are best-effort by the
// SnapshotStore contract: any failure just re-runs the warm-up.
type fedSnapshots struct {
	s *Server
}

func (f fedSnapshots) LoadSnapshot(ctx context.Context, key string) ([]byte, bool) {
	start := time.Now()
	dir := f.s.opts.CacheDir
	if dir != "" {
		if data, ok := (snapshotStore{dir: dir}).LoadSnapshot(key); ok {
			f.observe(ctx, key, start, "local")
			return data, true
		}
	}
	wk := f.s.workerRef()
	if wk == nil || !validKey(key) {
		return nil, false
	}
	for _, peer := range wk.peerList() {
		data, ok := wk.fetchSnapshot(ctx, peer, key)
		if !ok {
			continue
		}
		if dir != "" {
			snapshotStore{dir: dir}.SaveSnapshot(key, data)
		}
		f.observe(ctx, key, start, peer)
		return data, true
	}
	f.observe(ctx, key, start, "miss")
	return nil, false
}

// observe records one federated load as a histogram sample and (when
// the warm-up belongs to a traced job) a snapshot-fetch span naming
// where the checkpoint came from.
func (f fedSnapshots) observe(ctx context.Context, key string, start time.Time, source string) {
	s := f.s
	observe(s.hist(func(t *svcTelemetry) *telemetry.Histogram { return t.snapFetch }), time.Since(start))
	s.span(telemetry.TraceIDFrom(ctx), "snapshot-fetch", start,
		map[string]string{"key": key, "source": source})
}

func (f fedSnapshots) SaveSnapshot(key string, data []byte) {
	if dir := f.s.opts.CacheDir; dir != "" {
		snapshotStore{dir: dir}.SaveSnapshot(key, data)
	}
}
