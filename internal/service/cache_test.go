package service

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/workloads"
)

// TestCacheReconcileStaleIndex is the crash-recovery contract for the
// disk tier: the index is rewritten only on graceful Close, so a crash
// leaves it stale — entries for files that are gone (dangling) and
// files the index never heard of (orphans). A restarted cache must
// reconcile both directions and keep promoting disk hits.
func TestCacheReconcileStaleIndex(t *testing.T) {
	dir := t.TempDir()
	res := func(cycles int64) *core.Result {
		return &core.Result{ProgramName: "swim", Machine: config.LowEnd(config.SMT2), Cycles: cycles}
	}
	k1, k2, k3 := [32]byte{1}, [32]byte{2}, [32]byte{3}

	// Cache A: two entries persisted, index written on Close.
	a, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(k1, JobSpec{App: "swim"}, res(100)); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(k2, JobSpec{App: "swim"}, res(200)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window: k2's envelope vanishes out-of-band
	// (index now dangles), and k3 is Put by a cache that never gets to
	// Close (orphan envelope the index never saw). A stray temp file
	// and a corrupt hex-named envelope must both be ignored.
	if err := os.Remove(filepath.Join(dir, fmt.Sprintf("%x.json", k2))); err != nil {
		t.Fatal(err)
	}
	b, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put(k3, JobSpec{App: "swim"}, res(300)); err != nil {
		t.Fatal(err)
	}
	// No b.Close(): the crash.
	if err := os.WriteFile(filepath.Join(dir, "put-123.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := [32]byte{4}
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%x.json", corrupt)), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart: the index must list exactly k1 (survivor) and k3
	// (adopted orphan) — not k2 (dangling), not the corrupt file.
	c, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	idx := c.Index()
	if len(idx) != 2 {
		t.Fatalf("reconciled index has %d entries, want 2: %+v", len(idx), idx)
	}
	want := map[string]int64{
		fmt.Sprintf("%x", k1): 100,
		fmt.Sprintf("%x", k3): 300,
	}
	for _, e := range idx {
		cycles, ok := want[e.Hash]
		if !ok {
			t.Fatalf("unexpected index entry %+v", e)
		}
		if e.Cycles != cycles || e.App != "swim" {
			t.Fatalf("adopted entry wrong: %+v (want cycles %d)", e, cycles)
		}
	}

	// Disk hits still promote: first Get is a disk hit, second memory.
	if r, tier, ok := c.Get(k3); !ok || tier != TierDisk || r.Cycles != 300 {
		t.Fatalf("orphan entry not served from disk: ok=%v tier=%q", ok, tier)
	}
	if _, tier, ok := c.Get(k3); !ok || tier != TierMemory {
		t.Fatalf("disk hit not promoted to memory: ok=%v tier=%q", ok, tier)
	}
	// The dangling and corrupt entries are plain misses.
	if _, _, ok := c.Get(k2); ok {
		t.Fatal("dangling entry served a result")
	}
	if _, _, ok := c.Get(corrupt); ok {
		t.Fatal("corrupt envelope served a result")
	}
}

// TestServiceDiskCacheRecoversFromCrash is the server-level restart
// test: server A completes a job and dies without the graceful Close
// (no index rewrite), its index is additionally corrupted on disk, and
// server B on the same directory must still list the entry and serve
// the same spec instantly from the disk tier with identical bytes.
func TestServiceDiskCacheRecoversFromCrash(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{App: "tomcatv", Arch: "FA4"}

	srvA, err := New(Options{DefaultSize: workloads.SizeTest, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	status, j, _ := submit(t, tsA, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submission on A: status %d", status)
	}
	first := waitJob(t, tsA, j.ID)
	if first.Status != StateDone {
		t.Fatalf("job on A failed: %+v", first)
	}
	tsA.Close()
	// Crash: no srvA.Close(ctx), so index.json was never written for
	// this entry; make it actively wrong rather than merely missing.
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(`[{"hash":"feed`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Silence the leaked pool on test exit.
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srvA.Close(ctx)
	})

	srvB, err := New(Options{DefaultSize: workloads.SizeTest, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	defer srvB.Close(context.Background())

	if idx := srvB.cache.Index(); len(idx) != 1 || idx[0].Hash != first.Hash {
		t.Fatalf("index after crash restart: %+v (want 1 entry, hash %s)", idx, first.Hash)
	}
	status, second, _ := submit(t, tsB, spec)
	if status != http.StatusOK {
		t.Fatalf("resubmission on B: status %d, want 200 (instant)", status)
	}
	if !second.CacheHit || second.CacheTier != TierDisk {
		t.Fatalf("resubmission on B not a disk hit: %+v", second)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("crash-recovered result differs from the original JSON")
	}
}
