package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"clustersmt/internal/workloads"
)

// fnode is one fabric process stand-in: a Server behind its own
// listener. kill() is the SIGKILL analogue — heartbeats stop and every
// open connection dies without drain, exactly what peers observe when
// a real worker process is killed.
type fnode struct {
	srv  *Server
	ts   *httptest.Server
	dead sync.Once
}

func (n *fnode) URL() string { return n.ts.URL }

func (n *fnode) kill() {
	if wk := n.srv.workerRef(); wk != nil {
		wk.close()
	}
	n.dead.Do(func() {
		n.ts.CloseClientConnections()
		n.ts.Close()
	})
}

// fabricTimings are aggressive so membership churn resolves in
// milliseconds; production defaults are seconds.
func fabricTimings(opts Options) Options {
	opts.DefaultSize = workloads.SizeTest
	opts.HeartbeatInterval = 50 * time.Millisecond
	opts.HeartbeatTimeout = 300 * time.Millisecond
	return opts
}

func newFabricNode(t *testing.T, opts Options) *fnode {
	t.Helper()
	srv, err := New(fabricTimings(opts))
	if err != nil {
		t.Fatal(err)
	}
	n := &fnode{srv: srv, ts: httptest.NewServer(srv.Handler())}
	t.Cleanup(func() {
		n.dead.Do(func() { n.ts.Close() })
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return n
}

func newFabricWorker(t *testing.T, coord *fnode, opts Options) *fnode {
	t.Helper()
	n := newFabricNode(t, opts)
	if err := n.srv.JoinFabric(coord.URL(), n.URL()); err != nil {
		t.Fatal(err)
	}
	return n
}

// Test-only introspection with proper locking (the race detector runs
// these tests; unsynchronized peeks would trip it).
func (c *coordinator) memberCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.members)
}

func (w *worker) knowsPeer(url string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, p := range w.peers {
		if p == url {
			return true
		}
	}
	return false
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func simCount(n *fnode) int64 {
	return n.srv.suite(workloads.SizeTest).Simulations()
}

// healthView decodes the /healthz sections the fabric tests assert on.
type healthView struct {
	Simulations int64 `json:"simulations"`
	Queue       struct {
		Depth   int `json:"depth"`
		Running int `json:"running"`
	} `json:"queue"`
	Fabric struct {
		Role       string               `json:"role"`
		Registered bool                 `json:"registered"`
		Peers      []json.RawMessage    `json:"peers"`
		Probes     map[string]peerStats `json:"probes"`
		Counters   map[string]uint64    `json:"counters"`
		ProbeServed struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"probe_served"`
		SnapServed struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"snap_served"`
	} `json:"fabric"`
}

func getHealth(t *testing.T, n *fnode) healthView {
	t.Helper()
	resp, err := http.Get(n.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthView
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// sweepSpecs is a 16-point synthetic sweep — the (threads × ILP) grid
// shrunk to fast cells, every point a distinct content hash.
func sweepSpecs() []JobSpec {
	var specs []JobSpec
	for chain := 0; chain < 4; chain++ {
		for indep := 1; indep <= 4; indep++ {
			name := workloads.Synthetic(workloads.SyntheticSpec{
				ChainLen: chain, IndepOps: indep, Iters: 256,
			}).Name
			specs = append(specs, JobSpec{App: name, Arch: "SMT2", Size: "test"})
		}
	}
	return specs
}

// runSweep submits every spec and waits all jobs out, returning result
// bytes keyed by app name.
func runSweep(t *testing.T, ts *httptest.Server, specs []JobSpec) map[string]json.RawMessage {
	t.Helper()
	ids := make(map[string]string)
	for _, spec := range specs {
		status, j, _ := submit(t, ts, spec)
		if status != http.StatusAccepted && status != http.StatusOK {
			t.Fatalf("submit %s: status %d", spec.App, status)
		}
		ids[spec.App] = j.ID
	}
	out := make(map[string]json.RawMessage)
	for app, id := range ids {
		j := waitJob(t, ts, id)
		if j.Status != StateDone {
			t.Fatalf("job %s (%s) ended %q: %s", id, app, j.Status, j.Error)
		}
		out[app] = j.Result
	}
	return out
}

// TestFabricSweepSurvivesWorkerLoss is the tentpole e2e: a 16-point
// sweep through a coordinator saturates three workers, one worker is
// killed (SIGKILL-style: no drain, no goodbye) mid-sweep, and the
// surviving fleet still produces results bit-identical to a single
// local daemon — the coordinator itself never simulates.
func TestFabricSweepSurvivesWorkerLoss(t *testing.T) {
	specs := sweepSpecs()

	// Single-node reference.
	_, tsRef := newTestServer(t, Options{})
	ref := runSweep(t, tsRef, specs)

	coord := newFabricNode(t, Options{Coordinator: true})
	workers := []*fnode{
		newFabricWorker(t, coord, Options{Workers: 1}),
		newFabricWorker(t, coord, Options{Workers: 1}),
		newFabricWorker(t, coord, Options{Workers: 1}),
	}
	waitFor(t, "3 workers registered", func() bool {
		return coord.srv.coordinator().memberCount() == 3
	})

	// Launch the sweep, then kill whichever worker first completes two
	// simulations — guaranteed to exist (16 jobs over 3 single-worker
	// nodes) and guaranteed to be mid-sweep.
	ids := make([]string, 0, len(specs))
	for _, spec := range specs {
		status, j, _ := submit(t, coord.ts, spec)
		if status != http.StatusAccepted {
			t.Fatalf("fabric submit %s: status %d", spec.App, status)
		}
		ids = append(ids, j.ID)
	}
	var victim *fnode
	waitFor(t, "a worker to complete 2 simulations", func() bool {
		for _, w := range workers {
			if simCount(w) >= 2 {
				victim = w
				return true
			}
		}
		return false
	})
	victim.kill()

	byID := make(map[string]json.RawMessage)
	for i, id := range ids {
		j := waitJob(t, coord.ts, id)
		if j.Status != StateDone {
			t.Fatalf("job %s (%s) ended %q: %s", id, specs[i].App, j.Status, j.Error)
		}
		byID[specs[i].App] = j.Result
	}
	for app, want := range ref {
		if !bytes.Equal(want, byID[app]) {
			t.Fatalf("%s: fabric result differs from single-node reference:\n%s\nvs\n%s", app, want, byID[app])
		}
	}

	// The coordinator routed everything: zero local simulations. The
	// sweep spread across the fleet: the victim simulated before dying,
	// and at least one other worker simulated too (with 16 keys on a
	// 3-node ring, all-on-one-node does not happen).
	if n := simCount(coord); n != 0 {
		t.Fatalf("coordinator ran %d local simulations, want 0 (all dispatched)", n)
	}
	var fleet int64
	busy := 0
	for _, w := range workers {
		n := simCount(w)
		fleet += n
		if n > 0 {
			busy++
		}
	}
	if fleet < int64(len(specs)) {
		t.Fatalf("fleet simulated %d times for %d jobs (lost work must be recomputed, never skipped)", fleet, len(specs))
	}
	if busy < 2 {
		t.Fatalf("only %d workers simulated; the sweep did not spread", busy)
	}

	// The dead worker is evicted (by failed dispatch or missed
	// heartbeats) and the coordinator's health reflects the loss.
	waitFor(t, "victim eviction", func() bool {
		return coord.srv.coordinator().memberCount() == 2
	})
	h := getHealth(t, coord)
	if h.Fabric.Role != "coordinator" || len(h.Fabric.Peers) != 2 {
		t.Fatalf("coordinator healthz: role %q with %d peers, want coordinator/2", h.Fabric.Role, len(h.Fabric.Peers))
	}
	if h.Fabric.Counters["dispatched"] == 0 {
		t.Fatal("coordinator healthz: no dispatches counted")
	}
	if h.Simulations != 0 {
		t.Fatalf("coordinator healthz reports %d local simulations, want 0", h.Simulations)
	}
}

// TestFabricFederatedCacheAfterRestart pins the federated-cache
// acceptance: after a worker is killed and replaced (same disk, new
// identity) the whole sweep is re-served from the fleet's caches —
// local hits where the ring still agrees, peer probes where keys
// remapped — with zero new simulations anywhere.
func TestFabricFederatedCacheAfterRestart(t *testing.T) {
	specs := sweepSpecs()[:8]
	dir1, dir2 := t.TempDir(), t.TempDir()

	// CacheEntries: 1 keeps the coordinator's own LRU from absorbing
	// the sweep — resubmissions must be answered by the fleet.
	coord := newFabricNode(t, Options{Coordinator: true, CacheEntries: 1})
	w1 := newFabricWorker(t, coord, Options{Workers: 1, CacheDir: dir1})
	w2 := newFabricWorker(t, coord, Options{Workers: 1, CacheDir: dir2})
	waitFor(t, "2 workers registered", func() bool {
		return coord.srv.coordinator().memberCount() == 2
	})

	first := runSweep(t, coord.ts, specs)
	if got := simCount(w1) + simCount(w2); got != int64(len(specs)) {
		t.Fatalf("cold sweep ran %d simulations for %d distinct jobs", got, len(specs))
	}
	w1Sims := simCount(w1)

	// Kill w2; its memory dies, its disk (dir2) survives — exactly a
	// worker process restart. The replacement has a new URL, so the
	// ring remaps and some keys now live "in the wrong place".
	w2.kill()
	waitFor(t, "w2 eviction", func() bool {
		return coord.srv.coordinator().memberCount() == 1
	})
	w2b := newFabricWorker(t, coord, Options{Workers: 1, CacheDir: dir2})
	waitFor(t, "w2b registered and peered", func() bool {
		return coord.srv.coordinator().memberCount() == 2 &&
			w1.srv.workerRef().knowsPeer(w2b.URL()) &&
			w2b.srv.workerRef().knowsPeer(w1.URL())
	})

	second := runSweep(t, coord.ts, specs)
	for app, want := range first {
		if !bytes.Equal(want, second[app]) {
			t.Fatalf("%s: resubmitted result differs from original", app)
		}
	}
	if got := simCount(w1); got != w1Sims {
		t.Fatalf("w1 simulated %d more times on a fully cached sweep", got-w1Sims)
	}
	if got := simCount(w2b); got != 0 {
		t.Fatalf("replacement worker simulated %d times; every result was already on the fleet's disks", got)
	}
	if got := simCount(coord); got != 0 {
		t.Fatalf("coordinator simulated %d times", got)
	}
}

// TestFabricPeerProbeAndSnapshotShipping drives the two peer channels
// deterministically: a cache probe serves a result computed on another
// node without re-simulating, and a warm checkpoint ships to a peer
// that then forks from it (restores=1) instead of re-running the
// warm-up. Health counters on both ends confirm which channel served.
func TestFabricPeerProbeAndSnapshotShipping(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	coord := newFabricNode(t, Options{Coordinator: true})
	w1 := newFabricWorker(t, coord, Options{Workers: 1, CacheDir: dir1, WarmupCycles: 1000})
	w2 := newFabricWorker(t, coord, Options{Workers: 1, CacheDir: dir2, WarmupCycles: 1000})
	waitFor(t, "workers peered", func() bool {
		return w1.srv.workerRef().knowsPeer(w2.URL()) && w2.srv.workerRef().knowsPeer(w1.URL())
	})

	variantA := workloads.Synthetic(workloads.SyntheticSpec{
		ChainLen: 0, IndepOps: 4, Iters: 256, WarmupIters: 1500,
	}).Name
	variantB := workloads.Synthetic(workloads.SyntheticSpec{
		ChainLen: 4, IndepOps: 0, Iters: 256, WarmupIters: 1500,
	}).Name

	// Reference results from a warm-up-free single node.
	_, tsRef := newTestServer(t, Options{})

	run := func(ts *httptest.Server, app string) wireJob {
		status, j, _ := submit(t, ts, JobSpec{App: app, Arch: "SMT2", Size: "test"})
		if status == http.StatusOK {
			return j
		}
		if status != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", app, status)
		}
		done := waitJob(t, ts, j.ID)
		if done.Status != StateDone {
			t.Fatalf("job %s failed: %s", app, done.Error)
		}
		return done
	}

	refA := run(tsRef, variantA)

	// w1 computes variant A from scratch (warming its checkpoint).
	gotA := run(w1.ts, variantA)
	if !bytes.Equal(refA.Result, gotA.Result) {
		t.Fatal("w1's warmed result differs from the reference")
	}
	if n := simCount(w1); n != 1 {
		t.Fatalf("w1 ran %d simulations, want 1", n)
	}

	// Peer cache probe: the same spec on w2 is served by w1's cache —
	// zero simulations on w2, bit-identical bytes.
	probed := run(w2.ts, variantA)
	if !bytes.Equal(refA.Result, probed.Result) {
		t.Fatal("probe-served result differs from the reference")
	}
	if n := simCount(w2); n != 0 {
		t.Fatalf("w2 ran %d simulations despite the peer holding the result", n)
	}
	h2 := getHealth(t, w2)
	if h2.Fabric.Role != "worker" || !h2.Fabric.Registered {
		t.Fatalf("w2 healthz fabric: %+v", h2.Fabric)
	}
	if st := h2.Fabric.Probes[w1.URL()]; st.Hits != 1 {
		t.Fatalf("w2's probe stats for w1: %+v, want 1 hit", st)
	}
	if h1 := getHealth(t, w1); h1.Fabric.ProbeServed.Hits != 1 {
		t.Fatalf("w1 served %d probe hits, want 1", h1.Fabric.ProbeServed.Hits)
	}

	// Snapshot shipping: variant B shares A's warm-up prefix but is a
	// different job, so no cache probe can serve it. w2 must simulate —
	// but it forks from w1's shipped checkpoint instead of re-running
	// the warm-up.
	refB := run(tsRef, variantB)
	gotB := run(w2.ts, variantB)
	if !bytes.Equal(refB.Result, gotB.Result) {
		t.Fatal("forked-from-shipped-checkpoint result differs from the reference")
	}
	if forks, restores := w2.srv.suite(workloads.SizeTest).WarmForks(); forks != 1 || restores != 1 {
		t.Fatalf("w2 warm-up: %d forks / %d restores, want 1 / 1 (checkpoint shipped, not re-warmed)", forks, restores)
	}
	if h1 := getHealth(t, w1); h1.Fabric.SnapServed.Hits != 1 {
		t.Fatalf("w1 shipped %d snapshots, want 1", h1.Fabric.SnapServed.Hits)
	}
	// The shipped checkpoint is re-persisted locally: w2 won't fetch
	// it twice.
	entries, err := os.ReadDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), "snap-") && strings.HasSuffix(de.Name(), ".bin") {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("w2 persisted %d shipped snapshots, want 1", snaps)
	}
}

// TestFabricRetryAfterFleetCapacity pins the coordinator-mode
// Retry-After estimate: the divisor is the fleet's registered worker
// capacity, not the local pool. It also exercises the unreachable-
// worker path end to end — once the fake members are evicted, every
// admitted job falls back to local simulation and completes.
func TestFabricRetryAfterFleetCapacity(t *testing.T) {
	srv, err := New(Options{
		DefaultSize: workloads.SizeTest,
		Coordinator: true,
		Workers:     1,
		QueueCap:    4,
		// Keep the janitor out of the way: evictions in this test must
		// come from failed dispatches only.
		HeartbeatTimeout: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	gate := make(chan struct{})
	srv.pool.gate = gate
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	t.Cleanup(openGate)

	// Two fake members, one worker each: fleet capacity 2. Nothing
	// listens at their URLs — dispatch will evict them.
	for i, port := range []int{9, 10} {
		body, _ := json.Marshal(registerRequest{URL: fmt.Sprintf("http://127.0.0.1:%d", port), Workers: 1})
		resp, err := http.Post(ts.URL+"/fabric/register", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fake member %d: register status %d", i, resp.StatusCode)
		}
	}

	specs := sweepSpecs()[:6]
	status, j0, _ := submit(t, ts, specs[0])
	if status != http.StatusAccepted {
		t.Fatalf("job 0: status %d", status)
	}
	waitFor(t, "gated worker pickup", func() bool { return srv.pool.Depth() == 0 })

	ids := []string{j0.ID}
	for _, spec := range specs[1:5] {
		status, j, _ := submit(t, ts, spec)
		if status != http.StatusAccepted {
			t.Fatalf("fill submission: status %d", status)
		}
		ids = append(ids, j.ID)
	}

	// Queue full: 4 queued (the gated job counts as neither queued nor
	// running) over fleet capacity 2 → ceil = 2. The local pool alone
	// (1 worker) would have said 4.
	status, _, hdr := submit(t, ts, specs[5])
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: status %d, want 429", status)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After %q, want \"2\" (ceil(4 queued / fleet capacity 2))", ra)
	}

	openGate()
	for _, id := range ids {
		if j := waitJob(t, ts, id); j.Status != StateDone {
			t.Fatalf("job %s ended %q: %s", id, j.Status, j.Error)
		}
	}

	// Both fakes were evicted on first contact; everything ran locally.
	h := getHealth(t, srv0(ts, srv))
	if h.Fabric.Counters["evicted"] != 2 {
		t.Fatalf("evicted %d members, want 2", h.Fabric.Counters["evicted"])
	}
	if h.Fabric.Counters["local_fallbacks"] == 0 {
		t.Fatal("no local fallbacks counted despite an empty fleet")
	}
	if h.Simulations != int64(len(ids)) {
		t.Fatalf("coordinator ran %d simulations locally, want %d (degraded, never wrong)", h.Simulations, len(ids))
	}
}

// srv0 adapts a bare (srv, ts) pair to the fnode helpers.
func srv0(ts *httptest.Server, srv *Server) *fnode {
	return &fnode{srv: srv, ts: ts}
}
