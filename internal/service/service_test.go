package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clustersmt/internal/core"
	"clustersmt/internal/workloads"
)

// wireJob mirrors jobView with the result kept raw, so tests can
// compare the result JSON byte-for-byte.
type wireJob struct {
	ID        string          `json:"id"`
	Spec      JobSpec         `json:"spec"`
	Hash      string          `json:"hash"`
	Status    string          `json:"status"`
	CacheHit  bool            `json:"cache_hit"`
	CacheTier string          `json:"cache_tier"`
	Error     string          `json:"error"`
	Result    json.RawMessage `json:"result"`
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.DefaultSize = workloads.SizeTest
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return srv, ts
}

func submit(t *testing.T, ts *httptest.Server, spec JobSpec) (int, wireJob, http.Header) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j wireJob
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp.StatusCode, j, resp.Header
}

func waitJob(t *testing.T, ts *httptest.Server, id string) wireJob {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "?wait=2s")
		if err != nil {
			t.Fatal(err)
		}
		var j wireJob
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if j.Status == StateDone || j.Status == StateFailed {
			return j
		}
	}
	t.Fatalf("job %s did not finish in time", id)
	return wireJob{}
}

// TestServiceCachedResubmissionBitIdentical is the acceptance test's
// first half: resubmitting an identical job spec is served from the
// cache, marked as a hit, and the result JSON is bit-identical to the
// first run's.
func TestServiceCachedResubmissionBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	spec := JobSpec{App: "mgrid", Arch: "SMT2"}
	status, first, _ := submit(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("first submission: status %d, want 202", status)
	}
	first = waitJob(t, ts, first.ID)
	if first.Status != StateDone {
		t.Fatalf("first job did not complete: %+v", first)
	}
	if first.CacheHit {
		t.Fatal("first run of a spec reported a cache hit")
	}
	if len(first.Result) == 0 {
		t.Fatal("first job has no result")
	}

	// Resubmit the identical spec: instant completion, cache-hit marker,
	// bit-identical result payload.
	status, second, _ := submit(t, ts, spec)
	if status != http.StatusOK {
		t.Fatalf("cached resubmission: status %d, want 200 (instant)", status)
	}
	if second.Status != StateDone || !second.CacheHit || second.CacheTier != TierMemory {
		t.Fatalf("cached resubmission not served from memory: %+v", second)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cached result not bit-identical:\n%s\nvs\n%s", first.Result, second.Result)
	}
	if first.Hash != second.Hash {
		t.Fatalf("identical specs hashed differently: %s vs %s", first.Hash, second.Hash)
	}

	// FA8 and SMT8 are the same silicon: same content hash, same cache
	// entry, instant service.
	status8, fa8, _ := submit(t, ts, JobSpec{App: "mgrid", Arch: "FA8"})
	if status8 != http.StatusAccepted {
		t.Fatalf("FA8 submission: status %d", status8)
	}
	fa8 = waitJob(t, ts, fa8.ID)
	status8, smt8, _ := submit(t, ts, JobSpec{App: "mgrid", Arch: "SMT8"})
	if status8 != http.StatusOK || !smt8.CacheHit {
		t.Fatalf("SMT8 did not hit FA8's cache entry: status %d, %+v", status8, smt8)
	}
	if !bytes.Equal(fa8.Result, smt8.Result) {
		t.Fatal("FA8/SMT8 shared entry differs")
	}
}

// TestServiceBackpressure is the acceptance test's second half: with
// one gated worker and a 2-slot queue, a burst beyond capacity gets
// 429 + Retry-After while every admitted job completes.
func TestServiceBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, QueueCap: 2})
	gate := make(chan struct{})
	srv.pool.gate = gate

	specs := []JobSpec{
		{App: "swim", Arch: "FA8"},
		{App: "swim", Arch: "FA4"},
		{App: "swim", Arch: "FA2"},
		{App: "swim", Arch: "FA1"},
		{App: "swim", Arch: "SMT2"},
		{App: "swim", Arch: "SMT4"},
	}

	// First submission is picked up by the (gated) worker; wait until it
	// leaves the queue so admission counts are deterministic.
	status, j0, _ := submit(t, ts, specs[0])
	if status != http.StatusAccepted {
		t.Fatalf("job 0: status %d", status)
	}
	waitDepth := time.Now().Add(10 * time.Second)
	for srv.pool.Depth() != 0 {
		if time.Now().After(waitDepth) {
			t.Fatal("worker never picked up job 0")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue (cap 2) now takes exactly two more; the rest bounce.
	admitted := []string{j0.ID}
	var rejected int
	for _, spec := range specs[1:] {
		status, j, hdr := submit(t, ts, spec)
		switch status {
		case http.StatusAccepted:
			admitted = append(admitted, j.ID)
		case http.StatusTooManyRequests:
			rejected++
			if hdr.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("burst submission: unexpected status %d", status)
		}
	}
	if len(admitted) != 3 || rejected != 3 {
		t.Fatalf("admission control: admitted %d rejected %d, want 3/3", len(admitted), rejected)
	}

	close(gate) // release the worker
	for _, id := range admitted {
		j := waitJob(t, ts, id)
		if j.Status != StateDone {
			t.Fatalf("admitted job %s ended %q (%s)", id, j.Status, j.Error)
		}
	}

	// After the drain, new submissions are admitted again.
	status, j, _ := submit(t, ts, JobSpec{App: "swim", Arch: "SMT1"})
	if status != http.StatusAccepted {
		t.Fatalf("post-burst submission: status %d", status)
	}
	if j = waitJob(t, ts, j.ID); j.Status != StateDone {
		t.Fatalf("post-burst job failed: %+v", j)
	}
}

// TestServiceConcurrentIdenticalSubmissions races many submissions of
// one spec: the singleflight beneath the cache must simulate once, and
// every completed job must carry the same result bytes.
func TestServiceConcurrentIdenticalSubmissions(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 4, QueueCap: 32})
	spec := JobSpec{App: "vpenta", Arch: "FA4"}

	const n = 8
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, j, _ := submit(t, ts, spec)
			if status == http.StatusAccepted || status == http.StatusOK {
				ids[i] = j.ID
			}
		}(i)
	}
	wg.Wait()

	var ref []byte
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission was rejected despite queue capacity")
		}
		j := waitJob(t, ts, id)
		if j.Status != StateDone {
			t.Fatalf("job %s: %q (%s)", id, j.Status, j.Error)
		}
		if ref == nil {
			ref = j.Result
		} else if !bytes.Equal(ref, j.Result) {
			t.Fatalf("job %s result differs from first", id)
		}
	}
}

// TestServiceDiskCacheSurvivesRestart runs a job under server A with a
// disk store, shuts A down gracefully (persisting the index), then
// boots server B on the same directory: the same spec must be served
// instantly from the disk tier with identical result bytes.
func TestServiceDiskCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{App: "tomcatv", Arch: "SMT2"}

	srvA, err := New(Options{DefaultSize: workloads.SizeTest, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	status, j, _ := submit(t, tsA, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submission on A: status %d", status)
	}
	first := waitJob(t, tsA, j.ID)
	if first.Status != StateDone {
		t.Fatalf("job on A failed: %+v", first)
	}
	tsA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srvA.Close(ctx); err != nil {
		t.Fatalf("graceful close: %v", err)
	}

	// The persisted index lists the entry.
	srvB, err := New(Options{DefaultSize: workloads.SizeTest, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	defer srvB.Close(context.Background())
	if idx := srvB.cache.Index(); len(idx) != 1 || idx[0].Hash != first.Hash {
		t.Fatalf("persisted index wrong: %+v (want 1 entry, hash %s)", idx, first.Hash)
	}

	status, second, _ := submit(t, tsB, spec)
	if status != http.StatusOK {
		t.Fatalf("resubmission on B: status %d, want 200 (instant)", status)
	}
	if !second.CacheHit || second.CacheTier != TierDisk {
		t.Fatalf("resubmission on B not a disk hit: %+v", second)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("disk round trip changed the result JSON")
	}
}

// TestServiceBadRequests pins the submission-time error paths.
func TestServiceBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, tc := range []JobSpec{
		{App: "nonesuch", Arch: "SMT2"},
		{App: "swim", Arch: "XJ9"},
		{App: "swim", Arch: "SMT2", Size: "huge"},
	} {
		status, _, _ := submit(t, ts, tc)
		if status != http.StatusBadRequest {
			t.Fatalf("%+v: status %d, want 400", tc, status)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/figures/6")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("figure 6: status %d, want 404", resp.StatusCode)
	}
}

// TestServiceHealthAndMetricsEndpoints smoke-checks /healthz and the
// metrics listing/serving path with sampling enabled.
func TestServiceHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{MetricsInterval: 5000})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Queue  struct {
			Capacity int `json:"capacity"`
			Workers  int `json:"workers"`
		} `json:"queue"`
		Cache Stats `json:"cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || health.Status != "ok" || health.Queue.Capacity == 0 || health.Queue.Workers == 0 {
		t.Fatalf("bad /healthz: %+v err=%v", health, err)
	}

	status, j, _ := submit(t, ts, JobSpec{App: "ocean", Arch: "SMT2"})
	if status != http.StatusAccepted {
		t.Fatalf("submission: status %d", status)
	}
	if j = waitJob(t, ts, j.ID); j.Status != StateDone {
		t.Fatalf("job: %+v", j)
	}

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Enabled bool     `json:"metrics_enabled"`
		Runs    []string `json:"runs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || !list.Enabled || len(list.Runs) == 0 {
		t.Fatalf("bad metrics listing: %+v err=%v", list, err)
	}

	resp, err = http.Get(ts.URL + "/v1/metrics/" + list.Runs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics fetch: status %d", resp.StatusCode)
	}
	var head [64]byte
	n, _ := resp.Body.Read(head[:])
	if !strings.HasPrefix(string(head[:n]), "start,") && !strings.Contains(string(head[:n]), ",") {
		t.Fatalf("metrics body does not look like CSV: %q", head[:n])
	}
}

// TestJobSpecHashNormalization pins spec-level canonicalization: a
// blank size resolving to the default and an explicit default hash
// identically, as do FA8 and SMT8.
func TestJobSpecHashNormalization(t *testing.T) {
	blank, err := JobSpec{App: "swim", Arch: "SMT2"}.Resolve(workloads.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := JobSpec{App: "swim", Arch: "SMT2", Size: "test"}.Resolve(workloads.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if blank.Hash() != explicit.Hash() {
		t.Fatal("defaulted and explicit size hash differently")
	}
	ref, err := JobSpec{App: "swim", Arch: "SMT2", Size: "ref"}.Resolve(workloads.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	if blank.Hash() == ref.Hash() {
		t.Fatal("different sizes share a hash")
	}
	fa8, _ := JobSpec{App: "swim", Arch: "FA8"}.Resolve(workloads.SizeTest)
	smt8, _ := JobSpec{App: "swim", Arch: "SMT8"}.Resolve(workloads.SizeTest)
	if fa8.Hash() != smt8.Hash() {
		t.Fatal("FA8 and SMT8 hash differently")
	}
	if fmt.Sprintf("%x", fa8.Hash()) != fa8.HashHex() {
		t.Fatal("HashHex mismatch")
	}
}

// TestCacheLRUEviction exercises the memory tier's bound directly.
func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	keys := [3][32]byte{{1}, {2}, {3}}
	for i, k := range keys {
		if err := c.Put(k, JobSpec{}, &core.Result{Cycles: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	for _, k := range keys[1:] {
		if _, _, ok := c.Get(k); !ok {
			t.Fatal("recent entry evicted")
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("bad stats: %+v", st)
	}
}
