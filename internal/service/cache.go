package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"clustersmt/internal/core"
)

// Cache tiers reported in job responses.
const (
	TierMemory = "memory"
	TierDisk   = "disk"
)

// Cache is the two-tier content-addressed result store. Tier 1 is an
// in-memory LRU keyed by the job's spec hash; it sits *over* the
// harness singleflight (which deduplicates concurrent identical runs
// within one process lifetime) and serves completed results without
// touching a Suite. Tier 2, enabled by a non-empty directory, persists
// one JSON envelope per result keyed by the hex hash, so identical
// submissions are served across daemon restarts; disk hits are promoted
// into the LRU. An index file summarizing the store is persisted on
// Close for inspection (it is advisory — lookups go straight to the
// per-entry files, so a stale or missing index never serves stale
// results).
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[[32]byte]*list.Element
	dir   string // "" = memory-only

	index map[string]IndexEntry // hex hash -> summary (disk tier only)

	hits, diskHits, misses uint64
}

type cacheEntry struct {
	key [32]byte
	res *core.Result
}

// IndexEntry is one line of the persisted cache index.
type IndexEntry struct {
	Hash    string `json:"hash"`
	App     string `json:"app"`
	Machine string `json:"machine"`
	Cycles  int64  `json:"cycles"`
}

// envelope is the on-disk per-entry format.
type envelope struct {
	Hash   string       `json:"hash"`
	Spec   JobSpec      `json:"spec"`
	Result *core.Result `json:"result"`
}

// DefaultCacheEntries bounds the in-memory LRU when the caller passes 0.
const DefaultCacheEntries = 256

// NewCache returns a cache holding up to capEntries results in memory
// (0 = DefaultCacheEntries) and, when dir is non-empty, persisting
// every stored result under it (the directory is created if needed and
// any existing index is loaded).
func NewCache(capEntries int, dir string) (*Cache, error) {
	if capEntries <= 0 {
		capEntries = DefaultCacheEntries
	}
	c := &Cache{
		cap:   capEntries,
		ll:    list.New(),
		items: make(map[[32]byte]*list.Element),
		dir:   dir,
		index: make(map[string]IndexEntry),
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
		if raw, err := os.ReadFile(filepath.Join(dir, "index.json")); err == nil {
			var entries []IndexEntry
			if err := json.Unmarshal(raw, &entries); err == nil {
				for _, e := range entries {
					c.index[e.Hash] = e
				}
			}
			// A corrupt index is discarded silently: it is advisory, and
			// reconcile rebuilds it from the envelope files.
		}
		if err := c.reconcile(); err != nil {
			return nil, fmt.Errorf("service: cache reconcile: %w", err)
		}
	}
	return c, nil
}

// reconcile aligns the loaded index with the envelope files actually
// present in the cache directory. The index is rewritten only on
// graceful Close, so a crash leaves it stale in both directions: Puts
// since the last Close are on disk but unindexed (orphans), and files
// removed out-of-band still have index lines (dangling). Lookups never
// trust the index, so neither form can serve a wrong result — but the
// Index() listing and the persisted summary would lie until the next
// graceful shutdown. Startup is the one place the directory is scanned,
// so the cost is one ReadDir plus one decode per orphan.
func (c *Cache) reconcile() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	present := make(map[string]bool)
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		hex := strings.TrimSuffix(name, ".json")
		if !isHexHash(hex) {
			continue // index.json, stray temp files, anything foreign
		}
		present[hex] = true
		if _, indexed := c.index[hex]; indexed {
			continue
		}
		// Orphan envelope (crash after a Put, before the index rewrite):
		// adopt it. A torn or corrupt file is skipped — Get treats it as
		// a miss and the next Put rewrites it atomically.
		raw, err := os.ReadFile(filepath.Join(c.dir, name))
		if err != nil {
			continue
		}
		var env envelope
		if err := json.Unmarshal(raw, &env); err != nil || env.Result == nil || env.Hash != hex {
			continue
		}
		c.index[hex] = IndexEntry{
			Hash:    hex,
			App:     env.Result.ProgramName,
			Machine: env.Result.Machine.Name,
			Cycles:  env.Result.Cycles,
		}
	}
	for hex := range c.index {
		if !present[hex] {
			delete(c.index, hex)
		}
	}
	return nil
}

// isHexHash reports whether s is a 64-char lowercase hex string — the
// filename stem Put gives every envelope.
func isHexHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// Get returns the cached result for key and the tier that served it.
func (c *Cache) Get(key [32]byte) (res *core.Result, tier string, ok bool) {
	c.mu.Lock()
	if el, hit := c.items[key]; hit {
		c.ll.MoveToFront(el)
		c.hits++
		res = el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, TierMemory, true
	}
	c.mu.Unlock()

	if c.dir == "" {
		c.miss()
		return nil, "", false
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		c.miss()
		return nil, "", false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Result == nil {
		// A truncated or corrupt entry is treated as a miss; the next
		// Put rewrites it atomically.
		c.miss()
		return nil, "", false
	}
	c.mu.Lock()
	c.diskHits++
	c.insertLocked(key, env.Result)
	c.mu.Unlock()
	return env.Result, TierDisk, true
}

func (c *Cache) miss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// Put stores a result under key in both tiers. The disk write is
// atomic (temp file + rename), so a crash mid-write leaves either the
// old entry or none — never a torn one.
func (c *Cache) Put(key [32]byte, spec JobSpec, res *core.Result) error {
	c.mu.Lock()
	c.insertLocked(key, res)
	hex := fmt.Sprintf("%x", key)
	if c.dir != "" {
		c.index[hex] = IndexEntry{
			Hash:    hex,
			App:     res.ProgramName,
			Machine: res.Machine.Name,
			Cycles:  res.Cycles,
		}
	}
	c.mu.Unlock()

	if c.dir == "" {
		return nil
	}
	raw, err := json.Marshal(envelope{Hash: hex, Spec: spec, Result: res})
	if err != nil {
		return fmt.Errorf("service: encode cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

func (c *Cache) insertLocked(key [32]byte, res *core.Result) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *Cache) path(key [32]byte) string {
	return filepath.Join(c.dir, fmt.Sprintf("%x.json", key))
}

// Stats is a point-in-time cache summary for /healthz.
type Stats struct {
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	Disk     bool   `json:"disk"`
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:  c.ll.Len(),
		Capacity: c.cap,
		Hits:     c.hits,
		DiskHits: c.diskHits,
		Misses:   c.misses,
		Disk:     c.dir != "",
	}
}

// Index returns the persisted-store summary, sorted by hash.
func (c *Cache) Index() []IndexEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]IndexEntry, 0, len(c.index))
	for _, e := range c.index {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return strings.Compare(out[i].Hash, out[j].Hash) < 0 })
	return out
}

// Close persists the cache index (disk tier only). The per-entry files
// are already durable; the index is the human/tooling summary written
// once at graceful shutdown.
func (c *Cache) Close() error {
	if c.dir == "" {
		return nil
	}
	raw, err := json.MarshalIndent(c.Index(), "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "index-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(c.dir, "index.json"))
}
