// Package service is the serving subsystem: it turns the simulator
// into a long-lived, queryable system. cmd/clusterd exposes its HTTP
// API; the pieces are a job codec with content-addressed spec hashing
// (codec.go), a bounded FIFO worker pool with admission control
// (queue.go), a two-tier result cache — in-memory LRU over the harness
// singleflight plus an optional on-disk store (cache.go) — and the
// HTTP server with graceful drain (server.go).
package service

import (
	"crypto/sha256"
	"fmt"
	"strings"

	"clustersmt/internal/config"
	"clustersmt/internal/workloads"
)

// JobSpec is one simulation request as submitted to POST /v1/jobs. The
// zero values resolve to the daemon defaults (low-end machine, the
// server's default input size, the core cycle bound).
type JobSpec struct {
	// App names a workload: the paper's six, the extras, or any name
	// resolvable by workloads.ByName.
	App string `json:"app"`
	// Arch is a Table 2 architecture name (FA8 … SMT1, SMT8).
	Arch string `json:"arch"`
	// HighEnd selects the 4-chip machine instead of the 1-chip one.
	HighEnd bool `json:"high_end,omitempty"`
	// Size is "test" or "ref" ("" = the server default).
	Size string `json:"size,omitempty"`
}

// ResolvedJob is a JobSpec after name resolution: everything needed to
// run the simulation plus the fully-resolved machine the cache key is
// derived from.
type ResolvedJob struct {
	Spec     JobSpec
	Workload workloads.Workload
	Arch     config.Arch
	Machine  config.Machine
	Size     workloads.Size
}

// Resolve validates the spec against a default size and returns the
// resolved job. Unknown names and sizes are submission-time errors
// (HTTP 400), never queued.
func (s JobSpec) Resolve(defaultSize workloads.Size) (*ResolvedJob, error) {
	w, err := workloads.ByName(s.App)
	if err != nil {
		return nil, err
	}
	a, err := config.ArchByName(s.Arch)
	if err != nil {
		return nil, err
	}
	size := defaultSize
	switch strings.ToLower(s.Size) {
	case "":
	case "test":
		size = workloads.SizeTest
	case "ref":
		size = workloads.SizeRef
	default:
		return nil, fmt.Errorf("service: unknown size %q (want test or ref)", s.Size)
	}
	m := config.LowEnd(a)
	if s.HighEnd {
		m = config.HighEnd(a)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Normalize the spec so equal submissions render equal JSON.
	s.App = w.Name
	s.Arch = a.Name
	s.Size = size.String()
	return &ResolvedJob{Spec: s, Workload: w, Arch: a, Machine: m, Size: size}, nil
}

// Hash is the content-addressed cache key: SHA-256 over a versioned,
// field-ordered encoding of the workload spec and the fully-resolved
// machine's canonical form (config.Machine.AppendCanonical). Like the
// machine encoding it keys on physical content only: FA8 and SMT8
// submissions share a key, as do a blank Size and an explicit server
// default. MaxCycles is server-wide, not per-job, so it does not
// participate; a daemon serving a different bound should use a
// different cache directory.
func (r *ResolvedJob) Hash() [32]byte {
	var b strings.Builder
	b.WriteString("clustersmt.Job/v1\n")
	fmt.Fprintf(&b, "app=%q\n", r.Workload.Name)
	fmt.Fprintf(&b, "size=%s\n", r.Size)
	r.Machine.AppendCanonical(&b)
	return sha256.Sum256([]byte(b.String()))
}

// HashHex is the lowercase hex form of Hash, used in job ids, disk
// cache filenames and API responses.
func (r *ResolvedJob) HashHex() string {
	h := r.Hash()
	return fmt.Sprintf("%x", h)
}
