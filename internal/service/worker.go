package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"clustersmt/internal/core"
	"clustersmt/internal/telemetry"
)

// probeTimeout bounds one peer cache probe or snapshot fetch. Probes
// run on the simulation path (ahead of every owner-side run), so a
// hung peer must cost bounded time before the scratch fallback.
const probeTimeout = 5 * time.Second

// peerStats counts one peer's probe outcomes as seen from this worker.
type peerStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Errors uint64 `json:"errors"`
}

// worker is the fabric client side: it registers this server with a
// coordinator, heartbeats until closed, and — as the server's Remote
// hook — probes the peers the coordinator reports for already-computed
// results before any local simulation runs. Jobs rebalanced onto this
// node after a membership change are thereby served from wherever they
// were first computed; only a fleet-wide miss simulates.
type worker struct {
	s        *Server
	coord    string // coordinator base URL
	self     string // advertise URL (this worker's ring identity)
	interval time.Duration

	mu         sync.Mutex
	peers      []string
	stats      map[string]*peerStats
	registered bool
	lastErr    string

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

func newWorker(s *Server, coordURL, advertiseURL string, interval time.Duration) *worker {
	return &worker{
		s:        s,
		coord:    coordURL,
		self:     advertiseURL,
		interval: interval,
		stats:    make(map[string]*peerStats),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// loop registers, then heartbeats every interval until closed. A 404
// (coordinator restarted, or this worker was evicted while partitioned)
// downgrades to unregistered and the next tick re-registers; transport
// errors are recorded and retried — the worker keeps serving its local
// API regardless, so a lost coordinator degrades routing, not service.
func (w *worker) loop() {
	defer close(w.done)
	w.announce()
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.announce()
		}
	}
}

func (w *worker) close() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

func (w *worker) announce() {
	w.mu.Lock()
	path := "/fabric/register"
	if w.registered {
		path = "/fabric/heartbeat"
	}
	w.mu.Unlock()

	req := registerRequest{
		URL:      w.self,
		Version:  w.s.version,
		Workers:  w.s.pool.Workers(),
		QueueCap: w.s.pool.Cap(),
		Depth:    w.s.pool.Depth(),
		Running:  w.s.pool.Running(),
	}
	body, _ := json.Marshal(req)
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.coord+path, bytes.NewReader(body))
	if err != nil {
		w.noteError(err)
		return
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := fabricHTTP.Do(httpReq)
	if err != nil {
		w.noteError(err)
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var ack registerResponse
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			w.noteError(err)
			return
		}
		w.mu.Lock()
		first := !w.registered
		w.registered = true
		w.lastErr = ""
		w.peers = ack.Peers
		w.mu.Unlock()
		if first {
			slog.Info("fabric: registered",
				"coordinator", w.coord, "peers", len(ack.Peers))
			if ack.Version != w.s.version {
				slog.Warn("fabric: version mismatch",
					"coordinator", w.coord, "coordinator_version", ack.Version, "worker_version", w.s.version)
			}
		}
	case http.StatusNotFound:
		// Evicted or coordinator restarted: re-register next tick.
		_, _ = io.Copy(io.Discard, resp.Body)
		w.mu.Lock()
		w.registered = false
		w.mu.Unlock()
	default:
		_, _ = io.Copy(io.Discard, resp.Body)
		w.noteError(fmt.Errorf("announce status %d", resp.StatusCode))
	}
}

func (w *worker) noteError(err error) {
	w.mu.Lock()
	w.lastErr = err.Error()
	w.mu.Unlock()
}

func (w *worker) peerList() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, len(w.peers))
	copy(out, w.peers)
	return out
}

// probePeers is the worker's Remote hook body: ask every known peer
// whether it already holds the result for rj's content hash. The first
// hit is promoted into the local cache (both tiers) and served; a
// fleet-wide miss declines so the harness simulates from scratch. Any
// peer failure is counted and skipped — a flaky peer can only cost a
// probe round trip, never correctness.
func (w *worker) probePeers(ctx context.Context, spec JobSpec, rj *ResolvedJob) (*core.Result, bool, error) {
	hexHash := rj.HashHex()
	for _, peer := range w.peerList() {
		start := time.Now()
		res, outcome := w.probeOne(ctx, peer, hexHash)
		if w.s.tel != nil {
			w.s.tel.peerProbe.With(peer).Observe(time.Since(start).Seconds())
		}
		w.s.span(telemetry.TraceIDFrom(ctx), "probe", start,
			map[string]string{"peer": peer, "outcome": outcome.String()})
		w.count(peer, outcome)
		if outcome == probeHit {
			_ = w.s.cache.Put(rj.Hash(), spec, res)
			return res, true, nil
		}
		if ctx.Err() != nil {
			return nil, true, ctx.Err()
		}
	}
	return nil, false, nil
}

type probeOutcome int

const (
	probeHit probeOutcome = iota
	probeMiss
	probeError
)

func (o probeOutcome) String() string {
	switch o {
	case probeHit:
		return "hit"
	case probeMiss:
		return "miss"
	}
	return "error"
}

func (w *worker) probeOne(ctx context.Context, peer, hexHash string) (*core.Result, probeOutcome) {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/fabric/probe/"+hexHash, nil)
	if err != nil {
		return nil, probeError
	}
	if id := telemetry.TraceIDFrom(ctx); id != "" {
		req.Header.Set(telemetry.TraceIDHeader, id)
	}
	resp, err := fabricHTTP.Do(req)
	if err != nil {
		return nil, probeError
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, probeMiss
	}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, probeError
	}
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Result == nil || env.Hash != hexHash {
		return nil, probeError
	}
	return env.Result, probeHit
}

func (w *worker) count(peer string, outcome probeOutcome) {
	w.mu.Lock()
	st, ok := w.stats[peer]
	if !ok {
		st = &peerStats{}
		w.stats[peer] = st
	}
	switch outcome {
	case probeHit:
		st.Hits++
	case probeMiss:
		st.Misses++
	case probeError:
		st.Errors++
	}
	w.mu.Unlock()
}

// fetchSnapshot pulls a warmed checkpoint from a peer. Misses and
// errors are indistinguishable to the caller by design: either way the
// next peer is tried and the warm-up re-runs on a fleet-wide miss.
// ctx carries the requesting job's trace ID; the fetch itself still
// bounds its own deadline.
func (w *worker) fetchSnapshot(ctx context.Context, peer, key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/fabric/snap/"+key, nil)
	if err != nil {
		return nil, false
	}
	if id := telemetry.TraceIDFrom(ctx); id != "" {
		req.Header.Set(telemetry.TraceIDHeader, id)
	}
	resp, err := fabricHTTP.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil || len(data) == 0 {
		return nil, false
	}
	return data, true
}

// health is the worker's /healthz fabric section.
func (w *worker) health() map[string]any {
	w.mu.Lock()
	defer w.mu.Unlock()
	probes := make(map[string]peerStats, len(w.stats))
	for peer, st := range w.stats {
		probes[peer] = *st
	}
	peers := make([]string, len(w.peers))
	copy(peers, w.peers)
	sort.Strings(peers)
	return map[string]any{
		"role":        "worker",
		"coordinator": w.coord,
		"advertise":   w.self,
		"registered":  w.registered,
		"last_error":  w.lastErr,
		"peers":       peers,
		"probes":      probes,
	}
}
