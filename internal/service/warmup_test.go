package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clustersmt/internal/workloads"
)

// warmupSpec returns the canonical name of one sweep-grid variant
// carrying a shared 1500-iteration warm-up prefix.
func warmupSpecName(chain, indep int) string {
	return workloads.Synthetic(workloads.SyntheticSpec{
		ChainLen: chain, IndepOps: indep, Iters: 256, WarmupIters: 1500,
	}).Name
}

// TestServiceWarmupForksAndPersists drives the daemon's warm-up path
// end to end: jobs submitted by canonical synth(...) name fork from one
// warmed parent, results stay bit-identical to a warm-up-free daemon,
// the checkpoint is persisted under the cache directory, and a
// restarted daemon restores it instead of re-running the warm-up.
func TestServiceWarmupForksAndPersists(t *testing.T) {
	dir := t.TempDir()
	variants := []string{
		warmupSpecName(0, 4), warmupSpecName(4, 0), warmupSpecName(2, 2),
	}

	// Reference results from a daemon with warm-up sharing off.
	_, tsRef := newTestServer(t, Options{})
	ref := make(map[string]json.RawMessage)
	for _, app := range variants {
		status, j, _ := submit(t, tsRef, JobSpec{App: app, Arch: "SMT2"})
		if status != http.StatusAccepted {
			t.Fatalf("reference submit %s: status %d", app, status)
		}
		done := waitJob(t, tsRef, j.ID)
		if done.Status != StateDone {
			t.Fatalf("reference job %s failed: %+v", app, done)
		}
		ref[app] = done.Result
	}

	srvA, err := New(Options{DefaultSize: workloads.SizeTest, CacheDir: dir, WarmupCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	for _, app := range variants {
		status, j, _ := submit(t, tsA, JobSpec{App: app, Arch: "SMT2"})
		if status != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", app, status)
		}
		done := waitJob(t, tsA, j.ID)
		if done.Status != StateDone {
			t.Fatalf("job %s failed: %+v", app, done)
		}
		if !bytes.Equal(ref[app], done.Result) {
			t.Fatalf("%s: warmed daemon's result differs from the warm-up-free daemon's", app)
		}
	}
	if forks, restores := srvA.suite(workloads.SizeTest).WarmForks(); forks != int64(len(variants)) || restores != 0 {
		t.Fatalf("daemon A: %d forks / %d restores, want %d / 0", forks, restores, len(variants))
	}

	// /healthz surfaces the warm-up counters and the persisted count.
	resp, err := http.Get(tsA.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Warmup struct {
			Enabled   bool  `json:"enabled"`
			Forks     int64 `json:"forks"`
			Persisted int   `json:"persisted"`
		} `json:"warmup"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !health.Warmup.Enabled || health.Warmup.Forks != int64(len(variants)) || health.Warmup.Persisted != 1 {
		t.Fatalf("healthz warmup block wrong: %+v", health.Warmup)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), "snap-") && strings.HasSuffix(de.Name(), ".bin") {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d persisted snapshots, want 1 (one warmed parent)", snaps)
	}

	tsA.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srvA.Close(ctx); err != nil {
		t.Fatalf("graceful close: %v", err)
	}

	// Daemon B inherits the directory: a NEW variant (not in the result
	// cache) restores the persisted parent and forks, skipping the
	// warm-up run entirely.
	srvB, err := New(Options{DefaultSize: workloads.SizeTest, CacheDir: dir, WarmupCycles: 1000})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	defer srvB.Close(context.Background())

	fresh := warmupSpecName(6, 0)
	status, j, _ := submit(t, tsB, JobSpec{App: fresh, Arch: "SMT2"})
	if status != http.StatusAccepted {
		t.Fatalf("submit %s on B: status %d", fresh, status)
	}
	done := waitJob(t, tsB, j.ID)
	if done.Status != StateDone {
		t.Fatalf("job %s on B failed: %+v", fresh, done)
	}
	if forks, restores := srvB.suite(workloads.SizeTest).WarmForks(); forks != 1 || restores != 1 {
		t.Fatalf("daemon B: %d forks / %d restores, want 1 / 1 (restore from disk, no warm re-run)", forks, restores)
	}

	statusRef, jRef, _ := submit(t, tsRef, JobSpec{App: fresh, Arch: "SMT2"})
	if statusRef != http.StatusAccepted {
		t.Fatalf("reference submit %s: status %d", fresh, statusRef)
	}
	doneRef := waitJob(t, tsRef, jRef.ID)
	if !bytes.Equal(doneRef.Result, done.Result) {
		t.Fatalf("%s: restored-fork result differs from scratch", fresh)
	}

	// The snapshot file must not confuse the result-cache reconciler:
	// daemon B's index lists exactly the result envelopes (A's three,
	// reconciled at startup, plus the fresh job) and never the snapshot.
	if idx := srvB.cache.Index(); len(idx) != len(variants)+1 {
		t.Fatalf("reconciled index has %d entries, want %d (snap-*.bin must be ignored)", len(idx), len(variants)+1)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Fatalf("missing persisted index: %v", err)
	}
}
