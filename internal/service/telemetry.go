// Service-side telemetry wiring: one telemetry.Registry per Server
// exposing the whole job path as OpenMetrics at GET /metrics, one
// bounded span ring per node behind GET /v1/trace/{id}, and the
// fan-out that merges a trace's spans from every fabric node into one
// Chrome trace_event timeline.
//
// Metric families mirror state the server already maintains wherever
// possible (func-backed collectors over the pool, cache, coordinator
// and worker counters) so a scrape reads live values with no double
// bookkeeping; only the latency histograms are new state. Everything
// here is read-only with respect to results — TestTelemetryDifferential
// pins that simulation output is bit-identical with telemetry on or
// off.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"time"

	"clustersmt/internal/telemetry"
)

// svcTelemetry holds the Server's registry, span ring, and the
// materialized latency histograms. A nil *svcTelemetry (telemetry
// disabled) is valid: every method nil-guards, so call sites stay
// unconditional.
type svcTelemetry struct {
	reg   *telemetry.Registry
	spans *telemetry.SpanRing

	queueWait  *telemetry.Histogram
	e2e        *telemetry.Histogram
	simulate   *telemetry.HistogramVec
	cacheWrite *telemetry.Histogram
	dispatch   *telemetry.Histogram
	snapFetch  *telemetry.Histogram
	peerProbe  *telemetry.HistogramVec
}

// newSvcTelemetry builds the registry for one server. All func-backed
// families resolve the fabric role at scrape time, so registration
// order relative to JoinFabric does not matter.
func newSvcTelemetry(s *Server, spanCap int) *svcTelemetry {
	r := telemetry.NewRegistry()
	t := &svcTelemetry{
		reg:   r,
		spans: telemetry.NewSpanRing(spanCap),

		queueWait: r.Histogram("clusterd_job_queue_wait_seconds",
			"Time jobs spend admitted but not yet running.", telemetry.DefaultLatencyBuckets),
		e2e: r.Histogram("clusterd_job_e2e_seconds",
			"End-to-end job latency, submission to terminal state.", telemetry.DefaultLatencyBuckets),
		simulate: r.HistogramVec("clusterd_simulate_seconds",
			"Wall time of local simulations (singleflight owners only), by allocation policy.",
			telemetry.DefaultLatencyBuckets, "policy"),
		cacheWrite: r.Histogram("clusterd_cache_write_seconds",
			"Time to fill the result cache after a fresh simulation.", telemetry.DefaultLatencyBuckets),
		dispatch: r.Histogram("clusterd_dispatch_seconds",
			"Coordinator dispatch attempts, submit to verdict.", telemetry.DefaultLatencyBuckets),
		snapFetch: r.Histogram("clusterd_snapshot_fetch_seconds",
			"Warmed-checkpoint loads through the federated store.", telemetry.DefaultLatencyBuckets),
		peerProbe: r.HistogramVec("clusterd_peer_probe_seconds",
			"Per-peer cache probe latency.", telemetry.DefaultLatencyBuckets, "peer"),
	}

	r.CollectFunc("clusterd_build_info", "Build version as a label; value is always 1.",
		telemetry.TypeGauge, []string{"version"},
		func(emit func([]string, float64)) { emit([]string{s.version}, 1) })
	r.GaugeFunc("clusterd_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })

	r.CounterFunc("clusterd_jobs_accepted", "Jobs admitted to the queue.",
		func() float64 { a, _, _ := s.pool.Counters(); return float64(a) })
	r.CounterFunc("clusterd_jobs_rejected", "Jobs rejected with 429 (queue full or draining).",
		func() float64 { _, rej, _ := s.pool.Counters(); return float64(rej) })
	r.CounterFunc("clusterd_jobs_completed", "Jobs that reached a terminal state through the pool.",
		func() float64 { _, _, c := s.pool.Counters(); return float64(c) })
	r.GaugeFunc("clusterd_queue_depth", "Jobs admitted, not yet picked up by a worker.",
		func() float64 { return float64(s.pool.Depth()) })
	r.GaugeFunc("clusterd_queue_running", "Jobs currently executing.",
		func() float64 { return float64(s.pool.Running()) })
	r.GaugeFunc("clusterd_queue_capacity", "Admission FIFO bound.",
		func() float64 { return float64(s.pool.Cap()) })
	r.GaugeFunc("clusterd_queue_workers", "Pool worker count.",
		func() float64 { return float64(s.pool.Workers()) })

	r.CollectFunc("clusterd_cache_hits", "Result cache hits by tier.",
		telemetry.TypeCounter, []string{"tier"},
		func(emit func([]string, float64)) {
			st := s.cache.Stats()
			emit([]string{TierMemory}, float64(st.Hits))
			emit([]string{TierDisk}, float64(st.DiskHits))
		})
	r.CounterFunc("clusterd_cache_misses", "Result cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	r.GaugeFunc("clusterd_cache_entries", "Entries resident in the memory LRU.",
		func() float64 { return float64(s.cache.Stats().Entries) })

	r.CounterFunc("clusterd_simulations", "Simulations actually executed on this node.",
		func() float64 { return float64(s.simulations()) })
	r.CounterFunc("clusterd_alloc_migrations", "Thread migrations performed by dynamic allocation policies.",
		func() float64 { return float64(s.allocMigrations()) })
	r.CounterFunc("clusterd_alloc_epochs", "Allocation epoch boundaries evaluated by dynamic policies.",
		func() float64 { return float64(s.allocEpochs()) })

	r.CollectFunc("clusterd_fabric_events", "Coordinator routing events.",
		telemetry.TypeCounter, []string{"event"},
		func(emit func([]string, float64)) {
			c := s.coordinator()
			if c == nil {
				return
			}
			emit([]string{"dispatched"}, float64(c.dispatched.Load()))
			emit([]string{"requeued"}, float64(c.requeued.Load()))
			emit([]string{"evicted"}, float64(c.evicted.Load()))
			emit([]string{"throttled"}, float64(c.throttled.Load()))
			emit([]string{"local_fallback"}, float64(c.fallbacks.Load()))
		})
	r.CollectFunc("clusterd_fabric_served", "Peer probe/snapshot requests served by this node.",
		telemetry.TypeCounter, []string{"channel", "outcome"},
		func(emit func([]string, float64)) {
			emit([]string{"probe", "hit"}, float64(s.probeServedHits.Load()))
			emit([]string{"probe", "miss"}, float64(s.probeServedMisses.Load()))
			emit([]string{"snap", "hit"}, float64(s.snapServedHits.Load()))
			emit([]string{"snap", "miss"}, float64(s.snapServedMisses.Load()))
		})
	r.CollectFunc("clusterd_peer_probes", "Cache probes issued by this worker, by peer and outcome.",
		telemetry.TypeCounter, []string{"peer", "outcome"},
		func(emit func([]string, float64)) {
			wk := s.workerRef()
			if wk == nil {
				return
			}
			wk.mu.Lock()
			defer wk.mu.Unlock()
			for peer, st := range wk.stats {
				emit([]string{peer, "hit"}, float64(st.Hits))
				emit([]string{peer, "miss"}, float64(st.Misses))
				emit([]string{peer, "error"}, float64(st.Errors))
			}
		})

	// Fleet gauges: the coordinator's /metrics carries one sample per
	// registered member, so a single scrape sees the whole fleet's load.
	fleetGauge := func(name, help string, value func(*member) float64) {
		r.CollectFunc(name, help, telemetry.TypeGauge, []string{"member"},
			func(emit func([]string, float64)) {
				c := s.coordinator()
				if c == nil {
					return
				}
				c.mu.Lock()
				defer c.mu.Unlock()
				for url, m := range c.members {
					emit([]string{url}, value(m))
				}
			})
	}
	fleetGauge("clusterd_fleet_member_up", "1 for every currently registered member.",
		func(*member) float64 { return 1 })
	fleetGauge("clusterd_fleet_member_workers", "Registered worker-pool size per member.",
		func(m *member) float64 { return float64(m.Workers) })
	fleetGauge("clusterd_fleet_member_queue_depth", "Last reported queue depth per member.",
		func(m *member) float64 { return float64(m.Depth) })
	fleetGauge("clusterd_fleet_member_running", "Last reported running jobs per member.",
		func(m *member) float64 { return float64(m.Running) })
	fleetGauge("clusterd_fleet_member_heartbeat_age_seconds", "Seconds since each member's last heartbeat.",
		func(m *member) float64 { return time.Since(m.lastBeat).Seconds() })

	r.GaugeFunc("clusterd_trace_spans", "Spans retained in the trace ring.",
		func() float64 { return float64(t.spans.Len()) })
	r.CounterFunc("clusterd_trace_spans_dropped", "Spans overwritten by ring wraparound.",
		func() float64 { return float64(t.spans.Dropped()) })
	return t
}

// simulations sums executed simulations across suites (also feeds
// /healthz).
func (s *Server) simulations() int64 {
	s.suiteMu.Lock()
	defer s.suiteMu.Unlock()
	var n int64
	for _, st := range s.suites {
		n += st.Simulations()
	}
	return n
}

// allocMigrations sums accepted thread migrations across suites.
func (s *Server) allocMigrations() int64 {
	s.suiteMu.Lock()
	defer s.suiteMu.Unlock()
	var n int64
	for _, st := range s.suites {
		n += st.AllocMigrations()
	}
	return n
}

// allocEpochs sums allocation epoch boundaries across suites.
func (s *Server) allocEpochs() int64 {
	s.suiteMu.Lock()
	defer s.suiteMu.Unlock()
	var n int64
	for _, st := range s.suites {
		n += st.AllocEpochs()
	}
	return n
}

// nodeName is this node's identity on trace timelines, resolved at
// record time so it reflects the fabric role even when JoinFabric runs
// after New.
func (s *Server) nodeName() string {
	if s.opts.NodeName != "" {
		return s.opts.NodeName
	}
	if s.coordinator() != nil {
		return "coordinator"
	}
	if wk := s.workerRef(); wk != nil {
		return wk.self
	}
	return "clusterd"
}

// span records one completed span on this node's ring. Safe (and a
// no-op) with telemetry disabled or without a trace ID.
func (s *Server) span(traceID, name string, start time.Time, attrs map[string]string) {
	if s.tel == nil || traceID == "" {
		return
	}
	s.tel.spans.Record(telemetry.Span{
		TraceID: traceID,
		Name:    name,
		Node:    s.nodeName(),
		StartUS: start.UnixMicro(),
		DurUS:   time.Since(start).Microseconds(),
		Attrs:   attrs,
	})
}

// observe is the nil-guarded histogram record.
func observe(h *telemetry.Histogram, d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// hist returns the named histogram, nil when telemetry is off — pair
// with observe.
func (s *Server) hist(pick func(*svcTelemetry) *telemetry.Histogram) *telemetry.Histogram {
	if s.tel == nil {
		return nil
	}
	return pick(s.tel)
}

// traceIDForRequest resolves the trace ID for a submission: a valid
// client-supplied X-Trace-Id is honored (cross-node dispatches arrive
// this way), anything else gets a fresh ID.
func traceIDForRequest(r *http.Request) string {
	if id := r.Header.Get(telemetry.TraceIDHeader); telemetry.ValidTraceID(id) {
		return id
	}
	return telemetry.NewTraceID()
}

func (s *Server) handleMetricsScrape(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: telemetry disabled"))
		return
	}
	s.tel.reg.Handler().ServeHTTP(w, r)
}

// traceSpansView is the wire form of one node's spans for a trace —
// what ?format=spans returns and what the fan-out consumes.
type traceSpansView struct {
	TraceID string           `json:"trace_id"`
	Spans   []telemetry.Span `json:"spans"`
}

// handleTrace serves GET /v1/trace/{id}: this node's spans for the
// trace, merged (unless ?scope=local) with every reachable fabric
// node's, rendered as Chrome trace_event JSON (or raw spans with
// ?format=spans). Fan-out failures are skipped — a partial timeline
// beats none, same degraded-never-wrong rule as the fabric itself.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: telemetry disabled"))
		return
	}
	id := r.PathValue("id")
	if !telemetry.ValidTraceID(id) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad trace id %q", id))
		return
	}
	spans := s.tel.spans.ByTrace(id)
	if r.URL.Query().Get("scope") != "local" {
		for _, peer := range s.traceFanout() {
			if remote, ok := fetchTraceSpans(r.Context(), peer, id); ok {
				spans = append(spans, remote...)
			}
		}
	}
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no spans retained for trace %s", id))
		return
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	if r.URL.Query().Get("format") == "spans" {
		writeJSON(w, http.StatusOK, traceSpansView{TraceID: id, Spans: spans})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = telemetry.WriteChromeTrace(w, spans)
}

// traceFanout lists the other nodes that may hold spans for a trace
// this node saw: a coordinator asks every member; a worker asks its
// peers and the coordinator; a single node asks nobody.
func (s *Server) traceFanout() []string {
	if c := s.coordinator(); c != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		urls := make([]string, 0, len(c.members))
		for url := range c.members {
			urls = append(urls, url)
		}
		sort.Strings(urls)
		return urls
	}
	if wk := s.workerRef(); wk != nil {
		return append(wk.peerList(), wk.coord)
	}
	return nil
}

// fetchTraceSpans pulls one remote node's local spans for a trace.
func fetchTraceSpans(ctx context.Context, baseURL, id string) ([]telemetry.Span, bool) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		baseURL+"/v1/trace/"+id+"?scope=local&format=spans", nil)
	if err != nil {
		return nil, false
	}
	resp, err := fabricHTTP.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var view traceSpansView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, false
	}
	return view.Spans, true
}

// runtimeInfo is the /healthz "runtime" block: build identity and host
// shape in one place, replacing per-handler version plumbing.
func (s *Server) runtimeInfo() map[string]any {
	return map[string]any{
		"version":        s.version,
		"go":             runtime.Version(),
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"num_cpu":        runtime.NumCPU(),
	}
}
