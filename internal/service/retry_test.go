package service

import (
	"context"
	"fmt"
	"testing"
	"time"

	"clustersmt/internal/workloads"
)

// TestRetryAfterContract pins the Retry-After estimate: whole seconds,
// never below 1, never above 60, rounding pending-work-per-worker up,
// and never panicking — not on an idle pool, a drained-queue-but-busy-
// workers pool, a deep queue, a drained pool, or a (defensively
// impossible) zero-worker pool.
func TestRetryAfterContract(t *testing.T) {
	rj, err := JobSpec{App: "swim", Arch: "FA8"}.Resolve(workloads.SizeTest)
	if err != nil {
		t.Fatal(err)
	}
	job := func(i int) *Job { return NewJob(fmt.Sprintf("r%d", i), rj) }
	waitState := func(p *Pool, depth, running int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for p.Depth() != depth || p.Running() != running {
			if time.Now().After(deadline) {
				t.Fatalf("pool never reached depth=%d running=%d (at %d/%d)",
					depth, running, p.Depth(), p.Running())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Empty pool: nothing pending, floor of 1.
	idle := &Server{pool: NewPool(4, 8, func(ctx context.Context, j *Job) { j.Complete(nil, "") })}
	defer idle.pool.Drain(context.Background())
	if got := idle.retryAfter(); got != 1 {
		t.Errorf("idle pool: retryAfter=%d, want 1", got)
	}

	// Queue drained but workers busy: one blocked job per worker leaves
	// Depth()==0; the estimate must stay 1 wave, not divide to zero.
	release := make(chan struct{})
	busy := &Server{pool: NewPool(2, 8, func(ctx context.Context, j *Job) {
		<-release
		j.Complete(nil, "")
	})}
	defer busy.pool.Drain(context.Background())
	for i := 0; i < 2; i++ {
		if err := busy.pool.Submit(job(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitState(busy.pool, 0, 2)
	if got := busy.retryAfter(); got != 1 {
		t.Errorf("busy workers, drained queue: retryAfter=%d, want 1", got)
	}

	// A partial extra wave rounds up: 2 running + 3 queued on 2 workers
	// is ceil(5/2) = 3 waves, not 5/2 floored to 2.
	for i := 2; i < 5; i++ {
		if err := busy.pool.Submit(job(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitState(busy.pool, 3, 2)
	if got := busy.retryAfter(); got != 3 {
		t.Errorf("5 pending on 2 workers: retryAfter=%d, want 3", got)
	}
	close(release)

	// Deep queue: capped at 60 seconds.
	hold := make(chan struct{})
	deep := &Server{pool: NewPool(1, 128, func(ctx context.Context, j *Job) {
		<-hold
		j.Complete(nil, "")
	})}
	for i := 0; i < 100; i++ {
		if err := deep.pool.Submit(job(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitState(deep.pool, 99, 1)
	if got := deep.retryAfter(); got != 60 {
		t.Errorf("100 pending on 1 worker: retryAfter=%d, want 60 (cap)", got)
	}
	close(hold)
	deep.pool.Drain(context.Background())

	// After a drain the pool is empty again: still the floor, no panic.
	if got := deep.retryAfter(); got != 1 {
		t.Errorf("drained pool: retryAfter=%d, want 1", got)
	}

	// Zero workers cannot be built through NewPool (it clamps to 1),
	// but the 429 path must tolerate a bare pool without dividing by
	// zero.
	zero := &Server{pool: &Pool{}}
	if got := zero.retryAfter(); got != 1 {
		t.Errorf("zero-worker pool: retryAfter=%d, want 1", got)
	}
}
