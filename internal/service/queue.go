package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"clustersmt/internal/core"
)

// Job states as reported by the API.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one submitted simulation flowing through the pool. All mutable
// fields are guarded by mu; done closes when the job reaches a terminal
// state.
type Job struct {
	ID   string
	Rj   *ResolvedJob
	Hash [32]byte
	// TraceID follows the job across nodes: set once at submission
	// (before the job is visible to any worker), read-only after.
	TraceID string

	mu        sync.Mutex
	state     string
	res       *core.Result
	errMsg    string
	cacheHit  bool
	cacheTier string
	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}
}

// NewJob returns a queued job for the resolved spec.
func NewJob(id string, rj *ResolvedJob) *Job {
	return &Job{
		ID:        id,
		Rj:        rj,
		Hash:      rj.Hash(),
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// submittedAt returns the admission timestamp — the anchor for
// queue-wait and end-to-end latency observations.
func (j *Job) submittedAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submitted
}

func (j *Job) start() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// Complete marks the job done with a result; tier is "" for a fresh
// run, TierMemory/TierDisk for a cache hit.
func (j *Job) Complete(res *core.Result, tier string) {
	j.mu.Lock()
	j.state = StateDone
	j.res = res
	j.cacheHit = tier != ""
	j.cacheTier = tier
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// Fail marks the job failed.
func (j *Job) Fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// ErrQueueFull is returned by Submit when the FIFO is at capacity — the
// admission-control signal the HTTP layer turns into 429 + Retry-After.
var ErrQueueFull = errors.New("service: job queue full")

// ErrDraining is returned by Submit once Drain has begun.
var ErrDraining = errors.New("service: server draining")

// DefaultQueueCap is the FIFO bound when the caller passes 0.
const DefaultQueueCap = 64

// Pool is the bounded worker pool: a FIFO channel of capacity Q feeding
// N workers. Admission control is the channel bound itself — Submit
// never blocks; a full queue is an immediate ErrQueueFull, keeping the
// daemon's memory footprint and worst-case latency bounded rather than
// accepting unbounded work.
type Pool struct {
	jobs    chan *Job
	run     func(ctx context.Context, j *Job)
	workers int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	draining atomic.Bool
	queued   atomic.Int64
	running  atomic.Int64

	accepted  atomic.Uint64
	rejected  atomic.Uint64
	completed atomic.Uint64

	// gate, when non-nil, is received from before each job runs — a
	// test hook making backpressure deterministic (hold the gate, fill
	// the queue, observe 429s, release).
	gate chan struct{}
}

// NewPool starts workers goroutines servicing a FIFO of capacity
// queueCap (0 = DefaultQueueCap). run executes one job and must mark it
// terminal; ctx passed to run is canceled when the pool stops.
func NewPool(workers, queueCap int, run func(ctx context.Context, j *Job)) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = DefaultQueueCap
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		jobs:    make(chan *Job, queueCap),
		run:     run,
		workers: workers,
		ctx:     ctx,
		cancel:  cancel,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.queued.Add(-1)
		if p.gate != nil {
			select {
			case <-p.gate:
			case <-p.ctx.Done():
				j.Fail(ErrDraining)
				continue
			}
		}
		p.running.Add(1)
		j.start()
		p.run(p.ctx, j)
		p.running.Add(-1)
		p.completed.Add(1)
	}
}

// Submit enqueues j, failing fast when the FIFO is full or the pool is
// draining.
func (p *Pool) Submit(j *Job) error {
	if p.draining.Load() {
		p.rejected.Add(1)
		return ErrDraining
	}
	select {
	case p.jobs <- j:
		p.queued.Add(1)
		p.accepted.Add(1)
		return nil
	default:
		p.rejected.Add(1)
		return ErrQueueFull
	}
}

// Depth returns the current queue depth (jobs admitted, not yet picked
// up by a worker).
func (p *Pool) Depth() int { return int(p.queued.Load()) }

// Running returns the number of jobs currently executing.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Cap returns the queue capacity.
func (p *Pool) Cap() int { return cap(p.jobs) }

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Counters returns accepted / rejected / completed totals.
func (p *Pool) Counters() (accepted, rejected, completed uint64) {
	return p.accepted.Load(), p.rejected.Load(), p.completed.Load()
}

// Drain stops admission and waits for queued and running jobs to
// finish; when ctx expires first, the remaining work is canceled (run
// contexts fire) and Drain waits for the workers to observe it. Always
// returns once every worker has exited.
func (p *Pool) Drain(ctx context.Context) {
	if p.draining.Swap(true) {
		p.wg.Wait() // second caller: just wait for the first drain
		return
	}
	close(p.jobs)
	idle := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
		p.cancel() // abort in-flight simulations
		<-idle
	}
	p.cancel()
}
