package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/telemetry"
)

// member is one registered worker as the coordinator sees it.
type member struct {
	URL      string
	Version  string
	Workers  int
	QueueCap int
	Depth    int
	Running  int
	lastBeat time.Time
}

// coordinator is the fabric front end: it owns the membership map and
// the consistent-hash ring over it, and provides the Remote hook that
// turns every simulation the coordinator's suites would run into a
// dispatch to the ring owner of the job's content hash.
//
// Identical configs hash identically (config.Machine.Canonical is
// name-free and alias-resolving), so the ring sends every repeat of a
// config to the node most likely to already hold its result — the
// fleet-wide analogue of the per-process singleflight.
type coordinator struct {
	s       *Server
	timeout time.Duration // heartbeat staleness bound before eviction

	mu      sync.Mutex
	members map[string]*member
	ring    *config.Ring

	dispatched atomic.Uint64 // runs resolved by a worker (ok or definitive failure)
	requeued   atomic.Uint64 // dispatch attempts rerouted after eviction or job loss
	evicted    atomic.Uint64 // members removed (stale heartbeat or unreachable)
	throttled  atomic.Uint64 // 429 waits honoring a worker's Retry-After
	fallbacks  atomic.Uint64 // runs simulated locally because no worker was usable

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newCoordinator(s *Server, timeout time.Duration) *coordinator {
	c := &coordinator{
		s:       s,
		timeout: timeout,
		members: make(map[string]*member),
		ring:    config.NewRing(0),
		stop:    make(chan struct{}),
	}
	c.wg.Add(1)
	go c.janitor()
	return c
}

// janitor evicts members whose heartbeats have gone stale. Polling at
// a quarter of the timeout bounds detection latency to ~1.25 timeouts.
func (c *coordinator) janitor() {
	defer c.wg.Done()
	period := c.timeout / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.mu.Lock()
			for url, m := range c.members {
				if now.Sub(m.lastBeat) > c.timeout {
					c.removeLocked(url, "missed heartbeats")
				}
			}
			c.mu.Unlock()
		}
	}
}

func (c *coordinator) close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// upsert records a registration (admit=true) or heartbeat (admit=false)
// and returns the requester's current peer set. A heartbeat from an
// unknown worker returns known=false — the 404 that triggers
// re-registration.
func (c *coordinator) upsert(req registerRequest, admit bool) (peers []string, known bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[req.URL]
	if !ok {
		if !admit {
			return nil, false
		}
		m = &member{URL: req.URL}
		c.members[req.URL] = m
		c.ring.Add(req.URL)
		slog.Info("fabric: worker joined",
			"worker", req.URL, "version", req.Version, "workers", req.Workers)
		if req.Version != c.s.version {
			slog.Warn("fabric: version mismatch",
				"worker", req.URL, "worker_version", req.Version, "coordinator_version", c.s.version)
		}
	}
	m.Version = req.Version
	m.Workers = req.Workers
	m.QueueCap = req.QueueCap
	m.Depth = req.Depth
	m.Running = req.Running
	m.lastBeat = time.Now()

	peers = make([]string, 0, len(c.members)-1)
	for url := range c.members {
		if url != req.URL {
			peers = append(peers, url)
		}
	}
	sort.Strings(peers)
	return peers, true
}

// removeLocked evicts url from membership and the ring. Dispatches
// already in flight to it fail on their next request and requeue —
// the ring no longer lists the member, so the retry lands elsewhere.
func (c *coordinator) removeLocked(url, reason string) {
	if _, ok := c.members[url]; !ok {
		return
	}
	delete(c.members, url)
	c.ring.Remove(url)
	c.evicted.Add(1)
	slog.Warn("fabric: evicted worker",
		"worker", url, "reason", reason, "remaining", len(c.members))
}

func (c *coordinator) evict(url, reason string) {
	c.mu.Lock()
	c.removeLocked(url, reason)
	c.mu.Unlock()
}

// owner returns the ring owner for a content hash, or ok=false when
// the fleet is empty.
func (c *coordinator) owner(hash [32]byte) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Owner(hash)
}

// fleetWorkers sums registered capacity, for Retry-After estimates.
func (c *coordinator) fleetWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.members {
		n += m.Workers
	}
	return n
}

// health is the coordinator's /healthz fabric section.
func (c *coordinator) health() map[string]any {
	c.mu.Lock()
	peers := make([]map[string]any, 0, len(c.members))
	urls := make([]string, 0, len(c.members))
	for url := range c.members {
		urls = append(urls, url)
	}
	sort.Strings(urls)
	for _, url := range urls {
		m := c.members[url]
		peers = append(peers, map[string]any{
			"url":               m.URL,
			"version":           m.Version,
			"workers":           m.Workers,
			"queue_cap":         m.QueueCap,
			"depth":             m.Depth,
			"running":           m.Running,
			"last_heartbeat_ms": time.Since(m.lastBeat).Milliseconds(),
		})
	}
	c.mu.Unlock()
	return map[string]any{
		"role":  "coordinator",
		"peers": peers,
		"counters": map[string]uint64{
			"dispatched":      c.dispatched.Load(),
			"requeued":        c.requeued.Load(),
			"evicted":         c.evicted.Load(),
			"throttled":       c.throttled.Load(),
			"local_fallbacks": c.fallbacks.Load(),
		},
	}
}

// dispatchVerdict classifies one attempt against one worker.
type dispatchVerdict int

const (
	dispatchDone  dispatchVerdict = iota // terminal: result or definitive error
	dispatchRetry                        // reroute: pick the (possibly new) ring owner again
)

// dispatch is the coordinator's Remote hook body: route the spec to
// the ring owner of its content hash and relay the outcome. The loop
// is the requeue path — any transport failure evicts the owner and
// re-picks on the rebalanced ring; a lost job (worker restarted and
// forgot it) re-picks without evicting. When no workers remain the
// hook declines (handled=false) and the harness simulates locally:
// degraded, never wrong.
func (c *coordinator) dispatch(ctx context.Context, spec JobSpec, hash [32]byte) (*core.Result, bool, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, true, err
		}
		owner, ok := c.owner(hash)
		if !ok {
			c.fallbacks.Add(1)
			return nil, false, nil
		}
		attempt := time.Now()
		res, verdict, err := c.tryWorker(ctx, owner, spec)
		observe(c.s.hist(func(t *svcTelemetry) *telemetry.Histogram { return t.dispatch }), time.Since(attempt))
		outcome := "done"
		if verdict == dispatchRetry {
			outcome = "retry"
		}
		c.s.span(telemetry.TraceIDFrom(ctx), "dispatch", attempt,
			map[string]string{"worker": owner, "outcome": outcome})
		if verdict == dispatchDone {
			if err == nil {
				c.dispatched.Add(1)
			}
			return res, true, err
		}
		c.requeued.Add(1)
	}
}

// tryWorker runs one dispatch attempt: submit, then long-poll to
// completion. Terminal job failures are returned as errors (they are
// deterministic simulation outcomes, cached like results); transport
// errors evict the worker and ask the caller to reroute.
func (c *coordinator) tryWorker(ctx context.Context, owner string, spec JobSpec) (*core.Result, dispatchVerdict, error) {
	view, status, err := c.postJob(ctx, owner, spec)
	switch {
	case err != nil:
		if ctx.Err() != nil {
			return nil, dispatchDone, ctx.Err()
		}
		slog.Warn("fabric: dispatch transport error",
			"worker", owner, "err", err, "trace_id", telemetry.TraceIDFrom(ctx))
		c.evict(owner, fmt.Sprintf("unreachable: %v", err))
		return nil, dispatchRetry, nil
	case status == http.StatusTooManyRequests:
		// The worker is saturated; honoring its Retry-After and
		// re-picking keeps the queue bound meaningful fleet-wide.
		c.throttled.Add(1)
		if err := sleepCtx(ctx, view.retryAfter); err != nil {
			return nil, dispatchDone, err
		}
		return nil, dispatchRetry, nil
	case status == http.StatusOK || status == http.StatusAccepted:
	default:
		return nil, dispatchDone, fmt.Errorf("service: worker %s rejected job: %s", owner, view.Error)
	}

	for view.Status != StateDone && view.Status != StateFailed {
		if err := ctx.Err(); err != nil {
			return nil, dispatchDone, err
		}
		next, status, err := c.pollJob(ctx, owner, view.ID)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, dispatchDone, ctx.Err()
			}
			c.evict(owner, fmt.Sprintf("unreachable: %v", err))
			return nil, dispatchRetry, nil
		case status == http.StatusNotFound:
			// The worker restarted and lost the job (its job table is
			// in-memory). It is alive and answering, so re-dispatch —
			// possibly right back to it — without evicting.
			return nil, dispatchRetry, nil
		case status != http.StatusOK:
			return nil, dispatchDone, fmt.Errorf("service: worker %s: poll status %d", owner, status)
		}
		view = next
	}
	if view.Status == StateFailed {
		return nil, dispatchDone, fmt.Errorf("service: worker %s: %s", owner, view.Error)
	}
	if view.Result == nil {
		return nil, dispatchDone, fmt.Errorf("service: worker %s: done job without result", owner)
	}
	return view.Result, dispatchDone, nil
}

// remoteView is the slice of jobView the coordinator consumes, plus
// the Retry-After a 429 carried.
type remoteView struct {
	ID         string       `json:"id"`
	Status     string       `json:"status"`
	Error      string       `json:"error"`
	Result     *core.Result `json:"result"`
	retryAfter time.Duration
}

func (c *coordinator) postJob(ctx context.Context, owner string, spec JobSpec) (remoteView, int, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return remoteView{}, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return remoteView{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	// The trace ID crosses the dispatch hop in the same header clients
	// use, so the worker's spans land on the coordinator's timeline.
	if id := telemetry.TraceIDFrom(ctx); id != "" {
		req.Header.Set(telemetry.TraceIDHeader, id)
	}
	resp, err := fabricHTTP.Do(req)
	if err != nil {
		return remoteView{}, 0, err
	}
	defer resp.Body.Close()
	var view remoteView
	if resp.StatusCode == http.StatusTooManyRequests {
		ra := 1
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			ra = v
		}
		view.retryAfter = time.Duration(ra) * time.Second
		_, _ = io.Copy(io.Discard, resp.Body)
		return view, resp.StatusCode, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil && resp.StatusCode < 400 {
		return remoteView{}, 0, fmt.Errorf("decode worker response: %w", err)
	}
	return view, resp.StatusCode, nil
}

func (c *coordinator) pollJob(ctx context.Context, owner, id string) (remoteView, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/v1/jobs/"+id+"?wait=5s", nil)
	if err != nil {
		return remoteView{}, 0, err
	}
	resp, err := fabricHTTP.Do(req)
	if err != nil {
		return remoteView{}, 0, err
	}
	defer resp.Body.Close()
	var view remoteView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return remoteView{}, 0, fmt.Errorf("decode worker poll: %w", err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return view, resp.StatusCode, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
