package service

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"clustersmt/internal/telemetry"
)

func scrapeMetrics(t *testing.T, ts *httptest.Server) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// metricValue extracts the value of the first sample line whose name
// (plus optional label set) matches prefix exactly.
func metricValue(t *testing.T, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == prefix {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample %q in exposition", prefix)
	return 0
}

// TestMetricsEndpoint is the scrape contract: after one simulated job
// and one cached resubmission, /metrics serves OpenMetrics text with
// the job-path counters and latency histograms populated, counters
// are monotonic across scrapes, and the exposition ends with # EOF.
func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Options{})

	spec := JobSpec{App: "swim", Arch: "SMT4"}
	status, j, _ := submit(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", status)
	}
	j = waitJob(t, ts, j.ID)
	if j.Status != StateDone {
		t.Fatalf("job did not complete: %+v", j)
	}
	if status, _, _ := submit(t, ts, spec); status != http.StatusOK {
		t.Fatalf("cached resubmission: status %d, want 200", status)
	}

	body, resp := scrapeMetrics(t, ts)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != telemetry.ContentType {
		t.Fatalf("Content-Type = %q, want %q", got, telemetry.ContentType)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatal("exposition does not end with # EOF")
	}

	// Every instrumented family is declared; sample values reflect the
	// two submissions (one simulated, one memory cache hit).
	for _, name := range []string{
		"clusterd_jobs_accepted", "clusterd_jobs_completed",
		"clusterd_job_queue_wait_seconds", "clusterd_job_e2e_seconds",
		"clusterd_simulate_seconds", "clusterd_cache_write_seconds",
		"clusterd_cache_hits", "clusterd_queue_depth",
		"clusterd_uptime_seconds", "clusterd_build_info",
		"clusterd_trace_spans",
		"clusterd_alloc_migrations", "clusterd_alloc_epochs",
	} {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("missing # TYPE for %s", name)
		}
		if !strings.Contains(body, "# HELP "+name+" ") {
			t.Errorf("missing # HELP for %s", name)
		}
	}
	if v := metricValue(t, body, "clusterd_jobs_accepted_total"); v != 1 {
		t.Errorf("jobs_accepted_total = %v, want 1 (cache hits are not accepted jobs)", v)
	}
	if v := metricValue(t, body, "clusterd_jobs_completed_total"); v != 1 {
		t.Errorf("jobs_completed_total = %v, want 1", v)
	}
	if v := metricValue(t, body, `clusterd_cache_hits_total{tier="memory"}`); v != 1 {
		t.Errorf(`cache_hits_total{tier="memory"} = %v, want 1`, v)
	}
	if v := metricValue(t, body, "clusterd_simulations_total"); v != 1 {
		t.Errorf("simulations_total = %v, want 1", v)
	}
	// The simulate histogram is labeled by allocation policy; the
	// default configuration reads as the normalized "static".
	if v := metricValue(t, body, `clusterd_simulate_seconds_count{policy="static"}`); v != 1 {
		t.Errorf(`simulate_seconds_count{policy="static"} = %v, want 1`, v)
	}
	// The static placement never migrates and runs no epochs.
	if v := metricValue(t, body, "clusterd_alloc_migrations_total"); v != 0 {
		t.Errorf("alloc_migrations_total = %v, want 0 under static", v)
	}
	if v := metricValue(t, body, "clusterd_alloc_epochs_total"); v != 0 {
		t.Errorf("alloc_epochs_total = %v, want 0 under static", v)
	}
	if v := metricValue(t, body, "clusterd_job_e2e_seconds_count"); v != 2 {
		t.Errorf("job_e2e_seconds_count = %v, want 2 (simulated job + cache fast path)", v)
	}
	if v := metricValue(t, body, "clusterd_job_queue_wait_seconds_count"); v != 1 {
		t.Errorf("job_queue_wait_seconds_count = %v, want 1", v)
	}

	// Queue-wait and end-to-end quantiles are pinned: one observation
	// each, so every quantile collapses to that observation's bucket and
	// must be finite, positive, and ordered (wait <= e2e upper bound).
	for _, q := range []float64{0.5, 0.9, 0.99} {
		w, e := srv.tel.queueWait.Quantile(q), srv.tel.e2e.Quantile(q)
		if math.IsNaN(w) || w <= 0 || math.IsInf(w, 0) {
			t.Errorf("queue-wait q%v = %v, want finite positive", q, w)
		}
		if math.IsNaN(e) || e <= 0 || math.IsInf(e, 0) {
			t.Errorf("e2e q%v = %v, want finite positive", q, e)
		}
	}
	if srv.tel.queueWait.Quantile(1) > srv.tel.e2e.Quantile(1) {
		t.Errorf("queue-wait upper bound %v exceeds e2e upper bound %v",
			srv.tel.queueWait.Quantile(1), srv.tel.e2e.Quantile(1))
	}

	// Counters are monotonic across scrapes.
	body2, _ := scrapeMetrics(t, ts)
	for _, c := range []string{
		"clusterd_jobs_accepted_total", "clusterd_jobs_completed_total",
		"clusterd_simulations_total",
	} {
		if metricValue(t, body2, c) < metricValue(t, body, c) {
			t.Errorf("%s decreased across scrapes", c)
		}
	}
}

// TestMetricsDisabled: with telemetry off, the observability endpoints
// 404 but the service API is untouched.
func TestMetricsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{DisableTelemetry: true})
	for _, path := range []string{"/metrics", "/v1/trace/abc123"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with telemetry off: status %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz with telemetry off: status %d", resp.StatusCode)
	}
}

// TestHealthzRuntimeContract pins the /healthz runtime block's shape:
// version, go toolchain, uptime, and CPU topology are always present.
func TestHealthzRuntimeContract(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string `json:"status"`
		Runtime struct {
			Version       string `json:"version"`
			Go            string `json:"go"`
			UptimeSeconds *int64 `json:"uptime_seconds"`
			GOMAXPROCS    int    `json:"gomaxprocs"`
			NumCPU        int    `json:"num_cpu"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	rt := h.Runtime
	if rt.Version == "" {
		t.Error("runtime.version is empty")
	}
	if !strings.HasPrefix(rt.Go, "go") {
		t.Errorf("runtime.go = %q, want a go version string", rt.Go)
	}
	if rt.UptimeSeconds == nil || *rt.UptimeSeconds < 0 {
		t.Errorf("runtime.uptime_seconds = %v, want >= 0", rt.UptimeSeconds)
	}
	if rt.GOMAXPROCS < 1 || rt.NumCPU < 1 {
		t.Errorf("runtime gomaxprocs=%d num_cpu=%d, want both >= 1", rt.GOMAXPROCS, rt.NumCPU)
	}
}

// TestTelemetryDifferential is telemetry's row in the differential
// matrix: the same spec through a telemetry-on and a telemetry-off
// daemon yields bit-identical result JSON — instrumentation observes
// the job path, never steers it.
func TestTelemetryDifferential(t *testing.T) {
	_, tsOn := newTestServer(t, Options{})
	_, tsOff := newTestServer(t, Options{DisableTelemetry: true})

	for _, spec := range []JobSpec{
		{App: "mgrid", Arch: "SMT4"},
		{App: "swim", Arch: "FA8", HighEnd: true},
	} {
		_, jOn, _ := submit(t, tsOn, spec)
		_, jOff, _ := submit(t, tsOff, spec)
		jOn, jOff = waitJob(t, tsOn, jOn.ID), waitJob(t, tsOff, jOff.ID)
		if jOn.Status != StateDone || jOff.Status != StateDone {
			t.Fatalf("%s: on=%s off=%s, want both done", spec.App, jOn.Status, jOff.Status)
		}
		if !bytes.Equal(jOn.Result, jOff.Result) {
			t.Errorf("%s on %s: result differs between telemetry on and off", spec.App, spec.Arch)
		}
	}
}

// traceSpansDoc mirrors handleTrace's ?format=spans response.
type traceSpansDoc struct {
	TraceID string           `json:"trace_id"`
	Spans   []telemetry.Span `json:"spans"`
}

func getTraceSpans(t *testing.T, baseURL, id string) (traceSpansDoc, int) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/trace/" + id + "?format=spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc traceSpansDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("decode trace spans: %v", err)
		}
	}
	return doc, resp.StatusCode
}

func spanNames(spans []telemetry.Span) map[string]int {
	names := make(map[string]int)
	for _, s := range spans {
		names[s.Name]++
	}
	return names
}

// TestTraceSingleNode: a caller-supplied X-Trace-Id rides the job
// through submit, queue, simulate and cache-write, and the trace
// endpoint serves both the raw span view and a valid Chrome trace.
func TestTraceSingleNode(t *testing.T) {
	_, ts := newTestServer(t, Options{NodeName: "solo"})

	const traceID = "svc-trace-test_0001"
	body, _ := json.Marshal(JobSpec{App: "tomcatv", Arch: "SMT2"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var j wireJob
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(telemetry.TraceIDHeader); got != traceID {
		t.Fatalf("submit echoed trace ID %q, want %q", got, traceID)
	}
	if j = waitJob(t, ts, j.ID); j.Status != StateDone {
		t.Fatalf("job did not complete: %+v", j)
	}

	doc, status := getTraceSpans(t, ts.URL, traceID)
	if status != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s: status %d", traceID, status)
	}
	if doc.TraceID != traceID {
		t.Fatalf("trace doc ID = %q, want %q", doc.TraceID, traceID)
	}
	names := spanNames(doc.Spans)
	for _, want := range []string{"submit", "queue", "simulate", "cache-write"} {
		if names[want] == 0 {
			t.Errorf("trace is missing a %q span (have %v)", want, names)
		}
	}
	for _, s := range doc.Spans {
		if s.Node != "solo" {
			t.Errorf("span %s on node %q, want solo (NodeName override)", s.Name, s.Node)
		}
		if s.TraceID != traceID {
			t.Errorf("span %s carries trace %q", s.Name, s.TraceID)
		}
	}

	// Default format is Chrome trace JSON: one process metadata record
	// plus one complete event per span, parseable as a JSON array.
	chromeResp, err := http.Get(ts.URL + "/v1/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	chrome, err := io.ReadAll(chromeResp.Body)
	chromeResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome, &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	var meta, complete int
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
		}
	}
	if meta != 1 {
		t.Errorf("%d process_name records, want 1 (single node)", meta)
	}
	if complete != len(doc.Spans) {
		t.Errorf("%d complete events, want %d", complete, len(doc.Spans))
	}

	// Malformed and unknown IDs fail loudly.
	if _, status := getTraceSpans(t, ts.URL, "no%20good"); status != http.StatusBadRequest {
		t.Errorf("invalid trace ID: status %d, want 400", status)
	}
	if _, status := getTraceSpans(t, ts.URL, "never-submitted"); status != http.StatusNotFound {
		t.Errorf("unknown trace ID: status %d, want 404", status)
	}
}

// TestTraceCrossNodeFabric is the fleet-tracing acceptance test: a job
// submitted to the coordinator and simulated on a worker yields ONE
// trace timeline — queried at the coordinator, which fans out to its
// members — whose spans cover submit→dispatch on the coordinator and
// submit→queue→simulate on the worker. The coordinator's fleet gauges
// report the worker while it's at it.
func TestTraceCrossNodeFabric(t *testing.T) {
	coord := newFabricNode(t, Options{Coordinator: true})
	wk := newFabricWorker(t, coord, Options{Workers: 1})
	waitFor(t, "worker registered", func() bool {
		return coord.srv.coordinator().memberCount() == 1
	})

	status, j, hdr := submit(t, coord.ts, JobSpec{App: "mgrid", Arch: "SMT2", Size: "test"})
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", status)
	}
	traceID := hdr.Get(telemetry.TraceIDHeader)
	if !telemetry.ValidTraceID(traceID) {
		t.Fatalf("submit returned unusable trace ID %q", traceID)
	}
	if j = waitJob(t, coord.ts, j.ID); j.Status != StateDone {
		t.Fatalf("job did not complete: %+v", j)
	}
	if simCount(coord) != 0 || simCount(wk) != 1 {
		t.Fatalf("simulations coord=%d worker=%d, want 0/1 (coordinator routes, worker simulates)",
			simCount(coord), simCount(wk))
	}

	// The dispatch span lands just after the job turns done; poll the
	// merged timeline until both nodes' spans are visible.
	var doc traceSpansDoc
	perNode := func() map[string]map[string]int {
		byNode := make(map[string]map[string]int)
		for _, s := range doc.Spans {
			if byNode[s.Node] == nil {
				byNode[s.Node] = make(map[string]int)
			}
			byNode[s.Node][s.Name]++
		}
		return byNode
	}
	waitFor(t, "cross-node trace spans", func() bool {
		var st int
		if doc, st = getTraceSpans(t, coord.ts.URL, traceID); st != http.StatusOK {
			return false
		}
		n := perNode()
		return n["coordinator"]["dispatch"] > 0 && n[wk.URL()]["simulate"] > 0
	})
	byNode := perNode()
	for _, want := range []string{"submit", "dispatch"} {
		if byNode["coordinator"][want] == 0 {
			t.Errorf("coordinator timeline is missing a %q span (have %v)", want, byNode["coordinator"])
		}
	}
	for _, want := range []string{"submit", "queue", "simulate"} {
		if byNode[wk.URL()][want] == 0 {
			t.Errorf("worker timeline is missing a %q span (have %v)", want, byNode[wk.URL()])
		}
	}
	for _, s := range doc.Spans {
		if s.TraceID != traceID {
			t.Errorf("span %s on %s carries trace %q, want %q", s.Name, s.Node, s.TraceID, traceID)
		}
	}

	// The Chrome render of the merged timeline shows both processes.
	resp, err := http.Get(coord.ts.URL + "/v1/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	chrome, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(chrome, &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	procs := make(map[string]bool)
	for _, ev := range events {
		if ev["ph"] == "M" {
			if args, ok := ev["args"].(map[string]any); ok {
				procs[args["name"].(string)] = true
			}
		}
	}
	if !procs["coordinator"] || !procs[wk.URL()] {
		t.Errorf("chrome trace processes = %v, want coordinator and %s", procs, wk.URL())
	}

	// Coordinator fleet gauges cover the registered worker.
	body, _ := scrapeMetrics(t, coord.ts)
	if v := metricValue(t, body, `clusterd_fleet_member_up{member="`+wk.URL()+`"}`); v != 1 {
		t.Errorf("fleet_member_up for %s = %v, want 1", wk.URL(), v)
	}
	if v := metricValue(t, body, `clusterd_fleet_member_workers{member="`+wk.URL()+`"}`); v != 1 {
		t.Errorf("fleet_member_workers for %s = %v, want 1", wk.URL(), v)
	}
	if v := metricValue(t, body, `clusterd_fabric_events_total{event="dispatched"}`); v != 1 {
		t.Errorf(`fabric_events_total{event="dispatched"} = %v, want 1`, v)
	}
}
