package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/harness"
	"clustersmt/internal/telemetry"
	"clustersmt/internal/version"
	"clustersmt/internal/workloads"
)

// Options configures a Server. Zero values mean: test-size default,
// GOMAXPROCS workers, DefaultQueueCap queue, DefaultCacheEntries LRU,
// memory-only cache, core-default cycle bound, metrics off.
type Options struct {
	// DefaultSize is the input size used when a job or figure request
	// does not name one.
	DefaultSize workloads.Size
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Parallel runs each simulation's chips on separate goroutines
	// (core.Simulator.Parallel); results stay bit-identical, so cache
	// keys and cached payloads are unaffected.
	Parallel bool
	// QueueCap bounds the admission FIFO (0 = DefaultQueueCap). A full
	// queue rejects submissions with 429 + Retry-After.
	QueueCap int
	// CacheEntries bounds the in-memory result LRU (0 = default).
	CacheEntries int
	// CacheDir, when non-empty, enables the persistent result store.
	CacheDir string
	// MaxCycles bounds each simulation (0 = core default).
	MaxCycles int64
	// WarmupCycles > 0 enables checkpoint-based warm-up sharing
	// (harness.Suite.WarmupCycles): workloads declaring a shared
	// prefix are forked from one warmed parent per (machine, prefix)
	// instead of simulated from cycle zero. With CacheDir set, warmed
	// checkpoints are persisted next to the result envelopes and
	// restored across daemon restarts.
	WarmupCycles int64
	// AllocPolicy selects the thread-to-cluster allocation policy for
	// every simulation this server runs ("" or "static" = the seed
	// placement; see internal/alloc). It is part of the machine's
	// canonical encoding, so results cached under one policy are never
	// served for another. AllocEpoch is the dynamic policies' rebalance
	// interval in cycles (0 = config.DefaultAllocEpoch).
	AllocPolicy string
	AllocEpoch  int64
	// MetricsInterval > 0 samples interval metrics on every simulation,
	// served by GET /v1/metrics/{run}.
	MetricsInterval int64
	// MetricsRingCap bounds retained frames per run (0 = obs default).
	MetricsRingCap int
	// Coordinator runs this daemon as the fabric front end: workers
	// register over /fabric/register, jobs and figure cells route to
	// the consistent-hash owner of their content hash, and Workers
	// defaults to QueueCap (dispatch is IO-bound — a dispatching job
	// holds an HTTP long-poll, not a CPU).
	Coordinator bool
	// HeartbeatInterval paces worker announcements (0 = default 5s);
	// HeartbeatTimeout is how stale a worker's last heartbeat may be
	// before the coordinator evicts it (0 = 3 intervals).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Version overrides the build version exchanged (and checked) at
	// registration ("" = the binary's build info).
	Version string
	// DisableTelemetry turns off the metrics registry and span ring:
	// /metrics and /v1/trace return 404 and every record call is a
	// no-op. Simulation results are bit-identical either way
	// (TestTelemetryDifferential).
	DisableTelemetry bool
	// NodeName overrides this node's identity on trace timelines
	// ("" = coordinator / advertise URL / "clusterd" by role).
	NodeName string
	// SpanRingCap bounds retained trace spans (0 = telemetry default).
	SpanRingCap int
}

// heartbeatInterval resolves the announcement period.
func (o Options) heartbeatInterval() time.Duration {
	if o.HeartbeatInterval > 0 {
		return o.HeartbeatInterval
	}
	return DefaultHeartbeatInterval
}

// heartbeatTimeout resolves the eviction bound.
func (o Options) heartbeatTimeout() time.Duration {
	if o.HeartbeatTimeout > 0 {
		return o.HeartbeatTimeout
	}
	return 3 * o.heartbeatInterval()
}

// Server is the serving subsystem: job queue + worker pool + two-tier
// result cache + figure/metrics endpoints over a pair of harness
// suites (one per input size).
type Server struct {
	opts  Options
	cache *Cache
	pool  *Pool

	suiteMu sync.Mutex
	suites  map[workloads.Size]*harness.Suite

	jobsMu sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    atomic.Uint64

	// Fabric role state: at most one of coord/worker is non-nil. coord
	// is fixed at New; worker is installed by JoinFabric after the
	// listener is bound (the advertise URL needs the port).
	fabMu  sync.Mutex
	coord  *coordinator
	worker *worker

	version string

	// tel is the telemetry state (registry + span ring); nil when
	// Options.DisableTelemetry — every record path nil-guards.
	tel *svcTelemetry

	probeServedHits   atomic.Uint64
	probeServedMisses atomic.Uint64
	snapServedHits    atomic.Uint64
	snapServedMisses  atomic.Uint64

	started time.Time
	closed  atomic.Bool
}

// New builds a Server (workers started, cache loaded) ready for
// Handler to be mounted.
func New(opts Options) (*Server, error) {
	cache, err := NewCache(opts.CacheEntries, opts.CacheDir)
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if opts.Coordinator {
			// A coordinator's "workers" mostly wait on worker HTTP
			// long-polls; sizing them to the queue lets the whole
			// admitted backlog dispatch concurrently. Local-fallback
			// simulations (empty fleet) stay CPU-bounded regardless by
			// the suite's own GOMAXPROCS semaphore.
			workers = opts.QueueCap
			if workers <= 0 {
				workers = DefaultQueueCap
			}
		}
	}
	s := &Server{
		opts:    opts,
		cache:   cache,
		suites:  make(map[workloads.Size]*harness.Suite),
		jobs:    make(map[string]*Job),
		version: opts.Version,
		started: time.Now(),
	}
	if s.version == "" {
		s.version = version.String()
	}
	s.pool = NewPool(workers, opts.QueueCap, s.runJob)
	if !opts.DisableTelemetry {
		s.tel = newSvcTelemetry(s, opts.SpanRingCap)
	}
	if opts.Coordinator {
		s.coord = newCoordinator(s, opts.heartbeatTimeout())
	}
	return s, nil
}

// coordinator returns the coordinator role state (nil outside
// coordinator mode).
func (s *Server) coordinator() *coordinator {
	s.fabMu.Lock()
	defer s.fabMu.Unlock()
	return s.coord
}

// workerRef returns the worker role state (nil until JoinFabric).
func (s *Server) workerRef() *worker {
	s.fabMu.Lock()
	defer s.fabMu.Unlock()
	return s.worker
}

// JoinFabric registers this server with a coordinator and starts the
// heartbeat loop. advertiseURL is the base URL peers and the
// coordinator reach this server at — it must resolve to the listener
// serving Handler(). Call after the listener is bound; Close stops the
// heartbeats.
func (s *Server) JoinFabric(coordinatorURL, advertiseURL string) error {
	if coordinatorURL == "" || advertiseURL == "" {
		return fmt.Errorf("service: JoinFabric needs both coordinator and advertise URLs")
	}
	s.fabMu.Lock()
	defer s.fabMu.Unlock()
	if s.coord != nil {
		return fmt.Errorf("service: a coordinator cannot join another fabric")
	}
	if s.worker != nil {
		return fmt.Errorf("service: already joined %s", s.worker.coord)
	}
	w := newWorker(s, strings.TrimRight(coordinatorURL, "/"), strings.TrimRight(advertiseURL, "/"), s.opts.heartbeatInterval())
	s.worker = w
	go w.loop()
	return nil
}

// suite returns (creating on first use) the harness suite for size.
// Each suite carries its own singleflight cache, so identical
// simulations already in flight are shared even before the result
// lands in the service cache.
func (s *Server) suite(size workloads.Size) *harness.Suite {
	s.suiteMu.Lock()
	defer s.suiteMu.Unlock()
	st, ok := s.suites[size]
	if !ok {
		st = harness.NewSuite(size)
		st.MaxCycles = s.opts.MaxCycles
		st.Parallel = s.opts.Parallel
		st.AllocPolicy = s.opts.AllocPolicy
		st.AllocEpoch = s.opts.AllocEpoch
		st.MetricsInterval = s.opts.MetricsInterval
		st.MetricsRingCap = s.opts.MetricsRingCap
		st.WarmupCycles = s.opts.WarmupCycles
		if s.opts.WarmupCycles > 0 {
			// The federated store layers local persistence (when
			// CacheDir is set) under on-demand fetches from fabric
			// peers; with neither it is an always-miss no-op.
			st.Snapshots = fedSnapshots{s: s}
		}
		st.Remote = s.suiteRemote(size)
		if s.tel != nil {
			// Hook fires on singleflight owners only, so the histogram
			// measures true local simulation time — never dispatch or
			// probe round trips.
			// The histogram's policy label is the normalized policy name,
			// so the seed placement reads "static" whether configured
			// explicitly or by default.
			policy := config.AllocConfig{Policy: s.opts.AllocPolicy}.Normalize().Policy
			if policy == "" {
				policy = "static"
			}
			st.OnSimulate = func(ctx context.Context, app, machine string, highEnd bool, d time.Duration, err error) {
				observe(s.tel.simulate.With(policy), d)
				attrs := map[string]string{"app": app, "machine": machine, "policy": policy}
				if err != nil {
					attrs["error"] = err.Error()
				}
				s.span(telemetry.TraceIDFrom(ctx), "simulate", time.Now().Add(-d), attrs)
			}
		}
		// The pool already bounds admission; let the suite run whatever
		// the workers hand it (figure endpoints share the same suite and
		// add their own demand, still bounded by GOMAXPROCS inside).
		s.suites[size] = st
	}
	return st
}

// suiteRemote builds the fabric Remote hook for one suite. The role is
// resolved at call time (JoinFabric may run after the suite exists):
// a coordinator dispatches the run to the ring owner of its content
// hash; a worker probes its peers for an already-computed result; a
// single node declines so the harness simulates locally. The hook runs
// on the singleflight owner ahead of the semaphore, so dispatches and
// probes cost no local CPU slots.
func (s *Server) suiteRemote(size workloads.Size) harness.RemoteFunc {
	return func(ctx context.Context, app string, arch config.Arch, highEnd bool) (*core.Result, bool, error) {
		c, wk := s.coordinator(), s.workerRef()
		if c == nil && wk == nil {
			return nil, false, nil
		}
		spec := JobSpec{App: app, Arch: arch.Name, HighEnd: highEnd, Size: size.String()}
		rj, err := spec.Resolve(size)
		if err != nil {
			// Unresolvable names cannot be routed; let the local
			// harness produce the authoritative error.
			return nil, false, nil
		}
		if c != nil {
			return c.dispatch(ctx, rj.Spec, rj.Hash())
		}
		return wk.probePeers(ctx, rj.Spec, rj)
	}
}

// runJob executes one admitted job: cache check (a concurrent earlier
// submission may have completed while this one sat in the queue), then
// a context-aware suite run, then cache fill. Queue wait, cache-write
// and end-to-end latency are observed here; the trace ID rides the
// context into the suite so dispatch/probe/simulate spans attribute to
// this job.
func (s *Server) runJob(ctx context.Context, j *Job) {
	wait := time.Since(j.submittedAt())
	observe(s.hist(func(t *svcTelemetry) *telemetry.Histogram { return t.queueWait }), wait)
	s.span(j.TraceID, "queue", j.submittedAt(), map[string]string{"job": j.ID})
	ctx = telemetry.WithTraceID(ctx, j.TraceID)

	if res, tier, ok := s.cache.Get(j.Hash); ok {
		j.Complete(res, tier)
		s.observeJobDone(j)
		return
	}
	rj := j.Rj
	res, err := s.suite(rj.Size).RunContext(ctx, rj.Workload, rj.Arch, rj.Spec.HighEnd)
	if err != nil {
		j.Fail(err)
		s.observeJobDone(j)
		return
	}
	// A failed disk write degrades this entry to memory-only; the
	// result itself is still good, so the job completes regardless.
	wstart := time.Now()
	_ = s.cache.Put(j.Hash, rj.Spec, res)
	observe(s.hist(func(t *svcTelemetry) *telemetry.Histogram { return t.cacheWrite }), time.Since(wstart))
	s.span(j.TraceID, "cache-write", wstart, nil)
	j.Complete(res, "")
	s.observeJobDone(j)
}

// observeJobDone records a terminal job's end-to-end latency.
func (s *Server) observeJobDone(j *Job) {
	observe(s.hist(func(t *svcTelemetry) *telemetry.Histogram { return t.e2e }), time.Since(j.submittedAt()))
}

// Close drains the pool (bounded by ctx — expired deadlines cancel
// in-flight simulations) and persists the cache index. It is the
// graceful-shutdown path behind clusterd's signal handler.
func (s *Server) Close(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	if wk := s.workerRef(); wk != nil {
		wk.close() // stop heartbeating before draining, so eviction is prompt
	}
	if c := s.coordinator(); c != nil {
		c.close()
	}
	s.pool.Drain(ctx)
	return s.cache.Close()
}

// Handler returns the HTTP API:
//
//	POST /v1/jobs            submit a simulation {app, arch, high_end, size}
//	GET  /v1/jobs            list jobs
//	GET  /v1/jobs/{id}       job status/result (?wait=10s long-polls)
//	GET  /v1/figures/{n}     paper figure 4/5/7/8 (?size=, ?format=text)
//	GET  /v1/metrics         list runs with retained interval metrics
//	GET  /v1/metrics/{run}   one run's frames (?format=csv|json)
//	GET  /v1/trace/{id}      one job's fleet-wide span timeline
//	                         (?scope=local, ?format=spans)
//	GET  /metrics            OpenMetrics scrape (404 when disabled)
//	GET  /healthz            liveness + queue/cache/fabric stats
//	GET  /fabric/probe/{h}   peer cache probe: cached result for spec hash h
//	GET  /fabric/snap/{k}    peer checkpoint ship: warmed snapshot k
//	POST /fabric/register    (coordinator) worker registration
//	POST /fabric/heartbeat   (coordinator) worker heartbeat + load report
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/figures/{n}", s.handleFigure)
	mux.HandleFunc("GET /v1/metrics", s.handleListMetrics)
	mux.HandleFunc("GET /v1/metrics/{run...}", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetricsScrape)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	// Fabric peer endpoints are served by every role: any node may be
	// probed for a cached result or a warmed checkpoint.
	mux.HandleFunc("GET /fabric/probe/{hash}", s.handleFabricProbe)
	mux.HandleFunc("GET /fabric/snap/{key}", s.handleFabricSnap)
	if s.coord != nil {
		mux.HandleFunc("POST /fabric/register", s.handleFabricRegister)
		mux.HandleFunc("POST /fabric/heartbeat", s.handleFabricHeartbeat)
	}
	return mux
}

// jobView is the wire form of a Job.
type jobView struct {
	ID        string       `json:"id"`
	Spec      JobSpec      `json:"spec"`
	Hash      string       `json:"hash"`
	TraceID   string       `json:"trace_id,omitempty"`
	Status    string       `json:"status"`
	CacheHit  bool         `json:"cache_hit"`
	CacheTier string       `json:"cache_tier,omitempty"`
	Error     string       `json:"error,omitempty"`
	Result    *core.Result `json:"result,omitempty"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID:        j.ID,
		Spec:      j.Rj.Spec,
		Hash:      j.Rj.HashHex(),
		TraceID:   j.TraceID,
		Status:    j.state,
		CacheHit:  j.cacheHit,
		CacheTier: j.cacheTier,
		Error:     j.errMsg,
		Result:    j.res,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	arrived := time.Now()
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad job spec: %w", err))
		return
	}
	rj, err := spec.Resolve(s.opts.DefaultSize)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j := NewJob(fmt.Sprintf("j%d", s.seq.Add(1)), rj)
	j.ID = fmt.Sprintf("%s-%x", j.ID, j.Hash[:4])
	j.TraceID = traceIDForRequest(r)
	w.Header().Set(telemetry.TraceIDHeader, j.TraceID)

	// Content-addressed fast path: an identical submission whose result
	// is already cached is served immediately — it never occupies a
	// queue slot, so cached traffic cannot be 429'd by a full queue.
	if res, tier, ok := s.cache.Get(j.Hash); ok {
		j.Complete(res, tier)
		s.rememberJob(j)
		s.span(j.TraceID, "submit", arrived, map[string]string{"job": j.ID, "outcome": "cache-" + tier})
		s.observeJobDone(j)
		writeJSON(w, http.StatusOK, j.view())
		return
	}

	if err := s.pool.Submit(j); err != nil {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		s.span(j.TraceID, "submit", arrived, map[string]string{"job": j.ID, "outcome": "rejected"})
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	s.rememberJob(j)
	s.span(j.TraceID, "submit", arrived, map[string]string{"job": j.ID, "outcome": "queued"})
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.view())
}

// retryAfter estimates (in whole seconds, floor 1, cap 60) when a
// queue slot may free up: pending work divided by worker parallelism,
// assuming roughly a second per simulation — deliberately coarse, the
// point is to pace retries, not to promise. The division rounds up (a
// partly filled worker wave is still a full wave of waiting) and
// guards a zero worker count: NewPool clamps workers to one, but a
// 429 path must never be able to panic on arithmetic.
//
// In coordinator mode the divisor is the fleet's registered capacity
// (sum of member worker counts) when any workers are registered — the
// backlog drains at the fleet's rate, not the local pool's. An empty
// fleet falls back to the local estimate, same floor and cap.
func (s *Server) retryAfter() int {
	w := s.pool.Workers()
	if c := s.coordinator(); c != nil {
		if fw := c.fleetWorkers(); fw > 0 {
			w = fw
		}
	}
	if w < 1 {
		w = 1
	}
	n := (s.pool.Depth() + s.pool.Running() + w - 1) / w
	if n < 1 {
		n = 1
	}
	if n > 60 {
		n = 60
	}
	return n
}

func (s *Server) rememberJob(j *Job) {
	s.jobsMu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.jobsMu.Unlock()
}

func (s *Server) lookupJob(id string) (*Job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no job %q", r.PathValue("id")))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad wait %q: %w", waitStr, err))
			return
		}
		select {
		case <-j.Done():
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view())
	}
	s.jobsMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// sizeParam resolves the ?size= query (default: server default).
func (s *Server) sizeParam(r *http.Request) (workloads.Size, error) {
	switch r.URL.Query().Get("size") {
	case "":
		return s.opts.DefaultSize, nil
	case "test":
		return workloads.SizeTest, nil
	case "ref":
		return workloads.SizeRef, nil
	}
	return 0, fmt.Errorf("service: unknown size %q (want test or ref)", r.URL.Query().Get("size"))
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad figure number %q", r.PathValue("n")))
		return
	}
	size, err := s.sizeParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Figure matrices run synchronously under the request context:
	// client disconnect cancels the in-flight simulations (the suite
	// singleflight hands unfinished runs off to any surviving caller).
	fig, err := s.suite(size).FigureByNumber(r.Context(), n)
	if err != nil {
		if r.Context().Err() != nil {
			return // client went away; nothing to write
		}
		status := http.StatusInternalServerError
		if n != 4 && n != 5 && n != 7 && n != 8 {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, fig.Render())
		return
	}
	writeJSON(w, http.StatusOK, fig)
}

func (s *Server) handleListMetrics(w http.ResponseWriter, r *http.Request) {
	size, err := s.sizeParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"metrics_enabled": s.opts.MetricsInterval > 0,
		"runs":            s.suite(size).MetricsRuns(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	size, err := s.sizeParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	run := r.PathValue("run")
	suite := s.suite(size)
	if suite.Metrics(run) == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no metrics retained for %q (is -metrics-interval set?)", run))
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = suite.WriteMetricsJSON(w, run)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	_ = suite.WriteMetricsCSV(w, run)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	accepted, rejected, completed := s.pool.Counters()
	var warmForks, warmRestores int64
	s.suiteMu.Lock()
	for _, st := range s.suites {
		f, r := st.WarmForks()
		warmForks += f
		warmRestores += r
	}
	s.suiteMu.Unlock()
	fab := map[string]any{"role": "single"}
	if c := s.coordinator(); c != nil {
		fab = c.health()
	} else if wk := s.workerRef(); wk != nil {
		fab = wk.health()
	}
	fab["probe_served"] = map[string]uint64{
		"hits":   s.probeServedHits.Load(),
		"misses": s.probeServedMisses.Load(),
	}
	fab["snap_served"] = map[string]uint64{
		"hits":   s.snapServedHits.Load(),
		"misses": s.snapServedMisses.Load(),
	}
	warm := map[string]any{
		"enabled":  s.opts.WarmupCycles > 0,
		"cycles":   s.opts.WarmupCycles,
		"forks":    warmForks,
		"restores": warmRestores,
	}
	if s.opts.WarmupCycles > 0 && s.opts.CacheDir != "" {
		warm["persisted"] = snapshotStore{dir: s.opts.CacheDir}.Snapshots()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"runtime":     s.runtimeInfo(),
		"simulations": s.simulations(),
		"fabric":      fab,
		"queue": map[string]any{
			"depth":     s.pool.Depth(),
			"capacity":  s.pool.Cap(),
			"running":   s.pool.Running(),
			"workers":   s.pool.Workers(),
			"accepted":  accepted,
			"rejected":  rejected,
			"completed": completed,
		},
		"cache":  s.cache.Stats(),
		"warmup": warm,
	})
}
