package service

import (
	"os"
	"path/filepath"
	"strings"
)

// snapshotStore persists warmed checkpoints (harness.SnapshotStore)
// as content-addressed files in the service cache directory, alongside
// the result envelopes. Filenames are "snap-<hex64>.bin", so the
// result cache's reconciler — which only adopts 64-hex ".json"
// envelopes — never confuses the two populations, and a snapshot
// written by one daemon run seeds every later one's warm-ups.
//
// Both methods are best-effort by contract: a miss or failed write
// just means the suite re-runs the warm-up, so I/O errors are
// swallowed rather than failing simulations.
type snapshotStore struct {
	dir string
}

// validKey bounds accepted keys to the hex digests the harness emits —
// defense against a key ever reaching the filesystem as a path.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

func (s snapshotStore) path(key string) string {
	return filepath.Join(s.dir, "snap-"+key+".bin")
}

func (s snapshotStore) LoadSnapshot(key string) ([]byte, bool) {
	if !validKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// SaveSnapshot writes atomically (temp file + rename), matching the
// result cache's crash discipline: a torn write leaves the old entry
// or none, and core.Restore rejects anything truncated regardless.
func (s snapshotStore) SaveSnapshot(key string, data []byte) {
	if !validKey(key) {
		return
	}
	tmp, err := os.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}

// Snapshots returns the number of persisted warm-up checkpoints in the
// store directory (for /healthz).
func (s snapshotStore) Snapshots() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range entries {
		name := de.Name()
		if !de.IsDir() && strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".bin") {
			n++
		}
	}
	return n
}
