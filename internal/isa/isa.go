// Package isa defines the instruction set simulated by clustersmt.
//
// The ISA is a small 64-bit load/store RISC machine purpose-built to feed
// the timing back end with the same dynamic-instruction classes as the
// paper's MIPS2/MINT front end: integer ALU operations, integer
// multiply/divide, loads and stores, conditional branches and jumps,
// floating-point add/multiply/divide, and the synchronization operations
// (LOCK/UNLOCK/BARRIER) that the parallel runtime lowers to.
//
// Operation latencies follow Table 1 of the paper exactly; see
// OpInfo/Latency.
package isa

import "fmt"

// Op enumerates every opcode in the ISA.
type Op uint8

// Opcodes. The grouping mirrors Table 1 of the paper: integer unit,
// load/store unit and floating-point unit classes, plus front-end
// pseudo-operations (sync, halt) that never occupy a functional unit.
const (
	// OpInvalid is the zero Op and is never a legal instruction.
	OpInvalid Op = iota

	// Integer unit, latency 1.
	OpAdd  // rd = rs1 + rs2
	OpSub  // rd = rs1 - rs2
	OpAnd  // rd = rs1 & rs2
	OpOr   // rd = rs1 | rs2
	OpXor  // rd = rs1 ^ rs2
	OpSlt  // rd = 1 if rs1 < rs2 (signed) else 0
	OpShl  // rd = rs1 << (rs2 & 63)
	OpShr  // rd = uint64(rs1) >> (rs2 & 63)
	OpAddi // rd = rs1 + imm
	OpSlti // rd = 1 if rs1 < imm else 0
	OpAndi // rd = rs1 & imm
	OpOri  // rd = rs1 | imm
	OpShli // rd = rs1 << imm
	OpShri // rd = uint64(rs1) >> imm
	OpLui  // rd = imm << 16

	// Integer unit, latency 2.
	OpMul // rd = rs1 * rs2

	// Integer unit, latency 8, unpipelined.
	OpDiv // rd = rs1 / rs2 (rs2==0 yields 0)
	OpRem // rd = rs1 % rs2 (rs2==0 yields 0)

	// Control flow, integer unit, latency 1.
	OpBeq  // branch to PC+imm if rs1 == rs2
	OpBne  // branch to PC+imm if rs1 != rs2
	OpBlt  // branch to PC+imm if rs1 < rs2 (signed)
	OpBge  // branch to PC+imm if rs1 >= rs2 (signed)
	OpJump // unconditional branch to PC+imm
	OpJal  // rd = PC+1; jump to PC+imm
	OpJr   // jump to rs1 (register indirect, e.g. return)

	// Load/store unit. Loads latency 2 (address + L1 hit), stores
	// latency 1 (performed at commit).
	OpLd  // rd  = mem[rs1 + imm]        (integer load)
	OpSt  // mem[rs1 + imm] = rs2        (integer store)
	OpLdf // fd  = mem[rs1 + imm]        (fp load)
	OpStf // mem[rs1 + imm] = fs2        (fp store)

	// Atomic read-modify-write: rd = mem[rs1+imm]; mem[rs1+imm] = rs2.
	// Executed atomically at fetch time by the functional front end.
	OpSwap

	// Floating-point unit.
	OpFadd // fd = fs1 + fs2, latency 1
	OpFsub // fd = fs1 - fs2, latency 1
	OpFmul // fd = fs1 * fs2, latency 2
	OpFdiv // fd = fs1 / fs2, latency 7 (double precision), unpipelined
	OpFneg // fd = -fs1, latency 1
	OpFmov // fd = fs1, latency 1
	OpFcvt // fd = float64(rs1), latency 1 (int -> fp move/convert)
	OpFcmp // rd = 1 if fs1 < fs2 else 0, latency 1 (result to int reg)

	// Synchronization pseudo-operations, handled by the front end in
	// cooperation with the sync controller. They occupy an issue slot
	// like an integer op once unblocked.
	OpLock    // acquire lock number imm
	OpUnlock  // release lock number imm
	OpBarrier // wait on barrier number imm

	// OpHalt terminates the executing thread.
	OpHalt

	// OpNop does nothing (integer unit, latency 1).
	OpNop

	numOps
)

// NumOps is the number of defined opcodes (for table sizing).
const NumOps = int(numOps)

// Class describes which functional unit an operation needs.
type Class uint8

// Functional-unit classes. ClassNone ops (sync, halt) consume front-end
// slots but no functional unit.
const (
	ClassNone Class = iota
	ClassInt
	ClassLoad
	ClassStore
	ClassFP
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassInt:
		return "int"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassFP:
		return "fp"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Info holds the static properties of an opcode.
type Info struct {
	Name    string
	Class   Class
	Latency int  // execution latency in cycles (Table 1)
	Pipel   bool // false => unit is occupied for Latency cycles
	Branch  bool // any control transfer
	CondBr  bool // conditional branch (predicted)
	Mem     bool // touches memory
	Sync    bool // lock/unlock/barrier
	// Register usage. RS1/RS2 integer sources, FS1/FS2 fp sources,
	// RD integer dest, FD fp dest; see Instr for which fields apply.
	ReadsRS1, ReadsRS2 bool
	ReadsFS1, ReadsFS2 bool
	WritesRD, WritesFD bool
	UsesImm            bool
}

var infoTable = [NumOps]Info{
	OpInvalid: {Name: "invalid", Class: ClassNone},

	OpAdd:  {Name: "add", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, ReadsRS2: true, WritesRD: true},
	OpSub:  {Name: "sub", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, ReadsRS2: true, WritesRD: true},
	OpAnd:  {Name: "and", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, ReadsRS2: true, WritesRD: true},
	OpOr:   {Name: "or", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, ReadsRS2: true, WritesRD: true},
	OpXor:  {Name: "xor", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, ReadsRS2: true, WritesRD: true},
	OpSlt:  {Name: "slt", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, ReadsRS2: true, WritesRD: true},
	OpShl:  {Name: "shl", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, ReadsRS2: true, WritesRD: true},
	OpShr:  {Name: "shr", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, ReadsRS2: true, WritesRD: true},
	OpAddi: {Name: "addi", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, WritesRD: true, UsesImm: true},
	OpSlti: {Name: "slti", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, WritesRD: true, UsesImm: true},
	OpAndi: {Name: "andi", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, WritesRD: true, UsesImm: true},
	OpOri:  {Name: "ori", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, WritesRD: true, UsesImm: true},
	OpShli: {Name: "shli", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, WritesRD: true, UsesImm: true},
	OpShri: {Name: "shri", Class: ClassInt, Latency: 1, Pipel: true, ReadsRS1: true, WritesRD: true, UsesImm: true},
	OpLui:  {Name: "lui", Class: ClassInt, Latency: 1, Pipel: true, WritesRD: true, UsesImm: true},

	OpMul: {Name: "mul", Class: ClassInt, Latency: 2, Pipel: true, ReadsRS1: true, ReadsRS2: true, WritesRD: true},
	OpDiv: {Name: "div", Class: ClassInt, Latency: 8, Pipel: false, ReadsRS1: true, ReadsRS2: true, WritesRD: true},
	OpRem: {Name: "rem", Class: ClassInt, Latency: 8, Pipel: false, ReadsRS1: true, ReadsRS2: true, WritesRD: true},

	OpBeq:  {Name: "beq", Class: ClassInt, Latency: 1, Pipel: true, Branch: true, CondBr: true, ReadsRS1: true, ReadsRS2: true, UsesImm: true},
	OpBne:  {Name: "bne", Class: ClassInt, Latency: 1, Pipel: true, Branch: true, CondBr: true, ReadsRS1: true, ReadsRS2: true, UsesImm: true},
	OpBlt:  {Name: "blt", Class: ClassInt, Latency: 1, Pipel: true, Branch: true, CondBr: true, ReadsRS1: true, ReadsRS2: true, UsesImm: true},
	OpBge:  {Name: "bge", Class: ClassInt, Latency: 1, Pipel: true, Branch: true, CondBr: true, ReadsRS1: true, ReadsRS2: true, UsesImm: true},
	OpJump: {Name: "jump", Class: ClassInt, Latency: 1, Pipel: true, Branch: true, UsesImm: true},
	OpJal:  {Name: "jal", Class: ClassInt, Latency: 1, Pipel: true, Branch: true, WritesRD: true, UsesImm: true},
	OpJr:   {Name: "jr", Class: ClassInt, Latency: 1, Pipel: true, Branch: true, ReadsRS1: true},

	OpLd:   {Name: "ld", Class: ClassLoad, Latency: 2, Pipel: true, Mem: true, ReadsRS1: true, WritesRD: true, UsesImm: true},
	OpSt:   {Name: "st", Class: ClassStore, Latency: 1, Pipel: true, Mem: true, ReadsRS1: true, ReadsRS2: true, UsesImm: true},
	OpLdf:  {Name: "ldf", Class: ClassLoad, Latency: 2, Pipel: true, Mem: true, ReadsRS1: true, WritesFD: true, UsesImm: true},
	OpStf:  {Name: "stf", Class: ClassStore, Latency: 1, Pipel: true, Mem: true, ReadsRS1: true, ReadsFS2: true, UsesImm: true},
	OpSwap: {Name: "swap", Class: ClassLoad, Latency: 2, Pipel: true, Mem: true, ReadsRS1: true, ReadsRS2: true, WritesRD: true, UsesImm: true},

	OpFadd: {Name: "fadd", Class: ClassFP, Latency: 1, Pipel: true, ReadsFS1: true, ReadsFS2: true, WritesFD: true},
	OpFsub: {Name: "fsub", Class: ClassFP, Latency: 1, Pipel: true, ReadsFS1: true, ReadsFS2: true, WritesFD: true},
	OpFmul: {Name: "fmul", Class: ClassFP, Latency: 2, Pipel: true, ReadsFS1: true, ReadsFS2: true, WritesFD: true},
	OpFdiv: {Name: "fdiv", Class: ClassFP, Latency: 7, Pipel: false, ReadsFS1: true, ReadsFS2: true, WritesFD: true},
	OpFneg: {Name: "fneg", Class: ClassFP, Latency: 1, Pipel: true, ReadsFS1: true, WritesFD: true},
	OpFmov: {Name: "fmov", Class: ClassFP, Latency: 1, Pipel: true, ReadsFS1: true, WritesFD: true},
	OpFcvt: {Name: "fcvt", Class: ClassFP, Latency: 1, Pipel: true, ReadsRS1: true, WritesFD: true},
	OpFcmp: {Name: "fcmp", Class: ClassFP, Latency: 1, Pipel: true, ReadsFS1: true, ReadsFS2: true, WritesRD: true},

	OpLock:    {Name: "lock", Class: ClassNone, Latency: 1, Pipel: true, Sync: true, UsesImm: true},
	OpUnlock:  {Name: "unlock", Class: ClassNone, Latency: 1, Pipel: true, Sync: true, UsesImm: true},
	OpBarrier: {Name: "barrier", Class: ClassNone, Latency: 1, Pipel: true, Sync: true, UsesImm: true},

	OpHalt: {Name: "halt", Class: ClassNone, Latency: 1, Pipel: true},
	OpNop:  {Name: "nop", Class: ClassInt, Latency: 1, Pipel: true},
}

// InfoFor returns the static description of op. It panics on an
// out-of-range opcode, which always indicates a builder bug.
func InfoFor(op Op) Info {
	if int(op) >= NumOps {
		panic(fmt.Sprintf("isa: opcode out of range: %d", op))
	}
	return infoTable[op]
}

func (op Op) String() string {
	if int(op) >= NumOps {
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
	return infoTable[op].Name
}

// Register file geometry. R0 always reads as zero; writes to it are
// discarded. The FP file has no hard-wired zero.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// Reg is an architectural register number, valid for both files.
type Reg uint8

// Conventional register roles used by the program builder and runtime.
const (
	RegZero Reg = 0  // hard-wired zero
	RegSP   Reg = 29 // stack pointer
	RegTID  Reg = 30 // thread id (set by runtime at thread start)
	RegRA   Reg = 31 // return address (written by jal)
)

// Instr is one static instruction.
type Instr struct {
	Op  Op
	RD  Reg   // integer destination
	RS1 Reg   // integer source 1 (also the base register for memory ops)
	RS2 Reg   // integer source 2 (store data for OpSt/OpSwap)
	FD  Reg   // fp destination
	FS1 Reg   // fp source 1
	FS2 Reg   // fp source 2 (store data for OpStf)
	Imm int64 // immediate / displacement / sync object id / branch offset
}

// Info returns the static description of the instruction's opcode.
func (in Instr) Info() Info { return InfoFor(in.Op) }

// String renders the instruction in a compact assembly-like syntax.
func (in Instr) String() string {
	inf := in.Info()
	switch {
	case in.Op == OpHalt || in.Op == OpNop:
		return inf.Name
	case inf.Sync:
		return fmt.Sprintf("%s #%d", inf.Name, in.Imm)
	case in.Op == OpLd || in.Op == OpSwap:
		return fmt.Sprintf("%s r%d, %d(r%d)", inf.Name, in.RD, in.Imm, in.RS1)
	case in.Op == OpSt:
		return fmt.Sprintf("%s r%d, %d(r%d)", inf.Name, in.RS2, in.Imm, in.RS1)
	case in.Op == OpLdf:
		return fmt.Sprintf("%s f%d, %d(r%d)", inf.Name, in.FD, in.Imm, in.RS1)
	case in.Op == OpStf:
		return fmt.Sprintf("%s f%d, %d(r%d)", inf.Name, in.FS2, in.Imm, in.RS1)
	case inf.CondBr:
		return fmt.Sprintf("%s r%d, r%d, %+d", inf.Name, in.RS1, in.RS2, in.Imm)
	case in.Op == OpJump:
		return fmt.Sprintf("%s %+d", inf.Name, in.Imm)
	case in.Op == OpJal:
		return fmt.Sprintf("%s r%d, %+d", inf.Name, in.RD, in.Imm)
	case in.Op == OpJr:
		return fmt.Sprintf("%s r%d", inf.Name, in.RS1)
	case inf.Class == ClassFP && inf.WritesFD && inf.ReadsFS2:
		return fmt.Sprintf("%s f%d, f%d, f%d", inf.Name, in.FD, in.FS1, in.FS2)
	case inf.Class == ClassFP && inf.WritesFD && inf.ReadsRS1:
		return fmt.Sprintf("%s f%d, r%d", inf.Name, in.FD, in.RS1)
	case inf.Class == ClassFP && inf.WritesFD:
		return fmt.Sprintf("%s f%d, f%d", inf.Name, in.FD, in.FS1)
	case in.Op == OpFcmp:
		return fmt.Sprintf("%s r%d, f%d, f%d", inf.Name, in.RD, in.FS1, in.FS2)
	case inf.UsesImm && inf.ReadsRS1:
		return fmt.Sprintf("%s r%d, r%d, %d", inf.Name, in.RD, in.RS1, in.Imm)
	case inf.UsesImm:
		return fmt.Sprintf("%s r%d, %d", inf.Name, in.RD, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", inf.Name, in.RD, in.RS1, in.RS2)
	}
}

// Validate checks structural well-formedness of the instruction
// (register numbers within file bounds, opcode defined). The timing and
// functional engines assume validated programs.
func (in Instr) Validate() error {
	if in.Op == OpInvalid || int(in.Op) >= NumOps {
		return fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.RD >= NumIntRegs || in.RS1 >= NumIntRegs || in.RS2 >= NumIntRegs {
		return fmt.Errorf("isa: %s: integer register out of range", in)
	}
	if in.FD >= NumFPRegs || in.FS1 >= NumFPRegs || in.FS2 >= NumFPRegs {
		return fmt.Errorf("isa: %s: fp register out of range", in)
	}
	return nil
}
