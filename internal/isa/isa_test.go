package isa

import (
	"testing"
	"testing/quick"
)

// TestTable1Latencies pins the functional-unit latencies to Table 1 of
// the paper.
func TestTable1Latencies(t *testing.T) {
	cases := []struct {
		op   Op
		lat  int
		pipe bool
		cls  Class
	}{
		{OpAdd, 1, true, ClassInt},
		{OpSub, 1, true, ClassInt},
		{OpAnd, 1, true, ClassInt}, // "log"
		{OpShl, 1, true, ClassInt}, // "shift"
		{OpMul, 2, true, ClassInt},
		{OpDiv, 8, false, ClassInt},
		{OpBeq, 1, true, ClassInt}, // "branch"
		{OpLd, 2, true, ClassLoad},
		{OpSt, 1, true, ClassStore},
		{OpFadd, 1, true, ClassFP},
		{OpFmul, 2, true, ClassFP},
		{OpFdiv, 7, false, ClassFP}, // fpdiv 4/7: double precision
	}
	for _, c := range cases {
		inf := InfoFor(c.op)
		if inf.Latency != c.lat {
			t.Errorf("%v latency = %d, want %d", c.op, inf.Latency, c.lat)
		}
		if inf.Pipel != c.pipe {
			t.Errorf("%v pipelined = %v, want %v", c.op, inf.Pipel, c.pipe)
		}
		if inf.Class != c.cls {
			t.Errorf("%v class = %v, want %v", c.op, inf.Class, c.cls)
		}
	}
}

func TestEveryOpcodeHasInfo(t *testing.T) {
	for op := OpAdd; op < Op(NumOps); op++ {
		inf := InfoFor(op)
		if inf.Name == "" {
			t.Errorf("opcode %d has no name", op)
		}
		if inf.Class != ClassNone && inf.Latency <= 0 {
			t.Errorf("%v: non-positive latency %d", op, inf.Latency)
		}
	}
}

func TestBranchFlags(t *testing.T) {
	conds := []Op{OpBeq, OpBne, OpBlt, OpBge}
	for _, op := range conds {
		inf := InfoFor(op)
		if !inf.Branch || !inf.CondBr {
			t.Errorf("%v: want Branch and CondBr", op)
		}
	}
	uncond := []Op{OpJump, OpJal, OpJr}
	for _, op := range uncond {
		inf := InfoFor(op)
		if !inf.Branch || inf.CondBr {
			t.Errorf("%v: want Branch without CondBr", op)
		}
	}
}

func TestMemFlags(t *testing.T) {
	for _, op := range []Op{OpLd, OpSt, OpLdf, OpStf, OpSwap} {
		if !InfoFor(op).Mem {
			t.Errorf("%v: want Mem", op)
		}
	}
	if InfoFor(OpAdd).Mem {
		t.Error("add must not be a memory op")
	}
}

func TestSyncFlags(t *testing.T) {
	for _, op := range []Op{OpLock, OpUnlock, OpBarrier} {
		inf := InfoFor(op)
		if !inf.Sync || inf.Class != ClassNone {
			t.Errorf("%v: want Sync with ClassNone", op)
		}
	}
}

func TestInstrValidate(t *testing.T) {
	good := Instr{Op: OpAdd, RD: 1, RS1: 2, RS2: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instruction rejected: %v", err)
	}
	bad := []Instr{
		{Op: OpInvalid},
		{Op: Op(200)},
		{Op: OpAdd, RD: 32},
		{Op: OpFadd, FD: 40},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("invalid instruction accepted: %+v", in)
		}
	}
}

func TestStringIsNonEmptyForAllOps(t *testing.T) {
	f := func(rd, rs1, rs2 uint8, imm int64) bool {
		for op := OpAdd; op < Op(NumOps); op++ {
			in := Instr{Op: op, RD: Reg(rd % 32), RS1: Reg(rs1 % 32), RS2: Reg(rs2 % 32),
				FD: Reg(rd % 32), FS1: Reg(rs1 % 32), FS2: Reg(rs2 % 32), Imm: imm}
			if in.String() == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	for c := ClassNone; c <= ClassFP; c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty string", c)
		}
	}
}
