// Package version carries the build identity every binary and fabric
// node reports. Release builds stamp it via
//
//	go build -ldflags "-X clustersmt/internal/version.Version=v1.2.3"
//
// and unstamped builds fall back to "dev" plus whatever VCS metadata
// the toolchain embedded. The fabric exchanges String() at worker
// registration so fleet deployments can assert coordinator and workers
// run the same build — a mismatch is logged on both ends rather than
// rejected (results are content-addressed and versioned, so a skewed
// fleet degrades to cache misses, never to wrong bytes).
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the ldflags-stamped release identifier ("dev" when the
// build was not stamped).
var Version = "dev"

// String returns the full build identity: version, VCS revision when
// embedded (abbreviated, "+dirty" for modified trees), and the Go
// toolchain.
func String() string {
	rev := ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		var commit string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				commit = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if commit != "" {
			if len(commit) > 12 {
				commit = commit[:12]
			}
			rev = " " + commit
			if dirty {
				rev += "+dirty"
			}
		}
	}
	return fmt.Sprintf("clustersmt %s%s %s", Version, rev, runtime.Version())
}
