package harness

import (
	"context"
	"crypto/sha256"
	"fmt"
	"sync"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/prog"
)

// SnapshotStore persists warmed checkpoints across process lifetimes.
// Keys are lowercase hex SHA-256 strings (filesystem-safe); values are
// opaque core.Snapshot payloads. Both methods may be called from
// concurrent simulation goroutines. Load misses and failed saves are
// soft: the suite falls back to running the warm-up itself, so a store
// may drop writes (disk full, eviction) without affecting results.
// Load receives the warming run's context — federated stores use it
// for cancellation and to attribute the fetch to the run's trace.
type SnapshotStore interface {
	LoadSnapshot(ctx context.Context, key string) ([]byte, bool)
	SaveSnapshot(key string, data []byte)
}

// warmKey identifies one shareable warmed parent within a suite: the
// physical machine plus the program's warm-up prefix. Two workloads
// whose programs share a prefix key execute identically until a PC
// beyond the prefix is touched, so one parent serves them all.
type warmKey struct {
	machine [32]byte
	prefix  [32]byte
}

// warmParent is one warmed parent simulator's cache slot, registered
// before the warm-up run starts (singleflight, mirroring the result
// cache): the first caller for a key owns the run and closes done when
// sim is set; later callers wait on done and then fork. A nil sim with
// canceled=false means the warm-up is unusable for this key (the run
// left the prefix before WarmupCycles) and every caller simulates from
// scratch; canceled=true means the owner was interrupted and the entry
// was removed, so surviving waiters retry.
type warmParent struct {
	done     chan struct{}
	canceled bool
	// mu serializes forks: ForkProgram mutates the parent's
	// copy-on-write bookkeeping (page table freeze, cache ownership
	// flags), so concurrent forks of one parent must not overlap.
	// Forked children are independent afterwards and run concurrently.
	mu  sync.Mutex
	sim *core.Simulator
}

// warmStart returns a simulator for p on m already advanced to
// WarmupCycles via a shared warmed parent, or (nil, false, nil) when
// the scratch path must be used: warm-up sharing disabled, the program
// declares no prefix, or the warm-up left the prefix before the
// checkpoint cycle. Results are bit-identical either way — a fork of a
// prefix-valid checkpoint replays exactly the cycles a scratch run
// would execute — so every failure mode here falls back silently.
func (s *Suite) warmStart(ctx context.Context, m config.Machine, p *prog.Program) (*core.Simulator, bool, error) {
	w := s.WarmupCycles
	if w <= 0 || p.PrefixLen == 0 {
		return nil, false, nil
	}
	if s.MaxCycles > 0 && w >= s.MaxCycles {
		// The checkpoint cycle is past the run bound; warming up would
		// abort before pausing.
		return nil, false, nil
	}
	pk, ok := p.PrefixKey()
	if !ok {
		return nil, false, nil
	}
	k := warmKey{machine: m.Hash(), prefix: pk}

	for {
		s.warmMu.Lock()
		wp, exists := s.warm[k]
		if exists {
			s.warmMu.Unlock()
			select {
			case <-wp.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if wp.canceled {
				// The owner was interrupted (and removed the entry
				// before closing done); this caller is still live, so
				// retry — it may become the new owner.
				continue
			}
		} else {
			if s.warm == nil {
				s.warm = make(map[warmKey]*warmParent)
			}
			wp = &warmParent{done: make(chan struct{})}
			s.warm[k] = wp
			s.warmMu.Unlock()
			wp.sim = s.warmParent(ctx, m, p, w, k)
			if wp.sim == nil && ctx.Err() != nil {
				wp.canceled = true
				s.warmMu.Lock()
				delete(s.warm, k)
				s.warmMu.Unlock()
				close(wp.done)
				return nil, false, ctx.Err()
			}
			close(wp.done)
		}
		if wp.sim == nil {
			return nil, false, nil
		}
		wp.mu.Lock()
		child, err := wp.sim.ForkProgram(p)
		wp.mu.Unlock()
		if err != nil {
			// Should not happen for a key-matched parent; treated as a
			// soft miss rather than a run failure.
			return nil, false, nil
		}
		s.warmForks.Add(1)
		return child, true, nil
	}
}

// warmParent builds (or restores) the warmed parent for key k: a
// simulator paused at WarmupCycles with its state still a pure function
// of the shared prefix. It returns nil when the warm-up is unusable
// (the program left the prefix early, or the run failed or was
// interrupted — the caller distinguishes via ctx.Err()).
func (s *Suite) warmParent(ctx context.Context, m config.Machine, p *prog.Program, w int64, k warmKey) *core.Simulator {
	key := s.snapshotKey(k, w)
	if s.Snapshots != nil {
		if data, ok := s.Snapshots.LoadSnapshot(ctx, key); ok {
			if sim, err := core.Restore(m, p, data); err == nil && sim.PrefixValid() {
				s.warmRestores.Add(1)
				return sim
			}
			// A stale, corrupt or mismatched payload is a miss; the
			// fresh warm-up below overwrites it.
		}
	}
	sim, err := core.New(m, p)
	if err != nil {
		return nil
	}
	if s.MaxCycles > 0 {
		sim.MaxCycles = s.MaxCycles
	}
	sim.Parallel = s.Parallel
	if s.MetricsInterval > 0 || s.OnFrame != nil {
		// Children inherit the sampler through the fork, frames
		// included, so their rings match a scratch run's byte for byte.
		// The heartbeat callback is per-child and registered after the
		// fork; the shared warm-up phase itself emits no heartbeat.
		sim.EnableMetrics(s.MetricsInterval, s.MetricsRingCap)
	}
	sim.Interrupt = ctx.Done()
	if err := sim.RunTo(w); err != nil {
		return nil
	}
	sim.Interrupt = nil
	if sim.Done() || !sim.PrefixValid() {
		// The program finished or fetched past its prefix before the
		// checkpoint cycle: the state now depends on this variant's
		// post-prefix code, so it cannot seed the others.
		return nil
	}
	if s.Snapshots != nil {
		if data, err := sim.Snapshot(); err == nil {
			s.Snapshots.SaveSnapshot(key, data)
		}
	}
	return sim
}

// snapshotKey derives the persistent-store key for a warmed parent. It
// covers everything that shapes the checkpoint bytes: machine, prefix,
// checkpoint cycle, snapshot format version, and the suite's metrics
// configuration (the sampler state is part of the snapshot, and a
// restored parent must carry the same sampler a fresh warm-up under
// this suite would).
func (s *Suite) snapshotKey(k warmKey, w int64) string {
	h := sha256.New()
	h.Write(k.machine[:])
	h.Write(k.prefix[:])
	metricsOn := s.MetricsInterval > 0 || s.OnFrame != nil
	fmt.Fprintf(h, "|w=%d|snapv=%d|obs=%t,%d,%d",
		w, core.SnapshotVersion, metricsOn, s.MetricsInterval, s.MetricsRingCap)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// WarmForks returns how many simulations were started by forking a
// warmed parent instead of from scratch, and how many parents were
// restored from the SnapshotStore rather than warmed by running —
// observability for tests and the /healthz endpoint.
func (s *Suite) WarmForks() (forks, restores int64) {
	return s.warmForks.Load(), s.warmRestores.Load()
}
