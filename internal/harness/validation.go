package harness

import (
	"context"
	"fmt"
	"strings"

	"clustersmt/internal/config"
	"clustersmt/internal/model"
)

// ModelValidation compares the §2 analytical model's predictions
// against simulation, the paper's §5.1.1 exercise: place each measured
// application point on the chart and check that the FA processor the
// model says extracts the most performance is the one that actually won
// Figure 4/5.
type ModelValidation struct {
	HighEnd bool
	Apps    []string
	// PredictedFA / MeasuredFA are the model's and the simulator's best
	// fixed-assignment architecture per application.
	PredictedFA map[string]string
	MeasuredFA  map[string]string
	// SMT2Optimal records whether the measured point sits in SMT2's
	// optimal region (the paper's explanation for SMT2's stability).
	SMT2Optimal map[string]bool
}

// Agreements counts applications where model and simulation name the
// same best FA processor.
func (v *ModelValidation) Agreements() int {
	n := 0
	for _, app := range v.Apps {
		if v.PredictedFA[app] == v.MeasuredFA[app] {
			n++
		}
	}
	return n
}

// Render formats the comparison.
func (v *ModelValidation) Render() string {
	var b strings.Builder
	machine := "low-end"
	if v.HighEnd {
		machine = "high-end"
	}
	fmt.Fprintf(&b, "Model validation (%s): §2 predictions vs simulation (§5.1.1)\n", machine)
	fmt.Fprintf(&b, "%-8s %12s %12s %6s %14s\n", "app", "model-best", "sim-best", "match", "SMT2-region")
	for _, app := range v.Apps {
		match := " "
		if v.PredictedFA[app] == v.MeasuredFA[app] {
			match = "✓"
		}
		region := "outside"
		if v.SMT2Optimal[app] {
			region = "optimal"
		}
		fmt.Fprintf(&b, "%-8s %12s %12s %6s %14s\n",
			app, v.PredictedFA[app], v.MeasuredFA[app], match, region)
	}
	fmt.Fprintf(&b, "agreement: %d/%d\n", v.Agreements(), len(v.Apps))
	return b.String()
}

// ValidateModel runs the Figure 4/5 experiment and the Figure 6
// placement measurement, then asks the analytical model which FA
// processor each application point favors.
func (s *Suite) ValidateModel(highEnd bool) (*ModelValidation, error) {
	return s.ValidateModelContext(context.Background(), highEnd)
}

// ValidateModelContext is ValidateModel with caller cancellation.
func (s *Suite) ValidateModelContext(ctx context.Context, highEnd bool) (*ModelValidation, error) {
	var fig *Figure
	var err error
	if highEnd {
		fig, err = s.Figure5Context(ctx)
	} else {
		fig, err = s.Figure4Context(ctx)
	}
	if err != nil {
		return nil, err
	}
	pts, err := s.PlacementContext(ctx, highEnd)
	if err != nil {
		return nil, err
	}

	fas := []model.Proc{
		model.FromArch(config.FA8), model.FromArch(config.FA4),
		model.FromArch(config.FA2), model.FromArch(config.FA1),
	}
	smt2 := model.FromArch(config.SMT2)

	v := &ModelValidation{
		HighEnd:     highEnd,
		Apps:        fig.Apps,
		PredictedFA: make(map[string]string),
		MeasuredFA:  make(map[string]string),
		SMT2Optimal: make(map[string]bool),
	}
	for _, app := range fig.Apps {
		p := pts[app]
		v.PredictedFA[app] = model.BestOf(fas, p).Name
		v.MeasuredFA[app] = fig.BestFA(app)
		v.SMT2Optimal[app] = smt2.Classify(p) == model.RegionOptimal
	}
	return v, nil
}
