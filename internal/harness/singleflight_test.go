package harness

import (
	"sync"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/workloads"
)

// TestSingleflightSharesConcurrentRuns hammers one (app, arch) key from
// many goroutines at once: exactly one simulation may run, and every
// caller must get the same *Result pointer. Run under -race this also
// exercises the in-flight synchronization itself.
func TestSingleflightSharesConcurrentRuns(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	w, err := workloads.ByName("vpenta")
	if err != nil {
		t.Fatal(err)
	}

	const callers = 16
	results := make([]*core.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Run(w, config.FA8, false)
		}(i)
	}
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *Result: the run was duplicated", i)
		}
	}
}

// TestSuiteCachesErrors forces a failing configuration (a MaxCycles too
// small to finish anything) and checks the failure is simulated once:
// the second call must return the identical cached error instance
// instead of re-running the doomed simulation.
func TestSuiteCachesErrors(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	s.MaxCycles = 10 // nothing finishes in 10 cycles
	w, err := workloads.ByName("vpenta")
	if err != nil {
		t.Fatal(err)
	}

	_, err1 := s.Run(w, config.FA8, false)
	if err1 == nil {
		t.Fatal("expected a MaxCycles failure")
	}
	_, err2 := s.Run(w, config.FA8, false)
	if err2 != err1 {
		t.Fatalf("error not cached: %v vs %v", err1, err2)
	}
}
