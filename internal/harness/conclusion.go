package harness

import (
	"context"
	"fmt"
	"strings"

	"clustersmt/internal/config"
	"clustersmt/internal/workloads"
)

// ConclusionRow is one (app × arch) cell of the cycle-time-adjusted
// comparison behind the paper's §5.2/§6 conclusion.
type ConclusionRow struct {
	App  string
	Arch string
	// Cycles is the raw simulated cycle count.
	Cycles int64
	// AdjustedTime is cycles divided by the architecture's relative
	// clock frequency (Palacharla/Jouppi cycle-time model): the
	// wall-clock proxy the paper's conclusion rests on.
	AdjustedTime float64
	// Normalized is AdjustedTime relative to the figure baseline ×100.
	Normalized float64
}

// Conclusion is the cycle-time-adjusted version of a Figure 4/5/7/8
// comparison. The equal-cycle-time charts show SMT2 within a few
// percent of SMT1; once 4-issue clusters get their ~2× clock advantage,
// SMT2 dominates outright — "the hybrid organization is the most
// cost-effective one."
type Conclusion struct {
	Title string
	Apps  []string
	Archs []string
	Rows  []ConclusionRow
}

// Get returns the row for (app, arch); panics on unknown names.
func (c *Conclusion) Get(app, arch string) ConclusionRow {
	for _, r := range c.Rows {
		if r.App == app && r.Arch == arch {
			return r
		}
	}
	panic(fmt.Sprintf("harness: conclusion %q has no row (%s, %s)", c.Title, app, arch))
}

// Best returns the architecture with the lowest adjusted time for app.
func (c *Conclusion) Best(app string) string {
	best, bestTime := "", 0.0
	for _, r := range c.Rows {
		if r.App != app {
			continue
		}
		if best == "" || r.AdjustedTime < bestTime {
			best, bestTime = r.Arch, r.AdjustedTime
		}
	}
	return best
}

// Render formats the adjusted comparison.
func (c *Conclusion) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	fmt.Fprintf(&b, "%-8s", "app")
	for _, a := range c.Archs {
		fmt.Fprintf(&b, "%8s", a)
	}
	fmt.Fprintf(&b, "  winner\n")
	for _, app := range c.Apps {
		fmt.Fprintf(&b, "%-8s", app)
		for _, a := range c.Archs {
			fmt.Fprintf(&b, "%8.0f", c.Get(app, a).Normalized)
		}
		fmt.Fprintf(&b, "  %s\n", c.Best(app))
	}
	return b.String()
}

// clockFor maps a figure arch name to its clock factor.
func clockFor(name string) float64 {
	a, err := config.ArchByName(name)
	if err != nil {
		panic(err)
	}
	return a.ClockFactor()
}

// AdjustClock converts a figure to the cycle-time-adjusted comparison:
// each architecture's cycles are divided by its relative clock
// frequency and renormalized to the baseline architecture.
func AdjustClock(fig *Figure) *Conclusion {
	c := &Conclusion{
		Title: fig.Title + " — cycle-time adjusted (4-issue clusters at 2x the 8-issue clock)",
		Apps:  fig.Apps,
		Archs: fig.Archs,
	}
	for _, app := range fig.Apps {
		base := float64(fig.Get(app, fig.Baseline).Cycles) / clockFor(fig.Baseline)
		for _, arch := range fig.Archs {
			r := fig.Get(app, arch)
			adj := float64(r.Cycles) / clockFor(arch)
			c.Rows = append(c.Rows, ConclusionRow{
				App:          app,
				Arch:         arch,
				Cycles:       r.Cycles,
				AdjustedTime: adj,
				Normalized:   100 * adj / base,
			})
		}
	}
	return c
}

// Conclusion runs the full Table 2 set on the low-end machine and
// returns the cycle-time-adjusted comparison across all seven
// architectures — the paper's bottom line in one table.
func (s *Suite) Conclusion(highEnd bool) (*Conclusion, error) {
	return s.ConclusionContext(context.Background(), highEnd)
}

// ConclusionContext is Conclusion with caller cancellation.
func (s *Suite) ConclusionContext(ctx context.Context, highEnd bool) (*Conclusion, error) {
	apps := workloads.All()
	archs := []config.Arch{config.FA8, config.FA4, config.FA2, config.FA1,
		config.SMT4, config.SMT2, config.SMT1}
	res, err := s.RunMatrixContext(ctx, apps, archs, highEnd)
	if err != nil {
		return nil, err
	}
	fig := buildFigure("All architectures", apps, archs, res)
	c := AdjustClock(fig)
	machine := "low-end"
	if highEnd {
		machine = "high-end"
	}
	c.Title = fmt.Sprintf("Conclusion (%s machine): execution time with the §5.2 cycle-time model, normalized to FA8 = 100", machine)
	return c, nil
}
