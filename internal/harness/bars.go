package harness

import (
	"fmt"
	"sort"
	"strings"

	"clustersmt/internal/stats"
)

// barGlyphs maps each slot category to the letter used in the stacked
// bars, in legend order (the paper's Figures 4/5/7/8 are stacked bar
// charts of exactly these categories).
var barGlyphs = [stats.NumCategories]byte{'U', 'f', 's', 'c', 'd', 'm', 'x', 'o'}

// RenderBars draws the figure as paper-style horizontal stacked bars:
// each architecture's bar length is its normalized execution time, and
// the bar is segmented by where the issue slots went
// (U=useful f=fetch s=sync c=control d=data m=memory x=structural
// o=other).
func (f *Figure) RenderBars() string {
	const scale = 0.5 // characters per normalized point
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "legend: U=useful f=fetch s=sync c=control d=data m=memory x=structural o=other\n\n")
	for _, app := range f.Apps {
		fmt.Fprintf(&b, "%s\n", app)
		for _, arch := range f.Archs {
			r := f.Get(app, arch)
			fmt.Fprintf(&b, "  %-5s %4.0f |%s|\n", r.Arch, r.Normalized,
				stackedBar(r.Breakdown, int(r.Normalized*scale+0.5)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// stackedBar renders width characters split across the categories in
// proportion to their fractions, using largest-remainder rounding so
// the segments sum to exactly width.
func stackedBar(fractions [stats.NumCategories]float64, width int) string {
	if width <= 0 {
		return ""
	}
	type seg struct {
		cat  int
		frac float64
		n    int
		rem  float64
	}
	segs := make([]seg, stats.NumCategories)
	total := 0.0
	for i, fr := range fractions {
		segs[i] = seg{cat: i, frac: fr}
		total += fr
	}
	if total <= 0 {
		return strings.Repeat(" ", width)
	}
	used := 0
	for i := range segs {
		exact := segs[i].frac / total * float64(width)
		segs[i].n = int(exact)
		segs[i].rem = exact - float64(segs[i].n)
		used += segs[i].n
	}
	// Distribute the leftover characters to the largest remainders.
	order := make([]int, len(segs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return segs[order[a]].rem > segs[order[b]].rem
	})
	for i := 0; used < width; i++ {
		segs[order[i%len(order)]].n++
		used++
	}
	var b strings.Builder
	for _, s := range segs {
		if s.n > 0 {
			b.WriteString(strings.Repeat(string(barGlyphs[s.cat]), s.n))
		}
	}
	return b.String()
}

// CSV renders the figure as comma-separated values (one row per
// app × arch cell) for external plotting tools.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("app,arch,cycles,normalized")
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		fmt.Fprintf(&b, ",%s", c)
	}
	b.WriteString("\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%s,%s,%d,%.2f", r.App, r.Arch, r.Cycles, r.Normalized)
		for c := stats.Category(0); c < stats.NumCategories; c++ {
			fmt.Fprintf(&b, ",%.4f", r.Breakdown[c])
		}
		b.WriteString("\n")
	}
	return b.String()
}
