package harness

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"clustersmt/internal/config"
	"clustersmt/internal/workloads"
)

// TestRunContextCancel checks the cancellation contract: a canceled run
// returns promptly with a context error, and — crucially — does not
// poison the cache: the next identical request with a live context
// re-runs and succeeds.
func TestRunContextCancel(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	w, err := workloads.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the run even starts
	if _, err := s.RunContext(ctx, w, config.SMT2, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled run: got %v, want context.Canceled", err)
	}

	// The canceled attempt must not be cached as a failure.
	r, err := s.RunContext(context.Background(), w, config.SMT2, false)
	if err != nil {
		t.Fatalf("run after cancellation failed: %v", err)
	}
	if r == nil || r.Cycles <= 0 {
		t.Fatalf("run after cancellation returned a bogus result: %+v", r)
	}
}

// TestRunContextCancelMidRun cancels while the simulation is in flight
// and checks Run returns well before the full simulation would.
func TestRunContextCancelMidRun(t *testing.T) {
	s := NewSuite(workloads.SizeRef) // ref input: long enough to cancel mid-flight
	w, err := workloads.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.RunContext(ctx, w, config.SMT1, false)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the simulation start
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-run cancel: got %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled run did not return promptly")
	}

	// Cache intact: the canceled run's slot was removed (not cached as
	// a failure), so the next identical request would re-run. Checked
	// directly rather than by re-running the full ref-size simulation.
	s.mu.Lock()
	_, stillCached := s.cache[key(w.Name, config.SMT1, 1, config.AllocConfig{})]
	s.mu.Unlock()
	if stillCached {
		t.Fatal("canceled run left a poisoned cache entry")
	}
}

// TestRunContextCanceledOwnerHandsOff starts an owner that gets
// canceled while waiters with live contexts share its singleflight
// slot; the waiters must retry (one becoming the new owner) and all
// receive a real result.
func TestRunContextCanceledOwnerHandsOff(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	w, err := workloads.ByName("mgrid")
	if err != nil {
		t.Fatal(err)
	}

	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerErr := make(chan error, 1)
	go func() {
		_, err := s.RunContext(ownerCtx, w, config.FA4, false)
		ownerErr <- err
	}()

	const waiters = 4
	var wg sync.WaitGroup
	results := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, results[i] = s.RunContext(context.Background(), w, config.FA4, false)
		}(i)
	}

	cancelOwner()
	if err := <-ownerErr; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("owner: got %v, want nil or context.Canceled", err)
	}
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("waiter %d failed after owner cancellation: %v", i, err)
		}
	}
}

// TestRunMatrixConcurrentCallers races several full RunMatrix calls on
// one shared suite (the clusterd serving pattern: overlapping figure
// requests). Every caller must observe the same cached results — the
// singleflight shares one *core.Result per physical configuration.
func TestRunMatrixConcurrentCallers(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	apps := []workloads.Workload{}
	for _, name := range []string{"swim", "vpenta"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, w)
	}
	archs := []config.Arch{config.FA8, config.SMT8, config.SMT2}

	const callers = 6
	var wg sync.WaitGroup
	outs := make([]map[string]map[string]interface{}, callers)
	errs := make([]error, callers)
	raw := make([]map[string]map[string]uintptr, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.RunMatrixContext(context.Background(), apps, archs, false)
			errs[i] = err
			if err != nil {
				return
			}
			ptrs := make(map[string]map[string]uintptr)
			vals := make(map[string]map[string]interface{})
			for app, row := range res {
				ptrs[app] = make(map[string]uintptr)
				vals[app] = make(map[string]interface{})
				for arch, r := range row {
					ptrs[app][arch] = reflect.ValueOf(r).Pointer()
					vals[app][arch] = r.Cycles
				}
			}
			raw[i] = ptrs
			outs[i] = vals
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(raw[0], raw[i]) {
			t.Fatalf("caller %d saw different result pointers than caller 0 (singleflight broken)", i)
		}
		if !reflect.DeepEqual(outs[0], outs[i]) {
			t.Fatalf("caller %d saw different cycle counts than caller 0", i)
		}
	}
	// FA8 and SMT8 share one physical configuration → one result object.
	for _, app := range []string{"swim", "vpenta"} {
		if raw[0][app]["FA8"] != raw[0][app]["SMT8"] {
			t.Fatalf("%s: FA8 and SMT8 did not share a cached run", app)
		}
	}
}
