package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/model"
	"clustersmt/internal/obs"
	"clustersmt/internal/stats"
	"clustersmt/internal/workloads"
)

func TestSuiteCachesRuns(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	w, _ := workloads.ByName("vpenta")
	r1, err := s.Run(w, config.FA8, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(w, config.FA8, false)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("identical run not cached")
	}
	// SMT8 aliases FA8 physically: must share the cache entry.
	r3, err := s.Run(w, config.SMT8, false)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Fatal("SMT8 did not reuse the FA8 run")
	}
}

func TestFigureAccessors(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	fig, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Apps) != 6 || len(fig.Archs) != 5 {
		t.Fatalf("figure shape %dx%d", len(fig.Apps), len(fig.Archs))
	}
	if len(fig.Rows) != 30 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	r := fig.Get("swim", "FA8")
	if r.Normalized != 100 {
		t.Fatalf("baseline normalization = %v", r.Normalized)
	}
	if best := fig.Best("swim"); best == "" {
		t.Fatal("no best")
	}
	if bf := fig.BestFA("swim"); strings.HasPrefix(bf, "SMT") {
		t.Fatalf("bestFA returned %s", bf)
	}
	out := fig.Render()
	for _, app := range fig.Apps {
		if !strings.Contains(out, app) {
			t.Errorf("render missing %s", app)
		}
	}
}

func TestFigureGetPanicsOnUnknown(t *testing.T) {
	fig := &Figure{Title: "t"}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	fig.Get("nope", "FA8")
}

func TestPlacementShape(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	pts, err := s.Placement(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("placements = %d", len(pts))
	}
	for app, p := range pts {
		if p.Threads <= 0 || p.Threads > 8.01 {
			t.Errorf("%s: threads = %v out of range", app, p.Threads)
		}
		if p.ILP <= 0 || p.ILP > 8.01 {
			t.Errorf("%s: ILP = %v out of range", app, p.ILP)
		}
	}
	out := RenderPlacement(pts, model.FromArch(config.SMT2))
	if !strings.Contains(out, "ocean") {
		t.Fatal("placement render missing app")
	}
}

// --- Paper-claims tests (the reproduction's acceptance criteria) ---
//
// These run the reference-size experiments, so they take a few seconds;
// skipped under -short.

func refSuite(t *testing.T) *Suite {
	t.Helper()
	if testing.Short() {
		t.Skip("reference-size experiment; skipped with -short")
	}
	return NewSuite(workloads.SizeRef)
}

// TestPaperFigure4SweetSpots asserts the low-end FA sweet spots the
// paper reports: FA8 for vpenta and ocean, FA4 for swim and fmm, FA2
// for tomcatv and mgrid — and that the clustered SMT2 takes the fewest
// cycles for every application.
func TestPaperFigure4SweetSpots(t *testing.T) {
	fig, err := refSuite(t).Figure4()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"vpenta": "FA8", "ocean": "FA8",
		"swim": "FA4", "fmm": "FA4",
		"tomcatv": "FA2", "mgrid": "FA2",
	}
	for app, arch := range want {
		if got := fig.BestFA(app); got != arch {
			t.Errorf("%s: best FA = %s, want %s (paper Fig. 4)", app, got, arch)
		}
		if best := fig.Best(app); best != "SMT2" {
			t.Errorf("%s: overall best = %s, want SMT2 (paper Fig. 4)", app, best)
		}
	}
}

// TestPaperFigure4SMT2Advantage asserts the paper's quantitative
// headline: on average SMT2 takes noticeably fewer cycles than the best
// per-application FA processor (the paper measures 13%; we accept 5-25%).
func TestPaperFigure4SMT2Advantage(t *testing.T) {
	fig, err := refSuite(t).Figure4()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, app := range fig.Apps {
		bestFA := fig.Get(app, fig.BestFA(app))
		smt2 := fig.Get(app, "SMT2")
		sum += 1 - float64(smt2.Cycles)/float64(bestFA.Cycles)
	}
	avg := sum / float64(len(fig.Apps))
	if avg < 0.05 || avg > 0.25 {
		t.Errorf("SMT2 advantage over best FA = %.1f%%, want 5-25%% (paper: 13%%)", 100*avg)
	}
}

// TestPaperFigure5HighEnd asserts the high-end shifts the paper
// describes: the sweet spot moves to wide-issue FAs for the low-
// parallelism applications (FA1 for tomcatv and mgrid), the highly
// parallel applications keep FA8, and SMT2 again has the lowest
// execution time everywhere.
func TestPaperFigure5HighEnd(t *testing.T) {
	fig, err := refSuite(t).Figure5()
	if err != nil {
		t.Fatal(err)
	}
	for app, arch := range map[string]string{"tomcatv": "FA1", "mgrid": "FA1"} {
		if got := fig.BestFA(app); got != arch {
			t.Errorf("%s: best FA = %s, want %s (paper Fig. 5)", app, got, arch)
		}
	}
	for _, app := range []string{"vpenta", "ocean"} {
		if got := fig.BestFA(app); got != "FA8" {
			t.Errorf("%s: best FA = %s, want FA8 (paper Fig. 5)", app, got)
		}
	}
	for _, app := range fig.Apps {
		if best := fig.Best(app); best != "SMT2" {
			t.Errorf("%s: overall best = %s, want SMT2 (paper Fig. 5)", app, best)
		}
	}
}

// TestPaperFigure7Clustering asserts the Figure 7 structure: execution
// time improves monotonically from SMT8 through SMT4 to SMT2 for every
// application, and SMT2 lands within the paper's 0-9% band of the fully
// centralized SMT1 — or beats it (our kernels are chain-heavier than
// the originals, which exposes SMT1's narrower Table 2 FU mix; see
// EXPERIMENTS.md).
func TestPaperFigure7Clustering(t *testing.T) {
	fig, err := refSuite(t).Figure7()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range fig.Apps {
		smt8 := fig.Get(app, "SMT8").Cycles
		smt4 := fig.Get(app, "SMT4").Cycles
		smt2 := fig.Get(app, "SMT2").Cycles
		smt1 := fig.Get(app, "SMT1").Cycles
		if smt4 > smt8 {
			t.Errorf("%s: SMT4 (%d) worse than SMT8 (%d)", app, smt4, smt8)
		}
		if float64(smt2) > 1.03*float64(smt4) {
			t.Errorf("%s: SMT2 (%d) worse than SMT4 (%d)", app, smt2, smt4)
		}
		// SMT2 within 10% of SMT1, or better.
		if float64(smt2) > 1.10*float64(smt1) {
			t.Errorf("%s: SMT2 (%d) more than 10%% behind SMT1 (%d)", app, smt2, smt1)
		}
	}
}

// TestPaperFigure6Placements asserts the qualitative layout of
// Figure 6a: tomcatv leftmost; vpenta and ocean in the lower right
// (most threads, least ILP); every application inside SMT2's optimal
// region except possibly tomcatv.
func TestPaperFigure6Placements(t *testing.T) {
	pts, err := refSuite(t).Placement(false)
	if err != nil {
		t.Fatal(err)
	}
	for app, p := range pts {
		if app == "tomcatv" {
			continue
		}
		if pts["tomcatv"].Threads >= p.Threads {
			t.Errorf("tomcatv (%.2f threads) not leftmost vs %s (%.2f)",
				pts["tomcatv"].Threads, app, p.Threads)
		}
	}
	for _, app := range []string{"vpenta", "ocean"} {
		if pts[app].Threads < 6 {
			t.Errorf("%s: threads = %.2f, want > 6", app, pts[app].Threads)
		}
		if pts[app].ILP > 2 {
			t.Errorf("%s: ILP = %.2f, want < 2", app, pts[app].ILP)
		}
	}
	smt2 := model.FromArch(config.SMT2)
	for app, p := range pts {
		if r := smt2.Classify(p); r != model.RegionOptimal && app != "tomcatv" {
			t.Errorf("%s: region = %v, want optimal", app, r)
		}
	}
}

// TestPaperFigure6HighEndShift asserts that the high-end points move
// left and down relative to the low-end points (§5.1.1).
func TestPaperFigure6HighEndShift(t *testing.T) {
	s := refSuite(t)
	low, err := s.Placement(false)
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.Placement(true)
	if err != nil {
		t.Fatal(err)
	}
	movedLeft, movedDown := 0, 0
	for app := range low {
		if high[app].Threads < low[app].Threads+0.01 {
			movedLeft++
		}
		if high[app].ILP < low[app].ILP+0.01 {
			movedDown++
		}
	}
	if movedLeft < 4 {
		t.Errorf("only %d/6 apps moved left on the high-end machine", movedLeft)
	}
	if movedDown < 4 {
		t.Errorf("only %d/6 apps moved down on the high-end machine", movedDown)
	}
}

// TestPaperUShape asserts the Figure 4 "U-shape" the paper describes:
// for the mid-parallelism applications, both FA8 (too narrow) and FA1
// (too few threads) are worse than the interior sweet spot.
func TestPaperUShape(t *testing.T) {
	fig, err := refSuite(t).Figure4()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range []string{"swim", "tomcatv", "mgrid", "fmm"} {
		best := fig.Get(app, fig.BestFA(app)).Cycles
		fa8 := fig.Get(app, "FA8").Cycles
		fa1 := fig.Get(app, "FA1").Cycles
		if fa8 <= best || fa1 <= best {
			t.Errorf("%s: no U-shape (FA8=%d best=%d FA1=%d)", app, fa8, best, fa1)
		}
	}
}

// TestPaperConclusionCycleTime asserts the paper's §5.2/§6 bottom line:
// once the Palacharla/Jouppi cycle-time model is applied (4-issue
// clusters clock ~2x an 8-issue core), the clustered SMT2 has the best
// — or within 2% of the best — wall-clock time for every application on
// both machines, making it the most cost-effective organization.
func TestPaperConclusionCycleTime(t *testing.T) {
	s := refSuite(t)
	for _, highEnd := range []bool{false, true} {
		c, err := s.Conclusion(highEnd)
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range c.Apps {
			best := c.Get(app, c.Best(app)).AdjustedTime
			smt2 := c.Get(app, "SMT2").AdjustedTime
			if smt2 > 1.02*best {
				t.Errorf("highEnd=%v %s: SMT2 adjusted time %.0f vs best %s %.0f",
					highEnd, app, smt2, c.Best(app), best)
			}
		}
	}
}

// TestAdjustClockAlgebra checks the adjustment arithmetic on a
// synthetic figure.
func TestAdjustClockAlgebra(t *testing.T) {
	fig := &Figure{
		Title:    "t",
		Baseline: "FA8",
		Apps:     []string{"x"},
		Archs:    []string{"FA8", "FA2", "SMT1"},
		Rows: []Row{
			{App: "x", Arch: "FA8", Cycles: 1000},
			{App: "x", Arch: "FA2", Cycles: 900},
			{App: "x", Arch: "SMT1", Cycles: 600},
		},
	}
	c := AdjustClock(fig)
	// FA8 (1-issue clusters) and FA2 (4-issue) run at full clock;
	// SMT1's 8-issue cluster pays 2x cycle time.
	if got := c.Get("x", "FA2").Normalized; got != 90 {
		t.Errorf("FA2 normalized = %v, want 90", got)
	}
	if got := c.Get("x", "SMT1").Normalized; got != 120 {
		t.Errorf("SMT1 normalized = %v, want 120 (600 cycles x 2)", got)
	}
	if best := c.Best("x"); best != "FA2" {
		t.Errorf("best = %s", best)
	}
	if c.Render() == "" {
		t.Error("empty render")
	}
}

func TestRenderBars(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	fig, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	out := fig.RenderBars()
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "U") {
		t.Fatalf("bars missing content:\n%s", out)
	}
	for _, app := range fig.Apps {
		if !strings.Contains(out, app) {
			t.Errorf("bars missing %s", app)
		}
	}
}

func TestStackedBarExactWidth(t *testing.T) {
	var fr [stats.NumCategories]float64
	fr[stats.Useful] = 0.5
	fr[stats.Sync] = 0.3
	fr[stats.Data] = 0.2
	for _, w := range []int{1, 7, 40, 123} {
		bar := stackedBar(fr, w)
		if len(bar) != w {
			t.Errorf("width %d: bar length %d", w, len(bar))
		}
	}
	if stackedBar(fr, 0) != "" {
		t.Error("zero width should be empty")
	}
	var zero [stats.NumCategories]float64
	if got := stackedBar(zero, 5); got != "     " {
		t.Errorf("zero fractions bar = %q", got)
	}
}

// TestPaperModelConsistency reproduces §5.1.1: the analytical model's
// per-application best-FA prediction from the measured (threads × ILP)
// points must agree with the simulated Figure 4 winners for most
// applications (the paper reports full qualitative consistency; we
// require at least 4 of 6 — the model ignores cache effects and serial
// sections by design).
func TestPaperModelConsistency(t *testing.T) {
	v, err := refSuite(t).ValidateModel(false)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Agreements(); got < 4 {
		t.Errorf("model-vs-simulation agreement %d/6, want >= 4:\n%s", got, v.Render())
	}
	if v.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigureCSV(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	fig, err := s.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	csv := fig.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(fig.Rows) {
		t.Fatalf("csv lines = %d, want %d", len(lines), 1+len(fig.Rows))
	}
	if !strings.HasPrefix(lines[0], "app,arch,cycles,normalized,useful") {
		t.Fatalf("csv header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != strings.Count(lines[0], ",") {
			t.Fatalf("ragged csv row %q", l)
		}
	}
}

// TestConcurrentSuiteDeterminism: the suite runs simulations on
// goroutines; results must be identical to a second, fresh suite (the
// simulations themselves are single-goroutine and deterministic).
func TestConcurrentSuiteDeterminism(t *testing.T) {
	run := func() map[string]int64 {
		s := NewSuite(workloads.SizeTest)
		fig, err := s.Figure4()
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for _, r := range fig.Rows {
			out[r.App+"/"+r.Arch] = r.Cycles
		}
		return out
	}
	a, b := run(), run()
	for k, v := range a {
		if b[k] != v {
			t.Errorf("%s: %d vs %d across suites", k, v, b[k])
		}
	}
}

// TestExtendedEvaluationExtras runs the two extension kernels across
// the Figure 4 architecture set and checks the expected structure:
// radix (integer, fully parallel, no long chains) and lu (tapering
// parallelism) must both run everywhere, with the clustered SMT2 at or
// near the front.
func TestExtendedEvaluationExtras(t *testing.T) {
	s := NewSuite(workloads.SizeTest)
	res, err := s.RunMatrix(workloads.Extras(), FAFigureArchs, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workloads.Extras() {
		best, bestCycles := "", int64(0)
		for arch, r := range res[w.Name] {
			if r.Committed == 0 {
				t.Errorf("%s/%s: nothing committed", w.Name, arch)
			}
			if best == "" || r.Cycles < bestCycles {
				best, bestCycles = arch, r.Cycles
			}
		}
		smt2 := res[w.Name]["SMT2"].Cycles
		if float64(smt2) > 1.15*float64(bestCycles) {
			t.Errorf("%s: SMT2 (%d cycles) more than 15%% behind best %s (%d)",
				w.Name, smt2, best, bestCycles)
		}
	}
}

// TestSuiteMetricsAndHeartbeat wires the observability fields through a
// concurrent matrix run: every simulation must retain a ring, the
// OnFrame heartbeat must see every frame (it runs from concurrent
// simulation goroutines — this test is part of the -race gate), the
// per-run exports must produce parseable CSV and JSON, and results must
// stay bit-identical to a suite without metrics.
func TestSuiteMetricsAndHeartbeat(t *testing.T) {
	apps := []workloads.Workload{}
	for _, name := range []string{"vpenta", "fmm"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, w)
	}
	archs := []config.Arch{config.SMT2, config.FA4}

	plain := NewSuite(workloads.SizeTest)
	ref, err := plain.RunMatrix(apps, archs, false)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSuite(workloads.SizeTest)
	s.MetricsInterval = 500
	var mu sync.Mutex
	beats := map[string]int{}
	s.OnFrame = func(app, machine string, f obs.Frame) {
		mu.Lock()
		beats[app+"@"+machine]++
		mu.Unlock()
	}
	got, err := s.RunMatrix(apps, archs, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range apps {
		for _, ar := range archs {
			if !reflect.DeepEqual(ref[a.Name][ar.Name], got[a.Name][ar.Name]) {
				t.Errorf("%s on %s: result with suite metrics differs from plain run", a.Name, ar.Name)
			}
		}
	}

	runs := s.MetricsRuns()
	if len(runs) != len(apps)*len(archs) {
		t.Fatalf("retained metrics for %d runs, want %d: %v", len(runs), len(apps)*len(archs), runs)
	}
	for _, run := range runs {
		ring := s.Metrics(run)
		if ring == nil || ring.Len() == 0 {
			t.Fatalf("%s: no frames retained", run)
		}
		if beats[run] != ring.Pushed() {
			t.Errorf("%s: heartbeat saw %d frames, ring pushed %d", run, beats[run], ring.Pushed())
		}
		var csvBuf, jsonBuf bytes.Buffer
		if err := s.WriteMetricsCSV(&csvBuf, run); err != nil {
			t.Fatal(err)
		}
		rd := csv.NewReader(&csvBuf)
		rd.Comment = '#' // retention-accounting comment line
		if recs, err := rd.ReadAll(); err != nil {
			t.Fatalf("%s: CSV export unparseable: %v", run, err)
		} else if len(recs) != ring.Len()+1 {
			t.Errorf("%s: CSV has %d records, want header+%d", run, len(recs), ring.Len())
		}
		if err := s.WriteMetricsJSON(&jsonBuf, run); err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Frames []obs.Frame `json:"frames"`
		}
		if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: JSON export unparseable: %v", run, err)
		}
	}
	if s.Metrics("nope@low-end/SMT2") != nil {
		t.Error("unknown run returned a ring")
	}
	if err := s.WriteMetricsCSV(io.Discard, "nope"); err == nil {
		t.Error("export of unknown run did not fail")
	}
}
