// Package harness drives the paper's experiments: it runs (application
// × architecture × machine) simulations, caches shared runs, measures
// the Figure 6 placements, and renders the Figure 4/5/7/8 execution-
// time breakdowns as text.
//
// Individual simulations are strictly deterministic; by default each
// runs on a single goroutine and the harness runs independent
// simulations concurrently across host cores. Suite.Parallel instead
// spreads each simulation's chips across goroutines (core.Simulator.
// Parallel), which pays off when one big high-end run dominates.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/model"
	"clustersmt/internal/obs"
	"clustersmt/internal/stats"
	"clustersmt/internal/workloads"
)

// FAFigureArchs is the architecture set of Figures 4 and 5.
var FAFigureArchs = []config.Arch{config.FA8, config.FA4, config.FA2, config.FA1, config.SMT2}

// SMTFigureArchs is the architecture set of Figures 7 and 8.
var SMTFigureArchs = []config.Arch{config.SMT8, config.SMT4, config.SMT2, config.SMT1}

// RemoteFunc is the Suite.Remote hook signature: given the run's
// identity in wire-expressible form (canonical app name, Table 2
// architecture, machine class — the suite supplies its own input
// size), it may produce the run's outcome from somewhere else (a peer
// cache, a fleet dispatch). handled=false means "no remote answer,
// simulate locally"; handled=true with a non-nil err is a definitive
// remote failure (including ctx cancellation, which must be returned
// errors.Is-compatible with ctx.Err()).
type RemoteFunc func(ctx context.Context, app string, arch config.Arch, highEnd bool) (res *core.Result, handled bool, err error)

type runKey struct {
	app      string
	clusters int
	issue    int
	tpc      int
	chips    int
	// Normalized allocation policy: two policies must never share a
	// cached result (the canonical machine encoding makes the same
	// distinction for the persistent service cache).
	policy string
	epoch  int64
}

// inflight is one simulation's cache slot, registered before the run
// starts (singleflight): the first caller for a key owns the run and
// closes done when res/err are set; later callers wait on done. Errors
// are cached like results, so a failing configuration is simulated
// once, not once per figure that includes it.
type inflight struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// Suite runs and caches simulations at a fixed input size.
type Suite struct {
	Size workloads.Size
	// MaxCycles bounds each simulation (0 = core default).
	MaxCycles int64

	// AllocPolicy selects the thread-to-cluster allocation policy for
	// every simulation this suite runs ("" or "static" = the paper's
	// fixed seed placement; see internal/alloc for the registry).
	// AllocEpoch is the dynamic policies' epoch length in cycles (0 =
	// config.DefaultAllocEpoch). Set before the first Run.
	AllocPolicy string
	AllocEpoch  int64
	// Parallel runs each simulation's chips on separate goroutines
	// (core.Simulator.Parallel). Results stay bit-identical to the
	// sequential loop; the win is wall clock on multi-chip machines
	// when a few big runs dominate the suite. Set before the first Run.
	Parallel bool

	// MetricsInterval > 0 enables interval metrics on every simulation
	// (one obs.Frame per MetricsInterval cycles, retained in a ring of
	// MetricsRingCap frames — obs.DefaultRingCap when 0). Sampling is
	// read-only: results, including cache hits shared across figures,
	// are bit-identical with metrics on or off.
	MetricsInterval int64
	MetricsRingCap  int
	// OnFrame, when set, receives every frame of every simulation as
	// the run progresses — the progress heartbeat. Setting it without
	// MetricsInterval samples at core.DefaultMetricsInterval. It is
	// called from concurrent simulation goroutines and must be safe for
	// concurrent use; it must not block for long (it runs on the
	// simulation's critical path).
	OnFrame func(app, machine string, f obs.Frame)

	// Remote, when non-nil, is consulted by the singleflight owner of
	// each uncached run before it simulates anything — the scale-out
	// fabric's hook. Returning handled=true makes (res, err) the run's
	// outcome, cached exactly like a local simulation's (so a fleet
	// dispatch or peer-cache hit is still deduplicated across
	// overlapping figures, and a remote cancellation follows the
	// cancel-retry path). Returning handled=false falls back to the
	// local scratch/warm-start path — the hook must degrade, never
	// fail, on fabric trouble. Because the hook runs on the owner side
	// of the singleflight, a burst of identical requests costs one
	// remote lookup, and remote-served runs never occupy a local
	// simulation slot. Set before the first Run.
	Remote RemoteFunc

	// WarmupCycles > 0 enables checkpoint-based warm-up sharing: for
	// workloads whose programs declare a shared prefix
	// (prog.Builder.MarkPrefix), the suite runs one parent simulation
	// per (machine, prefix) to this cycle, checkpoints it, and forks
	// every variant from the warmed parent (core.Simulator.ForkProgram)
	// instead of simulating each from cycle zero. Results stay
	// bit-identical to scratch runs; the win is wall clock when the
	// warm-up dominates and many variants share it. Workloads without a
	// prefix, and parents whose warm-up ends before this cycle, fall
	// back to scratch silently. Set before the first Run.
	WarmupCycles int64
	// Snapshots, when non-nil, persists warmed parent checkpoints so
	// later processes restore them instead of re-running the warm-up
	// (the serving subsystem backs this with its cache directory). Only
	// consulted when WarmupCycles > 0. Set before the first Run.
	Snapshots SnapshotStore

	// OnSimulate, when set, is called after every simulation this suite
	// actually executes (singleflight owners only — cache hits, shares
	// and remote-served runs never fire it) with the run's identity,
	// wall-clock duration, and outcome. ctx is the owning caller's
	// context — the serving layer reads its trace ID to attribute the
	// simulate span. Must be safe for concurrent use and read-only with
	// respect to results. Set before the first Run.
	OnSimulate func(ctx context.Context, app, machine string, highEnd bool, d time.Duration, err error)

	mu    sync.Mutex
	cache map[runKey]*inflight
	sem   chan struct{}

	warmMu       sync.Mutex
	warm         map[warmKey]*warmParent
	warmForks    atomic.Int64
	warmRestores atomic.Int64
	sims         atomic.Int64

	allocMigrations atomic.Int64
	allocEpochs     atomic.Int64

	obsMu sync.Mutex
	rings map[string]*obs.Ring // "app@machine" -> retained frames
}

// NewSuite returns a Suite at the given input size, running up to
// GOMAXPROCS simulations concurrently.
func NewSuite(size workloads.Size) *Suite {
	return &Suite{
		Size:  size,
		cache: make(map[runKey]*inflight),
		sem:   make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
}

// SetParallelism bounds the number of simulations the suite runs
// concurrently (cmd/sweep's -parallel flag). It must be called before
// the first Run; changing the bound under in-flight runs would leak or
// deadlock semaphore slots, so it panics once anything is cached.
func (s *Suite) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.cache) > 0 {
		panic("harness: SetParallelism after runs have started")
	}
	s.sem = make(chan struct{}, n)
}

func key(app string, arch config.Arch, chips int, a config.AllocConfig) runKey {
	return runKey{app: app, clusters: arch.Clusters, issue: arch.IssueWidth,
		tpc: arch.ThreadsPerCluster, chips: chips, policy: a.Policy, epoch: a.Epoch}
}

// machine resolves the suite's machine for one run: the paper preset
// plus the suite's allocation policy.
func (s *Suite) machine(arch config.Arch, highEnd bool) config.Machine {
	m := config.LowEnd(arch)
	if highEnd {
		m = config.HighEnd(arch)
	}
	m.Alloc = config.AllocConfig{Policy: s.AllocPolicy, Epoch: s.AllocEpoch}
	return m
}

// Run simulates app on arch (low-end: 1 chip; high-end: 4 chips),
// returning a cached result when the same physical configuration was
// already run (FA8 and SMT8 share results by construction).
func (s *Suite) Run(app workloads.Workload, arch config.Arch, highEnd bool) (*core.Result, error) {
	return s.RunContext(context.Background(), app, arch, highEnd)
}

// canceled reports whether err is a cancellation rather than a real
// simulation failure. Cancellations are never cached: the canceling
// caller's entry is removed so the next identical request re-runs.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, core.ErrInterrupted)
}

// RunContext is Run with caller cancellation: when ctx is done, the
// in-flight simulation aborts promptly (core.Simulator.Interrupt) and
// RunContext returns ctx's error. A canceled run is removed from the
// cache rather than cached, so it cannot poison later identical
// requests; waiters that were sharing the canceled run retry and one of
// them becomes the new owner. Real simulation errors are still cached
// like results (a failing configuration simulates once, not once per
// figure that includes it).
func (s *Suite) RunContext(ctx context.Context, app workloads.Workload, arch config.Arch, highEnd bool) (*core.Result, error) {
	m := s.machine(arch, highEnd)
	k := key(app.Name, arch, m.Chips, m.Alloc.Normalize())

	for {
		s.mu.Lock()
		fl, ok := s.cache[k]
		if ok {
			s.mu.Unlock()
			// Another caller owns (or already finished) this run; wait
			// for it without holding a semaphore slot.
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("harness: %s on %s: %w", app.Name, m.Name, ctx.Err())
			}
			if fl.err != nil && canceled(fl.err) {
				// The owner was canceled (and removed the entry before
				// closing done); this caller is still live, so retry —
				// it may become the new owner.
				continue
			}
			return fl.res, fl.err
		}
		fl = &inflight{done: make(chan struct{})}
		s.cache[k] = fl
		s.mu.Unlock()

		fl.res, fl.err = s.runShared(ctx, app, arch, highEnd, m)
		if fl.err != nil && canceled(fl.err) {
			s.mu.Lock()
			delete(s.cache, k)
			s.mu.Unlock()
		}
		close(fl.done)
		return fl.res, fl.err
	}
}

// runShared is the owner half of RunContext's singleflight: it gives
// the Remote hook first claim on the run — ahead of the semaphore, so
// remote-served runs never hold a local simulation slot — and falls
// back to the local path when the hook declines.
func (s *Suite) runShared(ctx context.Context, app workloads.Workload, arch config.Arch, highEnd bool, m config.Machine) (*core.Result, error) {
	if s.Remote != nil {
		res, handled, err := s.Remote(ctx, app.Name, arch, highEnd)
		if handled {
			if err != nil {
				return nil, fmt.Errorf("harness: %s on %s: %w", app.Name, m.Name, err)
			}
			return res, nil
		}
	}
	return s.runOwned(ctx, app, m)
}

// runOwned acquires a semaphore slot and simulates; it is the owner
// half of RunContext's singleflight.
func (s *Suite) runOwned(ctx context.Context, app workloads.Workload, m config.Machine) (*core.Result, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, fmt.Errorf("harness: %s on %s: %w", app.Name, m.Name, ctx.Err())
	}
	defer func() { <-s.sem }()
	return s.simulate(ctx, app, m)
}

// simulate performs one uncached simulation, starting from a shared
// warmed checkpoint when warm-up sharing is enabled and applicable
// (see warmup.go) and from cycle zero otherwise.
func (s *Suite) simulate(ctx context.Context, app workloads.Workload, m config.Machine) (*core.Result, error) {
	p := app.Build(m.Threads(), m.Chips, s.Size)
	var sim *core.Simulator
	var warmed bool
	var err error
	pol := m.Alloc.Normalize().Policy
	if pol == "" {
		// Warmed checkpoints are shared across runs with identical
		// machine hashes under the seed placement; a non-static policy
		// changes placement (and thus warm-up) itself, so those runs
		// always start cold.
		sim, warmed, err = s.warmStart(ctx, m, p)
		if err != nil {
			return nil, fmt.Errorf("harness: %s on %s: %w", app.Name, m.Name, err)
		}
	}
	if sim == nil {
		sim, err = core.New(m, p)
		if err != nil {
			return nil, fmt.Errorf("harness: %s on %s: %w", app.Name, m.Name, err)
		}
		if pol == "oracle" {
			if err := s.oracleAssign(ctx, sim, m, app); err != nil {
				return nil, fmt.Errorf("harness: %s on %s: oracle search: %w", app.Name, m.Name, err)
			}
		}
	}
	if s.MaxCycles > 0 {
		sim.MaxCycles = s.MaxCycles
	}
	sim.Parallel = s.Parallel
	sim.Interrupt = ctx.Done()
	if s.MetricsInterval > 0 || s.OnFrame != nil {
		// A forked child already carries the warmed parent's sampler —
		// warm-up frames included, so its ring matches a scratch run's.
		// Re-enabling would reset the sampling phase mid-run; only
		// attach the per-run heartbeat and retain the ring.
		ring := sim.Metrics()
		if !warmed {
			ring = sim.EnableMetrics(s.MetricsInterval, s.MetricsRingCap)
		}
		if ring != nil {
			if s.OnFrame != nil {
				appName, machine := app.Name, m.Name
				sim.OnInterval(func(f obs.Frame) { s.OnFrame(appName, machine, f) })
			}
			s.obsMu.Lock()
			if s.rings == nil {
				s.rings = make(map[string]*obs.Ring)
			}
			s.rings[app.Name+"@"+m.Name] = ring
			s.obsMu.Unlock()
		}
	}
	s.sims.Add(1)
	t0 := time.Now()
	r, err := sim.Run()
	if s.OnSimulate != nil {
		s.OnSimulate(ctx, app.Name, m.Name, m.Chips > 1, time.Since(t0), err)
	}
	if err != nil {
		if errors.Is(err, core.ErrInterrupted) && ctx.Err() != nil {
			// Surface the caller's cancellation (errors.Is-compatible
			// with context.Canceled / DeadlineExceeded) rather than the
			// core-internal interrupt.
			return nil, fmt.Errorf("harness: %s on %s: %w", app.Name, m.Name, ctx.Err())
		}
		return nil, fmt.Errorf("harness: %s on %s: %w", app.Name, m.Name, err)
	}
	s.allocMigrations.Add(int64(r.AllocMigrations))
	s.allocEpochs.Add(int64(r.AllocEpochs))
	return r, nil
}

// Oracle-search budget: each candidate static assignment is profiled
// for this many cycles, and the canonical enumeration is capped at
// this many candidates (core.SearchStatic).
const (
	oraclePrefixCycles  = 20_000
	oracleMaxCandidates = 64
)

// oracleAssign replaces sim's seed placement with the best static
// assignment found by profiling every canonical assignment of the same
// workload for a short prefix under the static policy
// (core.SearchStatic). The throwaway search runs are sequential and
// abort with ctx.
func (s *Suite) oracleAssign(ctx context.Context, sim *core.Simulator, m config.Machine, app workloads.Workload) error {
	sm := m
	sm.Alloc = config.AllocConfig{}
	mk := func() (*core.Simulator, error) {
		probe, err := core.New(sm, app.Build(sm.Threads(), sm.Chips, s.Size))
		if err != nil {
			return nil, err
		}
		probe.Interrupt = ctx.Done()
		return probe, nil
	}
	best, _, err := core.SearchStatic(mk, oraclePrefixCycles, oracleMaxCandidates)
	if err != nil {
		return err
	}
	return sim.SetAssignment(best)
}

// Simulations returns how many simulations this suite actually ran on
// this host (scratch runs and forked-child runs both count; cache
// hits, singleflight shares, and remote-served runs do not). It is the
// counter the fabric's federated-cache tests and /healthz use to prove
// "zero simulations ran" on a fully cached resubmission.
func (s *Suite) Simulations() int64 { return s.sims.Load() }

// AllocMigrations returns the total number of thread migrations the
// allocation subsystem performed across every simulation this suite
// ran locally (always zero under the static policy).
func (s *Suite) AllocMigrations() int64 { return s.allocMigrations.Load() }

// AllocEpochs returns the total number of allocation epoch boundaries
// evaluated across every simulation this suite ran locally.
func (s *Suite) AllocEpochs() int64 { return s.allocEpochs.Load() }

// Metrics returns the retained frame ring for the given simulated run
// ("app@machine", as listed by MetricsRuns), or nil. Note that cached
// runs simulate once: FA8 and SMT8 share one physical configuration
// and hence one ring.
func (s *Suite) Metrics(run string) *obs.Ring {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	return s.rings[run]
}

// MetricsRuns lists the runs with retained metrics, sorted.
func (s *Suite) MetricsRuns() []string {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	runs := make([]string, 0, len(s.rings))
	for k := range s.rings {
		runs = append(runs, k)
	}
	sort.Strings(runs)
	return runs
}

// WriteMetricsCSV exports one run's frames ("app@machine") as CSV.
func (s *Suite) WriteMetricsCSV(w io.Writer, run string) error {
	ring := s.Metrics(run)
	if ring == nil {
		return fmt.Errorf("harness: no metrics retained for %q", run)
	}
	return ring.WriteCSV(w)
}

// WriteMetricsJSON exports one run's frames ("app@machine") as JSON.
func (s *Suite) WriteMetricsJSON(w io.Writer, run string) error {
	ring := s.Metrics(run)
	if ring == nil {
		return fmt.Errorf("harness: no metrics retained for %q", run)
	}
	return ring.WriteJSON(w)
}

// RunMatrix runs every (app × arch) pair concurrently and returns the
// results indexed [app][arch.Name].
func (s *Suite) RunMatrix(apps []workloads.Workload, archs []config.Arch, highEnd bool) (map[string]map[string]*core.Result, error) {
	return s.RunMatrixContext(context.Background(), apps, archs, highEnd)
}

// RunMatrixContext is RunMatrix with caller cancellation: once ctx is
// done, in-flight simulations abort promptly and the matrix returns the
// cancellation error. It is safe for concurrent callers — overlapping
// matrices share cached runs through the singleflight.
func (s *Suite) RunMatrixContext(ctx context.Context, apps []workloads.Workload, archs []config.Arch, highEnd bool) (map[string]map[string]*core.Result, error) {
	type item struct {
		app  workloads.Workload
		arch config.Arch
	}
	var items []item
	for _, a := range apps {
		for _, ar := range archs {
			items = append(items, item{a, ar})
		}
	}
	out := make(map[string]map[string]*core.Result)
	for _, a := range apps {
		out[a.Name] = make(map[string]*core.Result)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, it := range items {
		wg.Add(1)
		go func(it item) {
			defer wg.Done()
			r, err := s.RunContext(ctx, it.app, it.arch, highEnd)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			out[it.app.Name][it.arch.Name] = r
		}(it)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// Row is one bar of a figure: an (app, arch) cell.
type Row struct {
	App        string
	Arch       string
	Cycles     int64
	Normalized float64 // execution time relative to the figure baseline
	Breakdown  [stats.NumCategories]float64
}

// Figure is one of the paper's execution-time charts in tabular form.
type Figure struct {
	Title    string
	Baseline string // arch name each app's bars are normalized to
	Apps     []string
	Archs    []string
	Rows     []Row // len(Apps) × len(Archs), app-major
}

// Get returns the row for (app, arch); it panics on unknown names
// (figures are built internally with fixed sets).
func (f *Figure) Get(app, arch string) Row {
	for _, r := range f.Rows {
		if r.App == app && r.Arch == arch {
			return r
		}
	}
	panic(fmt.Sprintf("harness: figure %q has no row (%s, %s)", f.Title, app, arch))
}

// Best returns the architecture with the fewest cycles for app.
func (f *Figure) Best(app string) string {
	best, bestCycles := "", int64(0)
	for _, r := range f.Rows {
		if r.App != app {
			continue
		}
		if best == "" || r.Cycles < bestCycles {
			best, bestCycles = r.Arch, r.Cycles
		}
	}
	return best
}

// BestFA returns the best fixed-assignment architecture for app
// (excludes SMT rows).
func (f *Figure) BestFA(app string) string {
	best, bestCycles := "", int64(0)
	for _, r := range f.Rows {
		if r.App != app || !strings.HasPrefix(r.Arch, "FA") {
			continue
		}
		if best == "" || r.Cycles < bestCycles {
			best, bestCycles = r.Arch, r.Cycles
		}
	}
	return best
}

// Render formats the figure the way the paper's charts read: one block
// per application, one line per architecture with the normalized
// execution time and the slot breakdown.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (execution time normalized to %s = 100)\n", f.Title, f.Baseline)
	cats := stats.AllCategories()
	fmt.Fprintf(&b, "%-8s %-5s %6s %9s ", "app", "arch", "norm", "cycles")
	for _, c := range cats {
		fmt.Fprintf(&b, "%7s", c)
	}
	b.WriteString("\n")
	for _, app := range f.Apps {
		for _, arch := range f.Archs {
			r := f.Get(app, arch)
			fmt.Fprintf(&b, "%-8s %-5s %6.0f %9d ", r.App, r.Arch, r.Normalized, r.Cycles)
			for _, c := range cats {
				fmt.Fprintf(&b, "%6.1f%%", 100*r.Breakdown[c])
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// buildFigure assembles a Figure from a result matrix.
func buildFigure(title string, apps []workloads.Workload, archs []config.Arch,
	res map[string]map[string]*core.Result) *Figure {
	f := &Figure{Title: title, Baseline: archs[0].Name}
	for _, a := range apps {
		f.Apps = append(f.Apps, a.Name)
	}
	for _, ar := range archs {
		f.Archs = append(f.Archs, ar.Name)
	}
	for _, a := range apps {
		base := res[a.Name][archs[0].Name]
		for _, ar := range archs {
			r := res[a.Name][ar.Name]
			row := Row{
				App:        a.Name,
				Arch:       ar.Name,
				Cycles:     r.Cycles,
				Normalized: 100 * float64(r.Cycles) / float64(base.Cycles),
			}
			row.Breakdown = r.Slots.Fractions()
			f.Rows = append(f.Rows, row)
		}
	}
	return f
}

// Figure4 reproduces Figure 4: FA processors vs the clustered SMT2 on
// the low-end machine.
func (s *Suite) Figure4() (*Figure, error) { return s.Figure4Context(context.Background()) }

// Figure4Context is Figure4 with caller cancellation.
func (s *Suite) Figure4Context(ctx context.Context) (*Figure, error) {
	apps := workloads.All()
	res, err := s.RunMatrixContext(ctx, apps, FAFigureArchs, false)
	if err != nil {
		return nil, err
	}
	return buildFigure("Figure 4: FA vs clustered SMT, low-end machine", apps, FAFigureArchs, res), nil
}

// Figure5 reproduces Figure 5: the same comparison on the 4-chip
// high-end machine.
func (s *Suite) Figure5() (*Figure, error) { return s.Figure5Context(context.Background()) }

// Figure5Context is Figure5 with caller cancellation.
func (s *Suite) Figure5Context(ctx context.Context) (*Figure, error) {
	apps := workloads.All()
	res, err := s.RunMatrixContext(ctx, apps, FAFigureArchs, true)
	if err != nil {
		return nil, err
	}
	return buildFigure("Figure 5: FA vs clustered SMT, high-end machine", apps, FAFigureArchs, res), nil
}

// Figure7 reproduces Figure 7: clustered vs centralized SMTs, low-end.
func (s *Suite) Figure7() (*Figure, error) { return s.Figure7Context(context.Background()) }

// Figure7Context is Figure7 with caller cancellation.
func (s *Suite) Figure7Context(ctx context.Context) (*Figure, error) {
	apps := workloads.All()
	res, err := s.RunMatrixContext(ctx, apps, SMTFigureArchs, false)
	if err != nil {
		return nil, err
	}
	return buildFigure("Figure 7: clustered vs centralized SMT, low-end machine", apps, SMTFigureArchs, res), nil
}

// Figure8 reproduces Figure 8: clustered vs centralized SMTs, high-end.
func (s *Suite) Figure8() (*Figure, error) { return s.Figure8Context(context.Background()) }

// Figure8Context is Figure8 with caller cancellation.
func (s *Suite) Figure8Context(ctx context.Context) (*Figure, error) {
	apps := workloads.All()
	res, err := s.RunMatrixContext(ctx, apps, SMTFigureArchs, true)
	if err != nil {
		return nil, err
	}
	return buildFigure("Figure 8: clustered vs centralized SMT, high-end machine", apps, SMTFigureArchs, res), nil
}

// FigureByNumber resolves a paper figure (4, 5, 7 or 8) to its
// generator — the serving subsystem's figure endpoint dispatch.
func (s *Suite) FigureByNumber(ctx context.Context, n int) (*Figure, error) {
	switch n {
	case 4:
		return s.Figure4Context(ctx)
	case 5:
		return s.Figure5Context(ctx)
	case 7:
		return s.Figure7Context(ctx)
	case 8:
		return s.Figure8Context(ctx)
	}
	return nil, fmt.Errorf("harness: no figure %d (want 4, 5, 7 or 8)", n)
}

// Placement measures each application's Figure 6 point: thread
// parallelism as the average running threads on FA8 (the architecture
// enabling the most thread parallelism) and per-thread ILP as the
// useful IPC per running thread on FA1 (the architecture enabling the
// most ILP).
func (s *Suite) Placement(highEnd bool) (map[string]model.Point, error) {
	return s.PlacementContext(context.Background(), highEnd)
}

// PlacementContext is Placement with caller cancellation.
func (s *Suite) PlacementContext(ctx context.Context, highEnd bool) (map[string]model.Point, error) {
	apps := workloads.All()
	res, err := s.RunMatrixContext(ctx, apps, []config.Arch{config.FA8, config.FA1}, highEnd)
	if err != nil {
		return nil, err
	}
	chips := 1
	if highEnd {
		chips = config.HighEnd(config.FA8).Chips
	}
	out := make(map[string]model.Point, len(apps))
	for _, a := range apps {
		fa8 := res[a.Name]["FA8"]
		fa1 := res[a.Name]["FA1"]
		ilp := fa1.IPC
		if fa1.AvgRunningThreads > 1 {
			ilp = fa1.IPC / fa1.AvgRunningThreads
		}
		out[a.Name] = model.Point{
			// Per-chip average, so high-end points land on the same
			// 0–8 chart as Figure 6 of the paper.
			Threads: fa8.AvgRunningThreads / float64(chips),
			ILP:     ilp,
		}
	}
	return out, nil
}

// RenderPlacement formats a Figure 6 chart plus the measured points.
func RenderPlacement(points map[string]model.Point, proc model.Proc) string {
	var b strings.Builder
	b.WriteString(model.Chart(proc, points))
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := points[n]
		fmt.Fprintf(&b, "%-8s threads=%.2f ilp=%.2f region(%s)=%s\n",
			n, p.Threads, p.ILP, proc.Name, proc.Classify(p))
	}
	return b.String()
}
