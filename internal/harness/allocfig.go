package harness

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/prog"
	"clustersmt/internal/workloads"
)

// Allocation-figure search budget: every candidate static assignment
// of the mix is profiled for allocSearchPrefix cycles, with the
// canonical enumeration capped at allocSearchCap candidates. The cap
// keeps the high-end rows, whose assignment spaces are huge, bounded;
// enumeration order is deterministic, so the cap never introduces
// run-to-run variance.
const (
	allocSearchPrefix = 20_000
	allocSearchCap    = 64
)

// allocFigEpoch is the rebalance interval the allocation figure uses
// when the caller does not pick one. The figure's multiprogrammed
// mixes finish in a few hundred thousand cycles at test size, so the
// default is much shorter than config.DefaultAllocEpoch — the dynamic
// policies get enough epoch boundaries to react within the run.
const allocFigEpoch = 2000

// AllocPolicies are the allocation figure's columns, in render order:
// the seed placement, the profiled worst static assignment (the
// adversarial baseline), the two feedback policies — started from that
// worst assignment, so the figure measures recovery rather than a
// no-op on an already balanced start — and the profiled best static
// assignment (the oracle upper bound).
var AllocPolicies = []string{"static", "worst", "icount", "symbiosis", "oracle"}

// AllocCell is one (machine, policy) measurement of the allocation
// figure.
type AllocCell struct {
	Policy     string
	Cycles     int64
	Migrations uint64 // accepted thread migrations (dynamic policies)
	Epochs     uint64 // epoch boundaries evaluated
}

// AllocRow is one machine's line: the same multiprogrammed mix run
// under every allocation policy.
type AllocRow struct {
	Machine string
	Jobs    int
	Cells   []AllocCell // len(AllocPolicies), column order
}

// AllocFigure is the dynamic-allocation chart: a multiprogrammed mix
// of independent single-thread jobs on all seven Table 2 presets ×
// both machines, one column per allocation policy.
type AllocFigure struct {
	Title    string
	Policies []string
	Rows     []AllocRow
}

// Get returns the cell for (machine, policy); it panics on unknown
// names (the figure is built internally with fixed sets).
func (f *AllocFigure) Get(machine, policy string) AllocCell {
	for _, r := range f.Rows {
		if r.Machine != machine {
			continue
		}
		for _, c := range r.Cells {
			if c.Policy == policy {
				return c
			}
		}
	}
	panic(fmt.Sprintf("harness: allocation figure has no cell (%s, %s)", machine, policy))
}

// Render formats the figure: one line per machine, cycles to
// completion per policy (lower is better), plus the dynamic policies'
// accepted migration counts.
func (f *AllocFigure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-18s %4s", "machine", "jobs")
	for _, p := range f.Policies {
		fmt.Fprintf(&b, " %10s", p)
	}
	b.WriteString("  migrations\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-18s %4d", r.Machine, r.Jobs)
		var migs []string
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %10d", c.Cycles)
			if c.Migrations > 0 {
				migs = append(migs, fmt.Sprintf("%s:%d", c.Policy, c.Migrations))
			}
		}
		b.WriteString("  ")
		if len(migs) > 0 {
			b.WriteString(strings.Join(migs, " "))
		} else {
			b.WriteString("-")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// allocMix is the heterogeneous job mix the figure multiprograms:
// alternating memory-bound (ocean, swim) and compute/sync-bound (fmm,
// tomcatv) single-thread jobs, so clusters differ in cache pressure
// and jobs finish at different times — the imbalance the feedback
// policies exist to exploit.
var allocMix = []func() workloads.Workload{
	workloads.Ocean, workloads.Fmm, workloads.Swim, workloads.Tomcatv,
}

// allocMixJobs builds the mix for a machine with the given number of
// hardware contexts: half the contexts get a job (minimum two, capped
// at the context count), leaving slack capacity for migration.
func allocMixJobs(contexts int, size workloads.Size) []*prog.Program {
	n := contexts / 2
	if n < 2 {
		n = 2
	}
	if n > contexts {
		n = contexts
	}
	jobs := make([]*prog.Program, n)
	for i := range jobs {
		jobs[i] = allocMix[i%len(allocMix)]().Build(1, 1, size)
	}
	return jobs
}

// AllocationFigure measures the dynamic allocation policies against
// the static bounds on a multiprogrammed mix, across all seven Table 2
// presets on both the low-end and high-end machines. epoch <= 0 uses
// allocFigEpoch; parallel selects the per-chip parallel execution loop
// (results are bit-identical either way). The whole figure is
// deterministic: rendering it twice produces byte-identical output.
func AllocationFigure(ctx context.Context, size workloads.Size, epoch int64, parallel bool) (*AllocFigure, error) {
	if epoch <= 0 {
		epoch = allocFigEpoch
	}
	f := &AllocFigure{
		Title: fmt.Sprintf("Dynamic allocation: multiprogrammed mix, cycles to completion "+
			"(dynamic policies start from the worst static assignment; epoch=%d)", epoch),
		Policies: AllocPolicies,
	}
	var machines []config.Machine
	for _, arch := range config.AllArchs {
		machines = append(machines, config.LowEnd(arch), config.HighEnd(arch))
	}
	// Rows are independent simulations; run them concurrently and
	// assemble in fixed machine order, so the rendered figure is
	// byte-identical regardless of scheduling.
	rows := make([]*AllocRow, len(machines))
	errs := make([]error, len(machines))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, m := range machines {
		wg.Add(1)
		go func(i int, m config.Machine) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = allocRow(ctx, m, size, epoch, parallel)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		f.Rows = append(f.Rows, *rows[i])
	}
	return f, nil
}

// allocRow measures one machine: search the static assignment space
// once for the best/worst bounds, then run the mix under each policy
// column.
func allocRow(ctx context.Context, m config.Machine, size workloads.Size, epoch int64, parallel bool) (*AllocRow, error) {
	jobs := allocMixJobs(m.Threads(), size)
	mk := func() (*core.Simulator, error) {
		sim, err := core.NewMulti(m, jobs)
		if err != nil {
			return nil, err
		}
		sim.Interrupt = ctx.Done()
		return sim, nil
	}
	best, worst, err := core.SearchStatic(mk, allocSearchPrefix, allocSearchCap)
	if err != nil {
		return nil, fmt.Errorf("harness: alloc figure %s: search: %w", m.Name, err)
	}
	row := &AllocRow{Machine: m.Name, Jobs: len(jobs)}
	for _, pol := range AllocPolicies {
		pm := m
		var start []int
		switch pol {
		case "static":
			// Seed placement, no allocator — the reference column.
		case "worst":
			start = worst
		case "oracle":
			start = best
		default:
			pm.Alloc = config.AllocConfig{Policy: pol, Epoch: epoch}
			start = worst
		}
		sim, err := core.NewMulti(pm, jobs)
		if err != nil {
			return nil, fmt.Errorf("harness: alloc figure %s/%s: %w", m.Name, pol, err)
		}
		if start != nil {
			if err := sim.SetAssignment(start); err != nil {
				return nil, fmt.Errorf("harness: alloc figure %s/%s: %w", m.Name, pol, err)
			}
		}
		sim.Parallel = parallel
		sim.Interrupt = ctx.Done()
		r, err := sim.Run()
		if err != nil {
			return nil, fmt.Errorf("harness: alloc figure %s/%s: %w", m.Name, pol, err)
		}
		row.Cells = append(row.Cells, AllocCell{
			Policy:     pol,
			Cycles:     r.Cycles,
			Migrations: r.AllocMigrations,
			Epochs:     r.AllocEpochs,
		})
	}
	return row, nil
}
