package harness

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/core"
	"clustersmt/internal/workloads"
)

// TestRemoteHookServesAndCaches pins the Remote hook contract: a
// handled lookup becomes the run's cached outcome (one hook call per
// physical config, even across aliased archs and concurrent callers),
// a declined lookup falls back to local simulation, and a handled
// error is cached like a local failure.
func TestRemoteHookServesAndCaches(t *testing.T) {
	ocean, err := workloads.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}

	// Reference: what a local run produces.
	ref, err := NewSuite(workloads.SizeTest).Run(ocean, config.SMT2, false)
	if err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	canned := &core.Result{Cycles: 12345}
	s := NewSuite(workloads.SizeTest)
	s.Remote = func(ctx context.Context, app string, arch config.Arch, highEnd bool) (*core.Result, bool, error) {
		calls.Add(1)
		if app != ocean.Name || highEnd {
			t.Errorf("hook saw (%s, highEnd=%v), want (%s, false)", app, highEnd, ocean.Name)
		}
		return canned, true, nil
	}

	const n = 8
	var wg sync.WaitGroup
	results := make([]*core.Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arch := config.FA8
			if i%2 == 1 {
				arch = config.SMT8 // aliases FA8's physical config
			}
			r, err := s.Run(ocean, arch, false)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("remote hook called %d times for one physical config, want 1 (singleflight + aliasing)", got)
	}
	for i, r := range results {
		if r != canned {
			t.Fatalf("caller %d got %+v, want the remote-served result", i, r)
		}
	}
	if s.Simulations() != 0 {
		t.Fatalf("%d local simulations ran despite the remote serving everything", s.Simulations())
	}

	// Declined hook → local fallback, bit-identical to a plain run.
	declined := NewSuite(workloads.SizeTest)
	declined.Remote = func(ctx context.Context, app string, arch config.Arch, highEnd bool) (*core.Result, bool, error) {
		return nil, false, nil
	}
	local, err := declined.Run(ocean, config.SMT2, false)
	if err != nil {
		t.Fatal(err)
	}
	if local.Cycles != ref.Cycles || local.IPC != ref.IPC {
		t.Fatalf("declined-hook fallback differs from a plain run: %d cycles vs %d", local.Cycles, ref.Cycles)
	}
	if declined.Simulations() != 1 {
		t.Fatalf("fallback ran %d simulations, want 1", declined.Simulations())
	}

	// Handled error → cached failure: second call must not re-invoke.
	var failCalls atomic.Int64
	failing := NewSuite(workloads.SizeTest)
	remoteErr := errors.New("fleet exploded")
	failing.Remote = func(ctx context.Context, app string, arch config.Arch, highEnd bool) (*core.Result, bool, error) {
		failCalls.Add(1)
		return nil, true, remoteErr
	}
	for i := 0; i < 2; i++ {
		if _, err := failing.Run(ocean, config.SMT2, false); !errors.Is(err, remoteErr) {
			t.Fatalf("call %d: error %v, want wrapped remote error", i, err)
		}
	}
	if failCalls.Load() != 1 {
		t.Fatalf("failing hook called %d times, want 1 (errors cache like results)", failCalls.Load())
	}
}

// TestRemoteHookCancellation pins that a hook surfacing ctx.Err()
// follows the cancel-retry path: the canceled owner's entry is removed,
// and the next caller re-runs rather than inheriting the cancellation.
func TestRemoteHookCancellation(t *testing.T) {
	ocean, err := workloads.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSuite(workloads.SizeTest)
	handle := false
	s.Remote = func(ctx context.Context, app string, arch config.Arch, highEnd bool) (*core.Result, bool, error) {
		if handle {
			return nil, false, nil // second pass: simulate locally
		}
		return nil, true, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx, ocean, config.SMT2, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled dispatch returned %v, want context.Canceled", err)
	}
	handle = true
	if _, err := s.Run(ocean, config.SMT2, false); err != nil {
		t.Fatalf("post-cancel retry failed: %v (cancellation must not be cached)", err)
	}
}
