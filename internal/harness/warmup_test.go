package harness

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/obs"
	"clustersmt/internal/workloads"
)

// warmupVariants is a small sweep family sharing one warm-up prefix:
// the specs differ only in post-prefix knobs, so a single warmed parent
// per machine serves all of them.
func warmupVariants() []workloads.Workload {
	var ws []workloads.Workload
	for _, spec := range []workloads.SyntheticSpec{
		{ChainLen: 0, IndepOps: 4, Iters: 256, WarmupIters: 1500},
		{ChainLen: 4, IndepOps: 0, Iters: 256, WarmupIters: 1500},
		{ChainLen: 2, IndepOps: 2, Iters: 192, WarmupIters: 1500},
		{ParCap: 2, ChainLen: 2, Iters: 256, WarmupIters: 1500},
	} {
		ws = append(ws, workloads.Synthetic(spec))
	}
	return ws
}

// warmupTestCycles pauses the parent well inside the 1500-iteration
// warm-up chain (same proportions as the core checkpoint tests).
const warmupTestCycles = 1000

// TestWarmupSharingBitIdentical is the harness half of the house gate:
// a suite that forks every variant from one warmed parent must produce
// results — and retained metrics frames — bit-identical to a suite that
// simulates each variant from scratch.
func TestWarmupSharingBitIdentical(t *testing.T) {
	apps := warmupVariants()
	for _, arch := range []config.Arch{config.SMT2, config.FA4} {
		scratch := NewSuite(workloads.SizeTest)
		scratch.MetricsInterval = 256
		warm := NewSuite(workloads.SizeTest)
		warm.MetricsInterval = 256
		warm.WarmupCycles = warmupTestCycles

		want, err := scratch.RunMatrix(apps, []config.Arch{arch}, false)
		if err != nil {
			t.Fatal(err)
		}
		got, err := warm.RunMatrix(apps, []config.Arch{arch}, false)
		if err != nil {
			t.Fatal(err)
		}
		if forks, _ := warm.WarmForks(); forks != int64(len(apps)) {
			t.Fatalf("%s: %d warm forks, want %d (warm-up sharing did not engage)", arch.Name, forks, len(apps))
		}
		for _, app := range apps {
			w, g := want[app.Name][arch.Name], got[app.Name][arch.Name]
			if !reflect.DeepEqual(w, g) {
				t.Errorf("%s on %s: forked result differs from scratch", app.Name, arch.Name)
			}
			run := app.Name + "@" + config.LowEnd(arch).Name
			wr, gr := scratch.Metrics(run), warm.Metrics(run)
			if wr == nil || gr == nil {
				t.Fatalf("%s: missing metrics ring (scratch=%v warm=%v)", run, wr != nil, gr != nil)
			}
			if !reflect.DeepEqual(wr.Frames(), gr.Frames()) {
				t.Errorf("%s: forked metrics frames differ from scratch", run)
			}
		}
	}
}

// memStore is an in-memory SnapshotStore recording traffic.
type memStore struct {
	mu           sync.Mutex
	m            map[string][]byte
	loads, saves int
}

func newMemStore() *memStore { return &memStore{m: make(map[string][]byte)} }

func (s *memStore) LoadSnapshot(_ context.Context, key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	data, ok := s.m[key]
	return data, ok
}

func (s *memStore) SaveSnapshot(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saves++
	s.m[key] = data
}

// TestWarmupSnapshotStore proves warm-up persistence: a second suite
// sharing the first one's store restores the warmed parent instead of
// re-running the warm-up, and still matches scratch results exactly.
func TestWarmupSnapshotStore(t *testing.T) {
	apps := warmupVariants()
	arch := config.SMT2
	store := newMemStore()

	scratch := NewSuite(workloads.SizeTest)
	want, err := scratch.RunMatrix(apps, []config.Arch{arch}, false)
	if err != nil {
		t.Fatal(err)
	}

	first := NewSuite(workloads.SizeTest)
	first.WarmupCycles = warmupTestCycles
	first.Snapshots = store
	if _, err := first.RunMatrix(apps, []config.Arch{arch}, false); err != nil {
		t.Fatal(err)
	}
	if _, restores := first.WarmForks(); restores != 0 {
		t.Fatalf("first suite restored %d parents from an empty store", restores)
	}
	if store.saves != 1 {
		t.Fatalf("first suite saved %d snapshots, want 1 (one warmed parent)", store.saves)
	}

	second := NewSuite(workloads.SizeTest)
	second.WarmupCycles = warmupTestCycles
	second.Snapshots = store
	got, err := second.RunMatrix(apps, []config.Arch{arch}, false)
	if err != nil {
		t.Fatal(err)
	}
	forks, restores := second.WarmForks()
	if restores != 1 || forks != int64(len(apps)) {
		t.Fatalf("second suite: %d restores / %d forks, want 1 / %d", restores, forks, len(apps))
	}
	if store.saves != 1 {
		t.Fatalf("second suite re-saved (saves=%d); a restored parent should not be re-persisted", store.saves)
	}
	for _, app := range apps {
		if !reflect.DeepEqual(want[app.Name][arch.Name], got[app.Name][arch.Name]) {
			t.Errorf("%s: store-restored result differs from scratch", app.Name)
		}
	}
}

// TestWarmupCorruptStoreEntry proves a damaged persisted checkpoint is
// a soft miss: the suite re-runs the warm-up and overwrites the entry.
func TestWarmupCorruptStoreEntry(t *testing.T) {
	apps := warmupVariants()[:2]
	arch := config.SMT2
	store := newMemStore()

	first := NewSuite(workloads.SizeTest)
	first.WarmupCycles = warmupTestCycles
	first.Snapshots = store
	want, err := first.RunMatrix(apps, []config.Arch{arch}, false)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range store.m {
		store.m[k] = v[:len(v)/2] // truncate the checkpoint
	}

	second := NewSuite(workloads.SizeTest)
	second.WarmupCycles = warmupTestCycles
	second.Snapshots = store
	got, err := second.RunMatrix(apps, []config.Arch{arch}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, restores := second.WarmForks(); restores != 0 {
		t.Fatalf("restored %d parents from a truncated entry", restores)
	}
	if store.saves != 2 {
		t.Fatalf("saves=%d, want 2 (the re-run warm-up overwrites the bad entry)", store.saves)
	}
	for _, app := range apps {
		if !reflect.DeepEqual(want[app.Name][arch.Name], got[app.Name][arch.Name]) {
			t.Errorf("%s: result differs after store corruption fallback", app.Name)
		}
	}
}

// TestWarmupFallbacks covers the silent scratch fallbacks: workloads
// with no declared prefix, and a checkpoint cycle the warm-up never
// reaches (the parent finishes or leaves the prefix first).
func TestWarmupFallbacks(t *testing.T) {
	arch := config.SMT2

	t.Run("no-prefix", func(t *testing.T) {
		app := workloads.Synthetic(workloads.SyntheticSpec{ChainLen: 2, Iters: 256})
		scratch := NewSuite(workloads.SizeTest)
		want, err := scratch.Run(app, arch, false)
		if err != nil {
			t.Fatal(err)
		}
		warm := NewSuite(workloads.SizeTest)
		warm.WarmupCycles = warmupTestCycles
		got, err := warm.Run(app, arch, false)
		if err != nil {
			t.Fatal(err)
		}
		if forks, _ := warm.WarmForks(); forks != 0 {
			t.Fatalf("%d warm forks for a prefix-less workload", forks)
		}
		if !reflect.DeepEqual(want, got) {
			t.Error("fallback result differs from scratch")
		}
	})

	t.Run("checkpoint-past-warmup", func(t *testing.T) {
		// A 16-iteration warm-up is long over by cycle 50000; the warmed
		// parent is unusable and every variant runs from scratch.
		app := workloads.Synthetic(workloads.SyntheticSpec{ChainLen: 2, Iters: 256, WarmupIters: 16})
		scratch := NewSuite(workloads.SizeTest)
		want, err := scratch.Run(app, arch, false)
		if err != nil {
			t.Fatal(err)
		}
		warm := NewSuite(workloads.SizeTest)
		warm.WarmupCycles = 50000
		got, err := warm.Run(app, arch, false)
		if err != nil {
			t.Fatal(err)
		}
		if forks, _ := warm.WarmForks(); forks != 0 {
			t.Fatalf("%d warm forks from an expired warm-up", forks)
		}
		if !reflect.DeepEqual(want, got) {
			t.Error("fallback result differs from scratch")
		}
	})
}

// TestWarmupFrameConservation checks the heartbeat stream against the
// retained ring for forked runs: every post-fork frame is delivered
// once, in order, and warm-up frames appear exactly once in the ring.
func TestWarmupFrameConservation(t *testing.T) {
	apps := warmupVariants()[:2]
	arch := config.SMT2

	var mu sync.Mutex
	heartbeat := make(map[string][]obs.Frame)
	warm := NewSuite(workloads.SizeTest)
	warm.MetricsInterval = 256
	warm.MetricsRingCap = 4096
	warm.WarmupCycles = warmupTestCycles
	warm.OnFrame = func(app, machine string, f obs.Frame) {
		mu.Lock()
		heartbeat[app+"@"+machine] = append(heartbeat[app+"@"+machine], f)
		mu.Unlock()
	}
	if _, err := warm.RunMatrix(apps, []config.Arch{arch}, false); err != nil {
		t.Fatal(err)
	}
	for _, run := range warm.MetricsRuns() {
		frames := warm.Metrics(run).Frames()
		hb := heartbeat[run]
		if len(hb) == 0 || len(hb) >= len(frames) {
			t.Fatalf("%s: %d heartbeat frames vs %d retained; want a proper non-empty suffix (warm-up frames retained but not re-delivered)", run, len(hb), len(frames))
		}
		if !reflect.DeepEqual(frames[len(frames)-len(hb):], hb) {
			t.Errorf("%s: heartbeat frames are not the ring's tail", run)
		}
	}
}
