package coherence

import (
	"testing"
	"testing/quick"

	"clustersmt/internal/config"
	"clustersmt/internal/memsys"
)

func newSys(t *testing.T, chips int) *System {
	t.Helper()
	cfg := config.DefaultMem()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewSystem(chips, cfg)
}

func TestSingleChipLoadPath(t *testing.T) {
	s := newSys(t, 1)
	// Cold load: TLB miss + local memory.
	ready, cls, ok := s.Load(0, 0, 0x10000)
	if !ok {
		t.Fatal("load rejected")
	}
	if cls != LocalMem {
		t.Fatalf("class = %v, want local memory", cls)
	}
	minLat := int64(s.Cfg.TLBMissPenalty + s.Cfg.LocalMemLatency)
	if ready < minLat {
		t.Fatalf("ready = %d, want >= %d", ready, minLat)
	}
	// Warm load: L1 hit.
	now := ready + 100
	ready2, cls2, _ := s.Load(now, 0, 0x10000)
	if cls2 != L1Hit {
		t.Fatalf("second class = %v", cls2)
	}
	if ready2 != now+int64(s.Cfg.L1Latency) {
		t.Fatalf("L1 hit ready = %d", ready2)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	s := newSys(t, 1)
	base := int64(0x10000)
	s.Load(0, 0, base)
	// Evict from L1 only (L1 64KB 2-way, 512 sets; same set stride = 512*64).
	stride := int64(512 * 64)
	s.Load(1000, 0, base+stride)
	s.Load(2000, 0, base+2*stride)
	// base may or may not be evicted depending on LRU; force by touching
	// the other two again.
	s.Load(3000, 0, base+stride)
	s.Load(4000, 0, base+2*stride)
	_, cls, _ := s.Load(5000, 0, base)
	if cls != L2Hit && cls != L1Hit {
		t.Fatalf("class = %v, want a cache hit", cls)
	}
}

func TestMSHRMergeClass(t *testing.T) {
	s := newSys(t, 1)
	r1, _, _ := s.Load(0, 0, 0x20000)
	r2, cls, ok := s.Load(1, 0, 0x20008) // same 64B line
	if !ok || cls != MSHRMerge {
		t.Fatalf("merge class = %v ok=%v", cls, ok)
	}
	if r2 < 1 || r2 > r1 {
		t.Fatalf("merge ready = %d, primary = %d", r2, r1)
	}
}

func TestMSHRExhaustionRejectsLoad(t *testing.T) {
	cfg := config.DefaultMem()
	cfg.MSHRs = 2
	s := NewSystem(1, cfg)
	s.Load(0, 0, 0x10000)
	s.Load(0, 0, 0x20000)
	_, _, ok := s.Load(0, 0, 0x30000)
	if ok {
		t.Fatal("third miss should be rejected")
	}
	if s.Stats.LoadRetries != 1 {
		t.Fatalf("retries = %d", s.Stats.LoadRetries)
	}
	// After fills complete the next load must be accepted.
	if _, _, ok := s.Load(10_000, 0, 0x30000); !ok {
		t.Fatal("load after drain rejected")
	}
}

func TestRemoteMemoryClass(t *testing.T) {
	s := newSys(t, 4)
	// Page-interleaved homes: page 1 is homed on chip 1.
	addr := int64(s.Cfg.PageBytes) // page 1
	if h := s.Dir.Home(addr); h != 1 {
		t.Fatalf("home = %d, want 1", h)
	}
	_, cls, _ := s.Load(0, 0, addr)
	if cls != RemoteMem {
		t.Fatalf("class = %v, want remote memory", cls)
	}
	// Page 0 is homed on chip 0: remote for chip 1.
	if _, cls2, _ := s.Load(1000, 1, int64(0)); cls2 != RemoteMem {
		t.Fatalf("page-0 class for chip 1 = %v, want remote memory", cls2)
	}
	// Page 5 is homed on chip 1: local for chip 1.
	if _, cls3, _ := s.Load(2000, 1, addr+int64(s.Cfg.PageBytes)*4); cls3 != LocalMem {
		t.Fatalf("page-5 class for chip 1 = %v, want local memory", cls3)
	}
}

func TestDirtyRemoteInterventionAndDowngrade(t *testing.T) {
	s := newSys(t, 2)
	addr := int64(0x40000)
	line := s.Chips[0].Line(addr)

	// Chip 0 writes the line: fetch exclusive, Modified on chip 0.
	s.Store(0, 0, addr)
	if st := s.Chips[0].State(line); st != memsys.Modified {
		t.Fatalf("chip0 state = %v", st)
	}
	_, owner := s.Dir.Sharers(line)
	if owner != 0 {
		t.Fatalf("owner = %d, want 0", owner)
	}

	// Chip 1 reads: 3-hop RemoteL2, chip 0 downgraded, both sharers.
	_, cls, _ := s.Load(100, 1, addr)
	if cls != RemoteL2 {
		t.Fatalf("class = %v, want remote L2", cls)
	}
	if st := s.Chips[0].State(line); st != memsys.Shared {
		t.Fatalf("chip0 after downgrade = %v", st)
	}
	mask, owner := s.Dir.Sharers(line)
	if owner != -1 || mask != 0b11 {
		t.Fatalf("dir after read: mask=%b owner=%d", mask, owner)
	}
	if s.Dir.Downgrades != 1 || s.Dir.ThreeHops != 1 {
		t.Fatalf("dir stats: %+v", s.Dir)
	}
}

func TestStoreUpgradeInvalidatesSharers(t *testing.T) {
	s := newSys(t, 2)
	addr := int64(0x50000)
	line := s.Chips[0].Line(addr)
	s.Load(0, 0, addr)
	s.Load(0, 1, addr)
	mask, _ := s.Dir.Sharers(line)
	if mask != 0b11 {
		t.Fatalf("sharers = %b", mask)
	}
	// Chip 1 stores: chip 0's copy must die.
	s.Store(100, 1, addr)
	if st := s.Chips[0].State(line); st != memsys.Invalid {
		t.Fatalf("chip0 state after remote store = %v", st)
	}
	if st := s.Chips[1].State(line); st != memsys.Modified {
		t.Fatalf("chip1 state = %v", st)
	}
	mask, owner := s.Dir.Sharers(line)
	if mask != 0b10 || owner != 1 {
		t.Fatalf("dir: mask=%b owner=%d", mask, owner)
	}
	if s.Dir.Invalidations == 0 {
		t.Fatal("no invalidations recorded")
	}
}

func TestStoreToOwnModifiedLineIsCheap(t *testing.T) {
	s := newSys(t, 1)
	s.Store(0, 0, 0x60000)
	before := s.Stats.StoreHits
	s.Store(10, 0, 0x60000)
	if s.Stats.StoreHits != before+1 {
		t.Fatal("second store should hit Modified")
	}
}

func TestExclusiveFetchFromDirtyRemote(t *testing.T) {
	s := newSys(t, 2)
	addr := int64(0x70000)
	line := s.Chips[0].Line(addr)
	s.Store(0, 0, addr)  // chip 0 owns dirty
	s.Store(50, 1, addr) // chip 1 steals exclusively
	if st := s.Chips[0].State(line); st != memsys.Invalid {
		t.Fatalf("chip0 = %v, want Invalid", st)
	}
	mask, owner := s.Dir.Sharers(line)
	if owner != 1 || mask != 0b10 {
		t.Fatalf("dir: mask=%b owner=%d", mask, owner)
	}
}

func TestAccessClassStringsAndStats(t *testing.T) {
	for c := AccessClass(0); c < NumAccessClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d: empty string", c)
		}
	}
	s := newSys(t, 1)
	s.Load(0, 0, 0)
	if s.Stats.Loads != 1 {
		t.Fatal("load not counted")
	}
}

// Property: the directory never records an owner that is also absent
// from the sharer mask, and single-owner exclusivity always holds after
// an arbitrary load/store interleaving.
func TestDirectoryInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSystem(4, config.DefaultMem())
		now := int64(0)
		for _, op := range ops {
			chip := int(op) % 4
			addr := int64(op%32) * 64
			now += 3
			if op%2 == 0 {
				s.Load(now, chip, addr)
			} else {
				s.Store(now, chip, addr)
			}
			line := s.Chips[chip].Line(addr)
			mask, owner := s.Dir.Sharers(line)
			if owner >= 0 {
				if mask&(1<<uint(owner)) == 0 {
					return false // owner not in sharer set
				}
				if mask != 1<<uint(owner) {
					return false // dirty line with extra sharers
				}
				if s.Chips[owner].State(line) != memsys.Modified {
					return false
				}
				// Everyone else must not hold the line.
				for c := 0; c < 4; c++ {
					if c != owner && s.Chips[c].State(line) != memsys.Invalid {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: loads always return a ready cycle at or after the request.
func TestLoadLatencyMonotone(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewSystem(2, config.DefaultMem())
		now := int64(0)
		for _, op := range ops {
			now += int64(op % 5)
			ready, _, ok := s.Load(now, int(op)%2, int64(op)*8)
			if ok && ready < now {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	cfg := config.DefaultMem()
	cfg.L2SizeKB = 4 // 16 sets: tiny, to force evictions
	cfg.L1SizeKB = 4
	s := NewSystem(2, cfg)
	setStride := int64(16 * 64)
	// Dirty a line on chip 0, then evict it with conflicting fills.
	s.Store(0, 0, 0)
	for i := int64(1); i <= 4; i++ {
		s.Load(int64(i)*100, 0, i*setStride)
	}
	if s.Dir.Writebacks == 0 {
		t.Fatal("dirty eviction produced no writeback")
	}
	// The directory must no longer consider chip 0 the owner.
	if _, owner := s.Dir.Sharers(0); owner == 0 {
		t.Fatal("evicted owner still registered")
	}
}

func TestDirectoryDropSharerCleansUp(t *testing.T) {
	s := newSys(t, 2)
	s.Load(0, 0, 0x1000)
	before := s.Dir.Lines()
	s.Dir.DropSharer(0, s.Chips[0].Line(0x1000))
	if s.Dir.Lines() != before-1 {
		t.Fatalf("empty entry not reclaimed: %d -> %d", before, s.Dir.Lines())
	}
	// Dropping an untracked line is a no-op.
	s.Dir.DropSharer(1, 0x999000)
}

func TestLoadLatencyClassesOrdered(t *testing.T) {
	// Average observed latency must respect the Table 3 ordering:
	// L1 < L2 < local memory < remote memory on a mixed workload.
	s := newSys(t, 4)
	now := int64(0)
	for i := int64(0); i < 4000; i++ {
		addr := (i % 600) * 64 // re-references produce hits
		now += 4
		s.Load(now, int(i)%4, addr)
	}
	avg := func(c AccessClass) float64 {
		if s.Stats.ByClass[c] == 0 {
			return -1
		}
		return float64(s.Stats.LatencyByClass[c]) / float64(s.Stats.ByClass[c])
	}
	l1, local, remote := avg(L1Hit), avg(LocalMem), avg(RemoteMem)
	if l1 < 0 || local < 0 || remote < 0 {
		t.Fatalf("missing classes: l1=%v local=%v remote=%v (counts %v)", l1, local, remote, s.Stats.ByClass)
	}
	if !(l1 < local && local < remote) {
		t.Errorf("latency ordering violated: L1=%.1f local=%.1f remote=%.1f", l1, local, remote)
	}
}

func TestTLBMissPenaltyApplied(t *testing.T) {
	cfg := config.DefaultMem()
	cfg.TLBMissPenalty = 100
	s := NewSystem(1, cfg)
	ready, _, _ := s.Load(0, 0, 0)
	if ready < 100 {
		t.Fatalf("cold load ready=%d ignores the TLB penalty", ready)
	}
	// Same page, warm TLB: no penalty.
	ready2, _, _ := s.Load(1000, 0, 8)
	if ready2 >= 1100 {
		t.Fatalf("warm-TLB load charged a penalty: %d", ready2)
	}
}

// Property (directory representation differential): random
// interleavings of entry installs (a chip starts caching a line) and
// DropSharer evictions drive the reference map-of-pointers and the
// open-addressed inline table through identical states: same Lines()
// count, same sharer mask and owner for every touched line, same
// Writebacks — including the delete-when-empty reclamation.
func TestDirectoryMapTableDifferential(t *testing.T) {
	f := func(ops []uint16) bool {
		ref := NewDirectory(4, 4096)
		ref.ref = true
		tab := NewDirectory(4, 4096)
		touched := map[int64]bool{}
		for _, op := range ops {
			chip := int(op>>2) % 4
			line := int64(op%128) * 64
			touched[line] = true
			if op%3 != 0 {
				// Install: chip begins caching line; odd ops take
				// dirty ownership like an exclusive fetch.
				for _, d := range []*Directory{ref, tab} {
					e := d.entry(line)
					e.sharers |= 1 << uint(chip)
					if op%2 == 1 {
						e.sharers = 1 << uint(chip)
						e.owner = int8(chip)
					}
				}
			} else {
				ref.DropSharer(chip, line)
				tab.DropSharer(chip, line)
			}
			if ref.Lines() != tab.Lines() || ref.Writebacks != tab.Writebacks {
				return false
			}
		}
		for line := range touched {
			m1, o1 := ref.Sharers(line)
			m2, o2 := tab.Sharers(line)
			if m1 != m2 || o1 != o2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDirectoryTableGrowth drives the table through enough distinct
// lines to force several rehashes (growth and tombstone reclamation)
// and checks every entry survives with its state intact.
func TestDirectoryTableGrowth(t *testing.T) {
	d := NewDirectory(4, 4096)
	const n = 4096
	for i := int64(0); i < n; i++ {
		e := d.entry(i * 64)
		e.sharers = 1 << uint(i%4)
	}
	if d.Lines() != n {
		t.Fatalf("lines = %d, want %d", d.Lines(), n)
	}
	// Drop every other line (tombstones), then re-add new lines to
	// force reclamation rehashes.
	for i := int64(0); i < n; i += 2 {
		d.DropSharer(int(i%4), i*64)
	}
	if d.Lines() != n/2 {
		t.Fatalf("lines after drops = %d, want %d", d.Lines(), n/2)
	}
	for i := int64(n); i < n+n/2; i++ {
		d.entry(i * 64).sharers = 1
	}
	for i := int64(1); i < n; i += 2 {
		if mask, _ := d.Sharers(i * 64); mask != 1<<uint(i%4) {
			t.Fatalf("line %d: mask = %b", i*64, mask)
		}
	}
	if d.Lines() != n/2+n/2 {
		t.Fatalf("lines after re-adds = %d", d.Lines())
	}
}
