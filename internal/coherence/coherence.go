// Package coherence implements the machine-wide shared-memory timing
// model: every chip's hierarchy (package memsys) glued together by a
// DASH-like bit-vector directory (Fig. 3) over the interconnect. It is
// a latency/contention model with MSI states — protocol transients
// (races between simultaneous misses) are resolved instantly in
// simulator order, which is the appropriate fidelity for reproducing
// the paper's cycle counts, not a protocol-verification artifact.
package coherence

import (
	"fmt"

	"clustersmt/internal/config"
	"clustersmt/internal/interconnect"
	"clustersmt/internal/memsys"
)

// AccessClass classifies where a load was satisfied (Table 3 rows).
type AccessClass uint8

// Access classes, in increasing typical latency.
const (
	L1Hit AccessClass = iota
	MSHRMerge
	L2Hit
	LocalMem
	RemoteMem
	RemoteL2
	NumAccessClasses
)

func (a AccessClass) String() string {
	switch a {
	case L1Hit:
		return "L1 hit"
	case MSHRMerge:
		return "MSHR merge"
	case L2Hit:
		return "L2 hit"
	case LocalMem:
		return "local memory"
	case RemoteMem:
		return "remote memory"
	case RemoteL2:
		return "remote L2"
	}
	return fmt.Sprintf("AccessClass(%d)", uint8(a))
}

const noOwner = -1

type dirEntry struct {
	sharers uint32 // bit per chip
	owner   int8   // chip holding Modified, or noOwner
}

// Directory is the full-map bit-vector directory. Lines are homed by
// page interleaving across chips.
type Directory struct {
	nchips    int
	pageBytes int64
	entries   map[int64]*dirEntry

	Invalidations uint64 // remote copies invalidated by exclusive fetches
	Downgrades    uint64 // remote Modified copies demoted by read fetches
	Writebacks    uint64 // dirty evictions returned to memory
	ThreeHops     uint64 // dirty-remote interventions
}

// NewDirectory returns an empty directory for n chips.
func NewDirectory(nchips int, pageBytes int64) *Directory {
	if nchips <= 0 || nchips > 32 {
		panic(fmt.Sprintf("coherence: unsupported chip count %d", nchips))
	}
	return &Directory{nchips: nchips, pageBytes: pageBytes, entries: make(map[int64]*dirEntry)}
}

// Home returns the home chip of a line (page-interleaved, Fig. 3: each
// node owns a portion of global memory and its directory slice).
func (d *Directory) Home(line int64) int {
	return int((line / d.pageBytes) % int64(d.nchips))
}

func (d *Directory) entry(line int64) *dirEntry {
	e := d.entries[line]
	if e == nil {
		e = &dirEntry{owner: noOwner}
		d.entries[line] = e
	}
	return e
}

// DropSharer records that chip no longer caches line (eviction). If the
// chip owned the line dirty, the eviction is a writeback.
func (d *Directory) DropSharer(chip int, line int64) {
	e := d.entries[line]
	if e == nil {
		return
	}
	e.sharers &^= 1 << uint(chip)
	if int(e.owner) == chip {
		e.owner = noOwner
		d.Writebacks++
	}
	if e.sharers == 0 && e.owner == noOwner {
		delete(d.entries, line)
	}
}

// Sharers returns the sharer set and owner of a line (testing aid).
func (d *Directory) Sharers(line int64) (mask uint32, owner int) {
	e := d.entries[line]
	if e == nil {
		return 0, noOwner
	}
	return e.sharers, int(e.owner)
}

// Lines returns the number of tracked lines (testing aid).
func (d *Directory) Lines() int { return len(d.entries) }

// Stats aggregates machine-wide memory statistics.
type Stats struct {
	Loads       uint64
	Stores      uint64
	LoadRetries uint64 // loads refused because the MSHR file was full
	ByClass     [NumAccessClasses]uint64
	// LatencyByClass accumulates (ready - request) cycles per class,
	// so LatencyByClass[c]/ByClass[c] is the observed average latency
	// including all queuing effects.
	LatencyByClass [NumAccessClasses]uint64
	StoreHits      uint64 // stores finding the line already Modified
	StoreUpgrade   uint64 // stores upgrading Shared -> Modified
	StoreMisses    uint64 // stores fetching the line exclusively
	TLBMisses      uint64
}

// System is the machine-wide memory model the pipeline talks to.
type System struct {
	Cfg   config.MemConfig
	Chips []*memsys.Chip
	Dir   *Directory
	Net   *interconnect.Network
	Stats Stats
}

// NewSystem builds the memory system for nchips identical chips.
func NewSystem(nchips int, cfg config.MemConfig) *System {
	chips := make([]*memsys.Chip, nchips)
	for i := range chips {
		chips[i] = memsys.NewChip(i, cfg)
	}
	return &System{
		Cfg:   cfg,
		Chips: chips,
		Dir:   NewDirectory(nchips, int64(cfg.PageBytes)),
		Net:   interconnect.New(nchips, cfg.NetOccupancy),
	}
}

func (s *System) lineBytes() int64 { return int64(s.Cfg.LineBytes) }

// translate applies the TLB; it returns the earliest cycle the access
// can proceed (after any miss penalty).
func (s *System) translate(now int64, c *memsys.Chip, addr int64) int64 {
	if !c.TLB.Access(c.Page(addr)) {
		c.TLBMissStalls++
		s.Stats.TLBMisses++
		return now + int64(s.Cfg.TLBMissPenalty)
	}
	return now
}

// Load times a load by chip to addr issued at cycle now. It returns the
// cycle the data is available and the access class. ok=false means the
// MSHR file was full and the load must retry on a later cycle (no state
// was disturbed).
func (s *System) Load(now int64, chip int, addr int64) (ready int64, cls AccessClass, ok bool) {
	c := s.Chips[chip]
	line := c.Line(addr)

	// Refuse early (before disturbing banks/stats) if this would need a
	// new MSHR and none is free.
	if c.L1.Probe(line) == memsys.Invalid {
		if _, merging := c.MSHR.Pending(now, line); !merging && c.MSHR.Free(now) == 0 {
			s.Stats.LoadRetries++
			return 0, 0, false
		}
	}

	s.Stats.Loads++
	t := s.translate(now, c, addr)

	// Merge with an in-flight fill for the same line.
	if fill, merging := c.MSHR.Pending(t, line); merging {
		ready = maxi64(fill, t+int64(s.Cfg.L1Latency))
		s.Stats.ByClass[MSHRMerge]++
		s.Stats.LatencyByClass[MSHRMerge] += uint64(ready - now)
		return ready, MSHRMerge, true
	}

	start := c.L1Banks.Acquire(t, line, s.lineBytes())
	if st := c.L1.Lookup(line); st != memsys.Invalid {
		ready = start + int64(s.Cfg.L1Latency)
		s.Stats.ByClass[L1Hit]++
		s.Stats.LatencyByClass[L1Hit] += uint64(ready - now)
		return ready, L1Hit, true
	}

	// L1 miss: L2 access.
	s2 := c.L2Banks.Acquire(start+int64(s.Cfg.L1Latency), line, s.lineBytes())
	if st := c.L2.Lookup(line); st != memsys.Invalid {
		ready = s2 + int64(s.Cfg.L2Latency)
		c.L1.Insert(line, st)
		c.L1Banks.Extend(line, s.lineBytes(), s.Cfg.FillTime)
		mustAlloc(c.MSHR, s2, line, ready)
		s.Stats.ByClass[L2Hit]++
		s.Stats.LatencyByClass[L2Hit] += uint64(ready - now)
		return ready, L2Hit, true
	}

	// L2 miss: directory fetch, shared.
	ready, cls = s.fetch(chip, line, s2, false)
	s.install(chip, line, memsys.Shared)
	mustAlloc(c.MSHR, s2, line, ready)
	s.Stats.ByClass[cls]++
	s.Stats.LatencyByClass[cls] += uint64(ready - now)
	return ready, cls, true
}

// Store times a store performed at commit. Stores are non-blocking for
// the pipeline (an unbounded store buffer is assumed, documented in
// DESIGN.md); their cost shows up through bank/port occupancy and
// through lines they steal from other chips.
func (s *System) Store(now int64, chip int, addr int64) {
	c := s.Chips[chip]
	line := c.Line(addr)
	s.Stats.Stores++
	t := s.translate(now, c, addr)
	start := c.L1Banks.Acquire(t, line, s.lineBytes())

	switch c.L1.Lookup(line) {
	case memsys.Modified:
		s.Stats.StoreHits++
		return
	case memsys.Shared:
		s.upgrade(chip, line, start)
		c.MarkModified(line)
		s.Stats.StoreUpgrade++
		return
	}

	// L1 miss: try L2.
	s2 := c.L2Banks.Acquire(start+int64(s.Cfg.L1Latency), line, s.lineBytes())
	switch c.L2.Lookup(line) {
	case memsys.Modified:
		c.MarkModified(line) // refills L1
		s.Stats.StoreHits++
		return
	case memsys.Shared:
		s.upgrade(chip, line, s2)
		c.MarkModified(line)
		s.Stats.StoreUpgrade++
		return
	}

	// Full miss: fetch exclusive.
	s.fetch(chip, line, s2, true)
	s.install(chip, line, memsys.Modified)
	s.Stats.StoreMisses++
}

// install places a filled line on chip, handling inclusion victims and
// charging fill occupancy on both levels' banks.
func (s *System) install(chip int, line int64, st memsys.LineState) {
	c := s.Chips[chip]
	res := c.Install(line, st)
	if res.L2Victim.Evicted {
		s.Dir.DropSharer(chip, res.L2Victim.Line)
	}
	c.L1Banks.Extend(line, s.lineBytes(), s.Cfg.FillTime)
	c.L2Banks.Extend(line, s.lineBytes(), s.Cfg.FillTime)
}

// upgrade invalidates every other sharer of a line the chip already
// holds Shared, making the chip the owner.
func (s *System) upgrade(chip int, line int64, now int64) {
	h := s.Dir.Home(line)
	e := s.Dir.entry(line)
	t := s.Net.Transact(now, chip, h)
	for other := 0; other < len(s.Chips); other++ {
		if other == chip || e.sharers&(1<<uint(other)) == 0 {
			continue
		}
		s.Net.Transact(t, h, other)
		s.Chips[other].Invalidate(line)
		s.Dir.Invalidations++
	}
	e.sharers = 1 << uint(chip)
	e.owner = int8(chip)
}

// fetch resolves an L2 miss through the directory, returning the data-
// ready cycle and the Table 3 access class.
func (s *System) fetch(chip int, line int64, now int64, exclusive bool) (int64, AccessClass) {
	h := s.Dir.Home(line)
	e := s.Dir.entry(line)
	start := s.Net.Transact(now, chip, h)

	if e.owner != noOwner && int(e.owner) != chip {
		// Dirty in another chip's hierarchy: 3-hop intervention,
		// Table 3 "remote L2" round trip.
		o := int(e.owner)
		start = s.Net.Transact(start, h, o)
		ready := start + int64(s.Cfg.RemoteL2Lat)
		s.Dir.ThreeHops++
		if exclusive {
			s.Chips[o].Invalidate(line)
			s.Dir.Invalidations++
			e.sharers = 1 << uint(chip)
			e.owner = int8(chip)
		} else {
			s.Chips[o].Downgrade(line)
			s.Dir.Downgrades++
			e.sharers |= 1<<uint(chip) | 1<<uint(o)
			e.owner = noOwner
		}
		return ready, RemoteL2
	}

	// Clean at home (possibly shared elsewhere).
	if exclusive {
		for other := 0; other < len(s.Chips); other++ {
			if other == chip || e.sharers&(1<<uint(other)) == 0 {
				continue
			}
			s.Net.Transact(start, h, other)
			s.Chips[other].Invalidate(line)
			s.Dir.Invalidations++
		}
		e.sharers = 1 << uint(chip)
		e.owner = int8(chip)
	} else {
		e.sharers |= 1 << uint(chip)
		e.owner = noOwner
	}
	if h == chip {
		return start + int64(s.Cfg.LocalMemLatency), LocalMem
	}
	return start + int64(s.Cfg.RemoteMemLat), RemoteMem
}

// CanAcceptLoad reports whether chip could start a new load miss at
// cycle now (issue gating for the pipeline's memory-hazard accounting).
func (s *System) CanAcceptLoad(now int64, chip int) bool {
	return s.Chips[chip].MSHR.Free(now) > 0
}

func mustAlloc(m *memsys.MSHRFile, now, line, ready int64) {
	if !m.TryAlloc(now, line, ready) {
		panic("coherence: MSHR allocation failed after availability check")
	}
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
