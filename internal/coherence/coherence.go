// Package coherence implements the machine-wide shared-memory timing
// model: every chip's hierarchy (package memsys) glued together by a
// DASH-like bit-vector directory (Fig. 3) over the interconnect. It is
// a latency/contention model with MSI states — protocol transients
// (races between simultaneous misses) are resolved instantly in
// simulator order, which is the appropriate fidelity for reproducing
// the paper's cycle counts, not a protocol-verification artifact.
package coherence

import (
	"fmt"

	"clustersmt/internal/config"
	"clustersmt/internal/interconnect"
	"clustersmt/internal/memsys"
)

// AccessClass classifies where a load was satisfied (Table 3 rows).
type AccessClass uint8

// Access classes, in increasing typical latency.
const (
	L1Hit AccessClass = iota
	MSHRMerge
	L2Hit
	LocalMem
	RemoteMem
	RemoteL2
	NumAccessClasses
)

func (a AccessClass) String() string {
	switch a {
	case L1Hit:
		return "L1 hit"
	case MSHRMerge:
		return "MSHR merge"
	case L2Hit:
		return "L2 hit"
	case LocalMem:
		return "local memory"
	case RemoteMem:
		return "remote memory"
	case RemoteL2:
		return "remote L2"
	}
	return fmt.Sprintf("AccessClass(%d)", uint8(a))
}

const noOwner = -1

type dirEntry struct {
	sharers uint32 // bit per chip
	owner   int8   // chip holding Modified, or noOwner
}

// dirSlot states for the open-addressed table.
const (
	slotEmpty uint8 = iota
	slotFull
	slotDead // tombstone: deleted, but probe chains pass through
)

// dirSlot is one inline table entry: the line key, the entry itself
// (no per-line allocation, no pointer chase), and the slot state.
type dirSlot struct {
	line  int64
	e     dirEntry
	state uint8
}

const dirMinSlots = 256

// Directory is the full-map bit-vector directory. Lines are homed by
// page interleaving across chips.
//
// Tracked lines live in an open-addressed linear-probe table with
// inline entries; entries whose sharer set and owner both empty out are
// deleted (tombstoned), so Lines() counts exactly the lines some chip
// caches — the same delete-when-empty semantics the original
// map[int64]*dirEntry had. That map is kept behind the reference flag
// as the differential baseline (see System.SetReferencePaths).
type Directory struct {
	nchips    int
	pageBytes int64

	ref     bool                // use the reference map representation
	entries map[int64]*dirEntry // reference representation

	slots     []dirSlot // fast representation; len is a power of two
	hashShift uint      // 64 - log2(len(slots))
	live      int       // slots in state slotFull
	dead      int       // tombstones awaiting the next rehash

	Invalidations uint64 // remote copies invalidated by exclusive fetches
	Downgrades    uint64 // remote Modified copies demoted by read fetches
	Writebacks    uint64 // dirty evictions returned to memory
	ThreeHops     uint64 // dirty-remote interventions
}

// NewDirectory returns an empty directory for n chips.
func NewDirectory(nchips int, pageBytes int64) *Directory {
	if nchips <= 0 || nchips > 32 {
		panic(fmt.Sprintf("coherence: unsupported chip count %d", nchips))
	}
	d := &Directory{nchips: nchips, pageBytes: pageBytes, entries: make(map[int64]*dirEntry)}
	d.initTable(dirMinSlots)
	return d
}

func (d *Directory) initTable(n int) {
	d.slots = make([]dirSlot, n)
	d.hashShift = 64
	for ; n > 1; n >>= 1 {
		d.hashShift--
	}
	d.live, d.dead = 0, 0
}

// Home returns the home chip of a line (page-interleaved, Fig. 3: each
// node owns a portion of global memory and its directory slice).
func (d *Directory) Home(line int64) int {
	return int((line / d.pageBytes) % int64(d.nchips))
}

// hashIndex spreads line addresses (which share low zero bits and
// cluster by page) over the table with a Fibonacci multiplicative hash.
func (d *Directory) hashIndex(line int64) int {
	return int((uint64(line) * 0x9E3779B97F4A7C15) >> d.hashShift)
}

// find probes for line. found=true gives the slot holding it; otherwise
// idx is where an insertion belongs (the first tombstone crossed, or
// the empty slot ending the chain).
func (d *Directory) find(line int64) (idx int, found bool) {
	mask := len(d.slots) - 1
	i := d.hashIndex(line)
	firstDead := -1
	for {
		s := &d.slots[i]
		switch s.state {
		case slotEmpty:
			if firstDead >= 0 {
				return firstDead, false
			}
			return i, false
		case slotFull:
			if s.line == line {
				return i, true
			}
		case slotDead:
			if firstDead < 0 {
				firstDead = i
			}
		}
		i = (i + 1) & mask
	}
}

// grow rehashes into a table sized for the live population, clearing
// tombstones.
func (d *Directory) grow() {
	old := d.slots
	n := len(old) * 2
	// If the table is mostly tombstones, rehashing at the same size
	// reclaims them without doubling.
	if d.live*4 < len(old) {
		n = len(old)
	}
	d.initTable(n)
	for i := range old {
		if old[i].state != slotFull {
			continue
		}
		idx, _ := d.find(old[i].line)
		d.slots[idx] = old[i]
		d.live++
	}
}

// entry returns the tracked entry for line, creating it if needed.
// The pointer is stable only until the next entry() call (an insertion
// may rehash); callers finish with it before touching another line.
func (d *Directory) entry(line int64) *dirEntry {
	if d.ref {
		e := d.entries[line]
		if e == nil {
			e = &dirEntry{owner: noOwner}
			d.entries[line] = e
		}
		return e
	}
	idx, found := d.find(line)
	if !found {
		if (d.live+d.dead)*4 >= len(d.slots)*3 {
			d.grow()
			idx, _ = d.find(line)
		}
		s := &d.slots[idx]
		if s.state == slotDead {
			d.dead--
		}
		*s = dirSlot{line: line, e: dirEntry{owner: noOwner}, state: slotFull}
		d.live++
		return &s.e
	}
	return &d.slots[idx].e
}

// DropSharer records that chip no longer caches line (eviction). If the
// chip owned the line dirty, the eviction is a writeback.
func (d *Directory) DropSharer(chip int, line int64) {
	if d.ref {
		e := d.entries[line]
		if e == nil {
			return
		}
		e.sharers &^= 1 << uint(chip)
		if int(e.owner) == chip {
			e.owner = noOwner
			d.Writebacks++
		}
		if e.sharers == 0 && e.owner == noOwner {
			delete(d.entries, line)
		}
		return
	}
	idx, found := d.find(line)
	if !found {
		return
	}
	e := &d.slots[idx].e
	e.sharers &^= 1 << uint(chip)
	if int(e.owner) == chip {
		e.owner = noOwner
		d.Writebacks++
	}
	if e.sharers == 0 && e.owner == noOwner {
		d.slots[idx].state = slotDead
		d.live--
		d.dead++
	}
}

// Sharers returns the sharer set and owner of a line (testing aid).
func (d *Directory) Sharers(line int64) (mask uint32, owner int) {
	if d.ref {
		e := d.entries[line]
		if e == nil {
			return 0, noOwner
		}
		return e.sharers, int(e.owner)
	}
	idx, found := d.find(line)
	if !found {
		return 0, noOwner
	}
	e := &d.slots[idx].e
	return e.sharers, int(e.owner)
}

// Lines returns the number of tracked lines (testing aid).
func (d *Directory) Lines() int {
	if d.ref {
		return len(d.entries)
	}
	return d.live
}

// Stats aggregates machine-wide memory statistics.
type Stats struct {
	Loads       uint64
	Stores      uint64
	LoadRetries uint64 // loads refused because the MSHR file was full
	ByClass     [NumAccessClasses]uint64
	// LatencyByClass accumulates (ready - request) cycles per class,
	// so LatencyByClass[c]/ByClass[c] is the observed average latency
	// including all queuing effects.
	LatencyByClass [NumAccessClasses]uint64
	StoreHits      uint64 // stores finding the line already Modified
	StoreUpgrade   uint64 // stores upgrading Shared -> Modified
	StoreMisses    uint64 // stores fetching the line exclusively
	TLBMisses      uint64
}

// System is the machine-wide memory model the pipeline talks to.
type System struct {
	Cfg   config.MemConfig
	Chips []*memsys.Chip
	Dir   *Directory
	Net   *interconnect.Network
	Stats Stats

	// shards, when non-nil, receives each chip's Stats contributions
	// instead of Stats itself, so chips can issue loads concurrently
	// (parallel execution, internal/core). Every field of Stats is an
	// integer sum, so folding the shards back into Stats — FoldShards,
	// called by the coordinator between phases — reproduces the
	// sequential counters exactly regardless of increment order. The
	// directory and network counters are NOT sharded: those paths are
	// only legal from the single-goroutine phases (see noDir).
	shards []Stats

	// noDir, when set, asserts that no access may reach the directory
	// or the interconnect: the parallel phase classifier has promised
	// every load in flight hits local L1/L2 state. fetch and upgrade
	// panic if the promise is broken (defense in depth for the
	// parallel mode's soundness argument; see DESIGN.md §8).
	noDir bool

	// refPaths selects the pre-optimization load path (separate L1
	// probe and lookup walks); set via SetReferencePaths.
	refPaths bool
}

// NewSystem builds the memory system for nchips identical chips.
func NewSystem(nchips int, cfg config.MemConfig) *System {
	chips := make([]*memsys.Chip, nchips)
	for i := range chips {
		chips[i] = memsys.NewChip(i, cfg)
	}
	return &System{
		Cfg:   cfg,
		Chips: chips,
		Dir:   NewDirectory(nchips, int64(cfg.PageBytes)),
		Net:   interconnect.New(nchips, cfg.NetOccupancy),
	}
}

// SetReferencePaths selects (on=true) the pre-optimization reference
// implementations of every per-access structure on the Load/Store
// path: the MSHR map-sweep retirement, the directory's
// map-of-pointers representation, and the probe-then-lookup double
// walk in Load. Results are bit-identical either way (guarded by
// TestMemPathDifferential); the reference exists as the differential
// baseline and escape hatch. Must be called before any traffic.
func (s *System) SetReferencePaths(on bool) {
	s.refPaths = on
	s.Dir.ref = on
	for _, c := range s.Chips {
		c.MSHR.Reference = on
	}
}

// EnableStatShards switches the access-counter paths to per-chip
// shards so chips may call Load concurrently. Call FoldShards from a
// single goroutine to merge the shards back into Stats; Snapshot and
// readers of Stats see exact totals only after a fold.
func (s *System) EnableStatShards() {
	if s.shards == nil {
		s.shards = make([]Stats, len(s.Chips))
	}
}

// FoldShards merges the per-chip stat shards into Stats and zeroes
// them. All fields are integer sums, so the result is bit-identical to
// unsharded counting no matter how increments interleaved.
func (s *System) FoldShards() {
	for i := range s.shards {
		sh := &s.shards[i]
		s.Stats.Loads += sh.Loads
		s.Stats.Stores += sh.Stores
		s.Stats.LoadRetries += sh.LoadRetries
		for c := range sh.ByClass {
			s.Stats.ByClass[c] += sh.ByClass[c]
			s.Stats.LatencyByClass[c] += sh.LatencyByClass[c]
		}
		s.Stats.StoreHits += sh.StoreHits
		s.Stats.StoreUpgrade += sh.StoreUpgrade
		s.Stats.StoreMisses += sh.StoreMisses
		s.Stats.TLBMisses += sh.TLBMisses
		*sh = Stats{}
	}
}

// stats returns the counter sink for accesses by chip: the chip's
// shard when sharding is on, else the machine-wide Stats.
func (s *System) stats(chip int) *Stats {
	if s.shards != nil {
		return &s.shards[chip]
	}
	return &s.Stats
}

// SetNoDir arms (or disarms) the no-directory assertion for the
// current parallel phase.
func (s *System) SetNoDir(on bool) { s.noDir = on }

// LoadMayFetch conservatively reports whether a load by chip to addr
// could miss past the chip's L2 this cycle and therefore reach the
// directory/interconnect. Probe is non-mutating. The check is sound
// for a whole phase, not just this instant, because inclusion (L1⊆L2)
// holds and no concurrent-phase operation ever removes a line from an
// L2: loads that pass this check stay chip-local (see DESIGN.md §8).
func (s *System) LoadMayFetch(chip int, addr int64) bool {
	c := s.Chips[chip]
	return c.L2.Probe(c.Line(addr)) == memsys.Invalid
}

// translate applies the TLB; it returns the earliest cycle the access
// can proceed (after any miss penalty).
func (s *System) translate(now int64, c *memsys.Chip, addr int64) int64 {
	if !c.TLB.Access(c.Page(addr)) {
		c.TLBMissStalls++
		s.stats(c.ID).TLBMisses++
		return now + int64(s.Cfg.TLBMissPenalty)
	}
	return now
}

// Load times a load by chip to addr issued at cycle now. It returns the
// cycle the data is available and the access class. ok=false means the
// MSHR file was full and the load must retry on a later cycle (no state
// was disturbed).
//
// The L1 set is walked once: FindWay answers the early MSHR gate, and
// on a hit TouchHit replays the LRU/stat effects of the lookup the
// reference path performs separately.
func (s *System) Load(now int64, chip int, addr int64) (ready int64, cls AccessClass, ok bool) {
	if s.refPaths {
		return s.loadRef(now, chip, addr)
	}
	c := s.Chips[chip]
	line := c.Line(addr)
	st := s.stats(chip)

	// Refuse early (before disturbing banks/stats) if this would need a
	// new MSHR and none is free.
	wi := c.L1.FindWay(line)
	if wi < 0 {
		if _, merging := c.MSHR.Pending(now, line); !merging && c.MSHR.Free(now) == 0 {
			st.LoadRetries++
			return 0, 0, false
		}
	}

	st.Loads++
	t := s.translate(now, c, addr)

	// Merge with an in-flight fill for the same line.
	if fill, merging := c.MSHR.Pending(t, line); merging {
		ready = max(fill, t+int64(s.Cfg.L1Latency))
		st.ByClass[MSHRMerge]++
		st.LatencyByClass[MSHRMerge] += uint64(ready - now)
		return ready, MSHRMerge, true
	}

	start := c.L1Banks.Acquire(t, line)
	if wi >= 0 {
		c.L1.TouchHit(wi)
		ready = start + int64(s.Cfg.L1Latency)
		st.ByClass[L1Hit]++
		st.LatencyByClass[L1Hit] += uint64(ready - now)
		return ready, L1Hit, true
	}
	c.L1.TouchMiss()

	// L1 miss: L2 access.
	s2 := c.L2Banks.Acquire(start+int64(s.Cfg.L1Latency), line)
	if lst := c.L2.Lookup(line); lst != memsys.Invalid {
		ready = s2 + int64(s.Cfg.L2Latency)
		c.L1.Insert(line, lst)
		c.L1Banks.Extend(line, s.Cfg.FillTime)
		mustAlloc(c.MSHR, s2, line, ready)
		st.ByClass[L2Hit]++
		st.LatencyByClass[L2Hit] += uint64(ready - now)
		return ready, L2Hit, true
	}

	// L2 miss: directory fetch, shared.
	ready, cls = s.fetch(chip, line, s2, false)
	s.install(chip, line, memsys.Shared)
	mustAlloc(c.MSHR, s2, line, ready)
	st.ByClass[cls]++
	st.LatencyByClass[cls] += uint64(ready - now)
	return ready, cls, true
}

// loadRef is the pre-optimization Load: a Probe for the MSHR gate
// followed by a full Lookup — two set walks on the L1-hit path. Kept
// verbatim as the differential baseline.
func (s *System) loadRef(now int64, chip int, addr int64) (ready int64, cls AccessClass, ok bool) {
	c := s.Chips[chip]
	line := c.Line(addr)
	stc := s.stats(chip)

	if c.L1.Probe(line) == memsys.Invalid {
		if _, merging := c.MSHR.Pending(now, line); !merging && c.MSHR.Free(now) == 0 {
			stc.LoadRetries++
			return 0, 0, false
		}
	}

	stc.Loads++
	t := s.translate(now, c, addr)

	if fill, merging := c.MSHR.Pending(t, line); merging {
		ready = max(fill, t+int64(s.Cfg.L1Latency))
		stc.ByClass[MSHRMerge]++
		stc.LatencyByClass[MSHRMerge] += uint64(ready - now)
		return ready, MSHRMerge, true
	}

	start := c.L1Banks.Acquire(t, line)
	if st := c.L1.Lookup(line); st != memsys.Invalid {
		ready = start + int64(s.Cfg.L1Latency)
		stc.ByClass[L1Hit]++
		stc.LatencyByClass[L1Hit] += uint64(ready - now)
		return ready, L1Hit, true
	}

	s2 := c.L2Banks.Acquire(start+int64(s.Cfg.L1Latency), line)
	if st := c.L2.Lookup(line); st != memsys.Invalid {
		ready = s2 + int64(s.Cfg.L2Latency)
		c.L1.Insert(line, st)
		c.L1Banks.Extend(line, s.Cfg.FillTime)
		mustAlloc(c.MSHR, s2, line, ready)
		stc.ByClass[L2Hit]++
		stc.LatencyByClass[L2Hit] += uint64(ready - now)
		return ready, L2Hit, true
	}

	ready, cls = s.fetch(chip, line, s2, false)
	s.install(chip, line, memsys.Shared)
	mustAlloc(c.MSHR, s2, line, ready)
	stc.ByClass[cls]++
	stc.LatencyByClass[cls] += uint64(ready - now)
	return ready, cls, true
}

// Store times a store performed at commit. Stores are non-blocking for
// the pipeline (an unbounded store buffer is assumed, documented in
// DESIGN.md); their cost shows up through bank/port occupancy and
// through lines they steal from other chips.
func (s *System) Store(now int64, chip int, addr int64) {
	c := s.Chips[chip]
	line := c.Line(addr)
	st := s.stats(chip)
	st.Stores++
	t := s.translate(now, c, addr)
	start := c.L1Banks.Acquire(t, line)

	switch c.L1.Lookup(line) {
	case memsys.Modified:
		st.StoreHits++
		return
	case memsys.Shared:
		s.upgrade(chip, line, start)
		c.MarkModified(line)
		st.StoreUpgrade++
		return
	}

	// L1 miss: try L2.
	s2 := c.L2Banks.Acquire(start+int64(s.Cfg.L1Latency), line)
	switch c.L2.Lookup(line) {
	case memsys.Modified:
		c.MarkModified(line) // refills L1
		st.StoreHits++
		return
	case memsys.Shared:
		s.upgrade(chip, line, s2)
		c.MarkModified(line)
		st.StoreUpgrade++
		return
	}

	// Full miss: fetch exclusive.
	s.fetch(chip, line, s2, true)
	s.install(chip, line, memsys.Modified)
	st.StoreMisses++
}

// install places a filled line on chip, handling inclusion victims and
// charging fill occupancy on both levels' banks.
func (s *System) install(chip int, line int64, st memsys.LineState) {
	c := s.Chips[chip]
	res := c.Install(line, st)
	if res.L2Victim.Evicted {
		s.Dir.DropSharer(chip, res.L2Victim.Line)
	}
	c.L1Banks.Extend(line, s.Cfg.FillTime)
	c.L2Banks.Extend(line, s.Cfg.FillTime)
}

// upgrade invalidates every other sharer of a line the chip already
// holds Shared, making the chip the owner.
func (s *System) upgrade(chip int, line int64, now int64) {
	if s.noDir {
		panic(fmt.Sprintf("coherence: chip %d upgrade of line %#x during a no-directory phase", chip, line))
	}
	h := s.Dir.Home(line)
	e := s.Dir.entry(line)
	t := s.Net.Transact(now, chip, h)
	for other := 0; other < len(s.Chips); other++ {
		if other == chip || e.sharers&(1<<uint(other)) == 0 {
			continue
		}
		s.Net.Transact(t, h, other)
		s.Chips[other].Invalidate(line)
		s.Dir.Invalidations++
	}
	e.sharers = 1 << uint(chip)
	e.owner = int8(chip)
}

// fetch resolves an L2 miss through the directory, returning the data-
// ready cycle and the Table 3 access class.
func (s *System) fetch(chip int, line int64, now int64, exclusive bool) (int64, AccessClass) {
	if s.noDir {
		panic(fmt.Sprintf("coherence: chip %d fetch of line %#x during a no-directory phase", chip, line))
	}
	h := s.Dir.Home(line)
	e := s.Dir.entry(line)
	start := s.Net.Transact(now, chip, h)

	if e.owner != noOwner && int(e.owner) != chip {
		// Dirty in another chip's hierarchy: 3-hop intervention,
		// Table 3 "remote L2" round trip.
		o := int(e.owner)
		start = s.Net.Transact(start, h, o)
		ready := start + int64(s.Cfg.RemoteL2Lat)
		s.Dir.ThreeHops++
		if exclusive {
			s.Chips[o].Invalidate(line)
			s.Dir.Invalidations++
			e.sharers = 1 << uint(chip)
			e.owner = int8(chip)
		} else {
			s.Chips[o].Downgrade(line)
			s.Dir.Downgrades++
			e.sharers |= 1<<uint(chip) | 1<<uint(o)
			e.owner = noOwner
		}
		return ready, RemoteL2
	}

	// Clean at home (possibly shared elsewhere).
	if exclusive {
		for other := 0; other < len(s.Chips); other++ {
			if other == chip || e.sharers&(1<<uint(other)) == 0 {
				continue
			}
			s.Net.Transact(start, h, other)
			s.Chips[other].Invalidate(line)
			s.Dir.Invalidations++
		}
		e.sharers = 1 << uint(chip)
		e.owner = int8(chip)
	} else {
		e.sharers |= 1 << uint(chip)
		e.owner = noOwner
	}
	if h == chip {
		return start + int64(s.Cfg.LocalMemLatency), LocalMem
	}
	return start + int64(s.Cfg.RemoteMemLat), RemoteMem
}

// MemSnapshot is a read-only view of the memory system at one cycle:
// cumulative access counters summed over chips plus point-in-time
// occupancy gauges. It exists for the observability sampler, so taking
// one must never mutate timing state (MSHR occupancy uses the
// non-retiring probe; the directory count reads the live population).
type MemSnapshot struct {
	Loads, Stores, LoadRetries         uint64
	L1Hits, L1Misses, L2Hits, L2Misses uint64
	MSHROccupancy                      int // outstanding fills at the snapshot cycle
	DirLines                           int // directory-tracked lines
}

// Snapshot captures the machine-wide memory counters at cycle now.
func (s *System) Snapshot(now int64) MemSnapshot {
	snap := MemSnapshot{
		Loads:       s.Stats.Loads,
		Stores:      s.Stats.Stores,
		LoadRetries: s.Stats.LoadRetries,
		DirLines:    s.Dir.Lines(),
	}
	for _, c := range s.Chips {
		snap.L1Hits += c.L1.Hits
		snap.L1Misses += c.L1.Misses
		snap.L2Hits += c.L2.Hits
		snap.L2Misses += c.L2.Misses
		snap.MSHROccupancy += c.MSHR.Occupancy(now)
	}
	return snap
}

// ChipSnapshot is one chip's slice of a MemSnapshot: the per-chip
// cache counters and MSHR occupancy the allocation subsystem samples
// at epoch boundaries. Like Snapshot it must never mutate timing
// state, and it reads only state owned by (or folded from) this chip,
// so values at a cycle boundary are identical under the sequential and
// per-chip parallel loops.
func (s *System) ChipSnapshot(chip int, now int64) MemSnapshot {
	c := s.Chips[chip]
	return MemSnapshot{
		L1Hits:        c.L1.Hits,
		L1Misses:      c.L1.Misses,
		L2Hits:        c.L2.Hits,
		L2Misses:      c.L2.Misses,
		MSHROccupancy: c.MSHR.Occupancy(now),
	}
}

// CanAcceptLoad reports whether chip could start a new load miss at
// cycle now (issue gating for the pipeline's memory-hazard accounting).
func (s *System) CanAcceptLoad(now int64, chip int) bool {
	return s.Chips[chip].MSHR.Free(now) > 0
}

func mustAlloc(m *memsys.MSHRFile, now, line, ready int64) {
	if !m.TryAlloc(now, line, ready) {
		panic("coherence: MSHR allocation failed after availability check")
	}
}
