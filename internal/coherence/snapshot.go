package coherence

import (
	"fmt"

	"clustersmt/internal/memsys"
	"clustersmt/internal/snap"
)

// ReferencePaths reports whether the system is running the reference
// (pre-optimization) memory paths. Checkpointing refuses them: the
// reference directory representation (map of pointers) has no stable
// encoding, and reference runs exist only as differential baselines.
func (s *System) ReferencePaths() bool { return s.refPaths }

// Fork returns a clone of the memory system: cache tag arrays are
// shared copy-on-write (memsys.Cache.Fork); the directory table,
// network ports, TLBs, MSHRs and bank state are bounded-size and copied
// eagerly. Stat shards are dropped — the parallel runtime re-creates
// them at the next Run and they are always folded (zero) between
// cycles.
func (s *System) Fork() *System {
	cp := *s
	cp.Chips = make([]*memsys.Chip, len(s.Chips))
	for i, c := range s.Chips {
		cp.Chips[i] = c.Fork()
	}
	cp.Dir = s.Dir.Clone()
	cp.Net = s.Net.Clone()
	cp.shards = nil
	return &cp
}

// Clone returns an independent deep copy of the directory's fast
// representation. The reference map must be empty (reference runs are
// not forkable).
func (d *Directory) Clone() *Directory {
	if d.ref || len(d.entries) > 0 {
		panic("coherence: cannot clone a reference-mode directory")
	}
	cp := *d
	cp.entries = make(map[int64]*dirEntry)
	cp.slots = append([]dirSlot(nil), d.slots...)
	return &cp
}

// EncodeSnap writes the directory's open-addressed table raw — slot
// positions, tombstones and all — so probe chains replay exactly, plus
// the protocol counters. Table geometry (hashShift, live, dead) is
// derived from the slots on decode.
func (d *Directory) EncodeSnap(w *snap.Writer) {
	w.Int(len(d.slots))
	for i := range d.slots {
		s := &d.slots[i]
		w.I64(s.line)
		w.U32(s.e.sharers)
		w.U8(uint8(s.e.owner))
		w.U8(s.state)
	}
	w.U64(d.Invalidations)
	w.U64(d.Downgrades)
	w.U64(d.Writebacks)
	w.U64(d.ThreeHops)
}

// DecodeSnap overlays a table produced by EncodeSnap onto a fresh
// directory for the same chip count.
func (d *Directory) DecodeSnap(r *snap.Reader) {
	n := r.Int()
	if n < dirMinSlots || n&(n-1) != 0 || n > r.Remaining() {
		r.Fail(fmt.Errorf("coherence: corrupt directory table size %d", n))
		return
	}
	d.initTable(n)
	for i := range d.slots {
		s := &d.slots[i]
		s.line = r.I64()
		s.e.sharers = r.U32()
		s.e.owner = int8(r.U8())
		s.state = r.U8()
		if r.Err() != nil {
			return
		}
		if s.state > slotDead {
			r.Fail(fmt.Errorf("coherence: invalid directory slot state %d", s.state))
			return
		}
		if s.state == slotFull {
			if d.nchips < 32 && s.e.sharers>>uint(d.nchips) != 0 {
				r.Fail(fmt.Errorf("coherence: sharer mask %#x exceeds %d chips", s.e.sharers, d.nchips))
				return
			}
			if s.e.owner != noOwner && (s.e.owner < 0 || int(s.e.owner) >= d.nchips) {
				r.Fail(fmt.Errorf("coherence: directory owner %d out of range", s.e.owner))
				return
			}
			d.live++
		} else if s.state == slotDead {
			d.dead++
		}
	}
	d.Invalidations = r.U64()
	d.Downgrades = r.U64()
	d.Writebacks = r.U64()
	d.ThreeHops = r.U64()
}

// EncodeSnap writes the machine-wide counter block.
func (st *Stats) EncodeSnap(w *snap.Writer) {
	w.U64(st.Loads)
	w.U64(st.Stores)
	w.U64(st.LoadRetries)
	for _, v := range st.ByClass {
		w.U64(v)
	}
	for _, v := range st.LatencyByClass {
		w.U64(v)
	}
	w.U64(st.StoreHits)
	w.U64(st.StoreUpgrade)
	w.U64(st.StoreMisses)
	w.U64(st.TLBMisses)
}

// DecodeSnap reads the block written by EncodeSnap.
func (st *Stats) DecodeSnap(r *snap.Reader) {
	st.Loads = r.U64()
	st.Stores = r.U64()
	st.LoadRetries = r.U64()
	for i := range st.ByClass {
		st.ByClass[i] = r.U64()
	}
	for i := range st.LatencyByClass {
		st.LatencyByClass[i] = r.U64()
	}
	st.StoreHits = r.U64()
	st.StoreUpgrade = r.U64()
	st.StoreMisses = r.U64()
	st.TLBMisses = r.U64()
}

// EncodeSnap writes every chip hierarchy, the directory, the network
// and the folded machine-wide stats. Stat shards must be folded (they
// always are between cycles); reference paths must be off.
func (s *System) EncodeSnap(w *snap.Writer) {
	for _, c := range s.Chips {
		c.EncodeSnap(w)
	}
	s.Dir.EncodeSnap(w)
	s.Net.EncodeSnap(w)
	s.Stats.EncodeSnap(w)
}

// DecodeSnap overlays a system encoded by EncodeSnap onto a freshly
// built system of the same configuration.
func (s *System) DecodeSnap(r *snap.Reader) {
	for _, c := range s.Chips {
		c.DecodeSnap(r)
	}
	s.Dir.DecodeSnap(r)
	s.Net.DecodeSnap(r)
	s.Stats.DecodeSnap(r)
}
