package core

import (
	"errors"
	"fmt"

	"clustersmt/internal/coherence"
	"clustersmt/internal/config"
	"clustersmt/internal/interp"
	"clustersmt/internal/parallel"
	"clustersmt/internal/prog"
	"clustersmt/internal/stats"
)

// DefaultMaxCycles bounds runaway simulations (livelocked kernels).
const DefaultMaxCycles = 2_000_000_000

// ErrInterrupted is returned (wrapped) by Run when the Interrupt
// channel fires before the simulation completes.
var ErrInterrupted = errors.New("run interrupted")

// interruptPeriod is how many simulated cycles pass between polls of
// the Interrupt channel. Polling is keyed to the cycle count, not loop
// iterations, so a fast-forward jump spanning many periods triggers a
// poll immediately after landing: cancellation latency is bounded by
// max(interruptPeriod, one jump) regardless of how far each iteration
// advances, while the poll stays off the hot path.
const interruptPeriod = 1024

// Simulator executes one program on one machine, cycle by cycle. It is
// strictly deterministic; with Parallel set, chips step concurrently in
// a lockstep that reproduces the sequential results bit-identically
// (parallel.go).
type Simulator struct {
	Machine config.Machine
	Program *prog.Program

	mem      *interp.Memory
	mems     []*interp.Memory
	msys     *coherence.System
	syncs    []*parallel.Sync
	chips    [][]*cluster // [chip][cluster]
	clusters []*cluster   // flattened, iteration order
	threads  []*threadCtx

	cycle     int64
	slots     stats.Slots
	committed uint64

	forwardedLoads uint64
	runningAccum   float64 // Σ over cycles of running-thread count

	// running counts threads neither finished nor blocked on
	// synchronization, maintained incrementally at the block/unblock and
	// halt-drain transitions (it replaces the per-cycle all-threads scan).
	running int
	// finished counts drained threads; done() is finished == len(threads).
	finished int

	// EventDriven enables the quiescence fast-forward: when no cluster
	// can commit, issue, unblock or fetch, Run jumps to the next event
	// cycle, bulk-charging the skipped slot accounting. Results are
	// bit-identical either way (guarded by TestEventDrivenDifferential);
	// turning it off forces plain cycle-by-cycle stepping.
	EventDriven bool

	// EventIssue selects the dependence-driven issue stage (wakeup.go):
	// producer→consumer wakeups through a per-cluster wheel feed a
	// seq-ordered ready list, replacing the per-cycle full-window scan.
	// Results are bit-identical either way (guarded by the scan×wakeup
	// differential matrix); turning it off falls back to the reference
	// scan. Must be set before Run.
	EventIssue bool

	// Parallel runs one goroutine per chip in per-cycle lockstep
	// (parallel.go). Results are bit-identical to the sequential loop
	// (guarded by TestParallelDifferential); the sequential loop remains
	// the reference implementation and the escape hatch, following the
	// same idiom as EventIssue/SetReferenceMemPaths. Requires EventIssue
	// and no instruction tracing. Must be set before Run.
	Parallel bool

	// par is the live parallel runner, non-nil only inside a Parallel
	// Run; cluster stages consult it to route counters to per-chip
	// shards and sync operations through the turn protocol.
	par *parRunner
	// parBCycles counts cycles whose issue/fetch phase ran concurrently
	// on the chip workers (vs the sequential directory fallback) —
	// diagnostics and test vacuousness checks.
	parBCycles int64

	// Fast-forward bookkeeping: per-cluster vote scratch, lock spinners
	// found by the quiescence scan (their per-poll conflict counts are
	// bulk-replayed), clusters whose fetch is pinned on a full window
	// (their per-cycle stall counters and round-robin rotation are
	// bulk-replayed), and the total number of skipped cycles.
	ffVotes    []stats.Votes
	ffRows     [][stats.NumCategories]float64
	ffSpinners []*threadCtx
	ffStalled  []ffStalledCluster
	ffCycles   int64

	// alloc is the dynamic allocation-policy state (nil for static
	// placement — the default — and for the oracle's fixed assignments);
	// migrating lists threads marked for migration and still draining
	// their in-flight window. See alloc.go.
	alloc     *allocState
	migrating []*threadCtx

	// MaxCycles aborts the run when exceeded (safety net).
	MaxCycles int64

	// resumable marks a simulator that may legally (re-)enter the run
	// loop at a non-zero cycle: one paused by RunTo, or one produced by
	// Restore/Fork. A completed run clears it, restoring the original
	// "already run" double-Run guard.
	resumable bool

	// Interrupt, when non-nil, is polled periodically during Run (every
	// interruptPeriod simulated cycles); once it is closed or receives,
	// Run returns ErrInterrupted promptly. It is how callers plumb
	// context cancellation into a run without putting a context on the
	// per-cycle hot path. Must be set before Run.
	Interrupt <-chan struct{}

	tr  *tracer
	obs *sampler
}

// FastForwarded returns the number of cycles covered by quiescence
// skips rather than explicit steps (diagnostics and tests).
func (s *Simulator) FastForwarded() int64 { return s.ffCycles }

// SetICountFetch switches every cluster to the ICOUNT fetch policy
// (fewest in-flight instructions first). Must be called before Run.
func (s *Simulator) SetICountFetch(on bool) {
	for _, cl := range s.clusters {
		cl.icount = on
	}
}

// New builds a simulator for machine m running program p with exactly
// m.Threads() application threads (§4: "we generate as many threads as
// are required by the processor").
func New(m config.Machine, p *prog.Program) (*Simulator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s, err := newShell(m, p, interp.NewMemory(), coherence.NewSystem(m.Chips, m.Mem))
	if err != nil {
		return nil, err
	}
	s.mem.LoadImage(p)
	return s, nil
}

// newShell builds the complete machine structure — clusters, threads,
// sync controller — around the given memory front end and timing memory
// system, WITHOUT loading the program image. New loads the image into a
// fresh memory; the fork and restore paths (snapshot.go) instead attach
// a copy-on-write or decoded memory that already carries the warmed
// store state, which LoadImage would clobber.
func newShell(m config.Machine, p *prog.Program, mem *interp.Memory, msys *coherence.System) (*Simulator, error) {
	s := &Simulator{
		Machine:   m,
		Program:   p,
		mem:       mem,
		msys:      msys,
		MaxCycles: DefaultMaxCycles,
	}
	s.mems = []*interp.Memory{s.mem}
	sync := parallel.NewSync(m.Threads())
	s.syncs = []*parallel.Sync{sync}

	s.chips = make([][]*cluster, m.Chips)
	for chip := 0; chip < m.Chips; chip++ {
		s.chips[chip] = make([]*cluster, m.Arch.Clusters)
		for ci := 0; ci < m.Arch.Clusters; ci++ {
			cl := newCluster(chip, ci, m.Arch)
			s.chips[chip][ci] = cl
			s.clusters = append(s.clusters, cl)
		}
	}
	s.numberClusters()

	// Initial placement: the allocation policy decides (alloc.go); with
	// the default static policy, assign is nil and the seed loop below
	// runs byte-for-byte unchanged. Threads are placed round-robin
	// across chips and then round-robin across the clusters within a
	// chip (standard SPMD placement), so consecutive thread ids land on
	// different chips/clusters and partially-parallel applications
	// spread their active threads over the whole machine.
	assign, err := s.initAlloc(m.Threads())
	if err != nil {
		return nil, err
	}
	for tid := 0; tid < m.Threads(); tid++ {
		var cl *cluster
		if assign != nil {
			cl = s.clusters[assign[tid]]
		} else {
			chip := tid % m.Chips
			local := tid / m.Chips
			ci := local % m.Arch.Clusters
			cl = s.chips[chip][ci]
		}
		t := &threadCtx{
			id:         tid,
			chip:       cl.chip,
			cluster:    cl,
			fn:         interp.NewThread(tid, p, s.mem),
			sync:       sync,
			frontEvent: noEvent,
		}
		cl.threads = append(cl.threads, t)
		s.threads = append(s.threads, t)
	}
	s.running = len(s.threads)
	s.EventDriven = true
	s.EventIssue = true
	return s, nil
}

// numberClusters assigns each cluster its global (chip-major) index —
// the sequential iteration order, which the parallel mode's turn
// protocol and store drain reproduce.
func (s *Simulator) numberClusters() {
	for i, cl := range s.clusters {
		cl.gid = i
	}
}

// SetReferenceMemPaths selects (on=true) the pre-optimization
// reference implementations of the per-access memory-path structures —
// MSHR map-sweep retirement, directory map-of-pointers, and the
// probe-then-lookup double walk on loads. Results are bit-identical
// either way (guarded by TestMemPathDifferential); the reference is
// the differential baseline and the escape hatch. Must be called
// before Run.
func (s *Simulator) SetReferenceMemPaths(on bool) {
	s.msys.SetReferencePaths(on)
}

// Mem exposes the functional memory (post-run inspection in tests).
func (s *Simulator) Mem() *interp.Memory { return s.mem }

// MemSystem exposes the timing memory system (post-run inspection).
func (s *Simulator) MemSystem() *coherence.System { return s.msys }

// done reports whether every thread has halted and drained. finished
// is maintained at the commit halt-drain transition, so this is O(1).
func (s *Simulator) done() bool { return s.finished == len(s.threads) }

// step advances the machine one cycle: commit, then issue (collecting
// hazard votes), then fetch, in classic reverse-pipeline order so a
// result produced this cycle is consumed no earlier than the next. It
// reports whether any cluster made progress (committed, issued,
// resumed or fetched) — the signal that arms the quiescence check.
func (s *Simulator) step() bool {
	now := s.cycle
	active := false
	for _, cl := range s.clusters {
		if cl.commit(s, now) {
			active = true
		}
	}
	if len(s.migrating) > 0 && s.completeMigrations(now) {
		active = true
	}
	var votes stats.Votes
	for _, cl := range s.clusters {
		votes.Reset()
		var issued int
		if s.EventIssue {
			issued = cl.issueEvent(s, now, &votes)
		} else {
			issued = cl.issue(s, now, &votes)
		}
		if issued > 0 {
			active = true
		}
		if cl.unblock(s, now) {
			active = true
		}
		if cl.fetch(s, now, &votes) {
			active = true
		}
		cl.threadVotes(&votes)
		s.slots.RecordCycle(cl.cfg.IssueWidth, issued, &votes)
		cl.slots.RecordCycle(cl.cfg.IssueWidth, issued, &votes)
	}
	s.slots.AdvanceCycle()
	s.runningAccum += float64(s.running)
	s.cycle++
	return active
}

// Run simulates to completion and returns the result. It may be called
// on a fresh simulator, on one paused by RunTo, or on one produced by
// Restore/Fork; a completed simulator cannot be run again.
func (s *Simulator) Run() (*Result, error) {
	return s.run(-1)
}

// RunTo advances the simulation until the cycle counter reaches at
// least target (a fast-forward jump may overshoot it) or the program
// completes, then pauses between cycles. A paused simulator can be
// snapshotted, forked, or continued with Run/RunTo. Done reports which
// way it ended.
func (s *Simulator) RunTo(target int64) error {
	_, err := s.run(target)
	return err
}

// Done reports whether every thread has halted and drained (the run
// completed, as opposed to pausing at a RunTo target).
func (s *Simulator) Done() bool { return s.done() }

// Cycle returns the current cycle counter.
func (s *Simulator) Cycle() int64 { return s.cycle }

// run is the shared run loop: target < 0 simulates to completion and
// returns the result; otherwise it pauses once s.cycle >= target and
// returns (nil, nil) with the simulator left resumable.
func (s *Simulator) run(target int64) (*Result, error) {
	if s.cycle != 0 && !s.resumable {
		return nil, fmt.Errorf("core: simulator already run")
	}
	s.resumable = false
	if s.Parallel {
		if err := s.startParallel(); err != nil {
			return nil, err
		}
		defer s.stopParallel()
	}
	if s.tr != nil {
		// The trace writer is buffered; flush whatever was traced even
		// when the run aborts (MaxCycles), so partial traces are usable.
		defer s.tr.flush()
	}
	// idle gates the quiescence check: a cycle in which nothing happened
	// is the only state worth paying the dry-run scan for. Some idle
	// states are persistently non-quiescent (an MSHR-blocked load, a
	// rename-starved cluster next to a busy one), so failed probes back
	// off exponentially rather than re-scanning every cycle.
	idle := false
	failStreak := 0
	probeAt := int64(0)
	// Interrupt polling is keyed to the cycle count so that a
	// fast-forward jump crossing the next poll boundary is followed by
	// a poll on the very next iteration — one jump, not interruptPeriod
	// jumps, bounds the cancellation latency.
	nextInterruptPoll := s.cycle + interruptPeriod
	for !s.done() {
		if target >= 0 && s.cycle >= target {
			// Pause between cycles. The loop locals (idle, probe backoff)
			// restart cold on resume; at worst the resumed loop steps a few
			// cycles a fast-forward jump would have skipped, which the
			// fast-forward bit-identity contract makes indistinguishable.
			s.resumable = true
			return nil, nil
		}
		if s.cycle >= s.MaxCycles {
			return nil, fmt.Errorf("core: %s: exceeded %d cycles (committed %d instrs); livelock?",
				s.Machine.Name, s.MaxCycles, s.committed)
		}
		if s.Interrupt != nil && s.cycle >= nextInterruptPoll {
			nextInterruptPoll = s.cycle + interruptPeriod
			select {
			case <-s.Interrupt:
				return nil, fmt.Errorf("core: %s: %w at cycle %d", s.Machine.Name, ErrInterrupted, s.cycle)
			default:
			}
		}
		if s.alloc != nil && s.cycle >= s.alloc.nextAt {
			// Epoch boundary: runs between cycles on the coordinator (the
			// workers only ever run inside stepParallel), and the fast-
			// forward clamps its jumps to nextAt, so the policy observes
			// the machine at exactly this cycle under every execution mode.
			s.allocEpoch()
		}
		if idle && s.EventDriven && s.cycle >= probeAt {
			if s.fastForward() {
				idle = false
				failStreak = 0
				continue
			}
			if failStreak < 6 {
				failStreak++
			}
			probeAt = s.cycle + 1<<failStreak
		}
		var progressed bool
		if s.par != nil {
			progressed = s.stepParallel()
		} else {
			progressed = s.step()
		}
		if progressed {
			failStreak = 0
			probeAt = 0
			idle = false
		} else {
			idle = true
		}
		if s.obs != nil && s.cycle >= s.obs.nextAt {
			s.sample()
		}
	}
	if s.obs != nil && s.cycle > s.obs.prevCycle {
		// Partial tail: the run ended between boundaries.
		s.sample()
	}
	return s.result(), nil
}

func (s *Simulator) result() *Result {
	r := &Result{
		Machine:        s.Machine,
		ProgramName:    s.Program.Name,
		Cycles:         s.cycle,
		Slots:          s.slots,
		Committed:      s.committed,
		ForwardedLoads: s.forwardedLoads,
		MemStats:       s.msys.Stats,
		Invalidations:  s.msys.Dir.Invalidations,
		Downgrades:     s.msys.Dir.Downgrades,
		Writebacks:     s.msys.Dir.Writebacks,
		ThreeHops:      s.msys.Dir.ThreeHops,
		NetMessages:    s.msys.Net.Messages,
	}
	for _, sy := range s.syncs {
		r.LockAcquires += sy.LockAcquires
		r.LockConflicts += sy.LockConflicts
		r.BarrierWaits += sy.BarrierWaits
	}
	if s.cycle > 0 {
		r.IPC = float64(s.committed) / float64(s.cycle)
		r.AvgRunningThreads = s.runningAccum / float64(s.cycle)
	}
	if s.alloc != nil {
		r.AllocMigrations = s.alloc.migrations
		r.AllocEpochs = s.alloc.epoch
	}
	for _, cl := range s.clusters {
		r.BranchLookups += cl.bp.Lookups
		r.BranchMispredicts += cl.bp.Mispred
		r.BTBLookups += cl.btb.Lookups
		r.BTBMispredicts += cl.btb.Mispred
		r.RenameStalls += cl.renameStalls
		r.WindowFullStalls += cl.windowFullStalls
	}
	r.PerThreadCommitted = make([]uint64, len(s.threads))
	for i, t := range s.threads {
		r.PerThreadCommitted[i] = t.committed
	}
	for _, cl := range s.clusters {
		cs := cl.slots
		cs.Cycles = s.cycle
		r.PerCluster = append(r.PerCluster, ClusterStats{
			Chip:    cl.chip,
			Cluster: cl.idx,
			Slots:   cs,
			Threads: len(cl.threads),
		})
	}
	return r
}

// Result is the outcome of one simulation.
type Result struct {
	Machine     config.Machine
	ProgramName string

	Cycles    int64
	Slots     stats.Slots
	Committed uint64
	IPC       float64

	// AvgRunningThreads is the time-average of threads neither finished
	// nor blocked on synchronization — the paper's Figure 6 x-axis
	// measurement on FA8.
	AvgRunningThreads float64

	PerThreadCommitted []uint64
	// PerCluster breaks the issue-slot accounting down per cluster —
	// the within-chip view behind the machine-wide Slots.
	PerCluster []ClusterStats

	BranchLookups     uint64
	BranchMispredicts uint64
	BTBLookups        uint64
	BTBMispredicts    uint64
	RenameStalls      uint64
	WindowFullStalls  uint64
	ForwardedLoads    uint64

	MemStats      coherence.Stats
	LockAcquires  uint64
	LockConflicts uint64
	BarrierWaits  uint64
	Invalidations uint64
	Downgrades    uint64
	Writebacks    uint64
	ThreeHops     uint64
	NetMessages   uint64

	// AllocMigrations counts accepted thread migrations and AllocEpochs
	// the allocation-policy epoch boundaries evaluated; both stay zero
	// for static placement and the oracle's fixed assignments.
	AllocMigrations uint64
	AllocEpochs     uint64
}

// ClusterStats is one cluster's share of the issue-slot accounting.
type ClusterStats struct {
	Chip    int
	Cluster int
	Slots   stats.Slots
	Threads int
}

// MispredictRate returns conditional-branch mispredictions per lookup.
func (r *Result) MispredictRate() float64 {
	if r.BranchLookups == 0 {
		return 0
	}
	return float64(r.BranchMispredicts) / float64(r.BranchLookups)
}

// String summarizes the run on one line.
func (r *Result) String() string {
	return fmt.Sprintf("%s %s: %d cycles, %d instrs, IPC %.2f [%s]",
		r.Machine.Name, r.ProgramName, r.Cycles, r.Committed, r.IPC, r.Slots.String())
}
