package core

import (
	"errors"
	"fmt"
	"sort"

	"clustersmt/internal/coherence"
	"clustersmt/internal/config"
	"clustersmt/internal/interp"
	"clustersmt/internal/isa"
	"clustersmt/internal/obs"
	"clustersmt/internal/prog"
	"clustersmt/internal/snap"
	"clustersmt/internal/stats"
)

// This file implements checkpoint/restore and copy-on-write forking.
//
// Snapshot serializes the complete simulator state — clusters (window
// entry graph, wakeup wheel, predictors, per-thread front-end state),
// synchronization controller, sampler ring, functional memory and the
// timing memory system — into a versioned, self-validating binary
// envelope. Restore rebuilds an equivalent simulator from the bytes;
// ForkProgram clones a paused simulator in memory, sharing the interp
// memory pages and cache tag arrays copy-on-write so a warmed parent
// can be forked once per sweep variant at near-zero cost.
//
// The contract is the house one: bit-identity, not approximation.
// Running a restored or forked simulator to completion produces a
// Result (and off-Result memory/coherence counters, and obs frames)
// reflect.DeepEqual to running the original from scratch — guarded by
// TestCheckpointDifferential across every preset × machine ×
// sequential/parallel.
//
// Encoding invariants:
//
//   - Snapshots are taken between cycles (a fresh simulator, one paused
//     by RunTo, or a completed one). Mid-cycle state (parallel runner,
//     undrained store queues) is refused with ErrSnapshotUnsupported.
//   - Pointer-linked window entries are serialized as one per-cluster
//     universe: a deterministic worklist enumeration assigns each
//     reachable entry an index, pointer fields encode as indices
//     (-1 = nil), and decode rebuilds the graph in a single fresh slab.
//     Static instruction words are NOT serialized: entry.d.Instr is
//     re-derived from Program.Code[d.PC], which is what lets a prefix
//     checkpoint restore under a different same-prefix program variant.
//   - Ephemeral positions that do not affect behavior are normalized
//     rather than preserved: fifo/pending head offsets restart at 0,
//     the wakeup wheel's heap is rebuilt by pushing buckets in
//     ascending cycle order (bucket keys are unique, so pop order — the
//     only observable — is unchanged), arenas and free lists restart
//     empty.
//   - Decoding validates everything it reads (counts against remaining
//     bytes, indices against ranges, enums against their bounds) and
//     fails with a typed error instead of panicking; FuzzSnapshotDecode
//     holds it to that.

// SnapshotVersion is the current checkpoint format version. Any change
// to the encoding must bump it; Restore refuses versions it does not
// understand with ErrSnapshotVersion. Version 2 added the dynamic
// allocation sections (per-cluster thread assignment, migration refill
// state, allocator epoch state); version-1 payloads — which could only
// ever hold the static seed placement — still decode.
const SnapshotVersion = 2

// snapshotMinVersion is the oldest payload version Restore accepts.
const snapshotMinVersion = 1

// snapMagic is "CSMT" as a big-endian u32.
const snapMagic = 0x43534d54

// maxSnapshotRingCap bounds the sampler ring capacity a checkpoint may
// declare: the decoder pre-allocates the ring, so the bound is what
// keeps a crafted payload from demanding an arbitrarily large
// allocation. Far above DefaultRingCap; Snapshot refuses larger rings.
const maxSnapshotRingCap = 1 << 16

// Typed snapshot errors, matchable with errors.Is.
var (
	// ErrSnapshotVersion is returned by Restore for a checkpoint whose
	// format version this build does not understand.
	ErrSnapshotVersion = errors.New("core: unsupported snapshot version")
	// ErrSnapshotTruncated is returned when the payload ends before the
	// decoder is done (an alias of the codec's sentinel, re-exported so
	// callers need not import internal/snap).
	ErrSnapshotTruncated = snap.ErrTruncated
	// ErrSnapshotCorrupt is returned for structurally invalid payloads:
	// bad magic, out-of-range indices, impossible counts.
	ErrSnapshotCorrupt = errors.New("core: corrupt snapshot")
	// ErrSnapshotMismatch is returned when a checkpoint is replayed
	// against a different machine configuration or an incompatible
	// program (neither the full fingerprint nor a valid shared prefix
	// matches).
	ErrSnapshotMismatch = errors.New("core: snapshot does not match machine/program")
	// ErrSnapshotUnsupported is returned by Snapshot/Fork for simulator
	// configurations the checkpoint format does not cover.
	ErrSnapshotUnsupported = errors.New("core: simulator not snapshottable")
)

// PCHighWater returns an upper bound on every static PC any thread has
// touched so far (see cluster.pcHighWater). While it stays below
// Program.PrefixLen, the simulator's entire state is a function of the
// shared prefix only, so checkpoints and forks transfer to any program
// with the same PrefixKey.
func (s *Simulator) PCHighWater() int64 {
	var hw int64
	for _, c := range s.clusters {
		if c.pcHighWater > hw {
			hw = c.pcHighWater
		}
	}
	return hw
}

// PrefixValid reports whether the simulator's state is still a function
// of the program's marked shared prefix alone — the condition under
// which ForkProgram accepts a different same-prefix variant and a
// persisted snapshot restores under one.
func (s *Simulator) PrefixValid() bool {
	pl := int64(s.Program.PrefixLen)
	return pl > 0 && s.PCHighWater() < pl
}

// snapshotSupported reports why this simulator cannot be checkpointed
// or forked, or nil. The excluded configurations are all explicitly
// out of scope: multiprogrammed runs (per-job memories and sync
// controllers), reference memory paths (their map-of-pointer directory
// has no stable encoding and exists only as a differential baseline),
// instruction tracing (the trace writer is an open file), and a run
// currently inside the parallel runner (between runs par is nil; the
// Parallel flag itself is a host execution choice and is not state).
func (s *Simulator) snapshotSupported() error {
	if len(s.mems) > 1 {
		return fmt.Errorf("%w: multiprogrammed simulators", ErrSnapshotUnsupported)
	}
	if s.msys.ReferencePaths() {
		return fmt.Errorf("%w: reference memory paths", ErrSnapshotUnsupported)
	}
	if s.tr != nil {
		return fmt.Errorf("%w: instruction tracing active", ErrSnapshotUnsupported)
	}
	if s.par != nil {
		return fmt.Errorf("%w: mid-run parallel state", ErrSnapshotUnsupported)
	}
	for _, c := range s.clusters {
		if len(c.storeQ) != 0 {
			return fmt.Errorf("%w: undrained store queue (mid-cycle state)", ErrSnapshotUnsupported)
		}
	}
	if len(s.migrating) != 0 {
		// A draining migration resolves within the longest in-flight
		// latency; callers pausing at an arbitrary cycle simply step past
		// it. Post-move refill stalls (blockMigrate) snapshot fine.
		return fmt.Errorf("%w: thread migration draining (mid-epoch state)", ErrSnapshotUnsupported)
	}
	if s.obs != nil && s.obs.ring.Cap() > maxSnapshotRingCap {
		return fmt.Errorf("%w: sampler ring capacity %d exceeds %d", ErrSnapshotUnsupported, s.obs.ring.Cap(), maxSnapshotRingCap)
	}
	return nil
}

// Snapshot serializes the full simulator state into a stable,
// versioned binary form. The simulator must be between cycles: fresh,
// paused by RunTo, or completed. The envelope carries the machine's
// canonical hash and the program's fingerprint (plus its prefix key
// when the state is still prefix-only), which Restore checks before
// touching the payload.
func (s *Simulator) Snapshot() ([]byte, error) {
	if err := s.snapshotSupported(); err != nil {
		return nil, err
	}
	w := snap.NewWriter()
	w.U32(snapMagic)
	w.U32(SnapshotVersion)
	mh := s.Machine.Hash()
	w.Bytes8(mh[:])
	fp := s.Program.Fingerprint()
	w.Bytes8(fp[:])
	key, ok := s.Program.PrefixKey()
	w.Bool(ok && s.PrefixValid())
	w.Bytes8(key[:])
	s.encodeCore(w)
	s.mem.EncodeSnap(w)
	s.msys.EncodeSnap(w)
	return w.Bytes(), nil
}

// Restore builds a simulator from a Snapshot payload. The machine must
// hash-match the one the snapshot was taken on; the program must either
// fingerprint-match the original or share its marked prefix while the
// snapshot's state was still prefix-only. On any error the returned
// simulator is nil and nothing else is affected — Restore decodes into
// a freshly built shell, so a bad payload can never leave a live
// simulator partially mutated. The restored simulator is resumable:
// Run/RunTo continue from the checkpointed cycle.
func Restore(m config.Machine, p *prog.Program, data []byte) (*Simulator, error) {
	r := snap.NewReader(data)
	magic, ver := r.U32(), r.U32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: snapshot header: %w", err)
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrSnapshotCorrupt, magic)
	}
	if ver < snapshotMinVersion || ver > SnapshotVersion {
		return nil, fmt.Errorf("%w: payload version %d, this build reads %d through %d", ErrSnapshotVersion, ver, snapshotMinVersion, SnapshotVersion)
	}
	mh := r.Bytes8()
	fp := r.Bytes8()
	prefixOK := r.Bool()
	pk := r.Bytes8()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: snapshot header: %w", err)
	}
	if len(mh) != 32 || len(fp) != 32 || len(pk) != 32 {
		return nil, fmt.Errorf("%w: malformed identity hashes", ErrSnapshotCorrupt)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if want := m.Hash(); string(mh) != string(want[:]) {
		return nil, fmt.Errorf("%w: machine configuration differs", ErrSnapshotMismatch)
	}
	if want := p.Fingerprint(); string(fp) != string(want[:]) {
		key, ok := p.PrefixKey()
		if !prefixOK || !ok || string(pk) != string(key[:]) {
			return nil, fmt.Errorf("%w: program differs and no shared warm-up prefix applies", ErrSnapshotMismatch)
		}
	}
	s, err := newShell(m, p, interp.NewMemory(), coherence.NewSystem(m.Chips, m.Mem))
	if err != nil {
		return nil, err
	}
	if err := s.decodeCore(r, ver); err != nil {
		return nil, err
	}
	s.mem.DecodeSnap(r)
	s.msys.DecodeSnap(r)
	if err := r.Err(); err != nil {
		if errors.Is(err, snap.ErrTruncated) {
			return nil, fmt.Errorf("core: snapshot payload: %w", err)
		}
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, r.Remaining())
	}
	s.resumable = true
	return s, nil
}

// Fork returns an independent copy of a paused simulator running the
// same program. Bulk state — interp memory pages and cache tag arrays —
// is shared copy-on-write with the parent; everything else is copied.
// Both simulators remain fully usable (and resumable) afterwards.
func (s *Simulator) Fork() (*Simulator, error) {
	return s.ForkProgram(s.Program)
}

// ForkProgram clones a paused simulator, rebinding it to program p2:
// the warm-up amortization primitive. p2 must either be (fingerprint-)
// identical to the running program, or share its marked prefix while
// the simulator's state is still prefix-only (PrefixValid) — i.e. the
// machine has so far executed nothing a same-prefix variant would do
// differently. In-flight instructions are re-derived from p2's code at
// their recorded PCs, so the child continues seamlessly into the
// variant's post-prefix code.
func (s *Simulator) ForkProgram(p2 *prog.Program) (*Simulator, error) {
	if err := s.snapshotSupported(); err != nil {
		return nil, err
	}
	if p2 != s.Program && p2.Fingerprint() != s.Program.Fingerprint() {
		k1, ok1 := s.Program.PrefixKey()
		k2, ok2 := p2.PrefixKey()
		if !ok1 || !ok2 || k1 != k2 {
			return nil, fmt.Errorf("%w: programs share no marked prefix", ErrSnapshotMismatch)
		}
		if !s.PrefixValid() {
			return nil, fmt.Errorf("%w: execution ran past the shared prefix (pc high water %d, prefix %d)",
				ErrSnapshotMismatch, s.PCHighWater(), s.Program.PrefixLen)
		}
	}
	w := snap.NewWriter()
	s.encodeCore(w)
	cp, err := newShell(s.Machine, p2, s.mem.Fork(), s.msys.Fork())
	if err != nil {
		return nil, err
	}
	if err := cp.decodeCore(snap.NewReader(w.Bytes()), SnapshotVersion); err != nil {
		// Cannot happen for bytes we just produced; surface rather than
		// hand back a half-decoded simulator.
		return nil, err
	}
	cp.resumable = true
	return cp, nil
}

// ---- core section ----

// encodeCore writes everything except the bulk state (functional
// memory, timing memory system): simulator scalars, the sync
// controller, every cluster (entries, threads, predictors) and the
// sampler. Fork serializes only this section and shares the bulk state
// copy-on-write instead.
func (s *Simulator) encodeCore(w *snap.Writer) {
	w.I64(s.cycle)
	w.U64(s.committed)
	w.U64(s.forwardedLoads)
	w.F64(s.runningAccum)
	w.Int(s.running)
	w.Int(s.finished)
	w.I64(s.ffCycles)
	w.I64(s.parBCycles)
	w.Bool(s.EventDriven)
	w.Bool(s.EventIssue)
	encodeSlots(w, &s.slots)
	s.syncs[0].EncodeSnap(w)
	// v2: the current thread-to-cluster assignment, as each cluster's
	// thread-id list in residence order. Dynamic policies migrate
	// threads, so the freshly built shell's seed placement must be
	// overlaid before the per-cluster sections (which iterate c.threads)
	// can decode.
	tidOf := make(map[*threadCtx]int, len(s.threads))
	for i, t := range s.threads {
		tidOf[t] = i
	}
	for _, c := range s.clusters {
		w.Int(len(c.threads))
		for _, t := range c.threads {
			w.Int(tidOf[t])
		}
	}
	for _, c := range s.clusters {
		c.encodeSnap(w)
	}
	// v2: migration refill state and the allocator's epoch state.
	for _, t := range s.threads {
		w.I64(t.migrateReady)
	}
	if s.alloc == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		a := s.alloc
		w.I64(a.interval)
		w.I64(a.nextAt)
		w.U64(a.epoch)
		w.U64(a.migrations)
		for _, v := range a.prevThreadCommitted {
			w.U64(v)
		}
		for _, v := range a.lastMigrated {
			w.I64(v)
		}
		for i := range a.prevChipMem {
			m := &a.prevChipMem[i]
			w.U64(m.Loads)
			w.U64(m.Stores)
			w.U64(m.LoadRetries)
			w.U64(m.L1Hits)
			w.U64(m.L1Misses)
			w.U64(m.L2Hits)
			w.U64(m.L2Misses)
			w.Int(m.MSHROccupancy)
			w.Int(m.DirLines)
		}
	}
	if s.obs != nil {
		w.Bool(true)
		s.encodeSampler(w)
	} else {
		w.Bool(false)
	}
}

// decodeCore overlays a core section onto a freshly built shell. ver
// is the payload's format version (Restore's header; forks always use
// the current version).
func (s *Simulator) decodeCore(r *snap.Reader, ver uint32) error {
	s.cycle = r.I64()
	s.committed = r.U64()
	s.forwardedLoads = r.U64()
	s.runningAccum = r.F64()
	s.running = r.Int()
	s.finished = r.Int()
	s.ffCycles = r.I64()
	s.parBCycles = r.I64()
	s.EventDriven = r.Bool()
	s.EventIssue = r.Bool()
	decodeSlots(r, &s.slots)
	s.syncs[0].DecodeSnap(r)
	if s.finished < 0 || s.finished > len(s.threads) || s.running < 0 || s.running > len(s.threads) {
		return fmt.Errorf("%w: thread accounting out of range", ErrSnapshotCorrupt)
	}
	if ver >= 2 {
		if err := s.decodeAssignment(r); err != nil {
			return err
		}
	}
	for _, c := range s.clusters {
		if err := c.decodeSnap(r, s.Program, ver); err != nil {
			return err
		}
	}
	if ver >= 2 {
		for _, t := range s.threads {
			t.migrateReady = r.I64()
		}
		hasAlloc := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		if hasAlloc != (s.alloc != nil) {
			return fmt.Errorf("%w: allocator state presence disagrees with machine policy", ErrSnapshotCorrupt)
		}
		if hasAlloc {
			a := s.alloc
			a.interval = r.I64()
			a.nextAt = r.I64()
			a.epoch = r.U64()
			a.migrations = r.U64()
			for i := range a.prevThreadCommitted {
				a.prevThreadCommitted[i] = r.U64()
			}
			for i := range a.lastMigrated {
				a.lastMigrated[i] = r.I64()
			}
			for i := range a.prevChipMem {
				m := &a.prevChipMem[i]
				m.Loads = r.U64()
				m.Stores = r.U64()
				m.LoadRetries = r.U64()
				m.L1Hits = r.U64()
				m.L1Misses = r.U64()
				m.L2Hits = r.U64()
				m.L2Misses = r.U64()
				m.MSHROccupancy = r.Int()
				m.DirLines = r.Int()
			}
			if r.Err() == nil && a.interval <= 0 {
				return fmt.Errorf("%w: allocator epoch interval %d", ErrSnapshotCorrupt, a.interval)
			}
		}
	}
	if r.Bool() {
		if err := s.decodeSampler(r); err != nil {
			return err
		}
	}
	if err := r.Err(); err != nil {
		if errors.Is(err, snap.ErrTruncated) {
			return fmt.Errorf("core: snapshot payload: %w", err)
		}
		return fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	// With thread state fully decoded, enforce the capacity invariant
	// the residence-list pass deferred: live (unfinished) threads never
	// exceed a cluster's hardware contexts.
	for ci, cl := range s.clusters {
		live := 0
		for _, t := range cl.threads {
			if !t.done() {
				live++
			}
		}
		if live > cl.cfg.ThreadsPerCluster {
			return fmt.Errorf("%w: cluster %d holds %d live threads (capacity %d)", ErrSnapshotCorrupt, ci, live, cl.cfg.ThreadsPerCluster)
		}
	}
	return nil
}

// decodeAssignment reads each cluster's thread-id residence list (v2)
// and re-homes the shell's threads to match the encoded placement, so
// the per-cluster sections that follow iterate the same thread order
// the encoder did.
func (s *Simulator) decodeAssignment(r *snap.Reader) error {
	seen := make([]bool, len(s.threads))
	lists := make([][]int, len(s.clusters))
	for ci := range s.clusters {
		n := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		// Residence lists include finished threads, which stay on the
		// cluster that retired them, so a cluster that absorbed
		// migrations can legally list more threads than it has hardware
		// contexts. Only the total is bounded here; the live-thread
		// capacity invariant is checked after per-thread state decodes.
		if n < 0 || n > len(s.threads) {
			return fmt.Errorf("%w: cluster %d residence list holds %d of %d threads", ErrSnapshotCorrupt, ci, n, len(s.threads))
		}
		list := make([]int, n)
		for i := range list {
			tid := r.Int()
			if r.Err() != nil {
				return r.Err()
			}
			if tid < 0 || tid >= len(s.threads) || seen[tid] {
				return fmt.Errorf("%w: thread id %d in cluster %d residence list", ErrSnapshotCorrupt, tid, ci)
			}
			seen[tid] = true
			list[i] = tid
		}
		lists[ci] = list
	}
	for tid, ok := range seen {
		if !ok {
			return fmt.Errorf("%w: residence lists omit thread %d", ErrSnapshotCorrupt, tid)
		}
	}
	for ci, cl := range s.clusters {
		cl.threads = cl.threads[:0]
		for _, tid := range lists[ci] {
			t := s.threads[tid]
			t.cluster = cl
			t.chip = cl.chip
			cl.threads = append(cl.threads, t)
		}
	}
	return nil
}

func encodeSlots(w *snap.Writer, sl *stats.Slots) {
	for _, v := range sl.Counts {
		w.F64(v)
	}
	w.I64(sl.Cycles)
}

func decodeSlots(r *snap.Reader, sl *stats.Slots) {
	for i := range sl.Counts {
		sl.Counts[i] = r.F64()
	}
	sl.Cycles = r.I64()
}

// ---- sampler ----

// encodeSampler writes the metrics configuration, the previous-boundary
// counter snapshot and the frame ring, so a restored run's frames
// continue tiling the cycle axis exactly where the original's left off.
// The OnInterval callback is host state and is not serialized; callers
// re-register after Restore/Fork.
func (s *Simulator) encodeSampler(w *snap.Writer) {
	o := s.obs
	w.I64(o.interval)
	w.I64(o.nextAt)
	w.Int(o.index)
	w.I64(o.prevCycle)
	w.U64(o.prevCommitted)
	w.F64(o.prevRunningAccum)
	for _, v := range o.prevSlots {
		w.F64(v)
	}
	for i := range o.prevCluster {
		for _, v := range o.prevCluster[i] {
			w.F64(v)
		}
	}
	m := &o.prevMem
	w.U64(m.Loads)
	w.U64(m.Stores)
	w.U64(m.LoadRetries)
	w.U64(m.L1Hits)
	w.U64(m.L1Misses)
	w.U64(m.L2Hits)
	w.U64(m.L2Misses)
	w.Int(m.MSHROccupancy)
	w.Int(m.DirLines)
	w.Int(o.ring.Cap())
	o.ring.EncodeSnap(w)
}

func (s *Simulator) decodeSampler(r *snap.Reader) error {
	interval := r.I64()
	if r.Err() != nil {
		return r.Err()
	}
	if interval <= 0 {
		return fmt.Errorf("%w: sampler interval %d", ErrSnapshotCorrupt, interval)
	}
	nextAt := r.I64()
	index := r.Int()
	prevCycle := r.I64()
	prevCommitted := r.U64()
	prevRunningAccum := r.F64()
	var prevSlots [stats.NumCategories]float64
	for i := range prevSlots {
		prevSlots[i] = r.F64()
	}
	ringCap := 0
	o := &sampler{prevCluster: make([][stats.NumCategories]float64, len(s.clusters))}
	for i := range o.prevCluster {
		for j := range o.prevCluster[i] {
			o.prevCluster[i][j] = r.F64()
		}
	}
	m := &o.prevMem
	m.Loads = r.U64()
	m.Stores = r.U64()
	m.LoadRetries = r.U64()
	m.L1Hits = r.U64()
	m.L1Misses = r.U64()
	m.L2Hits = r.U64()
	m.L2Misses = r.U64()
	m.MSHROccupancy = r.Int()
	m.DirLines = r.Int()
	ringCap = r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if ringCap <= 0 || ringCap > maxSnapshotRingCap {
		return fmt.Errorf("%w: sampler ring capacity %d", ErrSnapshotCorrupt, ringCap)
	}
	o.interval = interval
	o.nextAt = nextAt
	o.index = index
	o.prevCycle = prevCycle
	o.prevCommitted = prevCommitted
	o.prevRunningAccum = prevRunningAccum
	o.prevSlots = prevSlots
	o.ring = obs.NewRing(ringCap)
	o.ring.DecodeSnap(r)
	if r.Err() != nil {
		return r.Err()
	}
	s.obs = o
	return nil
}

// ---- cluster section ----

// entryUniverse enumerates every entry reachable from the cluster's
// live structures in a deterministic order and assigns each an index.
// Roots are visited in a fixed order (window, per-thread state, the
// wakeup structures), then the worklist closes over the entries' own
// pointer fields; committed-and-swept entries still referenced as
// producers are therefore included.
func (c *cluster) entryUniverse() ([]*entry, map[*entry]int32) {
	var list []*entry
	idx := make(map[*entry]int32)
	add := func(e *entry) {
		if e == nil {
			return
		}
		if _, ok := idx[e]; ok {
			return
		}
		idx[e] = int32(len(list))
		list = append(list, e)
	}
	for _, e := range c.window {
		add(e)
	}
	for _, t := range c.threads {
		for i := t.fifoHead; i < len(t.fifo); i++ {
			add(t.fifo[i])
		}
		add(t.pendingBranch)
		for _, e := range t.lastWriterInt {
			add(e)
		}
		for _, e := range t.lastWriterFP {
			add(e)
		}
		for _, a := range sortedStoreAddrs(t.lastStore) {
			add(t.lastStore[a])
		}
	}
	for i := c.pendingHead; i < len(c.pending); i++ {
		add(c.pending[i])
	}
	for _, e := range c.ready {
		add(e)
	}
	for _, cy := range sortedWheelCycles(&c.wheel) {
		for _, e := range c.wheel.buckets[cy] {
			add(e)
		}
	}
	for i := 0; i < len(list); i++ {
		e := list[i]
		add(e.producers[0])
		add(e.producers[1])
		add(e.fwdStore)
		add(e.firstCons)
		add(e.consNext[0])
		add(e.consNext[1])
	}
	return list, idx
}

func sortedStoreAddrs(m map[int64]*entry) []int64 {
	if len(m) == 0 {
		return nil
	}
	addrs := make([]int64, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

func sortedWheelCycles(w *wheel) []int64 {
	if len(w.buckets) == 0 {
		return nil
	}
	cycles := make([]int64, 0, len(w.buckets))
	for cy := range w.buckets {
		cycles = append(cycles, cy)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	return cycles
}

// entryRef encodes a possibly-nil entry pointer as its universe index.
func entryRef(w *snap.Writer, idx map[*entry]int32, e *entry) {
	if e == nil {
		w.Int(-1)
		return
	}
	w.Int(int(idx[e]))
}

func (c *cluster) encodeSnap(w *snap.Writer) {
	// Scalars and fixed-size structures first.
	w.U64(c.seq)
	w.Int(c.iqCount)
	w.Int(c.zombies)
	w.Int(c.renameIntFree)
	w.Int(c.renameFPFree)
	for _, us := range [][]int64{c.intUnits, c.ldstUnits, c.fpUnits} {
		for _, v := range us {
			w.I64(v)
		}
	}
	for _, v := range c.minFree {
		w.I64(v)
	}
	w.Int(c.waitMemN)
	w.Int(c.waitDataN)
	w.Bool(c.icount)
	w.Int(c.fetchRR)
	w.I64(int64(c.commitRR))
	encodeSlots(w, &c.slots)
	w.U64(c.renameStalls)
	w.U64(c.fetchGroups)
	w.U64(c.windowFullStalls)
	w.I64(c.pcHighWater)
	for _, v := range c.bp.counters {
		w.U8(v)
	}
	w.U64(c.bp.Lookups)
	w.U64(c.bp.Mispred)
	for _, v := range c.btb.targets {
		w.I64(v)
	}
	for _, v := range c.btb.valid {
		w.Bool(v)
	}
	w.U64(c.btb.Lookups)
	w.U64(c.btb.Mispred)

	// The entry universe.
	list, idx := c.entryUniverse()
	w.Int(len(list))
	for _, e := range list {
		w.U64(e.d.Seq)
		w.I64(e.d.PC)
		w.I64(e.d.Addr)
		w.Bool(e.d.Taken)
		w.I64(e.d.Target)
		ti := 0
		for i, t := range c.threads {
			if t == e.thread {
				ti = i
				break
			}
		}
		w.Int(ti)
		w.U64(e.seq)
		w.U8(uint8(e.state))
		w.I64(e.fetchedAt)
		w.I64(e.eligibleAt)
		w.I64(e.completeAt)
		w.U8(uint8(e.fuCl))
		w.I64(e.lat)
		w.I64(e.occ)
		w.Bool(e.isLoad)
		w.Bool(e.isStore)
		w.Bool(e.isBranch)
		w.Bool(e.mispredicted)
		w.Bool(e.usesIntRename)
		w.Bool(e.usesFPRename)
		w.Bool(e.forwarded)
		w.Bool(e.committed)
		w.U8(uint8(e.memClass))
		w.U8(e.queued)
		w.Bool(e.waitMem)
		entryRef(w, idx, e.producers[0])
		entryRef(w, idx, e.producers[1])
		entryRef(w, idx, e.fwdStore)
		entryRef(w, idx, e.firstCons)
		entryRef(w, idx, e.consNext[0])
		entryRef(w, idx, e.consNext[1])
	}

	// Window (in order; includes committed zombies awaiting the sweep).
	w.Int(len(c.window))
	for _, e := range c.window {
		entryRef(w, idx, e)
	}

	// Per-thread front-end state.
	for _, t := range c.threads {
		w.U8(uint8(t.block))
		w.Bool(t.lockGranted)
		w.Bool(t.barArrived)
		w.U64(t.barTarget)
		w.I64(t.frontEvent)
		w.U64(t.fetched)
		w.U64(t.committed)
		w.Int(t.inWindow)
		entryRef(w, idx, t.pendingBranch)
		for _, e := range t.lastWriterInt {
			entryRef(w, idx, e)
		}
		for _, e := range t.lastWriterFP {
			entryRef(w, idx, e)
		}
		addrs := sortedStoreAddrs(t.lastStore)
		w.Int(len(addrs))
		for _, a := range addrs {
			w.I64(a)
			entryRef(w, idx, t.lastStore[a])
		}
		w.Int(t.fifoLen())
		for i := t.fifoHead; i < len(t.fifo); i++ {
			entryRef(w, idx, t.fifo[i])
		}
		t.fn.EncodeArch(w)
	}

	// Wakeup structures.
	w.Int(len(c.pending) - c.pendingHead)
	for i := c.pendingHead; i < len(c.pending); i++ {
		entryRef(w, idx, c.pending[i])
	}
	w.Int(len(c.ready))
	for _, e := range c.ready {
		entryRef(w, idx, e)
	}
	cycles := sortedWheelCycles(&c.wheel)
	w.Int(len(cycles))
	for _, cy := range cycles {
		b := c.wheel.buckets[cy]
		w.I64(cy)
		w.Int(len(b))
		for _, e := range b {
			entryRef(w, idx, e)
		}
	}
}

// decodeSnap overlays an encoded cluster onto a freshly built one for
// the same configuration, rebuilding the entry graph into a single
// fresh slab. p supplies the static code the entries' instruction
// words are re-derived from.
func (c *cluster) decodeSnap(r *snap.Reader, p *prog.Program, ver uint32) error {
	c.seq = r.U64()
	c.iqCount = r.Int()
	c.zombies = r.Int()
	c.renameIntFree = r.Int()
	c.renameFPFree = r.Int()
	for _, us := range [][]int64{c.intUnits, c.ldstUnits, c.fpUnits} {
		for i := range us {
			us[i] = r.I64()
		}
	}
	for i := range c.minFree {
		c.minFree[i] = r.I64()
	}
	c.waitMemN = r.Int()
	c.waitDataN = r.Int()
	c.icount = r.Bool()
	c.fetchRR = r.Int()
	c.commitRR = int(r.I64())
	decodeSlots(r, &c.slots)
	c.renameStalls = r.U64()
	c.fetchGroups = r.U64()
	c.windowFullStalls = r.U64()
	c.pcHighWater = r.I64()
	for i := range c.bp.counters {
		c.bp.counters[i] = r.U8()
	}
	c.bp.Lookups = r.U64()
	c.bp.Mispred = r.U64()
	for i := range c.btb.targets {
		c.btb.targets[i] = r.I64()
	}
	for i := range c.btb.valid {
		c.btb.valid[i] = r.Bool()
	}
	c.btb.Lookups = r.U64()
	c.btb.Mispred = r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if n := len(c.threads); c.fetchRR < 0 || (n > 0 && c.fetchRR >= n) {
		return fmt.Errorf("%w: fetch round-robin %d out of range", ErrSnapshotCorrupt, c.fetchRR)
	}

	// Entry universe: fields first, then pointer wiring.
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n < 0 || n > r.Remaining() {
		return fmt.Errorf("%w: entry count %d", ErrSnapshotCorrupt, n)
	}
	slab := make([]entry, n)
	refs := make([][6]int, n)
	for i := range slab {
		e := &slab[i]
		e.d.Seq = r.U64()
		e.d.PC = r.I64()
		e.d.Addr = r.I64()
		e.d.Taken = r.Bool()
		e.d.Target = r.I64()
		ti := r.Int()
		e.seq = r.U64()
		state := r.U8()
		e.fetchedAt = r.I64()
		e.eligibleAt = r.I64()
		e.completeAt = r.I64()
		fuCl := r.U8()
		e.lat = r.I64()
		e.occ = r.I64()
		e.isLoad = r.Bool()
		e.isStore = r.Bool()
		e.isBranch = r.Bool()
		e.mispredicted = r.Bool()
		e.usesIntRename = r.Bool()
		e.usesFPRename = r.Bool()
		e.forwarded = r.Bool()
		e.committed = r.Bool()
		memClass := r.U8()
		e.queued = r.U8()
		e.waitMem = r.Bool()
		for k := 0; k < 6; k++ {
			refs[i][k] = r.Int()
		}
		if r.Err() != nil {
			return r.Err()
		}
		if e.d.PC < 0 || e.d.PC >= int64(len(p.Code)) {
			return fmt.Errorf("%w: entry PC %d outside program", ErrSnapshotCorrupt, e.d.PC)
		}
		e.d.Instr = p.Code[e.d.PC]
		if ti < 0 || ti >= len(c.threads) {
			return fmt.Errorf("%w: entry thread index %d", ErrSnapshotCorrupt, ti)
		}
		e.thread = c.threads[ti]
		if state > uint8(stateCompleted) {
			return fmt.Errorf("%w: entry state %d", ErrSnapshotCorrupt, state)
		}
		e.state = entryState(state)
		if fuCl > uint8(isa.ClassFP) {
			return fmt.Errorf("%w: functional-unit class %d", ErrSnapshotCorrupt, fuCl)
		}
		e.fuCl = isa.Class(fuCl)
		if memClass >= uint8(coherence.NumAccessClasses) {
			return fmt.Errorf("%w: memory access class %d", ErrSnapshotCorrupt, memClass)
		}
		e.memClass = coherence.AccessClass(memClass)
		if e.queued > qReady {
			return fmt.Errorf("%w: entry queue state %d", ErrSnapshotCorrupt, e.queued)
		}
	}
	ent := func(i int) (*entry, error) {
		if i == -1 {
			return nil, nil
		}
		if i < 0 || i >= n {
			return nil, fmt.Errorf("%w: entry reference %d of %d", ErrSnapshotCorrupt, i, n)
		}
		return &slab[i], nil
	}
	var err error
	wire := func(dst **entry, i int) {
		if err == nil {
			*dst, err = ent(i)
		}
	}
	for i := range slab {
		e := &slab[i]
		wire(&e.producers[0], refs[i][0])
		wire(&e.producers[1], refs[i][1])
		wire(&e.fwdStore, refs[i][2])
		wire(&e.firstCons, refs[i][3])
		wire(&e.consNext[0], refs[i][4])
		wire(&e.consNext[1], refs[i][5])
	}
	if err != nil {
		return err
	}

	// Window.
	wn := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if wn < 0 || wn > n {
		return fmt.Errorf("%w: window length %d of %d entries", ErrSnapshotCorrupt, wn, n)
	}
	c.window = make([]*entry, wn)
	for i := range c.window {
		e, werr := ent(r.Int())
		if werr != nil {
			return werr
		}
		if e == nil {
			return fmt.Errorf("%w: nil window slot", ErrSnapshotCorrupt)
		}
		c.window[i] = e
	}
	if c.zombies < 0 || c.zombies > wn {
		return fmt.Errorf("%w: zombie count %d of window %d", ErrSnapshotCorrupt, c.zombies, wn)
	}

	// Per-thread front-end state.
	for _, t := range c.threads {
		block := r.U8()
		t.lockGranted = r.Bool()
		t.barArrived = r.Bool()
		t.barTarget = r.U64()
		t.frontEvent = r.I64()
		t.fetched = r.U64()
		t.committed = r.U64()
		t.inWindow = r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		maxBlock := uint8(blockMigrate)
		if ver < 2 {
			// v1 predates migration; its payloads can never hold the state.
			maxBlock = uint8(blockBarrier)
		}
		if block > maxBlock {
			return fmt.Errorf("%w: thread block state %d", ErrSnapshotCorrupt, block)
		}
		t.block = blockReason(block)
		pb, perr := ent(r.Int())
		if perr != nil {
			return perr
		}
		t.pendingBranch = pb
		for i := range t.lastWriterInt {
			if t.lastWriterInt[i], err = ent(r.Int()); err != nil {
				return err
			}
		}
		for i := range t.lastWriterFP {
			if t.lastWriterFP[i], err = ent(r.Int()); err != nil {
				return err
			}
		}
		ls := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if ls < 0 || ls > n {
			return fmt.Errorf("%w: store map size %d", ErrSnapshotCorrupt, ls)
		}
		t.lastStore = nil
		if ls > 0 {
			t.lastStore = make(map[int64]*entry, ls)
			for i := 0; i < ls; i++ {
				a := r.I64()
				e, serr := ent(r.Int())
				if serr != nil {
					return serr
				}
				if e == nil {
					return fmt.Errorf("%w: nil store-map entry", ErrSnapshotCorrupt)
				}
				t.lastStore[a] = e
			}
		}
		fl := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if fl < 0 || fl > n {
			return fmt.Errorf("%w: fifo length %d", ErrSnapshotCorrupt, fl)
		}
		t.fifo = make([]*entry, fl)
		t.fifoHead = 0
		for i := range t.fifo {
			e, ferr := ent(r.Int())
			if ferr != nil {
				return ferr
			}
			if e == nil {
				return fmt.Errorf("%w: nil fifo slot", ErrSnapshotCorrupt)
			}
			t.fifo[i] = e
		}
		t.fn.DecodeArch(r)
		if r.Err() != nil {
			return r.Err()
		}
	}

	// Wakeup structures. The wheel is rebuilt by pushing buckets in
	// ascending cycle order; bucket keys are unique per cycle, so the
	// heap's internal layout is irrelevant to pop order.
	pn := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if pn < 0 || pn > n {
		return fmt.Errorf("%w: pending length %d", ErrSnapshotCorrupt, pn)
	}
	c.pending = make([]*entry, pn)
	c.pendingHead = 0
	for i := range c.pending {
		e, perr := ent(r.Int())
		if perr != nil {
			return perr
		}
		if e == nil {
			return fmt.Errorf("%w: nil pending slot", ErrSnapshotCorrupt)
		}
		c.pending[i] = e
	}
	rn := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if rn < 0 || rn > n {
		return fmt.Errorf("%w: ready length %d", ErrSnapshotCorrupt, rn)
	}
	c.ready = make([]*entry, rn)
	for i := range c.ready {
		e, rerr := ent(r.Int())
		if rerr != nil {
			return rerr
		}
		if e == nil {
			return fmt.Errorf("%w: nil ready slot", ErrSnapshotCorrupt)
		}
		c.ready[i] = e
	}
	bn := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if bn < 0 || bn > r.Remaining() {
		return fmt.Errorf("%w: wheel bucket count %d", ErrSnapshotCorrupt, bn)
	}
	c.wheel = wheel{}
	for i := 0; i < bn; i++ {
		cy := r.I64()
		bl := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if bl <= 0 || bl > n {
			return fmt.Errorf("%w: wheel bucket length %d", ErrSnapshotCorrupt, bl)
		}
		for j := 0; j < bl; j++ {
			e, berr := ent(r.Int())
			if berr != nil {
				return berr
			}
			if e == nil {
				return fmt.Errorf("%w: nil wheel slot", ErrSnapshotCorrupt)
			}
			c.wheel.push(cy, e)
		}
	}
	return r.Err()
}
