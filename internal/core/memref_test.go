package core

import (
	"reflect"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/prog"
	"clustersmt/internal/workloads"
)

// memSideStats collects the memory-path counters that are NOT part of
// Result — the per-chip MSHR and cache stats plus the directory's
// tracked-line count — so the differential covers them too (the
// tentpole contract is that Merges/Rejected/Allocated and every cache
// counter stay exact, not just the Result-visible aggregates).
type memSideStats struct {
	MSHR     [][3]uint64 // per chip: Merges, Rejected, Allocated
	L1, L2   [][4]uint64 // per chip: Hits, Misses, Evictions, WritebackEvictions
	DirLines int
}

// runMemMode runs one (machine, program) pair with either the
// reference or the fast memory-path implementations (event-driven
// cycle loop and issue stage at their defaults) and returns the Result
// plus the side stats.
func runMemMode(t *testing.T, m config.Machine, build func() *prog.Program, reference bool) (*Result, memSideStats) {
	t.Helper()
	s, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	s.SetReferenceMemPaths(reference)
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var side memSideStats
	for _, c := range s.msys.Chips {
		side.MSHR = append(side.MSHR, [3]uint64{c.MSHR.Merges, c.MSHR.Rejected, c.MSHR.Allocated})
		side.L1 = append(side.L1, [4]uint64{c.L1.Hits, c.L1.Misses, c.L1.Evictions, c.L1.WritebackEvictions})
		side.L2 = append(side.L2, [4]uint64{c.L2.Hits, c.L2.Misses, c.L2.Evictions, c.L2.WritebackEvictions})
	}
	side.DirLines = s.msys.Dir.Lines()
	return r, side
}

// TestMemPathDifferential is the contract test for the memory-path
// fast paths (heap-retired MSHRs, open-addressed directory table,
// single-walk L1 access): on every Table 2 preset, low- and high-end,
// over a memory-bound and a sync-bound workload, the fast paths must
// produce a Result that is bit-identical (reflect.DeepEqual — same
// cycles, same float64 slot votes, every memory and directory counter)
// to the reference implementations, and the off-Result MSHR, cache and
// directory counters must match exactly as well.
func TestMemPathDifferential(t *testing.T) {
	apps := []string{"ocean", "fmm"}
	for _, arch := range config.AllArchs {
		for _, app := range apps {
			w, err := workloads.ByName(app)
			if err != nil {
				t.Fatal(err)
			}
			for _, highEnd := range []bool{false, true} {
				m := config.LowEnd(arch)
				if highEnd {
					m = config.HighEnd(arch)
				}
				t.Run(app+"/"+m.Name, func(t *testing.T) {
					build := func() *prog.Program {
						return w.Build(m.Threads(), m.Chips, workloads.SizeTest)
					}
					ref, refSide := runMemMode(t, m, build, true)
					fast, fastSide := runMemMode(t, m, build, false)
					if !reflect.DeepEqual(ref, fast) {
						t.Errorf("fast-path Result differs from reference:\n  ref:  %v\n  fast: %v", ref, fast)
					}
					if !reflect.DeepEqual(refSide, fastSide) {
						t.Errorf("fast-path side stats differ from reference:\n  ref:  %+v\n  fast: %+v", refSide, fastSide)
					}
				})
			}
		}
	}
}
