package core

import (
	"reflect"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/prog"
	"clustersmt/internal/workloads"
)

// runMode runs one (machine, program) pair with the given issue-path
// and cycle-loop selections, returning the result and the number of
// cycles the quiescence fast-forward skipped.
func runMode(t *testing.T, m config.Machine, build func() *prog.Program, eventIssue, fastForward bool) (*Result, int64) {
	t.Helper()
	s, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	s.EventIssue = eventIssue
	s.EventDriven = fastForward
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, s.FastForwarded()
}

// diffModes are the three mode combinations compared against the
// scan × stepped reference: the issue stage (full-window scan vs
// dependence-driven wakeup) crossed with the cycle loop (cycle-by-cycle
// vs quiescence fast-forward).
var diffModes = []struct {
	name       string
	eventIssue bool
	ff         bool
}{
	{"scan+ff", false, true},
	{"wakeup+stepped", true, false},
	{"wakeup+ff", true, true},
}

// runBothModes runs the same (machine, program) pair with and without
// the event-driven fast-forward (on the default wakeup issue path) and
// returns both results plus the number of cycles the event-driven run
// skipped.
func runBothModes(t *testing.T, m config.Machine, build func() *prog.Program) (stepped, ff *Result, skipped int64) {
	t.Helper()
	stepped, _ = runMode(t, m, build, true, false)
	ff, skipped = runMode(t, m, build, true, true)
	return stepped, ff, skipped
}

// TestEventDrivenDifferential is the contract test for both event
// layers: on every Table 2 preset, low- and high-end, over a
// memory-bound and a sync-bound workload, every combination of
// {scan, wakeup} issue stage × {stepped, fast-forward} cycle loop must
// produce a Result that is bit-identical (reflect.DeepEqual — same
// cycles, same float64 slot counts, every counter) to the scan ×
// stepped reference. It also asserts the fast path actually engaged
// somewhere, so the fast-forward legs are not vacuous.
func TestEventDrivenDifferential(t *testing.T) {
	apps := []string{"ocean", "fmm"}
	var totalSkipped int64
	for _, arch := range config.AllArchs {
		for _, app := range apps {
			w, err := workloads.ByName(app)
			if err != nil {
				t.Fatal(err)
			}
			for _, highEnd := range []bool{false, true} {
				m := config.LowEnd(arch)
				if highEnd {
					m = config.HighEnd(arch)
				}
				name := app + "/" + m.Name
				t.Run(name, func(t *testing.T) {
					build := func() *prog.Program {
						return w.Build(m.Threads(), m.Chips, workloads.SizeTest)
					}
					ref, _ := runMode(t, m, build, false, false)
					for _, md := range diffModes {
						got, skipped := runMode(t, m, build, md.eventIssue, md.ff)
						if !reflect.DeepEqual(ref, got) {
							t.Errorf("%s result differs from scan+stepped reference:\n  ref: %v\n  got: %v", md.name, ref, got)
						}
						totalSkipped += skipped
					}
				})
			}
		}
	}
	if totalSkipped == 0 {
		t.Error("fast-forward never engaged across the whole matrix; differential test is vacuous")
	}
}

// TestEventDrivenDifferentialLockContention pins the spinner replay:
// heavily contended locks make threads spin for long stretches, and the
// per-poll LockConflicts accounting must survive the bulk skip exactly.
func TestEventDrivenDifferentialLockContention(t *testing.T) {
	build := func() *prog.Program {
		b := prog.NewBuilder("lockdiff")
		cnt := b.Global("cnt", 1)
		b.Li(1, 0)
		b.Li(2, 50)
		b.CountedLoop(1, 2, func() {
			b.Lock(1)
			b.Ld(3, 0, cnt)
			b.Addi(3, 3, 1)
			b.St(3, 0, cnt)
			b.Unlock(1)
		})
		b.Halt()
		return b.MustBuild()
	}
	stepped, ff, _ := runBothModes(t, config.LowEnd(config.FA8), build)
	if stepped.LockConflicts == 0 {
		t.Fatal("kernel produced no lock conflicts; test is vacuous")
	}
	if !reflect.DeepEqual(stepped, ff) {
		t.Errorf("lock-contention results differ:\n  stepped: %v (conflicts %d)\n  fastfwd: %v (conflicts %d)",
			stepped, stepped.LockConflicts, ff, ff.LockConflicts)
	}
}

// buildBarrierDeadlock returns a kernel that can never finish: thread 0
// halts before the barrier, so the other threads wait forever.
func buildBarrierDeadlock() *prog.Program {
	b := prog.NewBuilder("deadlock")
	b.GlobalWords("nthreads", []uint64{8})
	b.IfThread0(func() {
		b.Halt()
	})
	b.Barrier(0)
	b.Halt()
	return b.MustBuild()
}

// TestEventDrivenDeadlockGuard checks the degenerate quiescent state
// with no future event: both modes must fail with the identical
// MaxCycles error, and the event-driven run must reach it by jumping
// straight to the cap instead of grinding through every idle cycle.
func TestEventDrivenDeadlockGuard(t *testing.T) {
	m := config.LowEnd(config.FA8)
	const cap = 100_000

	base, err := New(m, buildBarrierDeadlock())
	if err != nil {
		t.Fatal(err)
	}
	base.EventDriven = false
	base.MaxCycles = cap
	_, errStepped := base.Run()

	ev, err := New(m, buildBarrierDeadlock())
	if err != nil {
		t.Fatal(err)
	}
	ev.MaxCycles = cap
	_, errFF := ev.Run()

	if errStepped == nil || errFF == nil {
		t.Fatalf("deadlock not caught: stepped=%v fastfwd=%v", errStepped, errFF)
	}
	if errStepped.Error() != errFF.Error() {
		t.Errorf("error mismatch:\n  stepped: %v\n  fastfwd: %v", errStepped, errFF)
	}
	if ev.FastForwarded() != 0 {
		// The deadlock jump goes straight to MaxCycles without charging
		// accounting (the error path discards it), so it must not be
		// reported as regular fast-forwarded cycles.
		t.Errorf("deadlock jump charged %d fast-forwarded cycles", ev.FastForwarded())
	}

	// With the default 2-billion-cycle cap the event-driven run still
	// finishes instantly: the skip is O(1), not O(MaxCycles).
	ev2, err := New(m, buildBarrierDeadlock())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev2.Run(); err == nil {
		t.Fatal("deadlock not caught at default MaxCycles")
	}
}

// TestEventDrivenMultiprogram covers the NewMulti path (private syncs,
// per-job address spaces) through the same differential lens.
func TestEventDrivenMultiprogram(t *testing.T) {
	jobs := func() []*prog.Program {
		var js []*prog.Program
		for i := 0; i < 4; i++ {
			js = append(js, buildVectorSum(64, 1))
		}
		return js
	}
	m := config.LowEnd(config.SMT2)

	run := func(eventIssue, ff bool) *Result {
		s, err := NewMulti(m, jobs())
		if err != nil {
			t.Fatal(err)
		}
		s.EventIssue = eventIssue
		s.EventDriven = ff
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ref := run(false, false)
	for _, md := range diffModes {
		if got := run(md.eventIssue, md.ff); !reflect.DeepEqual(ref, got) {
			t.Errorf("multiprogram %s result differs from scan+stepped reference:\n  ref: %v\n  got: %v", md.name, ref, got)
		}
	}
}
