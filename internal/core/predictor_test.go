package core

import (
	"testing"
	"testing/quick"
)

func TestPredictorLearnsAlwaysTaken(t *testing.T) {
	p := NewBranchPredictor(16)
	pc := int64(3)
	// Weakly not-taken start: first prediction wrong, then it learns.
	for i := 0; i < 8; i++ {
		p.PredictAndUpdate(pc, true)
	}
	pred, correct := p.PredictAndUpdate(pc, true)
	if !pred || !correct {
		t.Fatalf("after training: pred=%v correct=%v", pred, correct)
	}
}

func TestPredictorHysteresis(t *testing.T) {
	p := NewBranchPredictor(16)
	pc := int64(5)
	for i := 0; i < 4; i++ {
		p.PredictAndUpdate(pc, true) // saturate taken
	}
	// One not-taken outcome must not flip the prediction (2-bit
	// saturating counter).
	p.PredictAndUpdate(pc, false)
	pred, _ := p.PredictAndUpdate(pc, true)
	if !pred {
		t.Fatal("single contrary outcome flipped a saturated counter")
	}
}

func TestPredictorAliasing(t *testing.T) {
	p := NewBranchPredictor(4)
	// PCs 1 and 5 alias in a 4-entry table.
	for i := 0; i < 4; i++ {
		p.PredictAndUpdate(1, true)
	}
	pred, _ := p.PredictAndUpdate(5, true)
	if !pred {
		t.Fatal("aliased entry did not share state")
	}
}

func TestPredictorCountsMispredicts(t *testing.T) {
	p := NewBranchPredictor(16)
	p.PredictAndUpdate(0, true)  // predicted NT, actual T: mispredict
	p.PredictAndUpdate(0, false) // predicted NT (counter now 2? no: 1+1=2 -> taken)... count checked below
	if p.Lookups != 2 {
		t.Fatalf("lookups = %d", p.Lookups)
	}
	if p.Mispred == 0 {
		t.Fatal("no mispredicts recorded")
	}
}

func TestPredictorRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewBranchPredictor(12)
}

func TestBTBLearnsTarget(t *testing.T) {
	b := NewBTB(16)
	_, correct := b.PredictAndUpdate(7, 100)
	if correct {
		t.Fatal("cold BTB hit")
	}
	pred, correct := b.PredictAndUpdate(7, 100)
	if !correct || pred != 100 {
		t.Fatalf("warm BTB: pred=%d correct=%v", pred, correct)
	}
	// Target change: miss once, then learn.
	if _, correct := b.PredictAndUpdate(7, 200); correct {
		t.Fatal("stale target accepted")
	}
	if _, correct := b.PredictAndUpdate(7, 200); !correct {
		t.Fatal("new target not learned")
	}
}

// Property: the predictor's counters never leave [0,3] (no wrap-around
// mispredictions): after saturating in one direction, exactly two
// contrary outcomes flip the prediction.
func TestPredictorSaturationProperty(t *testing.T) {
	f := func(outcomes []bool) bool {
		p := NewBranchPredictor(8)
		for _, o := range outcomes {
			p.PredictAndUpdate(2, o)
		}
		// Saturate taken, then check flip distance.
		for i := 0; i < 4; i++ {
			p.PredictAndUpdate(2, true)
		}
		p.PredictAndUpdate(2, false)
		if pred, _ := p.PredictAndUpdate(2, false); !pred {
			return false // flipped after only one contrary outcome
		}
		if pred, _ := p.PredictAndUpdate(2, false); pred {
			return false // did not flip after three
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
