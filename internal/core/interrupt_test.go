package core

import (
	"errors"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/obs"
	"clustersmt/internal/prog"
)

// buildCancelChase returns a pointer chase of dependent missing loads:
// the run spends almost all of its cycles inside quiescence
// fast-forward jumps, each one memory-latency long. This is the
// workload shape that used to defeat the iteration-counted interrupt
// poll — 1024 loop iterations of ~70-cycle jumps deferred cancellation
// by tens of thousands of cycles.
func buildCancelChase() *prog.Program {
	b := prog.NewBuilder("cancelchase")
	n := int64(8192)
	data := b.Global("chain", n)
	b.Li(1, 0)
	b.Li(2, 4000)
	b.Li(3, data)
	b.CountedLoop(1, 2, func() {
		b.Ld(3, 3, 0)
	})
	b.Halt()
	p := b.MustBuild()
	// Strided cyclic permutation: each hop lands on a new line.
	for i := int64(0); i < n; i++ {
		next := (i + 97) % n
		p.Init[data+i*prog.WordSize] = uint64(data + next*prog.WordSize)
	}
	return p
}

// TestInterruptBoundedDuringFastForward is the regression test for the
// cancellation-latency fix: closing the Interrupt channel in the middle
// of a fast-forward-dominated run must surface ErrInterrupted within
// interruptPeriod cycles plus at most one quiescence jump — not after
// interruptPeriod further jumps. The run is deterministic, so two runs
// interrupted at the same frame must fail with the identical error
// (same reported cycle).
func TestInterruptBoundedDuringFastForward(t *testing.T) {
	m := config.LowEnd(config.FA1)
	const closeAfter = 30_000

	run := func() (closeCycle, errCycle, ffAtClose int64, err error) {
		s, nerr := New(m, buildCancelChase())
		if nerr != nil {
			t.Fatal(nerr)
		}
		intr := make(chan struct{})
		s.Interrupt = intr
		s.EnableMetrics(25, 0)
		closed := false
		s.OnInterval(func(f obs.Frame) {
			if !closed && f.End >= closeAfter {
				closed = true
				closeCycle = f.End
				ffAtClose = s.FastForwarded()
				close(intr)
			}
		})
		_, err = s.Run()
		if !closed {
			t.Fatal("run finished before the interrupt point; kernel too short for the test")
		}
		return closeCycle, s.cycle, ffAtClose, err
	}

	c1, e1, ff1, err1 := run()
	if !errors.Is(err1, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err1)
	}
	if ff1 == 0 {
		t.Fatal("fast-forward never engaged before the interrupt; latency test is vacuous")
	}
	// The poll is keyed to the cycle count: after the close at cycle c1,
	// the next poll boundary is at most interruptPeriod cycles away, and
	// the clock can overshoot it by at most one quiescence jump (bounded
	// by the memory round trip for this kernel). The iteration-counted
	// poll this replaces had a worst case of interruptPeriod *jumps* —
	// tens of thousands of cycles — which this bound rejects.
	const slack = 512
	if lat := e1 - c1; lat < 0 || lat > interruptPeriod+slack {
		t.Errorf("interrupt latency %d cycles (closed at %d, stopped at %d), want <= %d",
			lat, c1, e1, int64(interruptPeriod+slack))
	}

	c2, e2, _, err2 := run()
	if c1 != c2 || e1 != e2 || err1.Error() != err2.Error() {
		t.Errorf("interrupted runs diverge:\n  run1: close %d stop %d err %v\n  run2: close %d stop %d err %v",
			c1, e1, err1, c2, e2, err2)
	}
}

// TestInterruptBoundedDuringFastForwardParallel runs the same bounded-
// latency check under the parallel execution mode, which shares Run's
// poll: cancelling a parallel run must also stop promptly and park the
// chip workers cleanly (the -race CI leg would flag a leaked worker
// touching freed state).
func TestInterruptBoundedDuringFastForwardParallel(t *testing.T) {
	m := config.HighEnd(config.FA1)
	const closeAfter = 30_000

	s, err := New(m, buildCancelChase())
	if err != nil {
		t.Fatal(err)
	}
	s.Parallel = true
	intr := make(chan struct{})
	s.Interrupt = intr
	s.EnableMetrics(25, 0)
	var closeCycle int64
	closed := false
	s.OnInterval(func(f obs.Frame) {
		if !closed && f.End >= closeAfter {
			closed = true
			closeCycle = f.End
			close(intr)
		}
	})
	_, err = s.Run()
	if !closed {
		t.Fatal("run finished before the interrupt point; kernel too short for the test")
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	const slack = 512
	if lat := s.cycle - closeCycle; lat < 0 || lat > interruptPeriod+slack {
		t.Errorf("parallel interrupt latency %d cycles (closed at %d, stopped at %d), want <= %d",
			lat, closeCycle, s.cycle, int64(interruptPeriod+slack))
	}
}
