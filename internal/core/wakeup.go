package core

import (
	"sort"

	"clustersmt/internal/stats"
)

// This file implements the dependence-driven (wakeup) issue stage that
// replaces the per-cycle full-window scan. When an entry issues it
// pushes a wakeup onto each in-flight consumer — the inverse of the
// entry.producers links — scheduled at its completeAt; a per-cluster
// time-bucketed wakeup wheel re-evaluates woken entries and moves those
// whose last producer resolved into a seq-ordered ready list, so
// issueEvent pops oldest-first from ready entries only instead of
// re-polling all WindowEntries every cycle. Entries still inside the
// decode/rename delay sit in a plain FIFO deque (eligibleAt is
// monotone in fetch order, so no wheel bucket is needed to order
// them), and unready entries sit in an unsorted waiting set whose
// memory/data hazard tallies are maintained incrementally — cheap
// swap-removes instead of sorted-slice memmoves, whose pointer write
// barriers would dominate the win.
//
// The contract is the same as fast-forward's (fastforward.go):
// bit-identity, not approximation. The hazard votes the scan produced
// for unready entries are reproduced exactly from the waiting tallies,
// the issue order (and hence FU assignment and memory-system call
// order) is the same seq order the window scan walks, and the
// differential tests in fastforward_test.go assert reflect.DeepEqual
// on the full Result across scan × wakeup × stepped × fast-forward.
//
// Events are at-least-once: an entry with two in-flight producers gets
// a wakeup from each, and the pending pop races producer completions.
// evaluate is therefore idempotent — guarded on state, eligibility and
// current queue membership — and stale events (for entries that issued
// or committed since being scheduled) fall through the state guard.
// Window entries come from a bump-allocated arena and are never
// recycled, so a stale pointer is always safe to inspect.

// entry.queued states: membership in the cluster's issue bookkeeping.
const (
	qNone    uint8 = iota // not yet visible to the issue stage
	qWaiting              // eligible but blocked on an unready producer
	qReady                // sources resolved; an issue candidate
)

// wheel is a time-bucketed wakeup wheel: a bucket per pending cycle,
// with the bucket keys in a hand-rolled int64 min-heap (no
// container/heap to keep pushes allocation-free) and drained bucket
// slices recycled through a free list.
type wheel struct {
	buckets map[int64][]*entry
	cycles  []int64    // min-heap of pending bucket keys
	free    [][]*entry // recycled bucket slices
}

// push schedules e for re-evaluation at the given cycle.
func (w *wheel) push(cycle int64, e *entry) {
	if w.buckets == nil {
		w.buckets = make(map[int64][]*entry)
	}
	b, ok := w.buckets[cycle]
	if !ok {
		w.heapPush(cycle)
		if n := len(w.free); n > 0 {
			b = w.free[n-1]
			w.free = w.free[:n-1]
		}
	}
	w.buckets[cycle] = append(b, e)
}

// min returns the earliest pending bucket cycle, or noEvent when the
// wheel is empty (the fast-forward next-event bound).
func (w *wheel) min() int64 {
	if len(w.cycles) == 0 {
		return noEvent
	}
	return w.cycles[0]
}

func (w *wheel) heapPush(cy int64) {
	h := append(w.cycles, cy)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	w.cycles = h
}

func (w *wheel) heapPop() int64 {
	h := w.cycles
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r, small := 2*i+1, 2*i+2, i
		if l < n && h[l] < h[small] {
			small = l
		}
		if r < n && h[r] < h[small] {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	w.cycles = h
	return top
}

// drainEvents processes every pending entry past its front-end delay
// and every wheel bucket due by cycle now, re-evaluating each woken
// entry. Draining is idempotent at a fixed cycle — it is exactly what
// issueEvent does first — so the fast-forward quiescence probe may
// drain early without perturbing a subsequent step.
func (c *cluster) drainEvents(now int64) {
	// Popped slots are left holding their stale pointers rather than
	// nil'ed: a nil store is still a barriered pointer write, and the
	// slots are recycled (append overwrites them), so the anchoring is
	// bounded by the slices' capacity — entries sever their own producer
	// links at commit, so nothing transitive hangs off them.
	for c.pendingHead < len(c.pending) && c.pending[c.pendingHead].eligibleAt <= now {
		e := c.pending[c.pendingHead]
		c.pendingHead++
		c.evaluate(e, now)
	}
	if c.pendingHead == len(c.pending) {
		c.pending = c.pending[:0]
		c.pendingHead = 0
	}
	for len(c.wheel.cycles) > 0 && c.wheel.cycles[0] <= now {
		cy := c.wheel.heapPop()
		b := c.wheel.buckets[cy]
		delete(c.wheel.buckets, cy)
		for _, x := range b {
			if x.state == stateDispatched {
				// A wakeup scheduled for x itself (dispatchEvent saw an
				// already-issued producer).
				c.evaluate(x, now)
				continue
			}
			if !x.done(now) {
				// Stale wakeup for an entry that issued since it was
				// scheduled; its own completion event (wake) will walk
				// the consumers.
				continue
			}
			// x's completion: wake its consumer chain. Every consumer
			// is still dispatched here — it cannot have issued before
			// x was done, and this walk runs before any issue at the
			// first cycle that sees x done (fast-forward never skips
			// past wheel.min()) — so the producer links that select
			// the next-pointer slot are intact.
			cur := x.firstCons
			x.firstCons = nil // chains are walked exactly once
			for cur != nil {
				var next *entry
				if cur.producers[0] == x {
					next = cur.consNext[0]
				} else {
					next = cur.consNext[1]
				}
				c.evaluate(cur, now)
				cur = next
			}
		}
		c.wheel.free = append(c.wheel.free, b[:0])
	}
}

// evaluate reclassifies a dispatched entry at cycle now: into ready
// when every producer has resolved, otherwise into (or within) the
// waiting state with its memory-vs-data hazard class kept current —
// the same sourcesReady verdict the scan re-derives per cycle,
// computed only when an event can have changed it. Waiting entries
// exist only as the aggregate waitMemN/waitDataN tallies plus per-
// entry flags (no list: maintaining one costs a pointer write barrier
// per transition, which is the scan's whole cost re-spent); the rare
// per-entry walk waitingVotes needs is over the seq-ordered window.
// Producers never become un-done, so ready is terminal until issue.
func (c *cluster) evaluate(e *entry, now int64) {
	if e.state != stateDispatched || now < e.eligibleAt || e.queued == qReady {
		return
	}
	ready, memWait := e.sourcesReady(now)
	if ready {
		if e.queued == qWaiting {
			if e.waitMem {
				c.waitMemN--
			} else {
				c.waitDataN--
			}
		}
		e.queued = qReady
		c.ready = insertBySeq(c.ready, e)
		return
	}
	if e.queued == qNone {
		e.queued = qWaiting
		e.waitMem = memWait
		if memWait {
			c.waitMemN++
		} else {
			c.waitDataN++
		}
		return
	}
	// Still waiting, but a completed load producer may have flipped the
	// hazard class from memory to data (or a remaining load the other
	// way); keep the incremental tallies exact.
	if e.waitMem != memWait {
		if memWait {
			c.waitDataN--
			c.waitMemN++
		} else {
			c.waitMemN--
			c.waitDataN++
		}
		e.waitMem = memWait
	}
}

// insertBySeq inserts e into the seq-sorted ready list. The ready set
// is small — entries leave it the cycle their FU is free — so a binary
// search plus short memmove beats a heap's pointer churn.
func insertBySeq(list []*entry, e *entry) []*entry {
	i := sort.Search(len(list), func(j int) bool { return list[j].seq > e.seq })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = e
	return list
}

// dispatchEvent registers a freshly fetched entry with the wakeup
// machinery: it subscribes to each in-flight producer — dispatched
// producers link it onto their intrusive consumer list (walked when
// their completion event pops), already-issued ones get a wheel wakeup
// at their completion — and queues the entry on the pending deque,
// whose pop at eligibleAt is the first cycle the scan path would look
// at it.
func (c *cluster) dispatchEvent(e *entry) {
	for k, p := range e.producers {
		if p == nil || (k == 1 && e.producers[0] == p) {
			// Slot 1 duplicating slot 0 (both sources read the same
			// in-flight result) must link only once.
			continue
		}
		if p.state == stateDispatched {
			e.consNext[k] = p.firstCons
			p.firstCons = e
		} else if p.completeAt > e.eligibleAt {
			c.wheel.push(p.completeAt, e)
		}
		// Producers already done by eligibleAt are covered by the
		// pending pop below.
	}
	c.pending = append(c.pending, e)
}

// wake fires when e issues: its completion becomes a wheel event — the
// consumer-chain walk, the fast-forward next-event bound, and the
// commit-progress signal even when nothing reads the result.
func (c *cluster) wake(e *entry) {
	c.wheel.push(e.completeAt, e)
}

// issueEvent is the wakeup-path issue stage: drain due events, then
// pop oldest-first from the ready list only. Bit-identical to the
// reference scan (issue): ready entries are visited in the same seq
// order the window scan walks, failed attempts vote and retry through
// tryIssue exactly as the scan's would, and the scan's loop-top break
// — it stops at the first entry after the width-th issue — becomes a
// seq cut at the width-th issued entry's seq, applied to the remaining
// ready entries here and to the waiting tallies in waitingVotes.
func (c *cluster) issueEvent(s *Simulator, now int64, votes *stats.Votes) int {
	c.drainEvents(now)
	issued := 0
	broke := false
	var breakSeq uint64
	kept := c.ready[:0]
	for i, e := range c.ready {
		if issued >= c.cfg.IssueWidth {
			// The scan would not visit these: keep them, no votes.
			// Writes into kept trail i, so this forward copy is safe.
			kept = append(kept, c.ready[i:]...)
			break
		}
		if c.tryIssue(s, e, now, votes) {
			e.queued = qNone
			issued++
			if issued >= c.cfg.IssueWidth {
				broke = true
				breakSeq = e.seq
			}
		} else {
			kept = append(kept, e)
		}
	}
	c.ready = kept // stale tail slots: same bounded-anchoring story as drainEvents
	c.waitingVotes(votes, broke, breakSeq)
	return issued
}

// waitingVotes adds the hazard votes of the waiting entries the scan
// would have visited this cycle: all of them — straight from the
// incremental tallies, the common case — when the issue loop ran to
// exhaustion, else only those older than the width-th issued entry
// (seqs are unique, so the cut is exact). The cut walks the window,
// which is in seq order, so it stops at the break position — issues
// pop oldest-first, so the prefix before the width-th issued entry is
// short — and only on width-saturated cycles.
func (c *cluster) waitingVotes(votes *stats.Votes, broke bool, breakSeq uint64) {
	if !broke {
		votes[stats.Memory] += float64(c.waitMemN)
		votes[stats.Data] += float64(c.waitDataN)
		return
	}
	mem, data := 0, 0
	for _, e := range c.window {
		if e.seq >= breakSeq {
			break
		}
		if e.state == stateDispatched && e.queued == qWaiting {
			if e.waitMem {
				mem++
			} else {
				data++
			}
		}
	}
	votes[stats.Memory] += float64(mem)
	votes[stats.Data] += float64(data)
}
