package core

import (
	"fmt"
	"io"
)

// tracer records pipeline events for a cycle window. Tracing is
// designed for debugging small programs: the output is one line per
// event (fetch / issue / commit), ordered by cycle.
type tracer struct {
	w        io.Writer
	from, to int64
}

// TraceTo directs pipeline events in cycles [from, to) to w. Pass
// to <= 0 to trace until the end of the run. Must be called before Run.
func (s *Simulator) TraceTo(w io.Writer, from, to int64) {
	if to <= 0 {
		to = 1 << 62
	}
	s.tr = &tracer{w: w, from: from, to: to}
}

// traceEvent emits one pipeline event if tracing covers cycle now.
// kind is "F" (fetched), "I" (issued) or "C" (committed).
func (s *Simulator) traceEvent(now int64, cl *cluster, kind string, e *entry) {
	if s.tr == nil || now < s.tr.from || now >= s.tr.to {
		return
	}
	fmt.Fprintf(s.tr.w, "c%-7d chip%d.cl%d %s t%-2d pc=%-5d %s\n",
		now, cl.chip, cl.idx, kind, e.thread.id, e.d.PC, e.d.Instr.String())
}
