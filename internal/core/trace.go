package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"clustersmt/internal/coherence"
)

// Tracing records pipeline and memory events for a cycle window through
// one of two sinks: a human-readable text log (TraceTo) or a Chrome
// trace_event JSON file (TraceChromeTo) loadable in chrome://tracing or
// Perfetto. Both sinks buffer their writer; Run flushes at exit (even
// on MaxCycles aborts, so partial traces stay usable).
//
// Tracing is read-only: every hook fires after the simulation decision
// it observes, and the directory-transaction hooks only read cumulative
// counters. Result is bit-identical with tracing on or off (enforced by
// TestObsResultNeutral).
//
// Event kinds:
//
//	F  fetched          I  issued          C  committed
//	S  squashed — a mispredicted branch redirecting fetch. The
//	   simulator fetches no wrong-path instructions (fetch blocks at
//	   the mispredict until resolve), so the squash marks the redirect
//	   point rather than discarded work.
//	M  memory span — a load satisfied beyond the L1, spanning issue to
//	   data return.
//	D  directory transaction — invalidations, downgrades, writebacks or
//	   three-hop forwards triggered by one access.
type tracer struct {
	sink     traceSink
	from, to int64
}

func (t *tracer) covers(now int64) bool { return now >= t.from && now < t.to }

func (t *tracer) flush() { t.sink.flush() }

// traceSink renders trace events to some format.
type traceSink interface {
	event(now int64, cl *cluster, kind string, e *entry)
	memSpan(start, end int64, cl *cluster, e *entry, cls coherence.AccessClass)
	dirEvent(now int64, cl *cluster, e *entry, kind string, n uint64)
	flush()
}

// TraceTo directs events in cycles [from, to) to w as one text line per
// event. Pass to <= 0 to trace until the end of the run. Must be called
// before Run.
func (s *Simulator) TraceTo(w io.Writer, from, to int64) {
	if to <= 0 {
		to = 1 << 62
	}
	s.tr = &tracer{sink: &textSink{w: bufio.NewWriter(w)}, from: from, to: to}
}

// TraceChromeTo directs events in cycles [from, to) to w as a Chrome
// trace_event JSON array (one process per cluster, one track per
// thread; ts is the cycle number with 1 cycle = 1 "µs"). Pass to <= 0
// to trace until the end of the run. Must be called before Run.
func (s *Simulator) TraceChromeTo(w io.Writer, from, to int64) {
	if to <= 0 {
		to = 1 << 62
	}
	s.tr = &tracer{sink: newChromeSink(w), from: from, to: to}
}

// traceEvent emits one pipeline event if tracing covers cycle now.
// kind is "F" (fetched), "I" (issued), "C" (committed) or "S"
// (squashed: mispredicted branch redirecting fetch).
func (s *Simulator) traceEvent(now int64, cl *cluster, kind string, e *entry) {
	if s.tr == nil || !s.tr.covers(now) {
		return
	}
	s.tr.sink.event(now, cl, kind, e)
}

// traceMem emits a memory span for a load satisfied beyond the L1,
// from its issue cycle to data return.
func (s *Simulator) traceMem(start, end int64, cl *cluster, e *entry, cls coherence.AccessClass) {
	if s.tr == nil || !s.tr.covers(start) || cls == coherence.L1Hit {
		return
	}
	s.tr.sink.memSpan(start, end, cl, e, cls)
}

// dirCounters snapshots the directory's cumulative transaction counts;
// traceDirDelta turns the difference across one access into events.
type dirCounters struct {
	inval, down, wb, threeHop uint64
}

func (s *Simulator) dirCounters() dirCounters {
	d := s.msys.Dir
	return dirCounters{inval: d.Invalidations, down: d.Downgrades, wb: d.Writebacks, threeHop: d.ThreeHops}
}

// traceDirDelta emits one event per directory-transaction kind the
// access at cycle now triggered since the pre snapshot was taken.
func (s *Simulator) traceDirDelta(now int64, cl *cluster, e *entry, pre dirCounters) {
	if s.tr == nil || !s.tr.covers(now) {
		return
	}
	post := s.dirCounters()
	if n := post.inval - pre.inval; n > 0 {
		s.tr.sink.dirEvent(now, cl, e, "invalidate", n)
	}
	if n := post.down - pre.down; n > 0 {
		s.tr.sink.dirEvent(now, cl, e, "downgrade", n)
	}
	if n := post.wb - pre.wb; n > 0 {
		s.tr.sink.dirEvent(now, cl, e, "writeback", n)
	}
	if n := post.threeHop - pre.threeHop; n > 0 {
		s.tr.sink.dirEvent(now, cl, e, "three-hop", n)
	}
}

// ---- text sink ----

// textSink renders one line per event through a buffered writer.
type textSink struct {
	w *bufio.Writer
}

func (ts *textSink) event(now int64, cl *cluster, kind string, e *entry) {
	fmt.Fprintf(ts.w, "c%-7d chip%d.cl%d %s t%-2d pc=%-5d %s\n",
		now, cl.chip, cl.idx, kind, e.thread.id, e.d.PC, e.d.Instr.String())
}

func (ts *textSink) memSpan(start, end int64, cl *cluster, e *entry, cls coherence.AccessClass) {
	fmt.Fprintf(ts.w, "c%-7d chip%d.cl%d M t%-2d pc=%-5d %s +%dcyc\n",
		start, cl.chip, cl.idx, e.thread.id, e.d.PC, cls.String(), end-start)
}

func (ts *textSink) dirEvent(now int64, cl *cluster, e *entry, kind string, n uint64) {
	fmt.Fprintf(ts.w, "c%-7d chip%d.cl%d D t%-2d pc=%-5d %s x%d\n",
		now, cl.chip, cl.idx, e.thread.id, e.d.PC, kind, n)
}

func (ts *textSink) flush() { ts.w.Flush() }

// ---- Chrome trace_event sink ----

// chromeSink renders the Chrome trace_event JSON array format: pipeline
// events as thread-scoped instants (ph "i"), memory accesses as
// complete spans (ph "X"), plus process_name/thread_name metadata so
// the viewer labels clusters and hardware threads. One cluster is one
// process (pid chip*256+cluster), one hardware thread is one track.
type chromeSink struct {
	w     *bufio.Writer
	first bool
	// seenPID / seenTID track which metadata records have been emitted.
	seenPID map[int]bool
	seenTID map[int64]bool
}

func newChromeSink(w io.Writer) *chromeSink {
	return &chromeSink{
		w:       bufio.NewWriter(w),
		first:   true,
		seenPID: make(map[int]bool),
		seenTID: make(map[int64]bool),
	}
}

func (cs *chromeSink) pid(cl *cluster) int { return cl.chip*256 + cl.idx }

// sep writes the array opener or the inter-event comma.
func (cs *chromeSink) sep() {
	if cs.first {
		cs.w.WriteString("[\n")
		cs.first = false
	} else {
		cs.w.WriteString(",\n")
	}
}

// meta emits process_name / thread_name metadata the first time a
// (cluster, thread) pair appears.
func (cs *chromeSink) meta(cl *cluster, tid int) {
	pid := cs.pid(cl)
	if !cs.seenPID[pid] {
		cs.seenPID[pid] = true
		cs.sep()
		fmt.Fprintf(cs.w, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"chip%d.cl%d"}}`,
			pid, cl.chip, cl.idx)
	}
	key := int64(pid)<<32 | int64(tid)
	if !cs.seenTID[key] {
		cs.seenTID[key] = true
		cs.sep()
		fmt.Fprintf(cs.w, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"thread %d"}}`,
			pid, tid, tid)
	}
}

var chromeKindName = map[string]string{
	"F": "fetch",
	"I": "issue",
	"C": "commit",
	"S": "squash",
}

func (cs *chromeSink) event(now int64, cl *cluster, kind string, e *entry) {
	cs.meta(cl, e.thread.id)
	name := chromeKindName[kind]
	if name == "" {
		name = kind
	}
	cs.sep()
	fmt.Fprintf(cs.w, `{"name":%s,"cat":"pipeline","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"pc":%d,"instr":%s}}`,
		strconv.Quote(name), now, cs.pid(cl), e.thread.id, e.d.PC, strconv.Quote(e.d.Instr.String()))
}

func (cs *chromeSink) memSpan(start, end int64, cl *cluster, e *entry, cls coherence.AccessClass) {
	cs.meta(cl, e.thread.id)
	dur := end - start
	if dur < 1 {
		dur = 1
	}
	cs.sep()
	fmt.Fprintf(cs.w, `{"name":%s,"cat":"memory","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"pc":%d,"addr":%d}}`,
		strconv.Quote("load "+cls.String()), start, dur, cs.pid(cl), e.thread.id, e.d.PC, e.d.Addr)
}

func (cs *chromeSink) dirEvent(now int64, cl *cluster, e *entry, kind string, n uint64) {
	cs.meta(cl, e.thread.id)
	cs.sep()
	fmt.Fprintf(cs.w, `{"name":%s,"cat":"directory","ph":"i","s":"t","ts":%d,"pid":%d,"tid":%d,"args":{"pc":%d,"count":%d}}`,
		strconv.Quote("dir "+kind), now, cs.pid(cl), e.thread.id, e.d.PC, n)
}

func (cs *chromeSink) flush() {
	if cs.first {
		// No events in the window: still emit a valid (empty) array.
		cs.w.WriteString("[")
	}
	cs.w.WriteString("]\n")
	cs.w.Flush()
}
