package core

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/prog"
	"clustersmt/internal/workloads"
)

// checkpointSpec is the workload the checkpoint differentials run: a
// synthetic kernel exercising every subsystem a snapshot must carry —
// FP chains (float accumulators), memory traffic (caches, MSHRs, TLB,
// directory), a serial section (sync blocking) and a warm-up prefix.
func checkpointSpec() workloads.SyntheticSpec {
	return workloads.SyntheticSpec{
		ParCap: 6, ChainLen: 2, IndepOps: 2, MemOps: 2,
		FootprintKB: 64, Iters: 768, SerialIters: 48, Steps: 2,
		WarmupIters: 200,
	}
}

// offCounters collects the counters a Result does not carry — per-chip
// cache, bank, TLB and MSHR state, directory population, network
// arbitration — so the differentials prove the whole machine restored,
// not just the reported figures.
type offCounters struct {
	Chips []chipCounters
	Dir   struct {
		Lines                                           int
		Invalidations, Downgrades, Writebacks, ThreeHop uint64
	}
	NetMessages, NetConflicts, NetBusy uint64
}

type chipCounters struct {
	L1Hits, L1Misses, L1Evict, L1Wb     uint64
	L2Hits, L2Misses, L2Evict, L2Wb     uint64
	L1BankConf, L1BankBusy              uint64
	L2BankConf, L2BankBusy              uint64
	TLBHit, TLBMiss, TLBMissStalls      uint64
	MSHRMerges, MSHRRejected, MSHRAlloc uint64
}

func offCountersOf(s *Simulator) offCounters {
	var o offCounters
	sys := s.MemSystem()
	for _, c := range sys.Chips {
		o.Chips = append(o.Chips, chipCounters{
			L1Hits: c.L1.Hits, L1Misses: c.L1.Misses, L1Evict: c.L1.Evictions, L1Wb: c.L1.WritebackEvictions,
			L2Hits: c.L2.Hits, L2Misses: c.L2.Misses, L2Evict: c.L2.Evictions, L2Wb: c.L2.WritebackEvictions,
			L1BankConf: c.L1Banks.Conflicts, L1BankBusy: c.L1Banks.BusyCycles,
			L2BankConf: c.L2Banks.Conflicts, L2BankBusy: c.L2Banks.BusyCycles,
			TLBHit: c.TLB.Hit, TLBMiss: c.TLB.Miss, TLBMissStalls: c.TLBMissStalls,
			MSHRMerges: c.MSHR.Merges, MSHRRejected: c.MSHR.Rejected, MSHRAlloc: c.MSHR.Allocated,
		})
	}
	o.Dir.Lines = sys.Dir.Lines()
	o.Dir.Invalidations = sys.Dir.Invalidations
	o.Dir.Downgrades = sys.Dir.Downgrades
	o.Dir.Writebacks = sys.Dir.Writebacks
	o.Dir.ThreeHop = sys.Dir.ThreeHops
	o.NetMessages = sys.Net.Messages
	o.NetConflicts = sys.Net.Conflicts
	o.NetBusy = sys.Net.BusyCycles
	return o
}

// compareRuns asserts two completed simulators agree on the Result, the
// off-Result counters and the observability frames.
func compareRuns(t *testing.T, label string, want, got *Result, ws, gs *Simulator) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: Result diverged:\nwant %+v\ngot  %+v", label, want, got)
	}
	if wo, go_ := offCountersOf(ws), offCountersOf(gs); !reflect.DeepEqual(wo, go_) {
		t.Errorf("%s: off-Result counters diverged:\nwant %+v\ngot  %+v", label, wo, go_)
	}
	wr, gr := ws.Metrics(), gs.Metrics()
	if (wr == nil) != (gr == nil) {
		t.Fatalf("%s: metrics ring presence differs", label)
	}
	if wr != nil {
		if !reflect.DeepEqual(wr.Frames(), gr.Frames()) {
			t.Errorf("%s: obs frames diverged (%d vs %d frames)", label, len(wr.Frames()), len(gr.Frames()))
		}
		if wr.Dropped() != gr.Dropped() {
			t.Errorf("%s: obs drop accounting diverged: %d vs %d", label, wr.Dropped(), gr.Dropped())
		}
	}
}

// TestCheckpointDifferential is the contract test for checkpoint/
// restore and fork: on every Table 2 preset, low- and high-end,
// sequential and parallel, a run resumed from a mid-run snapshot — and
// a run forked from a paused parent, and the parent itself continuing —
// must be bit-identical (reflect.DeepEqual on the full Result, the
// off-Result memory/coherence counters and the obs frames) to running
// from scratch.
func TestCheckpointDifferential(t *testing.T) {
	w := workloads.Synthetic(checkpointSpec())
	for _, arch := range config.AllArchs {
		for _, highEnd := range []bool{false, true} {
			m := config.LowEnd(arch)
			if highEnd {
				m = config.HighEnd(arch)
			}
			for _, par := range []bool{false, true} {
				name := m.Name
				if par {
					name += "/parallel"
				} else {
					name += "/sequential"
				}
				t.Run(name, func(t *testing.T) {
					build := func() *prog.Program {
						return w.Build(m.Threads(), m.Chips, workloads.SizeTest)
					}
					mkSim := func() *Simulator {
						s, err := New(m, build())
						if err != nil {
							t.Fatal(err)
						}
						s.Parallel = par
						s.EnableMetrics(2048, 64)
						return s
					}
					run := func(s *Simulator) *Result {
						r, err := s.Run()
						if err != nil {
							t.Fatal(err)
						}
						return r
					}

					scratch := mkSim()
					ref := run(scratch)
					half := ref.Cycles / 2
					if half < 1 {
						half = 1
					}

					// Snapshot → Restore → continue.
					paused := mkSim()
					if err := paused.RunTo(half); err != nil {
						t.Fatal(err)
					}
					data, err := paused.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					restored, err := Restore(m, build(), data)
					if err != nil {
						t.Fatal(err)
					}
					restored.Parallel = par
					compareRuns(t, "restore", ref, run(restored), scratch, restored)

					// Fork → child continues; the snapshotted parent also
					// continues (snapshot and fork must not perturb it).
					child, err := paused.Fork()
					if err != nil {
						t.Fatal(err)
					}
					child.Parallel = par
					compareRuns(t, "fork-child", ref, run(child), scratch, child)
					compareRuns(t, "parent-continue", ref, run(paused), scratch, paused)
				})
			}
		}
	}
}

// TestForkCrossVariant checks the warm-up amortization primitive: a
// parent paused inside the shared warm-up prefix forks into a program
// variant with different post-prefix code, and the child's full run is
// bit-identical to running that variant from scratch. Both the
// in-memory ForkProgram path and the serialized Snapshot→Restore path
// are exercised.
func TestForkCrossVariant(t *testing.T) {
	base := checkpointSpec()
	base.WarmupIters = 1500
	variant := base
	variant.ChainLen = 6
	variant.IndepOps = 0
	variant.Iters = 512

	for _, m := range []config.Machine{config.LowEnd(config.FA4), config.HighEnd(config.SMT4)} {
		t.Run(m.Name, func(t *testing.T) {
			buildBase := workloads.Synthetic(base).Build
			buildVar := workloads.Synthetic(variant).Build

			parent, err := New(m, buildBase(m.Threads(), m.Chips, workloads.SizeTest))
			if err != nil {
				t.Fatal(err)
			}
			parent.EnableMetrics(2048, 64)
			if err := parent.RunTo(1000); err != nil {
				t.Fatal(err)
			}
			if parent.Done() {
				t.Fatal("warm-up finished before the pause point; lengthen WarmupIters")
			}
			if !parent.PrefixValid() {
				t.Fatalf("execution escaped the prefix during warm-up (high water %d, prefix %d)",
					parent.PCHighWater(), parent.Program.PrefixLen)
			}

			scratch, err := New(m, buildVar(m.Threads(), m.Chips, workloads.SizeTest))
			if err != nil {
				t.Fatal(err)
			}
			scratch.EnableMetrics(2048, 64)
			ref, err := scratch.Run()
			if err != nil {
				t.Fatal(err)
			}

			child, err := parent.ForkProgram(buildVar(m.Threads(), m.Chips, workloads.SizeTest))
			if err != nil {
				t.Fatal(err)
			}
			got, err := child.Run()
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, "fork-variant", ref, got, scratch, child)

			data, err := parent.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := Restore(m, buildVar(m.Threads(), m.Chips, workloads.SizeTest), data)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := restored.Run()
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, "restore-variant", ref, got2, scratch, restored)
		})
	}
}

// snapshotFixture builds a small paused simulator and its snapshot for
// the error-path tests.
func snapshotFixture(t *testing.T) (config.Machine, func() *prog.Program, *Simulator, []byte) {
	t.Helper()
	m := config.LowEnd(config.FA4)
	w := workloads.Synthetic(checkpointSpec())
	build := func() *prog.Program { return w.Build(m.Threads(), m.Chips, workloads.SizeTest) }
	s, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunTo(500); err != nil {
		t.Fatal(err)
	}
	data, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return m, build, s, data
}

// TestSnapshotVersionError checks that a checkpoint with an unknown
// format version is refused with the typed error.
func TestSnapshotVersionError(t *testing.T) {
	m, build, _, data := snapshotFixture(t)
	bad := append([]byte(nil), data...)
	bad[4]++ // version is the little-endian u32 at offset 4
	if _, err := Restore(m, build(), bad); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("got %v, want ErrSnapshotVersion", err)
	}
}

// TestSnapshotTruncated checks that cut-off payloads surface the typed
// truncation error at every plausible cut point, without panicking.
func TestSnapshotTruncated(t *testing.T) {
	m, build, _, data := snapshotFixture(t)
	for _, n := range []int{0, 3, 7, 40, 80, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := Restore(m, build(), data[:n]); !errors.Is(err, ErrSnapshotTruncated) {
			t.Errorf("truncation at %d of %d: got %v, want ErrSnapshotTruncated", n, len(data), err)
		}
	}
	bloated := append(append([]byte(nil), data...), 0)
	if _, err := Restore(m, build(), bloated); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("trailing byte: got %v, want ErrSnapshotCorrupt", err)
	}
	badMagic := append([]byte(nil), data...)
	badMagic[0] ^= 0xff
	if _, err := Restore(m, build(), badMagic); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("bad magic: got %v, want ErrSnapshotCorrupt", err)
	}
}

// TestSnapshotMismatch checks machine- and program-identity rejection.
func TestSnapshotMismatch(t *testing.T) {
	m, build, _, data := snapshotFixture(t)
	other := config.HighEnd(config.FA4)
	if _, err := Restore(other, build(), data); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("machine mismatch: got %v, want ErrSnapshotMismatch", err)
	}
	spec := checkpointSpec()
	spec.FootprintKB = 128 // different data image: prefix key differs too
	ow := workloads.Synthetic(spec)
	if _, err := Restore(m, ow.Build(m.Threads(), m.Chips, workloads.SizeTest), data); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("program mismatch: got %v, want ErrSnapshotMismatch", err)
	}
}

// TestSnapshotUnsupported checks the refused configurations.
func TestSnapshotUnsupported(t *testing.T) {
	m := config.LowEnd(config.SMT4)
	w := workloads.Synthetic(checkpointSpec())
	p := w.Build(m.Threads(), m.Chips, workloads.SizeTest)

	ref, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetReferenceMemPaths(true)
	if _, err := ref.Snapshot(); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("reference paths: got %v, want ErrSnapshotUnsupported", err)
	}

	multi, err := NewMulti(m, []*prog.Program{p, p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multi.Snapshot(); !errors.Is(err, ErrSnapshotUnsupported) {
		t.Fatalf("multiprogrammed: got %v, want ErrSnapshotUnsupported", err)
	}
}

// TestFailedForkLeavesParentIntact checks the no-partial-mutation
// contract from the caller's side: after a refused ForkProgram (no
// shared prefix), the parent continues to a Result identical to an
// undisturbed twin's.
func TestFailedForkLeavesParentIntact(t *testing.T) {
	m := config.LowEnd(config.FA2)
	w := workloads.Synthetic(checkpointSpec())
	build := func() *prog.Program { return w.Build(m.Threads(), m.Chips, workloads.SizeTest) }

	twin, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := twin.Run()
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunTo(ref.Cycles / 2); err != nil {
		t.Fatal(err)
	}
	spec := checkpointSpec()
	spec.FootprintKB = 128
	incompatible := workloads.Synthetic(spec).Build(m.Threads(), m.Chips, workloads.SizeTest)
	if _, err := s.ForkProgram(incompatible); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("incompatible fork: got %v, want ErrSnapshotMismatch", err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("parent perturbed by failed fork:\nwant %+v\ngot  %+v", ref, got)
	}
}

// FuzzSnapshotDecode feeds arbitrary bytes to Restore: it must reject
// them with an error, never panic. Seeded with a valid snapshot so the
// fuzzer starts inside the interesting decode paths.
func FuzzSnapshotDecode(f *testing.F) {
	m := config.LowEnd(config.FA4)
	w := workloads.Synthetic(checkpointSpec())
	build := func() *prog.Program { return w.Build(m.Threads(), m.Chips, workloads.SizeTest) }
	s, err := New(m, build())
	if err != nil {
		f.Fatal(err)
	}
	if err := s.RunTo(400); err != nil {
		f.Fatal(err)
	}
	data, err := s.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte{})
	p := build()
	f.Fuzz(func(t *testing.T, b []byte) {
		sim, err := Restore(m, p, b)
		if err == nil && sim == nil {
			t.Fatal("nil simulator without error")
		}
	})
}

// TestSnapshotGolden decodes the committed fixture — a checkpoint
// written by an earlier build — and runs it to completion, comparing
// against a from-scratch run of the same program. This is the format-
// compatibility tripwire: any encoding change that invalidates old
// checkpoints must bump SnapshotVersion and regenerate the fixture
// (WRITE_GOLDEN=1 go test ./internal/core -run TestSnapshotGolden).
func TestSnapshotGolden(t *testing.T) {
	golden := filepath.Join("testdata", "checkpoint_v1.bin")
	m := config.LowEnd(config.FA4)
	w := workloads.Synthetic(checkpointSpec())
	build := func() *prog.Program { return w.Build(m.Threads(), m.Chips, workloads.SizeTest) }

	if os.Getenv("WRITE_GOLDEN") != "" {
		s, err := New(m, build())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunTo(500); err != nil {
			t.Fatal(err)
		}
		data, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(data))
	}

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with WRITE_GOLDEN=1): %v", err)
	}
	restored, err := Restore(m, build(), data)
	if err != nil {
		t.Fatalf("golden fixture no longer decodes — bump SnapshotVersion and regenerate: %v", err)
	}
	got, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	want, err := scratch.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("golden checkpoint run diverged from scratch run:\nwant %+v\ngot  %+v", want, got)
	}
}
