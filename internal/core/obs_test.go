package core

import (
	"io"
	"reflect"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/obs"
	"clustersmt/internal/prog"
	"clustersmt/internal/stats"
	"clustersmt/internal/workloads"
)

// runObsMode runs one (machine, program) pair with every observability
// hook enabled — interval metrics, an OnInterval callback, and a Chrome
// trace to io.Discard — and returns the result plus the frames seen.
func runObsMode(t *testing.T, m config.Machine, build func() *prog.Program, ff bool, interval int64) (*Result, []obs.Frame) {
	t.Helper()
	s, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	s.EventDriven = ff
	s.EnableMetrics(interval, 0)
	var frames []obs.Frame
	s.OnInterval(func(f obs.Frame) { frames = append(frames, f) })
	s.TraceChromeTo(io.Discard, 0, 0)
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, frames
}

// TestObsResultNeutral is the observability contract test: on every
// Table 2 preset, low- and high-end, on both the stepped and the
// fast-forward cycle loop, enabling interval metrics + OnInterval +
// Chrome tracing must leave the Result bit-identical
// (reflect.DeepEqual) to a plain run. A text-trace leg covers the
// other sink.
func TestObsResultNeutral(t *testing.T) {
	w, err := workloads.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range config.AllArchs {
		for _, highEnd := range []bool{false, true} {
			m := config.LowEnd(arch)
			if highEnd {
				m = config.HighEnd(arch)
			}
			t.Run(m.Name, func(t *testing.T) {
				build := func() *prog.Program {
					return w.Build(m.Threads(), m.Chips, workloads.SizeTest)
				}
				for _, ff := range []bool{false, true} {
					plain, _ := runMode(t, m, build, true, ff)
					withObs, frames := runObsMode(t, m, build, ff, 500)
					if !reflect.DeepEqual(plain, withObs) {
						t.Errorf("ff=%v: result with observability differs from plain run:\n  plain: %v\n  obs:   %v", ff, plain, withObs)
					}
					if len(frames) == 0 {
						t.Errorf("ff=%v: no frames sampled; neutrality test is vacuous", ff)
					}
				}
			})
		}
	}
}

// TestObsResultNeutralTextTrace covers the text sink: a buffered text
// trace over the full run must leave the Result bit-identical too.
func TestObsResultNeutralTextTrace(t *testing.T) {
	w, err := workloads.ByName("fmm")
	if err != nil {
		t.Fatal(err)
	}
	m := config.LowEnd(config.SMT2)
	build := func() *prog.Program {
		return w.Build(m.Threads(), m.Chips, workloads.SizeTest)
	}
	plain, _ := runMode(t, m, build, true, true)
	s, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	s.TraceTo(io.Discard, 0, 0)
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, got) {
		t.Errorf("result with text trace differs from plain run:\n  plain: %v\n  trace: %v", plain, got)
	}
}

// checkConservation asserts the frames tile the run: boundaries abut,
// every non-final frame spans exactly the interval, and the summed
// deltas reproduce the end-of-run totals exactly (deltas are
// differences of cumulative counters, so the sums telescope).
func checkConservation(t *testing.T, r *Result, frames []obs.Frame, interval int64) {
	t.Helper()
	if len(frames) == 0 {
		t.Fatal("no frames sampled")
	}
	var cycles int64
	var committed, loads, stores uint64
	var slots [stats.NumCategories]float64
	prevEnd := int64(0)
	for i, f := range frames {
		if f.Index != i {
			t.Fatalf("frame %d has index %d", i, f.Index)
		}
		if f.Start != prevEnd {
			t.Fatalf("frame %d starts at %d, previous ended at %d", i, f.Start, prevEnd)
		}
		if f.End-f.Start != f.Cycles {
			t.Fatalf("frame %d: End-Start=%d but Cycles=%d", i, f.End-f.Start, f.Cycles)
		}
		if i < len(frames)-1 && f.Cycles != interval {
			t.Fatalf("non-final frame %d spans %d cycles, want %d", i, f.Cycles, interval)
		}
		prevEnd = f.End
		cycles += f.Cycles
		committed += f.Committed
		loads += f.Mem.Loads
		stores += f.Mem.Stores
		var clusterSum [stats.NumCategories]float64
		for _, cs := range f.Clusters {
			for c := range cs.Slots {
				clusterSum[c] += cs.Slots[c]
			}
		}
		for c := range f.Slots {
			slots[c] += f.Slots[c]
		}
	}
	if cycles != r.Cycles {
		t.Errorf("frame cycles sum to %d, run took %d", cycles, r.Cycles)
	}
	if committed != r.Committed {
		t.Errorf("frame commits sum to %d, run committed %d", committed, r.Committed)
	}
	if loads != r.MemStats.Loads || stores != r.MemStats.Stores {
		t.Errorf("frame memory ops sum to %d/%d, run did %d/%d",
			loads, stores, r.MemStats.Loads, r.MemStats.Stores)
	}
	for c := range slots {
		if slots[c] != r.Slots.Counts[c] {
			t.Errorf("slot category %v: frames sum to %v, run counted %v",
				stats.Category(c), slots[c], r.Slots.Counts[c])
		}
	}
}

// TestObsFrameConservation is the satellite property test: summing the
// per-frame deltas must reproduce the final totals exactly, on both
// cycle loops. The exactness argument: each delta is a float difference
// of successive cumulative counters and the test re-sums them in frame
// order, so for the workload sizes here (counter growth per frame well
// within one binade after the first frame) every subtraction and
// re-addition is exact; determinism makes the check stable.
func TestObsFrameConservation(t *testing.T) {
	w, err := workloads.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	m := config.LowEnd(config.SMT2)
	build := func() *prog.Program {
		return w.Build(m.Threads(), m.Chips, workloads.SizeTest)
	}
	const interval = 250
	for _, ff := range []bool{false, true} {
		r, frames := runObsMode(t, m, build, ff, interval)
		checkConservation(t, r, frames, interval)
	}
}

// TestObsFrameConservationFastForwardDominated pins the segmented
// replay: a pointer chase of dependent missing loads spends most of
// its run inside quiescence skips, each one memory-latency long and
// crossing frame boundaries, and the frames must still land exactly on
// the boundaries and conserve every counter.
func TestObsFrameConservationFastForwardDominated(t *testing.T) {
	build := func() *prog.Program {
		b := prog.NewBuilder("obschase")
		n := int64(8192)
		data := b.Global("chain", n)
		b.Li(1, 0)
		b.Li(2, 2000)
		b.Li(3, data)
		b.CountedLoop(1, 2, func() {
			b.Ld(3, 3, 0)
		})
		b.Halt()
		p := b.MustBuild()
		// Strided cyclic permutation: each hop lands on a new line.
		for i := int64(0); i < n; i++ {
			next := (i + 97) % n
			p.Init[data+i*prog.WordSize] = uint64(data + next*prog.WordSize)
		}
		return p
	}
	m := config.LowEnd(config.FA1)
	const interval = 25

	s, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	s.EnableMetrics(interval, 0)
	var frames []obs.Frame
	s.OnInterval(func(f obs.Frame) { frames = append(frames, f) })
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.FastForwarded() == 0 {
		t.Fatal("fast-forward never engaged; segmentation test is vacuous")
	}
	if s.FastForwarded() < 2*interval {
		t.Fatalf("only %d cycles fast-forwarded; skips never cross a frame boundary", s.FastForwarded())
	}
	checkConservation(t, r, frames, interval)
}

// runObsParMode is runObsMode for the parallel execution loop. It
// omits the Chrome trace: tracing orders its events by the sequential
// stage walk, so Parallel refuses to run with a tracer attached
// (TestParallelRejectsTracing).
func runObsParMode(t *testing.T, m config.Machine, build func() *prog.Program, parallel, ff bool, interval int64) (*Result, []obs.Frame) {
	t.Helper()
	s, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	s.Parallel = parallel
	s.EventDriven = ff
	s.EnableMetrics(interval, 0)
	var frames []obs.Frame
	s.OnInterval(func(f obs.Frame) { frames = append(frames, f) })
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, frames
}

// TestObsFrameConservationParallel extends the conservation property to
// the parallel loop: frames must tile a parallel run exactly, on both
// cycle loops, and — because sampling happens on the coordinator after
// every per-cycle fold — each frame must be bit-identical to the one
// the sequential loop produces at the same boundary.
func TestObsFrameConservationParallel(t *testing.T) {
	w, err := workloads.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	m := config.HighEnd(config.SMT2)
	build := func() *prog.Program {
		return w.Build(m.Threads(), m.Chips, workloads.SizeTest)
	}
	const interval = 250
	for _, ff := range []bool{false, true} {
		seqR, seqFrames := runObsParMode(t, m, build, false, ff, interval)
		parR, parFrames := runObsParMode(t, m, build, true, ff, interval)
		checkConservation(t, parR, parFrames, interval)
		if !reflect.DeepEqual(seqR, parR) {
			t.Errorf("ff=%v: parallel result with observability differs from sequential:\n  seq: %v\n  par: %v", ff, seqR, parR)
		}
		if !reflect.DeepEqual(seqFrames, parFrames) {
			t.Errorf("ff=%v: parallel frames differ from sequential (seq %d frames, par %d)", ff, len(seqFrames), len(parFrames))
		}
	}
}

// TestMetricsRingDropsParallel checks that the ring's drop accounting
// is unchanged under parallel execution: same frames seen, same frames
// dropped, same newest retained index as the sequential run.
func TestMetricsRingDropsParallel(t *testing.T) {
	w, err := workloads.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	m := config.HighEnd(config.SMT2)
	run := func(parallel bool) (seen int, ring *obs.Ring) {
		s, err := New(m, w.Build(m.Threads(), m.Chips, workloads.SizeTest))
		if err != nil {
			t.Fatal(err)
		}
		s.Parallel = parallel
		ring = s.EnableMetrics(200, 4)
		s.OnInterval(func(obs.Frame) { seen++ })
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return seen, ring
	}
	seqSeen, seqRing := run(false)
	parSeen, parRing := run(true)
	if parSeen != seqSeen {
		t.Errorf("parallel run sampled %d frames, sequential %d", parSeen, seqSeen)
	}
	if seqSeen <= 4 {
		t.Skipf("run too short to overflow the ring (%d frames)", seqSeen)
	}
	if parRing.Dropped() != parSeen-4 {
		t.Errorf("parallel ring dropped %d frames, want %d", parRing.Dropped(), parSeen-4)
	}
	if parRing.Dropped() != seqRing.Dropped() {
		t.Errorf("drop accounting differs: parallel %d, sequential %d", parRing.Dropped(), seqRing.Dropped())
	}
	if !reflect.DeepEqual(seqRing.Frames(), parRing.Frames()) {
		t.Error("retained frames differ between sequential and parallel runs")
	}
}

// TestOnIntervalChains checks that multiple OnInterval registrations
// all fire, in registration order, and that OnInterval alone enables
// sampling at the default interval.
func TestOnIntervalChains(t *testing.T) {
	w, err := workloads.ByName("fmm")
	if err != nil {
		t.Fatal(err)
	}
	m := config.LowEnd(config.SMT1)
	s, err := New(m, w.Build(m.Threads(), m.Chips, workloads.SizeTest))
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	s.OnInterval(func(obs.Frame) { order = append(order, 1) })
	s.OnInterval(func(obs.Frame) { order = append(order, 2) })
	if s.Metrics() == nil {
		t.Fatal("OnInterval did not enable metrics")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) < 2 || len(order)%2 != 0 {
		t.Fatalf("callbacks fired %d times total", len(order))
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != 1 || order[i+1] != 2 {
			t.Fatalf("callbacks out of order at frame %d: %v", i/2, order[i:i+2])
		}
	}
	if got := s.Metrics().Len(); got != len(order)/2 {
		t.Errorf("ring retains %d frames, callbacks saw %d", got, len(order)/2)
	}
}

// TestMetricsRingDrops checks that a tiny ring drops oldest frames but
// keeps sampling (the OnInterval stream is unaffected).
func TestMetricsRingDrops(t *testing.T) {
	w, err := workloads.ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	m := config.LowEnd(config.SMT2)
	s, err := New(m, w.Build(m.Threads(), m.Chips, workloads.SizeTest))
	if err != nil {
		t.Fatal(err)
	}
	ring := s.EnableMetrics(200, 4)
	var seen int
	s.OnInterval(func(obs.Frame) { seen++ })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if seen <= 4 {
		t.Skipf("run too short to overflow the ring (%d frames)", seen)
	}
	if ring.Len() != 4 {
		t.Errorf("ring holds %d frames, want 4", ring.Len())
	}
	if ring.Dropped() != seen-4 {
		t.Errorf("ring dropped %d frames, want %d", ring.Dropped(), seen-4)
	}
	frames := ring.Frames()
	if frames[len(frames)-1].Index != seen-1 {
		t.Errorf("newest retained frame is %d, want %d", frames[len(frames)-1].Index, seen-1)
	}
}
