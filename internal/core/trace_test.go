package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/workloads"
)

// chromeEvent mirrors the trace_event fields the sink emits.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func runTraced(t *testing.T, m config.Machine, app string, setup func(*Simulator)) *Result {
	t.Helper()
	w, err := workloads.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, w.Build(m.Threads(), m.Chips, workloads.SizeTest))
	if err != nil {
		t.Fatal(err)
	}
	setup(s)
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestChromeTraceValidJSON runs a traced simulation and checks the
// output is one parseable JSON array containing metadata records,
// pipeline instants for fetch/issue/commit, and memory spans, with
// consistent pid/tid tracks.
func TestChromeTraceValidJSON(t *testing.T) {
	var buf bytes.Buffer
	m := config.HighEnd(config.SMT2) // multi-chip: remote misses guarantee memory spans
	runTraced(t, m, "ocean", func(s *Simulator) {
		s.TraceChromeTo(&buf, 0, 0)
	})

	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}

	byPh := map[string]int{}
	byName := map[string]int{}
	procNames := map[int]bool{}
	for _, e := range events {
		byPh[e.Ph]++
		byName[e.Name]++
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procNames[e.Pid] = true
			}
		case "i":
			if !procNames[e.Pid] {
				t.Fatalf("instant event on pid %d before its process_name metadata", e.Pid)
			}
		case "X":
			if e.Dur < 1 {
				t.Fatalf("span %q has non-positive duration %d", e.Name, e.Dur)
			}
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	for _, name := range []string{"process_name", "thread_name", "fetch", "issue", "commit"} {
		if byName[name] == 0 {
			t.Errorf("no %q events in trace", name)
		}
	}
	if byPh["X"] == 0 {
		t.Error("no memory spans in trace despite remote misses")
	}
	// One process per cluster across the machine.
	if want := m.Chips * m.Arch.Clusters; len(procNames) != want {
		t.Errorf("trace names %d processes, machine has %d clusters", len(procNames), want)
	}
}

// TestChromeTraceWindow checks that a window confined to [from, to)
// excludes events outside it and still closes the JSON array — and
// that an empty window yields a valid empty array.
func TestChromeTraceWindow(t *testing.T) {
	var buf bytes.Buffer
	runTraced(t, config.LowEnd(config.SMT1), "fmm", func(s *Simulator) {
		s.TraceChromeTo(&buf, 100, 200)
	})
	var events []chromeEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("windowed trace is not valid JSON: %v", err)
	}
	for _, e := range events {
		if e.Ph == "M" {
			continue
		}
		if e.Ts < 100 || e.Ts >= 200 {
			t.Fatalf("event %q at ts %d outside window [100,200)", e.Name, e.Ts)
		}
	}

	buf.Reset()
	runTraced(t, config.LowEnd(config.SMT1), "fmm", func(s *Simulator) {
		s.TraceChromeTo(&buf, 5, 5) // empty window
	})
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty-window trace is not valid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("empty window produced %d events", len(events))
	}
}

// TestTextTraceFlushed checks the buffered text sink reaches the
// underlying writer by the end of Run without an explicit caller-side
// flush, and that event lines carry the expected kinds.
func TestTextTraceFlushed(t *testing.T) {
	var buf bytes.Buffer
	runTraced(t, config.LowEnd(config.SMT1), "fmm", func(s *Simulator) {
		s.TraceTo(&buf, 0, 500)
	})
	out := buf.String()
	if out == "" {
		t.Fatal("text trace never flushed to the writer")
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("text trace does not end with a complete line")
	}
	kinds := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			t.Fatalf("malformed trace line %q", line)
		}
		kinds[fields[2]] = true
	}
	for _, k := range []string{"F", "I", "C"} {
		if !kinds[k] {
			t.Errorf("no %q events in text trace", k)
		}
	}
}
