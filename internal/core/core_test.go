package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/isa"
	"clustersmt/internal/parallel"
	"clustersmt/internal/prog"
)

// buildVectorSum builds a parallel kernel: each thread sums its chunk
// of data[] into partial[tid]; thread 0 reduces after a barrier.
func buildVectorSum(n int64, threads int) *prog.Program {
	b := prog.NewBuilder("vsum")
	b.GlobalWords("nthreads", []uint64{uint64(threads)})
	data := b.Global("data", n)
	b.Global("partial", 64)
	b.Global("out", 1)
	for i := int64(0); i < n; i++ {
		// Initialize via image below (builder Global is zeroed).
	}

	b.Mov(1, 30) // r1 = tid
	b.Ld(2, 0, b.MustAddr("nthreads"))
	b.Li(7, n)
	b.Mul(3, 1, 7)
	b.Div(3, 3, 2) // lo
	b.Addi(4, 1, 1)
	b.Mul(4, 4, 7)
	b.Div(4, 4, 2) // hi
	b.Li(5, 0)
	b.CountedLoop(3, 4, func() {
		b.Shli(6, 3, 3)
		b.Ld(8, 6, data)
		b.Add(5, 5, 8)
	})
	b.Shli(6, 1, 3)
	b.St(5, 6, b.MustAddr("partial"))
	b.Barrier(0)
	b.IfThread0(func() {
		b.Li(5, 0)
		b.Li(3, 0)
		b.CountedLoop(3, 2, func() {
			b.Shli(6, 3, 3)
			b.Ld(8, 6, b.MustAddr("partial"))
			b.Add(5, 5, 8)
		})
		b.St(5, 0, b.MustAddr("out"))
	})
	b.Halt()
	p := b.MustBuild()
	for i := int64(0); i < n; i++ {
		p.Init[p.SymbolAddr("data")+i*prog.WordSize] = uint64(i)
	}
	return p
}

func runOn(t *testing.T, m config.Machine, p *prog.Program) *Result {
	t.Helper()
	sim, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	sim.MaxCycles = 50_000_000
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleThreadSequentialProgram(t *testing.T) {
	b := prog.NewBuilder("seq")
	out := b.Global("out", 1)
	b.Li(1, 0)
	b.Li(2, 100)
	b.Li(3, 0)
	b.CountedLoop(1, 2, func() {
		b.Add(3, 3, 1)
	})
	b.St(3, 0, out)
	b.Halt()
	p := b.MustBuild()

	m := config.LowEnd(config.FA1)
	sim, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Mem().Load(p.SymbolAddr("out")); got != 4950 {
		t.Fatalf("out = %d, want 4950", got)
	}
	if res.Committed == 0 || res.Cycles == 0 {
		t.Fatal("no progress recorded")
	}
	if res.IPC <= 0 || res.IPC > 8 {
		t.Fatalf("IPC = %v out of range", res.IPC)
	}
}

// TestTimingMatchesFunctional: the timing simulator must leave memory in
// exactly the same state as the pure-functional reference for every
// architecture, because both drive the same functional engine.
func TestTimingMatchesFunctional(t *testing.T) {
	const n = 64
	for _, arch := range config.AllArchs {
		m := config.LowEnd(arch)
		p := buildVectorSum(n, m.Threads())
		ref, err := parallel.RunFunctional(p, m.Threads(), 0)
		if err != nil {
			t.Fatalf("%s: functional: %v", arch.Name, err)
		}
		want := ref.ReadWord(p, "out", 0)

		p2 := buildVectorSum(n, m.Threads())
		sim, err := New(m, p2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		got := sim.Mem().Load(p2.SymbolAddr("out"))
		if got != want {
			t.Errorf("%s: out = %d, functional = %d", arch.Name, got, want)
		}
		if want != n*(n-1)/2 {
			t.Fatalf("reference itself wrong: %d", want)
		}
	}
}

// TestSlotConservationEndToEnd: total accounted slots must equal
// chip issue width (8) x clusters' share x cycles.
func TestSlotConservationEndToEnd(t *testing.T) {
	for _, arch := range []config.Arch{config.FA8, config.SMT2, config.SMT1} {
		m := config.LowEnd(arch)
		p := buildVectorSum(64, m.Threads())
		res := runOn(t, m, p)
		want := float64(8 * res.Cycles * int64(m.Chips))
		got := res.Slots.TotalSlots()
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("%s: slots = %v, want %v", arch.Name, got, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	m := config.LowEnd(config.SMT2)
	r1 := runOn(t, m, buildVectorSum(64, m.Threads()))
	r2 := runOn(t, m, buildVectorSum(64, m.Threads()))
	if r1.Cycles != r2.Cycles || r1.Committed != r2.Committed {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d cycles/instrs",
			r1.Cycles, r1.Committed, r2.Cycles, r2.Committed)
	}
}

func TestMultiChipRunsAndMatchesFunctional(t *testing.T) {
	m := config.HighEnd(config.SMT2) // 32 threads
	p := buildVectorSum(128, m.Threads())
	sim, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	sim.MaxCycles = 50_000_000
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Mem().Load(p.SymbolAddr("out")); got != 128*127/2 {
		t.Fatalf("out = %d", got)
	}
	if res.MemStats.ByClass[4]+res.MemStats.ByClass[5] == 0 {
		t.Error("4-chip run produced no remote accesses")
	}
	if res.NetMessages == 0 {
		t.Error("no network traffic on a 4-chip machine")
	}
}

// TestMoreThreadsFinishFasterOnParallelKernel: SMT2 with 8 threads must
// beat FA1 with 1 thread on an embarrassingly parallel kernel.
func TestParallelismHelps(t *testing.T) {
	pFA1 := buildVectorSum(512, 1)
	pSMT2 := buildVectorSum(512, 8)
	r1 := runOn(t, config.LowEnd(config.FA1), pFA1)
	r2 := runOn(t, config.LowEnd(config.SMT2), pSMT2)
	if r2.Cycles >= r1.Cycles {
		t.Errorf("SMT2/8t = %d cycles, FA1/1t = %d cycles: parallelism did not help",
			r2.Cycles, r1.Cycles)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	b := prog.NewBuilder("loop")
	b.Li(1, 0)
	b.Li(2, 1000)
	b.CountedLoop(1, 2, func() { b.Nop() })
	b.Halt()
	res := runOn(t, config.LowEnd(config.FA1), b.MustBuild())
	if res.MispredictRate() > 0.05 {
		t.Errorf("mispredict rate = %.3f on a tight loop", res.MispredictRate())
	}
}

func TestSyncSlotsAppearWhenSerial(t *testing.T) {
	// Thread 0 does lots of work; other threads go straight to the
	// barrier: their slots must show up as sync.
	b := prog.NewBuilder("serial")
	b.IfThread0(func() {
		b.Li(1, 0)
		b.Li(2, 2000)
		b.CountedLoop(1, 2, func() {
			b.Mul(3, 1, 1)
		})
	})
	b.Barrier(0)
	b.Halt()
	m := config.LowEnd(config.FA8)
	res := runOn(t, m, b.MustBuild())
	if res.Slots.Counts[2] == 0 { // stats.Sync
		t.Error("no sync slots on a serial-section kernel")
	}
	if res.BarrierWaits != 1 {
		t.Errorf("barrier episodes = %d, want 1", res.BarrierWaits)
	}
}

func TestLockContentionSerializes(t *testing.T) {
	b := prog.NewBuilder("lock")
	cnt := b.Global("cnt", 1)
	b.Li(1, 0)
	b.Li(2, 50)
	b.CountedLoop(1, 2, func() {
		b.Lock(1)
		b.Ld(3, 0, cnt)
		b.Addi(3, 3, 1)
		b.St(3, 0, cnt)
		b.Unlock(1)
	})
	b.Halt()
	p := b.MustBuild()
	m := config.LowEnd(config.FA8) // 8 threads
	sim, _ := New(m, p)
	sim.MaxCycles = 50_000_000
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Mem().Load(p.SymbolAddr("cnt")); got != 8*50 {
		t.Fatalf("cnt = %d, want 400", got)
	}
	if res.LockAcquires != 400 {
		t.Errorf("acquires = %d", res.LockAcquires)
	}
	if res.Slots.Counts[2] == 0 {
		t.Error("no sync slots under lock contention")
	}
}

func TestRunTwicePanicsGracefully(t *testing.T) {
	p := buildVectorSum(16, 1)
	sim, _ := New(config.LowEnd(config.FA1), p)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("second Run must fail")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	b := prog.NewBuilder("spin")
	b.Label("top")
	b.Jump("top")
	b.Halt()
	sim, _ := New(config.LowEnd(config.FA1), b.MustBuild())
	sim.MaxCycles = 1000
	if _, err := sim.Run(); err == nil {
		t.Fatal("livelock not caught")
	}
}

func TestResultStringNonEmpty(t *testing.T) {
	res := runOn(t, config.LowEnd(config.FA1), buildVectorSum(16, 1))
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestICountFetchPolicy(t *testing.T) {
	// ICOUNT must produce a valid, deterministic run and keep the
	// functional result identical; on the centralized SMT it should not
	// be worse than round-robin by more than noise (it exists to help).
	m := config.LowEnd(config.SMT1)
	run := func(icount bool) *Result {
		p := buildVectorSum(256, m.Threads())
		sim, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		sim.SetICountFetch(icount)
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := sim.Mem().Load(p.SymbolAddr("out")); got != 256*255/2 {
			t.Fatalf("icount=%v: wrong result %d", icount, got)
		}
		return res
	}
	rr := run(false)
	ic := run(true)
	if ic.Committed != rr.Committed {
		t.Fatalf("instruction counts differ: %d vs %d", ic.Committed, rr.Committed)
	}
	if float64(ic.Cycles) > 1.25*float64(rr.Cycles) {
		t.Errorf("ICOUNT much worse than round-robin: %d vs %d cycles", ic.Cycles, rr.Cycles)
	}
}

func TestPredictorSizeConfigurable(t *testing.T) {
	m := config.LowEnd(config.FA1)
	m.Arch.PredictorEntries = 16
	m.Arch.BTBEntries = 16
	p := buildVectorSum(64, 1)
	sim, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestClockFactor pins the §5.2 cycle-time model.
func TestClockFactor(t *testing.T) {
	if config.SMT1.ClockFactor() != 0.5 || config.FA1.ClockFactor() != 0.5 {
		t.Error("8-issue clusters must pay 2x cycle time")
	}
	for _, a := range []config.Arch{config.FA8, config.FA4, config.FA2, config.SMT4, config.SMT2} {
		if a.ClockFactor() != 1.0 {
			t.Errorf("%s: clock factor %v, want 1.0", a.Name, a.ClockFactor())
		}
	}
}

// TestCommitIsPerThreadInOrder: within each thread, instructions commit
// in program order (checked via a per-thread sequence trace kernel that
// stores an incrementing counter; the final memory must hold the last
// value, and total commits must equal functional steps).
func TestCommitMatchesFunctionalInstructionCount(t *testing.T) {
	for _, arch := range []config.Arch{config.FA8, config.SMT2, config.SMT1} {
		m := config.LowEnd(arch)
		p := buildVectorSum(64, m.Threads())
		ref, err := parallel.RunFunctional(buildVectorSum(64, m.Threads()), m.Threads(), 0)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != ref.Steps {
			t.Errorf("%s: committed %d != functional %d", arch.Name, res.Committed, ref.Steps)
		}
	}
}

// TestStoreForwarding: a load immediately after a same-address store
// must forward from the window rather than going to memory.
func TestStoreForwarding(t *testing.T) {
	b := prog.NewBuilder("fwd")
	a := b.Global("a", 1)
	b.Li(1, 0)
	b.Li(2, 200)
	b.CountedLoop(1, 2, func() {
		b.St(1, 0, a)
		b.Ld(3, 0, a) // should forward
	})
	b.Halt()
	m := config.LowEnd(config.FA1)
	sim, err := New(m, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ForwardedLoads < 100 {
		t.Errorf("forwarded loads = %d, want most of 200", res.ForwardedLoads)
	}
}

// TestUnpipelinedDivOccupancy: back-to-back divides on a 1-FP-unit
// cluster must serialize at the divide latency.
func TestUnpipelinedDivOccupancy(t *testing.T) {
	build := func(op func(b *prog.Builder)) *prog.Program {
		b := prog.NewBuilder("div")
		b.Fli(1, 3.0)
		b.Fli(2, 1.5)
		b.Li(1, 0)
		b.Li(2, 100)
		b.CountedLoop(1, 2, func() { op(b) })
		b.Halt()
		return b.MustBuild()
	}
	m := config.LowEnd(config.FA8) // 1 FP unit per cluster
	run := func(p *prog.Program) int64 {
		sim, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	// Independent divides (different destinations) still occupy the
	// single unpipelined FP unit: ~7 cycles each.
	divCycles := run(build(func(b *prog.Builder) {
		b.Fdiv(3, 1, 2)
		b.Fdiv(4, 1, 2)
	}))
	mulCycles := run(build(func(b *prog.Builder) {
		b.Fmul(3, 1, 2)
		b.Fmul(4, 1, 2)
	}))
	if float64(divCycles) < 2.5*float64(mulCycles) {
		t.Errorf("unpipelined divides not serializing: div=%d mul=%d cycles", divCycles, mulCycles)
	}
}

// TestRenamePoolConservation: after a run, every cluster's rename pools
// must be back at their configured capacity (no leaks).
func TestRenamePoolConservation(t *testing.T) {
	for _, arch := range []config.Arch{config.FA8, config.SMT2, config.SMT1} {
		m := config.LowEnd(arch)
		sim, err := New(m, buildVectorSum(128, m.Threads()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		for _, cl := range sim.clusters {
			if cl.renameIntFree != arch.RenameInt || cl.renameFPFree != arch.RenameFP {
				t.Errorf("%s: rename pool leak: int %d/%d fp %d/%d",
					arch.Name, cl.renameIntFree, arch.RenameInt, cl.renameFPFree, arch.RenameFP)
			}
			if len(cl.window) != 0 || cl.iqCount != 0 {
				t.Errorf("%s: window not drained: %d entries, iq %d", arch.Name, len(cl.window), cl.iqCount)
			}
		}
	}
}

func TestTraceOutput(t *testing.T) {
	b := prog.NewBuilder("tr")
	b.Li(1, 1)
	b.Add(2, 1, 1)
	b.Halt()
	sim, err := New(config.LowEnd(config.FA1), b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	sim.TraceTo(&buf, 0, 0)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{" F ", " I ", " C ", "addi r1, r0, 1", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Every fetched instruction must also issue and commit: equal
	// event counts.
	f := strings.Count(out, " F ")
	i := strings.Count(out, " I ")
	c := strings.Count(out, " C ")
	if f != i || i != c || f != 3 {
		t.Errorf("event counts F=%d I=%d C=%d, want 3 each", f, i, c)
	}
}

func TestTraceWindowBounds(t *testing.T) {
	b := prog.NewBuilder("tr")
	b.Li(1, 0)
	b.Li(2, 50)
	b.CountedLoop(1, 2, func() { b.Nop() })
	b.Halt()
	sim, err := New(config.LowEnd(config.FA1), b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	sim.TraceTo(&buf, 5, 8)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var cyc int64
		if _, err := fmt.Sscanf(line, "c%d", &cyc); err != nil {
			t.Fatalf("unparseable trace line %q", line)
		}
		if cyc < 5 || cyc >= 8 {
			t.Errorf("event outside trace window: %q", line)
		}
	}
}

// TestStructuralVotes: a burst of independent FP work on a cluster with
// one FP unit must produce structural-hazard slots.
func TestStructuralVotes(t *testing.T) {
	b := prog.NewBuilder("fpburst")
	b.Fli(0, 1.5)
	b.Li(1, 0)
	b.Li(2, 400)
	b.CountedLoop(1, 2, func() {
		for d := 1; d <= 6; d++ {
			b.Fmul(isa.Reg(d), 0, 0)
		}
	})
	b.Halt()
	// FA1: 8 issue slots but only 4 FP units — with 6 ready multiplies
	// per iteration the FP units bind before issue width, which is the
	// structural-hazard class. (Narrower clusters never show it: their
	// issue width binds first.)
	res := runOn(t, config.LowEnd(config.FA1), b.MustBuild())
	if res.Slots.Counts[6] == 0 { // stats.Structural
		t.Error("no structural votes on an FP-unit-bound kernel")
	}
}

// TestControlVotesOnUnpredictableBranches: data-dependent branches
// produce mispredicts, which must surface as control slots and a
// mispredict rate well above the loop-branch baseline.
func TestControlVotesOnUnpredictableBranches(t *testing.T) {
	b := prog.NewBuilder("branchy")
	b.Li(1, 0)
	b.Li(2, 2000)
	b.Li(5, 0x9E3779B9)
	b.CountedLoop(1, 2, func() {
		// Cheap LCG; branch on a pseudo-random bit.
		b.Li(6, 1103515245)
		b.Mul(5, 5, 6)
		b.Addi(5, 5, 12345)
		b.Shri(7, 5, 16)
		b.Andi(7, 7, 1)
		b.Beq(7, 0, ".taken")
		b.Nop()
		b.Label(".taken")
		b.Nop()
	})
	b.Halt()
	res := runOn(t, config.LowEnd(config.FA1), b.MustBuild())
	if res.MispredictRate() < 0.10 {
		t.Errorf("mispredict rate %.3f too low for random branches", res.MispredictRate())
	}
	if res.Slots.Counts[3] == 0 { // stats.Control
		t.Error("no control slots despite mispredicts")
	}
}

// TestMemoryVotesOnMissChain: dependent loads that miss the L1 must
// surface as memory-hazard slots.
func TestMemoryVotesOnMissChain(t *testing.T) {
	b := prog.NewBuilder("chase")
	// Pointer chase across 4096 words (32KB... strided to defeat the
	// line): next = mem[next].
	n := int64(8192)
	data := b.Global("chain", n)
	b.Li(1, 0)
	b.Li(2, 2000)
	b.Li(3, data)
	b.CountedLoop(1, 2, func() {
		b.Ld(3, 3, 0)
	})
	b.Halt()
	p := b.MustBuild()
	// Build a strided cyclic permutation: element i points to
	// (i + 97 words) mod n, each hop a new line.
	for i := int64(0); i < n; i++ {
		next := (i + 97) % n
		p.Init[data+i*prog.WordSize] = uint64(data + next*prog.WordSize)
	}
	res := runOn(t, config.LowEnd(config.FA1), p)
	if res.Slots.Fraction(5) < 0.3 { // stats.Memory
		t.Errorf("memory fraction %.3f too low for a pointer chase", res.Slots.Fraction(5))
	}
}

// TestPerClusterStats: the per-cluster breakdowns must sum to the
// machine-wide slot accounting.
func TestPerClusterStats(t *testing.T) {
	m := config.LowEnd(config.SMT2)
	res := runOn(t, m, buildVectorSum(64, m.Threads()))
	if len(res.PerCluster) != 2 {
		t.Fatalf("clusters = %d, want 2", len(res.PerCluster))
	}
	var sum float64
	for _, cs := range res.PerCluster {
		sum += cs.Slots.TotalSlots()
		if cs.Threads != 4 {
			t.Errorf("cluster %d.%d threads = %d", cs.Chip, cs.Cluster, cs.Threads)
		}
		if cs.Slots.Cycles != res.Cycles {
			t.Errorf("cluster cycles %d != machine %d", cs.Slots.Cycles, res.Cycles)
		}
	}
	if math.Abs(sum-res.Slots.TotalSlots()) > 1e-6*sum {
		t.Errorf("per-cluster slots %v != machine %v", sum, res.Slots.TotalSlots())
	}
}

// TestClusterIsolation: §3.3 — no resource sharing across clusters. A
// thread saturating its cluster's FP units must not slow a thread in
// the other cluster (FA2), while on the centralized SMT1 the same pair
// contends for the shared FP pool.
func TestClusterIsolation(t *testing.T) {
	// Thread 0: FP-saturating loop; thread 1: identical loop. Measure
	// the co-run against a solo run of one thread.
	build := func(both bool) *prog.Program {
		b := prog.NewBuilder("iso")
		b.GlobalWords("nthreads", []uint64{2})
		b.Fli(0, 1.1)
		if !both {
			// Thread 1 exits immediately.
			b.Bne(isa.RegTID, isa.RegZero, ".skip")
		}
		b.Li(1, 0)
		b.Li(2, 800)
		b.CountedLoop(1, 2, func() {
			for d := 1; d <= 6; d++ {
				b.Fmul(isa.Reg(d), 0, 0)
			}
		})
		if !both {
			b.Label(".skip")
		}
		b.Halt()
		return b.MustBuild()
	}
	cycles := func(arch config.Arch, both bool) int64 {
		res := runOn(t, config.LowEnd(arch), build(both))
		return res.Cycles
	}
	// FA2: co-run must cost essentially nothing (separate clusters).
	fa2Solo := cycles(config.FA2, false)
	fa2Both := cycles(config.FA2, true)
	if float64(fa2Both) > 1.10*float64(fa2Solo) {
		t.Errorf("FA2 co-run %d vs solo %d: clusters are leaking resources", fa2Both, fa2Solo)
	}
	// SMT1: both threads share 4 FP units; the co-run must be clearly
	// slower than its solo run.
	smt1Solo := cycles(config.SMT1, false)
	smt1Both := cycles(config.SMT1, true)
	if float64(smt1Both) < 1.25*float64(smt1Solo) {
		t.Errorf("SMT1 co-run %d vs solo %d: expected FP contention", smt1Both, smt1Solo)
	}
}
