package core

import (
	"fmt"

	"clustersmt/internal/alloc"
	"clustersmt/internal/coherence"
	"clustersmt/internal/isa"
)

// This file wires the pluggable allocation subsystem (internal/alloc)
// into the simulator: initial placement through Allocator.Place, and —
// for dynamic policies — an epoch loop that samples committed feedback
// between cycles, lets the policy propose migrations, and models each
// accepted move honestly: the thread's in-flight window drains through
// normal commit (fetch skips it), the move happens between cycles, and
// the thread then sits out a fixed pipeline-refill stall. Cache
// affinity loss needs no modeling of its own — caches are per chip, so
// a cross-chip move simply starts missing in the destination chip's
// cold cache.
//
// Determinism contract: every policy decision is a pure function of a
// snapshot built from committed per-epoch state in fixed (thread id /
// global cluster) order, taken between cycles. The per-chip parallel
// loop and the sequential loop therefore feed a policy byte-identical
// inputs at byte-identical cycles, and the whole run stays
// deterministic under both (guarded by TestAllocParallelDeterminism).

// MigrationColdStart is the fixed front-end penalty a migrated thread
// pays before fetching on its new cluster: the pipeline-refill cost of
// redirecting a hardware context, charged on top of the organic cache
// cold-start the per-chip cache model produces for cross-chip moves.
const MigrationColdStart = 50

// allocState is the runtime state of a dynamic allocation policy.
type allocState struct {
	pol      alloc.Allocator
	interval int64 // cycles per epoch
	nextAt   int64 // next boundary cycle
	epoch    uint64
	// migrations counts accepted (not merely proposed) migrations.
	migrations uint64

	// Previous-boundary counter snapshots, so each epoch's feedback is a
	// delta rather than a running total.
	prevThreadCommitted []uint64
	prevChipMem         []coherence.MemSnapshot
	// lastMigrated[tid] is the epoch at whose boundary the thread last
	// migrated (-1 = never); policies receive it as an age.
	lastMigrated []int64
}

// initAlloc resolves the machine's allocation policy for n threads. It
// returns the initial assignment (nil means the seed placement loop
// runs unchanged — the bit-identity guarantee for the default
// configuration) and arms the epoch state for dynamic policies.
func (s *Simulator) initAlloc(n int) ([]int, error) {
	a := s.Machine.Alloc.Normalize()
	if a.Policy == "" {
		return nil, nil
	}
	pol, err := alloc.New(a.Policy)
	if err != nil {
		return nil, err
	}
	infos := s.clusterInfos()
	assign := pol.Place(n, infos)
	if err := validAssignment(n, infos, assign); err != nil {
		return nil, fmt.Errorf("core: policy %q initial placement: %w", pol.Name(), err)
	}
	if pol.Dynamic() {
		last := make([]int64, n)
		for i := range last {
			last[i] = -1
		}
		s.alloc = &allocState{
			pol:                 pol,
			interval:            a.Epoch,
			nextAt:              a.Epoch,
			prevThreadCommitted: make([]uint64, n),
			prevChipMem:         make([]coherence.MemSnapshot, len(s.chips)),
			lastMigrated:        last,
		}
	}
	return assign, nil
}

// clusterInfos describes the machine's clusters for the alloc package.
func (s *Simulator) clusterInfos() []alloc.ClusterInfo {
	infos := make([]alloc.ClusterInfo, len(s.clusters))
	for i, cl := range s.clusters {
		infos[i] = alloc.ClusterInfo{
			GID:      cl.gid,
			Chip:     cl.chip,
			Index:    cl.idx,
			Capacity: cl.cfg.ThreadsPerCluster,
		}
	}
	return infos
}

// validAssignment checks that assign maps each of n threads to exactly
// one real cluster without exceeding any cluster's capacity.
func validAssignment(n int, infos []alloc.ClusterInfo, assign []int) error {
	if len(assign) != n {
		return fmt.Errorf("assignment covers %d of %d threads", len(assign), n)
	}
	occ := make([]int, len(infos))
	for tid, g := range assign {
		if g < 0 || g >= len(infos) {
			return fmt.Errorf("thread %d assigned to cluster %d of %d", tid, g, len(infos))
		}
		occ[g]++
		if occ[g] > infos[g].Capacity {
			return fmt.Errorf("cluster %d over capacity %d", g, infos[g].Capacity)
		}
	}
	return nil
}

// SetAssignment re-places the threads of a fresh (never stepped)
// simulator according to assign — the oracle policy's entry point: the
// harness searches for the best static assignment offline
// (SearchStatic) and installs it here before Run.
func (s *Simulator) SetAssignment(assign []int) error {
	if s.cycle != 0 || s.committed != 0 {
		return fmt.Errorf("core: SetAssignment requires a fresh simulator")
	}
	if err := validAssignment(len(s.threads), s.clusterInfos(), assign); err != nil {
		return fmt.Errorf("core: SetAssignment: %w", err)
	}
	for _, cl := range s.clusters {
		cl.threads = cl.threads[:0]
	}
	for tid, t := range s.threads {
		cl := s.clusters[assign[tid]]
		t.cluster = cl
		t.chip = cl.chip
		cl.threads = append(cl.threads, t)
	}
	return nil
}

// Assignment returns each thread's current cluster GID in thread-id
// order (tests and tools).
func (s *Simulator) Assignment() []int {
	out := make([]int, len(s.threads))
	for i, t := range s.threads {
		out[i] = t.cluster.gid
	}
	return out
}

// allocEpoch runs one epoch boundary: build the committed feedback
// snapshot in fixed order, let the policy propose migrations, validate
// and accept them, and schedule the next boundary. Runs between cycles
// on the coordinator only — never inside a parallel phase.
func (s *Simulator) allocEpoch() {
	a := s.alloc
	a.epoch++

	snap := alloc.Snapshot{Cycle: s.cycle, Epoch: a.epoch}
	chipMem := make([]coherence.MemSnapshot, len(s.chips))
	for chip := range s.chips {
		chipMem[chip] = s.msys.ChipSnapshot(chip, s.cycle)
	}
	snap.Clusters = make([]alloc.ClusterSample, len(s.clusters))
	for i, cl := range s.clusters {
		cur, prev := chipMem[cl.chip], a.prevChipMem[cl.chip]
		snap.Clusters[i] = alloc.ClusterSample{
			ClusterInfo: alloc.ClusterInfo{
				GID:      cl.gid,
				Chip:     cl.chip,
				Index:    cl.idx,
				Capacity: cl.cfg.ThreadsPerCluster,
			},
			L1Hits:   cur.L1Hits - prev.L1Hits,
			L1Misses: cur.L1Misses - prev.L1Misses,
			L2Hits:   cur.L2Hits - prev.L2Hits,
			L2Misses: cur.L2Misses - prev.L2Misses,
			// Occupancy is instantaneous (not a counter): the boundary
			// value itself is the saturation signal.
			MSHROccupancy: uint64(cur.MSHROccupancy),
		}
	}
	a.prevChipMem = chipMem

	snap.Threads = make([]alloc.ThreadSample, len(s.threads))
	for i, t := range s.threads {
		d := t.committed - a.prevThreadCommitted[i]
		a.prevThreadCommitted[i] = t.committed
		since := int64(-1)
		if a.lastMigrated[i] >= 0 {
			since = int64(a.epoch) - a.lastMigrated[i]
		}
		g := t.cluster.gid
		snap.Threads[i] = alloc.ThreadSample{
			ID:        t.id,
			Cluster:   g,
			Committed: d,
			InWindow:  t.inWindow,
			// A mid-drain thread reads as blocked so no policy tries to
			// move it twice.
			Blocked:      t.block != blockNone || t.migrateTo != nil,
			Finished:     t.done(),
			SinceMigrate: since,
		}
		cs := &snap.Clusters[g]
		if !t.done() {
			cs.Threads++
		}
		cs.InFlight += t.inWindow
		cs.Committed += d
	}

	for _, mg := range a.pol.Rebalance(&snap) {
		s.applyMigration(mg)
	}
	a.nextAt = s.cycle + a.interval
}

// applyMigration validates one proposed migration and, when sound,
// marks the thread draining. Invalid proposals are dropped — dropping
// is deterministic, so a buggy policy degrades performance, never
// correctness.
func (s *Simulator) applyMigration(mg alloc.Migration) bool {
	if mg.Thread < 0 || mg.Thread >= len(s.threads) {
		return false
	}
	t := s.threads[mg.Thread]
	if t.done() || t.migrateTo != nil || t.block != blockNone {
		return false
	}
	if mg.To < 0 || mg.To >= len(s.clusters) {
		return false
	}
	dst := s.clusters[mg.To]
	if dst == t.cluster {
		return false
	}
	live := 0
	for _, dt := range dst.threads {
		if !dt.done() {
			live++
		}
	}
	if live+dst.migrateIn+1 > dst.cfg.ThreadsPerCluster {
		return false
	}
	t.migrateTo = dst
	dst.migrateIn++
	s.migrating = append(s.migrating, t)
	s.alloc.lastMigrated[t.id] = int64(s.alloc.epoch)
	s.alloc.migrations++
	return true
}

// completeMigrations moves every drained marked thread to its
// destination cluster. It runs between the commit and issue stages of
// a cycle — after the drain can finish, before the new cluster could
// act — at the same point in both the sequential and parallel loops.
// A thread that halts while draining cancels its move.
func (s *Simulator) completeMigrations(now int64) bool {
	moved := false
	keep := s.migrating[:0]
	for _, t := range s.migrating {
		switch {
		case t.done():
			t.migrateTo.migrateIn--
			t.migrateTo = nil
		case t.inWindow == 0:
			s.moveThread(t, now)
			moved = true
		default:
			keep = append(keep, t)
		}
	}
	for i := len(keep); i < len(s.migrating); i++ {
		s.migrating[i] = nil
	}
	s.migrating = keep
	return moved
}

// moveThread performs the between-cycles re-homing of a fully drained
// thread: splice it out of the source cluster, append it to the
// destination, discard rename/store-forwarding history (it refers to
// the old cluster's entries; every producer is committed by now), and
// charge the pipeline-refill stall.
func (s *Simulator) moveThread(t *threadCtx, now int64) {
	src, dst := t.cluster, t.migrateTo
	for i, st := range src.threads {
		if st == t {
			src.threads = append(src.threads[:i], src.threads[i+1:]...)
			break
		}
	}
	// Keep the round-robin cursor in range for the shrunken list (the
	// pick arithmetic is modular, but snapshots validate the bound).
	if n := len(src.threads); n > 0 {
		src.fetchRR %= n
	} else {
		src.fetchRR = 0
	}
	dst.threads = append(dst.threads, t)
	dst.migrateIn--
	t.cluster = dst
	t.chip = dst.chip
	t.migrateTo = nil
	t.lastWriterInt = [isa.NumIntRegs]*entry{}
	t.lastWriterFP = [isa.NumFPRegs]*entry{}
	t.lastStore = nil
	t.block = blockMigrate
	t.migrateReady = now + MigrationColdStart
}

// ---- oracle search ----

// SearchStatic profiles candidate static assignments over a prefix of
// prefixCycles and returns the best and worst performers — the oracle
// upper bound and the adversarial baseline the dynamic policies are
// measured between. mk must build a fresh, identically configured
// simulator on every call. Candidates are enumerated canonically
// (clusters within a chip, and whole empty chips, are interchangeable,
// so symmetric duplicates are skipped) and capped at maxCandidates;
// score is committed instructions at the prefix boundary, ties broken
// by enumeration order, so the search is fully deterministic.
func SearchStatic(mk func() (*Simulator, error), prefixCycles int64, maxCandidates int) (best, worst []int, err error) {
	probe, err := mk()
	if err != nil {
		return nil, nil, err
	}
	cands := enumerateAssignments(len(probe.threads), probe.clusterInfos(), maxCandidates)
	var bestScore, worstScore uint64
	for i, cand := range cands {
		sim, err := mk()
		if err != nil {
			return nil, nil, err
		}
		if err := sim.SetAssignment(cand); err != nil {
			return nil, nil, err
		}
		if err := sim.RunTo(prefixCycles); err != nil {
			return nil, nil, err
		}
		score := sim.committed
		if i == 0 || score > bestScore {
			bestScore, best = score, cand
		}
		if i == 0 || score < worstScore {
			worstScore, worst = score, cand
		}
	}
	return best, worst, nil
}

// enumerateAssignments lists canonical thread-to-cluster assignments:
// every placement of n threads onto the clusters respecting capacity,
// up to within-chip cluster interchange and whole-chip interchange.
// Enumeration is depth-first in thread-id order, truncated at cap.
func enumerateAssignments(n int, infos []alloc.ClusterInfo, cap int) [][]int {
	var out [][]int
	assign := make([]int, n)
	occ := make([]int, len(infos))
	chipOcc := map[int]int{}
	var rec func(tid int)
	rec = func(tid int) {
		if len(out) >= cap {
			return
		}
		if tid == n {
			out = append(out, append([]int(nil), assign...))
			return
		}
		usedEmptyChip := false
		for g, c := range infos {
			if occ[g] >= c.Capacity {
				continue
			}
			if occ[g] == 0 {
				// An empty cluster is interchangeable with any earlier
				// empty cluster on the same chip; an entirely empty chip
				// with any other entirely empty chip.
				dup := false
				for g2 := 0; g2 < g; g2++ {
					if infos[g2].Chip == c.Chip && occ[g2] == 0 {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				if chipOcc[c.Chip] == 0 {
					if usedEmptyChip {
						continue
					}
					usedEmptyChip = true
				}
			}
			assign[tid] = g
			occ[g]++
			chipOcc[c.Chip]++
			rec(tid + 1)
			occ[g]--
			chipOcc[c.Chip]--
		}
	}
	rec(0)
	return out
}
