package core

import (
	"math"

	"clustersmt/internal/isa"
	"clustersmt/internal/parallel"
	"clustersmt/internal/stats"
)

// This file implements the event-driven quiescence fast-forward. When a
// step makes no progress anywhere — nothing commits, issues, resumes or
// fetches on any cluster — the machine is frozen except for the passage
// of time: every state transition left is pinned to a known future
// cycle (an issued instruction completing, a dispatched instruction
// clearing the front-end delay, a functional unit freeing). Run can
// therefore jump straight to the earliest such cycle, provided the
// skipped cycles are accounted exactly as cycle-by-cycle stepping would
// have: same slot votes per cluster per cycle (they are provably
// constant while quiescent), same per-cycle counter mutations (commit
// round-robin, lock-conflict polls, fetch-stall counters, running-
// thread accumulation).
//
// The contract is bit-identity, not approximation: the differential
// tests in fastforward_test.go run both modes over every preset and
// assert reflect.DeepEqual on the full Result.

// noEvent means a cluster is quiescent with no self-scheduled event —
// it can only be woken by another cluster (e.g. a barrier release).
const noEvent = int64(math.MaxInt64)

// fetchStall classifies what a quiescent cluster's front end does every
// skipped cycle, so fastForward can replay its counters in bulk.
type fetchStall uint8

const (
	stallNone   fetchStall = iota // no fetchable thread at all
	stallWindow                   // pick bounces off a full window/queue
	stallRename                   // every fetchable thread lacks a rename reg
)

// ffStalledCluster records one cluster whose fetch stage needs per-cycle
// stall replay across a skip.
type ffStalledCluster struct {
	cl   *cluster
	kind fetchStall
}

// clusterQuiescent performs a non-mutating replay of what step() would
// do on cl at cycle now. It returns quiet=false if any stage would make
// progress or touch per-thread state the bulk path cannot replay. When
// quiet, it returns the cluster's earliest event cycle, fills votes
// with the hazard tally every skipped cycle would record, and registers
// replay work (lock spinners' failed polls, fetch-stall counters) on s.
//
// The stages are checked cheapest-first — per-thread scans before the
// O(window) issue scan — so a busy machine pays little for a failed
// quiescence probe.
func (s *Simulator) clusterQuiescent(cl *cluster, now int64, votes *stats.Votes) (quiet bool, next int64) {
	next = noEvent
	event := func(at int64) {
		if at < next {
			next = at
		}
	}

	// Commit stage: any thread with a completed instruction at its
	// in-order commit point retires it.
	for _, t := range cl.threads {
		if t.frontEvent <= now {
			return false, 0
		}
	}

	// Fetch stage: blocked threads may resume; runnable threads fetch.
	winFull := len(cl.window)-cl.zombies >= cl.cfg.WindowEntries || cl.iqCount >= cl.cfg.WindowEntries
	stall := stallNone
	for _, t := range cl.threads {
		switch t.block {
		case blockBranch:
			// Resolution is the branch's completion; the branch entry is
			// in flight, so the window scan below collects its event.
			if t.pendingBranch.done(now) {
				return false, 0
			}
		case blockLock:
			// Dry-run the unblock poll: TryLock would succeed (and
			// mutate) iff the lock is free. A held lock cannot be
			// released while the whole machine is quiescent — only an
			// Unlock fetched on some cluster releases it.
			if t.lockGranted || t.sync.LockOwner(t.fn.Peek().Imm) == parallel.NoOwner {
				return false, 0
			}
			s.ffSpinners = append(s.ffSpinners, t)
		case blockBarrier:
			// Same reasoning: no thread can Arrive while quiescent.
			if t.sync.Released(t.fn.Peek().Imm, t.barTarget) {
				return false, 0
			}
		case blockMigrate:
			// Post-migration refill stall: lifts at a known cycle.
			if now >= t.migrateReady {
				return false, 0
			}
			event(t.migrateReady)
		case blockNone:
			if t.migrateTo != nil {
				// Draining for a migration: fetch skips it; its in-flight
				// completions are window events. Once drained the move
				// itself (between cycles) is progress.
				if t.inWindow == 0 {
					return false, 0
				}
				continue
			}
			if t.fn.Halted {
				continue // draining or done; never fetches again
			}
			if winFull {
				// The fetch attempt hits the capacity check before
				// anything thread-specific and charges only uniform
				// per-cycle stall counters, replayed in bulk.
				stall = stallWindow
				continue
			}
			// With window room the pick reaches the thread's next
			// instruction. Sync ops mutate or transition; an
			// instruction that clears the rename check would dispatch.
			// Only an every-fetchable-thread rename stall is frozen.
			in := t.fn.Peek()
			switch in.Op {
			case isa.OpLock, isa.OpUnlock, isa.OpBarrier:
				return false, 0
			}
			inf := in.Info()
			needInt := inf.WritesRD && in.RD != isa.RegZero
			needFP := inf.WritesFD
			if (needInt && cl.renameIntFree == 0) || (needFP && cl.renameFPFree == 0) {
				stall = stallRename
				continue
			}
			return false, 0
		}
	}
	switch stall {
	case stallWindow:
		s.ffStalled = append(s.ffStalled, ffStalledCluster{cl, stallWindow})
	case stallRename:
		// The one picked thread votes Other each cycle (§4.1 rename
		// stalls), exactly as fetchFrom would.
		votes[stats.Other]++
		s.ffStalled = append(s.ffStalled, ffStalledCluster{cl, stallRename})
	}

	// Issue stage: replicate the issue path's vote logic without
	// issuing. Nothing may be issuable — an issuable entry is progress,
	// and for loads even the attempt mutates memory-system counters.
	if s.EventIssue {
		if !quiescentIssueEvent(cl, now, votes, event) {
			return false, 0
		}
	} else if !quiescentIssueScan(cl, now, votes, event) {
		return false, 0
	}

	cl.threadVotes(votes)
	return true, next
}

// quiescentIssueScan dry-runs the reference window scan (issue): per
// dispatched entry, the vote it would record this cycle, plus the
// future cycles that could change the verdict.
func quiescentIssueScan(cl *cluster, now int64, votes *stats.Votes, event func(int64)) bool {
	for _, e := range cl.window {
		if e.state != stateDispatched {
			// Issued and not yet done: completion is this entry's event.
			// Done but stuck behind program order: no event of its own.
			if e.state == stateIssued && e.completeAt > now {
				event(e.completeAt)
			}
			continue
		}
		if now < e.eligibleAt {
			// Still in decode/rename: silent (no vote) until eligible.
			event(e.eligibleAt)
			continue
		}
		ready, memWait := e.sourcesReady(now)
		if !ready {
			if memWait {
				votes[stats.Memory]++
			} else {
				votes[stats.Data]++
			}
			// The blocking producer is in this window; its completion
			// (or its own issue chain) is already an event above.
			continue
		}
		class := e.fuCl
		if cl.freeUnit(class, now) < 0 {
			votes[stats.Structural]++
			event(cl.nextUnitFree(class)) // all busy, so the min is > now
			continue
		}
		if e.isLoad {
			if st := e.forwardingStore(); st != nil && !st.done(now) {
				// Store-to-load dependence through memory (tryIssue votes
				// Data here); the store's completion is an event above.
				votes[stats.Data]++
				continue
			}
		}
		// Ready with a free unit: it would issue this cycle (or, for a
		// load, at least hit the memory system and bump its retry
		// accounting). Either way the cluster is not quiescent.
		return false
	}
	return true
}

// quiescentIssueEvent dry-runs the wakeup issue stage (issueEvent).
// The event drain is idempotent at a fixed cycle, so running it here
// leaves a subsequent step (on probe failure) unperturbed. After the
// drain, the ready list and waiting tallies are exactly what the scan
// would re-derive: ready entries are checked individually (their FU /
// pending-store verdicts can change without a wheel event), waiting
// entries vote in bulk, and the pending deque's head plus the wheel's
// earliest bucket bound every front-end transition, producer
// completion and in-flight completion — so no wakeup fires strictly
// inside a skip interval, which is what keeps the per-cycle votes
// constant while quiescent.
func quiescentIssueEvent(cl *cluster, now int64, votes *stats.Votes, event func(int64)) bool {
	cl.drainEvents(now)
	for _, e := range cl.ready {
		class := e.fuCl
		if cl.freeUnit(class, now) < 0 {
			votes[stats.Structural]++
			event(cl.nextUnitFree(class)) // all busy, so the min is > now
			continue
		}
		if e.isLoad {
			if st := e.forwardingStore(); st != nil && !st.done(now) {
				// The store's completion is a wheel event (wake pushes a
				// self event at every issue).
				votes[stats.Data]++
				continue
			}
		}
		return false
	}
	votes[stats.Memory] += float64(cl.waitMemN)
	votes[stats.Data] += float64(cl.waitDataN)
	if cl.pendingHead < len(cl.pending) {
		event(cl.pending[cl.pendingHead].eligibleAt)
	}
	event(cl.wheel.min())
	return true
}

// fastForward attempts a quiescence skip at the current cycle. It
// returns true if it advanced s.cycle — either to the machine's next
// event (with all skipped cycles accounted) or, when no event exists or
// it lies beyond MaxCycles (deadlock), straight to MaxCycles so Run's
// safety net fires without grinding through billions of idle steps (the
// error path discards all accounting).
func (s *Simulator) fastForward() bool {
	now := s.cycle
	if len(s.ffVotes) < len(s.clusters) {
		s.ffVotes = make([]stats.Votes, len(s.clusters))
	}
	votes := s.ffVotes[:len(s.clusters)]
	s.ffSpinners = s.ffSpinners[:0]
	s.ffStalled = s.ffStalled[:0]

	next := noEvent
	for i, cl := range s.clusters {
		votes[i].Reset()
		quiet, at := s.clusterQuiescent(cl, now, &votes[i])
		if !quiet {
			return false
		}
		if at < next {
			next = at
		}
	}

	// An allocation epoch boundary is an event too: the policy must
	// observe the machine at exactly the cycle it would under plain
	// stepping, so skips clamp to it (alloc.nextAt is always > now here —
	// the run loop fires the epoch before probing quiescence).
	if s.alloc != nil && s.alloc.nextAt < next {
		next = s.alloc.nextAt
	}

	if next >= s.MaxCycles {
		s.cycle = s.MaxCycles
		return true
	}
	if next <= now {
		// Defensive: every collected event is strictly in the future,
		// so this cannot happen; refuse to skip rather than loop.
		return false
	}

	n := next - now

	// Hoist the per-cycle slot rows out of the replay: the votes are
	// constant across the skip, so each cluster's divides happen once.
	if len(s.ffRows) < len(s.clusters) {
		s.ffRows = make([][stats.NumCategories]float64, len(s.clusters))
	}
	rows := s.ffRows[:len(s.clusters)]
	for i, cl := range s.clusters {
		rows[i] = stats.IdleRow(cl.cfg.IssueWidth, &votes[i])
	}

	if s.obs == nil {
		s.replaySkip(n, rows, votes)
	} else {
		// Metrics frames must land exactly on their boundaries, so the
		// skip is replayed in segments split at each due sample. Every
		// segment performs the identical per-cycle accounting in the
		// identical order a single full-span replay would (the per-cycle
		// loops are merely partitioned into contiguous runs), so the
		// results stay bit-identical — only the sampler observes the
		// boundary states in between.
		for n > 0 {
			seg := n
			if due := s.obs.nextAt - s.cycle; due > 0 && due < seg {
				seg = due
			}
			s.replaySkip(seg, rows, votes)
			n -= seg
			if s.cycle >= s.obs.nextAt {
				s.sample()
			}
		}
	}
	return true
}

// replaySkip charges n skipped quiescent cycles of accounting exactly
// as n step() calls would have, using the precomputed per-cluster slot
// rows and votes, and advances the clock. The machine-wide tally
// receives per-cycle interleaved cluster contributions (float addition
// is not associative, so the interleaving order matters for
// bit-identity); each cluster's own tally is a contiguous stream and
// takes the bulk path.
func (s *Simulator) replaySkip(n int64, rows [][stats.NumCategories]float64, votes []stats.Votes) {
	for c := int64(0); c < n; c++ {
		for i := range rows {
			s.slots.AddRow(&rows[i])
		}
	}
	for i, cl := range s.clusters {
		cl.slots.RecordIdleCycles(cl.cfg.IssueWidth, n, &votes[i])
		cl.commitRR += int(n) // commit() advances it every cycle
	}
	s.slots.AdvanceCycles(n)
	// running is integer-valued and the accumulator stays far below
	// 2^53, so the bulk add equals n repeated additions exactly (and a
	// segmented replay's partial adds sum to the same value).
	s.runningAccum += float64(n) * float64(s.running)
	for _, t := range s.ffSpinners {
		t.sync.LockConflicts += uint64(n) // one failed poll per cycle
	}
	for _, fc := range s.ffStalled {
		// Each skipped cycle the cluster picked one fetchable thread and
		// bounced off the stall: one fetch group, one stall counter, one
		// round-robin rotation per cycle. n is bounded by the longest
		// in-flight latency (a stalled cluster always has in-flight
		// instructions), so the pick replay loop stays short.
		fc.cl.fetchGroups += uint64(n)
		switch fc.kind {
		case stallWindow:
			fc.cl.windowFullStalls += uint64(n)
		case stallRename:
			fc.cl.renameStalls += uint64(n)
		}
		for i := int64(0); i < n; i++ {
			fc.cl.pickFetchThread()
		}
	}
	s.ffCycles += n
	s.cycle += n
}
