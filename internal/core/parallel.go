package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"clustersmt/internal/stats"
)

// This file implements the deterministic parallel execution mode: one
// goroutine per chip, stepping the machine in per-cycle lockstep.
//
// Soundness rests on the structure of one simulated cycle (see
// DESIGN.md §8). The coherence model resolves every cross-chip
// transaction instantly in simulator order, so the conservative
// lookahead horizon derived from the interconnect latencies
// (config.MemConfig.MinCrossChipLatency) collapses to a single cycle,
// and within the cycle the stages decompose:
//
//   - Phase A (parallel, per chip): commit + event drain. Commit never
//     reads the shared memory system — stores are deferred to per-
//     cluster queues — and all remaining commit/drain state is
//     cluster-local, so chips commute.
//   - Store drain (coordinator): the deferred stores execute in exact
//     global cluster order, which is precisely where the sequential
//     loop performs them (all commits precede all issues).
//   - Classification (coordinator): every ready load is probed against
//     its chip's L2 (non-mutating). If any load could miss past L2 —
//     i.e. reach the directory/interconnect, the only cross-chip state
//     — the whole issue/fetch phase falls back to the sequential
//     order for this cycle. Inclusion (L1⊆L2) plus the fact that no
//     concurrent-phase operation ever removes a line from an L2 make
//     the probe sound for the whole phase, not just the instant it
//     runs.
//   - Phase B (parallel when classified safe): issue + unblock + fetch
//     per chip, touching only chip-local memory state. The shared
//     synchronization controller is serialized by the turn protocol:
//     a cluster performing a sync operation first waits until every
//     lower-numbered cluster has finished its phase B, so lock grants
//     and barrier arrivals happen in exactly the sequential order.
//
// Machine-wide counters are sharded per chip and folded by the
// coordinator every cycle; the float issue-slot tally is replayed by
// the coordinator in cluster order from saved per-cluster votes, so
// even the non-associative float accounting is bit-identical.

// parPhase is the coordinator's instruction to the chip workers.
type parPhase uint8

const (
	parPhaseA    parPhase = iota // commit + event drain
	parPhaseB                    // issue + unblock + fetch
	parPhaseExit                 // shut down
)

// chipShard collects one chip's contributions to the machine-wide
// integer counters during a parallel phase; the coordinator folds the
// shards at the end of each cycle. The padding keeps adjacent chips'
// shards off each other's cache lines.
type chipShard struct {
	committed uint64
	forwarded uint64
	running   int64
	finished  int64
	_         [4]uint64
}

// parRunner owns the persistent chip workers and the rendezvous state.
// The coordinator (the goroutine inside Run, which doubles as chip 0's
// worker) publishes a phase by writing the plain fields and then
// release-bumping gen; workers acquire-spin on gen, run the phase, and
// release-store their completion into chipDone.
type parRunner struct {
	s *Simulator

	gen      atomic.Int64   // phase generation, bumped by the coordinator
	chipDone []atomic.Int64 // [chip] last generation the worker completed

	// clusterGen[gid] is release-stored by a cluster's worker when the
	// cluster finishes its parallel phase B; ensureTurn acquire-spins
	// on it to serialize sync operations in global cluster order.
	clusterGen []atomic.Int64

	// Written by the coordinator before each gen bump; read by workers
	// after the acquire (release/acquire on gen orders them).
	phase  parPhase
	parB   bool  // phase B runs on the workers (vs coordinator fallback)
	curGen int64 // generation of the current phase

	shards  []chipShard   // [chip]
	votes   []stats.Votes // [gid] phase-B hazard votes
	issued  []int         // [gid] phase-B issue counts
	activeA []bool        // [chip] commit progress
	activeB []bool        // [gid] issue/unblock/fetch progress
	hasTurn []bool        // [chip] worker already holds the sync turn
}

func (r *parRunner) nchips() int { return len(r.s.chips) }

// release publishes the next phase to the workers and returns its
// generation.
func (r *parRunner) release(ph parPhase) int64 {
	r.phase = ph
	r.curGen = r.gen.Load() + 1
	r.gen.Store(r.curGen)
	return r.curGen
}

// join blocks until every worker has completed generation g. The
// escalating backoff matters on oversubscribed hosts (GOMAXPROCS
// above the physical core count): without the sleep rung a starved
// worker and a spinning coordinator can trade whole scheduler
// quanta per rendezvous.
func (r *parRunner) join(g int64) {
	for chip := 1; chip < len(r.chipDone); chip++ {
		for spins := 0; r.chipDone[chip].Load() < g; spins++ {
			if spins > 64 {
				runtime.Gosched()
			}
			if spins > 1<<10 {
				time.Sleep(10 * time.Microsecond)
			}
		}
	}
}

// worker is the persistent goroutine for one chip (chips 1..n-1; the
// coordinator runs chip 0 inline). It spins on gen between phases —
// with escalating politeness, since the coordinator may be inside a
// long fast-forward replay — and exits on parPhaseExit.
func (r *parRunner) worker(chip int) {
	last := int64(0)
	for {
		g := r.gen.Load()
		for spins := 0; g <= last; spins++ {
			if spins > 64 {
				runtime.Gosched()
			}
			if spins > 1<<10 {
				time.Sleep(10 * time.Microsecond)
			}
			g = r.gen.Load()
		}
		last = g
		switch r.phase {
		case parPhaseA:
			r.runPhaseA(chip)
		case parPhaseB:
			r.runPhaseB(chip)
		case parPhaseExit:
			r.chipDone[chip].Store(g)
			return
		}
		r.chipDone[chip].Store(g)
	}
}

// runPhaseA commits all of the chip's clusters (in chip-local order,
// which is their relative sequential order) with memory-system stores
// deferred to the per-cluster queues, then drains each cluster's
// wakeup events so the ready lists are final before classification.
func (r *parRunner) runPhaseA(chip int) {
	s := r.s
	now := s.cycle
	active := false
	for _, cl := range s.chips[chip] {
		if cl.commit(s, now) {
			active = true
		}
	}
	for _, cl := range s.chips[chip] {
		cl.drainEvents(now)
	}
	r.activeA[chip] = active
}

// runPhaseB issues, unblocks and fetches for all of the chip's
// clusters in chip-local order, recording per-cluster results for the
// coordinator's ordered replay. When the phase runs on the workers
// (parB), sync operations go through the turn protocol and each
// cluster's completion is published for it.
func (r *parRunner) runPhaseB(chip int) {
	s := r.s
	now := s.cycle
	r.hasTurn[chip] = chip == 0 // chip 0 leads the global cluster order
	for _, cl := range s.chips[chip] {
		gid := cl.gid
		votes := &r.votes[gid]
		votes.Reset()
		issued := cl.issueEvent(s, now, votes)
		active := issued > 0
		if r.parB && cl.hasSyncBlocked() {
			// unblock polls the shared sync controller for lock/barrier
			// waiters; take the turn first so grants keep sequential
			// order.
			s.ensureTurn(cl)
		}
		if cl.unblock(s, now) {
			active = true
		}
		if cl.fetch(s, now, votes) {
			active = true
		}
		cl.threadVotes(votes)
		cl.slots.RecordCycle(cl.cfg.IssueWidth, issued, votes)
		r.issued[gid] = issued
		r.activeB[gid] = active
		if r.parB {
			r.clusterGen[gid].Store(r.curGen)
		}
	}
}

// hasSyncBlocked reports whether any thread is parked on a lock or
// barrier (the unblock cases that touch the shared sync controller).
func (c *cluster) hasSyncBlocked() bool {
	for _, t := range c.threads {
		if t.block == blockLock || t.block == blockBarrier {
			return true
		}
	}
	return false
}

// ensureTurn serializes access to cross-chip shared state (the sync
// controller, swap's functional read-modify-write) during a parallel
// phase B: it blocks until every lower-numbered cluster has finished
// its phase B. Cluster order equals sequential order, the lowest
// cluster never waits, and a chip processes its own clusters in order,
// so there is no cyclic wait. No-op outside parallel phase B.
func (s *Simulator) ensureTurn(c *cluster) {
	r := s.par
	if r == nil || !r.parB || r.hasTurn[c.chip] {
		return
	}
	for gid := 0; gid < c.gid; gid++ {
		for spins := 0; r.clusterGen[gid].Load() < r.curGen; spins++ {
			if spins > 64 {
				runtime.Gosched()
			}
			if spins > 1<<10 {
				time.Sleep(10 * time.Microsecond)
			}
		}
	}
	r.hasTurn[c.chip] = true
}

// anyDirLoad reports whether any ready load anywhere in the machine
// could miss past its chip's L2 this cycle. Runs on the coordinator
// after the store drain, against final ready lists; L2 probes are
// non-mutating. forwardingStore is consulted first: a load with a
// live forwarding candidate either forwards or waits, and never
// touches the memory system.
func (s *Simulator) anyDirLoad() bool {
	for _, cl := range s.clusters {
		for _, e := range cl.ready {
			if !e.isLoad || e.forwardingStore() != nil {
				continue
			}
			if s.msys.LoadMayFetch(cl.chip, e.d.Addr+e.thread.memBase) {
				return true
			}
		}
	}
	return false
}

// stepParallel advances the machine one cycle using the chip workers.
// It is the parallel counterpart of step and must leave every counter
// bit-identical (guarded by TestParallelDifferential).
func (s *Simulator) stepParallel() bool {
	r := s.par
	now := s.cycle

	// Phase A: parallel commit + event drain.
	g := r.release(parPhaseA)
	r.runPhaseA(0)
	r.join(g)

	// Deferred stores, in exact global cluster order — the point in the
	// sequential cycle where commit performed them.
	for _, cl := range s.clusters {
		for _, addr := range cl.storeQ {
			s.msys.Store(now, cl.chip, addr)
		}
		cl.storeQ = cl.storeQ[:0]
	}

	// Drained migrations move between commit and issue, exactly where
	// the sequential step performs them; the workers are parked, so the
	// coordinator re-homes threads with no cluster stage in flight.
	migrated := len(s.migrating) > 0 && s.completeMigrations(now)

	// Phase B: parallel when no ready load can reach the directory,
	// else the coordinator runs the chips in order (same code path,
	// same sharded counters, no turn protocol needed).
	if r.nchips() > 1 && !s.anyDirLoad() {
		r.parB = true
		s.parBCycles++
		s.msys.SetNoDir(true)
		g = r.release(parPhaseB)
		r.runPhaseB(0)
		r.join(g)
		s.msys.SetNoDir(false)
	} else {
		r.parB = false
		for chip := range s.chips {
			r.runPhaseB(chip)
		}
	}

	// Ordered replay of the machine-wide float slot accounting, then
	// integer shard folds. Float addition is not associative, so the
	// machine tally must see the per-cluster calls in sequential order;
	// the integer folds are exact in any order.
	active := migrated
	for _, cl := range s.clusters {
		gid := cl.gid
		s.slots.RecordCycle(cl.cfg.IssueWidth, r.issued[gid], &r.votes[gid])
		if r.activeB[gid] {
			active = true
		}
	}
	for chip := range r.shards {
		sh := &r.shards[chip]
		s.committed += sh.committed
		s.forwardedLoads += sh.forwarded
		s.running += int(sh.running)
		s.finished += int(sh.finished)
		if r.activeA[chip] {
			active = true
		}
		*sh = chipShard{}
	}
	s.msys.FoldShards()

	s.slots.AdvanceCycle()
	s.runningAccum += float64(s.running)
	s.cycle++
	return active
}

// ---- counter shims (cluster stages run on workers in parallel mode) ----

func (s *Simulator) noteCommitted(chip int) {
	if s.par != nil {
		s.par.shards[chip].committed++
		return
	}
	s.committed++
}

func (s *Simulator) noteForwarded(chip int) {
	if s.par != nil {
		s.par.shards[chip].forwarded++
		return
	}
	s.forwardedLoads++
}

// noteFinished records a thread draining after halt: it leaves the
// running count and joins the finished count.
func (s *Simulator) noteFinished(chip int) {
	if s.par != nil {
		s.par.shards[chip].running--
		s.par.shards[chip].finished++
		return
	}
	s.running--
	s.finished++
}

func (s *Simulator) addRunning(chip, d int) {
	if s.par != nil {
		s.par.shards[chip].running += int64(d)
		return
	}
	s.running += d
}

// ---- lifecycle ----

// startParallel validates the configuration and spawns the chip
// workers. Parallel execution requires the event-driven issue stage
// (classification reads its ready lists) and is incompatible with
// instruction tracing (the trace writer is strictly sequential).
func (s *Simulator) startParallel() error {
	if !s.EventIssue {
		return fmt.Errorf("core: %s: parallel execution requires the event-driven issue stage (EventIssue)", s.Machine.Name)
	}
	if s.tr != nil {
		return fmt.Errorf("core: %s: parallel execution is incompatible with instruction tracing", s.Machine.Name)
	}
	n := len(s.chips)
	r := &parRunner{
		s:          s,
		chipDone:   make([]atomic.Int64, n),
		clusterGen: make([]atomic.Int64, len(s.clusters)),
		shards:     make([]chipShard, n),
		votes:      make([]stats.Votes, len(s.clusters)),
		issued:     make([]int, len(s.clusters)),
		activeA:    make([]bool, n),
		activeB:    make([]bool, len(s.clusters)),
		hasTurn:    make([]bool, n),
	}
	s.par = r
	s.msys.EnableStatShards()
	for chip := 1; chip < n; chip++ {
		go r.worker(chip)
	}
	return nil
}

// stopParallel shuts the workers down and returns the simulator to
// sequential code paths (post-run inspection).
func (s *Simulator) stopParallel() {
	r := s.par
	g := r.release(parPhaseExit)
	r.join(g)
	s.par = nil
}
