// Package core implements the paper's primary contribution: the
// clustered simultaneous-multithreaded processor (§3). A Simulator
// models one machine (1 or 4 chips); each chip is a set of clusters;
// each cluster is a dynamic superscalar SMT core with its own fetch
// unit, rename pools, unified instruction window / reorder buffer,
// functional units and per-thread in-order commit. No resources are
// shared across clusters (§3.3).
package core

// BranchPredictor is the §3.1 predictor: a direct-mapped table of 2-bit
// saturating counters indexed by the low-order PC bits, shared by all
// threads of a cluster (multiple predictions may be outstanding; we
// update non-speculatively at fetch since the outcome is known then).
type BranchPredictor struct {
	counters []uint8

	Lookups uint64
	Mispred uint64
}

// NewBranchPredictor returns a predictor with the given entry count
// (power of two), initialized weakly not-taken.
func NewBranchPredictor(entries int) *BranchPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("core: predictor entries must be a positive power of two")
	}
	c := make([]uint8, entries)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &BranchPredictor{counters: c}
}

// PredictAndUpdate predicts the branch at pc, trains on the actual
// outcome, and reports whether the prediction was correct.
func (p *BranchPredictor) PredictAndUpdate(pc int64, taken bool) (predictedTaken, correct bool) {
	p.Lookups++
	idx := int(uint64(pc) & uint64(len(p.counters)-1))
	predictedTaken = p.counters[idx] >= 2
	if taken && p.counters[idx] < 3 {
		p.counters[idx]++
	} else if !taken && p.counters[idx] > 0 {
		p.counters[idx]--
	}
	correct = predictedTaken == taken
	if !correct {
		p.Mispred++
	}
	return predictedTaken, correct
}

// BTB is the branch target buffer used for register-indirect jumps
// (direct targets are encoded in the instruction). Direct-mapped,
// storing the last seen target per slot.
type BTB struct {
	targets []int64
	valid   []bool

	Lookups uint64
	Mispred uint64
}

// NewBTB returns a BTB with the given entry count (power of two).
func NewBTB(entries int) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("core: BTB entries must be a positive power of two")
	}
	return &BTB{targets: make([]int64, entries), valid: make([]bool, entries)}
}

// PredictAndUpdate predicts the target of the indirect jump at pc,
// trains on the actual target, and reports whether the prediction was
// correct.
func (b *BTB) PredictAndUpdate(pc, actual int64) (predicted int64, correct bool) {
	b.Lookups++
	idx := int(uint64(pc) & uint64(len(b.targets)-1))
	predicted = b.targets[idx]
	correct = b.valid[idx] && predicted == actual
	b.targets[idx] = actual
	b.valid[idx] = true
	if !correct {
		b.Mispred++
	}
	return predicted, correct
}
