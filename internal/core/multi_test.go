package core

import (
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// buildJob returns a small single-thread job that sums 0..n-1 into
// "out" (with per-job distinct data so cross-job isolation is visible).
func buildJob(seed, n int64) *prog.Program {
	b := prog.NewBuilder("job")
	b.GlobalWords("nthreads", []uint64{1})
	data := b.Global("data", n)
	out := b.Global("out", 1)
	b.Li(1, 0)
	b.Li(2, n)
	b.Li(3, 0)
	b.CountedLoop(1, 2, func() {
		b.Shli(4, 1, 3)
		b.Ld(5, 4, data)
		b.Add(3, 3, 5)
	})
	b.St(3, 0, out)
	b.Barrier(0) // single-participant barrier: must trip immediately
	b.Halt()
	p := b.MustBuild()
	for i := int64(0); i < n; i++ {
		p.Init[data+i*prog.WordSize] = uint64(seed + i)
	}
	return p
}

func TestMultiprogramIsolation(t *testing.T) {
	m := config.LowEnd(config.FA8)
	jobs := make([]*prog.Program, 8)
	for i := range jobs {
		jobs[i] = buildJob(int64(i)*1000, 64)
	}
	sim, err := NewMulti(m, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range jobs {
		want := uint64(0)
		for k := int64(0); k < 64; k++ {
			want += uint64(int64(i)*1000 + k)
		}
		if got := sim.MemOf(i).Load(p.SymbolAddr("out")); got != want {
			t.Errorf("job %d: out = %d, want %d", i, got, want)
		}
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	// Every job's barrier must have tripped alone.
	if res.BarrierWaits != 8 {
		t.Errorf("barrier episodes = %d, want 8 (one per job)", res.BarrierWaits)
	}
}

func TestMultiprogramAddressSpacesDisjointInCaches(t *testing.T) {
	// Two jobs with identical programs: identical virtual addresses must
	// land on different physical lines (no cross-job hits corrupting
	// latency accounting, and crucially no coherence interference).
	m := config.LowEnd(config.SMT2)
	jobs := []*prog.Program{buildJob(1, 32), buildJob(2, 32)}
	sim, err := NewMulti(m, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Functional isolation is the observable: each job sees only its own
	// data despite identical addresses.
	if sim.MemOf(0).Load(jobs[0].SymbolAddr("out")) == sim.MemOf(1).Load(jobs[1].SymbolAddr("out")) {
		t.Fatal("jobs computed identical sums from different data")
	}
}

func TestMultiprogramValidation(t *testing.T) {
	m := config.LowEnd(config.FA8)
	if _, err := NewMulti(m, nil); err == nil {
		t.Error("empty job list accepted")
	}
	jobs := make([]*prog.Program, 9)
	for i := range jobs {
		jobs[i] = buildJob(0, 4)
	}
	if _, err := NewMulti(m, jobs); err == nil {
		t.Error("more jobs than contexts accepted")
	}
}

func TestMultiprogramFewerJobsThanContexts(t *testing.T) {
	m := config.LowEnd(config.SMT1)
	jobs := []*prog.Program{buildJob(5, 32), buildJob(9, 32), buildJob(11, 32)}
	sim, err := NewMulti(m, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerThreadCommitted) != 3 {
		t.Fatalf("threads = %d, want 3", len(res.PerThreadCommitted))
	}
}

// TestMultiprogramSMTSharing: on a job mix with very different ILP, the
// SMT1 must beat FA8 in total throughput (the classic SMT
// multiprogramming result the paper builds on): the high-ILP job can
// use issue slots the low-ILP jobs leave idle.
func TestMultiprogramSMTSharing(t *testing.T) {
	// Mix: one wide-ILP job + seven chained low-ILP jobs.
	mkWide := func() *prog.Program {
		b := prog.NewBuilder("wide")
		b.GlobalWords("nthreads", []uint64{1})
		b.Fli(0, 1.25)
		b.Li(1, 0)
		b.Li(2, 3000)
		b.CountedLoop(1, 2, func() {
			for d := 1; d <= 6; d++ {
				b.Fmul(isaReg(d), 0, 0)
			}
		})
		b.Halt()
		return b.MustBuild()
	}
	mkChain := func() *prog.Program {
		b := prog.NewBuilder("chain")
		b.GlobalWords("nthreads", []uint64{1})
		b.Fli(0, 1.0001)
		b.Fli(1, 0.999)
		b.Li(1, 0)
		b.Li(2, 1500)
		b.CountedLoop(1, 2, func() {
			b.Fmul(1, 1, 0)
			b.Fadd(1, 1, 0)
		})
		b.Halt()
		return b.MustBuild()
	}
	run := func(arch config.Arch) int64 {
		jobs := []*prog.Program{mkWide()}
		for i := 0; i < 7; i++ {
			jobs = append(jobs, mkChain())
		}
		sim, err := NewMulti(config.LowEnd(arch), jobs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	fa8 := run(config.FA8)
	smt1 := run(config.SMT1)
	if smt1 >= fa8 {
		t.Errorf("SMT1 (%d cycles) did not beat FA8 (%d) on a mixed-ILP job set", smt1, fa8)
	}
}

func isaReg(d int) isa.Reg { return isa.Reg(d) }
