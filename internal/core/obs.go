package core

import (
	"clustersmt/internal/coherence"
	"clustersmt/internal/obs"
	"clustersmt/internal/stats"
)

// This file implements interval-metrics sampling: every Interval cycles
// the simulator snapshots its cumulative counters, turns them into one
// obs.Frame of deltas, and pushes the frame into a ring (and into the
// OnInterval callback). Two properties are contractual, enforced by
// TestObsResultNeutral and TestObsFrameConservation:
//
//   - Read-only / result-neutral: sampling never mutates simulation
//     state, so Result is bit-identical with sampling on or off. The
//     memory gauges use non-retiring probes (MSHRFile.Occupancy,
//     Directory.Lines) for exactly this reason. OnInterval callbacks
//     receive the frame by value and must not reach back into the
//     simulator's mutable state.
//
//   - Boundary exactness: frames land exactly on multiples of the
//     interval even when the event-driven fast-forward skips across
//     several boundaries at once — fastForward segments its replay at
//     each due boundary (same per-cycle accounting order, so results
//     stay bit-identical) and samples between segments. Summing the
//     frames' deltas therefore reproduces the end-of-run totals.
//
// With sampling disabled the entire cost is one nil check per cycle in
// Run plus one per fast-forward skip (benchmarked by
// BenchmarkObsOverhead).

// DefaultMetricsInterval is the sampling interval OnInterval uses when
// EnableMetrics was not called first.
const DefaultMetricsInterval = 10_000

// sampler holds the metrics configuration plus the cumulative-counter
// snapshot taken at the last frame boundary.
type sampler struct {
	interval int64
	nextAt   int64 // next frame boundary (cycle)
	index    int   // next frame number
	ring     *obs.Ring
	onFrame  func(obs.Frame)

	prevCycle        int64
	prevCommitted    uint64
	prevRunningAccum float64
	prevSlots        [stats.NumCategories]float64
	prevCluster      [][stats.NumCategories]float64
	prevMem          coherence.MemSnapshot
}

// EnableMetrics turns on interval sampling: one obs.Frame every
// interval cycles (DefaultMetricsInterval when interval <= 0), retained
// in a ring of ringCap frames (obs.DefaultRingCap when ringCap <= 0).
// It returns the ring, which holds the most recent frames after Run.
// Must be called before Run. Sampling is read-only: the Result is
// bit-identical with metrics enabled or disabled.
func (s *Simulator) EnableMetrics(interval int64, ringCap int) *obs.Ring {
	if interval <= 0 {
		interval = DefaultMetricsInterval
	}
	if s.obs == nil {
		s.obs = &sampler{
			ring:        obs.NewRing(ringCap),
			prevCluster: make([][stats.NumCategories]float64, len(s.clusters)),
		}
	}
	s.obs.interval = interval
	s.obs.nextAt = interval
	return s.obs.ring
}

// OnInterval registers fn to receive every completed frame, in order,
// as the run progresses — the harness heartbeat hook, also usable by
// tests to assert mid-run invariants. Multiple registrations chain.
// If EnableMetrics was not called, it is enabled at
// DefaultMetricsInterval. Must be called before Run. fn runs on the
// simulation goroutine and must not mutate the simulator.
func (s *Simulator) OnInterval(fn func(obs.Frame)) {
	if s.obs == nil {
		s.EnableMetrics(DefaultMetricsInterval, 0)
	}
	if prev := s.obs.onFrame; prev != nil {
		s.obs.onFrame = func(f obs.Frame) { prev(f); fn(f) }
	} else {
		s.obs.onFrame = fn
	}
}

// Metrics returns the frame ring, or nil when metrics are disabled.
func (s *Simulator) Metrics() *obs.Ring {
	if s.obs == nil {
		return nil
	}
	return s.obs.ring
}

// sample emits the frame covering [o.prevCycle, s.cycle). Called by Run
// when a boundary is reached on the stepped path, by fastForward
// between replay segments, and once more at run end for the partial
// tail. Deltas are differences of cumulative counters, so consecutive
// frames tile the run with no gaps or overlaps.
func (s *Simulator) sample() {
	o := s.obs
	now := s.cycle
	f := obs.Frame{
		Index:     o.index,
		Start:     o.prevCycle,
		End:       now,
		Cycles:    now - o.prevCycle,
		Committed: s.committed - o.prevCommitted,
		Running:   s.running,
	}
	if f.Cycles > 0 {
		f.IPC = float64(f.Committed) / float64(f.Cycles)
		f.AvgRunning = (s.runningAccum - o.prevRunningAccum) / float64(f.Cycles)
	}
	for c := range f.Slots {
		f.Slots[c] = s.slots.Counts[c] - o.prevSlots[c]
	}
	f.Clusters = make([]obs.ClusterSlots, len(s.clusters))
	for i, cl := range s.clusters {
		cs := obs.ClusterSlots{Chip: cl.chip, Cluster: cl.idx}
		for c := range cs.Slots {
			cs.Slots[c] = cl.slots.Counts[c] - o.prevCluster[i][c]
		}
		f.Clusters[i] = cs
		o.prevCluster[i] = cl.slots.Counts
	}
	snap := s.msys.Snapshot(now)
	f.Mem = obs.MemFrame{
		Loads:         snap.Loads - o.prevMem.Loads,
		Stores:        snap.Stores - o.prevMem.Stores,
		LoadRetries:   snap.LoadRetries - o.prevMem.LoadRetries,
		L1Hits:        snap.L1Hits - o.prevMem.L1Hits,
		L1Misses:      snap.L1Misses - o.prevMem.L1Misses,
		L2Hits:        snap.L2Hits - o.prevMem.L2Hits,
		L2Misses:      snap.L2Misses - o.prevMem.L2Misses,
		MSHROccupancy: snap.MSHROccupancy,
		DirLines:      snap.DirLines,
	}

	o.prevCycle = now
	o.prevCommitted = s.committed
	o.prevRunningAccum = s.runningAccum
	o.prevSlots = s.slots.Counts
	o.prevMem = snap
	o.index++
	o.nextAt = now + o.interval

	o.ring.Push(f)
	if o.onFrame != nil {
		o.onFrame(f)
	}
}
