package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"clustersmt/internal/alloc"
	"clustersmt/internal/config"
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// buildImbalanced builds the canonical migration-provoking kernel:
// even-tid threads run a long load-carrying loop while odd-tid threads
// halt after a handful of instructions. Under the seed placement
// (thread tid → chip tid%chips, cluster (tid/chips)%clusters) the
// even tids pack onto half the clusters, so once the odd tids drain
// the machine is exactly the live-count imbalance the dynamic
// policies exist to repair.
func buildImbalanced(threads int, iters int64) *prog.Program {
	b := prog.NewBuilder("imbalanced")
	b.GlobalWords("nthreads", []uint64{uint64(threads)})
	data := b.Global("data", 8)
	b.Mov(1, isa.RegTID)
	b.Andi(2, 1, 1)
	b.Bne(2, isa.RegZero, "done") // odd tids halt immediately
	b.Li(3, 0)
	b.Li(4, iters)
	b.CountedLoop(3, 4, func() {
		b.Andi(5, 3, 7)
		b.Shli(5, 5, 3)
		b.Ld(6, 5, data)
		b.Add(7, 7, 6)
	})
	b.Label("done")
	b.Halt()
	return b.MustBuild()
}

// runAlloc runs one machine over build with the given cycle loop and
// execution loop (always on the wakeup issue path, which Parallel
// requires).
func runAlloc(t *testing.T, m config.Machine, build func() *prog.Program, ff, par bool) *Result {
	t.Helper()
	s, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	s.EventIssue = true
	s.EventDriven = ff
	s.Parallel = par
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestAllocDifferential is the seed bit-identity gate for the default
// policy: on every Table 2 preset, low- and high-end, under every
// combination of {stepped, fast-forward} cycle loop × {sequential,
// per-chip parallel} execution loop, a machine configured with
// Alloc.Policy="static" must produce a Result that is bit-identical
// (reflect.DeepEqual) to the same machine with no Alloc at all. It is
// the proof that bolting the allocation subsystem on changed nothing
// for the paper's configuration. Static runs must also report zero
// epochs and zero migrations.
func TestAllocDifferential(t *testing.T) {
	combos := []struct {
		name    string
		ff, par bool
	}{
		{"stepped/seq", false, false},
		{"ff/seq", true, false},
		{"stepped/par", false, true},
		{"ff/par", true, true},
	}
	for _, arch := range config.AllArchs {
		for _, highEnd := range []bool{false, true} {
			m := config.LowEnd(arch)
			if highEnd {
				m = config.HighEnd(arch)
			}
			t.Run(m.Name, func(t *testing.T) {
				build := func() *prog.Program {
					return buildVectorSum(128, m.Threads())
				}
				ms := m
				ms.Alloc = config.AllocConfig{Policy: "static"}
				// The config layer must collapse an explicit "static" to
				// the zero value, so caches never fork on the spelling.
				if ms.Hash() != m.Hash() {
					t.Fatalf("explicit static policy changed the machine hash")
				}
				for _, c := range combos {
					seed := runAlloc(t, m, build, c.ff, c.par)
					static := runAlloc(t, ms, build, c.ff, c.par)
					if static.AllocEpochs != 0 || static.AllocMigrations != 0 {
						t.Fatalf("%s: static ran epochs=%d migrations=%d, want 0/0",
							c.name, static.AllocEpochs, static.AllocMigrations)
					}
					// Result.Machine carries the raw config (which spells
					// the policy out); everything behavioral must match.
					static.Machine = seed.Machine
					if !reflect.DeepEqual(seed, static) {
						t.Fatalf("%s: static policy diverged from seed placement\nseed:   %+v\nstatic: %+v",
							c.name, seed, static)
					}
				}
			})
		}
	}
}

// TestAllocDeterminism re-runs each dynamic policy from scratch and
// requires byte-identical results, with the non-vacuousness guard that
// the run actually migrated threads — a deterministic run that never
// exercises the migration machinery proves nothing.
func TestAllocDeterminism(t *testing.T) {
	for _, pol := range []string{"icount", "symbiosis"} {
		for _, highEnd := range []bool{false, true} {
			m := config.LowEnd(config.SMT2)
			if highEnd {
				m = config.HighEnd(config.SMT2)
			}
			m.Alloc = config.AllocConfig{Policy: pol, Epoch: 500}
			t.Run(pol+"/"+m.Name, func(t *testing.T) {
				build := func() *prog.Program {
					return buildImbalanced(m.Threads(), 2000)
				}
				a := runAlloc(t, m, build, true, false)
				b := runAlloc(t, m, build, true, false)
				if a.AllocMigrations == 0 {
					t.Fatalf("no migrations; the determinism check is vacuous")
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("two runs diverged\nfirst:  %+v\nsecond: %+v", a, b)
				}
			})
		}
	}
}

// TestAllocParallelDeterminism pins the headline contract from the
// design note: the per-chip parallel loop and the sequential loop feed
// a policy byte-identical snapshots at byte-identical cycles, so a
// dynamic-policy run is bit-identical under both execution loops.
func TestAllocParallelDeterminism(t *testing.T) {
	for _, pol := range []string{"icount", "symbiosis"} {
		t.Run(pol, func(t *testing.T) {
			m := config.HighEnd(config.SMT2)
			m.Alloc = config.AllocConfig{Policy: pol, Epoch: 500}
			build := func() *prog.Program {
				return buildImbalanced(m.Threads(), 2000)
			}
			seq := runAlloc(t, m, build, true, false)
			par := runAlloc(t, m, build, true, true)
			if seq.AllocMigrations == 0 {
				t.Fatalf("no migrations; the determinism check is vacuous")
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("parallel loop diverged from sequential\nseq: %+v\npar: %+v", seq, par)
			}
		})
	}
}

// TestAllocEventDrivenDifferential extends the event-layer contract to
// dynamic policies: with migrations in flight, every {scan, wakeup} ×
// {stepped, fast-forward} combination must match the scan × stepped
// reference — in particular the fast-forward must clamp its jumps to
// epoch boundaries rather than sailing past a scheduled rebalance.
func TestAllocEventDrivenDifferential(t *testing.T) {
	for _, pol := range []string{"icount", "symbiosis"} {
		for _, highEnd := range []bool{false, true} {
			m := config.LowEnd(config.SMT2)
			if highEnd {
				m = config.HighEnd(config.SMT2)
			}
			m.Alloc = config.AllocConfig{Policy: pol, Epoch: 500}
			t.Run(pol+"/"+m.Name, func(t *testing.T) {
				build := func() *prog.Program {
					return buildImbalanced(m.Threads(), 2000)
				}
				ref, _ := runMode(t, m, build, false, false)
				if ref.AllocMigrations == 0 {
					t.Fatalf("no migrations; the differential is vacuous")
				}
				for _, mode := range diffModes {
					got, _ := runMode(t, m, build, mode.eventIssue, mode.ff)
					if !reflect.DeepEqual(ref, got) {
						t.Fatalf("%s diverged from scan+stepped\nref: %+v\ngot: %+v", mode.name, ref, got)
					}
				}
			})
		}
	}
}

// chaosPolicy proposes only invalid migrations: dead threads, bogus
// thread and cluster ids, self-moves, and over-capacity floods. The
// core must drop every one of them deterministically, leaving the run
// bit-identical to no allocator at all.
type chaosPolicy struct{}

func (chaosPolicy) Name() string { return "chaos-test" }
func (chaosPolicy) Place(threads int, clusters []alloc.ClusterInfo) []int {
	return alloc.StaticPlace(threads, clusters)
}
func (chaosPolicy) Dynamic() bool { return true }

func (chaosPolicy) Rebalance(s *alloc.Snapshot) []alloc.Migration {
	ms := []alloc.Migration{
		{Thread: -1, To: 0},                 // no such thread
		{Thread: len(s.Threads) + 7, To: 0}, // no such thread
		{Thread: 0, To: -1},                 // no such cluster
		{Thread: 0, To: len(s.Clusters)},    // no such cluster
	}
	for _, th := range s.Threads {
		if th.Finished { // dead threads must never move
			ms = append(ms, alloc.Migration{Thread: th.ID, To: (th.Cluster + 1) % len(s.Clusters)})
		}
		ms = append(ms, alloc.Migration{Thread: th.ID, To: th.Cluster}) // self-move
	}
	// Flood cluster 0: everything past its spare capacity must bounce
	// off the migrateIn-charged capacity check.
	for _, th := range s.Threads {
		if th.Cluster != s.Clusters[0].GID {
			ms = append(ms, alloc.Migration{Thread: th.ID, To: s.Clusters[0].GID})
		}
	}
	return ms
}

// invariantErrs collects violations observed by checkPolicy mid-run.
var invariantErrs []string

// checkPolicy wraps ICount and audits every epoch snapshot the core
// hands a policy: each live thread on exactly one valid cluster, per-
// cluster live counts within capacity and consistent with the per-
// thread view.
type checkPolicy struct{ inner alloc.ICount }

func (checkPolicy) Name() string { return "invcheck-test" }
func (p checkPolicy) Place(threads int, clusters []alloc.ClusterInfo) []int {
	return p.inner.Place(threads, clusters)
}
func (checkPolicy) Dynamic() bool { return true }

func (p checkPolicy) Rebalance(s *alloc.Snapshot) []alloc.Migration {
	live := make(map[int]int) // cluster GID -> live threads per the thread view
	valid := make(map[int]alloc.ClusterSample, len(s.Clusters))
	for _, c := range s.Clusters {
		valid[c.GID] = c
	}
	for _, th := range s.Threads {
		c, ok := valid[th.Cluster]
		if !ok {
			invariantErrs = append(invariantErrs,
				fmt.Sprintf("epoch %d: thread %d on unknown cluster %d", s.Epoch, th.ID, th.Cluster))
			continue
		}
		if !th.Finished {
			live[th.Cluster]++
			if live[th.Cluster] > c.Capacity {
				invariantErrs = append(invariantErrs,
					fmt.Sprintf("epoch %d: cluster %d over capacity %d", s.Epoch, th.Cluster, c.Capacity))
			}
		}
	}
	for _, c := range s.Clusters {
		if c.Threads != live[c.GID] {
			invariantErrs = append(invariantErrs,
				fmt.Sprintf("epoch %d: cluster %d reports %d live threads, thread view says %d",
					s.Epoch, c.GID, c.Threads, live[c.GID]))
		}
	}
	return p.inner.Rebalance(s)
}

func init() {
	alloc.Register("chaos-test", "test-only: proposes only invalid migrations", func() alloc.Allocator { return chaosPolicy{} })
	alloc.Register("invcheck-test", "test-only: icount plus epoch-snapshot invariant auditing", func() alloc.Allocator { return checkPolicy{} })
}

// TestAllocInvalidProposalsRejected runs the chaos policy — nothing it
// proposes is legal — and requires the result to be bit-identical to
// the no-allocator reference (modulo the epoch counter, which must
// have ticked for the test to mean anything).
func TestAllocInvalidProposalsRejected(t *testing.T) {
	m := config.LowEnd(config.SMT2)
	build := func() *prog.Program {
		return buildImbalanced(m.Threads(), 2000)
	}
	ref := runAlloc(t, m, build, false, false)
	mc := m
	mc.Alloc = config.AllocConfig{Policy: "chaos-test", Epoch: 500}
	got := runAlloc(t, mc, build, false, false)
	if got.AllocEpochs == 0 {
		t.Fatalf("chaos policy never consulted; the rejection check is vacuous")
	}
	if got.AllocMigrations != 0 {
		t.Fatalf("core accepted %d invalid migrations", got.AllocMigrations)
	}
	norm := *got
	norm.AllocEpochs = 0
	norm.Machine = ref.Machine
	if !reflect.DeepEqual(ref, &norm) {
		t.Fatalf("rejected proposals still perturbed the run\nref: %+v\ngot: %+v", ref, got)
	}
}

// checkResidence audits the committed machine state between cycles:
// every thread resides on exactly one cluster, its back-pointer agrees
// with the hosting cluster, live threads never exceed a cluster's
// hardware contexts (counting in-flight migrations), and migrateIn
// never goes negative.
func checkResidence(t *testing.T, s *Simulator) {
	t.Helper()
	seen := make(map[int]int, len(s.threads))
	for _, cl := range s.clusters {
		if cl.migrateIn < 0 {
			t.Errorf("cycle %d: cluster %d migrateIn=%d", s.cycle, cl.gid, cl.migrateIn)
		}
		live := 0
		for _, th := range cl.threads {
			if th.cluster != cl {
				t.Errorf("cycle %d: thread %d listed on cluster %d but points at %d",
					s.cycle, th.id, cl.gid, th.cluster.gid)
			}
			seen[th.id]++
			if !th.done() {
				live++
			}
		}
		if live+cl.migrateIn > cl.cfg.ThreadsPerCluster {
			t.Errorf("cycle %d: cluster %d holds %d live threads (+%d inbound), capacity %d",
				s.cycle, cl.gid, live, cl.migrateIn, cl.cfg.ThreadsPerCluster)
		}
	}
	for _, th := range s.threads {
		if seen[th.id] != 1 {
			t.Errorf("cycle %d: thread %d resides on %d clusters, want exactly 1", s.cycle, th.id, seen[th.id])
		}
	}
}

// TestAllocResidenceInvariants steps a migrating run in small RunTo
// increments and audits residence at every pause, while the invcheck
// policy independently audits the snapshot the core builds at every
// epoch boundary. Together they pin the "always" in "every runnable
// thread is always on exactly one cluster".
func TestAllocResidenceInvariants(t *testing.T) {
	invariantErrs = nil
	m := config.HighEnd(config.SMT2)
	m.Alloc = config.AllocConfig{Policy: "invcheck-test", Epoch: 500}
	sim, err := New(m, buildImbalanced(m.Threads(), 2000))
	if err != nil {
		t.Fatal(err)
	}
	for target := int64(100); !sim.Done(); target += 100 {
		if err := sim.RunTo(target); err != nil {
			t.Fatal(err)
		}
		checkResidence(t, sim)
	}
	for _, e := range invariantErrs {
		t.Error(e)
	}
	if sim.alloc.migrations == 0 {
		t.Fatalf("no migrations; the invariant sweep is vacuous")
	}
}

// TestAllocSnapshotRoundTrip proves allocator state is part of the
// checkpoint contract: pause a migrating icount run, snapshot it
// (retrying past the mid-drain refusal windows), restore into a fresh
// simulator, and require the restored allocState and the final Results
// of both runs to be bit-identical — with more epochs firing after the
// snapshot point, so the restored allocator demonstrably keeps working.
func TestAllocSnapshotRoundTrip(t *testing.T) {
	m := config.LowEnd(config.SMT2)
	m.Alloc = config.AllocConfig{Policy: "icount", Epoch: 400}
	p := buildImbalanced(m.Threads(), 4000)
	sim, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	var data []byte
	for target := int64(450); ; target += 25 {
		if err := sim.RunTo(target); err != nil {
			t.Fatal(err)
		}
		if sim.Done() {
			t.Fatal("run finished before a snapshot succeeded")
		}
		data, err = sim.Snapshot()
		if err == nil {
			break
		}
		if !errors.Is(err, ErrSnapshotUnsupported) {
			t.Fatal(err)
		}
	}
	preEpochs := sim.alloc.epoch
	restored, err := Restore(m, p, data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sim.alloc, restored.alloc) {
		t.Fatalf("allocator state lost in round trip\norig:     %+v\nrestored: %+v", sim.alloc, restored.alloc)
	}
	orig, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	rest, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	if orig.AllocMigrations == 0 {
		t.Fatalf("no migrations; the round trip is vacuous")
	}
	if orig.AllocEpochs <= preEpochs {
		t.Fatalf("no epochs fired after the snapshot (pre=%d final=%d); restore untested", preEpochs, orig.AllocEpochs)
	}
	if !reflect.DeepEqual(orig, rest) {
		t.Fatalf("restored run diverged\norig:     %+v\nrestored: %+v", orig, rest)
	}
}

// TestAllocSearchStatic pins the oracle machinery: SearchStatic is
// deterministic across invocations, its assignments are legal, and
// SetAssignment enforces its fresh-simulator and validity contracts.
func TestAllocSearchStatic(t *testing.T) {
	m := config.LowEnd(config.SMT2)
	mk := func() (*Simulator, error) {
		progs := make([]*prog.Program, 4)
		for i := range progs {
			progs[i] = buildVectorSum(64, 1)
		}
		return NewMulti(m, progs)
	}
	best1, worst1, err := SearchStatic(mk, 2_000, 16)
	if err != nil {
		t.Fatal(err)
	}
	best2, worst2, err := SearchStatic(mk, 2_000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(best1, best2) || !reflect.DeepEqual(worst1, worst2) {
		t.Fatalf("SearchStatic not deterministic: best %v vs %v, worst %v vs %v", best1, best2, worst1, worst2)
	}

	sim, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetAssignment(best1); err != nil {
		t.Fatal(err)
	}
	if got := sim.Assignment(); !reflect.DeepEqual(got, best1) {
		t.Fatalf("Assignment() = %v after SetAssignment(%v)", got, best1)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	sim2, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if err := sim2.SetAssignment([]int{0}); err == nil {
		t.Fatal("SetAssignment accepted a wrong-length assignment")
	}
	over := []int{0, 0, 0, 0}    // SMT2 low-end clusters hold 4 contexts; 4 single-thread jobs fit...
	over[3] = len(sim2.clusters) // ...but an out-of-range GID must not
	if err := sim2.SetAssignment(over); err == nil {
		t.Fatal("SetAssignment accepted an out-of-range cluster")
	}
	if err := sim2.RunTo(10); err != nil {
		t.Fatal(err)
	}
	if err := sim2.SetAssignment([]int{0, 0, 1, 1}); err == nil {
		t.Fatal("SetAssignment accepted a started simulator")
	}
}
