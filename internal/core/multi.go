package core

import (
	"fmt"

	"clustersmt/internal/coherence"
	"clustersmt/internal/config"
	"clustersmt/internal/interp"
	"clustersmt/internal/parallel"
	"clustersmt/internal/prog"
)

// asidStride separates the physical address spaces of multiprogrammed
// jobs: job i's addresses are offset by i*asidStride before they reach
// the (physically indexed) caches, TLB and directory, so independent
// jobs never false-share. 8 GiB per job keeps page/line arithmetic
// intact.
const asidStride = int64(1) << 33

// NewMulti builds a multiprogrammed simulator: each program runs as an
// independent sequential job on its own hardware context, with a
// private address space and private synchronization state — the
// "multiprogrammed workload" configuration of the SMT studies the paper
// builds on ([16], [9]). len(progs) must not exceed the machine's
// hardware contexts; remaining contexts stay idle.
//
// Each job executes with thread id 0 and a thread count of one, so
// programs written for NewMulti should be built for a single thread
// (serial sections run, barriers trip immediately).
func NewMulti(m config.Machine, progs []*prog.Program) (*Simulator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(progs) == 0 {
		return nil, fmt.Errorf("core: NewMulti needs at least one program")
	}
	if len(progs) > m.Threads() {
		return nil, fmt.Errorf("core: %d programs exceed %d hardware contexts", len(progs), m.Threads())
	}
	s := &Simulator{
		Machine:   m,
		Program:   progs[0],
		msys:      coherence.NewSystem(m.Chips, m.Mem),
		MaxCycles: DefaultMaxCycles,
	}
	s.chips = make([][]*cluster, m.Chips)
	for chip := 0; chip < m.Chips; chip++ {
		s.chips[chip] = make([]*cluster, m.Arch.Clusters)
		for ci := 0; ci < m.Arch.Clusters; ci++ {
			cl := newCluster(chip, ci, m.Arch)
			s.chips[chip][ci] = cl
			s.clusters = append(s.clusters, cl)
		}
	}
	s.numberClusters()
	assign, err := s.initAlloc(len(progs))
	if err != nil {
		return nil, err
	}
	for i, p := range progs {
		mem := interp.NewMemory()
		mem.LoadImage(p)
		s.mems = append(s.mems, mem)

		var cl *cluster
		if assign != nil {
			cl = s.clusters[assign[i]]
		} else {
			chip := i % m.Chips
			local := i / m.Chips
			ci := local % m.Arch.Clusters
			cl = s.chips[chip][ci]
		}
		t := &threadCtx{
			id:         i,
			chip:       cl.chip,
			cluster:    cl,
			fn:         interp.NewThread(0, p, mem),
			sync:       parallel.NewSync(1),
			memBase:    int64(i) * asidStride,
			frontEvent: noEvent,
		}
		cl.threads = append(cl.threads, t)
		s.threads = append(s.threads, t)
		s.syncs = append(s.syncs, t.sync)
	}
	s.mem = s.mems[0]
	s.running = len(s.threads)
	s.EventDriven = true
	s.EventIssue = true
	return s, nil
}

// MemOf returns job i's private functional memory (multiprogrammed
// runs; for single-program runs use Mem).
func (s *Simulator) MemOf(i int) *interp.Memory { return s.mems[i] }
