package core

import (
	"clustersmt/internal/coherence"
	"clustersmt/internal/interp"
	"clustersmt/internal/isa"
)

// entryState tracks a window entry through its life.
type entryState uint8

const (
	stateDispatched entryState = iota // in the window, waiting to issue
	stateIssued                       // executing on a functional unit
	stateCompleted                    // result available, awaiting commit
)

// entry is one instruction in a cluster's unified instruction window /
// reorder buffer (the two structures are the same size in every Table 2
// configuration, so they are modeled as one).
type entry struct {
	d      interp.DynInstr
	thread *threadCtx
	seq    uint64 // cluster-wide age for oldest-first issue

	state      entryState
	fetchedAt  int64
	eligibleAt int64 // fetchedAt + FrontEndDelay (decode/rename depth)
	completeAt int64 // valid once issued

	// Producers of this entry's register sources that were in flight at
	// dispatch. nil entries were architecturally ready.
	producers [2]*entry

	// Issue-stage facts cached off isa.Info at fetch, so the (possibly
	// many) issue retries never re-index the opcode table: the
	// functional-unit class (ClassNone pseudo-ops borrow an integer
	// slot), the raw Table 1 latency, and the unit occupancy once issued
	// (1 when pipelined, the full latency otherwise).
	fuCl isa.Class
	lat  int64
	occ  int64

	isLoad, isStore bool
	isBranch        bool
	mispredicted    bool
	usesIntRename   bool
	usesFPRename    bool
	memClass        coherence.AccessClass // loads only, set at issue
	forwarded       bool                  // load satisfied by an older in-window store
	committed       bool                  // retired; awaiting window compaction

	// Wakeup-path bookkeeping (wakeup.go; all zero on the scan path).
	// queued tracks the entry's issue-stage classification; waitMem
	// caches the memory-vs-data hazard class while queued == qWaiting.
	// firstCons heads this entry's intrusive consumer list — dependents
	// registered while it was an unissued producer, woken at its
	// completion; consNext[k] continues the list this entry joined
	// through its producer slot k (allocation-free: an entry sits on at
	// most two consumer lists, one per source).
	queued    uint8
	waitMem   bool
	firstCons *entry
	consNext  [2]*entry

	// fwdStore is the youngest older same-thread, same-address store at
	// fetch time (the store-forwarding map's answer, bound at dispatch).
	// Loads only; nil when no such store was in flight.
	fwdStore *entry
}

// addProducer wires p as a register producer of e, returning the
// updated producer count. nil producers (architecturally ready sources)
// and overflow beyond the two source slots are ignored. A plain method
// instead of a closure so the fetch hot path does not allocate.
func (e *entry) addProducer(p *entry, np int) int {
	if p == nil || np >= len(e.producers) {
		return np
	}
	e.producers[np] = p
	return np + 1
}

// dropProducers severs the entry's producer links at commit. Committed
// producers always read as done, so this is behaviorally invisible —
// but without it a live entry anchors its whole transitive dependence
// history (every committed ancestor) against the garbage collector,
// which on long runs retains the entire instruction stream. The
// memory-dependence link (fwdStore) is dropped for the same reason.
func (e *entry) dropProducers() {
	e.producers[0] = nil
	e.producers[1] = nil
	e.fwdStore = nil
}

// forwardingStore returns the youngest older same-thread, same-address
// store still in the window, or nil ("full load bypassing" with exact
// disambiguation, §3.1 — addresses are known at fetch). The candidate
// was bound at fetch from the thread's last-store-by-address map;
// because commit is in order per thread, the candidate having committed
// means every older same-address store has too, so the answer degrades
// straight to nil — no FIFO scan needed (the reference scan is kept as
// forwardingStoreScan for the equivalence tests).
func (e *entry) forwardingStore() *entry {
	st := e.fwdStore
	if st != nil && st.committed {
		e.fwdStore = nil
		return nil
	}
	return st
}

// done reports whether the entry's result is available at cycle now.
func (e *entry) done(now int64) bool {
	switch e.state {
	case stateCompleted:
		return true
	case stateIssued:
		return e.completeAt <= now
	}
	return false
}

// sourcesReady reports whether every producer has its result by now;
// when false, memWait tells whether the blocking producer is a load
// (memory hazard) rather than a compute op (data hazard).
func (e *entry) sourcesReady(now int64) (ready, memWait bool) {
	ready = true
	for _, p := range e.producers {
		if p == nil {
			continue
		}
		if !p.done(now) {
			ready = false
			if p.isLoad {
				memWait = true
			}
		}
	}
	return ready, memWait
}
