package core

import (
	"clustersmt/internal/coherence"
	"clustersmt/internal/interp"
	"clustersmt/internal/isa"
)

// entryState tracks a window entry through its life.
type entryState uint8

const (
	stateDispatched entryState = iota // in the window, waiting to issue
	stateIssued                       // executing on a functional unit
	stateCompleted                    // result available, awaiting commit
)

// entry is one instruction in a cluster's unified instruction window /
// reorder buffer (the two structures are the same size in every Table 2
// configuration, so they are modeled as one).
type entry struct {
	d      interp.DynInstr
	thread *threadCtx
	seq    uint64 // cluster-wide age for oldest-first issue

	state      entryState
	fetchedAt  int64
	eligibleAt int64 // fetchedAt + FrontEndDelay (decode/rename depth)
	completeAt int64 // valid once issued

	// Producers of this entry's register sources that were in flight at
	// dispatch. nil entries were architecturally ready.
	producers [2]*entry

	isLoad, isStore bool
	isBranch        bool
	mispredicted    bool
	usesIntRename   bool
	usesFPRename    bool
	memClass        coherence.AccessClass // loads only, set at issue
	forwarded       bool                  // load satisfied by an older in-window store
	committed       bool                  // retired; awaiting window compaction
}

// addProducer wires p as a register producer of e, returning the
// updated producer count. nil producers (architecturally ready sources)
// and overflow beyond the two source slots are ignored. A plain method
// instead of a closure so the fetch hot path does not allocate.
func (e *entry) addProducer(p *entry, np int) int {
	if p == nil || np >= len(e.producers) {
		return np
	}
	e.producers[np] = p
	return np + 1
}

// dropProducers severs the entry's producer links at commit. Committed
// producers always read as done, so this is behaviorally invisible —
// but without it a live entry anchors its whole transitive dependence
// history (every committed ancestor) against the garbage collector,
// which on long runs retains the entire instruction stream.
func (e *entry) dropProducers() {
	e.producers[0] = nil
	e.producers[1] = nil
}

// done reports whether the entry's result is available at cycle now.
func (e *entry) done(now int64) bool {
	switch e.state {
	case stateCompleted:
		return true
	case stateIssued:
		return e.completeAt <= now
	}
	return false
}

// sourcesReady reports whether every producer has its result by now;
// when false, memWait tells whether the blocking producer is a load
// (memory hazard) rather than a compute op (data hazard).
func (e *entry) sourcesReady(now int64) (ready, memWait bool) {
	ready = true
	for _, p := range e.producers {
		if p == nil {
			continue
		}
		if !p.done(now) {
			ready = false
			if p.isLoad {
				memWait = true
			}
		}
	}
	return ready, memWait
}

// fuClass maps the instruction to the functional-unit class it needs in
// the pipeline. Sync and halt pseudo-ops borrow an integer unit slot.
func (e *entry) fuClass() isa.Class {
	c := e.d.Instr.Info().Class
	if c == isa.ClassNone {
		return isa.ClassInt
	}
	return c
}
