package core

import (
	"reflect"
	"sync"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/prog"
	"clustersmt/internal/workloads"
)

// TestSnapshotRoundTripRace is the copy-on-write layer's race check
// (run under -race by `make race`): several children forked from one
// warmed parent run concurrently with each other AND with the parent
// continuing, all sharing COW interpreter pages and cache arrays until
// first write. Every run must still be bit-identical to its scratch
// counterpart.
func TestSnapshotRoundTripRace(t *testing.T) {
	base := checkpointSpec()
	base.WarmupIters = 1500
	variants := []workloads.SyntheticSpec{base}
	for _, chain := range []int{0, 4, 6} {
		v := base
		v.ChainLen = chain
		v.IndepOps = 6 - chain
		variants = append(variants, v)
	}
	m := config.LowEnd(config.SMT2)
	build := func(spec workloads.SyntheticSpec) *prog.Program {
		return workloads.Synthetic(spec).Build(m.Threads(), m.Chips, workloads.SizeTest)
	}
	run := func(s *Simulator) *Result {
		r, err := s.Run()
		if err != nil {
			t.Error(err)
		}
		return r
	}

	refs := make([]*Result, len(variants))
	for i, spec := range variants {
		sim, err := New(m, build(spec))
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = run(sim)
	}

	parent, err := New(m, build(variants[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := parent.RunTo(1000); err != nil {
		t.Fatal(err)
	}
	if !parent.PrefixValid() {
		t.Fatalf("warm-up over by cycle %d; enlarge WarmupIters", parent.Cycle())
	}

	// Forks are serialized (they mutate the parent's COW bookkeeping);
	// the forked children and the continuing parent then all run
	// concurrently over the shared frozen state.
	children := make([]*Simulator, len(variants))
	for i, spec := range variants {
		children[i], err = parent.ForkProgram(build(spec))
		if err != nil {
			t.Fatalf("fork variant %d: %v", i, err)
		}
	}
	results := make([]*Result, len(variants))
	var parentRes *Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		parentRes = run(parent)
	}()
	for i := range children {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = run(children[i])
		}(i)
	}
	wg.Wait()

	if !reflect.DeepEqual(refs[0], parentRes) {
		t.Error("parent-continue result differs from scratch")
	}
	for i := range variants {
		if !reflect.DeepEqual(refs[i], results[i]) {
			t.Errorf("variant %d: concurrent forked result differs from scratch", i)
		}
	}
}
