package core

import (
	"fmt"

	"clustersmt/internal/config"
	"clustersmt/internal/interp"
	"clustersmt/internal/isa"
	"clustersmt/internal/parallel"
	"clustersmt/internal/stats"
)

// blockReason says why a thread's front end is stalled.
type blockReason uint8

const (
	blockNone    blockReason = iota
	blockBranch              // mispredicted branch in flight; resume at resolve
	blockLock                // spinning on a held lock
	blockBarrier             // parked at a barrier
	blockMigrate             // pipeline refill after a cluster migration
)

// threadCtx is one hardware context: a functional thread plus its
// front-end state and in-flight bookkeeping.
type threadCtx struct {
	id      int
	chip    int
	cluster *cluster
	fn      *interp.Thread
	// sync is the thread's synchronization controller (shared by all
	// threads of one parallel program; private per multiprogrammed job).
	sync *parallel.Sync
	// memBase offsets the thread's addresses in the physical memory
	// system (0 for a shared-address-space program; per-job stride for
	// multiprogramming).
	memBase int64

	block         blockReason
	pendingBranch *entry // mispredicted branch being waited on
	lockGranted   bool   // TryLock succeeded while blocked; consume at fetch
	barArrived    bool
	barTarget     uint64

	// migrateTo, when non-nil, marks the thread as draining for a
	// migration to that cluster: fetch skips it, its in-flight window
	// empties through normal commit, and the move happens between
	// cycles once inWindow reaches zero (core/alloc.go). migrateReady
	// is the cycle the post-move blockMigrate refill stall lifts.
	migrateTo    *cluster
	migrateReady int64

	lastWriterInt [isa.NumIntRegs]*entry
	lastWriterFP  [isa.NumFPRegs]*entry

	// lastStore maps an effective address to the thread's youngest
	// in-flight store to it (lazily allocated; evicted at commit). Loads
	// bind their forwarding candidate from it at fetch, replacing the
	// per-issue FIFO scan.
	lastStore map[int64]*entry

	fifo     []*entry // program order, for in-order commit
	fifoHead int
	inWindow int

	// frontEvent caches the cycle the fifo front can first commit:
	// its completeAt once issued, noEvent while it is still dispatched
	// or the fifo is empty. Commit's per-cycle poll over every thread
	// then compares one cached int instead of dereferencing the front
	// entry. Maintained at the three places the front can change:
	// push into an empty fifo, the front entry issuing, and pop.
	frontEvent int64

	fetched   uint64
	committed uint64
}

// done reports whether the thread has halted and drained.
func (t *threadCtx) done() bool { return t.fn.Halted && t.inWindow == 0 }

func (t *threadCtx) fifoLen() int { return len(t.fifo) - t.fifoHead }

func (t *threadCtx) fifoFront() *entry { return t.fifo[t.fifoHead] }

func (t *threadCtx) fifoPop() {
	t.fifo[t.fifoHead] = nil
	t.fifoHead++
	if t.fifoHead >= 128 && t.fifoHead*2 >= len(t.fifo) {
		n := copy(t.fifo, t.fifo[t.fifoHead:])
		for i := n; i < len(t.fifo); i++ {
			t.fifo[i] = nil
		}
		t.fifo = t.fifo[:n]
		t.fifoHead = 0
	}
	t.frontEvent = noEvent
	if t.fifoLen() > 0 {
		if f := t.fifoFront(); f.state != stateDispatched {
			t.frontEvent = f.completeAt
		}
	}
}

// cluster is one SMT core: the unit of resource partitioning. Nothing
// in a cluster is visible to any other cluster (§3.3).
type cluster struct {
	chip int
	idx  int
	// gid is the cluster's index in Simulator.clusters (chip-major
	// global order) — the order the sequential loop visits clusters in,
	// and hence the order the parallel mode's turn protocol enforces.
	gid int
	cfg config.Arch

	// storeQ collects the addresses of stores committed this cycle when
	// parallel execution defers the memory-system access; the
	// coordinator drains the queues in global cluster order between the
	// commit and issue phases (parallel.go).
	storeQ []int64

	threads []*threadCtx
	// migrateIn counts accepted-but-not-yet-completed migrations headed
	// here; capacity checks charge them so an epoch can never oversubscribe
	// a cluster's hardware contexts.
	migrateIn int
	window    []*entry // reorder buffer: dispatch -> commit
	iqCount   int      // instruction-queue occupancy: dispatch -> issue
	zombies   int      // committed entries not yet swept out of window
	seq       uint64

	renameIntFree int
	renameFPFree  int

	// nextFree[i] is the cycle unit i of the class becomes available.
	intUnits  []int64
	ldstUnits []int64
	fpUnits   []int64

	// minFree[fuIdx(class)] caches the earliest next-free cycle across
	// the class's units, so a failed freeUnit probe (and fast-forward's
	// next-event computation) is O(1) instead of a scan.
	minFree [3]int64

	// Wakeup-path state (wakeup.go): the front-end pending deque
	// (entries not yet past the decode/rename delay, in fetch and hence
	// eligibleAt order), the time-bucketed wakeup wheel, the seq-sorted
	// ready list, and the waiting entries' hazard tallies maintained
	// incrementally. All empty on the scan path.
	pending     []*entry
	pendingHead int
	wheel       wheel
	ready       []*entry
	waitMemN    int
	waitDataN   int

	bp  *BranchPredictor
	btb *BTB

	// icount selects the ICOUNT fetch policy (fewest in-flight
	// instructions first) instead of pure round-robin — the Tullsen
	// alternative §5.2 mentions for the centralized SMT's fetch
	// bottleneck. Off by default.
	icount bool

	fetchRR  int
	commitRR int

	// arena batch-allocates window entries (entryArenaSize at a time) so
	// the steady-state fetch path does not hit the allocator once per
	// instruction. Slots are never reused — in-flight pointers (window,
	// fifo, lastWriter, producers) stay valid — and retention is bounded
	// because committed entries drop their producer links.
	arena []entry

	// Per-run counters.
	slots            stats.Slots
	renameStalls     uint64
	fetchGroups      uint64
	windowFullStalls uint64

	// pcHighWater is an upper bound on every static PC this cluster's
	// threads have touched (executed, or peeked by the front end /
	// fast-forward probes): it tracks the post-Step PC, which dominates
	// both the executed PC and the PC any subsequent Peek reads. The
	// fork path compares it against Program.PrefixLen to decide whether
	// a warm-up checkpoint is still variant-independent (snapshot.go).
	pcHighWater int64
}

// entryArenaSize is the batch size of the cluster entry allocator —
// small enough that stale lastWriter references (at most one per
// architectural register per thread) pin only a bounded tail of chunks.
const entryArenaSize = 64

// newEntry returns a fresh zeroed entry from the cluster's arena.
func (c *cluster) newEntry() *entry {
	if len(c.arena) == 0 {
		c.arena = make([]entry, entryArenaSize)
	}
	e := &c.arena[0]
	c.arena = c.arena[1:]
	return e
}

func newCluster(chip, idx int, cfg config.Arch) *cluster {
	return &cluster{
		chip:          chip,
		idx:           idx,
		cfg:           cfg,
		renameIntFree: cfg.RenameInt,
		renameFPFree:  cfg.RenameFP,
		intUnits:      make([]int64, cfg.IntUnits),
		ldstUnits:     make([]int64, cfg.LdStUnits),
		fpUnits:       make([]int64, cfg.FPUnits),
		bp:            NewBranchPredictor(cfg.PredictorSize()),
		btb:           NewBTB(cfg.BTBSize()),
	}
}

func (c *cluster) units(class isa.Class) []int64 {
	switch class {
	case isa.ClassLoad, isa.ClassStore:
		return c.ldstUnits
	case isa.ClassFP:
		return c.fpUnits
	default:
		return c.intUnits
	}
}

// fuIdx maps a functional-unit class to its minFree slot.
func fuIdx(class isa.Class) int {
	switch class {
	case isa.ClassLoad, isa.ClassStore:
		return 1
	case isa.ClassFP:
		return 2
	default:
		return 0
	}
}

// freeUnit returns the index of an available unit of the class at cycle
// now, or -1. The cached class minimum rejects the all-busy case — the
// common outcome under structural hazards and the one fast-forward
// probes — without touching the array.
func (c *cluster) freeUnit(class isa.Class, now int64) int {
	if c.minFree[fuIdx(class)] > now {
		return -1
	}
	us := c.units(class)
	for i, free := range us {
		if free <= now {
			return i
		}
	}
	return -1
}

// busyUnit marks unit of class busy until the given cycle, keeping the
// class's cached minimum next-free cycle exact.
func (c *cluster) busyUnit(class isa.Class, unit int, until int64) {
	us := c.units(class)
	us[unit] = until
	min := us[0]
	for _, f := range us[1:] {
		if f < min {
			min = f
		}
	}
	c.minFree[fuIdx(class)] = min
}

// nextUnitFree returns the earliest cycle any unit of the class frees —
// with every unit busy, the class's next structural event.
func (c *cluster) nextUnitFree(class isa.Class) int64 {
	return c.minFree[fuIdx(class)]
}

// ---- commit ----

// commit retires up to IssueWidth completed instructions across the
// cluster's threads, each thread strictly in order (§3.2: "instructions
// are committed on a per-thread basis"). It reports whether anything
// retired (the fast-forward idleness signal).
func (c *cluster) commit(s *Simulator, now int64) bool {
	budget := c.cfg.IssueWidth
	removed := false
	n := len(c.threads)
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[(c.commitRR+i)%n]
		for budget > 0 && t.frontEvent <= now {
			e := t.fifoFront()
			t.fifoPop()
			if e.isStore {
				if s.par != nil {
					// Parallel commit phase: chips commit concurrently, so
					// the (machine-global) memory-system store is deferred
					// to the coordinator, which drains the queues in exact
					// sequential order. Store never feeds a value back into
					// commit, so deferral is invisible to this stage.
					c.storeQ = append(c.storeQ, e.d.Addr+e.thread.memBase)
				} else if s.tr != nil {
					pre := s.dirCounters()
					s.msys.Store(now, c.chip, e.d.Addr+e.thread.memBase)
					s.traceDirDelta(now, c, e, pre)
				} else {
					s.msys.Store(now, c.chip, e.d.Addr+e.thread.memBase)
				}
			}
			if e.usesIntRename {
				c.renameIntFree++
			}
			if e.usesFPRename {
				c.renameFPFree++
			}
			e.committed = true
			c.zombies++
			e.dropProducers()
			if e.isStore && t.lastStore[e.d.Addr] == e {
				// Youngest in-flight store to this address: nothing
				// younger replaced it, so the mapping dies with it and
				// the map stays bounded by in-flight stores.
				delete(t.lastStore, e.d.Addr)
			}
			t.inWindow--
			if t.fn.Halted && t.inWindow == 0 {
				// The thread just drained after its halt: it leaves the
				// running-thread count (it cannot be sync-blocked here —
				// blocked threads never fetch, so they never halt).
				s.noteFinished(c.chip)
			}
			t.committed++
			s.noteCommitted(c.chip)
			s.traceEvent(now, c, "C", e)
			budget--
			removed = true
		}
	}
	c.commitRR++

	// Compact lazily: committed entries are invisible to every window
	// walk already (their state is not dispatched), so sweeping them out
	// each cycle — a full pointer-slice rewrite, all barriered writes —
	// buys nothing. They only pad the slice, which the capacity checks
	// correct for via c.zombies. Sweep once a quarter-window of zombies
	// accumulates (or the window is all zombies, so the sweep is free),
	// skipping the still-uncommitted prefix in place.
	if threshold := c.cfg.WindowEntries / 4; c.zombies > 0 &&
		(c.zombies > threshold || c.zombies == len(c.window)) {
		w := c.window
		i := 0
		for i < len(w) && !w[i].committed {
			i++
		}
		j := i
		for ; i < len(w); i++ {
			if e := w[i]; !e.committed {
				w[j] = e
				j++
			}
		}
		for k := j; k < len(w); k++ {
			w[k] = nil
		}
		c.window = w[:j]
		c.zombies = 0
	}
	return removed
}

// ---- issue ----

// issue is the reference issue stage: it selects up to IssueWidth ready
// instructions, oldest first, by re-scanning every window entry, and
// starts them on functional units. Unissuable instructions vote for
// their hazard class (§4.1). The wakeup path (issueEvent, wakeup.go)
// replaces the scan and must stay bit-identical to it.
func (c *cluster) issue(s *Simulator, now int64, votes *stats.Votes) int {
	issued := 0
	for _, e := range c.window {
		if issued >= c.cfg.IssueWidth {
			break
		}
		if e.state != stateDispatched || now < e.eligibleAt {
			continue
		}
		ready, memWait := e.sourcesReady(now)
		if !ready {
			if memWait {
				votes[stats.Memory]++
			} else {
				votes[stats.Data]++
			}
			continue
		}
		if c.tryIssue(s, e, now, votes) {
			issued++
		}
	}
	return issued
}

// debugCheckForwarding, set by tests, cross-checks the fetch-bound
// forwarding candidate against the reference FIFO scan on every load
// issue attempt.
var debugCheckForwarding bool

// tryIssue attempts to start a source-ready entry on a functional unit
// at cycle now. On failure it records the entry's hazard vote —
// structural on FU exhaustion, data behind a pending same-address
// store, memory when the MSHR file is full — and reports false; the
// caller retries next cycle. Shared by the scan and wakeup issue paths
// so the two stay vote-, order- and side-effect-identical by
// construction.
func (c *cluster) tryIssue(s *Simulator, e *entry, now int64, votes *stats.Votes) bool {
	class := e.fuCl
	unit := c.freeUnit(class, now)
	if unit < 0 {
		votes[stats.Structural]++
		return false
	}

	var completeAt int64
	switch {
	case e.isLoad:
		st := e.forwardingStore()
		if debugCheckForwarding {
			if ref := c.forwardingStoreScan(e); ref != st {
				panic(fmt.Sprintf("core: forwarding map %v disagrees with FIFO scan %v (load seq %d)", st, ref, e.seq))
			}
		}
		if st != nil {
			if !st.done(now) {
				// Store-to-load dependence through memory whose
				// producer has not generated its value yet.
				votes[stats.Data]++
				return false
			}
			e.forwarded = true
			completeAt = now + e.lat
			s.noteForwarded(c.chip)
		} else {
			var pre dirCounters
			if s.tr != nil {
				pre = s.dirCounters()
			}
			dataReady, cls, ok := s.msys.Load(now, c.chip, e.d.Addr+e.thread.memBase)
			if !ok {
				// MSHR file full: retry next cycle.
				votes[stats.Memory]++
				return false
			}
			e.memClass = cls
			// Table 1 charges loads 2 cycles on an L1 hit: address
			// generation plus the 1-cycle L1 round trip returned by
			// the memory system.
			completeAt = dataReady + 1
			if s.tr != nil {
				s.traceMem(now, completeAt, c, e, cls)
				s.traceDirDelta(now, c, e, pre)
			}
		}
	case e.isStore:
		// Address generation only; the access itself happens at
		// commit and never blocks the pipeline.
		completeAt = now + e.lat
	default:
		lat := e.lat
		if lat <= 0 {
			lat = 1
		}
		completeAt = now + lat
	}

	c.busyUnit(class, unit, now+e.occ)

	e.state = stateIssued
	e.completeAt = completeAt
	if t := e.thread; t.fifo[t.fifoHead] == e {
		t.frontEvent = completeAt
	}
	c.iqCount--
	s.traceEvent(now, c, "I", e)
	if s.EventIssue {
		c.wake(e)
	}
	return true
}

// forwardingStoreScan is the reference FIFO scan behind
// entry.forwardingStore's map-bound answer; kept for the equivalence
// tests (wakeup_test.go) and the debugCheckForwarding cross-check.
func (c *cluster) forwardingStoreScan(load *entry) *entry {
	t := load.thread
	for i := len(t.fifo) - 1; i >= t.fifoHead; i-- {
		e := t.fifo[i]
		if e.seq >= load.seq {
			continue
		}
		if e.isStore && e.d.Addr == load.d.Addr {
			return e
		}
	}
	return nil
}

// ---- fetch ----

// unblock re-evaluates every blocked thread at the start of the fetch
// stage: branch redirects resolve when the branch completes; lock
// spinners retry acquisition (grant order follows deterministic
// simulator polling order); barrier waiters check the generation. It
// reports whether any thread resumed (failed lock polls do not count:
// they leave the machine frozen and are bulk-replayed by fast-forward).
func (c *cluster) unblock(s *Simulator, now int64) bool {
	resumed := false
	for _, t := range c.threads {
		switch t.block {
		case blockBranch:
			if t.pendingBranch.done(now) {
				t.block = blockNone
				t.pendingBranch = nil
				resumed = true
			}
		case blockLock:
			if !t.lockGranted && t.sync.TryLock(t.fn.Peek().Imm, t.id) {
				t.lockGranted = true
			}
			if t.lockGranted {
				t.block = blockNone
				s.addRunning(c.chip, 1)
				resumed = true
			}
		case blockBarrier:
			if t.sync.Released(t.fn.Peek().Imm, t.barTarget) {
				t.block = blockNone
				s.addRunning(c.chip, 1)
				resumed = true
			}
		case blockMigrate:
			// Pipeline refill after a migration: a plain timed stall, not
			// a synchronization block, so the running count never moved.
			if now >= t.migrateReady {
				t.block = blockNone
				resumed = true
			}
		}
	}
	return resumed
}

// fetch selects a thread round-robin (§3.2) and pulls up to IssueWidth
// instructions from its functional context into the window, stopping at
// taken branches, mispredictions, blocking sync, halts, or resource
// exhaustion. Slots the first thread leaves unused are offered to one
// more thread (the fetch-partitioning alternative of [Tullsen et al.]
// that §5.2 cites), which keeps many-context clusters from starving
// chain-bound threads.
func (c *cluster) fetch(s *Simulator, now int64, votes *stats.Votes) bool {
	budget := c.cfg.IssueWidth
	progress := false
	for picks := 0; picks < 2 && budget > 0; picks++ {
		t := c.pickFetchThread()
		if t == nil {
			break
		}
		// Progress means instructions entered the window or the thread's
		// block state changed; a fruitless stalled pick is not progress
		// (its counters are bulk-replayed by the fast-forward).
		fetchedBefore, blockBefore := t.fetched, t.block
		budget = c.fetchFrom(s, t, now, budget, votes)
		if t.fetched != fetchedBefore || t.block != blockBefore {
			progress = true
		}
	}
	return progress
}

// fetchFrom pulls up to budget instructions from t, returning the
// unused budget.
func (c *cluster) fetchFrom(s *Simulator, t *threadCtx, now int64, budget int, votes *stats.Votes) int {
	c.fetchGroups++

	width := budget
	for n := 0; n < width; n++ {
		if t.fn.Halted {
			break
		}
		// Table 2 sizes the instruction queue and the reorder buffer
		// separately (equal sizes): issued instructions leave the
		// queue, so long-latency loads in flight do not clog it.
		if len(c.window)-c.zombies >= c.cfg.WindowEntries || c.iqCount >= c.cfg.WindowEntries {
			c.windowFullStalls++
			break
		}
		in := t.fn.Peek()
		inf := in.Info()

		// Synchronization is resolved at the front end; the paper's
		// spin-wait slots surface as the thread voting "sync" while
		// blocked here. Under parallel execution, sync operations (and
		// swap, the one functional read-modify-write) go through the
		// turn protocol so the shared controller sees them in exactly
		// the sequential cluster order.
		if s.par != nil {
			switch in.Op {
			case isa.OpLock, isa.OpUnlock, isa.OpBarrier, isa.OpSwap:
				s.ensureTurn(c)
			}
		}
		switch in.Op {
		case isa.OpLock:
			if t.lockGranted {
				t.lockGranted = false
			} else if !t.sync.TryLock(in.Imm, t.id) {
				t.block = blockLock
				s.addRunning(c.chip, -1)
				return 0 // fetch redirect consumes the cycle
			}
		case isa.OpUnlock:
			t.sync.Unlock(in.Imm, t.id)
		case isa.OpBarrier:
			if !t.barArrived {
				t.barTarget = t.sync.Arrive(in.Imm)
				t.barArrived = true
			}
			if !t.sync.Released(in.Imm, t.barTarget) {
				t.block = blockBarrier
				s.addRunning(c.chip, -1)
				return 0 // fetch redirect consumes the cycle
			}
			t.barArrived = false
		}

		// Rename: one register from the matching pool per destination.
		needInt := inf.WritesRD && in.RD != isa.RegZero
		needFP := inf.WritesFD
		if (needInt && c.renameIntFree == 0) || (needFP && c.renameFPFree == 0) {
			c.renameStalls++
			votes[stats.Other]++
			return 0
		}

		d := t.fn.Step()
		if pc := t.fn.PC; pc > c.pcHighWater {
			// Post-Step PC: the next instruction this thread can touch.
			// Recording it (rather than d.PC) also covers front-end Peeks
			// that never reach Step — a thread's current PC is always some
			// earlier Step's post-PC, or the entry point.
			c.pcHighWater = pc
		}
		fc := inf.Class
		if fc == isa.ClassNone {
			// Sync and halt pseudo-ops borrow an integer unit slot.
			fc = isa.ClassInt
		}
		occ := int64(1)
		if !inf.Pipel {
			occ = int64(inf.Latency)
		}
		e := c.newEntry()
		*e = entry{
			d:          d,
			thread:     t,
			seq:        c.seq,
			fetchedAt:  now,
			eligibleAt: now + config.FrontEndDelay,
			fuCl:       fc,
			lat:        int64(inf.Latency),
			occ:        occ,
			isLoad:     inf.Class == isa.ClassLoad,
			isStore:    inf.Class == isa.ClassStore,
			isBranch:   inf.Branch,
		}
		c.seq++

		// Wire register dependences to in-flight producers.
		np := 0
		if inf.ReadsRS1 && in.RS1 != isa.RegZero {
			np = e.addProducer(t.lastWriterInt[in.RS1], np)
		}
		if inf.ReadsRS2 && in.RS2 != isa.RegZero {
			np = e.addProducer(t.lastWriterInt[in.RS2], np)
		}
		if inf.ReadsFS1 {
			np = e.addProducer(t.lastWriterFP[in.FS1], np)
		}
		if inf.ReadsFS2 {
			np = e.addProducer(t.lastWriterFP[in.FS2], np)
		}
		if needInt {
			c.renameIntFree--
			e.usesIntRename = true
			t.lastWriterInt[in.RD] = e
		}
		if needFP {
			c.renameFPFree--
			e.usesFPRename = true
			t.lastWriterFP[in.FD] = e
		}

		// Memory-dependence bookkeeping: stores publish themselves as
		// the youngest write to their address; loads bind the current
		// youngest as their forwarding candidate (addresses are known
		// at fetch, §3.1).
		switch {
		case e.isStore:
			if t.lastStore == nil {
				t.lastStore = make(map[int64]*entry)
			}
			t.lastStore[e.d.Addr] = e
		case e.isLoad:
			e.fwdStore = t.lastStore[e.d.Addr]
		}

		c.window = append(c.window, e)
		c.iqCount++
		t.fifo = append(t.fifo, e)
		t.inWindow++
		t.fetched++
		s.traceEvent(now, c, "F", e)
		if s.EventIssue {
			c.dispatchEvent(e)
		}

		if inf.Branch {
			if c.handleBranch(t, e, d) {
				// The redirect point: no wrong-path instructions were
				// fetched, so the squash marks where fetch stops.
				s.traceEvent(now, c, "S", e)
				return 0 // mispredicted: fetch blocked until resolve
			}
			if d.Taken {
				// The taken branch ends this thread's group; leftover
				// slots may go to the next thread.
				return budget - (n + 1)
			}
		}
	}
	fetched := width
	if len(c.window)-c.zombies >= c.cfg.WindowEntries || c.iqCount >= c.cfg.WindowEntries || t.fn.Halted {
		// Window-full and halt paths may have consumed fewer slots,
		// but a full window ends the cycle's fetching entirely.
		return 0
	}
	return budget - fetched
}

// handleBranch trains the predictors and, on a misprediction, blocks
// the thread's fetch until the branch resolves. It returns true when
// fetch must stop because of a misprediction.
func (c *cluster) handleBranch(t *threadCtx, e *entry, d interp.DynInstr) bool {
	switch {
	case d.Instr.Info().CondBr:
		_, correct := c.bp.PredictAndUpdate(d.PC, d.Taken)
		if !correct {
			e.mispredicted = true
		}
	case d.Instr.Op == isa.OpJr:
		_, correct := c.btb.PredictAndUpdate(d.PC, d.Target)
		if !correct {
			e.mispredicted = true
		}
	default:
		// Direct jumps (jump/jal) have statically known targets: no
		// misprediction, just a fetch break handled by the caller.
	}
	if e.mispredicted {
		t.block = blockBranch
		t.pendingBranch = e
		return true
	}
	return false
}

// pickFetchThread returns the next fetchable thread — round-robin by
// default, or the thread with the fewest in-flight instructions under
// the ICOUNT policy (round-robin breaks ties) — or nil when no thread
// can fetch this cycle.
func (c *cluster) pickFetchThread() *threadCtx {
	n := len(c.threads)
	if c.icount {
		var best *threadCtx
		bestIdx := 0
		for i := 0; i < n; i++ {
			t := c.threads[(c.fetchRR+i)%n]
			if t.fn.Halted || t.block != blockNone || t.migrateTo != nil {
				continue
			}
			if best == nil || t.inWindow < best.inWindow {
				best, bestIdx = t, i
			}
		}
		if best != nil {
			c.fetchRR = (c.fetchRR + bestIdx + 1) % n
		}
		return best
	}
	for i := 0; i < n; i++ {
		t := c.threads[(c.fetchRR+i)%n]
		if t.fn.Halted || t.block != blockNone || t.migrateTo != nil {
			continue
		}
		c.fetchRR = (c.fetchRR + i + 1) % n
		return t
	}
	return nil
}

// threadVotes adds the per-thread front-end hazard votes for this cycle
// (§4.1: sync, control and fetch classes).
func (c *cluster) threadVotes(votes *stats.Votes) {
	for _, t := range c.threads {
		switch {
		case t.done():
			// Finished threads contribute nothing.
		case t.block == blockLock || t.block == blockBarrier:
			votes[stats.Sync]++
		case t.block == blockBranch:
			votes[stats.Control]++
		case t.block == blockMigrate:
			// Migration refill is charged as an "other" pipeline stall —
			// it is neither synchronization nor a control hazard.
			votes[stats.Other]++
		case t.inWindow == 0:
			votes[stats.Fetch]++
		}
	}
}
