package core

import (
	"clustersmt/internal/config"
	"clustersmt/internal/interp"
	"clustersmt/internal/isa"
	"clustersmt/internal/parallel"
	"clustersmt/internal/stats"
)

// blockReason says why a thread's front end is stalled.
type blockReason uint8

const (
	blockNone    blockReason = iota
	blockBranch              // mispredicted branch in flight; resume at resolve
	blockLock                // spinning on a held lock
	blockBarrier             // parked at a barrier
)

// threadCtx is one hardware context: a functional thread plus its
// front-end state and in-flight bookkeeping.
type threadCtx struct {
	id      int
	chip    int
	cluster *cluster
	fn      *interp.Thread
	// sync is the thread's synchronization controller (shared by all
	// threads of one parallel program; private per multiprogrammed job).
	sync *parallel.Sync
	// memBase offsets the thread's addresses in the physical memory
	// system (0 for a shared-address-space program; per-job stride for
	// multiprogramming).
	memBase int64

	block         blockReason
	pendingBranch *entry // mispredicted branch being waited on
	lockGranted   bool   // TryLock succeeded while blocked; consume at fetch
	barArrived    bool
	barTarget     uint64

	lastWriterInt [isa.NumIntRegs]*entry
	lastWriterFP  [isa.NumFPRegs]*entry

	fifo     []*entry // program order, for in-order commit
	fifoHead int
	inWindow int

	fetched   uint64
	committed uint64
}

// done reports whether the thread has halted and drained.
func (t *threadCtx) done() bool { return t.fn.Halted && t.inWindow == 0 }

func (t *threadCtx) fifoLen() int { return len(t.fifo) - t.fifoHead }

func (t *threadCtx) fifoFront() *entry { return t.fifo[t.fifoHead] }

func (t *threadCtx) fifoPop() {
	t.fifo[t.fifoHead] = nil
	t.fifoHead++
	if t.fifoHead >= 128 && t.fifoHead*2 >= len(t.fifo) {
		n := copy(t.fifo, t.fifo[t.fifoHead:])
		for i := n; i < len(t.fifo); i++ {
			t.fifo[i] = nil
		}
		t.fifo = t.fifo[:n]
		t.fifoHead = 0
	}
}

// cluster is one SMT core: the unit of resource partitioning. Nothing
// in a cluster is visible to any other cluster (§3.3).
type cluster struct {
	chip int
	idx  int
	cfg  config.Arch

	threads []*threadCtx
	window  []*entry // reorder buffer: dispatch -> commit
	iqCount int      // instruction-queue occupancy: dispatch -> issue
	seq     uint64

	renameIntFree int
	renameFPFree  int

	// nextFree[i] is the cycle unit i of the class becomes available.
	intUnits  []int64
	ldstUnits []int64
	fpUnits   []int64

	bp  *BranchPredictor
	btb *BTB

	// icount selects the ICOUNT fetch policy (fewest in-flight
	// instructions first) instead of pure round-robin — the Tullsen
	// alternative §5.2 mentions for the centralized SMT's fetch
	// bottleneck. Off by default.
	icount bool

	fetchRR  int
	commitRR int

	// arena batch-allocates window entries (entryArenaSize at a time) so
	// the steady-state fetch path does not hit the allocator once per
	// instruction. Slots are never reused — in-flight pointers (window,
	// fifo, lastWriter, producers) stay valid — and retention is bounded
	// because committed entries drop their producer links.
	arena []entry

	// Per-run counters.
	slots            stats.Slots
	renameStalls     uint64
	fetchGroups      uint64
	windowFullStalls uint64
}

// entryArenaSize is the batch size of the cluster entry allocator —
// small enough that stale lastWriter references (at most one per
// architectural register per thread) pin only a bounded tail of chunks.
const entryArenaSize = 64

// newEntry returns a fresh zeroed entry from the cluster's arena.
func (c *cluster) newEntry() *entry {
	if len(c.arena) == 0 {
		c.arena = make([]entry, entryArenaSize)
	}
	e := &c.arena[0]
	c.arena = c.arena[1:]
	return e
}

func newCluster(chip, idx int, cfg config.Arch) *cluster {
	return &cluster{
		chip:          chip,
		idx:           idx,
		cfg:           cfg,
		renameIntFree: cfg.RenameInt,
		renameFPFree:  cfg.RenameFP,
		intUnits:      make([]int64, cfg.IntUnits),
		ldstUnits:     make([]int64, cfg.LdStUnits),
		fpUnits:       make([]int64, cfg.FPUnits),
		bp:            NewBranchPredictor(cfg.PredictorSize()),
		btb:           NewBTB(cfg.BTBSize()),
	}
}

func (c *cluster) units(class isa.Class) []int64 {
	switch class {
	case isa.ClassLoad, isa.ClassStore:
		return c.ldstUnits
	case isa.ClassFP:
		return c.fpUnits
	default:
		return c.intUnits
	}
}

// freeUnit returns the index of an available unit of the class at cycle
// now, or -1.
func (c *cluster) freeUnit(class isa.Class, now int64) int {
	us := c.units(class)
	for i, free := range us {
		if free <= now {
			return i
		}
	}
	return -1
}

// ---- commit ----

// commit retires up to IssueWidth completed instructions across the
// cluster's threads, each thread strictly in order (§3.2: "instructions
// are committed on a per-thread basis"). It reports whether anything
// retired (the fast-forward idleness signal).
func (c *cluster) commit(s *Simulator, now int64) bool {
	budget := c.cfg.IssueWidth
	removed := false
	n := len(c.threads)
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[(c.commitRR+i)%n]
		for budget > 0 && t.fifoLen() > 0 && t.fifoFront().done(now) {
			e := t.fifoFront()
			t.fifoPop()
			if e.isStore {
				s.msys.Store(now, c.chip, e.d.Addr+e.thread.memBase)
			}
			if e.usesIntRename {
				c.renameIntFree++
			}
			if e.usesFPRename {
				c.renameFPFree++
			}
			e.committed = true
			e.dropProducers()
			t.inWindow--
			if t.fn.Halted && t.inWindow == 0 {
				// The thread just drained after its halt: it leaves the
				// running-thread count (it cannot be sync-blocked here —
				// blocked threads never fetch, so they never halt).
				s.running--
				s.finished++
			}
			t.committed++
			s.committed++
			s.traceEvent(now, c, "C", e)
			budget--
			removed = true
		}
	}
	c.commitRR++
	if removed {
		w := c.window[:0]
		for _, e := range c.window {
			if !e.committed {
				w = append(w, e)
			}
		}
		for i := len(w); i < len(c.window); i++ {
			c.window[i] = nil
		}
		c.window = w
	}
	return removed
}

// ---- issue ----

// issue selects up to IssueWidth ready instructions, oldest first, and
// starts them on functional units. Unissuable instructions vote for
// their hazard class (§4.1).
func (c *cluster) issue(s *Simulator, now int64, votes *stats.Votes) int {
	issued := 0
	for _, e := range c.window {
		if issued >= c.cfg.IssueWidth {
			break
		}
		if e.state != stateDispatched || now < e.eligibleAt {
			continue
		}
		ready, memWait := e.sourcesReady(now)
		if !ready {
			if memWait {
				votes[stats.Memory]++
			} else {
				votes[stats.Data]++
			}
			continue
		}
		class := e.fuClass()
		unit := c.freeUnit(class, now)
		if unit < 0 {
			votes[stats.Structural]++
			continue
		}

		var completeAt int64
		inf := e.d.Instr.Info()
		switch {
		case e.isLoad:
			if st := c.forwardingStore(e); st != nil {
				if !st.done(now) {
					// Store-to-load dependence through memory whose
					// producer has not generated its value yet.
					votes[stats.Data]++
					continue
				}
				e.forwarded = true
				completeAt = now + int64(inf.Latency)
				s.forwardedLoads++
			} else {
				dataReady, cls, ok := s.msys.Load(now, c.chip, e.d.Addr+e.thread.memBase)
				if !ok {
					// MSHR file full: retry next cycle.
					votes[stats.Memory]++
					continue
				}
				e.memClass = cls
				// Table 1 charges loads 2 cycles on an L1 hit: address
				// generation plus the 1-cycle L1 round trip returned by
				// the memory system.
				completeAt = dataReady + 1
			}
		case e.isStore:
			// Address generation only; the access itself happens at
			// commit and never blocks the pipeline.
			completeAt = now + int64(inf.Latency)
		default:
			lat := int64(inf.Latency)
			if lat <= 0 {
				lat = 1
			}
			completeAt = now + lat
		}

		occupancy := int64(1)
		if !inf.Pipel {
			occupancy = int64(inf.Latency)
		}
		c.units(class)[unit] = now + occupancy

		e.state = stateIssued
		e.completeAt = completeAt
		c.iqCount--
		s.traceEvent(now, c, "I", e)
		issued++
	}
	return issued
}

// forwardingStore returns the youngest older same-thread, same-address
// store still in the window, or nil ("full load bypassing" with exact
// disambiguation, §3.1 — addresses are known at fetch).
func (c *cluster) forwardingStore(load *entry) *entry {
	t := load.thread
	for i := len(t.fifo) - 1; i >= t.fifoHead; i-- {
		e := t.fifo[i]
		if e.seq >= load.seq {
			continue
		}
		if e.isStore && e.d.Addr == load.d.Addr {
			return e
		}
	}
	return nil
}

// ---- fetch ----

// unblock re-evaluates every blocked thread at the start of the fetch
// stage: branch redirects resolve when the branch completes; lock
// spinners retry acquisition (grant order follows deterministic
// simulator polling order); barrier waiters check the generation. It
// reports whether any thread resumed (failed lock polls do not count:
// they leave the machine frozen and are bulk-replayed by fast-forward).
func (c *cluster) unblock(s *Simulator, now int64) bool {
	resumed := false
	for _, t := range c.threads {
		switch t.block {
		case blockBranch:
			if t.pendingBranch.done(now) {
				t.block = blockNone
				t.pendingBranch = nil
				resumed = true
			}
		case blockLock:
			if !t.lockGranted && t.sync.TryLock(t.fn.Peek().Imm, t.id) {
				t.lockGranted = true
			}
			if t.lockGranted {
				t.block = blockNone
				s.running++
				resumed = true
			}
		case blockBarrier:
			if t.sync.Released(t.fn.Peek().Imm, t.barTarget) {
				t.block = blockNone
				s.running++
				resumed = true
			}
		}
	}
	return resumed
}

// fetch selects a thread round-robin (§3.2) and pulls up to IssueWidth
// instructions from its functional context into the window, stopping at
// taken branches, mispredictions, blocking sync, halts, or resource
// exhaustion. Slots the first thread leaves unused are offered to one
// more thread (the fetch-partitioning alternative of [Tullsen et al.]
// that §5.2 cites), which keeps many-context clusters from starving
// chain-bound threads.
func (c *cluster) fetch(s *Simulator, now int64, votes *stats.Votes) bool {
	budget := c.cfg.IssueWidth
	progress := false
	for picks := 0; picks < 2 && budget > 0; picks++ {
		t := c.pickFetchThread()
		if t == nil {
			break
		}
		// Progress means instructions entered the window or the thread's
		// block state changed; a fruitless stalled pick is not progress
		// (its counters are bulk-replayed by the fast-forward).
		fetchedBefore, blockBefore := t.fetched, t.block
		budget = c.fetchFrom(s, t, now, budget, votes)
		if t.fetched != fetchedBefore || t.block != blockBefore {
			progress = true
		}
	}
	return progress
}

// fetchFrom pulls up to budget instructions from t, returning the
// unused budget.
func (c *cluster) fetchFrom(s *Simulator, t *threadCtx, now int64, budget int, votes *stats.Votes) int {
	c.fetchGroups++

	width := budget
	for n := 0; n < width; n++ {
		if t.fn.Halted {
			break
		}
		// Table 2 sizes the instruction queue and the reorder buffer
		// separately (equal sizes): issued instructions leave the
		// queue, so long-latency loads in flight do not clog it.
		if len(c.window) >= c.cfg.WindowEntries || c.iqCount >= c.cfg.WindowEntries {
			c.windowFullStalls++
			break
		}
		in := t.fn.Peek()
		inf := in.Info()

		// Synchronization is resolved at the front end; the paper's
		// spin-wait slots surface as the thread voting "sync" while
		// blocked here.
		switch in.Op {
		case isa.OpLock:
			if t.lockGranted {
				t.lockGranted = false
			} else if !t.sync.TryLock(in.Imm, t.id) {
				t.block = blockLock
				s.running--
				return 0 // fetch redirect consumes the cycle
			}
		case isa.OpUnlock:
			t.sync.Unlock(in.Imm, t.id)
		case isa.OpBarrier:
			if !t.barArrived {
				t.barTarget = t.sync.Arrive(in.Imm)
				t.barArrived = true
			}
			if !t.sync.Released(in.Imm, t.barTarget) {
				t.block = blockBarrier
				s.running--
				return 0 // fetch redirect consumes the cycle
			}
			t.barArrived = false
		}

		// Rename: one register from the matching pool per destination.
		needInt := inf.WritesRD && in.RD != isa.RegZero
		needFP := inf.WritesFD
		if (needInt && c.renameIntFree == 0) || (needFP && c.renameFPFree == 0) {
			c.renameStalls++
			votes[stats.Other]++
			return 0
		}

		d := t.fn.Step()
		e := c.newEntry()
		*e = entry{
			d:          d,
			thread:     t,
			seq:        c.seq,
			fetchedAt:  now,
			eligibleAt: now + config.FrontEndDelay,
			isLoad:     inf.Class == isa.ClassLoad,
			isStore:    inf.Class == isa.ClassStore,
			isBranch:   inf.Branch,
		}
		c.seq++

		// Wire register dependences to in-flight producers.
		np := 0
		if inf.ReadsRS1 && in.RS1 != isa.RegZero {
			np = e.addProducer(t.lastWriterInt[in.RS1], np)
		}
		if inf.ReadsRS2 && in.RS2 != isa.RegZero {
			np = e.addProducer(t.lastWriterInt[in.RS2], np)
		}
		if inf.ReadsFS1 {
			np = e.addProducer(t.lastWriterFP[in.FS1], np)
		}
		if inf.ReadsFS2 {
			np = e.addProducer(t.lastWriterFP[in.FS2], np)
		}
		if needInt {
			c.renameIntFree--
			e.usesIntRename = true
			t.lastWriterInt[in.RD] = e
		}
		if needFP {
			c.renameFPFree--
			e.usesFPRename = true
			t.lastWriterFP[in.FD] = e
		}

		c.window = append(c.window, e)
		c.iqCount++
		t.fifo = append(t.fifo, e)
		t.inWindow++
		t.fetched++
		s.traceEvent(now, c, "F", e)

		if inf.Branch {
			if c.handleBranch(t, e, d) {
				return 0 // mispredicted: fetch blocked until resolve
			}
			if d.Taken {
				// The taken branch ends this thread's group; leftover
				// slots may go to the next thread.
				return budget - (n + 1)
			}
		}
	}
	fetched := width
	if len(c.window) >= c.cfg.WindowEntries || c.iqCount >= c.cfg.WindowEntries || t.fn.Halted {
		// Window-full and halt paths may have consumed fewer slots,
		// but a full window ends the cycle's fetching entirely.
		return 0
	}
	return budget - fetched
}

// handleBranch trains the predictors and, on a misprediction, blocks
// the thread's fetch until the branch resolves. It returns true when
// fetch must stop because of a misprediction.
func (c *cluster) handleBranch(t *threadCtx, e *entry, d interp.DynInstr) bool {
	switch {
	case d.Instr.Info().CondBr:
		_, correct := c.bp.PredictAndUpdate(d.PC, d.Taken)
		if !correct {
			e.mispredicted = true
		}
	case d.Instr.Op == isa.OpJr:
		_, correct := c.btb.PredictAndUpdate(d.PC, d.Target)
		if !correct {
			e.mispredicted = true
		}
	default:
		// Direct jumps (jump/jal) have statically known targets: no
		// misprediction, just a fetch break handled by the caller.
	}
	if e.mispredicted {
		t.block = blockBranch
		t.pendingBranch = e
		return true
	}
	return false
}

// pickFetchThread returns the next fetchable thread — round-robin by
// default, or the thread with the fewest in-flight instructions under
// the ICOUNT policy (round-robin breaks ties) — or nil when no thread
// can fetch this cycle.
func (c *cluster) pickFetchThread() *threadCtx {
	n := len(c.threads)
	if c.icount {
		var best *threadCtx
		bestIdx := 0
		for i := 0; i < n; i++ {
			t := c.threads[(c.fetchRR+i)%n]
			if t.fn.Halted || t.block != blockNone {
				continue
			}
			if best == nil || t.inWindow < best.inWindow {
				best, bestIdx = t, i
			}
		}
		if best != nil {
			c.fetchRR = (c.fetchRR + bestIdx + 1) % n
		}
		return best
	}
	for i := 0; i < n; i++ {
		t := c.threads[(c.fetchRR+i)%n]
		if t.fn.Halted || t.block != blockNone {
			continue
		}
		c.fetchRR = (c.fetchRR + i + 1) % n
		return t
	}
	return nil
}

// threadVotes adds the per-thread front-end hazard votes for this cycle
// (§4.1: sync, control and fetch classes).
func (c *cluster) threadVotes(votes *stats.Votes) {
	for _, t := range c.threads {
		switch {
		case t.done():
			// Finished threads contribute nothing.
		case t.block == blockLock || t.block == blockBarrier:
			votes[stats.Sync]++
		case t.block == blockBranch:
			votes[stats.Control]++
		case t.inWindow == 0:
			votes[stats.Fetch]++
		}
	}
}
