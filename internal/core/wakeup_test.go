package core

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// TestMain arms the forwarding cross-check for the whole package: every
// load issue attempt in every test compares the fetch-bound map answer
// against the reference FIFO scan and panics on disagreement.
func TestMain(m *testing.M) {
	debugCheckForwarding = true
	os.Exit(m.Run())
}

// TestStoreForwardingMap pins the per-thread last-store-by-address map:
// a load must bind the youngest older same-address store (not the
// first), and commit must evict mappings so the map drains with the
// in-flight stores.
func TestStoreForwardingMap(t *testing.T) {
	b := prog.NewBuilder("fwdmap")
	b.GlobalWords("nthreads", []uint64{1})
	a := b.Global("a", 1)
	other := b.Global("other", 1)
	b.Li(1, 7)
	b.Li(2, 9)
	b.Fli(1, 3)
	b.Fdiv(2, 1, 1)   // long-latency commit blocker: keeps the stores in-window
	b.St(1, 0, a)     // older store to a
	b.St(2, 0, a)     // younger store to a — the forwarding answer
	b.St(1, 0, other) // different address: must not shadow a
	b.Ld(3, 0, a)
	b.Halt()

	m := config.LowEnd(config.FA1)
	s, err := New(m, b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	s.step() // cycle 0 fetches the whole straight-line body

	th := s.threads[0]
	var stores []*entry
	var load *entry
	for i := th.fifoHead; i < len(th.fifo); i++ {
		e := th.fifo[i]
		if e.isStore {
			stores = append(stores, e)
		}
		if e.isLoad {
			load = e
		}
	}
	if len(stores) != 3 || load == nil {
		t.Fatalf("fetch did not dispatch the kernel in one cycle: %d stores, load %v", len(stores), load)
	}
	if load.fwdStore != stores[1] {
		t.Errorf("load bound store seq %d as forwarding candidate, want the younger same-address store seq %d",
			load.fwdStore.seq, stores[1].seq)
	}
	if got := th.lastStore[stores[0].d.Addr]; got != stores[1] {
		t.Errorf("lastStore[a] = seq %d, want the younger store seq %d", got.seq, stores[1].seq)
	}
	if got, want := load.forwardingStore(), th.cluster.forwardingStoreScan(load); got != want {
		t.Errorf("map answer %v disagrees with reference FIFO scan %v", got, want)
	}

	for !s.done() {
		s.step()
	}
	if len(th.lastStore) != 0 {
		t.Errorf("lastStore holds %d mappings after all stores committed, want 0", len(th.lastStore))
	}
	if r := s.result(); r.ForwardedLoads != 1 {
		t.Errorf("ForwardedLoads = %d, want 1", r.ForwardedLoads)
	}
}

// buildRandomKernel emits a deterministic pseudo-random mix of integer,
// FP, load and store work: dependence chains of random shape, random
// same-address store/load collisions, and a barrier so threads
// interleave. Register r9/r10 carry the loop and are never clobbered.
func buildRandomKernel(seed int64, threads int) *prog.Program {
	rng := rand.New(rand.NewSource(seed))
	b := prog.NewBuilder(fmt.Sprintf("rand%d", seed))
	b.GlobalWords("nthreads", []uint64{uint64(threads)})
	data := b.Global("data", 32)

	for r := 1; r <= 6; r++ {
		b.Li(isa.Reg(r), rng.Int63n(50)+1)
	}
	for f := 1; f <= 4; f++ {
		b.Fli(isa.Reg(f), float64(rng.Intn(9)+1))
	}
	b.Li(9, 0)
	b.Li(10, int64(6+rng.Intn(6)))
	b.CountedLoop(9, 10, func() {
		n := 20 + rng.Intn(30)
		for k := 0; k < n; k++ {
			ri := func() isa.Reg { return isa.Reg(1 + rng.Intn(6)) }
			rf := func() isa.Reg { return isa.Reg(1 + rng.Intn(4)) }
			slot := data + 8*int64(rng.Intn(32))
			switch rng.Intn(8) {
			case 0:
				b.Add(ri(), ri(), ri())
			case 1:
				b.Mul(ri(), ri(), ri())
			case 2:
				b.Fadd(rf(), rf(), rf())
			case 3:
				b.Fmul(rf(), rf(), rf())
			case 4:
				b.Fdiv(rf(), rf(), rf())
			case 5:
				b.Ld(ri(), 0, slot)
			case 6:
				b.St(ri(), 0, slot)
			case 7:
				b.Stf(rf(), 0, slot)
			}
		}
	})
	b.Barrier(0)
	b.Halt()
	return b.MustBuild()
}

// TestWakeupICountDifferential covers the ICOUNT fetch policy on the
// wakeup path (the compute-bound benchmark runs ICOUNT + wakeup): with
// the fetch pick order driven by in-flight counts instead of
// round-robin, scan and wakeup must still produce bit-identical
// Results, stepped and fast-forwarded alike.
func TestWakeupICountDifferential(t *testing.T) {
	m := config.LowEnd(config.SMT2)
	run := func(eventIssue, ff bool) *Result {
		s, err := New(m, buildRandomKernel(7, m.Threads()))
		if err != nil {
			t.Fatal(err)
		}
		s.SetICountFetch(true)
		s.EventIssue = eventIssue
		s.EventDriven = ff
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ref := run(false, false)
	for _, mode := range []struct {
		name           string
		eventIssue, ff bool
	}{
		{"scan+ff", false, true},
		{"wakeup+stepped", true, false},
		{"wakeup+ff", true, true},
	} {
		if got := run(mode.eventIssue, mode.ff); !reflect.DeepEqual(got, ref) {
			t.Errorf("%s result differs from scan+stepped under ICOUNT:\n  ref: %v\n  got: %v", mode.name, ref, got)
		}
	}
}

// TestWakeupSlotConservationRandom is the wakeup path's property test:
// over random synthetic workloads the §4.1 conservation invariant —
// slot categories sum to chip width × cycles × chips — must hold on
// the wakeup issue stage, and the full Result must stay bit-identical
// to the reference scan.
func TestWakeupSlotConservationRandom(t *testing.T) {
	archs := []config.Arch{config.FA8, config.SMT2, config.SMT1}
	for seed := int64(1); seed <= 4; seed++ {
		for _, arch := range archs {
			m := config.LowEnd(arch)
			name := fmt.Sprintf("seed%d/%s", seed, m.Name)
			t.Run(name, func(t *testing.T) {
				build := func() *prog.Program {
					return buildRandomKernel(seed, m.Threads())
				}
				wake, _ := runMode(t, m, build, true, false)

				want := float64(8 * wake.Cycles * int64(m.Chips))
				got := wake.Slots.TotalSlots()
				if math.Abs(got-want) > 1e-6*want {
					t.Errorf("wakeup slot conservation violated: got %.6f, want %.6f", got, want)
				}

				scan, _ := runMode(t, m, build, false, false)
				if !reflect.DeepEqual(scan, wake) {
					t.Errorf("wakeup result differs from scan on random kernel:\n  scan:   %v\n  wakeup: %v", scan, wake)
				}
			})
		}
	}
}
