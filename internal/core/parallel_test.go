package core

import (
	"io"
	"reflect"
	"testing"

	"clustersmt/internal/config"
	"clustersmt/internal/prog"
	"clustersmt/internal/workloads"
)

// collectMemSide gathers the off-Result memory-path counters after a
// run, in the same shape the mem-path differential uses, so the
// parallel differential covers them too.
func collectMemSide(s *Simulator) memSideStats {
	var side memSideStats
	for _, c := range s.msys.Chips {
		side.MSHR = append(side.MSHR, [3]uint64{c.MSHR.Merges, c.MSHR.Rejected, c.MSHR.Allocated})
		side.L1 = append(side.L1, [4]uint64{c.L1.Hits, c.L1.Misses, c.L1.Evictions, c.L1.WritebackEvictions})
		side.L2 = append(side.L2, [4]uint64{c.L2.Hits, c.L2.Misses, c.L2.Evictions, c.L2.WritebackEvictions})
	}
	side.DirLines = s.msys.Dir.Lines()
	return side
}

// runParLeg runs one (machine, program) pair in one execution mode and
// returns the Result, the off-Result memory counters, and the number of
// cycles whose issue/fetch phase actually ran concurrently on the chip
// workers (always zero for sequential legs and single-chip machines).
func runParLeg(t *testing.T, m config.Machine, build func() *prog.Program, parallel, eventIssue, ff bool) (*Result, memSideStats, int64) {
	t.Helper()
	s, err := New(m, build())
	if err != nil {
		t.Fatal(err)
	}
	s.Parallel = parallel
	s.EventIssue = eventIssue
	s.EventDriven = ff
	r, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, collectMemSide(s), s.parBCycles
}

// TestParallelDifferential is the contract test for the per-chip
// parallel execution mode: on every Table 2 preset, low- and high-end,
// over a memory-bound and a sync-bound workload, the parallel loop —
// under both the stepped and fast-forward cycle loops — must produce a
// Result that is bit-identical (reflect.DeepEqual — same cycles, same
// float64 slot votes, every counter) to the sequential scan × stepped
// reference, and the off-Result MSHR, cache and directory counters must
// match exactly as well. It also asserts the concurrent phase actually
// engaged somewhere on the multi-chip machines, so the parallel legs
// are not vacuously running the sequential fallback every cycle.
func TestParallelDifferential(t *testing.T) {
	apps := []string{"ocean", "fmm"}
	parModes := []struct {
		name string
		ff   bool
	}{
		{"parallel+stepped", false},
		{"parallel+ff", true},
	}
	var totalParB int64
	for _, arch := range config.AllArchs {
		for _, app := range apps {
			w, err := workloads.ByName(app)
			if err != nil {
				t.Fatal(err)
			}
			for _, highEnd := range []bool{false, true} {
				m := config.LowEnd(arch)
				if highEnd {
					m = config.HighEnd(arch)
				}
				t.Run(app+"/"+m.Name, func(t *testing.T) {
					build := func() *prog.Program {
						return w.Build(m.Threads(), m.Chips, workloads.SizeTest)
					}
					ref, refSide, _ := runParLeg(t, m, build, false, false, false)
					for _, md := range parModes {
						got, gotSide, parB := runParLeg(t, m, build, true, true, md.ff)
						if !reflect.DeepEqual(ref, got) {
							t.Errorf("%s Result differs from sequential reference:\n  ref: %v\n  got: %v", md.name, ref, got)
						}
						if !reflect.DeepEqual(refSide, gotSide) {
							t.Errorf("%s side stats differ from sequential reference:\n  ref: %+v\n  got: %+v", md.name, refSide, gotSide)
						}
						totalParB += parB
					}
				})
			}
		}
	}
	if totalParB == 0 {
		t.Error("concurrent phase never engaged across the whole matrix; parallel differential is vacuous")
	}
}

// TestParallelMultiprogram covers the NewMulti path (private syncs,
// per-job address spaces) under the parallel loop, on the high-end
// machine so the chip workers actually run concurrently.
func TestParallelMultiprogram(t *testing.T) {
	const jobCount = 8
	jobs := func() []*prog.Program {
		var js []*prog.Program
		for i := 0; i < jobCount; i++ {
			js = append(js, buildVectorSum(64, 1))
		}
		return js
	}
	m := config.HighEnd(config.SMT2)

	run := func(parallel, eventIssue, ff bool) (*Result, int64) {
		s, err := NewMulti(m, jobs())
		if err != nil {
			t.Fatal(err)
		}
		s.Parallel = parallel
		s.EventIssue = eventIssue
		s.EventDriven = ff
		r, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r, s.parBCycles
	}
	ref, _ := run(false, false, false)
	var totalParB int64
	for _, ff := range []bool{false, true} {
		got, parB := run(true, true, ff)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("multiprogram parallel (ff=%v) Result differs from sequential reference:\n  ref: %v\n  got: %v", ff, ref, got)
		}
		totalParB += parB
	}
	if totalParB == 0 {
		t.Error("concurrent phase never engaged in the multiprogram run; test is vacuous")
	}
}

// TestParallelRequiresEventIssue pins the escape-hatch contract: the
// parallel loop reuses the event-driven issue bookkeeping, so enabling
// Parallel with the full-window scan stage must fail up front rather
// than silently diverge.
func TestParallelRequiresEventIssue(t *testing.T) {
	s, err := New(config.HighEnd(config.SMT2), buildVectorSum(64, config.HighEnd(config.SMT2).Threads()))
	if err != nil {
		t.Fatal(err)
	}
	s.Parallel = true
	s.EventIssue = false
	if _, err := s.Run(); err == nil {
		t.Fatal("Parallel without EventIssue did not fail")
	}
}

// TestParallelRejectsTracing pins the other precondition: Chrome
// tracing orders its events by the sequential stage walk, so a parallel
// run with a tracer attached must be refused.
func TestParallelRejectsTracing(t *testing.T) {
	m := config.HighEnd(config.SMT2)
	s, err := New(m, buildVectorSum(64, m.Threads()))
	if err != nil {
		t.Fatal(err)
	}
	s.Parallel = true
	s.TraceChromeTo(io.Discard, 0, 0)
	if _, err := s.Run(); err == nil {
		t.Fatal("Parallel with tracing enabled did not fail")
	}
}
