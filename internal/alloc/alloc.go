// Package alloc is the pluggable thread-to-cluster allocation
// subsystem: the core consults an Allocator once at thread start
// (Place) and, for dynamic policies, at every epoch boundary
// (Rebalance) with a committed per-epoch feedback snapshot sampled
// from the same counters the obs subsystem exposes.
//
// The package is deliberately dependency-free (no core, no config):
// policies see only the plain sampled numbers in Snapshot, so they can
// be unit-tested without a simulator, and the determinism contract is
// easy to audit — Rebalance is a pure function of the snapshot, which
// the core builds between cycles from committed state only (never from
// mid-cycle or per-goroutine state, so the per-chip parallel loop and
// the sequential loop feed a policy byte-identical inputs).
package alloc

import (
	"fmt"
	"sort"
	"strings"
)

// ClusterInfo describes one cluster's place in the machine at
// allocation time.
type ClusterInfo struct {
	GID      int // global cluster id, chip-major (chip*clustersPerChip + index)
	Chip     int // owning chip
	Index    int // index within the chip
	Capacity int // hardware thread contexts (Arch.ThreadsPerCluster)
}

// ThreadSample is one thread's feedback for the epoch that just ended.
type ThreadSample struct {
	ID        int
	Cluster   int    // current cluster GID
	Committed uint64 // instructions committed during the epoch
	InWindow  int    // in-flight instructions at the epoch boundary
	Blocked   bool   // blocked on a lock/barrier/migration at the boundary
	Finished  bool   // halted and drained — never migrate these
	// SinceMigrate counts epochs since the thread last migrated
	// (0 = it moved during the epoch that just ended); -1 = never.
	SinceMigrate int64
}

// ClusterSample aggregates one cluster's feedback for the epoch. The
// memory-system deltas are chip-level (caches and MSHRs are per chip),
// so clusters on one chip repeat the same values.
type ClusterSample struct {
	ClusterInfo
	Threads   int    // live (unfinished) threads currently assigned
	InFlight  int    // in-window instructions summed over its threads
	Committed uint64 // instructions its threads committed during the epoch

	L1Hits, L1Misses uint64 // chip L1 deltas for the epoch
	L2Hits, L2Misses uint64 // chip L2 deltas for the epoch
	MSHROccupancy    uint64 // chip MSHR occupancy integral delta
}

// Snapshot is the committed epoch-boundary state a policy decides
// from. It is rebuilt every epoch; policies must not retain it.
type Snapshot struct {
	Cycle    int64  // boundary cycle
	Epoch    uint64 // 1-based epoch index
	Threads  []ThreadSample
	Clusters []ClusterSample
}

// Migration asks the core to move one thread to the cluster with the
// given GID. The core validates every request (live thread, real
// cluster, spare capacity counting in-flight migrations) and drops
// invalid ones deterministically.
type Migration struct {
	Thread int
	To     int
}

// Allocator is one thread-to-cluster allocation policy.
type Allocator interface {
	// Name is the registry name ("static", "icount", ...).
	Name() string
	// Place returns the initial cluster GID for each of threads
	// threads. The result must assign every thread to exactly one
	// cluster without exceeding any cluster's Capacity.
	Place(threads int, clusters []ClusterInfo) []int
	// Rebalance proposes migrations from one committed epoch snapshot.
	// Deterministic: equal snapshots must yield equal proposals.
	Rebalance(s *Snapshot) []Migration
	// Dynamic reports whether Rebalance can ever propose a migration.
	// Non-dynamic policies cost nothing at run time (no epoch state).
	Dynamic() bool
}

// StaticPlace is the seed placement every policy falls back to: thread
// tid lands on chip tid%chips, cluster (tid/chips)%clustersPerChip —
// round-robin across chips first, then across a chip's clusters.
func StaticPlace(threads int, clusters []ClusterInfo) []int {
	chips := 0
	perChip := 0
	for _, c := range clusters {
		if c.Chip+1 > chips {
			chips = c.Chip + 1
		}
		if c.Chip == 0 {
			perChip++
		}
	}
	gid := make(map[[2]int]int, len(clusters))
	for _, c := range clusters {
		gid[[2]int{c.Chip, c.Index}] = c.GID
	}
	out := make([]int, threads)
	for tid := 0; tid < threads; tid++ {
		chip := tid % chips
		local := tid / chips
		out[tid] = gid[[2]int{chip, local % perChip}]
	}
	return out
}

// Info is one registry row for -list-policies.
type Info struct {
	Name string
	Desc string
}

type entry struct {
	desc string
	mk   func() Allocator
}

var registry = map[string]entry{}

// Register adds a policy factory under name. It panics on duplicates —
// registration happens in package init blocks, so a collision is a
// programming error.
func Register(name, desc string, mk func() Allocator) {
	if _, ok := registry[name]; ok {
		panic(fmt.Sprintf("alloc: policy %q registered twice", name))
	}
	registry[name] = entry{desc: desc, mk: mk}
}

// New resolves a policy by name; "" means "static". Unknown names fail
// fast with the full registered list, so a typoed -alloc flag surfaces
// every valid choice.
func New(name string) (Allocator, error) {
	if name == "" {
		name = "static"
	}
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("alloc: unknown policy %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	return e.mk(), nil
}

// Names lists the registered policies, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// List returns the registered policies with their one-line
// descriptions, sorted by name — the -list-policies payload.
func List() []Info {
	out := make([]Info, 0, len(registry))
	for n, e := range registry {
		out = append(out, Info{Name: n, Desc: e.desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
