package alloc

import (
	"reflect"
	"strings"
	"testing"
)

// grid builds the ClusterInfo layout for a chips × perChip machine in
// the chip-major GID order the core hands policies.
func grid(chips, perChip, capacity int) []ClusterInfo {
	var out []ClusterInfo
	for c := 0; c < chips; c++ {
		for i := 0; i < perChip; i++ {
			out = append(out, ClusterInfo{GID: c*perChip + i, Chip: c, Index: i, Capacity: capacity})
		}
	}
	return out
}

func TestStaticPlace(t *testing.T) {
	cases := []struct {
		chips, perChip, capacity, threads int
	}{
		{1, 2, 4, 8},  // low-end/SMT2
		{4, 2, 4, 32}, // high-end/SMT2
		{1, 8, 1, 8},  // low-end/FA8
		{4, 1, 8, 32}, // high-end/SMT1
	}
	for _, c := range cases {
		infos := grid(c.chips, c.perChip, c.capacity)
		got := StaticPlace(c.threads, infos)
		occ := make([]int, len(infos))
		for tid := 0; tid < c.threads; tid++ {
			// The seed formula: round-robin across chips first, then
			// across a chip's clusters.
			chip := tid % c.chips
			want := chip*c.perChip + (tid/c.chips)%c.perChip
			if got[tid] != want {
				t.Fatalf("%d×%d: thread %d placed on %d, want %d", c.chips, c.perChip, tid, got[tid], want)
			}
			occ[got[tid]]++
		}
		for g, n := range occ {
			if n > c.capacity {
				t.Fatalf("%d×%d: cluster %d holds %d threads, capacity %d", c.chips, c.perChip, g, n, c.capacity)
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	a, err := New("")
	if err != nil || a.Name() != "static" {
		t.Fatalf(`New("") = %v, %v; want the static policy`, a, err)
	}
	for _, name := range []string{"static", "icount", "symbiosis", "oracle"} {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, a.Name())
		}
		if a.Dynamic() && a.Rebalance(&Snapshot{}) != nil {
			t.Fatalf("%s proposed migrations from an empty snapshot", name)
		}
	}
	_, err = New("nosuch")
	if err == nil {
		t.Fatal("unknown policy resolved")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("unknown-policy error %q omits registered policy %q", err, name)
		}
	}
	if len(List()) != len(Names()) {
		t.Fatalf("List and Names disagree: %d vs %d", len(List()), len(Names()))
	}
	for _, info := range List() {
		if info.Desc == "" {
			t.Fatalf("policy %q has no description", info.Name)
		}
	}
}

// snap2 builds a two-cluster snapshot (single chip, capacity 4) with
// the given live-thread split and in-flight totals; threads are dealt
// to cluster 0 first, all live and unblocked, committed = 10+tid so
// thread IDs order the victim choice deterministically.
func snap2(live0, live1, inflight0, inflight1 int) *Snapshot {
	s := &Snapshot{Epoch: 1}
	infos := grid(1, 2, 4)
	s.Clusters = []ClusterSample{
		{ClusterInfo: infos[0], Threads: live0, InFlight: inflight0},
		{ClusterInfo: infos[1], Threads: live1, InFlight: inflight1},
	}
	tid := 0
	for i, n := range []int{live0, live1} {
		for j := 0; j < n; j++ {
			s.Threads = append(s.Threads, ThreadSample{
				ID: tid, Cluster: i, Committed: uint64(10 + tid), SinceMigrate: -1,
			})
			tid++
		}
	}
	return s
}

func TestICountRebalance(t *testing.T) {
	// Gross imbalance: move the least-committed (lowest-ID) thread to
	// the empty cluster.
	got := ICount{}.Rebalance(snap2(4, 0, 40, 0))
	want := []Migration{{Thread: 0, To: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("imbalanced: got %v, want %v", got, want)
	}

	// Convergence guard: a 3/2 split must not move (it would only swap
	// which cluster is ahead).
	if got := (ICount{}).Rebalance(snap2(3, 2, 30, 20)); got != nil {
		t.Fatalf("3/2 split migrated: %v", got)
	}

	// The in-flight signal must agree with the live-count signal.
	if got := (ICount{}).Rebalance(snap2(4, 1, 5, 50)); got != nil {
		t.Fatalf("in-flight disagreement migrated: %v", got)
	}

	// Single cluster: nothing to do.
	s := snap2(4, 0, 40, 0)
	s.Clusters = s.Clusters[:1]
	if got := (ICount{}).Rebalance(s); got != nil {
		t.Fatalf("single cluster migrated: %v", got)
	}

	// Hysteresis: threads that just moved are ineligible; the next
	// least-committed eligible thread goes instead.
	s = snap2(4, 0, 40, 0)
	s.Threads[0].SinceMigrate = 0
	s.Threads[1].SinceMigrate = 1
	got = ICount{}.Rebalance(s)
	want = []Migration{{Thread: 2, To: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hysteresis: got %v, want %v", got, want)
	}

	// Blocked and finished threads never move; with everything on the
	// source pinned there is no victim.
	s = snap2(4, 0, 40, 0)
	for i := range s.Threads {
		if i%2 == 0 {
			s.Threads[i].Blocked = true
		} else {
			s.Threads[i].Finished = true
		}
	}
	if got := (ICount{}).Rebalance(s); got != nil {
		t.Fatalf("pinned source migrated: %v", got)
	}
}

// snapChips builds a two-chip snapshot (one cluster per chip, capacity
// 4) with per-chip live counts and L2 miss deltas.
func snapChips(live0, live1 int, l2miss0, l2miss1 uint64) *Snapshot {
	s := &Snapshot{Epoch: 1}
	infos := grid(2, 1, 4)
	s.Clusters = []ClusterSample{
		{ClusterInfo: infos[0], Threads: live0, InFlight: live0 * 10, L2Misses: l2miss0},
		{ClusterInfo: infos[1], Threads: live1, InFlight: live1 * 10, L2Misses: l2miss1},
	}
	tid := 0
	for i, n := range []int{live0, live1} {
		for j := 0; j < n; j++ {
			s.Threads = append(s.Threads, ThreadSample{
				ID: tid, Cluster: i, Committed: uint64(10 + tid), SinceMigrate: -1,
			})
			tid++
		}
	}
	return s
}

func TestSymbiosisRebalance(t *testing.T) {
	// Cache antagonism: the pressured chip sheds its least-committed
	// thread to the quiet chip.
	got := Symbiosis{}.Rebalance(snapChips(4, 0, 900, 0))
	want := []Migration{{Thread: 0, To: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("antagonistic chips: got %v, want %v", got, want)
	}

	// Pressure inverted relative to load: the count guard (hot must
	// hold two more live threads than cold) blocks the cross-chip move,
	// and the icount fallback moves off the crowded chip instead.
	got = Symbiosis{}.Rebalance(snapChips(4, 1, 0, 900))
	want = []Migration{{Thread: 0, To: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("inverted pressure: got %v, want %v", got, want)
	}

	// Flat pressure falls back to plain live-count balancing.
	got = Symbiosis{}.Rebalance(snapChips(4, 0, 0, 0))
	want = []Migration{{Thread: 0, To: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("flat pressure: got %v, want %v", got, want)
	}

	// Balanced machine: nothing to do even under pressure.
	if got := (Symbiosis{}).Rebalance(snapChips(2, 2, 900, 0)); got != nil {
		t.Fatalf("balanced chips migrated: %v", got)
	}
}

func TestOraclePlace(t *testing.T) {
	infos := grid(1, 2, 4)
	fixed := []int{1, 1, 0, 0}
	o := &Oracle{Assignment: fixed}
	got := o.Place(4, infos)
	if !reflect.DeepEqual(got, fixed) {
		t.Fatalf("Place = %v, want the fixed assignment %v", got, fixed)
	}
	got[0] = 0 // callers own the returned slice
	if o.Assignment[0] != 1 {
		t.Fatal("Place aliased the oracle's stored assignment")
	}
	// Wrong arity degrades to the seed placement.
	if got := o.Place(8, infos); !reflect.DeepEqual(got, StaticPlace(8, infos)) {
		t.Fatalf("arity mismatch: got %v, want seed placement", got)
	}
}

// TestRebalanceDeterminism pins the contract the core's parallel loop
// depends on: equal snapshots yield equal proposals.
func TestRebalanceDeterminism(t *testing.T) {
	for _, name := range []string{"icount", "symbiosis"} {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		first := a.Rebalance(snapChips(4, 0, 900, 0))
		for i := 0; i < 8; i++ {
			if got := a.Rebalance(snapChips(4, 0, 900, 0)); !reflect.DeepEqual(first, got) {
				t.Fatalf("%s: proposal changed between identical snapshots: %v vs %v", name, first, got)
			}
		}
	}
}
