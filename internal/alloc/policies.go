package alloc

// The built-in policies. All of them share the same safety shape:
// at most one migration per epoch (the core drains the thread's
// window and charges a cold start, so batching moves would stack
// penalties faster than feedback can judge them), a two-epoch
// hysteresis per thread, and a strict improvement guard (source must
// hold at least two more live threads than the destination) so a
// policy converges instead of oscillating: every accepted move shrinks
// the live-count imbalance by two.

// hysteresisEpochs is how many epochs a migrated thread is ineligible
// to move again — long enough for its post-move feedback to be real.
const hysteresisEpochs = 2

func init() {
	Register("static", "seed placement, never migrates (the paper's configuration; bit-identical to no allocator)",
		func() Allocator { return Static{} })
	Register("icount", "rebalance toward clusters with the fewest in-flight instructions (ICOUNT-style feedback)",
		func() Allocator { return ICount{} })
	Register("symbiosis", "separate cache-antagonistic threads across chips using L1/L2 miss and MSHR-occupancy deltas",
		func() Allocator { return Symbiosis{} })
	Register("oracle", "best static assignment found by exhaustively profiling a short prefix (upper bound; no migrations)",
		func() Allocator { return &Oracle{} })
}

// Static is today's behavior: the seed placement, no migrations.
type Static struct{}

func (Static) Name() string { return "static" }
func (Static) Place(threads int, clusters []ClusterInfo) []int {
	return StaticPlace(threads, clusters)
}
func (Static) Rebalance(*Snapshot) []Migration { return nil }
func (Static) Dynamic() bool                   { return false }

// Oracle replays a fixed assignment found offline (core.SearchStatic
// profiles every canonical static assignment over a prefix and keeps
// the best). With no Assignment it degrades to the seed placement.
type Oracle struct {
	Assignment []int
}

func (*Oracle) Name() string { return "oracle" }
func (o *Oracle) Place(threads int, clusters []ClusterInfo) []int {
	if len(o.Assignment) == threads {
		out := make([]int, threads)
		copy(out, o.Assignment)
		return out
	}
	return StaticPlace(threads, clusters)
}
func (*Oracle) Rebalance(*Snapshot) []Migration { return nil }
func (*Oracle) Dynamic() bool                   { return false }

// pickVictim chooses which thread to move off cluster src: the live,
// unblocked thread with the least epoch progress (it has the least
// cache and window state to lose), skipping recently migrated threads.
// Ties break on the lower thread ID. Returns -1 when nothing on src is
// movable.
func pickVictim(s *Snapshot, src int) int {
	victim, victimCommitted := -1, uint64(0)
	for _, t := range s.Threads {
		if t.Cluster != src || t.Finished || t.Blocked {
			continue
		}
		if t.SinceMigrate >= 0 && t.SinceMigrate < hysteresisEpochs {
			continue
		}
		if victim == -1 || t.Committed < victimCommitted {
			victim, victimCommitted = t.ID, t.Committed
		}
	}
	return victim
}

// ICount rebalances toward the cluster with the fewest in-flight
// instructions, the classic ICOUNT signal lifted from fetch policy to
// placement.
type ICount struct{}

func (ICount) Name() string { return "icount" }
func (ICount) Place(threads int, clusters []ClusterInfo) []int {
	return StaticPlace(threads, clusters)
}
func (ICount) Dynamic() bool { return true }

func (ICount) Rebalance(s *Snapshot) []Migration {
	if len(s.Clusters) < 2 {
		return nil
	}
	src, dst := -1, -1
	for i, c := range s.Clusters {
		// Destination: spare capacity, fewest in-flight instructions
		// (ties: fewer live threads, then lower GID).
		if c.Threads < c.Capacity {
			if dst == -1 || less(c, s.Clusters[dst]) {
				dst = i
			}
		}
		// Source: most in-flight instructions (ties: more live
		// threads, then lower GID).
		if src == -1 || less(s.Clusters[src], c) {
			src = i
		}
	}
	if src == -1 || dst == -1 || src == dst {
		return nil
	}
	sc, dc := s.Clusters[src], s.Clusters[dst]
	// Improvement guard: the move must strictly shrink the live-count
	// imbalance, and the in-flight signal must agree.
	if sc.Threads < dc.Threads+2 || sc.InFlight <= dc.InFlight {
		return nil
	}
	victim := pickVictim(s, sc.GID)
	if victim == -1 {
		return nil
	}
	return []Migration{{Thread: victim, To: dc.GID}}
}

// less orders clusters by (InFlight, Threads, GID) — the ICOUNT
// preference order for destinations; sources use its inverse.
func less(a, b ClusterSample) bool {
	if a.InFlight != b.InFlight {
		return a.InFlight < b.InFlight
	}
	if a.Threads != b.Threads {
		return a.Threads < b.Threads
	}
	return a.GID < b.GID
}

// Symbiosis groups cache-antagonistic threads apart: it scores each
// chip's memory pressure from the epoch's L1/L2 miss and MSHR-
// occupancy deltas and moves one thread from the most-pressured chip
// to the least-pressured chip with spare capacity. Caches are per
// chip, so only cross-chip moves change cache behavior; on a
// single-chip machine (or when pressure is flat) it falls back to
// ICOUNT-style live-count balancing so gross imbalance never survives
// just because the memory system is quiet.
type Symbiosis struct{}

func (Symbiosis) Name() string { return "symbiosis" }
func (Symbiosis) Place(threads int, clusters []ClusterInfo) []int {
	return StaticPlace(threads, clusters)
}
func (Symbiosis) Dynamic() bool { return true }

// pressure is the chip-level antagonism score: L2 misses are the
// expensive events, L1 misses the early signal, and the MSHR
// occupancy integral captures how saturated the miss machinery ran.
func pressure(c ClusterSample) uint64 {
	return c.L1Misses + 8*c.L2Misses + c.MSHROccupancy
}

func (Symbiosis) Rebalance(s *Snapshot) []Migration {
	if len(s.Clusters) < 2 {
		return nil
	}
	// Chip-level view: pressure is repeated on every cluster of a
	// chip; live counts sum.
	type chipView struct {
		chip     int
		pressure uint64
		live     int
	}
	var chips []chipView
	byChip := map[int]int{}
	for _, c := range s.Clusters {
		i, ok := byChip[c.Chip]
		if !ok {
			i = len(chips)
			byChip[c.Chip] = i
			chips = append(chips, chipView{chip: c.Chip, pressure: pressure(c)})
		}
		chips[i].live += c.Threads
	}
	if len(chips) > 1 {
		hot, cold := 0, 0
		for i := 1; i < len(chips); i++ {
			if chips[i].pressure > chips[hot].pressure ||
				(chips[i].pressure == chips[hot].pressure && chips[i].chip < chips[hot].chip) {
				hot = i
			}
			if chips[i].pressure < chips[cold].pressure ||
				(chips[i].pressure == chips[cold].pressure && chips[i].chip < chips[cold].chip) {
				cold = i
			}
		}
		// Antagonists only exist where at least two threads share the
		// hot chip's caches; the count guard keeps the move convergent.
		if hot != cold && chips[hot].pressure > chips[cold].pressure &&
			chips[hot].live >= 2 && chips[hot].live >= chips[cold].live+2 {
			if m := crossChipMove(s, chips[hot].chip, chips[cold].chip); m != nil {
				return m
			}
		}
	}
	// Fallback: plain live-count balancing (chip-agnostic).
	return ICount{}.Rebalance(s)
}

// crossChipMove picks the busiest source cluster on the hot chip and
// the emptiest destination cluster with capacity on the cold chip.
func crossChipMove(s *Snapshot, hotChip, coldChip int) []Migration {
	src, dst := -1, -1
	for i, c := range s.Clusters {
		if c.Chip == hotChip && c.Threads > 0 {
			if src == -1 || less(s.Clusters[src], c) {
				src = i
			}
		}
		if c.Chip == coldChip && c.Threads < c.Capacity {
			if dst == -1 || less(c, s.Clusters[dst]) {
				dst = i
			}
		}
	}
	if src == -1 || dst == -1 {
		return nil
	}
	victim := pickVictim(s, s.Clusters[src].GID)
	if victim == -1 {
		return nil
	}
	return []Migration{{Thread: victim, To: s.Clusters[dst].GID}}
}
