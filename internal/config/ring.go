package config

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over 32-byte content keys — the
// routing half of the scale-out job fabric. Nodes are opaque strings
// (the fabric uses advertised worker URLs); each node contributes
// DefaultRingReplicas virtual points so ownership spreads evenly, and a
// key's owner is the first point clockwise from the key's position.
//
// The properties the fabric relies on, pinned by ring_test.go:
//
//   - Determinism: ownership is a pure function of the member set, so
//     every caller with the same view routes identically.
//   - Stability: adding or removing one node remaps only the keys that
//     move to/from that node (~1/n of the space); everything else keeps
//     its owner, which is what lets the federated result cache stay hot
//     across membership changes.
//   - Aliasing: physically identical configs share a Machine/job hash
//     (config.Canonical), so FA8 and SMT8 land on one node by
//     construction — the cache-federation analogue of the harness's
//     shared run cache.
//
// Ring is not safe for concurrent use; the fabric guards it with its
// membership mutex.
type Ring struct {
	replicas int
	nodes    map[string]bool
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultRingReplicas is the virtual-point count per node when NewRing
// is given 0. 64 points per node keeps the max/min ownership ratio
// within ~2x for small fleets while membership changes stay cheap.
const DefaultRingReplicas = 64

// NewRing returns an empty ring with the given virtual-point count per
// node (0 = DefaultRingReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// pointHash positions one virtual point: the first 8 bytes of
// SHA-256(node "#" replica), matching the key positioning so node and
// key placement draw from one distribution.
func pointHash(node string, replica int) uint64 {
	sum := sha256.Sum256([]byte(node + "#" + strconv.Itoa(replica)))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts node's virtual points (idempotent).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break on the node name so the
		// order — and hence ownership — stays deterministic.
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes node's virtual points (idempotent).
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the member set, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Has reports whether node is a member.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Owner returns the node owning key — the first virtual point at or
// clockwise after the key's position, wrapping at the top — and false
// when the ring is empty.
func (r *Ring) Owner(key [32]byte) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := binary.BigEndian.Uint64(key[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}
