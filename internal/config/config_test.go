package config

import "testing"

// TestTable2Presets pins every architecture row of Table 2.
func TestTable2Presets(t *testing.T) {
	cases := []struct {
		a               Arch
		clusters, issue int
		threadsPerClus  int
		iu, lu, fu      int
		window, renInt  int
	}{
		{FA8, 8, 1, 1, 1, 1, 1, 16, 16},
		{FA4, 4, 2, 1, 2, 2, 2, 32, 32},
		{FA2, 2, 4, 1, 4, 4, 4, 64, 64},
		{FA1, 1, 8, 1, 6, 4, 4, 128, 128},
		{SMT4, 4, 2, 2, 2, 2, 2, 32, 32},
		{SMT2, 2, 4, 4, 4, 4, 4, 64, 64},
		{SMT1, 1, 8, 8, 6, 4, 4, 128, 128},
	}
	for _, c := range cases {
		a := c.a
		if a.Clusters != c.clusters || a.IssueWidth != c.issue || a.ThreadsPerCluster != c.threadsPerClus {
			t.Errorf("%s: shape %d/%d/%d", a.Name, a.Clusters, a.IssueWidth, a.ThreadsPerCluster)
		}
		if a.IntUnits != c.iu || a.LdStUnits != c.lu || a.FPUnits != c.fu {
			t.Errorf("%s: FUs %d/%d/%d", a.Name, a.IntUnits, a.LdStUnits, a.FPUnits)
		}
		if a.WindowEntries != c.window || a.RenameInt != c.renInt || a.RenameFP != c.renInt {
			t.Errorf("%s: window/rename %d/%d/%d", a.Name, a.WindowEntries, a.RenameInt, a.RenameFP)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

// TestChipInvariants: every preset is an 8-issue, up-to-8-thread,
// 128-entry-window chip in aggregate (Table 2 bracketed columns), except
// FA1/SMT1 whose FU mix is 6/4/4.
func TestChipInvariants(t *testing.T) {
	for _, a := range AllArchs {
		if got := a.Clusters * a.IssueWidth; got != 8 {
			t.Errorf("%s: chip issue = %d", a.Name, got)
		}
		if got := a.Clusters * a.WindowEntries; got != 128 {
			t.Errorf("%s: chip window = %d", a.Name, got)
		}
		if got := a.Clusters * a.RenameInt; got != 128 {
			t.Errorf("%s: chip rename = %d", a.Name, got)
		}
		if a.ThreadsPerChip() > 8 || a.ThreadsPerChip() < 1 {
			t.Errorf("%s: threads/chip = %d", a.Name, a.ThreadsPerChip())
		}
	}
}

func TestSMT8AliasesFA8(t *testing.T) {
	if SMT8.Clusters != FA8.Clusters || SMT8.IssueWidth != FA8.IssueWidth ||
		SMT8.ThreadsPerCluster != FA8.ThreadsPerCluster || SMT8.Name != "SMT8" {
		t.Fatalf("SMT8 = %+v", SMT8)
	}
}

func TestArchByName(t *testing.T) {
	for _, name := range []string{"FA8", "FA4", "FA2", "FA1", "SMT4", "SMT2", "SMT1", "SMT8"} {
		a, err := ArchByName(name)
		if err != nil || a.Name != name {
			t.Errorf("ArchByName(%q) = %v, %v", name, a.Name, err)
		}
	}
	if _, err := ArchByName("SMT16"); err == nil {
		t.Error("unknown arch accepted")
	}
}

// TestTable3Memory pins the memory hierarchy parameters to Table 3.
func TestTable3Memory(t *testing.T) {
	m := DefaultMem()
	checks := map[string][2]int{
		"L1 size":       {m.L1SizeKB, 64},
		"L2 size":       {m.L2SizeKB, 1024},
		"line":          {m.LineBytes, 64},
		"L1 assoc":      {m.L1Assoc, 2},
		"L2 assoc":      {m.L2Assoc, 4},
		"fill":          {m.FillTime, 8},
		"L1 banks":      {m.L1Banks, 7},
		"L2 banks":      {m.L2Banks, 7},
		"occupancy":     {m.Occupancy, 1},
		"L1 latency":    {m.L1Latency, 1},
		"L2 latency":    {m.L2Latency, 10},
		"local memory":  {m.LocalMemLatency, 40},
		"remote memory": {m.RemoteMemLat, 60},
		"remote L2":     {m.RemoteL2Lat, 75},
		"MSHRs":         {m.MSHRs, 32},
		"TLB entries":   {m.TLBEntries, 512},
	}
	for name, c := range checks {
		if c[0] != c[1] {
			t.Errorf("%s = %d, want %d", name, c[0], c[1])
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMemValidateRejectsBadGeometry(t *testing.T) {
	m := DefaultMem()
	m.LineBytes = 48
	if err := m.Validate(); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	m = DefaultMem()
	m.MSHRs = 0
	if err := m.Validate(); err == nil {
		t.Error("zero MSHRs accepted")
	}
}

func TestMachines(t *testing.T) {
	low := LowEnd(SMT2)
	if low.Chips != 1 || low.Threads() != 8 {
		t.Fatalf("low-end: %d chips, %d threads", low.Chips, low.Threads())
	}
	high := HighEnd(FA4)
	if high.Chips != 4 || high.Threads() != 16 {
		t.Fatalf("high-end FA4: %d chips, %d threads", high.Chips, high.Threads())
	}
	// Paper §5.1: FA8 and SMT2 run 32 threads on the high-end machine,
	// FA4/FA2/FA1 run 16/8/4.
	wantThreads := map[string]int{"FA8": 32, "SMT2": 32, "FA4": 16, "FA2": 8, "FA1": 4}
	for name, n := range wantThreads {
		a, _ := ArchByName(name)
		if got := HighEnd(a).Threads(); got != n {
			t.Errorf("high-end %s threads = %d, want %d", name, got, n)
		}
	}
	if err := low.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Machine{Name: "bad", Chips: 0, Arch: FA8, Mem: DefaultMem()}
	if err := bad.Validate(); err == nil {
		t.Error("zero-chip machine accepted")
	}
}
