package config

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

func ringKeys(n int) [][32]byte {
	keys := make([][32]byte, n)
	for i := range keys {
		keys[i] = sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	}
	return keys
}

func owners(t *testing.T, r *Ring, keys [][32]byte) []string {
	t.Helper()
	out := make([]string, len(keys))
	for i, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatal("Owner on a non-empty ring returned !ok")
		}
		out[i] = o
	}
	return out
}

// TestRingRemoveRemapsOnlyEvictedKeys pins the eviction half of ring
// stability: removing one node moves exactly the keys that node owned —
// every other key keeps its owner, so a worker loss cannot scramble the
// surviving workers' caches.
func TestRingRemoveRemapsOnlyEvictedKeys(t *testing.T) {
	const nodes, nkeys = 5, 4096
	r := NewRing(0)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("http://worker-%d", i))
	}
	keys := ringKeys(nkeys)
	before := owners(t, r, keys)

	const victim = "http://worker-2"
	victimKeys := 0
	for _, o := range before {
		if o == victim {
			victimKeys++
		}
	}
	if victimKeys == 0 {
		t.Fatal("victim node owned no keys; enlarge the key set")
	}

	r.Remove(victim)
	after := owners(t, r, keys)
	moved := 0
	for i := range keys {
		if before[i] == victim {
			if after[i] == victim {
				t.Fatalf("key %d still owned by the removed node", i)
			}
			moved++
			continue
		}
		if after[i] != before[i] {
			t.Fatalf("key %d moved %s -> %s although its owner was not removed",
				i, before[i], after[i])
		}
	}
	if moved != victimKeys {
		t.Fatalf("%d keys moved, want exactly the victim's %d", moved, victimKeys)
	}
}

// TestRingAddRemapsExpectedFraction pins the join half: adding a node
// to an n-node ring moves only keys that now map to the new node, and
// the moved fraction stays near 1/(n+1) — the property that makes
// scale-out cheap for the federated cache (most keys stay put, the new
// node warms up its fair share).
func TestRingAddRemapsExpectedFraction(t *testing.T) {
	const nodes, nkeys = 3, 4096
	r := NewRing(0)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("http://worker-%d", i))
	}
	keys := ringKeys(nkeys)
	before := owners(t, r, keys)

	const joiner = "http://worker-new"
	r.Add(joiner)
	after := owners(t, r, keys)

	moved := 0
	for i := range keys {
		if after[i] == before[i] {
			continue
		}
		if after[i] != joiner {
			t.Fatalf("key %d moved %s -> %s, not to the joining node",
				i, before[i], after[i])
		}
		moved++
	}
	frac := float64(moved) / float64(nkeys)
	expect := 1.0 / float64(nodes+1)
	// Virtual-point placement is random-ish, so allow a generous band
	// around the ideal share; the property under test is "about 1/n+1",
	// not the exact variance of 64 replicas.
	if frac < expect/3 || frac > expect*3 {
		t.Fatalf("join remapped %.1f%% of keys, want ~%.1f%% (1/%d)",
			100*frac, 100*expect, nodes+1)
	}
}

// TestRingBalance bounds ownership skew: with DefaultRingReplicas every
// node of a 4-node ring owns a nontrivial share of a large key set.
func TestRingBalance(t *testing.T) {
	const nodes, nkeys = 4, 8192
	r := NewRing(0)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("http://worker-%d", i))
	}
	counts := make(map[string]int)
	for _, o := range owners(t, r, ringKeys(nkeys)) {
		counts[o]++
	}
	if len(counts) != nodes {
		t.Fatalf("only %d of %d nodes own keys", len(counts), nodes)
	}
	for n, c := range counts {
		frac := float64(c) / float64(nkeys)
		if frac < 0.05 {
			t.Fatalf("node %s owns %.1f%% of keys; ring too skewed", n, 100*frac)
		}
	}
}

// TestRingDeterminismAndIdempotence pins that ownership is a pure
// function of the member set: rebuilding the ring in a different order
// routes identically, Add/Remove are idempotent, and an emptied ring
// reports no owner.
func TestRingDeterminismAndIdempotence(t *testing.T) {
	keys := ringKeys(512)
	a := NewRing(0)
	for _, n := range []string{"u1", "u2", "u3"} {
		a.Add(n)
	}
	b := NewRing(0)
	for _, n := range []string{"u3", "u1", "u2", "u2"} {
		b.Add(n)
	}
	for i, k := range keys {
		ao, _ := a.Owner(k)
		bo, _ := b.Owner(k)
		if ao != bo {
			t.Fatalf("key %d: insertion order changed owner (%s vs %s)", i, ao, bo)
		}
	}
	b.Remove("u2")
	b.Remove("u2")
	if b.Len() != 2 || b.Has("u2") {
		t.Fatalf("double remove left %d nodes (has u2: %v)", b.Len(), b.Has("u2"))
	}
	b.Remove("u1")
	b.Remove("u3")
	if _, ok := b.Owner(keys[0]); ok {
		t.Fatal("empty ring claimed an owner")
	}
}

// TestRingFA8SMT8Alias pins the fabric-level consequence of canonical
// hashing: FA8 and SMT8 are the same silicon, share a Machine hash, and
// therefore always route to one node — the federated cache stores their
// shared result exactly once fleet-wide.
func TestRingFA8SMT8Alias(t *testing.T) {
	fa8 := LowEnd(FA8).Hash()
	smt8 := LowEnd(SMT8).Hash()
	if fa8 != smt8 {
		t.Fatal("FA8 and SMT8 machine hashes differ; canonical aliasing broken")
	}
	r := NewRing(0)
	for i := 0; i < 7; i++ {
		r.Add(fmt.Sprintf("http://worker-%d", i))
	}
	a, _ := r.Owner(fa8)
	b, _ := r.Owner(smt8)
	if a != b {
		t.Fatalf("aliased configs routed to different nodes: %s vs %s", a, b)
	}
}
