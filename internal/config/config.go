// Package config holds the paper's experimental configuration as data:
// the functional-unit latencies (Table 1, defined in package isa), the
// seven processor architectures (Table 2), the memory hierarchy
// (Table 3), and the low-end / high-end machine builders (§5).
package config

import "fmt"

// Arch describes one chip organization from Table 2. Every preset is an
// 8-issue chip overall; the presets differ in how issue width, threads,
// functional units, window entries and rename registers are partitioned
// across clusters.
type Arch struct {
	Name string

	Clusters          int // number of independent clusters on the chip
	IssueWidth        int // max instructions issued per cluster per cycle
	ThreadsPerCluster int // hardware contexts per cluster

	// Functional units per cluster (Table 2, int/ld-st/fp).
	IntUnits  int
	LdStUnits int
	FPUnits   int

	// Entries in the instruction queue & reorder buffer per cluster.
	// The two structures are the same size in every Table 2 row, so the
	// simulator models a unified window (entries live from dispatch to
	// commit; the un-issued subset is the "queue").
	WindowEntries int

	// Renaming registers per cluster (int and fp pools are equal in
	// every Table 2 row).
	RenameInt int
	RenameFP  int

	// PredictorEntries / BTBEntries override the §3.1 front-end table
	// sizes (0 = the paper's 2K entries). Used by ablation studies.
	PredictorEntries int
	BTBEntries       int
}

// PredictorSize returns the branch-prediction table size in entries.
func (a Arch) PredictorSize() int {
	if a.PredictorEntries > 0 {
		return a.PredictorEntries
	}
	return BranchPredEntries
}

// BTBSize returns the branch target buffer size in entries.
func (a Arch) BTBSize() int {
	if a.BTBEntries > 0 {
		return a.BTBEntries
	}
	return BTBEntries
}

// ClockFactor returns the architecture's relative clock frequency under
// the Palacharla/Jouppi cycle-time model the paper invokes in §5.2: the
// register bypass network makes an 8-issue cluster's cycle roughly
// twice a 4-issue cluster's, while 4-issue and narrower clusters clock
// alike. The Figure 4/5/7/8 charts deliberately ignore this (equal
// cycle time); the paper's conclusion applies it.
func (a Arch) ClockFactor() float64 {
	if a.IssueWidth >= 8 {
		return 0.5
	}
	return 1.0
}

// ThreadsPerChip returns the number of hardware contexts on the chip.
func (a Arch) ThreadsPerChip() int { return a.Clusters * a.ThreadsPerCluster }

// Validate checks internal consistency of an architecture description.
func (a Arch) Validate() error {
	switch {
	case a.Clusters <= 0:
		return fmt.Errorf("config: %s: clusters must be positive", a.Name)
	case a.IssueWidth <= 0:
		return fmt.Errorf("config: %s: issue width must be positive", a.Name)
	case a.ThreadsPerCluster <= 0:
		return fmt.Errorf("config: %s: threads per cluster must be positive", a.Name)
	case a.IntUnits <= 0 || a.LdStUnits <= 0 || a.FPUnits <= 0:
		return fmt.Errorf("config: %s: every FU class needs at least one unit", a.Name)
	case a.WindowEntries < a.IssueWidth:
		return fmt.Errorf("config: %s: window smaller than issue width", a.Name)
	case a.RenameInt <= 0 || a.RenameFP <= 0:
		return fmt.Errorf("config: %s: rename pools must be positive", a.Name)
	}
	return nil
}

// The seven architectures of Table 2.
var (
	// FA8 is eight 1-issue clusters, one thread each. It is also the
	// SMT8 special case of the clustered SMT family (§5.2).
	FA8 = Arch{Name: "FA8", Clusters: 8, IssueWidth: 1, ThreadsPerCluster: 1,
		IntUnits: 1, LdStUnits: 1, FPUnits: 1, WindowEntries: 16, RenameInt: 16, RenameFP: 16}

	// FA4 is four 2-issue clusters, one thread each.
	FA4 = Arch{Name: "FA4", Clusters: 4, IssueWidth: 2, ThreadsPerCluster: 1,
		IntUnits: 2, LdStUnits: 2, FPUnits: 2, WindowEntries: 32, RenameInt: 32, RenameFP: 32}

	// FA2 is two 4-issue clusters, one thread each.
	FA2 = Arch{Name: "FA2", Clusters: 2, IssueWidth: 4, ThreadsPerCluster: 1,
		IntUnits: 4, LdStUnits: 4, FPUnits: 4, WindowEntries: 64, RenameInt: 64, RenameFP: 64}

	// FA1 is a conventional 8-issue superscalar running one thread.
	FA1 = Arch{Name: "FA1", Clusters: 1, IssueWidth: 8, ThreadsPerCluster: 1,
		IntUnits: 6, LdStUnits: 4, FPUnits: 4, WindowEntries: 128, RenameInt: 128, RenameFP: 128}

	// SMT4 is four 2-issue SMT clusters, two threads each.
	SMT4 = Arch{Name: "SMT4", Clusters: 4, IssueWidth: 2, ThreadsPerCluster: 2,
		IntUnits: 2, LdStUnits: 2, FPUnits: 2, WindowEntries: 32, RenameInt: 32, RenameFP: 32}

	// SMT2 is two 4-issue SMT clusters, four threads each — the paper's
	// recommended design point.
	SMT2 = Arch{Name: "SMT2", Clusters: 2, IssueWidth: 4, ThreadsPerCluster: 4,
		IntUnits: 4, LdStUnits: 4, FPUnits: 4, WindowEntries: 64, RenameInt: 64, RenameFP: 64}

	// SMT1 is the fully centralized 8-issue SMT with eight threads.
	SMT1 = Arch{Name: "SMT1", Clusters: 1, IssueWidth: 8, ThreadsPerCluster: 8,
		IntUnits: 6, LdStUnits: 4, FPUnits: 4, WindowEntries: 128, RenameInt: 128, RenameFP: 128}

	// SMT8 is the clustered-SMT name for the FA8 organization (§5.2:
	// "The SMT8 processor is a special case ... the same as FA8").
	SMT8 = func() Arch { a := FA8; a.Name = "SMT8"; return a }()
)

// AllArchs lists every distinct organization (SMT8 aliases FA8 and is
// reported separately only in the Figure 7/8 experiments).
var AllArchs = []Arch{FA8, FA4, FA2, FA1, SMT4, SMT2, SMT1}

// ArchByName looks up a preset (FA8..SMT1, SMT8) by its Table 2 name.
func ArchByName(name string) (Arch, error) {
	for _, a := range append([]Arch{SMT8}, AllArchs...) {
		if a.Name == name {
			return a, nil
		}
	}
	return Arch{}, fmt.Errorf("config: unknown architecture %q", name)
}

// Front-end parameters of the base superscalar core (§3.1).
const (
	// BranchPredEntries is the size of the direct-mapped branch
	// prediction table (2K entries of 2-bit saturating counters).
	BranchPredEntries = 2048
	// BTBEntries is the size of the direct-mapped branch target buffer.
	BTBEntries = 2048
	// FrontEndDelay is the decode+rename+dispatch depth in cycles:
	// instructions become issue-eligible this many cycles after fetch.
	FrontEndDelay = 2
)

// MemConfig is Table 3 plus the few knobs the paper leaves implicit.
// All latencies are contention-free round trips in cycles.
type MemConfig struct {
	L1SizeKB  int // 64
	L2SizeKB  int // 1024
	LineBytes int // 64
	L1Assoc   int // 2
	L2Assoc   int // 4
	FillTime  int // 8 (both levels)
	L1Banks   int // 7
	L2Banks   int // 7
	Occupancy int // 1 (read or write bank occupancy, both levels)

	L1Latency       int // 1
	L2Latency       int // 10
	LocalMemLatency int // 40
	RemoteMemLat    int // 60
	RemoteL2Lat     int // 75

	// MSHRs bounds outstanding loads per chip ("non-blocking with up to
	// 32 outstanding loads").
	MSHRs int // 32

	// TLBEntries is the shared, fully associative, random-replacement
	// TLB (512 entries). TLBMissPenalty is our documented knob (the
	// paper does not state one); identical across architectures so it
	// cancels in every comparison.
	TLBEntries     int
	TLBMissPenalty int
	PageBytes      int

	// NetOccupancy is the per-message port occupancy used to model
	// contention in the inter-chip network on top of the Table 3
	// round-trip latencies.
	NetOccupancy int
}

// MinCrossChipLatency returns the smallest number of cycles any
// cross-chip interaction can take under this configuration: the
// quickest cross-chip path is a remote-memory fetch, which pays one
// network port occupancy at each end plus the Table 3 remote-memory
// round trip. It is the conservative-lookahead horizon a parallel
// simulation could advance chips independently for if cross-chip
// effects propagated with their modeled delay. The timing model
// resolves directory transactions instantly in simulator order (see
// internal/coherence), so the sound horizon the parallel execution
// mode actually uses collapses to one cycle (DESIGN.md §8); this
// derivation is the hook for a future delayed-transaction
// interconnect.
func (m MemConfig) MinCrossChipLatency() int {
	min := m.RemoteMemLat
	if m.RemoteL2Lat < min {
		min = m.RemoteL2Lat
	}
	return 2*m.NetOccupancy + min
}

// DefaultMem returns Table 3 verbatim (plus documented knobs).
func DefaultMem() MemConfig {
	return MemConfig{
		L1SizeKB: 64, L2SizeKB: 1024, LineBytes: 64,
		L1Assoc: 2, L2Assoc: 4, FillTime: 8,
		L1Banks: 7, L2Banks: 7, Occupancy: 1,
		L1Latency: 1, L2Latency: 10,
		LocalMemLatency: 40, RemoteMemLat: 60, RemoteL2Lat: 75,
		MSHRs:      32,
		TLBEntries: 512, TLBMissPenalty: 30, PageBytes: 4096,
		NetOccupancy: 4,
	}
}

// Validate checks a memory configuration for internal consistency.
func (m MemConfig) Validate() error {
	switch {
	case m.L1SizeKB <= 0 || m.L2SizeKB <= 0:
		return fmt.Errorf("config: cache sizes must be positive")
	case m.LineBytes <= 0 || m.LineBytes&(m.LineBytes-1) != 0:
		return fmt.Errorf("config: line size must be a positive power of two")
	case m.L1Assoc <= 0 || m.L2Assoc <= 0:
		return fmt.Errorf("config: associativity must be positive")
	case m.L1SizeKB*1024%(m.LineBytes*m.L1Assoc) != 0:
		return fmt.Errorf("config: L1 geometry does not divide into sets")
	case m.L2SizeKB*1024%(m.LineBytes*m.L2Assoc) != 0:
		return fmt.Errorf("config: L2 geometry does not divide into sets")
	case m.L1Banks <= 0 || m.L2Banks <= 0:
		return fmt.Errorf("config: bank counts must be positive")
	case m.MSHRs <= 0:
		return fmt.Errorf("config: MSHR count must be positive")
	case m.TLBEntries <= 0 || m.PageBytes <= 0:
		return fmt.Errorf("config: TLB geometry must be positive")
	}
	return nil
}

// DefaultAllocEpoch is the rebalance interval (cycles) used when a
// dynamic allocation policy is selected without an explicit epoch.
const DefaultAllocEpoch = 10000

// AllocConfig selects the thread-to-cluster allocation policy
// (internal/alloc) and, for dynamic policies, the epoch length in
// cycles between Rebalance consultations.
type AllocConfig struct {
	// Policy names a registered allocator ("" and "static" both mean
	// the seed placement with no runtime allocator).
	Policy string
	// Epoch is the rebalance interval in cycles (dynamic policies
	// only; <= 0 resolves to DefaultAllocEpoch).
	Epoch int64
}

// Normalize resolves the defaulted forms: "" and "static" collapse to
// the zero AllocConfig (so a machine explicitly configured static is
// the same machine — same hash, same Result — as one that never heard
// of allocation), and a dynamic policy with no epoch gets
// DefaultAllocEpoch.
func (a AllocConfig) Normalize() AllocConfig {
	if a.Policy == "" || a.Policy == "static" {
		return AllocConfig{}
	}
	if a.Epoch <= 0 {
		a.Epoch = DefaultAllocEpoch
	}
	return a
}

// Machine is a full system: some number of identical chips sharing one
// application under directory-based coherence (Fig. 3). The low-end
// machine has one chip; the high-end machine has four.
type Machine struct {
	Name  string
	Chips int
	Arch  Arch
	Mem   MemConfig
	// Alloc selects the thread-to-cluster allocation policy; the zero
	// value is the paper's static placement.
	Alloc AllocConfig
}

// Threads returns the total hardware contexts in the machine; the
// harness creates exactly this many application threads (§4).
func (m Machine) Threads() int { return m.Chips * m.Arch.ThreadsPerChip() }

// Validate checks the machine description.
func (m Machine) Validate() error {
	if m.Chips <= 0 {
		return fmt.Errorf("config: %s: chip count must be positive", m.Name)
	}
	if err := m.Arch.Validate(); err != nil {
		return err
	}
	return m.Mem.Validate()
}

// LowEnd returns the single-chip workstation configuration of §5.
func LowEnd(a Arch) Machine {
	return Machine{Name: "low-end/" + a.Name, Chips: 1, Arch: a, Mem: DefaultMem()}
}

// HighEnd returns the 4-chip DASH-like multiprocessor of §5.
func HighEnd(a Arch) Machine {
	return Machine{Name: "high-end/" + a.Name, Chips: 4, Arch: a, Mem: DefaultMem()}
}
