package config

import (
	"bytes"
	"strings"
	"testing"
)

// TestCanonicalEqualConfigsHashIdentically is the cache-key contract:
// two machines constructed by different code paths but describing the
// same physical configuration must produce identical canonical bytes
// and identical hashes.
func TestCanonicalEqualConfigsHashIdentically(t *testing.T) {
	// Path 1: the preset builder.
	a := LowEnd(SMT2)

	// Path 2: hand-assembled field by field, different Name, predictor
	// sizes written out explicitly instead of left at the defaults.
	arch := Arch{
		Name: "hand-rolled", Clusters: 2, IssueWidth: 4, ThreadsPerCluster: 4,
		IntUnits: 4, LdStUnits: 4, FPUnits: 4,
		WindowEntries: 64, RenameInt: 64, RenameFP: 64,
		PredictorEntries: BranchPredEntries, BTBEntries: BTBEntries,
	}
	b := Machine{Name: "totally different name", Chips: 1, Arch: arch, Mem: DefaultMem()}

	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical forms differ:\n%s\nvs\n%s", ca, cb)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("equal configs hash differently: %x vs %x", a.Hash(), b.Hash())
	}
}

// TestCanonicalSharesFA8SMT8 pins the §5.2 aliasing: SMT8 is FA8 under
// another name, so the two share one cache key (as the harness already
// shares their simulation results).
func TestCanonicalSharesFA8SMT8(t *testing.T) {
	if LowEnd(FA8).Hash() != LowEnd(SMT8).Hash() {
		t.Fatal("FA8 and SMT8 describe the same silicon but hash differently")
	}
	if HighEnd(FA8).Hash() != HighEnd(SMT8).Hash() {
		t.Fatal("high-end FA8 and SMT8 hash differently")
	}
}

// TestCanonicalDistinguishesConfigs checks every physical axis moves
// the hash: distinct architectures, chip counts and memory knobs all
// produce distinct keys.
func TestCanonicalDistinguishesConfigs(t *testing.T) {
	seen := map[[32]byte]string{}
	add := func(name string, m Machine) {
		h := m.Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("%s collides with %s", name, prev)
		}
		seen[h] = name
	}
	for _, a := range AllArchs {
		add("low-end/"+a.Name, LowEnd(a))
		add("high-end/"+a.Name, HighEnd(a))
	}
	tweaked := LowEnd(SMT2)
	tweaked.Mem.MSHRs = 16
	add("low-end/SMT2+mshr16", tweaked)

	pred := LowEnd(SMT2)
	pred.Arch.PredictorEntries = 4096
	add("low-end/SMT2+pred4k", pred)
}

// TestCanonicalValidates confirms Canonical rejects broken machines.
func TestCanonicalValidates(t *testing.T) {
	bad := LowEnd(SMT2)
	bad.Chips = 0
	if _, err := bad.Canonical(); err == nil {
		t.Fatal("Canonical accepted an invalid machine")
	}
}

// TestCanonicalIsVersioned pins the header so accidental format edits
// that should bump the version fail a test instead of silently aliasing
// persisted cache entries.
func TestCanonicalIsVersioned(t *testing.T) {
	c, err := LowEnd(FA1).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(c), "clustersmt.Machine/v1\n") {
		t.Fatalf("canonical form lost its version header:\n%s", c)
	}
}
