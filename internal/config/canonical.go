package config

import (
	"crypto/sha256"
	"fmt"
	"strings"
)

// Canonical encoding: a deterministic, versioned, field-ordered byte
// form of a fully-resolved configuration, used as the content-addressed
// cache key by the serving subsystem (internal/service) and reusable by
// any tool that wants "same physical machine → same key".
//
// Rules (documented in DESIGN §7):
//
//   - Only physical fields participate. Names (Machine.Name, Arch.Name)
//     are presentation and are deliberately excluded, so FA8 and SMT8 —
//     the same silicon under two names (§5.2) — share one key, exactly
//     as the harness already shares their simulation results.
//   - Defaulted fields are resolved before encoding: an Arch with
//     PredictorEntries == 0 encodes the §3.1 default (2048), so "left
//     at default" and "explicitly set to the default" are one config.
//   - Fields are emitted in a fixed order as "key=value" lines under a
//     versioned header. Any semantic change to the encoding must bump
//     the version, which invalidates every persisted cache entry rather
//     than silently aliasing old ones.
const canonicalVersion = "clustersmt.Machine/v1"

func (a Arch) appendCanonical(b *strings.Builder) {
	fmt.Fprintf(b, "arch.clusters=%d\n", a.Clusters)
	fmt.Fprintf(b, "arch.issue=%d\n", a.IssueWidth)
	fmt.Fprintf(b, "arch.tpc=%d\n", a.ThreadsPerCluster)
	fmt.Fprintf(b, "arch.int=%d\n", a.IntUnits)
	fmt.Fprintf(b, "arch.ldst=%d\n", a.LdStUnits)
	fmt.Fprintf(b, "arch.fp=%d\n", a.FPUnits)
	fmt.Fprintf(b, "arch.window=%d\n", a.WindowEntries)
	fmt.Fprintf(b, "arch.renint=%d\n", a.RenameInt)
	fmt.Fprintf(b, "arch.renfp=%d\n", a.RenameFP)
	fmt.Fprintf(b, "arch.pred=%d\n", a.PredictorSize())
	fmt.Fprintf(b, "arch.btb=%d\n", a.BTBSize())
}

func (m MemConfig) appendCanonical(b *strings.Builder) {
	fmt.Fprintf(b, "mem.l1kb=%d\n", m.L1SizeKB)
	fmt.Fprintf(b, "mem.l2kb=%d\n", m.L2SizeKB)
	fmt.Fprintf(b, "mem.line=%d\n", m.LineBytes)
	fmt.Fprintf(b, "mem.l1assoc=%d\n", m.L1Assoc)
	fmt.Fprintf(b, "mem.l2assoc=%d\n", m.L2Assoc)
	fmt.Fprintf(b, "mem.fill=%d\n", m.FillTime)
	fmt.Fprintf(b, "mem.l1banks=%d\n", m.L1Banks)
	fmt.Fprintf(b, "mem.l2banks=%d\n", m.L2Banks)
	fmt.Fprintf(b, "mem.occ=%d\n", m.Occupancy)
	fmt.Fprintf(b, "mem.l1lat=%d\n", m.L1Latency)
	fmt.Fprintf(b, "mem.l2lat=%d\n", m.L2Latency)
	fmt.Fprintf(b, "mem.locmem=%d\n", m.LocalMemLatency)
	fmt.Fprintf(b, "mem.remmem=%d\n", m.RemoteMemLat)
	fmt.Fprintf(b, "mem.reml2=%d\n", m.RemoteL2Lat)
	fmt.Fprintf(b, "mem.mshrs=%d\n", m.MSHRs)
	fmt.Fprintf(b, "mem.tlb=%d\n", m.TLBEntries)
	fmt.Fprintf(b, "mem.tlbpen=%d\n", m.TLBMissPenalty)
	fmt.Fprintf(b, "mem.page=%d\n", m.PageBytes)
	fmt.Fprintf(b, "mem.netocc=%d\n", m.NetOccupancy)
}

// AppendCanonical writes the machine's canonical form to b. It never
// fails; callers wanting validation use Canonical.
func (m Machine) AppendCanonical(b *strings.Builder) {
	b.WriteString(canonicalVersion)
	b.WriteByte('\n')
	fmt.Fprintf(b, "chips=%d\n", m.Chips)
	m.Arch.appendCanonical(b)
	m.Mem.appendCanonical(b)
	// Allocation policy: the normalized static form emits nothing, so
	// every pre-allocation encoding (and hence every persisted cache
	// entry and snapshot machine hash) stays byte-identical; dynamic
	// policies append their identity so the service cache never
	// conflates two policies' results.
	if a := m.Alloc.Normalize(); a.Policy != "" {
		fmt.Fprintf(b, "alloc.policy=%s\n", a.Policy)
		fmt.Fprintf(b, "alloc.epoch=%d\n", a.Epoch)
	}
}

// Canonical returns the deterministic, field-ordered encoding of the
// machine's physical configuration (names excluded — see the package
// rules above), validating it first. Two differently-constructed but
// physically equal machines produce identical bytes.
func (m Machine) Canonical() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var b strings.Builder
	m.AppendCanonical(&b)
	return []byte(b.String()), nil
}

// Hash returns the SHA-256 of the canonical encoding — the machine half
// of the serving subsystem's content-addressed cache key. Unlike
// Canonical it does not validate: every Machine value has a hash, and
// invalid ones simply never produce cacheable results.
func (m Machine) Hash() [32]byte {
	var b strings.Builder
	m.AppendCanonical(&b)
	return sha256.Sum256([]byte(b.String()))
}
