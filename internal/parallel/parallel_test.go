package parallel

import (
	"testing"
	"testing/quick"

	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

func TestLockBasics(t *testing.T) {
	s := NewSync(2)
	if !s.TryLock(1, 0) {
		t.Fatal("first acquire failed")
	}
	if s.TryLock(1, 1) {
		t.Fatal("second acquire should fail")
	}
	if s.LockOwner(1) != 0 {
		t.Fatalf("owner = %d", s.LockOwner(1))
	}
	s.Unlock(1, 0)
	if !s.TryLock(1, 1) {
		t.Fatal("acquire after release failed")
	}
	if s.LockAcquires != 2 || s.LockConflicts != 1 {
		t.Fatalf("stats: acquires=%d conflicts=%d", s.LockAcquires, s.LockConflicts)
	}
}

func TestUnlockNotOwnerPanics(t *testing.T) {
	s := NewSync(2)
	s.TryLock(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.Unlock(1, 1)
}

func TestRecursiveLockPanics(t *testing.T) {
	s := NewSync(2)
	s.TryLock(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.TryLock(1, 0)
}

func TestBarrierTripsAtN(t *testing.T) {
	s := NewSync(3)
	g0 := s.Arrive(7)
	if s.Released(7, g0) {
		t.Fatal("released after 1/3 arrivals")
	}
	g1 := s.Arrive(7)
	if g1 != g0 {
		t.Fatalf("generations differ: %d vs %d", g0, g1)
	}
	if s.Released(7, g1) {
		t.Fatal("released after 2/3 arrivals")
	}
	s.Arrive(7)
	if !s.Released(7, g0) {
		t.Fatal("not released after 3/3 arrivals")
	}
	if s.Waiting(7) != 0 {
		t.Fatal("barrier did not reset")
	}
}

func TestBarrierGenerations(t *testing.T) {
	s := NewSync(2)
	g := s.Arrive(1)
	s.Arrive(1)
	if !s.Released(1, g) {
		t.Fatal("gen 1 not released")
	}
	g2 := s.Arrive(1)
	if g2 != g+1 {
		t.Fatalf("second generation = %d, want %d", g2, g+1)
	}
	if s.Released(1, g2) {
		t.Fatal("gen 2 released early")
	}
	s.Arrive(1)
	if !s.Released(1, g2) {
		t.Fatal("gen 2 not released")
	}
}

// Property: for any sequence of balanced lock/unlock pairs the
// controller ends with no held locks, and a lock is never granted to
// two holders at once.
func TestLockExclusionProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewSync(4)
		held := map[int64]int{}
		for _, op := range ops {
			tid := int(op>>4) % 4
			id := int64(op & 7)
			if owner, ok := held[id]; ok {
				// Some thread holds it; a different thread must fail.
				other := (owner + 1) % 4
				if s.TryLock(id, other) {
					return false
				}
				s.Unlock(id, owner)
				delete(held, id)
			} else {
				if !s.TryLock(id, tid) {
					return false
				}
				held[id] = tid
			}
		}
		for id, owner := range held {
			s.Unlock(id, owner)
		}
		return s.HeldLocks() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildParallelSum(nwords int64) *prog.Program {
	// Each thread adds its chunk of data[] into a per-thread slot of
	// partial[]; after a barrier, thread 0 reduces into out[0].
	b := prog.NewBuilder("psum")
	b.Global("n", 1)
	data := b.Global("data", nwords)
	b.Global("partial", 64)
	b.Global("out", 1)

	// r1=tid r2=nthreads r3=lo r4=hi r5=acc r6=addr r7=tmp
	b.Mov(1, isa.RegTID)
	b.Ld(2, 0, b.MustAddr("n"))
	b.Li(5, 0)
	// lo = tid*nwords/nthreads ; hi = (tid+1)*nwords/nthreads
	b.Li(7, nwords)
	b.Mul(3, 1, 7)
	b.Div(3, 3, 2)
	b.Addi(4, 1, 1)
	b.Mul(4, 4, 7)
	b.Div(4, 4, 2)
	b.CountedLoop(3, 4, func() {
		b.Shli(6, 3, 3)
		b.Addi(6, 6, data)
		b.Ld(7, 6, 0)
		b.Add(5, 5, 7)
	})
	// partial[tid] = acc
	b.Shli(6, 1, 3)
	b.St(5, 6, b.MustAddr("partial"))
	b.Barrier(0)
	b.IfThread0(func() {
		b.Li(5, 0)
		b.Li(3, 0)
		b.CountedLoop(3, 2, func() {
			b.Shli(6, 3, 3)
			b.Ld(7, 6, b.MustAddr("partial"))
			b.Add(5, 5, 7)
		})
		b.St(5, 0, b.MustAddr("out"))
	})
	b.Halt()
	return b.MustBuild()
}

func TestRunFunctionalParallelSum(t *testing.T) {
	const n = 64
	for _, threads := range []int{1, 2, 4, 8} {
		p := buildParallelSum(n)
		// Install n and the data values via init image by rebuilding
		// with GlobalWords is cleaner, but here we poke them through a
		// fresh image: the program already reserves the space, so we
		// use Init.
		p.Init[p.SymbolAddr("n")] = uint64(threads)
		var want uint64
		for i := int64(0); i < n; i++ {
			p.Init[p.SymbolAddr("data")+i*prog.WordSize] = uint64(i * 3)
			want += uint64(i * 3)
		}
		res, err := RunFunctional(p, threads, 0)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if got := res.ReadWord(p, "out", 0); got != want {
			t.Errorf("threads=%d: out = %d, want %d", threads, got, want)
		}
	}
}

func TestRunFunctionalLockedIncrements(t *testing.T) {
	// Every thread increments a shared counter k times under a lock.
	const k = 10
	b := prog.NewBuilder("lockinc")
	cnt := b.Global("cnt", 1)
	b.Li(1, 0)
	b.Li(2, k)
	b.CountedLoop(1, 2, func() {
		b.Lock(3)
		b.Ld(4, 0, cnt)
		b.Addi(4, 4, 1)
		b.St(4, 0, cnt)
		b.Unlock(3)
	})
	b.Halt()
	p := b.MustBuild()
	for _, threads := range []int{1, 3, 8} {
		res, err := RunFunctional(p, threads, 0)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if got := res.ReadWord(p, "cnt", 0); got != uint64(k*threads) {
			t.Errorf("threads=%d: cnt = %d, want %d", threads, got, k*threads)
		}
		if res.Sync.LockAcquires != uint64(k*threads) {
			t.Errorf("threads=%d: acquires = %d", threads, res.Sync.LockAcquires)
		}
	}
}

func TestRunFunctionalDeadlockDetected(t *testing.T) {
	// Thread 0 takes lock 1 and waits at a barrier that thread 1 can
	// only reach after taking lock 1: deadlock.
	b := prog.NewBuilder("dead")
	b.IfThread0(func() {
		b.Lock(1)
		b.Barrier(0)
		b.Unlock(1)
	})
	b.Bne(isa.RegTID, isa.RegZero, "t1")
	b.Jump("end")
	b.Label("t1")
	b.Lock(1)
	b.Barrier(0)
	b.Unlock(1)
	b.Label("end")
	b.Halt()
	p := b.MustBuild()
	if _, err := RunFunctional(p, 2, 0); err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestRunFunctionalStepBudget(t *testing.T) {
	b := prog.NewBuilder("spin")
	b.Label("top")
	b.Jump("top")
	b.Halt()
	p := b.MustBuild()
	if _, err := RunFunctional(p, 1, 1000); err == nil {
		t.Fatal("livelock not detected")
	}
}
