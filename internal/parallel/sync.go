// Package parallel implements the multithreaded runtime model shared by
// the functional and timing simulators: named locks and barriers (the
// ANL-macro substitute) and a functional round-robin scheduler used to
// validate kernels independently of the timing pipeline.
//
// Synchronization objects are identified by small integer ids carried in
// the LOCK/UNLOCK/BARRIER instruction immediates; their state lives in
// this controller, not in simulated memory. Threads that cannot proceed
// (lock held, barrier not full) are blocked by the front end and their
// issue slots are attributed to the sync hazard, which is exactly how
// the paper accounts for spinning.
package parallel

import "fmt"

// NoOwner marks a free lock.
const NoOwner = -1

// Sync is the synchronization controller for one application run. It is
// deterministic: grant order is decided by the (deterministic) order in
// which the simulator polls threads.
type Sync struct {
	n        int // number of threads participating in barriers
	lockOwn  map[int64]int
	barCount map[int64]int
	barGen   map[int64]uint64

	// Stats.
	LockAcquires  uint64
	LockConflicts uint64 // failed TryLock polls
	BarrierWaits  uint64 // barrier episodes completed
}

// NewSync returns a controller for n barrier participants.
func NewSync(n int) *Sync {
	if n <= 0 {
		panic(fmt.Sprintf("parallel: invalid thread count %d", n))
	}
	return &Sync{
		n:        n,
		lockOwn:  make(map[int64]int),
		barCount: make(map[int64]int),
		barGen:   make(map[int64]uint64),
	}
}

// Threads returns the number of barrier participants.
func (s *Sync) Threads() int { return s.n }

// TryLock attempts to acquire lock id for tid. It returns true on
// success; a thread already owning the lock panics (the kernels never
// take a lock recursively).
func (s *Sync) TryLock(id int64, tid int) bool {
	owner, held := s.lockOwn[id]
	if held {
		if owner == tid {
			panic(fmt.Sprintf("parallel: thread %d re-acquiring lock %d", tid, id))
		}
		s.LockConflicts++
		return false
	}
	s.lockOwn[id] = tid
	s.LockAcquires++
	return true
}

// Unlock releases lock id. Releasing a lock the thread does not own
// panics: it indicates a kernel bug.
func (s *Sync) Unlock(id int64, tid int) {
	owner, held := s.lockOwn[id]
	if !held || owner != tid {
		panic(fmt.Sprintf("parallel: thread %d unlocking lock %d owned by %d (held=%v)", tid, id, owner, held))
	}
	delete(s.lockOwn, id)
}

// LockOwner returns the current owner of lock id, or NoOwner.
func (s *Sync) LockOwner(id int64) int {
	if owner, held := s.lockOwn[id]; held {
		return owner
	}
	return NoOwner
}

// Arrive registers the calling thread at barrier id and returns the
// generation the thread must wait for. When the last participant
// arrives, the barrier trips: its generation advances and the arrival
// count resets, releasing all waiters.
func (s *Sync) Arrive(id int64) uint64 {
	target := s.barGen[id] + 1
	s.barCount[id]++
	if s.barCount[id] == s.n {
		s.barCount[id] = 0
		s.barGen[id] = target
		s.BarrierWaits++
	} else if s.barCount[id] > s.n {
		panic(fmt.Sprintf("parallel: barrier %d overfull", id))
	}
	return target
}

// Released reports whether barrier id has reached generation target.
func (s *Sync) Released(id int64, target uint64) bool {
	return s.barGen[id] >= target
}

// Waiting returns the number of threads currently parked at barrier id.
func (s *Sync) Waiting(id int64) int { return s.barCount[id] }

// HeldLocks returns the number of currently held locks (diagnostics and
// deadlock checks: must be zero at end of run).
func (s *Sync) HeldLocks() int { return len(s.lockOwn) }
