package parallel

import (
	"fmt"
	"sort"

	"clustersmt/internal/snap"
)

// encodeI64IntMap writes an int64-keyed map sorted by key for a stable
// byte stream.
func encodeI64IntMap(w *snap.Writer, m map[int64]int) {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Int(len(keys))
	for _, k := range keys {
		w.I64(k)
		w.Int(m[k])
	}
}

func decodeI64IntMap(r *snap.Reader, m map[int64]int) {
	n := r.Int()
	if n < 0 || n > r.Remaining() {
		r.Fail(fmt.Errorf("parallel: corrupt map size %d: %w", n, snap.ErrTruncated))
		return
	}
	for i := 0; i < n; i++ {
		k := r.I64()
		v := r.Int()
		if r.Err() != nil {
			return
		}
		m[k] = v
	}
}

// EncodeSnap writes the controller's lock and barrier state (maps
// sorted by id) and counters.
func (s *Sync) EncodeSnap(w *snap.Writer) {
	w.Int(s.n)
	encodeI64IntMap(w, s.lockOwn)
	encodeI64IntMap(w, s.barCount)
	gens := make([]int64, 0, len(s.barGen))
	for k := range s.barGen {
		gens = append(gens, k)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	w.Int(len(gens))
	for _, k := range gens {
		w.I64(k)
		w.U64(s.barGen[k])
	}
	w.U64(s.LockAcquires)
	w.U64(s.LockConflicts)
	w.U64(s.BarrierWaits)
}

// DecodeSnap overlays state produced by EncodeSnap onto a fresh
// controller for the same thread count.
func (s *Sync) DecodeSnap(r *snap.Reader) {
	if n := r.Int(); n != s.n {
		r.Fail(fmt.Errorf("parallel: snapshot has %d participants, controller has %d", n, s.n))
		return
	}
	decodeI64IntMap(r, s.lockOwn)
	decodeI64IntMap(r, s.barCount)
	n := r.Int()
	if n < 0 || n > r.Remaining() {
		r.Fail(fmt.Errorf("parallel: corrupt barrier map size %d: %w", n, snap.ErrTruncated))
		return
	}
	for i := 0; i < n; i++ {
		k := r.I64()
		v := r.U64()
		if r.Err() != nil {
			return
		}
		s.barGen[k] = v
	}
	s.LockAcquires = r.U64()
	s.LockConflicts = r.U64()
	s.BarrierWaits = r.U64()
}
