package parallel

import (
	"fmt"
	"math"

	"clustersmt/internal/interp"
	"clustersmt/internal/isa"
	"clustersmt/internal/prog"
)

// blockKind records why a functional thread cannot advance.
type blockKind uint8

const (
	notBlocked blockKind = iota
	blockedLock
	blockedBarrier
)

// FunctionalResult is the outcome of a pure-functional (no timing) run.
type FunctionalResult struct {
	Mem     *interp.Memory
	Threads []*interp.Thread
	Sync    *Sync
	Steps   uint64 // total dynamic instructions executed
}

// ReadFloat returns the float64 stored at the named global plus a word
// offset — the standard way tests inspect kernel output.
func (r *FunctionalResult) ReadFloat(p *prog.Program, symbol string, word int64) float64 {
	addr := p.SymbolAddr(symbol) + word*prog.WordSize
	return math.Float64frombits(r.Mem.Load(addr))
}

// ReadWord returns the raw word at the named global plus a word offset.
func (r *FunctionalResult) ReadWord(p *prog.Program, symbol string, word int64) uint64 {
	addr := p.SymbolAddr(symbol) + word*prog.WordSize
	return r.Mem.Load(addr)
}

// RunFunctional executes p with nthreads interleaved round-robin, one
// instruction per turn, honoring locks and barriers, until every thread
// halts. maxSteps bounds total dynamic instructions (0 means a generous
// default); exceeding it or deadlocking returns an error.
//
// This is the reference semantics for every kernel: the timing
// simulator must leave memory in exactly the same state (we assert this
// in integration tests) because both drive the same functional engine.
func RunFunctional(p *prog.Program, nthreads int, maxSteps uint64) (*FunctionalResult, error) {
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	mem := interp.NewMemory()
	mem.LoadImage(p)
	sync := NewSync(nthreads)
	threads := make([]*interp.Thread, nthreads)
	for i := range threads {
		threads[i] = interp.NewThread(i, p, mem)
	}

	blocked := make([]blockKind, nthreads)
	barTarget := make([]uint64, nthreads)

	var steps uint64
	for {
		progress := false
		alive := false
		for tid, t := range threads {
			if t.Halted {
				continue
			}
			alive = true

			switch blocked[tid] {
			case blockedLock:
				in := t.Peek()
				if !sync.TryLock(in.Imm, tid) {
					continue
				}
				blocked[tid] = notBlocked
			case blockedBarrier:
				in := t.Peek()
				if !sync.Released(in.Imm, barTarget[tid]) {
					continue
				}
				blocked[tid] = notBlocked
			default:
				in := t.Peek()
				switch in.Op {
				case isa.OpLock:
					if !sync.TryLock(in.Imm, tid) {
						blocked[tid] = blockedLock
						continue
					}
				case isa.OpUnlock:
					sync.Unlock(in.Imm, tid)
				case isa.OpBarrier:
					barTarget[tid] = sync.Arrive(in.Imm)
					if !sync.Released(in.Imm, barTarget[tid]) {
						blocked[tid] = blockedBarrier
						// The barrier instruction itself executes on
						// release; do not step yet.
						continue
					}
				}
			}

			t.Step()
			steps++
			progress = true
			if steps > maxSteps {
				return nil, fmt.Errorf("parallel: functional run exceeded %d steps (livelock?)", maxSteps)
			}
		}
		if !alive {
			break
		}
		if !progress {
			return nil, fmt.Errorf("parallel: deadlock: %d threads alive, none runnable", countAlive(threads))
		}
	}

	if sync.HeldLocks() != 0 {
		return nil, fmt.Errorf("parallel: run finished with %d locks still held", sync.HeldLocks())
	}
	return &FunctionalResult{Mem: mem, Threads: threads, Sync: sync, Steps: steps}, nil
}

func countAlive(ts []*interp.Thread) int {
	n := 0
	for _, t := range ts {
		if !t.Halted {
			n++
		}
	}
	return n
}
