package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"clustersmt/internal/stats"
)

func frameAt(i int, interval int64) Frame {
	f := Frame{
		Index:     i,
		Start:     int64(i) * interval,
		End:       int64(i+1) * interval,
		Cycles:    interval,
		Committed: uint64(100 * (i + 1)),
		Running:   3,
	}
	f.Slots[stats.Useful] = float64(i)
	f.Mem.L1Hits = uint64(10 * i)
	f.Mem.L1Misses = uint64(i)
	return f
}

func TestRingRetainsInOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Push(frameAt(i, 100))
	}
	if r.Len() != 3 || r.Pushed() != 3 || r.Dropped() != 0 {
		t.Fatalf("len=%d pushed=%d dropped=%d, want 3/3/0", r.Len(), r.Pushed(), r.Dropped())
	}
	for i, f := range r.Frames() {
		if f.Index != i {
			t.Errorf("frame %d has index %d", i, f.Index)
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Push(frameAt(i, 100))
	}
	if r.Len() != 4 || r.Pushed() != 10 || r.Dropped() != 6 {
		t.Fatalf("len=%d pushed=%d dropped=%d, want 4/10/6", r.Len(), r.Pushed(), r.Dropped())
	}
	fs := r.Frames()
	for i, f := range fs {
		if want := 6 + i; f.Index != want {
			t.Errorf("retained frame %d has index %d, want %d", i, f.Index, want)
		}
	}
}

func TestRingDefaultCap(t *testing.T) {
	if got := NewRing(0).Cap(); got != DefaultRingCap {
		t.Fatalf("NewRing(0).Cap() = %d, want %d", got, DefaultRingCap)
	}
}

func TestCSVSchema(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Push(frameAt(i, 1000))
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	// The first line is the retention-accounting comment.
	if !strings.HasPrefix(buf.String(), "# pushed=5 retained=5 dropped=0\n") {
		t.Fatalf("missing retention comment, got %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	rd := csv.NewReader(&buf)
	rd.Comment = '#'
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("output is not parseable CSV: %v", err)
	}
	if len(recs) != 6 {
		t.Fatalf("got %d CSV records, want header + 5 rows", len(recs))
	}
	header := recs[0]
	wantCols := len(strings.Split(CSVHeader(), ","))
	for i, rec := range recs {
		if len(rec) != wantCols {
			t.Errorf("record %d has %d columns, want %d", i, len(rec), wantCols)
		}
	}
	// Every slot category must have its own column, in stats order.
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		want := "slots_" + c.String()
		if got := header[8+int(c)]; got != want {
			t.Errorf("header column %d = %q, want %q", 8+int(c), got, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		f := frameAt(i, 1000)
		f.Clusters = []ClusterSlots{{Chip: 0, Cluster: i}}
		r.Push(f)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Pushed   int     `json:"pushed_frames"`
		Retained int     `json:"retained_frames"`
		Dropped  int     `json:"dropped_frames"`
		Frames   []Frame `json:"frames"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not parseable JSON: %v", err)
	}
	if doc.Dropped != 3 || len(doc.Frames) != 2 {
		t.Fatalf("dropped=%d frames=%d, want 3/2", doc.Dropped, len(doc.Frames))
	}
	if doc.Pushed != 5 || doc.Retained != 2 {
		t.Fatalf("pushed=%d retained=%d, want 5/2", doc.Pushed, doc.Retained)
	}
	if doc.Frames[0].Index != 3 || doc.Frames[0].Clusters[0].Cluster != 3 {
		t.Errorf("oldest retained frame = %+v, want index 3", doc.Frames[0])
	}
}

func TestMissRates(t *testing.T) {
	m := MemFrame{L1Hits: 90, L1Misses: 10}
	if got := m.L1MissRate(); got != 0.1 {
		t.Errorf("L1MissRate = %v, want 0.1", got)
	}
	if got := m.L2MissRate(); got != 0 {
		t.Errorf("L2MissRate with no accesses = %v, want 0", got)
	}
}
