// Package obs defines the simulator's observability primitives: the
// interval-metrics Frame (one fixed-width window of the run), the
// bounded Ring that retains recent frames, and the CSV/JSON exporters
// behind `clustersim -metrics` and the harness.
//
// The package is deliberately passive — it holds and formats data the
// core simulator snapshots at frame boundaries. The contract that
// sampling is read-only and result-neutral (a run's Result is
// bit-identical with observability on or off) lives in internal/core
// and is enforced by TestObsResultNeutral; see DESIGN.md §6.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"clustersmt/internal/stats"
)

// DefaultRingCap is the frame retention bound used when callers pass a
// non-positive capacity. At the default 10k-cycle interval it covers
// ~41M cycles — longer than any paper-figure run — before the ring
// starts dropping its oldest frames.
const DefaultRingCap = 4096

// Frame is one sampling interval's view of the machine: deltas of every
// cumulative counter over the window plus point-in-time occupancy
// gauges at the window's end. Slot deltas are exact differences of the
// simulator's cumulative tallies, so folding frames back together
// reproduces the end-of-run totals (the frame-conservation property
// test in internal/core).
type Frame struct {
	Index int `json:"frame"`
	// Start and End bound the cycles the frame covers: [Start, End).
	// Every frame but the last spans exactly the sampling interval; the
	// final frame is the partial tail emitted when the run finishes.
	Start  int64 `json:"start_cycle"`
	End    int64 `json:"end_cycle"`
	Cycles int64 `json:"cycles"`

	Committed uint64  `json:"committed"`
	IPC       float64 `json:"ipc"`

	// Running is the running-thread count at End; AvgRunning is its
	// time-average over the window (the Figure 6 measurement, per
	// interval).
	Running    int     `json:"running_threads"`
	AvgRunning float64 `json:"avg_running_threads"`

	// Slots is the machine-wide issue-slot delta, indexed by
	// stats.Category in declaration order (useful, fetch, sync, control,
	// data, memory, structural, other).
	Slots [stats.NumCategories]float64 `json:"slots"`

	// Clusters breaks the slot delta down per cluster.
	Clusters []ClusterSlots `json:"clusters,omitempty"`

	Mem MemFrame `json:"mem"`
}

// ClusterSlots is one cluster's share of a frame's slot delta.
type ClusterSlots struct {
	Chip    int                          `json:"chip"`
	Cluster int                          `json:"cluster"`
	Slots   [stats.NumCategories]float64 `json:"slots"`
}

// MemFrame is the memory-system slice of a frame: access-count deltas
// over the window plus end-of-window occupancy gauges.
type MemFrame struct {
	Loads       uint64 `json:"loads"`
	Stores      uint64 `json:"stores"`
	LoadRetries uint64 `json:"load_retries"`

	L1Hits   uint64 `json:"l1_hits"`
	L1Misses uint64 `json:"l1_misses"`
	L2Hits   uint64 `json:"l2_hits"`
	L2Misses uint64 `json:"l2_misses"`

	// MSHROccupancy counts outstanding fills across all chips at the
	// frame's end cycle; DirLines counts directory-tracked lines.
	MSHROccupancy int `json:"mshr_occupancy"`
	DirLines      int `json:"dir_lines"`
}

// L1MissRate returns the window's L1 misses per L1 access, in [0,1].
func (m *MemFrame) L1MissRate() float64 { return rate(m.L1Misses, m.L1Hits) }

// L2MissRate returns the window's L2 misses per L2 access, in [0,1].
func (m *MemFrame) L2MissRate() float64 { return rate(m.L2Misses, m.L2Hits) }

func rate(misses, hits uint64) float64 {
	if misses+hits == 0 {
		return 0
	}
	return float64(misses) / float64(misses+hits)
}

// String renders the frame as a one-line heartbeat (the harness
// progress format).
func (f *Frame) String() string {
	return fmt.Sprintf("frame %d @%d: %d instrs, IPC %.2f, %d running, L1 miss %.1f%%, %d MSHRs, %d dir lines",
		f.Index, f.End, f.Committed, f.IPC, f.Running,
		100*f.Mem.L1MissRate(), f.Mem.MSHROccupancy, f.Mem.DirLines)
}

// CSVHeader returns the metrics CSV header row (no trailing newline).
// Columns: frame identity, machine-wide deltas (one column per slot
// category, in stats order), memory deltas and end-of-window gauges.
// Per-cluster breakdowns are JSON-only.
func CSVHeader() string {
	var b strings.Builder
	b.WriteString("frame,start_cycle,end_cycle,cycles,committed,ipc,running_threads,avg_running_threads")
	for c := stats.Category(0); c < stats.NumCategories; c++ {
		fmt.Fprintf(&b, ",slots_%s", c)
	}
	b.WriteString(",loads,stores,load_retries,l1_hits,l1_misses,l1_miss_rate,l2_hits,l2_misses,l2_miss_rate,mshr_occupancy,dir_lines")
	return b.String()
}

// CSVRecord renders f as one CSV row matching CSVHeader (no trailing
// newline).
func (f *Frame) CSVRecord() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%g,%d,%g",
		f.Index, f.Start, f.End, f.Cycles, f.Committed, f.IPC, f.Running, f.AvgRunning)
	for _, v := range f.Slots {
		fmt.Fprintf(&b, ",%g", v)
	}
	m := &f.Mem
	fmt.Fprintf(&b, ",%d,%d,%d,%d,%d,%g,%d,%d,%g,%d,%d",
		m.Loads, m.Stores, m.LoadRetries,
		m.L1Hits, m.L1Misses, m.L1MissRate(),
		m.L2Hits, m.L2Misses, m.L2MissRate(),
		m.MSHROccupancy, m.DirLines)
	return b.String()
}

// Ring retains the most recent frames of a run in a fixed-capacity
// circular buffer. Pushing past capacity overwrites the oldest frame;
// Dropped reports how many were lost. The zero Ring is not usable —
// construct with NewRing.
type Ring struct {
	frames []Frame
	start  int // index of the oldest retained frame
	count  int // retained frames
	pushed int // frames ever pushed
}

// NewRing returns a ring retaining up to capacity frames
// (DefaultRingCap when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Ring{frames: make([]Frame, capacity)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.frames) }

// Len returns the number of retained frames.
func (r *Ring) Len() int { return r.count }

// Pushed returns the number of frames ever pushed.
func (r *Ring) Pushed() int { return r.pushed }

// Dropped returns the number of frames overwritten by later pushes.
func (r *Ring) Dropped() int { return r.pushed - r.count }

// Push appends a frame, overwriting the oldest once full.
func (r *Ring) Push(f Frame) {
	if r.count < len(r.frames) {
		r.frames[(r.start+r.count)%len(r.frames)] = f
		r.count++
	} else {
		r.frames[r.start] = f
		r.start = (r.start + 1) % len(r.frames)
	}
	r.pushed++
}

// Frames returns the retained frames, oldest first (a copy).
func (r *Ring) Frames() []Frame {
	out := make([]Frame, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.frames[(r.start+i)%len(r.frames)]
	}
	return out
}

// WriteCSV writes the retained frames as CSV: a `#` comment line with
// the retention accounting (so silent frame drops are visible in sweep
// output without parsing every row), then CSVHeader and one row per
// frame, oldest first. CSV consumers should skip `#` lines
// (encoding/csv: Reader.Comment = '#').
func (r *Ring) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# pushed=%d retained=%d dropped=%d\n",
		r.Pushed(), r.Len(), r.Dropped()); err != nil {
		return err
	}
	if _, err := io.WriteString(w, CSVHeader()+"\n"); err != nil {
		return err
	}
	for i := 0; i < r.count; i++ {
		f := &r.frames[(r.start+i)%len(r.frames)]
		if _, err := io.WriteString(w, f.CSVRecord()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// ringJSON is the WriteJSON document shape. Pushed/Retained/Dropped
// expose the ring's retention accounting so a consumer can tell a
// complete export from a truncated one at a glance.
type ringJSON struct {
	Pushed   int     `json:"pushed_frames"`
	Retained int     `json:"retained_frames"`
	Dropped  int     `json:"dropped_frames"`
	Frames   []Frame `json:"frames"`
}

// WriteJSON writes the retained frames (with per-cluster breakdowns)
// as one indented JSON document.
func (r *Ring) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ringJSON{
		Pushed:   r.Pushed(),
		Retained: r.Len(),
		Dropped:  r.Dropped(),
		Frames:   r.Frames(),
	})
}
