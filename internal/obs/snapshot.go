package obs

import (
	"fmt"

	"clustersmt/internal/snap"
)

// Clone returns an independent deep copy of the ring (same capacity,
// same retained frames, same drop accounting). Per-cluster slices
// inside retained frames are copied so the clone never aliases the
// original.
func (r *Ring) Clone() *Ring {
	cp := &Ring{frames: make([]Frame, len(r.frames)), count: r.count, pushed: r.pushed}
	for i := 0; i < r.count; i++ {
		f := r.frames[(r.start+i)%len(r.frames)]
		f.Clusters = append([]ClusterSlots(nil), f.Clusters...)
		cp.frames[i] = f
	}
	return cp
}

// EncodeSnap writes the ring's retained frames (oldest first) and its
// push accounting so Dropped() is exact after a restore.
func (r *Ring) EncodeSnap(w *snap.Writer) {
	w.Int(len(r.frames))
	w.Int(r.count)
	w.Int(r.pushed)
	for i := 0; i < r.count; i++ {
		encodeFrame(w, &r.frames[(r.start+i)%len(r.frames)])
	}
}

// DecodeSnap overlays state produced by EncodeSnap onto a fresh ring of
// the same capacity.
func (r *Ring) DecodeSnap(rd *snap.Reader) {
	if c := rd.Int(); c != len(r.frames) {
		rd.Fail(fmt.Errorf("obs: snapshot ring capacity %d, ring has %d", c, len(r.frames)))
		return
	}
	count := rd.Int()
	pushed := rd.Int()
	if count < 0 || count > len(r.frames) || pushed < count {
		rd.Fail(fmt.Errorf("obs: corrupt ring accounting (count %d, pushed %d)", count, pushed))
		return
	}
	r.start = 0
	r.count = count
	r.pushed = pushed
	for i := 0; i < count; i++ {
		decodeFrame(rd, &r.frames[i])
		if rd.Err() != nil {
			return
		}
	}
}

func encodeFrame(w *snap.Writer, f *Frame) {
	w.Int(f.Index)
	w.I64(f.Start)
	w.I64(f.End)
	w.I64(f.Cycles)
	w.U64(f.Committed)
	w.F64(f.IPC)
	w.Int(f.Running)
	w.F64(f.AvgRunning)
	for _, v := range f.Slots {
		w.F64(v)
	}
	w.Int(len(f.Clusters))
	for i := range f.Clusters {
		c := &f.Clusters[i]
		w.Int(c.Chip)
		w.Int(c.Cluster)
		for _, v := range c.Slots {
			w.F64(v)
		}
	}
	m := &f.Mem
	w.U64(m.Loads)
	w.U64(m.Stores)
	w.U64(m.LoadRetries)
	w.U64(m.L1Hits)
	w.U64(m.L1Misses)
	w.U64(m.L2Hits)
	w.U64(m.L2Misses)
	w.Int(m.MSHROccupancy)
	w.Int(m.DirLines)
}

func decodeFrame(r *snap.Reader, f *Frame) {
	f.Index = r.Int()
	f.Start = r.I64()
	f.End = r.I64()
	f.Cycles = r.I64()
	f.Committed = r.U64()
	f.IPC = r.F64()
	f.Running = r.Int()
	f.AvgRunning = r.F64()
	for i := range f.Slots {
		f.Slots[i] = r.F64()
	}
	n := r.Int()
	if n < 0 || n > r.Remaining() {
		r.Fail(fmt.Errorf("obs: corrupt cluster count %d: %w", n, snap.ErrTruncated))
		return
	}
	f.Clusters = nil
	if n > 0 {
		f.Clusters = make([]ClusterSlots, n)
		for i := range f.Clusters {
			c := &f.Clusters[i]
			c.Chip = r.Int()
			c.Cluster = r.Int()
			for j := range c.Slots {
				c.Slots[j] = r.F64()
			}
		}
	}
	m := &f.Mem
	m.Loads = r.U64()
	m.Stores = r.U64()
	m.LoadRetries = r.U64()
	m.L1Hits = r.U64()
	m.L1Misses = r.U64()
	m.L2Hits = r.U64()
	m.L2Misses = r.U64()
	m.MSHROccupancy = r.Int()
	m.DirLines = r.Int()
}
