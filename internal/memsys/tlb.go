package memsys

// TLB is the shared, fully associative, random-replacement TLB of §3.4
// (512 entries by default). "Random" uses a seeded xorshift generator
// so simulations are bit-reproducible.
type TLB struct {
	entries int
	pages   map[int64]int // page number -> slot index
	slots   []int64       // slot index -> page number
	rng     uint64
	Hit     uint64
	Miss    uint64
}

// NewTLB returns a TLB with the given capacity and PRNG seed.
func NewTLB(entries int, seed uint64) *TLB {
	if entries <= 0 {
		panic("memsys: TLB needs positive capacity")
	}
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &TLB{
		entries: entries,
		pages:   make(map[int64]int, entries),
		rng:     seed,
	}
}

func (t *TLB) next() uint64 {
	x := t.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	t.rng = x
	return x
}

// Access looks up a page number, returning true on hit. On a miss the
// page is installed, evicting a random victim if the TLB is full.
func (t *TLB) Access(page int64) bool {
	if _, ok := t.pages[page]; ok {
		t.Hit++
		return true
	}
	t.Miss++
	if len(t.slots) < t.entries {
		t.pages[page] = len(t.slots)
		t.slots = append(t.slots, page)
		return false
	}
	victim := int(t.next() % uint64(t.entries))
	delete(t.pages, t.slots[victim])
	t.slots[victim] = page
	t.pages[page] = victim
	return false
}

// Resident reports the number of mapped pages (testing aid).
func (t *TLB) Resident() int { return len(t.pages) }
